(** Trace-buffer window expansion for in-system silicon debug (paper
    Sec. 2.1): capture only the cycles on which some speed-path is
    exercised (any e_i raised) instead of every cycle. *)

type report = {
  buffer_size : int;
  cycles_simulated : int;
  always_window : int;
  selective_window : int;
  captures : int;
  expansion : float;
}

val selective_capture :
  ?seed:int -> buffer_size:int -> cycles:int -> Synthesis.t -> report

val pp : Format.formatter -> report -> unit
