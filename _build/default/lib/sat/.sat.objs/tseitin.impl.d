lib/sat/tseitin.ml: Array Dpll Hashtbl List Logic2 Network
