(* Synthesis of the error-masking circuit (paper Sec. 4).

   Given a technology-independent network T and the SPCF Σ_y of each
   critical output of its mapped realization C, every internal node n_j
   in a critical fanin cone is simplified against the satisfiability
   care-set Σ_y induces at its inputs: the cubes of its on-set and
   off-set SOPs are ranked by literal count and kept exactly when their
   *essential weight* — the share of Σ patterns they newly cover — is
   non-zero. The reduced covers n¹/n⁰ define the prediction ñ_j = n¹ and
   the indicator e_{n_j} = n⁰ ⊕ n¹ (Eqn. 2); the output indicator e_y is
   the AND of the node indicators over the cone (the paper's structural
   indicator), or — when a shallower circuit is required — an SOP for
   any function between Σ_y and the correct-prediction region, extracted
   directly from the BDDs (the direct indicator). The resulting network
   T̃ is optimized (Netopt) and mapped; a MUX21 in front of each critical
   output selects ỹ whenever e is raised. *)

type indicator = Structural | Direct

type algorithm = Short_path | Path_based | Node_based

type cube_order = Ascending | Descending | Unsorted

type options = {
  theta : float;
  algorithm : algorithm;
  indicator : indicator;
  cube_order : cube_order;
  simplify_e : bool;
  optimize : bool;
  collapse : bool;
  map_style : Mapper.style;
  log_errors : bool;
  delay_model : Sta.delay_model;
  prune_false_paths : bool;
      (* drop provably-false critical outputs from the cover (exact tier) *)
  jobs : int; (* SPCF worker domains; 0 = inherit EMASK_JOBS, 1 = sequential *)
  budget : Budget.spec; (* resource governance; no_limits = ungoverned *)
}

let default_options =
  {
    theta = 0.9;
    algorithm = Short_path;
    indicator = Direct;
    cube_order = Ascending;
    simplify_e = true;
    optimize = true;
    collapse = true;
    map_style = Mapper.Balanced;
    log_errors = false;
    delay_model = Sta.Library;
    prune_false_paths = false;
    jobs = 0;
    budget = Budget.no_limits;
  }

type per_output = {
  name : string;
  tier : Spcf.Governed.tier; (* which ladder tier produced this output *)
  sigma : Bdd.t; (* over the SPCF context's manager *)
  y_combined : Network.signal;
  ytilde_combined : Network.signal;
  e_combined : Network.signal;
  masked_combined : Network.signal;
  err_combined : Network.signal option;
}

type t = {
  source : Network.t;
  original : Mapped.t;
  ctx : Spcf.Ctx.t;
  spcf : Spcf.Ctx.result;
  masking_net : Network.t;
  masking : Mapped.t;
  combined : Mapped.t;
  per_output : per_output list;
  options : options;
  target : float;
  delta : float;
  tier : Spcf.Governed.tier; (* ladder tier the whole synthesis landed on *)
  attempts : (Spcf.Governed.tier * Budget.reason) list;
      (* budget walls hit by the tiers that did not complete *)
  pruned : string list;
      (* critical outputs dropped from the cover as provably false *)
}

(* The resolved SPCF worker-domain count for a run. *)
let jobs_of options =
  if options.jobs >= 1 then options.jobs else Spcf.Parallel.default_jobs ()

(* The SPCF engine for a ladder tier: the requested algorithm at tier 1,
   node-based at tier 2, Σ := 1 at tier 3 ([options.algorithm] is kept
   as requested in the result — the tier records what actually ran). *)
let run_algorithm options ctx ~target ~tier =
  match (tier : Spcf.Governed.tier) with
  | Spcf.Governed.Always_on -> Spcf.Governed.always_on ctx ~target
  | Spcf.Governed.Exact | Spcf.Governed.Node_fallback -> (
    let algorithm =
      match tier with
      | Spcf.Governed.Node_fallback -> Node_based
      | _ -> options.algorithm
    in
    let jobs = jobs_of options in
    match algorithm with
    | Short_path -> Spcf.Parallel.short_path ~jobs ctx ~target
    | Path_based -> Spcf.Parallel.path_based ~jobs ctx ~target
    | Node_based -> Spcf.Node_based.compute ctx ~target)

let c_cubes_kept = Obs.counter "synthesis.cubes.kept"
let c_cubes_dropped = Obs.counter "synthesis.cubes.dropped"

(* Greedy essential-weight cube selection (Sec. 4.1): keep a cube iff it
   covers some Σ pattern not covered by the cubes kept before it. *)
let select_cubes ~man ~order ~sigma ~fanin_bdds cover =
  let cubes =
    let c = Logic2.Cover.cubes cover in
    match order with
    | Ascending -> List.sort Logic2.Cube.compare_by_literals c
    | Descending -> List.sort (fun a b -> Logic2.Cube.compare_by_literals b a) c
    | Unsorted -> c
  in
  let covered = ref Bdd.bfalse in
  let keep =
    List.filter
      (fun c ->
        let cb = Bdd.cube_with man c fanin_bdds in
        let on_sigma = Bdd.band man sigma cb in
        let fresh = Bdd.band man on_sigma (Bdd.bnot man !covered) in
        if fresh = Bdd.bfalse then begin
          Obs.incr c_cubes_dropped;
          false
        end
        else begin
          Obs.incr c_cubes_kept;
          covered := Bdd.bor man !covered on_sigma;
          true
        end)
      cubes
  in
  Logic2.Cover.of_cubes (Logic2.Cover.num_vars cover) keep

(* BDDs of every signal of [net] inside an existing manager whose
   variable i is the i-th primary input (input orders must agree). *)
let bdds_in_man man net =
  let f = Array.make (Network.num_signals net) Bdd.bfalse in
  Array.iteri (fun i s -> f.(s) <- Bdd.var man i) (Network.inputs net);
  Array.iter
    (fun s ->
      match Network.node_of net s with
      | None -> ()
      | Some nd ->
        f.(s) <- Bdd.cover_with man nd.Network.func (Array.map (fun x -> f.(x)) nd.Network.fanins))
    (Network.topo_order net);
  f

let tautology_cover_1 =
  Logic2.Cover.of_cubes 1
    [ Logic2.Cube.make 1 [ (0, true) ]; Logic2.Cube.make 1 [ (0, false) ] ]

let synthesize_body options ~budget ~tier ~attempts net =
  let original, smap =
    Obs.with_span "map" (fun () ->
        Mapper.map_with_signals ~style:options.map_style net)
  in
  (* A multi-job Exact-tier run gets the shared-manager context so
     SPCF workers grow one DAG; the synthesis passes after the SPCF
     run back on the main domain use the same manager either way. *)
  let shared =
    jobs_of options > 1
    && (match tier with Spcf.Governed.Exact -> true | _ -> false)
    && options.algorithm <> Node_based
  in
  let ctx = Spcf.Ctx.create ~model:options.delay_model ~budget ~shared original in
  let delta = Spcf.Ctx.delta ctx in
  let target = options.theta *. delta in
  let spcf = run_algorithm options ctx ~target ~tier in
  let man = ctx.Spcf.Ctx.man in
  let funcs_net s = ctx.Spcf.Ctx.funcs.(smap.(s)) in
  (* Critical outputs in terms of the source network (matched by name). *)
  let net_outputs = Network.outputs net in
  let critical =
    List.filter_map
      (fun (name, _, sigma) ->
        match Array.find_opt (fun (n, _) -> n = name) net_outputs with
        | Some (_, s) -> Some (name, s, sigma)
        | None -> None)
      spcf.Spcf.Ctx.outputs
  in
  (* Opt-in false-path pruning: drop a critical output from the cover
     only on double evidence — every near-critical path to it proves
     statically false AND its SPCF Σ_y is empty. Static sensitization
     alone is optimistic for floating-mode delay; the empty SPCF is
     the functional certificate that no pattern needs masking there.
     Only the exact tier carries that certificate, so the fallback
     tiers never prune. *)
  let pruned, critical =
    if
      options.prune_false_paths
      && (match tier with Spcf.Governed.Exact -> true | _ -> false)
      && options.algorithm <> Node_based
    then begin
      (* The band mirrors the SPCF target: near-critical means longer
         than theta * delta, i.e. band = 1 - theta. *)
      let report =
        Sensitization.analyze_ctx ~band:(1. -. options.theta)
          ~jobs:(jobs_of options) ctx
      in
      let false_outs = Sensitization.false_outputs report in
      let p, keep =
        List.partition
          (fun (name, _, sigma) ->
            sigma = Bdd.bfalse && List.mem name false_outs)
          critical
      in
      (List.map (fun (name, _, _) -> name) p, keep)
    end
    else ([], critical)
  in
  (* Per-node Σ: union of the SPCFs of the critical outputs whose fanin
     cone contains the node ("all outputs simultaneously"). *)
  let nsig = Network.num_signals net in
  let sigma_node = Array.make nsig Bdd.bfalse in
  let in_any_cone = Array.make nsig false in
  Obs.enter "care-sets";
  let cones =
    List.map
      (fun (name, s, sigma) ->
        let cone = Network.cone net [ s ] in
        Array.iteri
          (fun j inside ->
            if inside && not (Network.is_input net j) then begin
              in_any_cone.(j) <- true;
              sigma_node.(j) <- Bdd.bor man sigma_node.(j) sigma
            end)
          cone;
        (name, s, sigma, cone))
      critical
  in
  Obs.leave ();
  (* Build T̃. *)
  Obs.enter "simplify";
  let tnet = Network.create () in
  let ntilde = Array.make nsig (-1) in
  Array.iter
    (fun s -> ntilde.(s) <- Network.add_input tnet (Network.name_of net s))
    (Network.inputs net);
  let first_tpi = (Network.inputs tnet).(0) in
  let e_of_node = Array.make nsig (-1) in
  (* -1: no indicator node needed (tautology). *)
  Array.iter
    (fun s ->
      match Network.node_of net s with
      | Some nd when in_any_cone.(s) ->
        let sigma = sigma_node.(s) in
        let fanin_bdds = Array.map funcs_net nd.Network.fanins in
        let fanins_t = Array.map (fun f -> ntilde.(f)) nd.Network.fanins in
        let on = nd.Network.func in
        let off = Logic2.Cover.complement on in
        let n1 = select_cubes ~man ~order:options.cube_order ~sigma ~fanin_bdds on in
        let n0 = select_cubes ~man ~order:options.cube_order ~sigma ~fanin_bdds off in
        ntilde.(s) <-
          Network.add_node tnet ("t_" ^ Network.name_of net s) ~fanins:fanins_t ~func:n1;
        if options.indicator = Structural then begin
          (* e = n⁰ ⊕ n¹; the covers are disjoint, so the XOR is an OR. *)
          let e_cover =
            Logic2.Cover.single_cube_containment (Logic2.Cover.union n0 n1)
          in
          let e_cover =
            if options.simplify_e then
              select_cubes ~man ~order:Ascending ~sigma ~fanin_bdds e_cover
            else e_cover
          in
          if not (Logic2.Cover.is_tautology e_cover) then
            e_of_node.(s) <-
              Network.add_node tnet
                ("e_" ^ Network.name_of net s)
                ~fanins:fanins_t ~func:e_cover
        end
      | Some _ | None -> ())
    (Network.topo_order net);
  Obs.leave ();
  (* Prediction BDDs, for the direct indicator's correctness region. *)
  let tnet_funcs = lazy (bdds_in_man man tnet) in
  let t_inputs = Network.inputs tnet in
  Obs.enter "indicators";
  let outputs_meta =
    List.map
      (fun (name, s, sigma, cone) ->
        let ytilde = ntilde.(s) in
        Network.mark_output tnet ~name:("yt__" ^ name) ytilde;
        let e_sig =
          match options.indicator with
          | Structural ->
            let parts = ref [] in
            Array.iteri
              (fun j inside -> if inside && e_of_node.(j) >= 0 then parts := e_of_node.(j) :: !parts)
              cone;
            (match !parts with
            | [] ->
              (* Every node indicator is a tautology: e ≡ 1. *)
              Network.add_node tnet ("e1__" ^ name) ~fanins:[| first_tpi |]
                ~func:tautology_cover_1
            | parts ->
              let arity = List.length parts in
              let cube = Logic2.Cube.make arity (List.init arity (fun i -> (i, true))) in
              Network.add_node tnet ("eand__" ^ name)
                ~fanins:(Array.of_list parts)
                ~func:(Logic2.Cover.of_cubes arity [ cube ]))
          | Direct ->
            (* Any function with Σ_y ⊆ e ⊆ (ỹ = y) is a sound indicator;
               the interval ISOP exploits the gap to stay small. *)
            let ytilde_bdd = (Lazy.force tnet_funcs).(ytilde) in
            let upper = Bdd.bxnor man ytilde_bdd (funcs_net s) in
            let cover_full = Isop.compute man ~lower:sigma ~upper in
            (* Compact to its support over the primary inputs. *)
            let sup = Logic2.Cover.support cover_full in
            let vars = Logic2.Bits.to_list sup in
            (match vars with
            | [] ->
              (* Constant cover: Σ empty would be odd here; e ≡ 1 or 0. *)
              let func =
                if Logic2.Cover.is_tautology cover_full then tautology_cover_1
                else Logic2.Cover.zero 1
              in
              Network.add_node tnet ("e__" ^ name) ~fanins:[| first_tpi |] ~func
            | _ ->
              let index = Hashtbl.create 16 in
              List.iteri (fun i v -> Hashtbl.replace index v i) vars;
              let arity = List.length vars in
              let remap_cube c =
                Logic2.Cube.make arity
                  (List.map
                     (fun (v, ph) -> (Hashtbl.find index v, ph))
                     (Logic2.Cube.literals c))
              in
              let cover =
                Logic2.Cover.of_cubes arity
                  (List.map remap_cube (Logic2.Cover.cubes cover_full))
              in
              let fanins = Array.of_list (List.map (fun v -> t_inputs.(v)) vars) in
              Network.add_node tnet ("e__" ^ name) ~fanins ~func:cover)
        in
        Network.mark_output tnet ~name:("e__out__" ^ name) e_sig;
        (name, s, sigma))
      cones
  in
  Obs.leave ();
  (* A flat two-level variant: per critical output, synthesize the
     prediction directly as an interval ISOP (any G with Σ∧y ⊆ G ⊆ y∨¬Σ
     predicts y on Σ) and the indicator likewise. Mapped as balanced
     AND/OR trees this is very shallow; it wins on narrow dense cones
     where the structural network cannot simplify. Skipped when a cover
     explodes. *)
  let flat_variant () =
    Obs.with_span "flat-variant" @@ fun () ->
    try
      let tf = Network.create () in
      Array.iter
        (fun s -> ignore (Network.add_input tf (Network.name_of net s)))
        (Network.inputs net);
      let tf_inputs = Network.inputs tf in
      let add_cover_node nm cover_full =
        if Logic2.Cover.num_cubes cover_full > 300 then raise Exit;
        let sup = Logic2.Cover.support cover_full in
        let vars = Logic2.Bits.to_list sup in
        match vars with
        | [] ->
          let func =
            if Logic2.Cover.is_tautology cover_full then tautology_cover_1
            else Logic2.Cover.zero 1
          in
          Network.add_node tf nm ~fanins:[| tf_inputs.(0) |] ~func
        | _ ->
          let index = Hashtbl.create 16 in
          List.iteri (fun i v -> Hashtbl.replace index v i) vars;
          let arity = List.length vars in
          let remap_cube c =
            Logic2.Cube.make arity
              (List.map (fun (v, ph) -> (Hashtbl.find index v, ph)) (Logic2.Cube.literals c))
          in
          let cover =
            Logic2.Cover.of_cubes arity
              (List.map remap_cube (Logic2.Cover.cubes cover_full))
          in
          Network.add_node tf nm ~fanins:(Array.of_list (List.map (fun v -> tf_inputs.(v)) vars))
            ~func:cover
      in
      List.iter
        (fun (name, s, sigma) ->
          let fy = funcs_net s in
          let lower = Bdd.band man sigma fy in
          let upper = Bdd.bor man fy (Bdd.bnot man sigma) in
          let g_cover = Isop.compute man ~lower ~upper in
          let yt = add_cover_node ("yt__" ^ name) g_cover in
          Network.mark_output tf ~name:("yt__" ^ name) yt;
          let g_bdd = Bdd.of_cover man g_cover in
          let e_cover =
            Isop.compute man ~lower:sigma ~upper:(Bdd.bxnor man g_bdd fy)
          in
          let e = add_cover_node ("e__" ^ name) e_cover in
          Network.mark_output tf ~name:("e__out__" ^ name) e)
        (List.map (fun (n, s, sg) -> (n, s, sg)) outputs_meta);
      Some tf
    with Exit -> None
  in
  (* Optimize and map T̃. Elimination is kept gentle: aggressive inlining
     after chain collapsing would merge the balanced structures back
     into dense (and deeply mapped) SOP nodes. All variants are mapped;
     preference goes to variants meeting the 20% slack requirement with
     the smallest area, falling back to the shallowest. *)
  let gentle = { Netopt.max_sub_cubes = 2; max_result_cubes = 5; passes = 3 } in
  Obs.enter "optimize+map";
  let candidates =
    if options.optimize then begin
      let base = [ Netopt.optimize ~limits:gentle ~collapse:false tnet ] in
      let base =
        if options.collapse then
          Netopt.optimize ~limits:gentle ~collapse:true tnet :: base
        else base
      in
      match (if outputs_meta = [] then None else flat_variant ()) with
      | Some tf -> base @ [ tf ]
      | None -> base
    end
    else [ tnet ]
  in
  let slack_goal = 0.8 *. delta in
  let score mc =
    let d = Sta.delta (Sta.analyze ~model:options.delay_model mc) in
    let meets = d <= slack_goal in
    (* Lexicographic: meeting the slack target first, then area for
       those that meet it, then raw delay. *)
    ((if meets then 0. else 1.), (if meets then Mapped.area mc else 0.), d, Mapped.area mc)
  in
  let masking_net, masking =
    match
      List.map (fun n -> (n, Mapper.map ~style:options.map_style n)) candidates
    with
    | [] -> assert false
    | first :: rest ->
      List.fold_left
        (fun (bn, bm) (n, mc) -> if score mc < score bm then (n, mc) else (bn, bm))
        first rest
  in
  Obs.leave ();
  (* Combined circuit: C, C̃ and the output muxes. *)
  Obs.enter "combine";
  let combined = Mapped.create () in
  Array.iter
    (fun s -> ignore (Mapped.add_input combined (Network.name_of net s)))
    (Network.inputs net);
  let omap = Mapped.append combined ~prefix:"" original in
  let mmap =
    if outputs_meta = [] then [||]
    else Mapped.append combined ~prefix:"mk_" masking
  in
  let orig_outputs = Network.outputs (Mapped.network original) in
  let mask_outputs = Network.outputs (Mapped.network masking) in
  let mask_out name =
    match Array.find_opt (fun (n, _) -> n = name) mask_outputs with
    | Some (_, s) -> mmap.(s)
    | None -> invalid_arg ("Synthesis: missing masking output " ^ name)
  in
  let per_output = ref [] in
  Array.iter
    (fun (name, msig) ->
      let y_cmb = omap.(msig) in
      match List.find_opt (fun (n, _, _) -> n = name) outputs_meta with
      | Some (_, _, sigma) ->
        let yt = mask_out ("yt__" ^ name) in
        let e = mask_out ("e__out__" ^ name) in
        let mux = Mapped.add_gate combined Cell.mux21 [| y_cmb; yt; e |] in
        Mapped.mark_output combined ~name mux;
        let err =
          if options.log_errors then begin
            let x = Mapped.add_gate combined Cell.eo [| y_cmb; yt |] in
            let err = Mapped.add_gate combined Cell.an2 [| e; x |] in
            Mapped.mark_output combined ~name:(name ^ "__err") err;
            Some err
          end
          else None
        in
        per_output :=
          {
            name;
            tier;
            sigma;
            y_combined = y_cmb;
            ytilde_combined = yt;
            e_combined = e;
            masked_combined = mux;
            err_combined = err;
          }
          :: !per_output
      | None -> Mapped.mark_output combined ~name y_cmb)
    orig_outputs;
  Obs.leave ();
  (* The whole construction survived its budget; lift it so downstream
     consumers of the context (verification, satcounts) are not tripped
     by a quota the result already fits inside. *)
  Bdd.set_budget man Budget.unlimited;
  {
    source = net;
    original;
    ctx;
    spcf;
    masking_net;
    masking;
    combined;
    per_output = List.rev !per_output;
    options;
    target;
    delta;
    tier;
    attempts;
    pruned;
  }

(* The degradation ladder (DESIGN.md §11). Each tier reruns the whole
   body in a fresh context: falling back inside the exhausted manager
   would re-raise immediately, and the later synthesis stages (cube
   selection, indicator ISOPs) must be governed too — SPCF is not the
   only place a budget can run out. The tier-3 floor runs ungoverned:
   with Σ = 1 cube selection preserves every node function exactly and
   the indicator collapses to e ≡ 1, so the floor is cheap, always
   sound, and always completes. *)
let synthesize ?(options = default_options) net =
  Obs.with_span "synthesis" @@ fun () ->
  if Budget.is_no_limits options.budget then
    synthesize_body options ~budget:Budget.unlimited ~tier:Spcf.Governed.Exact
      ~attempts:[] net
  else begin
    let budget = Budget.instantiate options.budget in
    let floor attempts =
      Spcf.Governed.record_fallback Spcf.Governed.Always_on;
      synthesize_body options ~budget:Budget.unlimited ~tier:Spcf.Governed.Always_on
        ~attempts net
    in
    match synthesize_body options ~budget ~tier:Spcf.Governed.Exact ~attempts:[] net with
    | m -> m
    | exception Budget.Budget_exceeded Budget.Cancelled ->
      (* Cancellation aborts the ladder (see Spcf.Governed): a tier
         retried for a requester that is gone is pure waste. *)
      raise (Budget.Budget_exceeded Budget.Cancelled)
    | exception Budget.Budget_exceeded r1 ->
      let attempts = [ (Spcf.Governed.Exact, r1) ] in
      if options.algorithm = Node_based then
        (* The request already was the tier-2 algorithm. *)
        floor attempts
      else begin
        Spcf.Governed.record_fallback Spcf.Governed.Node_fallback;
        match
          synthesize_body options ~budget:(Budget.renew budget)
            ~tier:Spcf.Governed.Node_fallback ~attempts net
        with
        | m -> m
        | exception Budget.Budget_exceeded Budget.Cancelled ->
          raise (Budget.Budget_exceeded Budget.Cancelled)
        | exception Budget.Budget_exceeded r2 ->
          floor (attempts @ [ (Spcf.Governed.Node_fallback, r2) ])
      end
  end
