(* Shared context for SPCF computation over a technology-mapped circuit:
   static timing, global signal BDDs, integer-grid gate delays, and a
   cache of prime-implicant pairs per library cell.

   Delays are snapped to a 0.01-unit grid (all library delays are exact
   multiples), so stabilization times live on an integer lattice and the
   comparison "stable by the target" is exact in integer arithmetic. *)

type t = {
  circuit : Mapped.t;
  model : Sta.delay_model;
  sta : Sta.t;
  man : Bdd.man;
  funcs : Bdd.t array; (* per signal, over primary-input BDD variables *)
  delay_units : int array; (* per signal: driving-gate delay, grid units *)
  arrival_units : int array;
  primes : (string, Logic2.Cover.t * Logic2.Cover.t) Hashtbl.t;
  budget : Budget.t; (* governs the manager; Budget.unlimited by default *)
}

let grid = 0.01

let units_of_delay d = int_of_float (Float.round (d /. grid))

(* Largest integer t with t*grid <= target (+ epsilon for exact floats):
   a signal stabilizing at lattice time a is within target iff a <= t. *)
let units_of_target target = int_of_float (Float.floor ((target /. grid) +. 1e-6))

let c_primes_hits = Obs.counter "spcf.primes.cache_hits"
let c_primes_computed = Obs.counter "spcf.primes.computed"
let h_primes_cubes = Obs.histogram "spcf.primes.cover_cubes"

let create ?(model = Sta.Library) ?(budget = Budget.unlimited) ?(shared = false)
    circuit =
  Obs.enter "spcf.ctx.create";
  (* Budget exhaustion can raise out of [to_bdds]; keep the span tree
     balanced on that path. *)
  Fun.protect ~finally:Obs.leave @@ fun () ->
  let sta = Obs.with_span "sta.analyze" (fun () -> Sta.analyze ~model circuit) in
  let man, funcs =
    Obs.with_span "network.to_bdds" (fun () ->
        Network.to_bdds ~budget ~shared (Mapped.network circuit))
  in
  let delays = Sta.gate_delays model circuit in
  let delay_units = Array.map units_of_delay delays in
  let net = Mapped.network circuit in
  let n = Network.num_signals net in
  let arrival_units = Array.make n 0 in
  Array.iter
    (fun s ->
      match Network.node_of net s with
      | None -> ()
      | Some nd ->
        let worst =
          Array.fold_left (fun acc f -> max acc arrival_units.(f)) 0 nd.Network.fanins
        in
        arrival_units.(s) <- worst + delay_units.(s))
    (Network.topo_order net);
  {
    circuit;
    model;
    sta;
    man;
    funcs;
    delay_units;
    arrival_units;
    primes = Hashtbl.create 32;
    budget;
  }

let network t = Mapped.network t.circuit

(* On-set and off-set prime implicants of the cell driving [s]. *)
let primes_of t s =
  match Mapped.cell_of t.circuit s with
  | None -> invalid_arg "Ctx.primes_of: signal is not a gate"
  | Some cell -> (
    match Hashtbl.find_opt t.primes cell.Cell.cname with
    | Some pair ->
      Obs.incr c_primes_hits;
      pair
    | None ->
      Obs.incr c_primes_computed;
      let pair = Logic2.Primes.onset_and_offset_primes cell.Cell.logic in
      Obs.observe h_primes_cubes
        (Logic2.Cover.num_cubes (fst pair) + Logic2.Cover.num_cubes (snd pair));
      Hashtbl.replace t.primes cell.Cell.cname pair;
      pair)

(* The primes cache is a plain Hashtbl — workers sharing one context
   must find every cell already present so their accesses are pure
   reads. The parallel driver calls this on the main domain before
   spawning. *)
let prewarm_primes t =
  Array.iter
    (fun s ->
      match Mapped.cell_of t.circuit s with
      | None -> ()
      | Some _ -> ignore (primes_of t s : Logic2.Cover.t * Logic2.Cover.t))
    (Network.topo_order (network t))

let delta t = Sta.delta t.sta

(* The default experiment target: speed-paths within (1 - theta) of the
   critical path delay; the paper uses theta = 0.9. *)
let target_of_theta t theta = theta *. delta t

(* Per-output SPCF result of one algorithm run. *)
type result = {
  target : float;
  algorithm : string;
  outputs : (string * Network.signal * Bdd.t) list; (* critical POs only *)
  union : Bdd.t;
  runtime : float;
}

let count t result = Bdd.satcount t.man result.union

let count_output t result name =
  match List.find_opt (fun (n, _, _) -> n = name) result.outputs with
  | Some (_, _, sigma) -> Some (Bdd.satcount t.man sigma)
  | None -> None

let num_critical_outputs result = List.length result.outputs

let make_result t ~algorithm ~target outputs ~runtime =
  let union =
    List.fold_left (fun acc (_, _, b) -> Bdd.bor t.man acc b) Bdd.bfalse outputs
  in
  { target; algorithm; outputs; union; runtime }
