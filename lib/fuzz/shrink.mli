(** Greedy automatic shrinking of failing specimens.

    Given a predicate [fails] (does this specimen still trip the
    oracle?), the shrinker repeatedly tries structural reductions —
    dropping outputs, deleting gates (fanout rewired to the deleted
    gate's first fanin), removing cover rows, removing fanin pins
    (widening the cover), and garbage-collecting unused primary
    inputs — keeping each reduction that preserves the failure, until
    no single reduction does. The result is a locally minimal
    reproducing netlist, typically a handful of gates. *)

val shrink : ?max_evals:int -> fails:(Gen.spec -> bool) -> Gen.spec -> Gen.spec * int
(** [(minimal, evals)]: the shrunken spec and the number of predicate
    evaluations spent. [fails spec] must already hold for the input
    (the shrinker never returns a passing spec). [max_evals] caps the
    total predicate budget (default 2000). *)

val shrink_edits : ?max_evals:int -> fails:('a list -> bool) -> 'a list -> 'a list * int
(** Greedy single-removal minimization of a sequence (used for
    [eco-equal] edit lists): drop one element at a time, keep each drop
    that preserves the failure, to fixpoint. [fails] must answer
    [false] for sequences it cannot apply — removal can invalidate
    later elements, and an inapplicable sequence is not a failure.
    Never returns the empty list. [max_evals] defaults to 200. *)
