(* Technology mapping: translate a technology-independent network into
   library gates. Each node's SOP becomes (inverters +) AND trees per cube
   and an OR tree across cubes; small node functions that exactly match a
   library cell (NAND/NOR/AOI/OAI/XOR/...) map to that single cell. Trees
   are balanced by default, which keeps mapped depth logarithmic — the
   property the error-masking circuit relies on for its timing slack. *)

type style = Balanced | Chain

(* Truth table of a cover as a bitmask, for arities small enough to match
   library cells directly. *)
let truth_mask cover =
  let n = Logic2.Cover.num_vars cover in
  assert (n <= 6);
  let mask = ref 0 in
  for i = 0 to (1 lsl n) - 1 do
    let assignment = Array.init n (fun v -> i lsr v land 1 = 1) in
    if Logic2.Cover.eval cover assignment then mask := !mask lor (1 lsl i)
  done;
  !mask

let cell_matches =
  lazy
    (let tbl = Hashtbl.create 64 in
     List.iter
       (fun c ->
         if c.Cell.arity <= 4 && c.Cell.cname <> "B1" then
           Hashtbl.replace tbl (c.Cell.arity, truth_mask c.Cell.logic) c)
       Cell.all;
     tbl)

(* Split [n] items into ceil(n/4) groups of nearly equal size (2..4, or a
   single passthrough), for balanced tree reduction. *)
let group_sizes n =
  let groups = (n + 3) / 4 in
  let base = n / groups and extra = n mod groups in
  List.init groups (fun i -> if i < extra then base + 1 else base)

let rec take k = function
  | rest when k = 0 -> ([], rest)
  | [] -> invalid_arg "take"
  | x :: rest ->
    let xs, rest' = take (k - 1) rest in
    (x :: xs, rest')

type ctx = {
  mc : Mapped.t;
  style : style;
  inv_cache : (Network.signal, Network.signal) Hashtbl.t;
}

let invert ctx s =
  match Hashtbl.find_opt ctx.inv_cache s with
  | Some i -> i
  | None ->
    let i = Mapped.add_gate ctx.mc Cell.inv [| s |] in
    Hashtbl.replace ctx.inv_cache s i;
    Hashtbl.replace ctx.inv_cache i s;
    i

(* Reduce a list of signals with an associative-commutative operation
   provided as cells indexed by arity - 2. *)
let reduce_tree ctx cells signals =
  let combine group =
    match group with
    | [ s ] -> s
    | _ ->
      let k = List.length group in
      Mapped.add_gate ctx.mc cells.(k - 2) (Array.of_list group)
  in
  match ctx.style with
  | Chain ->
    (match signals with
    | [] -> invalid_arg "reduce_tree: empty"
    | first :: rest ->
      List.fold_left (fun acc s -> combine [ acc; s ]) first rest)
  | Balanced ->
    let rec rounds current =
      match current with
      | [] -> invalid_arg "reduce_tree: empty"
      | [ s ] -> s
      | _ ->
        let n = List.length current in
        let next =
          List.fold_left
            (fun (acc, rest) size ->
              let group, rest' = take size rest in
              (combine group :: acc, rest'))
            ([], current) (group_sizes n)
          |> fst |> List.rev
        in
        rounds next
    in
    rounds signals

(* Constants are rare (dead logic, degenerate BLIF nodes); realize them
   from the first available signal. *)
let constant ctx base value =
  let nbase = invert ctx base in
  if value then Mapped.add_gate ctx.mc Cell.or2 [| base; nbase |]
  else Mapped.add_gate ctx.mc Cell.an2 [| base; nbase |]

let literal ctx fanin_signals (v, ph) =
  let s = fanin_signals.(v) in
  if ph then s else invert ctx s

let map_cover ctx cover fanin_signals =
  let arity = Logic2.Cover.num_vars cover in
  if Logic2.Cover.is_zero cover then
    constant ctx (if arity > 0 then fanin_signals.(0) else invalid_arg "constant node") false
  else if Logic2.Cover.has_universe cover then
    constant ctx (if arity > 0 then fanin_signals.(0) else invalid_arg "constant node") true
  else begin
    let direct =
      if arity >= 1 && arity <= 4 then
        Hashtbl.find_opt (Lazy.force cell_matches) (arity, truth_mask cover)
      else None
    in
    match direct with
    | Some cell when cell.Cell.arity = arity ->
      Mapped.add_gate ctx.mc cell fanin_signals
    | _ ->
      let map_cube c =
        match Logic2.Cube.literals c with
        | [] -> assert false (* universe cube handled above *)
        | [ lit ] -> literal ctx fanin_signals lit
        | lits -> reduce_tree ctx Cell.and_cells (List.map (literal ctx fanin_signals) lits)
      in
      (match Logic2.Cover.cubes cover with
      | [] -> assert false
      | [ c ] -> map_cube c
      | cs -> reduce_tree ctx Cell.or_cells (List.map map_cube cs))
  end

let map_with_signals ?(style = Balanced) net =
  let mc = Mapped.create () in
  let ctx = { mc; style; inv_cache = Hashtbl.create 256 } in
  let nsig = Network.num_signals net in
  let mapped = Array.make nsig (-1) in
  Array.iter
    (fun s -> mapped.(s) <- Mapped.add_input mc (Network.name_of net s))
    (Network.inputs net);
  Array.iter
    (fun s ->
      match Network.node_of net s with
      | None -> ()
      | Some nd ->
        let fanin_signals = Array.map (fun f -> mapped.(f)) nd.Network.fanins in
        mapped.(s) <- map_cover ctx nd.Network.func fanin_signals)
    (Network.topo_order net);
  Array.iter
    (fun (name, s) -> Mapped.mark_output mc ~name mapped.(s))
    (Network.outputs net);
  (mc, mapped)

let map ?style net = fst (map_with_signals ?style net)
