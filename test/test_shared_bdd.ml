(* Stress tests for the shared-memory BDD manager: N domains hammer
   interleaved inserts and lookups of overlapping cones into one unique
   table, and the table must stay canonical — no duplicate
   (var, low, high) triple, handles stable across stripe growth, every
   domain agreeing on the handle of every function. On top of the raw
   core, the jobs knob of the shared-manager SPCF/synthesis path must
   not change a single output byte over the fuzzed-circuit corpus. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---------- deterministic expression pool ---------- *)

(* A tiny splitmix-style generator: the pool must be identical in every
   run and every domain, with no dependence on wall clock or
   Random.self_init. *)
let mix seed =
  (* xorshift-style constants chosen to fit OCaml's 63-bit int. *)
  let z = (seed lxor (seed lsr 29)) * 0x106689D45497FDB5 in
  let z = (z lxor (z lsr 32)) * 0x2545F4914F6CDD1D in
  z lxor (z lsr 29)

type expr = Var of int | Not of expr | And of expr * expr | Xor of expr * expr

let rec gen_expr ~nvars state depth =
  let state = mix state in
  let choice = (state land max_int) mod (if depth <= 0 then 1 else 4) in
  match choice with
  | 0 -> (Var ((state lsr 7) land max_int mod nvars), mix state)
  | 1 ->
    let e, st = gen_expr ~nvars (state + 1) (depth - 1) in
    (Not e, st)
  | 2 ->
    let a, st = gen_expr ~nvars (state + 1) (depth - 1) in
    let b, st' = gen_expr ~nvars (st + 2) (depth - 1) in
    (And (a, b), st')
  | _ ->
    let a, st = gen_expr ~nvars (state + 1) (depth - 1) in
    let b, st' = gen_expr ~nvars (st + 2) (depth - 1) in
    (Xor (a, b), st')

let rec eval_expr env = function
  | Var v -> env.(v)
  | Not e -> not (eval_expr env e)
  | And (a, b) -> eval_expr env a && eval_expr env b
  | Xor (a, b) -> eval_expr env a <> eval_expr env b

let rec build man = function
  | Var v -> Bdd.var man v
  | Not e -> Bdd.bnot man (build man e)
  | And (a, b) -> Bdd.band man (build man a) (build man b)
  | Xor (a, b) -> Bdd.bxor man (build man a) (build man b)

let nvars = 14

let pool =
  List.init 96 (fun i -> fst (gen_expr ~nvars (mix (i * 7919)) 7))

(* ---------- table invariants ---------- *)

(* Walk every published node once: no duplicate triples, children
   ordered below their parent in the variable order, and every child
   either terminal or itself a published node. *)
let assert_canonical man =
  let seen = Hashtbl.create 4096 in
  let ids = Hashtbl.create 4096 in
  Bdd.iter_nodes man (fun n v lo hi ->
      Hashtbl.replace ids (n : Bdd.t :> int) ();
      check "reduced (low <> high)" true ((lo :> int) <> (hi :> int));
      check "variable in range" true (v >= 0 && v < Bdd.nvars man);
      (match Hashtbl.find_opt seen (v, (lo :> int), (hi :> int)) with
      | Some first ->
        Alcotest.failf "duplicate triple (%d,%d,%d): nodes %d and %d" v
          (lo :> int)
          (hi :> int)
          first
          (n :> int)
      | None -> Hashtbl.add seen (v, (lo :> int), (hi :> int)) (n :> int)));
  (* Children can carry larger handles than their parents in a shared
     manager (another domain may intern them later), so the child
     checks run in a second pass with the full id set known. *)
  Bdd.iter_nodes man (fun _ v lo hi ->
      let child_ok c =
        Bdd.is_terminal c
        || (Bdd.var_of man c > v && Hashtbl.mem ids (c : Bdd.t :> int))
      in
      check "low child published and ordered" true (child_ok lo);
      check "high child published and ordered" true (child_ok hi))

let spawn_all bodies =
  Array.map Domain.join (Array.map Domain.spawn bodies)

(* ---------- multi-domain hammer ---------- *)

(* Every domain builds the whole pool (maximal cone overlap) plus a
   private slice, interleaving fresh inserts with lookups of nodes
   other domains are publishing concurrently. All domains must agree
   on every pool handle, and the table must stay canonical. *)
let test_hammer ndomains () =
  let man = Bdd.create_shared ~cache_bits:10 ~nvars () in
  let results =
    spawn_all
      (Array.init ndomains (fun d () ->
           List.map
             (fun e ->
               let f = build man e in
               (* Private variation: perturb with a domain-specific
                  literal so domains also insert non-shared nodes
                  (these are not compared across domains). *)
               ignore (Bdd.band man f (Bdd.var man (d mod nvars)) : Bdd.t);
               f)
             pool))
  in
  (* Handle agreement: a canonical table gives every domain the same
     handle for the same function. *)
  Array.iteri
    (fun d handles ->
      check
        (Printf.sprintf "domain %d handles agree with domain 0" d)
        true
        (List.equal (fun (a : Bdd.t) b -> a = b) handles results.(0)))
    results;
  assert_canonical man;
  (* Semantics: spot-check every pool function on 64 assignments. *)
  let handles = Array.of_list results.(0) in
  List.iteri
    (fun i e ->
      let f = handles.(i) in
      for trial = 0 to 63 do
        let bits = mix (trial + (i * 131)) in
        let env = Array.init nvars (fun v -> (bits lsr v) land 1 = 1) in
        check "semantics" (eval_expr env e) (Bdd.eval man f env)
      done)
    pool

(* Handles must survive stripe growth/rehash: record them, force a few
   doublings with bulk concurrent inserts, then re-derive. *)
let test_stable_across_growth () =
  let man = Bdd.create_shared ~nvars () in
  let before = List.map (build man) pool in
  let evals =
    List.map
      (fun f ->
        Array.init 32 (fun t ->
            Bdd.eval man f (Array.init nvars (fun v -> (mix t lsr v) land 1 = 1))))
      before
  in
  (* Bulk inserts from several domains: enough distinct functions to
     push the 4096-slot initial capacity through several stripe
     doublings. *)
  ignore
    (spawn_all
       (Array.init 4 (fun d () ->
           for i = 0 to 120 do
             let e, _ = gen_expr ~nvars (mix ((d * 100003) + (i * 17))) 9 in
             ignore (build man e : Bdd.t)
           done)));
  check "table grew" true (Bdd.unique_capacity man > 4096);
  (* Same functions, same handles, same semantics. *)
  List.iteri
    (fun i (e, f0) ->
      let f = build man e in
      check_int
        (Printf.sprintf "pool[%d] handle stable" i)
        ((f0 : Bdd.t) :> int)
        ((f : Bdd.t) :> int);
      let ev = List.nth evals i in
      Array.iteri
        (fun t expected ->
          check "eval stable" expected
            (Bdd.eval man f (Array.init nvars (fun v -> (mix t lsr v) land 1 = 1))))
        ev)
    (List.combine pool before);
  assert_canonical man

(* clear_caches from the main domain must invalidate every domain's
   computed cache without changing any result. *)
let test_clear_caches_shared () =
  let man = Bdd.create_shared ~nvars () in
  let r1 = spawn_all (Array.init 4 (fun _ () -> List.map (build man) pool)) in
  Bdd.clear_caches man;
  let r2 = spawn_all (Array.init 4 (fun _ () -> List.map (build man) pool)) in
  check "handles unchanged after clear_caches" true
    (List.equal (fun (a : Bdd.t) b -> a = b) r1.(0) r2.(0));
  assert_canonical man

(* The budget node wall applies to the one shared table: concurrent
   writers can overshoot by at most their in-flight claims, and at
   least one of them must hit the wall. *)
let test_shared_node_wall () =
  let man = Bdd.create_shared ~nvars () in
  let quota = 2000 in
  Bdd.set_budget man (Budget.create ~max_nodes:quota ());
  let ndomains = 4 in
  let outcomes =
    spawn_all
      (Array.init ndomains (fun d () ->
           try
             List.iter
               (fun e ->
                 ignore (build man e : Bdd.t);
                 ignore
                   (Bdd.band man (build man e) (Bdd.var man (d mod nvars)) : Bdd.t))
               pool;
             `Completed
           with Budget.Budget_exceeded Budget.Nodes -> `Walled))
  in
  check "at least one domain hit the node wall" true
    (Array.exists (fun o -> o = `Walled) outcomes);
  (* Each writer can overshoot by at most its one in-flight id claim. *)
  check "allocation stopped at the wall (plus in-flight claims)" true
    (Bdd.num_nodes man <= quota + (2 * ndomains))

(* ---------- jobs byte-identity over the fuzzed corpus ---------- *)

let corpus =
  (* The PR 4 fuzz generator, fixed seeds: the same corpus the fuzz
     smoke gate replays. *)
  List.filter_map
    (fun seed ->
      let spec = Fuzz.Gen.generate (Fuzz.Rng.create ~seed) in
      let net = Fuzz.Gen.network spec in
      (* SPCF needs at least one gate-driven output; the generator can
         emit wire-only specimens. *)
      if Network.num_nodes net = 0 then None else Some (seed, net))
    [ 1; 2; 3; 5; 8; 13; 21; 34 ]

let dag_bytes ctx (r : Spcf.Ctx.result) =
  r.Spcf.Ctx.outputs
  |> List.map (fun (n, _, sigma) ->
         let vars, lows, highs, root = Spcf.Parallel.export ctx.Spcf.Ctx.man sigma in
         let pp a = String.concat "," (List.map string_of_int (Array.to_list a)) in
         Printf.sprintf "%s[%s;%s;%s;%d]" n (pp vars) (pp lows) (pp highs) root)
  |> String.concat "|"

(* Σ functions (as canonical manager-independent DAG bytes) must be
   identical for jobs ∈ {1,2,4,8}; jobs > 1 runs in a shared-manager
   context. *)
let test_spcf_jobs_identical () =
  List.iter
    (fun (seed, net) ->
      let mc = Mapper.map net in
      let run jobs =
        let ctx = Spcf.Ctx.create ~shared:(jobs > 1) mc in
        let target = Spcf.Ctx.target_of_theta ctx 0.9 in
        let r = Spcf.Parallel.short_path ~jobs ctx ~target in
        dag_bytes ctx r
      in
      let base = run 1 in
      List.iter
        (fun jobs ->
          check_str
            (Printf.sprintf "seed %d: SPCF DAGs jobs=%d" seed jobs)
            base (run jobs))
        [ 2; 4; 8 ])
    corpus

(* The synthesized masking circuit — down to the emitted BLIF bytes —
   must not depend on the worker count. *)
let test_protect_jobs_identical () =
  List.iter
    (fun (seed, net) ->
      let blif jobs =
        let options = { Masking.Synthesis.default_options with jobs } in
        let m = Masking.Synthesis.synthesize ~options net in
        Blif.to_string (Mapped.network m.Masking.Synthesis.combined)
      in
      let base = blif 1 in
      List.iter
        (fun jobs ->
          check_str
            (Printf.sprintf "seed %d: protect BLIF jobs=%d" seed jobs)
            base (blif jobs))
        [ 2; 4; 8 ])
    corpus

let () =
  Alcotest.run "shared-bdd"
    [
      ( "hammer",
        [
          Alcotest.test_case "2 domains" `Quick (test_hammer 2);
          Alcotest.test_case "4 domains" `Quick (test_hammer 4);
          Alcotest.test_case "8 domains" `Quick (test_hammer 8);
          Alcotest.test_case "handles stable across growth" `Quick
            test_stable_across_growth;
          Alcotest.test_case "clear_caches is domain-global" `Quick
            test_clear_caches_shared;
          Alcotest.test_case "node wall on the shared table" `Quick
            test_shared_node_wall;
        ] );
      ( "jobs-identity",
        [
          Alcotest.test_case "SPCF DAGs identical, jobs in {1,2,4,8}" `Quick
            test_spcf_jobs_identical;
          Alcotest.test_case "protect BLIF identical, jobs in {1,2,4,8}" `Quick
            test_protect_jobs_identical;
        ] );
    ]
