(* Resource budgets. The representation keeps every hot-path check
   branch-cheap: [unlimited] is a single shared instance recognised by
   physical equality, deadlines are absolute floats ([infinity] = no
   deadline), quotas are ints ([max_int] = no quota), and the cancel
   flag is an [Atomic.t] so domain workers can observe a cooperative
   stop without locking. *)

type reason = Deadline | Nodes | Ops | Cancelled

exception Budget_exceeded of reason

let reason_to_string = function
  | Deadline -> "deadline"
  | Nodes -> "nodes"
  | Ops -> "ops"
  | Cancelled -> "cancelled"

(* An external cancellation flag: one atomic bool shared between a
   party that wants to stop work (a server noticing its client hung
   up) and every budget instance derived from a spec carrying it.
   Tripping the flag is observed by [tick]/[poll] exactly like an
   internal [cancel], but survives [renew] — a fallback tier retried
   after a quota wall must still stop when the requester is gone. *)
type flag = bool Atomic.t

let flag () = Atomic.make false
let trip f = Atomic.set f true
let tripped f = Atomic.get f

type spec = {
  timeout : float option;
  max_nodes : int option;
  max_ops : int option;
  cancel_with : flag option;
}

let no_limits =
  { timeout = None; max_nodes = None; max_ops = None; cancel_with = None }

(* A spec carrying only an external flag is *not* limit-free: callers
   branch to the ungoverned fast path on [is_no_limits], and that path
   never polls cancellation. *)
let is_no_limits s =
  s.timeout = None && s.max_nodes = None && s.max_ops = None && s.cancel_with = None

let cancelled_by f s = { s with cancel_with = Some f }

let merge a b =
  {
    timeout = (match a.timeout with Some _ -> a.timeout | None -> b.timeout);
    max_nodes = (match a.max_nodes with Some _ -> a.max_nodes | None -> b.max_nodes);
    max_ops = (match a.max_ops with Some _ -> a.max_ops | None -> b.max_ops);
    cancel_with =
      (match a.cancel_with with Some _ -> a.cancel_with | None -> b.cancel_with);
  }

let env_timeout = "EMASK_BUDGET_TIMEOUT"
let env_max_nodes = "EMASK_BUDGET_MAX_NODES"
let env_max_ops = "EMASK_BUDGET_MAX_OPS"

let read_env name parse describe =
  match Sys.getenv_opt name with
  | None -> None
  | Some raw -> (
    let s = String.trim raw in
    if s = "" then None
    else
      match parse s with
      | Some v -> Some v
      | None ->
        invalid_arg (Printf.sprintf "%s: expected %s, got %S" name describe raw))

let of_env () =
  let pos_float s =
    match float_of_string_opt s with
    | Some v when v > 0. && v < infinity -> Some v
    | _ -> None
  in
  let pos_int s =
    match int_of_string_opt s with Some v when v > 0 -> Some v | _ -> None
  in
  {
    timeout = read_env env_timeout pos_float "a positive number of seconds";
    max_nodes = read_env env_max_nodes pos_int "a positive integer";
    max_ops = read_env env_max_ops pos_int "a positive integer";
    cancel_with = None;
  }

type t = {
  deadline : float; (* absolute Obs.now time; infinity = none *)
  node_quota : int; (* max_int = none *)
  op_quota : int; (* max_int = none *)
  mutable ops : int;
  cancel_flag : bool Atomic.t;
  pinned_cancel : bool;
      (* the flag is externally owned (spec.cancel_with): [renew] must
         keep it instead of allocating a fresh one *)
}

let unlimited =
  {
    deadline = infinity;
    node_quota = max_int;
    op_quota = max_int;
    ops = 0;
    cancel_flag = Atomic.make false;
    pinned_cancel = false;
  }

(* Instrumentation: every raise is counted, overall and per reason, so
   a --stats run shows exactly which wall was hit. *)
let c_exceeded = Obs.counter "budget.exceeded"
let c_deadline = Obs.counter "budget.exceeded.deadline"
let c_nodes = Obs.counter "budget.exceeded.nodes"
let c_ops = Obs.counter "budget.exceeded.ops"
let c_cancelled = Obs.counter "budget.exceeded.cancelled"

let exceed reason =
  Obs.incr c_exceeded;
  Obs.incr
    (match reason with
    | Deadline -> c_deadline
    | Nodes -> c_nodes
    | Ops -> c_ops
    | Cancelled -> c_cancelled);
  Obs.instant ("budget.exceeded." ^ reason_to_string reason);
  raise (Budget_exceeded reason)

let instantiate spec =
  if is_no_limits spec then unlimited
  else begin
    (* A governed run that hits no wall must still be distinguishable
       from an ungoverned one: registering the zeros up front puts
       "budget.exceeded* = 0" in every --stats / ledger / Prometheus
       view of a budgeted run. *)
    Obs.touch_counter c_exceeded;
    Obs.touch_counter c_deadline;
    Obs.touch_counter c_nodes;
    Obs.touch_counter c_ops;
    Obs.touch_counter c_cancelled;
    {
      deadline =
        (match spec.timeout with None -> infinity | Some s -> Obs.now () +. s);
      node_quota = (match spec.max_nodes with None -> max_int | Some n -> n);
      op_quota = (match spec.max_ops with None -> max_int | Some n -> n);
      ops = 0;
      cancel_flag =
        (match spec.cancel_with with Some f -> f | None -> Atomic.make false);
      pinned_cancel = spec.cancel_with <> None;
    }
  end

let create ?timeout ?max_nodes ?max_ops () =
  instantiate { timeout; max_nodes; max_ops; cancel_with = None }

let renew t =
  if t == unlimited then unlimited
  else
    {
      t with
      ops = 0;
      cancel_flag = (if t.pinned_cancel then t.cancel_flag else Atomic.make false);
    }

let for_worker t = if t == unlimited then unlimited else { t with ops = 0 }

let spec_of t =
  if t == unlimited then no_limits
  else
    {
      timeout =
        (if t.deadline = infinity then None
         else Some (Float.max 1e-6 (t.deadline -. Obs.now ())));
      max_nodes = (if t.node_quota = max_int then None else Some t.node_quota);
      max_ops = (if t.op_quota = max_int then None else Some t.op_quota);
      cancel_with = (if t.pinned_cancel then Some t.cancel_flag else None);
    }

let cancel t = if t != unlimited then Atomic.set t.cancel_flag true
let cancelled t = t != unlimited && Atomic.get t.cancel_flag

let exhausted t =
  if t == unlimited then None
  else if Atomic.get t.cancel_flag then Some Cancelled
  else if Obs.now () > t.deadline then Some Deadline
  else if t.ops > t.op_quota then Some Ops
  else None

let max_nodes t = t.node_quota

let check_nodes t n =
  if t != unlimited && n > t.node_quota then exceed Nodes

(* An explicit cancellation/deadline checkpoint for coarse work-unit
   boundaries (one SPCF output, one fuzz specimen): unlike [tick] it is
   not amortized, so a worker observes a team-mate's cancel before
   starting its next unit even when its own op counter is cold. *)
let poll t =
  if t != unlimited then begin
    if Atomic.get t.cancel_flag then exceed Cancelled;
    if Obs.now () > t.deadline then exceed Deadline
  end

(* Amortized polling: cancellation every 256 ticks, the clock every
   1024 — cheap enough for the ite hot path, responsive enough that a
   deadline or a cancel is observed within microseconds of real work.

   When several domains share one budget (the shared-manager parallel
   path), [ops] is updated with plain read-modify-writes: increments
   lost to races make the op counter approximate (an underestimate),
   which is accepted — op quotas are advisory walls, the counter stays
   memory-safe, and the exact walls (node quota via the manager's
   atomic node counter, cancellation, deadline) are unaffected. *)
let tick t =
  if t != unlimited then begin
    let ops = t.ops + 1 in
    t.ops <- ops;
    if ops > t.op_quota then exceed Ops;
    if ops land 255 = 0 then begin
      if Atomic.get t.cancel_flag then exceed Cancelled;
      if ops land 1023 = 0 && Obs.now () > t.deadline then exceed Deadline
    end
  end
