lib/bdd/extfloat.ml: Float Format Printf Stdlib
