lib/network/network.mli: Bdd Format Logic2
