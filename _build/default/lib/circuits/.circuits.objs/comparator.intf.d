lib/circuits/comparator.mli: Logic2 Mapped Network
