lib/logic2/primes.ml: Cover Cube Hashtbl List Set Truth
