(** Human-readable rendering of the instrumentation registry: the span
    tree (total / self time, call counts), then counters, then
    histograms. Sections with nothing recorded are omitted. *)

val self_time : Obs.span -> float
(** [total] minus the children's totals, clamped at zero. *)

val pp : Format.formatter -> unit -> unit
val print : out_channel -> unit
val to_string : unit -> string
