(* Tests for the Obs instrumentation layer: span nesting and self-time
   accounting, counter and histogram correctness, JSON round-trips,
   the disabled-mode no-op guarantee, and one integration check that an
   SPCF run actually records BDD cache activity. *)

let with_obs_enabled f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let find_child (s : Obs.span) name =
  List.find_opt (fun (c : Obs.span) -> c.Obs.sname = name) s.Obs.children

let get_child s name =
  match find_child s name with
  | Some c -> c
  | None -> Alcotest.failf "span %S not found under %S" name s.Obs.sname

(* --- spans -------------------------------------------------------------- *)

let spin seconds =
  let t0 = Obs.now () in
  while Obs.now () -. t0 < seconds do
    ignore (Sys.opaque_identity (ref 0))
  done

let test_span_nesting () =
  with_obs_enabled @@ fun () ->
  Obs.with_span "outer" (fun () ->
      spin 0.002;
      Obs.with_span "inner" (fun () -> spin 0.004);
      Obs.with_span "inner" (fun () -> spin 0.004);
      Obs.with_span "other" (fun () -> ()));
  let root = Obs.root () in
  Alcotest.(check int) "one top-level span" 1 (List.length root.Obs.children);
  let outer = get_child root "outer" in
  Alcotest.(check int) "outer called once" 1 outer.Obs.calls;
  Alcotest.(check int) "two distinct children" 2 (List.length outer.Obs.children);
  let inner = get_child outer "inner" in
  Alcotest.(check int) "inner entries accumulate" 2 inner.Obs.calls;
  Alcotest.(check bool) "inner measured" true (inner.Obs.total >= 0.008);
  Alcotest.(check bool) "outer >= inner" true (outer.Obs.total >= inner.Obs.total);
  (* Self time excludes children but keeps the outer busy-loop. *)
  let self = Obs_report.self_time outer in
  Alcotest.(check bool) "self >= busy loop" true (self >= 0.002);
  Alcotest.(check bool) "self excludes children" true
    (self <= outer.Obs.total -. inner.Obs.total +. 1e-9)

let test_span_recursion () =
  with_obs_enabled @@ fun () ->
  let rec go n = Obs.with_span "rec" (fun () -> if n > 0 then go (n - 1)) in
  go 4;
  let r = get_child (Obs.root ()) "rec" in
  Alcotest.(check int) "recursive entries counted as calls" 5 r.Obs.calls;
  (* Only the outermost activation contributes wall time, so the total
     is a plausible duration, not 5x one. *)
  Alcotest.(check int) "nothing left open" 0 r.Obs.live;
  Alcotest.(check bool) "single accumulation" true (r.Obs.total < 1.)

let test_span_exception_safety () =
  with_obs_enabled @@ fun () ->
  (try Obs.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  let b = get_child (Obs.root ()) "boom" in
  Alcotest.(check int) "span closed on exception" 0 b.Obs.live;
  (* The stack unwound: a new span lands at top level, not under boom. *)
  Obs.with_span "after" (fun () -> ());
  Alcotest.(check bool) "stack unwound" true
    (find_child (Obs.root ()) "after" <> None)

(* --- counters and histograms ------------------------------------------- *)

let test_counters () =
  with_obs_enabled @@ fun () ->
  let c = Obs.counter "test.c" in
  Obs.incr c;
  Obs.incr c;
  Obs.add c 40;
  Alcotest.(check int) "incr/add" 42 (Obs.counter_value c);
  let m = Obs.counter "test.max" in
  Obs.record_max m 7;
  Obs.record_max m 3;
  Obs.record_max m 9;
  Alcotest.(check int) "record_max keeps high water" 9 (Obs.counter_value m);
  Alcotest.(check (list (pair string int)))
    "registry in first-use order"
    [ ("test.c", 42); ("test.max", 9) ]
    (Obs.registered_counters ())

let test_histogram () =
  with_obs_enabled @@ fun () ->
  let h = Obs.histogram "test.h" in
  List.iter (Obs.observe h) [ 0; 1; 1; 2; 3; 4; 7; 8; 100 ];
  let st = Obs.histogram_stats h in
  Alcotest.(check int) "n" 9 st.Obs.hn;
  Alcotest.(check int) "sum" 126 st.Obs.hsum;
  Alcotest.(check int) "max" 100 st.Obs.hmax;
  (* Log2 buckets: {0}, [1,2), [2,4), [4,8), [8,16), [64,128). *)
  Alcotest.(check (list (pair int int)))
    "buckets"
    [ (0, 1); (1, 2); (2, 2); (4, 2); (8, 1); (64, 1) ]
    st.Obs.hbuckets

(* --- disabled mode ------------------------------------------------------ *)

let test_disabled_noop () =
  Obs.reset ();
  Obs.set_enabled false;
  let c = Obs.counter "test.disabled.c" in
  let h = Obs.histogram "test.disabled.h" in
  Obs.incr c;
  Obs.add c 10;
  Obs.observe h 5;
  Obs.with_span "test.disabled.span" (fun () -> ());
  Obs.enter "test.disabled.enter";
  Obs.leave ();
  Alcotest.(check int) "counter untouched" 0 (Obs.counter_value c);
  Alcotest.(check (list (pair string int)))
    "no counters registered" [] (Obs.registered_counters ());
  Alcotest.(check int)
    "no histograms registered" 0
    (List.length (Obs.registered_histograms ()));
  Alcotest.(check int)
    "no spans recorded" 0
    (List.length (Obs.root ()).Obs.children)

let test_timed_when_disabled () =
  Obs.reset ();
  Obs.set_enabled false;
  let r, dt = Obs.timed "test.timed" (fun () -> spin 0.002; 17) in
  Alcotest.(check int) "result passes through" 17 r;
  Alcotest.(check bool) "elapsed measured even when disabled" true (dt >= 0.002);
  Alcotest.(check int)
    "but no span recorded" 0
    (List.length (Obs.root ()).Obs.children)

(* --- JSON --------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Obs_json.Obj
      [
        ("name", Obs_json.String "weird \"chars\"\n\t\\ and unicode-free");
        ("n", Obs_json.Int 42);
        ("neg", Obs_json.Int (-7));
        ("ok", Obs_json.Bool true);
        ("nothing", Obs_json.Null);
        ( "list",
          Obs_json.List [ Obs_json.Int 1; Obs_json.Obj []; Obs_json.List [] ] );
      ]
  in
  match Obs_json.of_string (Obs_json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trip equal" true (v = v')
  | Error e -> Alcotest.failf "parse error: %s" e

let test_json_floats () =
  let v = Obs_json.List [ Obs_json.Float 0.125; Obs_json.Float 3.5e-3 ] in
  match Obs_json.of_string (Obs_json.to_string v) with
  | Ok (Obs_json.List [ Obs_json.Float a; Obs_json.Float b ]) ->
    Alcotest.(check (float 1e-12)) "float a" 0.125 a;
    Alcotest.(check (float 1e-12)) "float b" 3.5e-3 b
  | Ok _ -> Alcotest.fail "floats re-parsed with wrong shape"
  | Error e -> Alcotest.failf "parse error: %s" e

let test_json_snapshot () =
  with_obs_enabled @@ fun () ->
  let c = Obs.counter "snap.c" in
  Obs.add c 5;
  let h = Obs.histogram "snap.h" in
  Obs.observe h 3;
  Obs.with_span "snap.span" (fun () -> ());
  let j = Obs_json.snapshot () in
  (match Obs_json.of_string (Obs_json.to_string j) with
  | Error e -> Alcotest.failf "snapshot is not valid JSON: %s" e
  | Ok j' -> Alcotest.(check bool) "snapshot round-trips" true (j = j'));
  (match Obs_json.member "counters" j with
  | Some counters ->
    Alcotest.(check bool)
      "counter present" true
      (Obs_json.member "snap.c" counters = Some (Obs_json.Int 5))
  | None -> Alcotest.fail "no counters object");
  match Obs_json.member "spans" j with
  | Some (Obs_json.List [ span ]) ->
    Alcotest.(check bool)
      "span name serialized" true
      (Obs_json.member "name" span = Some (Obs_json.String "snap.span"))
  | _ -> Alcotest.fail "expected exactly one top-level span"

(* --- integration -------------------------------------------------------- *)

let test_spcf_records_bdd_activity () =
  with_obs_enabled @@ fun () ->
  let net = Suite.load "cmb" in
  let mc = Mapper.map net in
  let ctx = Spcf.Ctx.create mc in
  let target = Spcf.Ctx.target_of_theta ctx 0.9 in
  let r = Spcf.Exact.short_path ctx ~target in
  ignore (Spcf.Ctx.count ctx r);
  let counters = Obs.registered_counters () in
  let value name =
    match List.assoc_opt name counters with Some v -> v | None -> 0
  in
  Alcotest.(check bool)
    "nonzero BDD cache lookups" true
    (value "bdd.ite.cache_hits" + value "bdd.ite.cache_misses" > 0);
  Alcotest.(check bool)
    "nonzero stability recursion" true
    (value "spcf.stability.calls" > 0);
  (* The span tree reaches the per-output stability computations. *)
  let root = Obs.root () in
  let algo = get_child root "spcf.short-path-based" in
  match algo.Obs.children with
  | [] -> Alcotest.fail "no per-output spans"
  | out :: _ ->
    Alcotest.(check bool)
      "stability span nested under output" true
      (find_child out "stability" <> None)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and self time" `Quick test_span_nesting;
          Alcotest.test_case "recursion" `Quick test_span_recursion;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "probes are no-ops" `Quick test_disabled_noop;
          Alcotest.test_case "timed still measures" `Quick test_timed_when_disabled;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "floats" `Quick test_json_floats;
          Alcotest.test_case "snapshot" `Quick test_json_snapshot;
        ] );
      ( "integration",
        [
          Alcotest.test_case "spcf run records BDD lookups" `Quick
            test_spcf_records_bdd_activity;
        ] );
    ]
