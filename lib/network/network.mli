(** Technology-independent Boolean networks: DAGs of nodes carrying SOP
    local functions over their fanins. Networks are acyclic by
    construction — fanins must exist before a node is added, and
    construction order is a topological order. *)

type signal = int
type node = { fanins : signal array; func : Logic2.Cover.t }
type t

val create : unit -> t
val num_signals : t -> int

val add_input : t -> string -> signal
val add_node : t -> string -> fanins:signal array -> func:Logic2.Cover.t -> signal
(** The function's variable [i] refers to [fanins.(i)]. *)

val mark_output : t -> ?name:string -> signal -> unit

val find : t -> string -> signal option
val name_of : t -> signal -> string
val node_of : t -> signal -> node option
val is_input : t -> signal -> bool
val fanins : t -> signal -> signal array
val func : t -> signal -> Logic2.Cover.t

val inputs : t -> signal array
val outputs : t -> (string * signal) array
val output_signals : t -> signal array
val input_positions : t -> int array
(** Maps each input signal to its primary-input position (-1 otherwise). *)

val topo_order : t -> signal array
val fanouts : t -> signal list array
val cone : t -> signal list -> bool array
(** Transitive fanin membership (roots included). *)

val num_nodes : t -> int
val num_literals : t -> int

val eval : t -> bool array -> bool array
(** All signal values for a primary-input assignment (by PI position). *)

val eval_outputs : t -> bool array -> bool array

val to_bdds : ?budget:Budget.t -> ?shared:bool -> t -> Bdd.man * Bdd.t array
(** Global BDDs per signal; BDD variable [i] is the i-th primary input.
    The fresh manager is governed by [budget] (default
    [Budget.unlimited]): construction itself can raise
    [Budget.Budget_exceeded] on adversarial cone blow-up. [shared]
    (default false) selects {!Bdd.create_shared}, the concurrent
    backend that domain workers can keep growing afterwards. *)

val extract_cone : t -> string list -> t
(** A fresh network keeping only the fanin cones of the named outputs. *)

val equivalent : t -> t -> bool
(** BDD-based combinational equivalence, matching inputs/outputs by name. *)

val pp : Format.formatter -> t -> unit
