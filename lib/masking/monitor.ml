(* Wearout prediction (paper Sec. 2.1): as speed-path gates age, timing
   errors at the critical outputs rise; with the masking circuit in
   place they are masked, but the events e·(y ⊕ ỹ) can be logged and
   analyzed offline — a rising masked-error rate predicts the onset of
   wearout long before it becomes user-visible.

   The sweep degrades the delays of the original circuit's near-critical
   gates by a growing factor and measures, with the event-driven timing
   simulator over random input transitions:
   - the raw error rate at the unprotected outputs,
   - the masked error rate at the mux outputs (should stay ~0 while the
     masking circuit retains slack),
   - the logged-event rate e·(y_captured ≠ ỹ) — the wearout signal. *)

type sample = {
  factor : float;
  raw_error_rate : float;
  masked_error_rate : float;
  logged_rate : float;
  indicator_rate : float; (* how often any e_i is raised *)
}

let aging_sweep ?(trials = 400) ?(seed = 42)
    ?(factors = [ 1.0; 1.05; 1.1; 1.15; 1.2; 1.25; 1.3 ]) (m : Synthesis.t) =
  let model = m.Synthesis.options.Synthesis.delay_model in
  let combined = m.Synthesis.combined in
  let cnet = Mapped.network combined in
  let base_delays = Sta.gate_delays model combined in
  let sta = Sta.analyze ~model combined in
  let clock = Sta.delta sta in
  (* Gates that age: near-critical gates of the original circuit's copy
     inside the combined circuit (within 10% of the clock on some path);
     the masking circuit is assumed fresh/guard-banded, which is the
     paper's design point (it has >= 20% slack anyway). *)
  let original_names = Hashtbl.create 256 in
  Array.iter
    (fun s ->
      match Network.node_of (Mapped.network m.Synthesis.original) s with
      | None -> ()
      | Some _ ->
        Hashtbl.replace original_names
          (Network.name_of (Mapped.network m.Synthesis.original) s)
          ())
    (Network.topo_order (Mapped.network m.Synthesis.original));
  let is_original s = Hashtbl.mem original_names (Network.name_of cnet s) in
  let critical = Sta.critical_signals sta ~target:(0.9 *. clock) in
  let ages s = is_original s && critical.(s) in
  let inputs = Network.inputs cnet in
  let n_in = Array.length inputs in
  let rng = Util.Rng.create seed in
  (* The indicator e is a zero-delay function of the destination
     pattern: the masking circuit is fresh/guard-banded (>= 20% slack),
     so e has settled by the clock edge and cap e = e(to_). That makes
     the indicator rate bit-parallel computable — the trials' to_
     patterns are packed 62 per word and each block costs one Bitsim
     pass over all outputs, instead of one flag probe per trial. *)
  let bsim = Bitsim.of_mapped combined in
  let popcount w =
    let c = ref 0 and x = ref w in
    while !x <> 0 do
      x := !x land (!x - 1);
      incr c
    done;
    !c
  in
  let sample factor =
    let delays = Tsim.degraded_delays base_delays ~factor ~on:ages in
    let raw = ref 0 and masked = ref 0 and logged = ref 0 and raised = ref 0 in
    let to_words = Array.make n_in 0 in
    let fill = ref 0 in
    let flush () =
      if !fill > 0 then begin
        let words = Bitsim.eval_word bsim to_words in
        let e_any =
          List.fold_left
            (fun acc (po : Synthesis.per_output) ->
              acc lor words.(po.Synthesis.e_combined))
            0 m.Synthesis.per_output
        in
        raised := !raised + popcount (e_any land ((1 lsl !fill) - 1));
        Array.fill to_words 0 n_in 0;
        fill := 0
      end
    in
    for _ = 1 to trials do
      let from_ = Array.init n_in (fun _ -> Util.Rng.bool rng) in
      let to_ = Array.init n_in (fun _ -> Util.Rng.bool rng) in
      Array.iteri
        (fun v b -> if b then to_words.(v) <- to_words.(v) lor (1 lsl !fill))
        to_;
      incr fill;
      if !fill = 62 then flush ();
      let r = Tsim.simulate combined ~delays ~from_ ~to_ ~clock in
      let errors = ref false and merrors = ref false and log_ = ref false in
      List.iter
        (fun (po : Synthesis.per_output) ->
          let cap s = r.Tsim.at_clock.(s) and fin s = r.Tsim.final.(s) in
          if cap po.Synthesis.y_combined <> fin po.Synthesis.y_combined then
            errors := true;
          if cap po.Synthesis.masked_combined <> fin po.Synthesis.masked_combined
          then merrors := true;
          if
            cap po.Synthesis.e_combined
            && cap po.Synthesis.y_combined <> cap po.Synthesis.ytilde_combined
          then log_ := true)
        m.Synthesis.per_output;
      if !errors then incr raw;
      if !merrors then incr masked;
      if !log_ then incr logged
    done;
    flush ();
    let rate c = float_of_int c /. float_of_int trials in
    {
      factor;
      raw_error_rate = rate !raw;
      masked_error_rate = rate !masked;
      logged_rate = rate !logged;
      indicator_rate = rate !raised;
    }
  in
  List.map sample factors

let pp_sample fmt s =
  Format.fprintf fmt
    "aging x%.2f: raw errors %.3f, masked-output errors %.3f, logged %.3f, e raised %.3f"
    s.factor s.raw_error_rate s.masked_error_rate s.logged_rate s.indicator_rate
