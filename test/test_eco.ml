(* Tests for the incremental/ECO recompute engine: cone-dirtying rules
   on hand-built fixtures, full-vs-incremental canonical identity,
   snapshot round-trip, jobs byte-identity, and physical reuse of
   out-of-cone SPCF handles. The randomized counterpart is the
   eco-equal differential fuzz oracle. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Two independent cones: y1 = AN2(a, b), y2 = OR2(c, d). *)
let disjoint_design () =
  let m = Mapped.create () in
  let a = Mapped.add_input m "a" in
  let b = Mapped.add_input m "b" in
  let c = Mapped.add_input m "c" in
  let d = Mapped.add_input m "d" in
  let g1 = Mapped.add_gate m ~name:"g1" Cell.an2 [| a; b |] in
  let g2 = Mapped.add_gate m ~name:"g2" Cell.or2 [| c; d |] in
  Mapped.mark_output m ~name:"y1" g1;
  Mapped.mark_output m ~name:"y2" g2;
  m

(* Reconvergent diamond: n1 = IV(a), n2 = IV(a), n3 = AN2(n1, n2),
   plus a dead gate n4 = IV(b) nothing consumes. *)
let diamond_design () =
  let m = Mapped.create () in
  let a = Mapped.add_input m "a" in
  let b = Mapped.add_input m "b" in
  let n1 = Mapped.add_gate m ~name:"n1" Cell.inv [| a |] in
  let n2 = Mapped.add_gate m ~name:"n2" Cell.inv [| a |] in
  let n3 = Mapped.add_gate m ~name:"n3" Cell.an2 [| n1; n2 |] in
  let _n4 = Mapped.add_gate m ~name:"n4" Cell.inv [| b |] in
  Mapped.mark_output m ~name:"y" n3;
  m

let sig_named d name =
  match Eco.find_signal d name with
  | Some s -> s
  | None -> Alcotest.failf "no signal %S" name

let dirty_names d dirty =
  let out = ref [] in
  Array.iteri (fun s b -> if b && Eco.live d s then out := Eco.signal_name d s :: !out) dirty;
  List.sort compare !out

(* --- cone-dirtying fixtures -------------------------------------------- *)

let test_cone_pi_feed () =
  (* Rewiring a gate fed directly by a PI dirties the gate's fanout
     closure only — never the PI or the sibling cone. *)
  let d = Eco.design_of_mapped (disjoint_design ()) in
  let g1 = sig_named d "g1" and c = sig_named d "c" in
  let a = Eco.apply d (Rewire { target = g1; pin = 0; fanin = c }) in
  check_int "one structural seed" 1 (List.length a.Eco.seeds);
  let dirty = Eco.dirty_cone a.Eco.next ~model:Sta.Library a.Eco.seeds a.Eco.load_seeds in
  check_string "library-model cone" "g1" (String.concat "," (dirty_names a.Eco.next dirty));
  (* Under the load-dependent model the rewired pins' drivers are also
     seeds; both are PIs here, whose delay is 0 under every model, so
     the cone is unchanged. *)
  let dirty_ld =
    Eco.dirty_cone a.Eco.next ~model:(Sta.Library_load 0.1) a.Eco.seeds a.Eco.load_seeds
  in
  check_string "load-model cone" "g1" (String.concat "," (dirty_names a.Eco.next dirty_ld))

let test_cone_reconvergent () =
  (* Editing one branch of the diamond dirties that branch and the
     reconvergence point, not the other branch. *)
  let d = Eco.design_of_mapped (diamond_design ()) in
  let n1 = sig_named d "n1" and b = sig_named d "b" in
  let a = Eco.apply d (Rewire { target = n1; pin = 0; fanin = b }) in
  let dirty = Eco.dirty_cone a.Eco.next ~model:Sta.Library a.Eco.seeds a.Eco.load_seeds in
  check_string "diamond cone" "n1,n3" (String.concat "," (dirty_names a.Eco.next dirty))

let test_cone_dead () =
  (* An edit inside a dead cone dirties only the dead gate. *)
  let d = Eco.design_of_mapped (diamond_design ()) in
  let n4 = sig_named d "n4" and a_pi = sig_named d "a" in
  let a = Eco.apply d (Rewire { target = n4; pin = 0; fanin = a_pi }) in
  let dirty = Eco.dirty_cone a.Eco.next ~model:Sta.Library a.Eco.seeds a.Eco.load_seeds in
  check_string "dead cone" "n4" (String.concat "," (dirty_names a.Eco.next dirty))

let test_cone_output_edits () =
  (* Output add/drop changes no gate function: structurally clean under
     the library model; under the load model only the target's driver
     (and closure) is dirtied, because the primary-output load moved. *)
  let d = Eco.design_of_mapped (disjoint_design ()) in
  let g1 = sig_named d "g1" in
  let a = Eco.apply d (Add_output { oname = "y3"; target = g1 }) in
  check "no structural seeds" true (a.Eco.seeds = []);
  let dirty = Eco.dirty_cone a.Eco.next ~model:Sta.Library a.Eco.seeds a.Eco.load_seeds in
  check_string "library add-output cone" "" (String.concat "," (dirty_names a.Eco.next dirty));
  let dirty_ld =
    Eco.dirty_cone a.Eco.next ~model:(Sta.Library_load 0.1) a.Eco.seeds a.Eco.load_seeds
  in
  check_string "load add-output cone" "g1"
    (String.concat "," (dirty_names a.Eco.next dirty_ld));
  let a2 = Eco.apply a.Eco.next (Drop_output { oname = "y3" }) in
  check "drop has no structural seeds" true (a2.Eco.seeds = [])

(* --- full vs incremental ------------------------------------------------ *)

let check_equal_analyses name ?(theta = 0.5) ?(model = Sta.Library) ?band circuit
    edits =
  let d = Eco.design_of_mapped circuit in
  let base = Eco.snapshot ~theta ~model ?band d in
  let incr = Eco.recompute base edits in
  let d', _, _ = Eco.apply_all d edits in
  let full = Eco.snapshot ~theta ~model ?band d' in
  check_string name (Eco.canonical full) (Eco.canonical incr)

let test_full_vs_incremental () =
  let d0 = Eco.design_of_mapped (diamond_design ()) in
  let n1 = sig_named d0 "n1" and b = sig_named d0 "b" in
  check_equal_analyses "diamond rewire" (diamond_design ())
    [ Rewire { target = n1; pin = 0; fanin = b } ];
  check_equal_analyses "diamond rewire (load model)" ~model:(Sta.Library_load 0.1)
    (diamond_design ())
    [ Rewire { target = n1; pin = 0; fanin = b } ];
  check_equal_analyses "diamond rewire (sens band)" ~band:0.6 (diamond_design ())
    [ Rewire { target = n1; pin = 0; fanin = b } ];
  let dd = Eco.design_of_mapped (disjoint_design ()) in
  let g1 = sig_named dd "g1" and g2 = sig_named dd "g2" in
  let a_pi = sig_named dd "a" in
  check_equal_analyses "remove + add + outputs" (disjoint_design ())
    [
      Add { aname = "e1"; cell = Cell.eo; fanins = [| g1; g2 |] };
      Add_output { oname = "y3"; target = sig_named dd "g1" };
      Remove { target = g1 };
      Add_output { oname = "y4"; target = a_pi };
      Drop_output { oname = "y2" };
    ]

(* --- snapshot round-trip ------------------------------------------------ *)

let test_snapshot_roundtrip () =
  let d = Eco.design_of_mapped (diamond_design ()) in
  let t = Eco.snapshot ~theta:0.5 ~band:0.6 d in
  let t' = Eco.deserialize (Eco.serialize t) in
  check_string "fingerprint survives the round-trip" (Eco.fingerprint t)
    (Eco.fingerprint t');
  check_string "serialization is stable" (Eco.serialize t) (Eco.serialize t');
  (* A deserialized snapshot is a live baseline: editing it must agree
     with a from-scratch analysis. *)
  let n2 = sig_named t'.Eco.design "n2" and b = sig_named t'.Eco.design "b" in
  let incr = Eco.recompute t' [ Rewire { target = n2; pin = 0; fanin = b } ] in
  let d', _, _ =
    Eco.apply_all t'.Eco.design [ Rewire { target = n2; pin = 0; fanin = b } ]
  in
  let full = Eco.snapshot ~theta:0.5 ~band:0.6 d' in
  check_string "recompute from deserialized snapshot" (Eco.canonical full)
    (Eco.canonical incr)

(* --- jobs byte-identity ------------------------------------------------- *)

let test_jobs_identity () =
  (* theta 0.5 gives C432 several critical outputs, so jobs > 1
     actually fans out. The canonical form must not depend on jobs. *)
  let d = Eco.design_of_mapped (Mapper.map (Suite.load "C432")) in
  let edit =
    match Eco.smallest_cone_edit d with
    | Some e -> e
    | None -> Alcotest.fail "no 1-gate edit on C432"
  in
  let base = Eco.snapshot ~theta:0.5 d in
  let reference = Eco.canonical (Eco.recompute ~jobs:1 base [ edit ]) in
  List.iter
    (fun jobs ->
      let got = Eco.canonical (Eco.recompute ~jobs base [ edit ]) in
      check_string (Printf.sprintf "jobs=%d identical" jobs) reference got)
    [ 2; 4; 8 ];
  let d', _, _ = Eco.apply_all d [ edit ] in
  check_string "matches full recompute" (Eco.canonical (Eco.snapshot ~theta:0.5 d'))
    reference

(* --- physical reuse ----------------------------------------------------- *)

let test_sigma_handle_reused () =
  let d = Eco.design_of_mapped (disjoint_design ()) in
  let g1 = sig_named d "g1" and c = sig_named d "c" in
  let base = Eco.snapshot ~theta:0.5 d in
  let sigma_of t nm =
    match List.find_opt (fun (n, _, _) -> n = nm) t.Eco.sigmas with
    | Some (_, _, s) -> (s : Bdd.t :> int)
    | None -> Alcotest.failf "%s not critical" nm
  in
  let incr = Eco.recompute base [ Rewire { target = g1; pin = 0; fanin = c } ] in
  (* y2's cone is untouched: its Σ must be the very same node handle in
     the shared manager — reused, not recomputed. *)
  check_int "y2 sigma physically reused" (sigma_of base "y2") (sigma_of incr "y2");
  check "y2 counted as reused" true (incr.Eco.stats.Eco.sigmas_reused >= 1);
  check "y1 recomputed" true (incr.Eco.stats.Eco.sigmas_recomputed >= 1);
  let g2 = sig_named d "g2" in
  let func_of t s =
    (t.Eco.ctx.Spcf.Ctx.funcs.(t.Eco.sig_of.(s)) : Bdd.t :> int)
  in
  check_int "g2 node function physically reused" (func_of base g2) (func_of incr g2);
  check "dirty cone is small" true
    (incr.Eco.stats.Eco.dirty_signals < incr.Eco.stats.Eco.total_signals)

(* --- edit-list text format ---------------------------------------------- *)

let test_edit_text_roundtrip () =
  let d = Eco.design_of_mapped (disjoint_design ()) in
  let g1 = sig_named d "g1" and g2 = sig_named d "g2" in
  let a_pi = sig_named d "a" in
  let edits =
    [
      Eco.Add { aname = "e1"; cell = Cell.eo; fanins = [| g1; g2 |] };
      Eco.Add_output { oname = "y3"; target = g1 };
      Eco.Rewire { target = g2; pin = 1; fanin = a_pi };
      Eco.Remove { target = g1 };
      Eco.Drop_output { oname = "y2" };
    ]
  in
  let text = Eco.edits_to_string d edits in
  let parsed = Eco.parse_edits d text in
  check_string "text round-trip" text (Eco.edits_to_string d parsed);
  check "structural round-trip" true (parsed = edits);
  (* Comments and blank lines are skipped; junk is rejected. *)
  check "comments skipped" true (Eco.parse_edits d ("# hi\n\n" ^ text) = edits);
  check "junk rejected" true
    (match Eco.parse_edits d "frobnicate g1\n" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_apply_validation () =
  let d = Eco.design_of_mapped (disjoint_design ()) in
  let g1 = sig_named d "g1" and g2 = sig_named d "g2" in
  let rejects name edit =
    check name true
      (match Eco.apply d edit with exception Invalid_argument _ -> true | _ -> false)
  in
  rejects "arity mismatch" (Replace { target = g1; cell = Cell.inv; fanins = [| g1; g2 |] });
  rejects "forward fanin (cycle)" (Rewire { target = g1; pin = 0; fanin = g2 });
  rejects "self fanin" (Rewire { target = g1; pin = 0; fanin = g1 });
  rejects "pin out of range" (Rewire { target = g1; pin = 2; fanin = 0 });
  rejects "PI is not a gate" (Remove { target = sig_named d "a" });
  rejects "duplicate name" (Add { aname = "g2"; cell = Cell.inv; fanins = [| g1 |] });
  rejects "duplicate output" (Add_output { oname = "y1"; target = g2 });
  rejects "unknown output" (Drop_output { oname = "nope" });
  let only = Eco.apply d (Drop_output { oname = "y1" }) in
  check "last output protected" true
    (match Eco.apply only.Eco.next (Drop_output { oname = "y2" }) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "eco"
    [
      ( "cones",
        [
          Alcotest.test_case "edit fed by a PI" `Quick test_cone_pi_feed;
          Alcotest.test_case "reconvergent node" `Quick test_cone_reconvergent;
          Alcotest.test_case "dead cone" `Quick test_cone_dead;
          Alcotest.test_case "output add/drop" `Quick test_cone_output_edits;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "full vs incremental" `Quick test_full_vs_incremental;
          Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "jobs byte-identity" `Quick test_jobs_identity;
          Alcotest.test_case "sigma handle reuse" `Quick test_sigma_handle_reused;
        ] );
      ( "edits",
        [
          Alcotest.test_case "text round-trip" `Quick test_edit_text_roundtrip;
          Alcotest.test_case "validation" `Quick test_apply_validation;
        ] );
    ]
