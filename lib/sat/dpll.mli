(** A small DPLL SAT solver (unit propagation, chronological
    backtracking) — the independent engine used to cross-check BDD-based
    verification results. *)

type literal = int

val pos : int -> literal
val neg : int -> literal
val var_of : literal -> int
val is_neg : literal -> bool
val negate : literal -> literal

type result = Sat of bool array | Unsat
type t

val create : int -> t
(** [create nvars] — variables are [0 .. nvars-1]. *)

val add_clause : t -> literal list -> unit

val solve : ?budget:Budget.t -> t -> result
(** Complete search. When a [budget] is supplied it is ticked once per
    branching decision, so an exhausted budget aborts the search with
    [Budget.Budget_exceeded] — the caller must then treat the query as
    undecided, never as [Unsat]. *)

val is_satisfiable : ?budget:Budget.t -> t -> bool
