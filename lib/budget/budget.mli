(** Resource budgets with structured exhaustion.

    A budget bounds an expensive computation three ways at once: a
    wall-clock deadline, a ceiling on BDD nodes allocated in a manager,
    and a ceiling on elementary operations (ite calls). Exhaustion is a
    structured [Budget_exceeded] instead of an OOM or a livelock, so
    callers can catch it and degrade — see [Spcf.Governed] and
    [Masking.Synthesis] for the tier ladder that does.

    The [spec]/[t] split separates *what the user asked for* from *a
    running instance*: a [spec] is relative (a timeout in seconds), an
    instance pins the absolute deadline at [instantiate] time. One spec
    can be instantiated repeatedly (fresh deadline each time) or a live
    instance can be [renew]ed (same deadline, fresh operation count) for
    a fallback tier that must finish inside the original wall. *)

type reason =
  | Deadline  (** the wall-clock deadline passed *)
  | Nodes  (** the BDD node quota was hit *)
  | Ops  (** the operation-count quota was hit *)
  | Cancelled  (** another party cancelled the shared budget *)

exception Budget_exceeded of reason

val reason_to_string : reason -> string

(** {1 External cancellation flags} *)

type flag
(** A shared cancellation handle, decoupled from any one budget
    instance: a spec carrying a flag produces instances whose
    cancellation state {e is} the flag, so one {!trip} stops every
    computation derived from the spec — including fallback tiers
    restarted with {!renew}, which keeps an externally-owned flag
    instead of allocating a fresh one. The multi-tenant server uses one
    flag per request, tripped when the client disconnects. *)

val flag : unit -> flag
val trip : flag -> unit
val tripped : flag -> bool

(** {1 Requests} *)

type spec = {
  timeout : float option;  (** wall-clock seconds, [> 0.] *)
  max_nodes : int option;  (** BDD nodes per manager, [> 0] *)
  max_ops : int option;  (** ite calls per instance, [> 0] *)
  cancel_with : flag option;
      (** external cancellation: instances poll this flag as their own
          cancel state. A spec with only a flag is {e not}
          [is_no_limits] — the ungoverned fast path never polls. *)
}

val no_limits : spec
val is_no_limits : spec -> bool

val of_env : unit -> spec
(** Read [EMASK_BUDGET_TIMEOUT], [EMASK_BUDGET_MAX_NODES] and
    [EMASK_BUDGET_MAX_OPS]. Unset or empty variables contribute no
    limit; malformed or non-positive values raise [Invalid_argument]
    with a one-line message naming the variable. *)

val merge : spec -> spec -> spec
(** [merge a b] takes each field from [a] when set, else from [b] —
    command-line flags over environment defaults. *)

val cancelled_by : flag -> spec -> spec
(** [cancelled_by f s] is [s] with its instances cancellable through
    [f]. *)

(** {1 Instances} *)

type t

val unlimited : t
(** The no-op budget: every check is a single physical-equality test.
    [instantiate no_limits == unlimited]. *)

val instantiate : spec -> t
(** Pin the deadline ([now + timeout]) and arm the quotas. *)

val create : ?timeout:float -> ?max_nodes:int -> ?max_ops:int -> unit -> t
(** Shorthand for [instantiate] of an inline spec. *)

val renew : t -> t
(** Same deadline and quotas, fresh operation count and a fresh cancel
    flag — for a fallback tier retried inside the original wall. An
    externally-owned flag ([spec.cancel_with]) is kept, not refreshed:
    a disconnected requester must stop the retry too. *)

val for_worker : t -> t
(** Same deadline and quotas, fresh operation count, but the cancel
    flag is {e shared} with the parent: cancelling any sibling (or the
    parent) stops the whole team cooperatively. *)

val spec_of : t -> spec
(** The remaining budget as a spec: the timeout shrinks to the time
    left on the deadline (clamped at a small positive epsilon), quotas
    carry over unchanged. [spec_of unlimited = no_limits]. *)

(** {1 Checks} *)

val cancel : t -> unit
val cancelled : t -> bool

val exhausted : t -> reason option
(** Non-raising poll of deadline, cancellation and the op quota — for
    driver loops that want to stop between work items. *)

val max_nodes : t -> int
(** The node quota, or [max_int] when unbounded. *)

val check_nodes : t -> int -> unit
(** Raise [Budget_exceeded Nodes] if [n] exceeds the node quota. *)

val tick : t -> unit
(** Count one operation. Raises [Budget_exceeded] when the op quota is
    hit; polls cancellation and the deadline on an amortized schedule
    (every 256 / 1024 ticks) so the hot path stays a couple of integer
    tests. [tick unlimited] is free. *)

val poll : t -> unit
(** Un-amortized checkpoint: raise [Budget_exceeded] immediately on
    cancellation or a passed deadline. For coarse work-unit boundaries
    (one SPCF output per iteration); [poll unlimited] is free. *)
