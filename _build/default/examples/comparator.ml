(* The paper's worked example (Sec. 4.2 / Fig. 2): a 2-bit comparator
   under the abstract delay model (inverter = 1, two-input gate = 2).

     dune exec examples/comparator.exe

   Reproduces, step by step:
   - the critical path delay Δ = 7 and the speed-paths through !b0/!b1,
   - the SPCF Σ_y(Δ_y = 6.3) = !a1 + !a0·b1 (bit-exact vs. the paper),
   - the prediction ỹ and indicator e of the error-masking circuit,
   - and validates masking with the event-driven timing simulator. *)

let pi_names = [| "a0"; "a1"; "b0"; "b1" |]
let name_of v = pi_names.(v)

let () =
  let net = Comparator.network () in
  let options =
    { Masking.Synthesis.default_options with delay_model = Sta.Paper_units }
  in
  let m = Masking.Synthesis.synthesize ~options net in
  let ctx = m.Masking.Synthesis.ctx in
  let man = ctx.Spcf.Ctx.man in

  Format.printf "2-bit comparator: y = 1 iff a1a0 >= b1b0@.";
  Format.printf "critical path delay = %.1f (paper: %.1f)@."
    m.Masking.Synthesis.delta Comparator.paper_delta;
  Format.printf "target arrival Δ_y  = %.2f (paper: %.2f)@."
    m.Masking.Synthesis.target Comparator.paper_target;

  (* The SPCF, recovered as an irredundant SOP over the inputs. *)
  let po = List.hd m.Masking.Synthesis.per_output in
  let sigma_cover = Isop.of_bdd man po.Masking.Synthesis.sigma in
  Format.printf "SPCF Σ_y = %s   (paper: !a1 + !a0*b1)@."
    (Logic2.Cover.to_string ~names:name_of sigma_cover);
  let expected = Bdd.of_cover man Comparator.paper_spcf in
  assert (po.Masking.Synthesis.sigma = expected);
  Format.printf "  -> matches the paper bit for bit@.";

  (* Prediction and indicator functions of the masking circuit. *)
  let cnet = Mapped.network m.Masking.Synthesis.combined in
  let cf = Masking.Synthesis.bdds_in_man man cnet in
  let show name f =
    Format.printf "%s = %s@." name
      (Logic2.Cover.to_string ~names:name_of (Isop.of_bdd man f))
  in
  show "prediction ỹ" cf.(po.Masking.Synthesis.ytilde_combined);
  show "indicator  e" cf.(po.Masking.Synthesis.e_combined);
  Format.printf "(paper:  ỹ = (a0 + !b0)(a1 + !b1),  e = !a1 + b1 after simplification;@.";
  Format.printf " any functions with Σ ⊆ e ⊆ [ỹ = y] are equally valid — checked below)@.";
  assert (Bdd.bimply man po.Masking.Synthesis.sigma cf.(po.Masking.Synthesis.e_combined) = Bdd.btrue);
  assert (
    Bdd.bimply man
      cf.(po.Masking.Synthesis.e_combined)
      (Bdd.bxnor man cf.(po.Masking.Synthesis.y_combined) cf.(po.Masking.Synthesis.ytilde_combined))
    = Bdd.btrue);

  (* Demonstrate masking in time: age the comparator's speed-path gates
     by 30% and capture at the clock. (In the abstract unit model the
     output mux costs 2 units, so the clock is 9; smaller degradations
     still meet it.) *)
  let combined = m.Masking.Synthesis.combined in
  let model = Sta.Paper_units in
  let sta = Sta.analyze ~model combined in
  let clock = Sta.delta sta in
  let base = Sta.gate_delays model combined in
  let critical = Sta.critical_signals sta ~target:(0.9 *. clock) in
  let delays = Tsim.degraded_delays base ~factor:1.3 ~on:(fun s -> critical.(s)) in
  (* A transition that exercises a speed-path: b1 falls with a < b. *)
  let masked_errors = ref 0 and raw_errors = ref 0 and trials = ref 0 in
  let rng = Util.Rng.create 3 in
  for _ = 1 to 256 do
    let from_ = Array.init 4 (fun _ -> Util.Rng.bool rng) in
    let to_ = Array.init 4 (fun _ -> Util.Rng.bool rng) in
    incr trials;
    let r = Tsim.simulate combined ~delays ~from_ ~to_ ~clock in
    let cap s = r.Tsim.at_clock.(s) and fin s = r.Tsim.final.(s) in
    if cap po.Masking.Synthesis.y_combined <> fin po.Masking.Synthesis.y_combined then
      incr raw_errors;
    if cap po.Masking.Synthesis.masked_combined <> fin po.Masking.Synthesis.masked_combined
    then incr masked_errors
  done;
  Format.printf
    "timing simulation (30%% aging on speed-path gates, %d random transitions):@."
    !trials;
  Format.printf "  unprotected output errors: %d@." !raw_errors;
  Format.printf "  masked output errors:      %d@." !masked_errors;
  assert (!raw_errors > 0);
  assert (!masked_errors = 0);
  Format.printf "the error-masking circuit masks every speed-path timing error.@."
