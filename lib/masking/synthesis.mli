(** Synthesis of the error-masking circuit (paper Sec. 4): SPCF-driven
    simplification of the technology-independent network, indicator
    construction, network optimization, mapping, and mux insertion. *)

type indicator =
  | Structural
      (** e_y = AND of per-node indicators e_{n_j} = n⁰ ⊕ n¹ (Eqn. 2) *)
  | Direct
      (** e_y synthesized from the BDD interval Σ_y ⊆ e ⊆ (ỹ = y) *)

type algorithm = Short_path | Path_based | Node_based

type cube_order = Ascending | Descending | Unsorted

type options = {
  theta : float;  (** target arrival factor; the paper uses 0.9 *)
  algorithm : algorithm;  (** SPCF computation engine *)
  indicator : indicator;
  cube_order : cube_order;  (** essential-weight scan order (ablation) *)
  simplify_e : bool;  (** the paper's final e cube elimination *)
  optimize : bool;  (** run Netopt on T̃ before mapping *)
  collapse : bool;  (** allow affine chain collapsing *)
  map_style : Mapper.style;
  log_errors : bool;  (** add e·(y⊕ỹ) outputs for wearout logging *)
  delay_model : Sta.delay_model;
  prune_false_paths : bool;
      (** opt-in (default [false]): drop a critical output from the
          masking cover when {e both} every near-critical path to it
          proves statically false ([Sensitization]) {e and} its SPCF
          Σ_y is empty. The indicator [e] shrinks while
          [Σ ⊆ e ⊆ (ỹ = y)] is preserved — Σ_y of a pruned output is
          empty, so dropping it removes nothing from Σ. Only the
          exact tier prunes; fallback tiers carry no certificate. *)
  jobs : int;
      (** SPCF worker domains ([Spcf.Parallel]); 0 = inherit
          [EMASK_JOBS], 1 = sequential (default) *)
  budget : Budget.spec;
      (** resource governance. [Budget.no_limits] (the default) runs
          the ungoverned path unchanged; otherwise [synthesize] walks
          the degradation ladder exact → node-based → always-on
          ([Spcf.Governed]), rerunning the whole construction in a
          fresh governed context per tier, and records the landing
          tier in the result — degradation is observable, never a
          crash and never silent. *)
}

val default_options : options

type per_output = {
  name : string;
  tier : Spcf.Governed.tier;  (** ladder tier this output landed on *)
  sigma : Bdd.t;  (** the SPCF Σ_y, over the context's manager *)
  y_combined : Network.signal;  (** unprotected output inside [combined] *)
  ytilde_combined : Network.signal;
  e_combined : Network.signal;
  masked_combined : Network.signal;  (** the MUX21 output *)
  err_combined : Network.signal option;  (** e·(y⊕ỹ) when logging *)
}

type t = {
  source : Network.t;
  original : Mapped.t;  (** C *)
  ctx : Spcf.Ctx.t;
  spcf : Spcf.Ctx.result;
  masking_net : Network.t;  (** T̃ after optimization *)
  masking : Mapped.t;  (** C̃, standalone: inputs = PIs, outputs ỹ_i / e_i *)
  combined : Mapped.t;  (** C + C̃ + output muxes; original output names *)
  per_output : per_output list;
  options : options;
  target : float;
  delta : float;
  tier : Spcf.Governed.tier;
      (** the ladder tier the synthesis landed on ([Exact] whenever
          [options.budget = Budget.no_limits]) *)
  attempts : (Spcf.Governed.tier * Budget.reason) list;
      (** budget walls hit by the tiers that did {e not} complete *)
  pruned : string list;
      (** critical outputs dropped from the cover as provably false
          (empty unless [prune_false_paths] was set) *)
}

val synthesize : ?options:options -> Network.t -> t
(** Never raises [Budget.Budget_exceeded]: the always-on floor tier
    runs ungoverned and always completes, with Σ = 1 preserving every
    node function exactly (so ỹ = y) and e ≡ 1. *)

(**/**)

val select_cubes :
  man:Bdd.man ->
  order:cube_order ->
  sigma:Bdd.t ->
  fanin_bdds:Bdd.t array ->
  Logic2.Cover.t ->
  Logic2.Cover.t
(** Greedy essential-weight cube selection (exposed for tests). *)

val bdds_in_man : Bdd.man -> Network.t -> Bdd.t array
(** Elaborate a network's signals in an existing manager (input orders
    must agree); exposed for verification code. *)
