(* A cube (product term) over variables 0..n-1. Each variable appears
   positively, negatively, or not at all; [pos] and [neg] are disjoint by
   construction. The empty (contradictory) cube is not representable:
   operations that would produce it return [None]. *)

type polarity = Pos | Neg | Absent

type t = { n : int; pos : Bits.t; neg : Bits.t }

let universe n = { n; pos = Bits.create n; neg = Bits.create n }

let num_vars t = t.n

let make n lits =
  let pos = Bits.create n and neg = Bits.create n in
  let add (v, ph) =
    if v < 0 || v >= n then invalid_arg "Cube.make: variable out of range";
    match ph with
    | true ->
      if Bits.get neg v then invalid_arg "Cube.make: contradictory literal";
      Bits.set pos v
    | false ->
      if Bits.get pos v then invalid_arg "Cube.make: contradictory literal";
      Bits.set neg v
  in
  List.iter add lits;
  { n; pos; neg }

let polarity t v =
  if Bits.get t.pos v then Pos else if Bits.get t.neg v then Neg else Absent

let literals t =
  let lp = Bits.fold (fun v acc -> (v, true) :: acc) t.pos [] in
  Bits.fold (fun v acc -> (v, false) :: acc) t.neg lp
  |> List.sort compare

let num_literals t = Bits.count t.pos + Bits.count t.neg

let is_universe t = num_literals t = 0

let equal a b = a.n = b.n && Bits.equal a.pos b.pos && Bits.equal a.neg b.neg

let hash t = (Bits.hash t.pos * 31) lxor Bits.hash t.neg

let compare_by_literals a b =
  let c = compare (num_literals a) (num_literals b) in
  if c <> 0 then c else compare (literals a) (literals b)

(* c1 covers c2: every literal of c1 appears in c2 (c1 ⊇ c2 as sets of
   minterms iff c1's literals ⊆ c2's literals). *)
let covers c1 c2 = Bits.subset c1.pos c2.pos && Bits.subset c1.neg c2.neg

let intersect a b =
  if a.n <> b.n then invalid_arg "Cube.intersect: arity mismatch";
  if Bits.disjoint a.pos b.neg && Bits.disjoint a.neg b.pos then
    Some { n = a.n; pos = Bits.union a.pos b.pos; neg = Bits.union a.neg b.neg }
  else None

let disjoint a b = Option.is_none (intersect a b)

(* Number of variables in which a and b have opposite polarities. *)
let distance a b =
  Bits.count (Bits.inter a.pos b.neg) + Bits.count (Bits.inter a.neg b.pos)

(* Smallest cube containing both a and b: keep literals on which they agree. *)
let supercube a b =
  { n = a.n; pos = Bits.inter a.pos b.pos; neg = Bits.inter a.neg b.neg }

(* Cofactor w.r.t. literal (v, ph): None if the cube requires v = not ph,
   otherwise the cube with v's literal removed. *)
let cofactor t v ph =
  match polarity t v, ph with
  | Pos, false | Neg, true -> None
  | Absent, _ -> Some t
  | Pos, true ->
    let pos = Bits.copy t.pos in
    Bits.clear pos v;
    Some { t with pos }
  | Neg, false ->
    let neg = Bits.copy t.neg in
    Bits.clear neg v;
    Some { t with neg }

let with_literal t v ph =
  match polarity t v, ph with
  | Pos, false | Neg, true -> None
  | Pos, true | Neg, false -> Some t
  | Absent, true ->
    let pos = Bits.copy t.pos in
    Bits.set pos v;
    Some { t with pos }
  | Absent, false ->
    let neg = Bits.copy t.neg in
    Bits.set neg v;
    Some { t with neg }

let remove_var t v =
  match polarity t v with
  | Absent -> t
  | Pos ->
    let pos = Bits.copy t.pos in
    Bits.clear pos v;
    { t with pos }
  | Neg ->
    let neg = Bits.copy t.neg in
    Bits.clear neg v;
    { t with neg }

(* Consensus on variable v: if a has v and b has !v (or vice versa) and
   they conflict in no other variable, the consensus drops v. *)
let consensus a b =
  if distance a b <> 1 then None
  else
    let merged =
      { n = a.n; pos = Bits.union a.pos b.pos; neg = Bits.union a.neg b.neg }
    in
    let conflict = Bits.inter merged.pos merged.neg in
    match Bits.first_set conflict with
    | None -> assert false
    | Some v ->
      let pos = Bits.copy merged.pos and neg = Bits.copy merged.neg in
      Bits.clear pos v;
      Bits.clear neg v;
      Some { n = a.n; pos; neg }

let eval t assignment =
  let ok = ref true in
  Bits.iter (fun v -> if not assignment.(v) then ok := false) t.pos;
  Bits.iter (fun v -> if assignment.(v) then ok := false) t.neg;
  !ok

let support t = Bits.union t.pos t.neg

(* log2 of the number of minterms: 2^(n - #literals). *)
let minterm_log2 t = t.n - num_literals t

let pp ?names fmt t =
  if is_universe t then Format.fprintf fmt "1"
  else begin
    let name v =
      match names with Some f -> f v | None -> Printf.sprintf "x%d" v
    in
    let first = ref true in
    let lit v ph =
      if !first then first := false else Format.fprintf fmt "*";
      Format.fprintf fmt "%s%s" (if ph then "" else "!") (name v)
    in
    for v = 0 to t.n - 1 do
      match polarity t v with
      | Pos -> lit v true
      | Neg -> lit v false
      | Absent -> ()
    done
  end

let to_string ?names t = Format.asprintf "%a" (pp ?names) t
