(* Reader/writer for the combinational subset of BLIF: .model, .inputs,
   .outputs, .names (single-output on-set covers), .end. Latches and
   subcircuits are rejected — the paper's circuits are combinational.

   Parsing is two-staged: [parse_source] produces a raw netlist with
   source locations and no structural guarantees (the form the analysis
   passes lint), and [elaborate] builds the acyclic Network, failing
   with file:line positions on anything ill-formed. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type loc = { file : string option; line : int }

let loc_to_string l =
  match l.file with
  | Some f -> Printf.sprintf "%s:%d" f l.line
  | None -> Printf.sprintf "line %d" l.line

let pp_loc fmt l = Format.pp_print_string fmt (loc_to_string l)

let fail_at loc fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (loc_to_string loc ^ ": " ^ s))) fmt

type raw_node = {
  out : string;
  ins : string list;
  rows : (string * char) list;
  nloc : loc;
}

type source = {
  src_file : string option;
  model : string option;
  src_inputs : (string * loc) list;
  src_outputs : (string * loc) list;
  nodes : raw_node list;
}

(* Logical lines with their 1-based physical line number: continuation
   lines ending in '\' are joined (keeping the number of the first),
   comments and blanks dropped, tokens split on spaces and tabs. *)
let tokenize_lines text =
  let raw = String.split_on_char '\n' text in
  let rec join acc start pending n = function
    | [] -> List.rev (if pending = "" then acc else (start, pending) :: acc)
    | line :: rest ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let start = if pending = "" then n else start in
      let line = String.trim (pending ^ " " ^ line) in
      if String.length line > 0 && line.[String.length line - 1] = '\\' then
        join acc start (String.sub line 0 (String.length line - 1)) (n + 1) rest
      else if line = "" then join acc 0 "" (n + 1) rest
      else join ((start, line) :: acc) 0 "" (n + 1) rest
  in
  let lines = join [] 0 "" 1 raw in
  List.filter_map
    (fun (n, l) ->
      let toks =
        String.split_on_char ' ' l
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun s -> s <> "")
      in
      if toks = [] then None else Some (n, toks))
    lines

type pending_names = { p_out : string; p_ins : string list; p_rows : (string * char) list; p_loc : loc }

let parse_source ?file text =
  let lines = tokenize_lines text in
  let at line = { file; line } in
  let model = ref None in
  let inputs = ref [] and outputs = ref [] and names = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | None -> ()
    | Some p ->
      names := { out = p.p_out; ins = p.p_ins; rows = List.rev p.p_rows; nloc = p.p_loc } :: !names;
      current := None
  in
  let handle (line, tokens) =
    let loc = at line in
    match tokens with
    | ".model" :: rest -> if !model = None then model := (match rest with m :: _ -> Some m | [] -> None)
    | ".inputs" :: ins -> inputs := !inputs @ List.map (fun i -> (i, loc)) ins
    | ".outputs" :: outs -> outputs := !outputs @ List.map (fun o -> (o, loc)) outs
    | ".names" :: signals -> begin
      flush ();
      match List.rev signals with
      | out :: ins_rev ->
        current := Some { p_out = out; p_ins = List.rev ins_rev; p_rows = []; p_loc = loc }
      | [] -> fail_at loc ".names with no signals"
    end
    | ".end" :: _ -> flush ()
    | (".latch" | ".subckt" | ".gate") :: _ ->
      fail_at loc "only combinational single-model BLIF is supported"
    | [ row; value ] when !current <> None ->
      let p = Option.get !current in
      if String.length value <> 1 || (value.[0] <> '0' && value.[0] <> '1') then
        fail_at loc "bad cover output value %S" value;
      current := Some { p with p_rows = (row, value.[0]) :: p.p_rows }
    | [ value ] when !current <> None && (value = "0" || value = "1") ->
      (* Constant node: a row with no input plane. *)
      let p = Option.get !current in
      current := Some { p with p_rows = ("", value.[0]) :: p.p_rows }
    | tok :: _ -> fail_at loc "unexpected token %S" tok
    | [] -> ()
  in
  List.iter handle lines;
  flush ();
  {
    src_file = file;
    model = !model;
    src_inputs = !inputs;
    src_outputs = !outputs;
    nodes = List.rev !names;
  }

let read_source path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_source ~file:path text

(* Strict elaboration of a raw source into an acyclic network. Nodes may
   appear in any order in BLIF, so they are inserted in dependency
   order. Every structural defect — duplicate inputs, multiply driven
   signals (including a .names block shadowing a declared input, which
   an earlier version silently dropped), undriven signals, cycles,
   mixed on/off rows — fails with a source position. *)
let elaborate src =
  let net = Network.create () in
  List.iter
    (fun (i, loc) ->
      if Network.find net i <> None then fail_at loc "input %S declared twice" i;
      ignore (Network.add_input net i))
    src.src_inputs;
  let defs = Hashtbl.create 64 in
  List.iter
    (fun p ->
      (match Hashtbl.find_opt defs p.out with
      | Some prev ->
        fail_at p.nloc "signal %S defined twice (first at %s)" p.out
          (loc_to_string prev.nloc)
      | None -> ());
      if Network.find net p.out <> None then
        fail_at p.nloc "signal %S is a declared input and may not be driven by .names"
          p.out;
      Hashtbl.replace defs p.out p)
    src.nodes;
  let in_progress = Hashtbl.create 64 in
  let rec ensure ?at name =
    match Network.find net name with
    | Some s -> s
    | None ->
      let p =
        match Hashtbl.find_opt defs name with
        | Some p -> p
        | None -> (
          let msg = Printf.ksprintf (fun s -> s) "undriven signal %S" name in
          match at with
          | Some loc -> fail_at loc "%s" msg
          | None -> fail "%s" msg)
      in
      if Hashtbl.mem in_progress name then
        fail_at p.nloc "combinational cycle through %S" name;
      Hashtbl.replace in_progress name ();
      let fanins = Array.of_list (List.map (ensure ~at:p.nloc) p.ins) in
      let arity = Array.length fanins in
      let on_rows = List.filter (fun (_, v) -> v = '1') p.rows in
      let off_rows = List.filter (fun (_, v) -> v = '0') p.rows in
      let cover_of rows =
        Logic2.Cover.of_cubes arity
          (List.map
             (fun (row, _) ->
               if row = "" then Logic2.Cube.universe arity
               else
                 try Logic2.Sop.cube_of_blif_row arity row
                 with _ -> fail_at p.nloc "bad cover row %S for %S" row name)
             rows)
      in
      let func =
        match (on_rows, off_rows) with
        | [], [] -> Logic2.Cover.zero arity
        | rows, [] -> cover_of rows
        | [], rows -> Logic2.Cover.complement (cover_of rows)
        | _ -> fail_at p.nloc "mixed on-set/off-set rows for %S" name
      in
      Hashtbl.remove in_progress name;
      Network.add_node net name ~fanins ~func
  in
  List.iter
    (fun (o, loc) -> Network.mark_output net ~name:o (ensure ~at:loc o))
    src.src_outputs;
  net

let parse text = elaborate (parse_source text)
let parse_file path = elaborate (read_source path)

let to_string ?(model = "circuit") net =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr ".model %s\n" model;
  let names arr = String.concat " " (Array.to_list arr) in
  pr ".inputs %s\n" (names (Array.map (Network.name_of net) (Network.inputs net)));
  pr ".outputs %s\n" (names (Array.map fst (Network.outputs net)));
  Array.iter
    (fun s ->
      match Network.node_of net s with
      | None -> ()
      | Some n ->
        pr ".names %s %s\n"
          (names (Array.map (Network.name_of net) n.Network.fanins))
          (Network.name_of net s);
        List.iter
          (fun c -> pr "%s 1\n" (Logic2.Sop.blif_row_of_cube c))
          (Logic2.Cover.cubes n.Network.func))
    (Network.topo_order net);
  (* Outputs that rename an existing signal need a pass-through node. *)
  Array.iter
    (fun (name, s) ->
      if Network.name_of net s <> name then begin
        pr ".names %s %s\n" (Network.name_of net s) name;
        pr "1 1\n"
      end)
    (Network.outputs net);
  pr ".end\n";
  Buffer.contents buf

let write_file ?model path net =
  let oc = open_out path in
  output_string oc (to_string ?model net);
  close_out oc
