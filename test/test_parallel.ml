(* Tests for the domain-parallel SPCF driver: the cross-manager DAG
   transport round-trips arbitrary functions, and running with several
   worker domains yields exactly the sequential results — same critical
   outputs in the same order, same per-output SPCFs, same synthesized
   masking circuit. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---------- Export / import round-trip ---------- *)

type expr = Var of int | Not of expr | And of expr * expr | Xor of expr * expr

let rec eval_expr env = function
  | Var v -> env.(v)
  | Not e -> not (eval_expr env e)
  | And (a, b) -> eval_expr env a && eval_expr env b
  | Xor (a, b) -> eval_expr env a <> eval_expr env b

let rec build man = function
  | Var v -> Bdd.var man v
  | Not e -> Bdd.bnot man (build man e)
  | And (a, b) -> Bdd.band man (build man a) (build man b)
  | Xor (a, b) -> Bdd.bxor man (build man a) (build man b)

let nvars = 6
let envs = List.init (1 lsl nvars) (fun i -> Array.init nvars (fun v -> (i lsr v) land 1 = 1))

let expr_gen =
  let open QCheck.Gen in
  sized_size (int_bound 8)
  @@ fix (fun self n ->
         if n <= 0 then map (fun v -> Var v) (int_bound (nvars - 1))
         else
           frequency
             [
               (1, map (fun v -> Var v) (int_bound (nvars - 1)));
               (2, map (fun e -> Not e) (self (n - 1)));
               (2, map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2)));
               (2, map2 (fun a b -> Xor (a, b)) (self (n / 2)) (self (n / 2)));
             ])

let rec expr_print = function
  | Var v -> Printf.sprintf "x%d" v
  | Not e -> Printf.sprintf "!(%s)" (expr_print e)
  | And (a, b) -> Printf.sprintf "(%s & %s)" (expr_print a) (expr_print b)
  | Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (expr_print a) (expr_print b)

let prop_roundtrip =
  QCheck.Test.make ~name:"transport: export/import preserves the function"
    ~count:300
    (QCheck.make ~print:expr_print expr_gen)
    (fun e ->
      let m1 = Bdd.create ~nvars () in
      let m2 = Bdd.create ~nvars () in
      let f = build m1 e in
      let g = Spcf.Parallel.import m2 (Spcf.Parallel.export m1 f) in
      List.for_all (fun env -> Bdd.eval m2 g env = eval_expr env e) envs)

let prop_roundtrip_same_manager =
  QCheck.Test.make ~name:"transport: re-import into the source manager is identity"
    ~count:300
    (QCheck.make ~print:expr_print expr_gen)
    (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build man e in
      Spcf.Parallel.import man (Spcf.Parallel.export man f) = f)

(* ---------- Determinism: jobs = 4 vs jobs = 1 ---------- *)

let circuits = [ "i1"; "cmb"; "x2" ]

(* Per-output SPCFs live in different managers for the two runs, so the
   comparison is semantic: same names in the same order, same minterm
   counts per output and for the union. *)
let same_result (ctx1, (r1 : Spcf.Ctx.result)) (ctx4, (r4 : Spcf.Ctx.result)) =
  let names r = List.map (fun (n, _, _) -> n) r.Spcf.Ctx.outputs in
  check_str "output order" (String.concat "," (names r1)) (String.concat "," (names r4));
  List.iter2
    (fun (n, _, s1) (_, _, s4) ->
      check (n ^ " satcount") true
        (Extfloat.equal
           (Bdd.satcount ctx1.Spcf.Ctx.man s1)
           (Bdd.satcount ctx4.Spcf.Ctx.man s4)))
    r1.Spcf.Ctx.outputs r4.Spcf.Ctx.outputs;
  check "union satcount" true
    (Extfloat.equal (Spcf.Ctx.count ctx1 r1) (Spcf.Ctx.count ctx4 r4))

let run_spcf algo jobs name =
  let mc = Mapper.map (Suite.load name) in
  let ctx = Spcf.Ctx.create mc in
  let target = Spcf.Ctx.target_of_theta ctx 0.9 in
  let r =
    match algo with
    | `Short -> Spcf.Parallel.short_path ~jobs ctx ~target
    | `Path -> Spcf.Parallel.path_based ~jobs ctx ~target
  in
  (ctx, r)

let test_spcf_determinism algo () =
  List.iter
    (fun name -> same_result (run_spcf algo 1 name) (run_spcf algo 4 name))
    circuits

(* Downstream synthesis + verification must be unaffected by the worker
   count: every verdict and every overhead figure matches. *)
let test_synthesis_determinism () =
  List.iter
    (fun name ->
      let net = Suite.load name in
      let run jobs =
        let options = { Masking.Synthesis.default_options with jobs } in
        Masking.Verify.check (Masking.Synthesis.synthesize ~options net)
      in
      let r1 = run 1 and r4 = run 4 in
      check (name ^ " equivalent") r1.Masking.Verify.equivalent
        r4.Masking.Verify.equivalent;
      check (name ^ " coverage_ok") r1.Masking.Verify.coverage_ok
        r4.Masking.Verify.coverage_ok;
      check (name ^ " prediction_ok") r1.Masking.Verify.prediction_ok
        r4.Masking.Verify.prediction_ok;
      check_int (name ^ " critical outputs") r1.Masking.Verify.critical_outputs
        r4.Masking.Verify.critical_outputs;
      check (name ^ " critical minterms") true
        (Extfloat.equal r1.Masking.Verify.critical_minterms
           r4.Masking.Verify.critical_minterms);
      Alcotest.(check (float 1e-9))
        (name ^ " area overhead") r1.Masking.Verify.area_overhead_pct
        r4.Masking.Verify.area_overhead_pct;
      Alcotest.(check (float 1e-9))
        (name ^ " coverage pct") r1.Masking.Verify.coverage_pct
        r4.Masking.Verify.coverage_pct)
    circuits

(* Obs collection forces the sequential path (the registry is global);
   the jobs knob must not change results there either. *)
let test_obs_forces_sequential () =
  Obs.set_enabled true;
  Obs.reset ();
  let c1, r1 = run_spcf `Short 1 "i1" in
  let c4, r4 = run_spcf `Short 4 "i1" in
  Obs.reset ();
  Obs.set_enabled false;
  same_result (c1, r1) (c4, r4)

(* Deterministic QCheck seeding (no wall-clock self-init): the state
   comes from Fuzz.Rng.qcheck_state, overridable via QCHECK_SEED. *)
let qsuite name tests =
  let rand = Fuzz.Rng.qcheck_state () in
  (name, List.map (QCheck_alcotest.to_alcotest ~rand) tests)

let () =
  Alcotest.run "spcf-parallel"
    [
      qsuite "transport" [ prop_roundtrip; prop_roundtrip_same_manager ];
      ( "determinism",
        [
          Alcotest.test_case "short-path jobs=4 = jobs=1" `Quick
            (test_spcf_determinism `Short);
          Alcotest.test_case "path-based jobs=4 = jobs=1" `Quick
            (test_spcf_determinism `Path);
          Alcotest.test_case "synthesis jobs=4 = jobs=1" `Quick
            test_synthesis_determinism;
          Alcotest.test_case "obs forces sequential" `Quick
            test_obs_forces_sequential;
        ] );
    ]
