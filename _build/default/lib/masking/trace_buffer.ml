(* In-system silicon debug support (paper Sec. 2.1): trace buffers hold a
   limited number of cycles; capturing only the cycles on which some
   speed-path is exercised (any e_i raised) stretches the observation
   window over many more cycles of execution than capture-everything. *)

type report = {
  buffer_size : int;
  cycles_simulated : int;
  always_window : int; (* cycles of execution covered by capture-all *)
  selective_window : int; (* cycles covered until the buffer fills *)
  captures : int; (* entries stored by selective capture *)
  expansion : float; (* selective_window / always_window *)
}

let selective_capture ?(seed = 7) ~buffer_size ~cycles (m : Synthesis.t) =
  let combined = m.Synthesis.combined in
  let cnet = Mapped.network combined in
  let sim = Bitsim.prepare cnet in
  let rng = Util.Rng.create seed in
  let n_in = Array.length (Network.inputs cnet) in
  let captures = ref 0 in
  let window = ref cycles in
  (try
     for cycle = 0 to cycles - 1 do
       (* One pattern per cycle (bit-parallel width unused here for
          clarity; the interesting quantity is the capture decision). *)
       let word = Array.init n_in (fun _ -> if Util.Rng.bool rng then 1 else 0) in
       let values = Bitsim.eval_word sim word in
       let raised =
         List.exists
           (fun (po : Synthesis.per_output) ->
             values.(po.Synthesis.e_combined) land 1 = 1)
           m.Synthesis.per_output
       in
       if raised then begin
         incr captures;
         if !captures >= buffer_size then begin
           window := cycle + 1;
           raise Exit
         end
       end
     done
   with Exit -> ());
  {
    buffer_size;
    cycles_simulated = cycles;
    always_window = min buffer_size cycles;
    selective_window = !window;
    captures = !captures;
    expansion = float_of_int !window /. float_of_int (min buffer_size cycles);
  }

let pp fmt r =
  Format.fprintf fmt
    "trace buffer %d entries: capture-all window %d cycles, selective window %d cycles (%.1fx)"
    r.buffer_size r.always_window r.selective_window r.expansion
