(* Deterministic splitmix64 generator. Every experiment in the repository
   is seeded through this module so tables reproduce bit-for-bit. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Non-negative int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 random bits into [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.

let split t = create (Int64.to_int (next_int64 t))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
