(** The [emask serve] daemon: masking analysis as a persistent
    service.

    One accept loop (the calling thread) admits connections to a
    bounded queue drained by a pool of worker domains; a full queue is
    answered with a structured rejection at accept time. Each job owns
    a per-request {!Budget.flag} that watcher threads trip on client
    disconnect — while it waits in the queue as well as while it runs,
    so an abandoned request is dropped, not computed. Cancellation is
    cooperative, surfacing as [Budget_exceeded Cancelled] at the job's
    next budget poll. Results
    are rendered by the same {!Serve_jobs} runners the one-shot CLI
    uses, so responses are byte-identical to CLI output. A connection
    whose first bytes are ["GET "] is served as a plain-HTTP
    [/metrics] scrape ({!Obs_prom} exposition of the
    {!Serve_metrics} counters). *)

type bind = Unix_sock of string | Tcp of string * int

type config = {
  bind : bind;
  jobs : int;  (** worker domains *)
  queue_cap : int;  (** bounded admission queue *)
  cache_mb : int;  (** circuit LRU capacity *)
  default_budget : Budget.spec;
      (** merged under every request's own budget (request wins) *)
  ledger : string option;  (** per-request JSONL records, appended here *)
  read_timeout : float;
      (** SO_RCVTIMEO on accepted sockets, in seconds: a client that
          connects and never finishes its request costs at most this
          long on the accept thread before being dropped — without it,
          one silent connection would block all admission (and
          [/metrics] scrapes) indefinitely *)
  verbose : bool;
}

val default_config : config
(** TCP on 127.0.0.1:9309, 2 workers, queue 16, 256 MiB cache, no
    budget, no ledger, 10 s request-read timeout. *)

val run : ?ready:(int -> unit) -> config -> unit
(** Serve until a [shutdown] request. [ready] fires once the socket is
    listening, with the bound TCP port (0 for Unix sockets) — port 0
    in the config asks the kernel to pick one. *)
