(** Masking-contract verification: the paper's validity conditions for
    a synthesized masking circuit C̃, expressed as lint diagnostics.

    - MASK003: every critical output of the combined circuit is driven
      by a MUX21 whose 0-input is the original output, 1-input the
      prediction ỹ, and select the indicator e (Sec. 4 mux insertion).
    - MASK001: non-intrusiveness — the combined circuit is
      combinationally equivalent to C on every original output (the
      mux can never corrupt a value).
    - MASK004: Σ_y ⊆ e_y (coverage) and e_y ⊆ (ỹ = y) (prediction
      soundness) for every critical output.
    - MASK002: the ≥ [slack_margin] timing-slack contract — C̃'s
      critical path delay is at most [(1 - slack_margin) · Δ(C)]
      (Sec. 4: at least 20 % faster than C). *)

val slack_margin : float
(** The paper's required slack margin, [0.2]. *)

val check_mux_insertion : Masking.Synthesis.t -> Diag.t list
val check_non_intrusive : Masking.Synthesis.t -> Diag.t list
val check_indicator_soundness : Masking.Synthesis.t -> Diag.t list
val check_slack : ?margin:float -> Masking.Synthesis.t -> Diag.t list

val check : ?margin:float -> Masking.Synthesis.t -> Diag.t list
(** All masking-contract passes, in the order above. *)
