(* Tests for the Obs instrumentation layer: span nesting and self-time
   accounting, counter and histogram correctness, JSON round-trips,
   the disabled-mode no-op guarantee, and one integration check that an
   SPCF run actually records BDD cache activity. *)

let with_obs_enabled f =
  Obs.reset ();
  Obs.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let find_child (s : Obs.span) name =
  List.find_opt (fun (c : Obs.span) -> c.Obs.sname = name) s.Obs.children

let get_child s name =
  match find_child s name with
  | Some c -> c
  | None -> Alcotest.failf "span %S not found under %S" name s.Obs.sname

(* --- spans -------------------------------------------------------------- *)

let spin seconds =
  let t0 = Obs.now () in
  while Obs.now () -. t0 < seconds do
    ignore (Sys.opaque_identity (ref 0))
  done

let test_span_nesting () =
  with_obs_enabled @@ fun () ->
  Obs.with_span "outer" (fun () ->
      spin 0.002;
      Obs.with_span "inner" (fun () -> spin 0.004);
      Obs.with_span "inner" (fun () -> spin 0.004);
      Obs.with_span "other" (fun () -> ()));
  let root = Obs.root () in
  Alcotest.(check int) "one top-level span" 1 (List.length root.Obs.children);
  let outer = get_child root "outer" in
  Alcotest.(check int) "outer called once" 1 outer.Obs.calls;
  Alcotest.(check int) "two distinct children" 2 (List.length outer.Obs.children);
  let inner = get_child outer "inner" in
  Alcotest.(check int) "inner entries accumulate" 2 inner.Obs.calls;
  Alcotest.(check bool) "inner measured" true (inner.Obs.total >= 0.008);
  Alcotest.(check bool) "outer >= inner" true (outer.Obs.total >= inner.Obs.total);
  (* Self time excludes children but keeps the outer busy-loop. *)
  let self = Obs_report.self_time outer in
  Alcotest.(check bool) "self >= busy loop" true (self >= 0.002);
  Alcotest.(check bool) "self excludes children" true
    (self <= outer.Obs.total -. inner.Obs.total +. 1e-9)

let test_span_recursion () =
  with_obs_enabled @@ fun () ->
  let rec go n = Obs.with_span "rec" (fun () -> if n > 0 then go (n - 1)) in
  go 4;
  let r = get_child (Obs.root ()) "rec" in
  Alcotest.(check int) "recursive entries counted as calls" 5 r.Obs.calls;
  (* Only the outermost activation contributes wall time, so the total
     is a plausible duration, not 5x one. *)
  Alcotest.(check int) "nothing left open" 0 r.Obs.live;
  Alcotest.(check bool) "single accumulation" true (r.Obs.total < 1.)

let test_span_exception_safety () =
  with_obs_enabled @@ fun () ->
  (try Obs.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  let b = get_child (Obs.root ()) "boom" in
  Alcotest.(check int) "span closed on exception" 0 b.Obs.live;
  (* The stack unwound: a new span lands at top level, not under boom. *)
  Obs.with_span "after" (fun () -> ());
  Alcotest.(check bool) "stack unwound" true
    (find_child (Obs.root ()) "after" <> None)

(* --- counters and histograms ------------------------------------------- *)

let test_counters () =
  with_obs_enabled @@ fun () ->
  let c = Obs.counter "test.c" in
  Obs.incr c;
  Obs.incr c;
  Obs.add c 40;
  Alcotest.(check int) "incr/add" 42 (Obs.counter_value c);
  let m = Obs.counter "test.max" in
  Obs.record_max m 7;
  Obs.record_max m 3;
  Obs.record_max m 9;
  Alcotest.(check int) "record_max keeps high water" 9 (Obs.counter_value m);
  Alcotest.(check (list (pair string int)))
    "registry in first-use order"
    [ ("test.c", 42); ("test.max", 9) ]
    (Obs.registered_counters ())

let test_histogram () =
  with_obs_enabled @@ fun () ->
  let h = Obs.histogram "test.h" in
  List.iter (Obs.observe h) [ 0; 1; 1; 2; 3; 4; 7; 8; 100 ];
  let st = Obs.histogram_stats h in
  Alcotest.(check int) "n" 9 st.Obs.hn;
  Alcotest.(check int) "sum" 126 st.Obs.hsum;
  Alcotest.(check int) "max" 100 st.Obs.hmax;
  (* Log2 buckets: {0}, [1,2), [2,4), [4,8), [8,16), [64,128). *)
  Alcotest.(check (list (pair int int)))
    "buckets"
    [ (0, 1); (1, 2); (2, 2); (4, 2); (8, 1); (64, 1) ]
    st.Obs.hbuckets

(* --- disabled mode ------------------------------------------------------ *)

let test_disabled_noop () =
  Obs.reset ();
  Obs.set_enabled false;
  let c = Obs.counter "test.disabled.c" in
  let h = Obs.histogram "test.disabled.h" in
  Obs.incr c;
  Obs.add c 10;
  Obs.observe h 5;
  Obs.with_span "test.disabled.span" (fun () -> ());
  Obs.enter "test.disabled.enter";
  Obs.leave ();
  Alcotest.(check int) "counter untouched" 0 (Obs.counter_value c);
  Alcotest.(check (list (pair string int)))
    "no counters registered" [] (Obs.registered_counters ());
  Alcotest.(check int)
    "no histograms registered" 0
    (List.length (Obs.registered_histograms ()));
  Alcotest.(check int)
    "no spans recorded" 0
    (List.length (Obs.root ()).Obs.children)

let test_timed_when_disabled () =
  Obs.reset ();
  Obs.set_enabled false;
  let r, dt = Obs.timed "test.timed" (fun () -> spin 0.002; 17) in
  Alcotest.(check int) "result passes through" 17 r;
  Alcotest.(check bool) "elapsed measured even when disabled" true (dt >= 0.002);
  Alcotest.(check int)
    "but no span recorded" 0
    (List.length (Obs.root ()).Obs.children)

(* --- JSON --------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Obs_json.Obj
      [
        ("name", Obs_json.String "weird \"chars\"\n\t\\ and unicode-free");
        ("n", Obs_json.Int 42);
        ("neg", Obs_json.Int (-7));
        ("ok", Obs_json.Bool true);
        ("nothing", Obs_json.Null);
        ( "list",
          Obs_json.List [ Obs_json.Int 1; Obs_json.Obj []; Obs_json.List [] ] );
      ]
  in
  match Obs_json.of_string (Obs_json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trip equal" true (v = v')
  | Error e -> Alcotest.failf "parse error: %s" e

let test_json_floats () =
  let v = Obs_json.List [ Obs_json.Float 0.125; Obs_json.Float 3.5e-3 ] in
  match Obs_json.of_string (Obs_json.to_string v) with
  | Ok (Obs_json.List [ Obs_json.Float a; Obs_json.Float b ]) ->
    Alcotest.(check (float 1e-12)) "float a" 0.125 a;
    Alcotest.(check (float 1e-12)) "float b" 3.5e-3 b
  | Ok _ -> Alcotest.fail "floats re-parsed with wrong shape"
  | Error e -> Alcotest.failf "parse error: %s" e

let test_json_snapshot () =
  with_obs_enabled @@ fun () ->
  let c = Obs.counter "snap.c" in
  Obs.add c 5;
  let h = Obs.histogram "snap.h" in
  Obs.observe h 3;
  Obs.with_span "snap.span" (fun () -> ());
  let j = Obs_json.snapshot () in
  (match Obs_json.of_string (Obs_json.to_string j) with
  | Error e -> Alcotest.failf "snapshot is not valid JSON: %s" e
  | Ok j' -> Alcotest.(check bool) "snapshot round-trips" true (j = j'));
  (match Obs_json.member "counters" j with
  | Some counters ->
    Alcotest.(check bool)
      "counter present" true
      (Obs_json.member "snap.c" counters = Some (Obs_json.Int 5))
  | None -> Alcotest.fail "no counters object");
  match Obs_json.member "spans" j with
  | Some (Obs_json.List [ span ]) ->
    Alcotest.(check bool)
      "span name serialized" true
      (Obs_json.member "name" span = Some (Obs_json.String "snap.span"))
  | _ -> Alcotest.fail "expected exactly one top-level span"

(* --- domains: concurrent collection and deterministic merge ------------ *)

(* Four domains hammer counters, histograms and spans concurrently on
   their own domain-local state; the main domain merges the snapshots
   and must see exactly the sequential sum — no lost updates, no
   cross-domain interference, max-merge for high-water counters. *)
let test_domains_merge () =
  with_obs_enabled @@ fun () ->
  let iters = 10_000 in
  let work j () =
    let c = Obs.counter "dom.hits" in
    let m = Obs.counter "dom.peak" in
    let h = Obs.histogram "dom.sizes" in
    Obs.with_span "dom.work" (fun () ->
        for i = 1 to iters do
          Obs.incr c;
          Obs.observe h (i land 15)
        done;
        Obs.record_max m ((j + 1) * 100));
    Obs.export_snapshot ()
  in
  let domains = Array.init 4 (fun j -> Domain.spawn (work j)) in
  let snaps = Array.map Domain.join domains in
  Array.iteri
    (fun j s -> Obs.merge_snapshot ~label:(Printf.sprintf "worker %d" (j + 1)) s)
    snaps;
  let value name =
    match List.assoc_opt name (Obs.registered_counters ()) with
    | Some v -> v
    | None -> Alcotest.failf "counter %S not merged" name
  in
  Alcotest.(check int) "counter sums across domains" (4 * iters) (value "dom.hits");
  Alcotest.(check int) "high-water merges by max" 400 (value "dom.peak");
  let st =
    match List.assoc_opt "dom.sizes" (Obs.registered_histograms ()) with
    | Some st -> st
    | None -> Alcotest.fail "histogram not merged"
  in
  Alcotest.(check int) "histogram n sums" (4 * iters) st.Obs.hn;
  Alcotest.(check int) "histogram max" 15 st.Obs.hmax;
  let span = get_child (Obs.root ()) "dom.work" in
  Alcotest.(check int) "span calls sum" 4 span.Obs.calls;
  Alcotest.(check int)
    "one thread label per domain plus main" 5
    (List.length (Obs.thread_labels ()));
  Alcotest.(check int)
    "per-domain breakdown retained" 4
    (List.length (Obs.domain_breakdown ()))

(* Merging into an open span grafts the worker trees under it — the
   shape a parallel driver produces when workers run inside a timed
   region of the coordinator. *)
let test_merge_grafts_under_open_span () =
  with_obs_enabled @@ fun () ->
  Obs.with_span "parent" (fun () ->
      let d =
        Domain.spawn (fun () ->
            Obs.with_span "child" (fun () -> ());
            Obs.export_snapshot ())
      in
      Obs.merge_snapshot (Domain.join d));
  let parent = get_child (Obs.root ()) "parent" in
  Alcotest.(check bool)
    "worker span grafted under the open span" true
    (find_child parent "child" <> None)

(* --- forced registration (budgets, ladder) ------------------------------ *)

let test_touch_registers_zero () =
  with_obs_enabled @@ fun () ->
  let c = Obs.counter "touch.c" in
  let h = Obs.histogram "touch.h" in
  Obs.touch_counter c;
  Obs.touch_histogram h;
  Alcotest.(check (list (pair string int)))
    "touched counter registered at zero"
    [ ("touch.c", 0) ]
    (Obs.registered_counters ());
  Alcotest.(check int)
    "touched histogram registered empty" 1
    (List.length (Obs.registered_histograms ()))

(* "Budgets on, no walls hit" must be visible: instantiating a real
   budget registers every budget.* counter at zero even if nothing is
   ever exceeded. *)
let test_budget_instantiation_registers () =
  with_obs_enabled @@ fun () ->
  ignore (Budget.create ~max_ops:1_000_000 ());
  let counters = Obs.registered_counters () in
  List.iter
    (fun name ->
      Alcotest.(check (option int))
        (name ^ " registered at zero")
        (Some 0)
        (List.assoc_opt name counters))
    [
      "budget.exceeded"; "budget.exceeded.deadline"; "budget.exceeded.nodes";
      "budget.exceeded.ops"; "budget.exceeded.cancelled";
    ]

let test_unlimited_budget_registers_nothing () =
  with_obs_enabled @@ fun () ->
  ignore (Budget.create ());
  Alcotest.(check (list (pair string int)))
    "no-limits budget stays silent" []
    (Obs.registered_counters ())

(* --- trace export ------------------------------------------------------- *)

let with_trace_enabled f =
  Obs.reset ();
  Obs.set_enabled true;
  Obs.set_trace_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_trace_enabled false;
      Obs.set_enabled false;
      Obs.reset ())
    f

let test_trace_events_and_json () =
  with_trace_enabled @@ fun () ->
  Obs.with_span "work" (fun () ->
      spin 0.001;
      Obs.instant "marker");
  let events = Obs.trace_events () in
  Alcotest.(check int) "one complete + one instant" 2 (List.length events);
  let j = Obs_trace.render () in
  (match Obs_json.of_string (Obs_json.to_string j) with
  | Error e -> Alcotest.failf "trace is not valid JSON: %s" e
  | Ok _ -> ());
  match Obs_json.member "traceEvents" j with
  | Some (Obs_json.List evs) ->
    let ph e =
      match Obs_json.member "ph" e with Some (Obs_json.String s) -> s | _ -> "?"
    in
    let xs = List.filter (fun e -> ph e = "X") evs in
    let is = List.filter (fun e -> ph e = "i") evs in
    let ms = List.filter (fun e -> ph e = "M") evs in
    Alcotest.(check int) "one X event" 1 (List.length xs);
    Alcotest.(check int) "one instant event" 1 (List.length is);
    Alcotest.(check bool) "metadata present" true (List.length ms >= 2);
    let x = List.hd xs in
    Alcotest.(check bool)
      "X event has a positive duration" true
      (match Obs_json.member "dur" x with
      | Some (Obs_json.Float d) -> d >= 1000.
      | _ -> false);
    Alcotest.(check bool)
      "X event named after the span" true
      (Obs_json.member "name" x = Some (Obs_json.String "work"))
  | _ -> Alcotest.fail "no traceEvents list"

let test_trace_disabled_keeps_no_events () =
  with_obs_enabled @@ fun () ->
  Obs.with_span "quiet" (fun () -> Obs.instant "nope");
  Alcotest.(check int)
    "statistics without tracing records no events" 0
    (List.length (Obs.trace_events ()))

(* --- Prometheus export -------------------------------------------------- *)

let contains_line text line =
  String.split_on_char '\n' text |> List.exists (fun l -> l = line)

let test_prom_render () =
  with_obs_enabled @@ fun () ->
  let c = Obs.counter "prom.calls" in
  Obs.add c 42;
  let h = Obs.histogram "prom.depth" in
  List.iter (Obs.observe h) [ 0; 1; 1; 3; 9 ];
  Obs.with_span "outer" (fun () -> Obs.with_span "inner" (fun () -> ()));
  let text = Obs_prom.render () in
  Alcotest.(check bool)
    "counter exposed" true
    (contains_line text "emask_prom_calls 42");
  (* Log2 buckets {0}:1, [1,2):2, [2,4):1, [8,16):1 — cumulative at the
     exact integer upper bounds. *)
  List.iter
    (fun line ->
      Alcotest.(check bool) ("bucket line: " ^ line) true (contains_line text line))
    [
      "emask_prom_depth_bucket{le=\"0\"} 1";
      "emask_prom_depth_bucket{le=\"1\"} 3";
      "emask_prom_depth_bucket{le=\"3\"} 4";
      "emask_prom_depth_bucket{le=\"15\"} 5";
      "emask_prom_depth_bucket{le=\"+Inf\"} 5";
      "emask_prom_depth_sum 14";
      "emask_prom_depth_count 5";
      "emask_span_calls{span=\"outer\"} 1";
      "emask_span_calls{span=\"outer/inner\"} 1";
    ]

(* --- run ledger --------------------------------------------------------- *)

let test_ledger_iso8601 () =
  Alcotest.(check string)
    "epoch zero" "1970-01-01T00:00:00Z" (Obs_ledger.iso8601 0.);
  Alcotest.(check string)
    "leap-year date" "2000-02-29T12:00:00Z"
    (Obs_ledger.iso8601 951_825_600.);
  Alcotest.(check string)
    "recent date" "2026-08-09T00:00:00Z" (Obs_ledger.iso8601 1_786_233_600.)

let test_ledger_roundtrip () =
  with_obs_enabled @@ fun () ->
  let c = Obs.counter "ledger.c" in
  Obs.add c 7;
  Obs_ledger.note "circuit" (Obs_json.String "C432");
  Obs_ledger.note "jobs" (Obs_json.Int 4);
  Obs_ledger.note "jobs" (Obs_json.Int 8);
  let path = Filename.temp_file "emask-ledger" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Obs_ledger.append ~path ~cmd:"test" ();
  Obs_ledger.note "circuit" (Obs_json.String "i1");
  Obs_ledger.append ~path ~cmd:"test2" ();
  match Obs_ledger.read_file path with
  | Error e -> Alcotest.failf "read_file: %s" e
  | Ok [ r1; r2 ] ->
    Alcotest.(check bool)
      "cmd recorded" true
      (Obs_json.member "cmd" r1 = Some (Obs_json.String "test"));
    Alcotest.(check bool)
      "last note wins" true
      (Obs_json.member "jobs" r1 = Some (Obs_json.Int 8));
    Alcotest.(check bool)
      "counters embedded" true
      (match Obs_json.member "counters" r1 with
      | Some cs -> Obs_json.member "ledger.c" cs = Some (Obs_json.Int 7)
      | None -> false);
    Alcotest.(check bool)
      "notes cleared between records" true
      (Obs_json.member "jobs" r2 = None);
    Alcotest.(check bool)
      "second record keeps its own notes" true
      (Obs_json.member "circuit" r2 = Some (Obs_json.String "i1"))
  | Ok rs -> Alcotest.failf "expected 2 records, got %d" (List.length rs)

let test_ledger_concurrent_appends () =
  (* Satellite of the serve daemon: many domains appending to one
     ledger file must never interleave partial lines — every line
     parses, and every record survives. Uses the explicit-notes path
     (the thread-safe one worker domains use); each record carries a
     writer/sequence tag so completeness is checkable, not just
     line-level well-formedness. *)
  let path = Filename.temp_file "emask-ledger" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let writers = 4 and per_writer = 50 in
  let work w () =
    for i = 0 to per_writer - 1 do
      Obs_ledger.append ~path
        ~notes:
          [
            ("writer", Obs_json.Int w);
            ("seq", Obs_json.Int i);
            (* Bulk pushes the rendered line well past any buffered-IO
               chunk a partial write would hide behind. *)
            ("bulk", Obs_json.String (String.make 2048 'x'));
          ]
        ~cmd:"hammer" ()
    done
  in
  let domains = Array.init writers (fun w -> Domain.spawn (work w)) in
  Array.iter Domain.join domains;
  match Obs_ledger.read_file path with
  | Error e -> Alcotest.failf "a ledger line failed to parse: %s" e
  | Ok records ->
    Alcotest.(check int)
      "every record survived" (writers * per_writer) (List.length records);
    let seen = Hashtbl.create 256 in
    List.iter
      (fun r ->
        match (Obs_json.member "writer" r, Obs_json.member "seq" r) with
        | Some (Obs_json.Int w), Some (Obs_json.Int i) -> Hashtbl.replace seen (w, i) ()
        | _ -> Alcotest.fail "record lost its notes")
      records;
    Alcotest.(check int)
      "no record duplicated or torn" (writers * per_writer) (Hashtbl.length seen)

(* --- atomic export files ------------------------------------------------- *)

let test_atomic_file_write () =
  (* Exporters must never leave a truncated artifact: a crash mid-write
     leaves the previous file intact and no temp debris. *)
  let dir = Filename.temp_file "emask-atomic" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "stats.json" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
  @@ fun () ->
  Obs_json.with_atomic_file path (fun oc -> output_string oc "{\"ok\": 1}");
  (* A writer that dies after flushing partial content must not
     clobber the good artifact. *)
  (try
     Obs_json.with_atomic_file path (fun oc ->
         output_string oc "{\"tru";
         flush oc;
         failwith "simulated crash mid-write")
   with Failure _ -> ());
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "previous artifact intact" "{\"ok\": 1}" content;
  Alcotest.(check (list string))
    "no temp debris" [ "stats.json" ]
    (List.sort compare (Array.to_list (Sys.readdir dir)))

(* --- integration -------------------------------------------------------- *)

let test_spcf_records_bdd_activity () =
  with_obs_enabled @@ fun () ->
  let net = Suite.load "cmb" in
  let mc = Mapper.map net in
  let ctx = Spcf.Ctx.create mc in
  let target = Spcf.Ctx.target_of_theta ctx 0.9 in
  let r = Spcf.Exact.short_path ctx ~target in
  ignore (Spcf.Ctx.count ctx r);
  let counters = Obs.registered_counters () in
  let value name =
    match List.assoc_opt name counters with Some v -> v | None -> 0
  in
  Alcotest.(check bool)
    "nonzero BDD cache lookups" true
    (value "bdd.ite.cache_hits" + value "bdd.ite.cache_misses" > 0);
  Alcotest.(check bool)
    "nonzero stability recursion" true
    (value "spcf.stability.calls" > 0);
  (* The span tree reaches the per-output stability computations. *)
  let root = Obs.root () in
  let algo = get_child root "spcf.short-path-based" in
  match algo.Obs.children with
  | [] -> Alcotest.fail "no per-output spans"
  | out :: _ ->
    Alcotest.(check bool)
      "stability span nested under output" true
      (find_child out "stability" <> None)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and self time" `Quick test_span_nesting;
          Alcotest.test_case "recursion" `Quick test_span_recursion;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histogram" `Quick test_histogram;
        ] );
      ( "disabled",
        [
          Alcotest.test_case "probes are no-ops" `Quick test_disabled_noop;
          Alcotest.test_case "timed still measures" `Quick test_timed_when_disabled;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "floats" `Quick test_json_floats;
          Alcotest.test_case "snapshot" `Quick test_json_snapshot;
        ] );
      ( "domains",
        [
          Alcotest.test_case "4-domain hammer merges to sequential sum" `Quick
            test_domains_merge;
          Alcotest.test_case "merge grafts under the open span" `Quick
            test_merge_grafts_under_open_span;
        ] );
      ( "registration",
        [
          Alcotest.test_case "touch registers at zero" `Quick
            test_touch_registers_zero;
          Alcotest.test_case "budget instantiation registers budget.*" `Quick
            test_budget_instantiation_registers;
          Alcotest.test_case "unlimited budget registers nothing" `Quick
            test_unlimited_budget_registers_nothing;
        ] );
      ( "trace",
        [
          Alcotest.test_case "events and trace-event JSON" `Quick
            test_trace_events_and_json;
          Alcotest.test_case "stats without tracing keeps no events" `Quick
            test_trace_disabled_keeps_no_events;
        ] );
      ( "prometheus",
        [ Alcotest.test_case "text exposition" `Quick test_prom_render ] );
      ( "ledger",
        [
          Alcotest.test_case "iso8601" `Quick test_ledger_iso8601;
          Alcotest.test_case "append/read round-trip" `Quick test_ledger_roundtrip;
          Alcotest.test_case "concurrent appends never tear" `Quick
            test_ledger_concurrent_appends;
          Alcotest.test_case "atomic export files" `Quick test_atomic_file_write;
        ] );
      ( "integration",
        [
          Alcotest.test_case "spcf run records BDD lookups" `Quick
            test_spcf_records_bdd_activity;
        ] );
    ]
