(* Razor-style timing-error DETECTION baseline (Ernst et al. [8], the
   alternative the paper positions itself against, Sec. 2).

   Each critical output gets a shadow sample taken a guard band after
   the clock edge; a mismatch between the main and shadow samples flags
   a timing error, which is then repaired by flushing and replaying —
   a throughput penalty the masking approach avoids entirely. Detection
   also has a blind spot the paper points out: transitions later than
   the guard band leave both samples equally stale, so the error escapes.

   The model: per critical output, a shadow flip-flop, a comparator and
   recovery control (area per output below); on detection, [replay]
   cycles are lost. Compared against masking on the same aged circuit. *)

type scheme = {
  escaped_rate : float; (* undetected/unmasked wrong captures per cycle *)
  repair_rate : float; (* detections (razor) — each costs a replay *)
  throughput : float; (* useful cycles per cycle *)
  area_overhead_pct : float;
}

type comparison = {
  factor : float;
  raw_error_rate : float;
  razor : scheme;
  masking : scheme;
}

(* Shadow flip-flop + XOR comparator + restore mux and control, in the
   same equivalent-gate units as the cell library. *)
let razor_cell_area = 12.0

let compare_schemes ?(trials = 400) ?(seed = 31) ?(guard_band_pct = 0.12)
    ?(replay = 3.) ?(factors = [ 1.0; 1.05; 1.1; 1.2; 1.3 ]) (m : Synthesis.t) =
  let model = m.Synthesis.options.Synthesis.delay_model in
  (* Razor protects the bare circuit C; masking uses the combined one.
     Both run at their own nominal clock. *)
  let original = m.Synthesis.original in
  let onet = Mapped.network original in
  let combined = m.Synthesis.combined in
  let clock_orig = Sta.delta (Sta.analyze ~model original) in
  let clock_comb = Sta.delta (Sta.analyze ~model combined) in
  let guard = guard_band_pct *. clock_orig in
  let base_orig = Sta.gate_delays model original in
  let base_comb = Sta.gate_delays model combined in
  let crit_orig =
    Sta.critical_signals (Sta.analyze ~model original) ~target:(0.9 *. clock_orig)
  in
  let crit_comb =
    let sta = Sta.analyze ~model combined in
    let keep = Sta.critical_signals sta ~target:(0.9 *. clock_comb) in
    (* Only the original circuit's copy ages (as in Monitor). *)
    let names = Hashtbl.create 256 in
    Array.iter
      (fun s ->
        if Network.node_of onet s <> None then
          Hashtbl.replace names (Network.name_of onet s) ())
      (Network.topo_order onet);
    fun s -> keep.(s) && Hashtbl.mem names (Network.name_of (Mapped.network combined) s)
  in
  let critical_pos =
    List.map
      (fun (po : Synthesis.per_output) ->
        match
          Array.find_opt (fun (n, _) -> n = po.Synthesis.name) (Network.outputs onet)
        with
        | Some (_, s) -> (po, s)
        | None -> invalid_arg "Razor.compare_schemes: output mismatch")
      m.Synthesis.per_output
  in
  let n_crit = List.length critical_pos in
  let razor_area_pct =
    100. *. (float_of_int n_crit *. razor_cell_area) /. Mapped.area original
  in
  let masking_area_pct =
    100.
    *. (Mapped.area combined -. Mapped.area original)
    /. Mapped.area original
  in
  let n_in = Array.length (Network.inputs onet) in
  let run factor =
    let rng = Util.Rng.create seed in
    let delays_orig =
      Tsim.degraded_delays base_orig ~factor ~on:(fun s -> crit_orig.(s))
    in
    let delays_comb = Tsim.degraded_delays base_comb ~factor ~on:crit_comb in
    let raw = ref 0 and escaped_razor = ref 0 and detected = ref 0 in
    let escaped_mask = ref 0 in
    for _ = 1 to trials do
      let from_ = Array.init n_in (fun _ -> Util.Rng.bool rng) in
      let to_ = Array.init n_in (fun _ -> Util.Rng.bool rng) in
      (* Razor on the bare circuit: main sample at the clock, shadow a
         guard band later. *)
      let r_main =
        Tsim.simulate original ~delays:delays_orig ~from_ ~to_ ~clock:clock_orig
      in
      let r_shadow =
        Tsim.simulate original ~delays:delays_orig ~from_ ~to_
          ~clock:(clock_orig +. guard)
      in
      let any_raw = ref false and any_detect = ref false and any_escape = ref false in
      List.iter
        (fun ((_ : Synthesis.per_output), s) ->
          let main = r_main.Tsim.at_clock.(s) in
          let shadow = r_shadow.Tsim.at_clock.(s) in
          let correct = r_main.Tsim.final.(s) in
          if main <> correct then begin
            any_raw := true;
            if main <> shadow then any_detect := true else any_escape := true
          end
          else if main <> shadow then
            (* Shadow disagrees although the main capture was right: a
               detection is still raised and a replay still paid. *)
            any_detect := true)
        critical_pos;
      if !any_raw then incr raw;
      if !any_detect then incr detected;
      if !any_escape then incr escaped_razor;
      (* Masking on the combined circuit at its own clock. *)
      let r_mask =
        Tsim.simulate combined ~delays:delays_comb ~from_ ~to_ ~clock:clock_comb
      in
      let mask_err =
        List.exists
          (fun (po : Synthesis.per_output) ->
            r_mask.Tsim.at_clock.(po.Synthesis.masked_combined)
            <> r_mask.Tsim.final.(po.Synthesis.masked_combined))
          m.Synthesis.per_output
      in
      if mask_err then incr escaped_mask
    done;
    let rate c = float_of_int c /. float_of_int trials in
    {
      factor;
      raw_error_rate = rate !raw;
      razor =
        {
          escaped_rate = rate !escaped_razor;
          repair_rate = rate !detected;
          throughput = 1. /. (1. +. (rate !detected *. replay));
          area_overhead_pct = razor_area_pct;
        };
      masking =
        {
          escaped_rate = rate !escaped_mask;
          repair_rate = 0.;
          throughput = 1.;
          area_overhead_pct = masking_area_pct;
        };
    }
  in
  List.map run factors

let pp fmt c =
  Format.fprintf fmt
    "aging x%.2f raw=%.3f | razor: escaped=%.3f repairs=%.3f throughput=%.3f area+%.1f%% | masking: escaped=%.3f throughput=%.3f area+%.1f%%"
    c.factor c.raw_error_rate c.razor.escaped_rate c.razor.repair_rate
    c.razor.throughput c.razor.area_overhead_pct c.masking.escaped_rate
    c.masking.throughput c.masking.area_overhead_pct
