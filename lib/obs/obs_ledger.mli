(** Persistent run ledger: one JSONL record per CLI invocation.

    When the [EMASK_LEDGER] environment variable names a file, every
    instrumented binary appends one JSON line as it exits: schema tag,
    wall-clock timestamp (epoch + ISO-8601), command name, argv, every
    fact the run {!note}d (circuit hash, jobs, landed tier, runtime,
    ns/run, ...), and the final counter registry. [emask report] diffs
    these trajectories and compares them against BENCH_*.json
    baselines. *)

val env_var : string
(** ["EMASK_LEDGER"]. *)

val path : unit -> string option
(** The ledger file from the environment, if configured non-empty. *)

val enabled : unit -> bool

val realtime_now : unit -> float
(** Wall-clock epoch seconds (CLOCK_REALTIME) — for ledger stamps only;
    durations must keep using the monotonic {!Obs.now}. *)

val iso8601 : float -> string
(** Epoch seconds as ["YYYY-MM-DDThh:mm:ssZ"] (UTC). *)

val note : string -> Obs_json.t -> unit
(** Record one fact about the current run ([circuit], [jobs], [tier],
    [runtime_s], ...). Last value per key wins; order of first notes is
    preserved in the record. Cheap, works with the ledger disabled. *)

val record : ?notes:(string * Obs_json.t) list -> cmd:string -> unit -> Obs_json.t
(** The record that {!append} would write, for tests and embedding.
    With [?notes] the given facts are embedded instead of (and without
    touching) the process-global note store — the thread-safe path for
    concurrent writers such as server worker domains. *)

val append :
  ?path:string -> ?notes:(string * Obs_json.t) list -> cmd:string -> unit -> unit
(** Append one record to [path], defaulting to the [EMASK_LEDGER]
    file; no-op when neither is set. Without [?notes] the global note
    store is consumed and cleared. The rendered line is written with a
    single [Unix.single_write] on an [O_APPEND] descriptor, so records
    from concurrent domains or processes never interleave — every
    ledger line parses. IO failures are reported on stderr but never
    raise — the ledger must not fail the run it describes. *)

val read_file : string -> (Obs_json.t list, string) result
(** Parse a ledger file: one JSON value per non-blank line. *)
