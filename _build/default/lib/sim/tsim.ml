(* Event-driven gate-level timing simulation with transport delays.
   A run applies one input transition (steady state under [from_], then
   the inputs switch to [to_] at t = 0) and tracks every signal's
   waveform endpoints: its value at the sampling (clock) edge and its
   final, settled value. An output suffers a timing error exactly when
   the two differ — i.e. the flop captures a stale or glitching value. *)

type event = { signal : Network.signal; value : bool }

type result = {
  final : bool array;
  at_clock : bool array;
  last_change : float array;
  settle : float; (* time of the last value change anywhere *)
}

let simulate circuit ~delays ~from_ ~to_ ~clock =
  let net = Mapped.network circuit in
  let n = Network.num_signals net in
  let inputs = Network.inputs net in
  if Array.length from_ <> Array.length inputs || Array.length to_ <> Array.length inputs
  then invalid_arg "Tsim.simulate: input vector arity mismatch";
  let cur = Network.eval net from_ in
  let last_change = Array.make n 0. in
  let queue = Util.Heap.create { signal = -1; value = false } in
  Array.iteri
    (fun i s -> if to_.(i) <> cur.(s) then Util.Heap.push queue 0. { signal = s; value = to_.(i) })
    inputs;
  let fanouts = Network.fanouts net in
  let eval_gate g =
    match Network.node_of net g with
    | None -> cur.(g)
    | Some nd ->
      let local = Array.map (fun f -> cur.(f)) nd.Network.fanins in
      Logic2.Cover.eval nd.Network.func local
  in
  let at_clock = ref None in
  let settle = ref 0. in
  let snapshot_if_due now =
    if now > clock && !at_clock = None then at_clock := Some (Array.copy cur)
  in
  let rec run () =
    match Util.Heap.pop queue with
    | None -> ()
    | Some (now, { signal = s; value = v }) ->
      snapshot_if_due now;
      if cur.(s) <> v then begin
        cur.(s) <- v;
        last_change.(s) <- now;
        settle := Float.max !settle now;
        List.iter
          (fun g ->
            let nv = eval_gate g in
            Util.Heap.push queue (now +. delays.(g)) { signal = g; value = nv })
          fanouts.(s)
      end;
      run ()
  in
  run ();
  let at_clock = match !at_clock with Some a -> a | None -> Array.copy cur in
  { final = cur; at_clock; last_change; settle = !settle }

(* Output timing errors at the clock edge: names of outputs whose captured
   value differs from the settled value. *)
let output_errors circuit result =
  Network.outputs (Mapped.network circuit)
  |> Array.to_list
  |> List.filter (fun (_, s) -> result.at_clock.(s) <> result.final.(s))

(* Delay vector with gates selected by [on] slowed down by [factor] —
   the wearout / aging model (uniform degradation of selected gates). *)
let degraded_delays base ~factor ~on =
  Array.mapi (fun s d -> if on s then d *. factor else d) base
