(* Tests for static timing analysis and the simulators (bit-parallel
   logic simulation, event-driven timing simulation, power estimation). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* ---------- STA ---------- *)

let comparator_mapped () =
  let net = Comparator.network () in
  let mc, smap = Mapper.map_with_signals net in
  let sig_of name = smap.(Option.get (Network.find net name)) in
  (mc, sig_of)

let test_sta_comparator () =
  let mc, sig_of = comparator_mapped () in
  let sta = Sta.analyze ~model:Sta.Paper_units mc in
  checkf "delta = 7" 7.0 (Sta.delta sta);
  (* Arrival times from the paper's Fig. 2(a). *)
  let arr name = Sta.arrival sta (sig_of name) in
  checkf "nb0" 1.0 (arr "nb0");
  checkf "or1" 3.0 (arr "or1");
  checkf "and1" 5.0 (arr "and1");
  checkf "and2" 3.0 (arr "and2");
  checkf "y" 7.0 (arr "y");
  (* Criticality at the paper's 6.3 target. *)
  let crit = Sta.critical_outputs sta ~target:6.3 in
  check_int "one critical output" 1 (Array.length crit);
  let gates = Sta.critical_signals sta ~target:6.3 in
  let is name = gates.(sig_of name) in
  check "nb0 critical" true (is "nb0");
  check "nb1 critical" true (is "nb1");
  check "and2 not critical" false (is "and2")

let test_sta_tail_and_slack () =
  let mc, sig_of = comparator_mapped () in
  let sta = Sta.analyze ~model:Sta.Paper_units mc in
  (* tail(or1) = and1 (2) + y (2) = 4 *)
  checkf "tail or1" 4.0 (Sta.tail sta (sig_of "or1"));
  checkf "slack or1 at 7" 0.0 (Sta.slack sta ~target:7.0 (sig_of "or1"));
  (* arrival + tail along the critical path equals delta *)
  let path, len = Sta.longest_path sta in
  checkf "longest path length" 7.0 len;
  List.iter
    (fun s -> checkf "on-path arr+tail" 7.0 (Sta.arrival sta s +. Sta.tail sta s))
    path

let test_sta_models () =
  let mc = Comparator.mapped () in
  let unit_sta = Sta.analyze ~model:Sta.Unit mc in
  (* Unit model: depth of the comparator netlist is 4 gates. *)
  checkf "unit delta" 4.0 (Sta.delta unit_sta);
  let lib = Sta.analyze ~model:Sta.Library mc in
  check "library delta positive" true (Sta.delta lib > 0.);
  let load = Sta.analyze ~model:(Sta.Library_load 0.01) mc in
  check "load model is slower" true (Sta.delta load > Sta.delta lib)

let test_sta_monotone_arrival () =
  let net = Suite.load "C880" in
  let mc = Mapper.map net in
  let sta = Sta.analyze mc in
  let mnet = Mapped.network mc in
  Array.iter
    (fun s ->
      match Network.node_of mnet s with
      | None -> ()
      | Some nd ->
        Array.iter
          (fun f ->
            check "arrival strictly grows through gates" true
              (Sta.arrival sta s > Sta.arrival sta f))
          nd.Network.fanins)
    (Network.topo_order mnet)

(* ---------- Bit-parallel simulation ---------- *)

let test_bitsim_matches_eval () =
  let net = Suite.load "x2" in
  let sim = Bitsim.prepare net in
  let rng = Util.Rng.create 11 in
  for _ = 1 to 20 do
    let words = Bitsim.random_pi_words sim rng in
    let values = Bitsim.eval_word sim words in
    (* Check a handful of bit positions against scalar evaluation. *)
    List.iter
      (fun bit ->
        let pattern = Array.map (fun w -> w lsr bit land 1 = 1) words in
        let scalar = Network.eval net pattern in
        Array.iteri
          (fun s v ->
            check "bitsim = eval" true ((values.(s) lsr bit land 1 = 1) = v))
          scalar)
      [ 0; 7; 31; 61 ]
  done

let test_power_report () =
  let net = Suite.load "i1" in
  let mc = Mapper.map net in
  let r = Power.estimate ~rounds:64 mc in
  check "total positive" true (r.Power.total > 0.);
  Array.iter (fun a -> check "activity in [0,1]" true (a >= 0. && a <= 1.)) r.Power.activity;
  (* Power is deterministic in the seed. *)
  checkf "deterministic" r.Power.total (Power.total ~rounds:64 mc)

(* ---------- Event-driven timing simulation ---------- *)

let test_tsim_settles_to_eval () =
  let net = Suite.load "cu" in
  let mc = Mapper.map net in
  let delays = Sta.gate_delays Sta.Library mc in
  let mnet = Mapped.network mc in
  let n_in = Array.length (Network.inputs mnet) in
  let rng = Util.Rng.create 21 in
  for _ = 1 to 100 do
    let from_ = Array.init n_in (fun _ -> Util.Rng.bool rng) in
    let to_ = Array.init n_in (fun _ -> Util.Rng.bool rng) in
    let r = Tsim.simulate mc ~delays ~from_ ~to_ ~clock:1000. in
    check "final = functional eval" true (r.Tsim.final = Network.eval mnet to_);
    (* With a clock beyond the settle time, capture equals final. *)
    check "late clock captures final" true (r.Tsim.at_clock = r.Tsim.final)
  done

let test_tsim_settle_bounded_by_sta () =
  let net = Suite.load "C432" in
  let mc = Mapper.map net in
  let sta = Sta.analyze mc in
  let delays = Sta.gate_delays Sta.Library mc in
  let mnet = Mapped.network mc in
  let n_in = Array.length (Network.inputs mnet) in
  let rng = Util.Rng.create 22 in
  for _ = 1 to 50 do
    let from_ = Array.init n_in (fun _ -> Util.Rng.bool rng) in
    let to_ = Array.init n_in (fun _ -> Util.Rng.bool rng) in
    let r = Tsim.simulate mc ~delays ~from_ ~to_ ~clock:1000. in
    check "settle within structural delta" true (r.Tsim.settle <= Sta.delta sta +. 1e-9)
  done

let test_tsim_capture_stale () =
  (* A two-inverter chain; clock before the second inverter settles. *)
  let net = Network.create () in
  let a = Network.add_input net "a" in
  let inv = Logic2.Sop.parse ~vars:[| "x" |] "!x" in
  let n1 = Network.add_node net "n1" ~fanins:[| a |] ~func:inv in
  let n2 = Network.add_node net "n2" ~fanins:[| n1 |] ~func:inv in
  Network.mark_output net ~name:"z" n2;
  let mc, smap = Mapper.map_with_signals net in
  let delays = Sta.gate_delays Sta.Unit mc in
  let r = Tsim.simulate mc ~delays ~from_:[| false |] ~to_:[| true |] ~clock:1.5 in
  let z = smap.(n2) in
  check "final correct" true r.Tsim.final.(z);
  check "capture is stale" false r.Tsim.at_clock.(z)

let test_degraded_delays () =
  let base = [| 1.0; 2.0; 3.0 |] in
  let aged = Tsim.degraded_delays base ~factor:1.5 ~on:(fun s -> s = 1) in
  checkf "untouched" 1.0 aged.(0);
  checkf "aged" 3.0 aged.(1);
  checkf "untouched2" 3.0 aged.(2)

(* ---------- Heap ---------- *)

let test_heap_order_and_stability () =
  let h = Util.Heap.create (-1) in
  Util.Heap.push h 3.0 1;
  Util.Heap.push h 1.0 2;
  Util.Heap.push h 2.0 3;
  Util.Heap.push h 1.0 4;
  (* pops in key order; FIFO among equal keys *)
  check "pop1" true (Util.Heap.pop h = Some (1.0, 2));
  check "pop2" true (Util.Heap.pop h = Some (1.0, 4));
  check "pop3" true (Util.Heap.pop h = Some (2.0, 3));
  check "pop4" true (Util.Heap.pop h = Some (3.0, 1));
  check "empty" true (Util.Heap.pop h = None)

let test_heap_random () =
  let rng = Util.Rng.create 99 in
  let h = Util.Heap.create (-1) in
  let items = List.init 500 (fun i -> (Util.Rng.float rng, i)) in
  List.iter (fun (k, v) -> Util.Heap.push h k v) items;
  let rec drain last acc =
    match Util.Heap.pop h with
    | None -> acc
    | Some (k, _) ->
      check "nondecreasing keys" true (k >= last);
      drain k (acc + 1)
  in
  check_int "all popped" 500 (drain neg_infinity 0)

let () =
  Alcotest.run "timing-sim"
    [
      ( "sta",
        [
          Alcotest.test_case "comparator fig2" `Quick test_sta_comparator;
          Alcotest.test_case "tail and slack" `Quick test_sta_tail_and_slack;
          Alcotest.test_case "delay models" `Quick test_sta_models;
          Alcotest.test_case "monotone arrivals" `Quick test_sta_monotone_arrival;
        ] );
      ( "bitsim",
        [
          Alcotest.test_case "matches eval" `Quick test_bitsim_matches_eval;
          Alcotest.test_case "power report" `Quick test_power_report;
        ] );
      ( "tsim",
        [
          Alcotest.test_case "settles to eval" `Quick test_tsim_settles_to_eval;
          Alcotest.test_case "settle bounded by STA" `Quick test_tsim_settle_bounded_by_sta;
          Alcotest.test_case "stale capture" `Quick test_tsim_capture_stale;
          Alcotest.test_case "degraded delays" `Quick test_degraded_delays;
        ] );
      ( "heap",
        [
          Alcotest.test_case "order + stability" `Quick test_heap_order_and_stability;
          Alcotest.test_case "random drain" `Quick test_heap_random;
        ] );
    ]
