(** Chrome/Perfetto trace-event JSON export of the Obs trace buffer.

    Produces the trace-event format ([{"traceEvents": [...]}] with
    microsecond timestamps) that chrome://tracing and Perfetto load
    directly: one timeline row per domain (tid 0 is the coordinating
    domain, merged worker snapshots get rows 1..N, named by
    [thread_name] metadata events), closed span activations as complete
    ["X"] events, and {!Obs.instant} markers as instant ["i"] events.

    Tracing must have been enabled ({!Obs.set_trace_enabled} or
    [EMASK_TRACE]) while the traced computation ran; with an empty
    buffer the output is a valid trace with metadata only. *)

val render : unit -> Obs_json.t
(** The trace as a JSON value (for embedding or testing). *)

val write_file : string -> unit
(** Write the trace to [path], newline-terminated. *)
