(* Domain-safe instrumentation registry.

   v1 of this module was single-threaded global mutable state, which
   forced [Spcf.Parallel] to fall back to sequential execution whenever
   statistics collection was on — the one mode worth profiling could not
   be observed. v2 splits the registry in two:

   - *Descriptors* ([counter] / [histogram] values) are immutable
     (name, slot) pairs interned in a global table under a mutex.
     Creation happens at module initialisation and is rare; the mutex is
     never taken on a recording path.

   - *Cells* (counts, histogram buckets, the span tree and stack, the
     trace-event buffer) live in domain-local storage: every domain that
     records through a descriptor lazily gets its own state and writes
     only to it. No recording path synchronises with any other domain.

   A worker domain finishes by calling [export_snapshot] — a plain-data
   copy of everything it recorded — and ships it back with its results;
   the coordinating domain calls [merge_snapshot] on each snapshot in a
   deterministic order (worker 0, worker 1, ...). Merging sums counters
   (max-merges high-water gauges), adds histograms bucket-wise, grafts
   the worker's span tree under the currently open span, assigns the
   worker the next free timeline row for its trace events, and records
   a per-domain counter breakdown for attribution.

   The zero-cost-when-disabled discipline is unchanged: every recording
   entry point ([incr], [add], [observe], [enter], ...) is a tiny
   wrapper that branches on [on_flag] and tail-calls the real
   implementation, so the disabled path is one load + one conditional
   and never allocates. Registration of counters/histograms happens
   lazily on the first recording (per domain), which keeps the registry
   empty after a disabled run. *)

let on_flag = ref false
let on () = !on_flag
let set_enabled b = on_flag := b

let env_truthy name =
  match Sys.getenv_opt name with None | Some "" | Some "0" -> false | Some _ -> true

let () = if env_truthy "EMASK_OBS" then on_flag := true

let debug_flag = env_truthy "EMASK_OBS_DEBUG" || env_truthy "EMASK_GEN_DEBUG"
let debug () = debug_flag

(* Monotonic clock, one code path for all timing: clock_gettime
   (CLOCK_MONOTONIC) through a one-function C stub, so spans and
   reported runtimes cannot go negative under NTP wall-clock steps.
   Seconds from an arbitrary origin; only differences are meaningful. *)
external monotonic_now : unit -> float = "emask_obs_monotonic_now"

let now () = monotonic_now ()

(* Trace timestamps are microseconds from process start — one origin for
   every domain, so events from different timeline rows line up. *)
let trace_origin = monotonic_now ()
let now_us () = (monotonic_now () -. trace_origin) *. 1e6

(* Tracing (timeline events) is a second, independent switch: statistics
   aggregation does not imply keeping a per-activation event log. The
   CLI enables both for [--trace]. *)
let trace_flag = ref false
let trace () = !trace_flag
let set_trace_enabled b = trace_flag := b
let () = if env_truthy "EMASK_TRACE" then trace_flag := true

(* --- descriptors -------------------------------------------------------- *)

type counter = { cname : string; slot : int }
type histogram = { hname : string; hslot : int }

(* Interning: creating the same name twice yields the same slot, which
   is what makes cross-domain merging by name well defined. The arrays
   of names grow under the mutex; readers only index below the
   published count, and slots are append-only. *)
let reg_mutex = Mutex.create ()

type intern = {
  table : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable count : int;
}

let make_intern () = { table = Hashtbl.create 64; names = Array.make 64 ""; count = 0 }
let c_intern = make_intern ()
let h_intern = make_intern ()

let intern t name =
  Mutex.protect reg_mutex (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some slot -> slot
      | None ->
        let slot = t.count in
        if slot >= Array.length t.names then begin
          let bigger = Array.make (2 * Array.length t.names) "" in
          Array.blit t.names 0 bigger 0 slot;
          t.names <- bigger
        end;
        t.names.(slot) <- name;
        t.count <- slot + 1;
        Hashtbl.add t.table name slot;
        slot)

let counter cname = { cname; slot = intern c_intern cname }
let histogram hname = { hname; hslot = intern h_intern hname }

(* --- spans (type shared with reporters) -------------------------------- *)

type span = {
  sname : string;
  mutable calls : int;
  mutable total : float;
  mutable children : span list;
  mutable live : int;
  mutable started : float;
}

let make_span sname =
  { sname; calls = 0; total = 0.; children = []; live = 0; started = 0. }

(* --- trace events ------------------------------------------------------- *)

type trace_event = {
  ev_tid : int;
  ev_kind : [ `Complete | `Instant ];
  ev_name : string;
  ev_ts_us : float;
  ev_dur_us : float;
}

(* --- per-domain state --------------------------------------------------- *)

type hcell = {
  mutable hn : int;
  mutable hsum : int;
  mutable hmax : int;
  hbuf : int array;
}

type dstate = {
  mutable counts : int array; (* slot -> value *)
  mutable cmax : bool array; (* slot recorded via record_max *)
  mutable ctouched : bool array;
  mutable corder : int list; (* touched slots, reverse first-use order *)
  mutable hcells : hcell option array;
  mutable horder : int list;
  mutable droot : span;
  mutable dstack : (span * float) list; (* span, trace ts (us) or nan *)
  mutable events : trace_event list; (* reverse emission order *)
  mutable next_tid : int; (* next free timeline row for merges *)
  mutable labels : (int * string) list; (* timeline row labels, reversed *)
  mutable breakdown : (string * (string * int) list) list; (* reversed *)
}

let fresh_state () =
  {
    counts = Array.make 64 0;
    cmax = Array.make 64 false;
    ctouched = Array.make 64 false;
    corder = [];
    hcells = Array.make 64 None;
    horder = [];
    droot = make_span "root";
    dstack = [];
    events = [];
    next_tid = 1;
    labels = [ (0, "main") ];
    breakdown = [];
  }

let state_key = Domain.DLS.new_key fresh_state
let state () = Domain.DLS.get state_key

let grown old fill n =
  let len = max 64 (Array.length old) in
  let len = ref len in
  while n >= !len do
    len := 2 * !len
  done;
  let bigger = Array.make !len fill in
  Array.blit old 0 bigger 0 (Array.length old);
  bigger

let ensure_counter st slot =
  if slot >= Array.length st.counts then begin
    st.counts <- grown st.counts 0 slot;
    st.cmax <- grown st.cmax false slot;
    st.ctouched <- grown st.ctouched false slot
  end;
  if not st.ctouched.(slot) then begin
    st.ctouched.(slot) <- true;
    st.corder <- slot :: st.corder
  end

let hcell_of st slot =
  if slot >= Array.length st.hcells then st.hcells <- grown st.hcells None slot;
  match st.hcells.(slot) with
  | Some cell -> cell
  | None ->
    let cell = { hn = 0; hsum = 0; hmax = 0; hbuf = Array.make 64 0 } in
    st.hcells.(slot) <- Some cell;
    st.horder <- slot :: st.horder;
    cell

(* --- counters ----------------------------------------------------------- *)

let add_slow c n =
  let st = state () in
  ensure_counter st c.slot;
  st.counts.(c.slot) <- st.counts.(c.slot) + n

let[@inline] incr c = if !on_flag then add_slow c 1
let[@inline] add c n = if !on_flag then add_slow c n

let record_max_slow c n =
  let st = state () in
  ensure_counter st c.slot;
  st.cmax.(c.slot) <- true;
  if n > st.counts.(c.slot) then st.counts.(c.slot) <- n

let[@inline] record_max c n = if !on_flag then record_max_slow c n

let counter_value c =
  let st = state () in
  if c.slot < Array.length st.counts then st.counts.(c.slot) else 0

let touch_counter c = if !on_flag then ensure_counter (state ()) c.slot

(* --- histograms --------------------------------------------------------- *)

(* Bucket 0 holds sample 0; bucket i >= 1 holds [2^(i-1), 2^i). 64
   buckets cover the whole nonnegative int range. *)
type hist_stats = {
  hn : int;
  hsum : int;
  hmax : int;
  hbuckets : (int * int) list;
}

let bucket_index v =
  if v <= 0 then 0
  else begin
    let i = ref 1 and v = ref v in
    while !v > 1 do
      v := !v lsr 1;
      Stdlib.incr i
    done;
    !i
  end

let bucket_lower i = if i = 0 then 0 else 1 lsl (i - 1)

let observe_slow h v =
  let cell = hcell_of (state ()) h.hslot in
  let v = Stdlib.max 0 v in
  cell.hn <- cell.hn + 1;
  cell.hsum <- cell.hsum + v;
  if v > cell.hmax then cell.hmax <- v;
  let i = bucket_index v in
  cell.hbuf.(i) <- cell.hbuf.(i) + 1

let[@inline] observe h v = if !on_flag then observe_slow h v

let touch_histogram h = if !on_flag then ignore (hcell_of (state ()) h.hslot)

let stats_of_cell cell =
  let hbuckets = ref [] in
  for i = Array.length cell.hbuf - 1 downto 0 do
    if cell.hbuf.(i) > 0 then
      hbuckets := (bucket_lower i, cell.hbuf.(i)) :: !hbuckets
  done;
  { hn = cell.hn; hsum = cell.hsum; hmax = cell.hmax; hbuckets = !hbuckets }

let empty_stats = { hn = 0; hsum = 0; hmax = 0; hbuckets = [] }

let histogram_stats h =
  let st = state () in
  if h.hslot < Array.length st.hcells then
    match st.hcells.(h.hslot) with
    | Some cell -> stats_of_cell cell
    | None -> empty_stats
  else empty_stats

(* --- spans -------------------------------------------------------------- *)

let root () = (state ()).droot

let child_of parent name =
  let rec find = function
    | [] ->
      let s = make_span name in
      parent.children <- s :: parent.children;
      s
    | s :: rest -> if s.sname = name then s else find rest
  in
  find parent.children

let push_event st ev = st.events <- ev :: st.events

let enter_slow name =
  let st = state () in
  (* Recursive re-entry: if a span with this name is already open on the
     stack, accumulate into it instead of growing a same-name chain;
     only its outermost activation contributes wall time. *)
  let rec open_ancestor = function
    | [] -> None
    | (s, _) :: rest -> if s.sname = name then Some s else open_ancestor rest
  in
  let s =
    match open_ancestor st.dstack with
    | Some s -> s
    | None ->
      let parent = match st.dstack with (s, _) :: _ -> s | [] -> st.droot in
      child_of parent name
  in
  s.calls <- s.calls + 1;
  if s.live = 0 then s.started <- now ();
  s.live <- s.live + 1;
  let tts = if !trace_flag then now_us () else Float.nan in
  st.dstack <- (s, tts) :: st.dstack

let[@inline] enter name = if !on_flag then enter_slow name

let leave_slow () =
  let st = state () in
  match st.dstack with
  | [] -> () (* unmatched leave (e.g. enabled mid-run): ignore *)
  | (s, tts) :: rest ->
    st.dstack <- rest;
    s.live <- s.live - 1;
    if s.live = 0 then s.total <- s.total +. (now () -. s.started);
    if not (Float.is_nan tts) then
      push_event st
        {
          ev_tid = 0;
          ev_kind = `Complete;
          ev_name = s.sname;
          ev_ts_us = tts;
          ev_dur_us = Float.max 0. (now_us () -. tts);
        }

let[@inline] leave () = if !on_flag then leave_slow ()

let with_span name f =
  if not !on_flag then f ()
  else begin
    enter_slow name;
    Fun.protect ~finally:leave_slow f
  end

let timed name f =
  let t0 = now () in
  let finish () = now () -. t0 in
  if not !on_flag then begin
    let r = f () in
    (r, finish ())
  end
  else begin
    enter_slow name;
    let r = Fun.protect ~finally:leave_slow f in
    (r, finish ())
  end

let instant name =
  if !trace_flag then
    push_event (state ())
      {
        ev_tid = 0;
        ev_kind = `Instant;
        ev_name = name;
        ev_ts_us = now_us ();
        ev_dur_us = 0.;
      }

(* --- registry ----------------------------------------------------------- *)

let registered_counters () =
  let st = state () in
  List.rev_map (fun slot -> (c_intern.names.(slot), st.counts.(slot))) st.corder

let registered_histograms () =
  let st = state () in
  List.rev_map
    (fun slot ->
      let stats =
        match st.hcells.(slot) with
        | Some cell -> stats_of_cell cell
        | None -> empty_stats
      in
      (h_intern.names.(slot), stats))
    st.horder

let trace_events () = List.rev (state ()).events
let thread_labels () = List.rev (state ()).labels
let domain_breakdown () = List.rev (state ()).breakdown
let reset () = Domain.DLS.set state_key (fresh_state ())

(* --- snapshots: cross-domain export / merge ----------------------------- *)

type snapshot = {
  s_counters : (string * int * bool) list; (* name, value, is-high-water *)
  s_hists : (string * hist_stats) list;
  s_root : span;
  s_events : trace_event list; (* emission order *)
}

let export_snapshot () =
  let st = state () in
  {
    s_counters =
      List.rev_map
        (fun slot -> (c_intern.names.(slot), st.counts.(slot), st.cmax.(slot)))
        st.corder;
    s_hists =
      List.rev_map
        (fun slot ->
          let stats =
            match st.hcells.(slot) with
            | Some cell -> stats_of_cell cell
            | None -> empty_stats
          in
          (h_intern.names.(slot), stats))
        st.horder;
    s_root = st.droot;
    s_events = List.rev st.events;
  }

let rec merge_span_into parent (w : span) =
  let t = child_of parent w.sname in
  t.calls <- t.calls + w.calls;
  t.total <- t.total +. w.total;
  List.iter (merge_span_into t) (List.rev w.children)

let merge_snapshot ?label snap =
  let st = state () in
  let tid = st.next_tid in
  st.next_tid <- tid + 1;
  let label =
    match label with Some l -> l | None -> Printf.sprintf "worker %d" tid
  in
  st.labels <- (tid, label) :: st.labels;
  (* Counters: sum, except high-water gauges which merge by max (the
     merged value answers "the largest any one domain saw"). *)
  List.iter
    (fun (name, v, is_max) ->
      let c = counter name in
      ensure_counter st c.slot;
      if is_max then begin
        st.cmax.(c.slot) <- true;
        if v > st.counts.(c.slot) then st.counts.(c.slot) <- v
      end
      else st.counts.(c.slot) <- st.counts.(c.slot) + v)
    snap.s_counters;
  (* Histograms: bucket-wise addition. *)
  List.iter
    (fun (name, stats) ->
      let h = histogram name in
      let cell = hcell_of st h.hslot in
      cell.hn <- cell.hn + stats.hn;
      cell.hsum <- cell.hsum + stats.hsum;
      if stats.hmax > cell.hmax then cell.hmax <- stats.hmax;
      List.iter
        (fun (lo, count) ->
          let i = bucket_index lo in
          cell.hbuf.(i) <- cell.hbuf.(i) + count)
        stats.hbuckets)
    snap.s_hists;
  (* Spans: graft the worker tree under the currently open span, so the
     merged tree nests the way the sequential run's would. *)
  let target = match st.dstack with (s, _) :: _ -> s | [] -> st.droot in
  List.iter (merge_span_into target) (List.rev snap.s_root.children);
  (* Trace events: the worker owns one whole timeline row. *)
  List.iter (fun ev -> push_event st { ev with ev_tid = tid }) snap.s_events;
  st.breakdown <-
    (label, List.map (fun (n, v, _) -> (n, v)) snap.s_counters) :: st.breakdown
