(* Regenerates the paper's Table 1: accuracy vs. runtime of the SPCF
   computation — node-based over-approximation [22], the exact path-based
   extension of [22], and the proposed short-path-based algorithm — on
   the five Table-1 circuits, at a target arrival time of 0.9 Δ.

   With `--stats-json FILE` (or EMASK_OBS=1 plus the flag), a JSON
   sidecar of per-circuit / per-algorithm internal statistics (span
   tree, BDD and recursion counters, histograms) is written alongside
   the table — diffable against BENCH_*.json trajectories.

   With `--trace FILE`, a Chrome/Perfetto timeline of the whole table
   regeneration (one row per worker domain under --jobs) is written.
   Combining it with --stats-json truncates the timeline: the sidecar
   isolates each algorithm run in a fresh registry, which also clears
   the trace buffer. *)

let line = String.make 118 '-'

(* The CLI exception boundary (shared policy with emask): bad input
   produces a one-line diagnostic and exit 2, never a raw backtrace. *)
let cli_error code msg =
  Printf.eprintf "table1: error %s: %s\n%!" code msg;
  exit 2

let guarded f =
  try f () with
  | Blif.Parse_error msg -> cli_error "BLIF001" msg
  | Sys_error msg -> cli_error "IO001" msg
  | Failure msg -> cli_error "CLI001" msg
  | Invalid_argument msg -> cli_error "CLI002" msg
  | Budget.Budget_exceeded r ->
    cli_error "BUDGET001" ("resource budget exhausted: " ^ Budget.reason_to_string r)

type row = {
  name : string;
  io : string;
  area : float;
  node_count : string;
  node_rt : float;
  path_count : string;
  path_rt : float;
  short_count : string;
  short_rt : float;
  exactness : string;
}

(* When collecting stats, each algorithm run is isolated in a fresh
   registry so the sidecar attributes every counter to one run. *)
let snapshot_after ~collect f =
  if collect then begin
    Obs.reset ();
    let r = f () in
    (r, Some (Obs_json.snapshot ()))
  end
  else (f (), None)

let run_row ~collect ~jobs ~spec entry =
  let name = entry.Suite.ename in
  let net = Suite.network entry in
  (* Pre-flight: reject a malformed circuit with a one-line summary
     instead of failing deep inside BDD construction. *)
  Analysis.Lint.gate ~what:name (Analysis.Lint.preflight net);
  (* Fresh context per algorithm: shared BDD managers would warm the
     caches of whichever algorithm runs later. With no budget limits
     the governed driver is exactly the plain computation, bit for
     bit; with limits each algorithm degrades down its own ladder. *)
  let run algo =
    snapshot_after ~collect (fun () ->
        let mc = Mapper.map net in
        let algorithm =
          match algo with
          | `Node -> Spcf.Governed.Node_based
          | `Path -> Spcf.Governed.Path_based
          | `Short -> Spcf.Governed.Short_path
        in
        Spcf.Governed.compute ~jobs ~spec ~algorithm ~theta:0.9 mc)
  in
  let on, stats_n = run `Node in
  let op, stats_p = run `Path in
  let os, stats_s = run `Short in
  if collect then Obs.reset ();
  let mc = Mapper.map net in
  let count (o : Spcf.Governed.outcome) =
    Extfloat.to_string (Spcf.Ctx.count o.Spcf.Governed.ctx o.Spcf.Governed.result)
    ^ (if o.Spcf.Governed.tier <> Spcf.Governed.Exact then "*" else "")
  in
  let degraded =
    List.filter
      (fun (o : Spcf.Governed.outcome) -> o.Spcf.Governed.tier <> Spcf.Governed.Exact)
      [ on; op; os ]
  in
  (* Exactness cross-checks (computed on one shared manager). When any
     algorithm degraded under the budget, the cross-check is moot (and
     would itself exceed the same walls), so it is skipped — visibly. *)
  let exactness =
    if degraded <> [] then
      Printf.sprintf "checks skipped: degraded to %s"
        (String.concat "/"
           (List.map
              (fun (o : Spcf.Governed.outcome) ->
                Spcf.Governed.tier_to_string o.Spcf.Governed.tier)
              degraded))
    else begin
      let mc' = Mapper.map net in
      let ctx = Spcf.Ctx.create mc' in
      let target = Spcf.Ctx.target_of_theta ctx 0.9 in
      let a = Spcf.Node_based.compute ctx ~target in
      let b = Spcf.Exact.path_based ctx ~target in
      let c = Spcf.Exact.short_path ctx ~target in
      let superset =
        Bdd.bimply ctx.Spcf.Ctx.man c.Spcf.Ctx.union a.Spcf.Ctx.union = Bdd.btrue
      in
      let equal = b.Spcf.Ctx.union = c.Spcf.Ctx.union in
      Printf.sprintf "node⊇exact:%b path=short:%b" superset equal
    end
  in
  let io =
    Printf.sprintf "%d/%d"
      (Array.length (Network.inputs net))
      (Array.length (Network.outputs net))
  in
  let stats =
    List.filter_map
      (fun (algo, s) -> Option.map (fun j -> (algo, j)) s)
      [ ("node-based", stats_n); ("path-based", stats_p); ("short-path", stats_s) ]
  in
  ( {
      name;
      io;
      area = Mapped.area mc;
      node_count = count on;
      node_rt = on.Spcf.Governed.result.Spcf.Ctx.runtime;
      path_count = count op;
      path_rt = op.Spcf.Governed.result.Spcf.Ctx.runtime;
      short_count = count os;
      short_rt = os.Spcf.Governed.result.Spcf.Ctx.runtime;
      exactness;
    },
    stats )

let flag_value flag =
  let rec scan i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = flag && i + 1 < Array.length Sys.argv then
      Some Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let stats_json_path () = flag_value "--stats-json"
let trace_path () = flag_value "--trace"

(* `--jobs N` (default: EMASK_JOBS, else the
   recommended domain count capped at 8) fans the short-path and
   path-based SPCF computations out over N domains; counts are
   unaffected (see Spcf.Parallel), only runtimes change. A malformed
   or non-positive N is an argument error, not a silent fallback. *)
let jobs_arg () =
  let rec scan i =
    if i >= Array.length Sys.argv then Spcf.Parallel.auto_jobs ()
    else if Sys.argv.(i) = "--jobs" && i + 1 < Array.length Sys.argv then
      match int_of_string_opt Sys.argv.(i + 1) with
      | Some n when n >= 1 -> n
      | _ ->
        cli_error "CLI002"
          (Printf.sprintf "--jobs must be a positive integer, got %S" Sys.argv.(i + 1))
    else scan (i + 1)
  in
  scan 1

(* `--timeout SEC` / `--max-nodes N` (flags win over the EMASK_BUDGET
   environment variables): each per-algorithm run degrades down the
   governed ladder instead of running away; degraded counts are starred
   and named in the checks column. With neither flag the table is
   byte-identical to the ungoverned run. *)
let budget_spec () =
  let scan_opt flag parse what =
    let rec scan i =
      if i >= Array.length Sys.argv then None
      else if Sys.argv.(i) = flag && i + 1 < Array.length Sys.argv then
        match parse Sys.argv.(i + 1) with
        | Some _ as v -> v
        | None ->
          cli_error "CLI002"
            (Printf.sprintf "%s must be %s, got %S" flag what Sys.argv.(i + 1))
      else scan (i + 1)
    in
    scan 1
  in
  let pos_float s =
    match float_of_string_opt s with
    | Some v when v > 0. && v < infinity -> Some v
    | _ -> None
  in
  let pos_int s =
    match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None
  in
  let timeout = scan_opt "--timeout" pos_float "a positive number" in
  let max_nodes = scan_opt "--max-nodes" pos_int "a positive integer" in
  Budget.merge
    { Budget.timeout; max_nodes; max_ops = None; cancel_with = None }
    (Budget.of_env ())

let () =
  guarded @@ fun () ->
  let sidecar = stats_json_path () in
  let trace = trace_path () in
  let jobs = jobs_arg () in
  let spec = budget_spec () in
  if sidecar <> None then Obs.set_enabled true;
  if trace <> None then begin
    Obs.set_enabled true;
    Obs.set_trace_enabled true
  end;
  (* Per-run registry isolation (and its resets) exists only for the
     sidecar's attribution; a plain --trace or EMASK_OBS run keeps one
     registry so the timeline survives to the end. *)
  let collect = sidecar <> None in
  Printf.printf "Table 1: accuracy vs. runtime of SPCF computation (target = 0.9 x critical path delay)\n";
  Printf.printf "%s\n" line;
  Printf.printf "%-18s %-9s %-7s | %-12s %-8s | %-12s %-8s | %-12s %-8s | %s\n"
    "Circuit" "I/O" "Area" "node-based" "rt (s)" "path-based" "rt (s)"
    "short-path" "rt (s)" "checks";
  Printf.printf "%-18s %-9s %-7s | %-12s %-8s | %-12s %-8s | %-12s %-8s |\n" "" ""
    "" "(overapprox)" "" "(exact)" "" "(proposed)" "";
  Printf.printf "%s\n" line;
  let all_stats = ref [] in
  let any_degraded = ref false in
  List.iter
    (fun entry ->
      let r, stats = run_row ~collect ~jobs ~spec entry in
      if stats <> [] then
        all_stats := (r.name, Obs_json.Obj stats) :: !all_stats;
      if
        List.exists
          (fun s -> String.contains s '*')
          [ r.node_count; r.path_count; r.short_count ]
      then any_degraded := true;
      Printf.printf "%-18s %-9s %-7.0f | %-12s %-8.3f | %-12s %-8.3f | %-12s %-8.3f | %s\n%!"
        r.name r.io r.area r.node_count r.node_rt r.path_count r.path_rt
        r.short_count r.short_rt r.exactness)
    Suite.table1_entries;
  Printf.printf "%s\n" line;
  Printf.printf
    "Shape targets (paper): node-based counts are a superset of the exact sets;\n\
     path-based and short-path agree exactly; the proposed short-path algorithm\n\
     runs in node-based-class time while the path-based extension is slower.\n";
  if !any_degraded then
    Printf.printf
      "*: computed on a degraded tier under the resource budget (see the checks\n\
       column for the landing tier); starred counts over-approximate the exact Σ.\n";
  (match trace with
  | Some path ->
    Obs_trace.write_file path;
    Printf.printf "trace written to %s\n" path
  | None -> ());
  match sidecar with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Obs_json.to_channel oc
      (Obs_json.Obj [ ("table1", Obs_json.Obj (List.rev !all_stats)) ]);
    output_char oc '\n';
    close_out oc;
    Printf.printf "per-algorithm stats written to %s\n" path
