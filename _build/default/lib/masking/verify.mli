(** Verification and overhead reporting for a synthesized masking
    circuit: functional equivalence of the masked circuit, coverage of
    the SPCF by the indicators, prediction soundness, the 20 % slack
    requirement, and the Table-2 area/power overheads. *)

type report = {
  equivalent : bool;
  coverage_ok : bool;
  prediction_ok : bool;
  coverage_pct : float;
  critical_outputs : int;
  critical_minterms : Extfloat.t;
  delta_original : float;
  delta_masking : float;
  slack_pct : float;
  mux_delay_impact : float;
  area_original : float;
  area_total : float;
  area_overhead_pct : float;
  power_original : float;
  power_total : float;
  power_overhead_pct : float;
}

val check : ?power_rounds:int -> Synthesis.t -> report
val pp : Format.formatter -> report -> unit
