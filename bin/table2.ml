(* Regenerates the paper's Table 2: area and power overhead for 100%
   masking of timing errors on speed-paths within 10% of the critical
   path delay, over the full 20-circuit suite. *)

let line = String.make 112 '-'

(* The CLI exception boundary (shared policy with emask): bad input
   produces a one-line diagnostic and exit 2, never a raw backtrace. *)
let cli_error code msg =
  Printf.eprintf "table2: error %s: %s\n%!" code msg;
  exit 2

let guarded f =
  try f () with
  | Blif.Parse_error msg -> cli_error "BLIF001" msg
  | Sys_error msg -> cli_error "IO001" msg
  | Failure msg -> cli_error "CLI001" msg
  | Invalid_argument msg -> cli_error "CLI002" msg
  | Budget.Budget_exceeded r ->
    cli_error "BUDGET001" ("resource budget exhausted: " ^ Budget.reason_to_string r)

(* `--stats-json FILE` writes a per-circuit JSON sidecar of the
   synthesis/verification internals (spans, counters, histograms).
   `--trace FILE` writes a Chrome/Perfetto timeline of the whole suite
   run; combining both truncates the timeline, because the sidecar's
   per-circuit registry resets also clear the trace buffer. *)
let flag_value flag =
  let rec scan i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = flag && i + 1 < Array.length Sys.argv then
      Some Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let stats_json_path () = flag_value "--stats-json"
let trace_path () = flag_value "--trace"

(* `--jobs N` (default: EMASK_JOBS, else the
   recommended domain count capped at 8) fans the SPCF stage of each
   synthesis out over N domains. The printed table is byte-identical for
   every N: the parallel driver merges function-identical BDDs in
   deterministic output order. *)
let jobs_arg () =
  let rec scan i =
    if i >= Array.length Sys.argv then Spcf.Parallel.auto_jobs ()
    else if Sys.argv.(i) = "--jobs" && i + 1 < Array.length Sys.argv then
      match int_of_string_opt Sys.argv.(i + 1) with
      | Some n when n >= 1 -> n
      | _ ->
        cli_error "CLI002"
          (Printf.sprintf "--jobs must be a positive integer, got %S" Sys.argv.(i + 1))
    else scan (i + 1)
  in
  scan 1

(* `--timeout SEC` / `--max-nodes N` (flags win over the EMASK_BUDGET
   environment variables): each synthesis degrades down the governed
   ladder (exact, node-based, always-on) instead of running away;
   degraded circuits are named in a note after the table. Without budget
   flags the table is byte-identical to the ungoverned run. *)
let budget_spec () =
  let scan_opt flag parse what =
    let rec scan i =
      if i >= Array.length Sys.argv then None
      else if Sys.argv.(i) = flag && i + 1 < Array.length Sys.argv then
        match parse Sys.argv.(i + 1) with
        | Some _ as v -> v
        | None ->
          cli_error "CLI002"
            (Printf.sprintf "%s must be %s, got %S" flag what Sys.argv.(i + 1))
      else scan (i + 1)
    in
    scan 1
  in
  let pos_float s =
    match float_of_string_opt s with
    | Some v when v > 0. && v < infinity -> Some v
    | _ -> None
  in
  let pos_int s =
    match int_of_string_opt s with Some n when n >= 1 -> Some n | _ -> None
  in
  let timeout = scan_opt "--timeout" pos_float "a positive number" in
  let max_nodes = scan_opt "--max-nodes" pos_int "a positive integer" in
  Budget.merge
    { Budget.timeout; max_nodes; max_ops = None; cancel_with = None }
    (Budget.of_env ())

let () =
  guarded @@ fun () ->
  let sidecar = stats_json_path () in
  let trace = trace_path () in
  let jobs = jobs_arg () in
  let budget = budget_spec () in
  if sidecar <> None then Obs.set_enabled true;
  if trace <> None then begin
    Obs.set_enabled true;
    Obs.set_trace_enabled true
  end;
  (* Registry resets isolate per-circuit sidecar attribution only; a
     plain --trace or EMASK_OBS run keeps one registry so the timeline
     survives to the end. *)
  let collect = sidecar <> None in
  let all_stats = ref [] in
  Printf.printf
    "Table 2: area and power overhead for 100%% masking of timing errors on speed-paths\n";
  Printf.printf "%s\n" line;
  Printf.printf "%-18s %-9s %-6s %-5s %-12s %-7s %-7s %-7s %-9s %-6s\n" "Circuit"
    "I/O" "Gates" "Crit" "Critical" "Slack" "Area" "Power" "Coverage" "OK";
  Printf.printf "%-18s %-9s %-6s %-5s %-12s %-7s %-7s %-7s %-9s %-6s\n" "" "" ""
    "POs" "minterms" "(%)" "(%)" "(%)" "(%)" "";
  Printf.printf "%s\n" line;
  let slacks = ref [] and areas = ref [] and powers = ref [] in
  let degraded = ref [] in
  List.iter
    (fun entry ->
      let net = Suite.network entry in
      (* Pre-flight: reject a malformed circuit with a one-line summary
         instead of failing deep inside synthesis. *)
      Analysis.Lint.gate ~what:entry.Suite.ename (Analysis.Lint.preflight net);
      if collect then Obs.reset ();
      let options = { Masking.Synthesis.default_options with jobs; budget } in
      let m = Masking.Synthesis.synthesize ~options net in
      if m.Masking.Synthesis.tier <> Spcf.Governed.Exact then
        degraded :=
          (entry.Suite.ename, Spcf.Governed.tier_to_string m.Masking.Synthesis.tier)
          :: !degraded;
      let r = Masking.Verify.check m in
      if collect then
        all_stats := (entry.Suite.ename, Obs_json.snapshot ()) :: !all_stats;
      let ok =
        r.Masking.Verify.equivalent && r.Masking.Verify.coverage_ok
        && r.Masking.Verify.prediction_ok
      in
      slacks := r.Masking.Verify.slack_pct :: !slacks;
      areas := r.Masking.Verify.area_overhead_pct :: !areas;
      powers := r.Masking.Verify.power_overhead_pct :: !powers;
      Printf.printf "%-18s %-9s %-6d %-5d %-12s %-7.1f %-7.1f %-7.1f %-9.1f %-6b\n%!"
        entry.Suite.ename
        (Printf.sprintf "%d/%d"
           (Array.length (Network.inputs net))
           (Array.length (Network.outputs net)))
        (Mapped.gate_count m.Masking.Synthesis.original)
        r.Masking.Verify.critical_outputs
        (Extfloat.to_string r.Masking.Verify.critical_minterms)
        r.Masking.Verify.slack_pct r.Masking.Verify.area_overhead_pct
        r.Masking.Verify.power_overhead_pct r.Masking.Verify.coverage_pct ok)
    Suite.all;
  Printf.printf "%s\n" line;
  let avg l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  Printf.printf "%-18s %-9s %-6s %-5s %-12s %-7.1f %-7.1f %-7.1f\n" "Average" ""
    "" "" "" (avg !slacks) (avg !areas) (avg !powers);
  Printf.printf
    "\nShape targets (paper): 100%% coverage on every circuit; average slack 57%%;\n\
     average area (power) overhead 18%% (16%%); ~20%% of outputs critical.\n";
  if !degraded <> [] then
    Printf.printf "budget: degraded circuits: %s\n"
      (String.concat ", "
         (List.rev_map (fun (n, t) -> Printf.sprintf "%s (%s)" n t) !degraded));
  (match trace with
  | Some path ->
    Obs_trace.write_file path;
    Printf.printf "trace written to %s\n" path
  | None -> ());
  match sidecar with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Obs_json.to_channel oc
      (Obs_json.Obj [ ("table2", Obs_json.Obj (List.rev !all_stats)) ]);
    output_char oc '\n';
    close_out oc;
    Printf.printf "per-circuit stats written to %s\n" path
