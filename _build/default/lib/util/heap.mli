(** Binary min-heap keyed by floats. *)

type 'a t

val create : 'a -> 'a t
(** [create dummy] — [dummy] fills vacated slots (any value). *)

val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> float -> 'a -> unit
val peek_key : 'a t -> float option
val pop : 'a t -> (float * 'a) option

(** The heap is stable: among equal keys, pop order is push order. *)
