(* Tests for the static-analysis layer: the diagnostics engine, the
   per-pass behavior on hand-built pathological netlists (and the same
   netlists as committed fixtures), the STA and masking-contract
   checks, and the property that the benchmark suite and synthesized
   masking circuits lint free of errors. *)

open Analysis

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let codes ds = List.map (fun d -> Diag.code_id d.Diag.code) (Diag.sort ds)
let has code ds = List.exists (fun d -> d.Diag.code = code) ds

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

(* ---------- diagnostics engine ---------- *)

let test_severity_and_exit () =
  let e = Diag.diag Diag.Cycle "c" in
  let w = Diag.diag Diag.Dead_cone "d" in
  check "cycle defaults to error" true (e.Diag.severity = Diag.Error);
  check "dead cone defaults to warning" true (w.Diag.severity = Diag.Warning);
  check_int "clean exits 0" 0 (Diag.exit_code []);
  check_int "errors exit 2" 2 (Diag.exit_code [ w; e ]);
  check_int "warnings exit 0 by default" 0 (Diag.exit_code [ w ]);
  check_int "warnings exit 1 under fail-on" 1
    (Diag.exit_code ~fail_on:Diag.Warning [ w ]);
  check_str "summary counts" "1 error, 1 warning" (Diag.summary [ e; w ]);
  check_str "summary clean" "clean" (Diag.summary []);
  (* Sorted presentation: errors first. *)
  check "sort puts errors first" true
    (match Diag.sort [ w; e ] with d :: _ -> d.Diag.code = Diag.Cycle | [] -> false)

let test_codes_stable () =
  (* The catalogue is part of the CLI contract; renumbering is a
     breaking change. *)
  let expect =
    [
      (Diag.Parse_error, "BLIF001");
      (Diag.Cycle, "NET001");
      (Diag.Undriven, "NET002");
      (Diag.Multi_driver, "NET003");
      (Diag.Unused_input, "NET004");
      (Diag.Dead_cone, "NET005");
      (Diag.Const_gate, "NET006");
      (Diag.No_outputs, "NET007");
      (Diag.Unmapped_gate, "MAP001");
      (Diag.Sta_delta, "STA001");
      (Diag.Sta_monotone, "STA002");
      (Diag.Sta_negative, "STA003");
      (Diag.Sta_false_path, "STA004");
      (Diag.Mask_intrusive, "MASK001");
      (Diag.Mask_slack, "MASK002");
      (Diag.Mask_mux, "MASK003");
      (Diag.Mask_coverage, "MASK004");
      (Diag.Mask_false_paths, "MASK005");
    ]
  in
  List.iter (fun (c, id) -> check_str id id (Diag.code_id c)) expect;
  check_int "catalogue covers every code" (List.length Diag.all_codes)
    (List.length expect)

let test_json_roundtrip () =
  let ds =
    [
      Diag.diag Diag.Cycle ~loc:{ Blif.file = Some "x.blif"; line = 7 } ~signal:"n3"
        "combinational cycle through {n3}";
      Diag.diag Diag.Unused_input ~signal:"pi0" "input unused";
    ]
  in
  let json = Obs_json.to_string (Diag.report_json ~name:"x.blif" ds) in
  match Obs_json.of_string json with
  | Error e -> Alcotest.failf "report JSON does not parse: %s" e
  | Ok v ->
    let member name = Obs_json.member name v in
    check "has diagnostics" true (member "diagnostics" <> None);
    (match member "summary" with
    | Some s ->
      check "one error" true (Obs_json.member "errors" s = Some (Obs_json.Int 1));
      check "one warning" true (Obs_json.member "warnings" s = Some (Obs_json.Int 1))
    | None -> Alcotest.fail "missing summary");
    (match member "diagnostics" with
    | Some (Obs_json.List (first :: _)) ->
      check "code serialized" true
        (Obs_json.member "code" first = Some (Obs_json.String "NET001"));
      check "line serialized" true
        (Obs_json.member "line" first = Some (Obs_json.Int 7))
    | _ -> Alcotest.fail "diagnostics not a list")

(* ---------- source-level passes on pathological netlists ---------- *)

let src_of text = Blif.parse_source text

let test_pass_cycle () =
  let src =
    src_of ".model c\n.inputs a\n.outputs z\n.names a x z\n11 1\n.names z y\n1 1\n.names y x\n1 1\n.end\n"
  in
  let ds = Passes.source_cycles src in
  check_int "one SCC" 1 (List.length ds);
  check "code" true (codes ds = [ "NET001" ]);
  let d = List.hd ds in
  check "members listed" true
    (contains d.Diag.message "x" && contains d.Diag.message "y"
    && contains d.Diag.message "z");
  (* A self-loop is also a cycle. *)
  let self = src_of ".model s\n.outputs z\n.names z z\n1 1\n.end\n" in
  check "self-loop detected" true (has Diag.Cycle (Passes.source_cycles self));
  (* The acyclic reference is clean. *)
  let ok = src_of ".model ok\n.inputs a\n.outputs z\n.names a z\n1 1\n.end\n" in
  check_int "acyclic clean" 0 (List.length (Passes.source_cycles ok))

let test_pass_undriven () =
  let src =
    src_of ".model u\n.inputs a b\n.outputs z w\n.names a ghost z\n11 1\n.end\n"
  in
  let ds = Passes.source_undriven src in
  check "ghost and w undriven" true (codes ds = [ "NET002"; "NET002" ]);
  check "signals named" true
    (List.sort compare (List.filter_map (fun d -> d.Diag.signal) ds)
    = [ "ghost"; "w" ])

let test_pass_multidriver () =
  let src =
    src_of
      ".model m\n.inputs a b\n.outputs z\n.names a z\n1 1\n.names b z\n0 1\n.names a b\n0 1\n.end\n"
  in
  let ds = Passes.source_multi_driver src in
  check "two multi-driver errors" true (codes ds = [ "NET003"; "NET003" ]);
  check "duplicate .names reported on z" true
    (List.exists (fun d -> d.Diag.signal = Some "z") ds);
  check "input redefinition reported on b" true
    (List.exists (fun d -> d.Diag.signal = Some "b") ds);
  (* The elaborator now rejects both defects too. *)
  check "elaborate rejects" true
    (try
       ignore (Blif.elaborate src);
       false
     with Blif.Parse_error _ -> true)

let test_pass_dead_cone () =
  let src =
    src_of
      ".model d\n.inputs a b c\n.outputs z\n.names a b z\n11 1\n.names c dead1\n0 1\n.names dead1 b dead2\n10 1\n.end\n"
  in
  let ds = Passes.source_structure src in
  check "two dead nodes + one unused input" true
    (codes ds = [ "NET004"; "NET005"; "NET005" ])

let test_pass_const_gate () =
  let net =
    Blif.parse
      ".model k\n.inputs a b\n.outputs z always\n.names a always\n1 1\n0 1\n.names always b z\n1- 1\n-1 1\n.end\n"
  in
  let ds = Passes.net_const_gates net in
  (* "always" is a tautology cover; z = always | b collapses once the
     constant is propagated. *)
  check "both constants found" true (codes ds = [ "NET006"; "NET006" ]);
  let const = Passes.net_constants net in
  let find name = Option.get (Network.find net name) in
  check "always = 1" true (const.(find "always") = Some true);
  check "z = 1" true (const.(find "z") = Some true);
  check "a unknown" true (const.(find "a") = None)

(* ---------- fixtures on disk (what CI and users run lint on) ---------- *)

(* Under `dune runtest` the cwd is the test directory (fixtures are
   declared deps); fall back to the source tree for `dune exec`. *)
let fixture name =
  let candidates = [ Filename.concat "fixtures" name; Filename.concat "test/fixtures" name ] in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> Blif.read_source path
  | None -> Alcotest.failf "fixture %s not found" name

let test_fixtures () =
  let expect_codes name expected =
    let src = fixture name in
    let ds = Lint.source src in
    let ds =
      (* The constant-gate pass needs the elaborated network. *)
      if Diag.errors ds = [] then ds @ Passes.net_const_gates (Blif.elaborate src)
      else ds
    in
    List.iter
      (fun code ->
        check (name ^ " reports " ^ Diag.code_id code) true (has code ds))
      expected;
    (* Every file-based diagnostic carries a position in that file. *)
    List.iter
      (fun d ->
        match d.Diag.loc with
        | Some l -> check (name ^ " loc file") true (l.Blif.file <> None)
        | None -> ())
      ds
  in
  expect_codes "cycle.blif" [ Diag.Cycle ];
  expect_codes "undriven.blif" [ Diag.Undriven ];
  expect_codes "multidriver.blif" [ Diag.Multi_driver ];
  expect_codes "deadcone.blif" [ Diag.Dead_cone; Diag.Unused_input ];
  expect_codes "constgate.blif" [ Diag.Const_gate ]

let test_parser_locations () =
  let src = src_of ".model l\n.inputs a\n.outputs z\n\n.names a z\n1 1\n.end\n" in
  (match src.Blif.nodes with
  | [ n ] -> check_int "names line" 5 n.Blif.nloc.Blif.line
  | _ -> Alcotest.fail "expected one node");
  (match src.Blif.src_inputs with
  | [ (_, loc) ] -> check_int "inputs line" 2 loc.Blif.line
  | _ -> Alcotest.fail "expected one input");
  (* Elaboration errors carry positions. *)
  (try
     ignore (Blif.parse ".model e\n.inputs a\n.outputs z\n.names a z\n1 1\n.names a z\n0 1\n.end\n");
     Alcotest.fail "duplicate driver accepted"
   with Blif.Parse_error msg -> check "message has line" true (contains msg "line 6"))

(* ---------- STA consistency ---------- *)

let test_sta_consistency () =
  List.iter
    (fun name ->
      let mc = Mapper.map (Suite.load name) in
      check_int (name ^ " sta consistent") 0
        (List.length (Passes.sta_consistency mc));
      check_int (name ^ " fully mapped") 0
        (List.length (Passes.mapped_unmapped_gates mc)))
    [ "cmb"; "x2"; "C432" ]

(* ---------- suite-wide lint property ---------- *)

let test_suite_lints_error_free () =
  List.iter
    (fun entry ->
      let net = Suite.network entry in
      let ds = Lint.network net in
      check (entry.Suite.ename ^ " no lint errors") true (Diag.errors ds = []);
      check (entry.Suite.ename ^ " preflight clean") true (Lint.preflight net = []))
    Suite.all

(* The generator is known to leave advisory findings on two entries;
   the lint layer should keep reporting them (they are real), and every
   other entry should be fully clean. *)
let test_suite_known_warnings () =
  let dirty =
    List.filter_map
      (fun entry ->
        let ds = Lint.network (Suite.network entry) in
        if ds <> [] then Some entry.Suite.ename else None)
      Suite.all
  in
  check "only cmb and too_large carry warnings" true
    (List.sort compare dirty = [ "cmb"; "too_large" ])

(* ---------- synthesized masking circuits ---------- *)

let test_synthesis_lints_clean () =
  List.iter
    (fun name ->
      let m = Masking.Synthesis.synthesize (Suite.load name) in
      let contract = Contract.check m in
      check (name ^ " contract clean") true (contract = []);
      let combined = Lint.mapped m.Masking.Synthesis.combined in
      check (name ^ " combined error-free") true (Diag.errors combined = []);
      let masking = Lint.mapped m.Masking.Synthesis.masking in
      check (name ^ " masking error-free") true (Diag.errors masking = []))
    [ "cmb"; "x2"; "cu"; "C432" ]

(* A deliberately broken synthesis result is hard to fabricate through
   the public API (the types keep the invariants); instead check the
   slack pass against a tightened margin that C432's masking circuit
   cannot meet. *)
let test_contract_slack_margin () =
  let m = Masking.Synthesis.synthesize (Suite.load "C432") in
  check "paper margin met" true (Contract.check_slack m = []);
  let ds = Contract.check_slack ~margin:0.999 m in
  check "impossible margin violated" true (has Diag.Mask_slack ds)

(* The README's diagnostic-catalogue table must stay in lockstep with
   Analysis.Diag: one row per code, with the id, name, default
   severity, IR level and meaning the library reports. *)
let test_readme_catalogue () =
  let readme =
    let ic = open_in "../README.md" in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let rows =
    String.split_on_char '\n' readme
    |> List.filter_map (fun line ->
           match String.split_on_char '|' line with
           | [ ""; code; name; sev; level; meaning; "" ]
             when String.length (String.trim code) > 2
                  && (String.trim code).[0] = '`' ->
               let strip s = String.trim s in
               let unquote s =
                 let s = strip s in
                 String.sub s 1 (String.length s - 2)
               in
               Some (unquote code, strip name, strip sev, strip level, strip meaning)
           | _ -> None)
  in
  check_int "one table row per catalogue code" (List.length Diag.all_codes)
    (List.length rows);
  List.iter2
    (fun c (id, name, sev, level, meaning) ->
      check_str (id ^ " id") (Diag.code_id c) id;
      check_str (id ^ " name") (Diag.code_name c) name;
      check_str (id ^ " severity")
        (Diag.severity_to_string (Diag.default_severity c))
        sev;
      check_str (id ^ " level") (Diag.code_level c) level;
      check_str (id ^ " meaning") (Diag.code_meaning c) meaning)
    Diag.all_codes rows;
  (* The incremental-recompute section must document the emask eco CLI
     (the edit-sequence flag and the full-vs-incremental cross-check). *)
  let has needle =
    let n = String.length needle and len = String.length readme in
    let rec go i = i + n <= len && (String.sub readme i n = needle || go (i + 1)) in
    go 0
  in
  check "incremental recompute section" true
    (has "## Incremental recompute (`emask eco`)");
  check "eco --edits documented" true (has "--edits");
  check "eco --check documented" true (has "--check");
  check "eco-equal oracle named" true (has "`eco-equal`");
  (* The serving section must document the daemon, its byte-identity
     contract with the one-shot CLI, and the saturation diagnostics. *)
  check "serving section" true (has "## Serving (`emask serve`)");
  check "byte-identity contract stated" true (has "byte-identical output");
  check "client subcommand documented" true (has "emask client");
  check "metrics endpoint documented" true (has "/metrics");
  check "queue rejection code documented" true (has "QUEUE001");
  check "cache flag documented" true (has "--cache-mb")

let () =
  Alcotest.run "analysis"
    [
      ( "diag",
        [
          Alcotest.test_case "severity and exit codes" `Quick test_severity_and_exit;
          Alcotest.test_case "stable code catalogue" `Quick test_codes_stable;
          Alcotest.test_case "readme catalogue" `Quick test_readme_catalogue;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        ] );
      ( "passes",
        [
          Alcotest.test_case "cycle" `Quick test_pass_cycle;
          Alcotest.test_case "undriven" `Quick test_pass_undriven;
          Alcotest.test_case "multi-driver" `Quick test_pass_multidriver;
          Alcotest.test_case "dead cone" `Quick test_pass_dead_cone;
          Alcotest.test_case "const gate" `Quick test_pass_const_gate;
          Alcotest.test_case "fixtures" `Quick test_fixtures;
          Alcotest.test_case "parser locations" `Quick test_parser_locations;
          Alcotest.test_case "sta consistency" `Quick test_sta_consistency;
        ] );
      ( "properties",
        [
          Alcotest.test_case "suite error-free" `Slow test_suite_lints_error_free;
          Alcotest.test_case "known warnings" `Slow test_suite_known_warnings;
          Alcotest.test_case "synthesis clean" `Slow test_synthesis_lints_clean;
          Alcotest.test_case "slack margin" `Slow test_contract_slack_margin;
        ] );
    ]
