lib/bdd/bdd.ml: Array Extfloat Hashtbl List Logic2
