(* Unit and property tests for the two-level logic library: bitsets,
   cubes, covers, tautology/complement, prime implicants. *)

open Logic2

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Bits ---------- *)

let test_bits_basic () =
  let b = Bits.create 100 in
  check "empty" true (Bits.is_empty b);
  Bits.set b 0;
  Bits.set b 63;
  Bits.set b 99;
  check "get 0" true (Bits.get b 0);
  check "get 63" true (Bits.get b 63);
  check "get 99" true (Bits.get b 99);
  check "get 50" false (Bits.get b 50);
  check_int "count" 3 (Bits.count b);
  Bits.clear b 63;
  check "cleared" false (Bits.get b 63);
  check_int "count after clear" 2 (Bits.count b)

let test_bits_set_ops () =
  let a = Bits.of_list 70 [ 1; 5; 64 ] and b = Bits.of_list 70 [ 5; 6; 69 ] in
  check_int "union" 5 (Bits.count (Bits.union a b));
  check_int "inter" 1 (Bits.count (Bits.inter a b));
  check_int "diff" 2 (Bits.count (Bits.diff a b));
  check "subset no" false (Bits.subset a b);
  check "subset yes" true (Bits.subset (Bits.inter a b) a);
  check "disjoint no" false (Bits.disjoint a b);
  let c = Bits.complement a in
  check_int "complement count" 67 (Bits.count c);
  check "complement disjoint" true (Bits.disjoint a c);
  check "first_set" true (Bits.first_set a = Some 1);
  check "roundtrip" true (Bits.to_list a = [ 1; 5; 64 ])

let bits_gen =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck.Gen.(list_size (int_bound 20) (int_bound 126))

let prop_bits_demorgan =
  QCheck.Test.make ~name:"bits: De Morgan" ~count:200
    (QCheck.pair bits_gen bits_gen) (fun (la, lb) ->
      let a = Bits.of_list 127 la and b = Bits.of_list 127 lb in
      Bits.equal
        (Bits.complement (Bits.union a b))
        (Bits.inter (Bits.complement a) (Bits.complement b)))

let prop_bits_count =
  QCheck.Test.make ~name:"bits: |a∪b| + |a∩b| = |a| + |b|" ~count:200
    (QCheck.pair bits_gen bits_gen) (fun (la, lb) ->
      let a = Bits.of_list 127 la and b = Bits.of_list 127 lb in
      Bits.count (Bits.union a b) + Bits.count (Bits.inter a b)
      = Bits.count a + Bits.count b)

(* ---------- Cubes ---------- *)

let cube_gen n =
  let open QCheck.Gen in
  let lit = pair (int_bound (n - 1)) bool in
  map
    (fun lits ->
      (* Deduplicate variables to avoid contradictions. *)
      let seen = Hashtbl.create 8 in
      let lits =
        List.filter
          (fun (v, _) ->
            if Hashtbl.mem seen v then false
            else begin
              Hashtbl.add seen v ();
              true
            end)
          lits
      in
      Cube.make n lits)
    (list_size (int_bound n) lit)

let arb_cube n = QCheck.make ~print:Cube.to_string (cube_gen n)

let test_cube_basic () =
  let c = Cube.make 4 [ (0, true); (2, false) ] in
  check_int "literals" 2 (Cube.num_literals c);
  check "eval sat" true (Cube.eval c [| true; false; false; true |]);
  check "eval unsat" false (Cube.eval c [| true; false; true; true |]);
  check "universe covers" true (Cube.covers (Cube.universe 4) c);
  check "not covers universe" false (Cube.covers c (Cube.universe 4));
  check "polarity pos" true (Cube.polarity c 0 = Cube.Pos);
  check "polarity neg" true (Cube.polarity c 2 = Cube.Neg);
  check "polarity absent" true (Cube.polarity c 1 = Cube.Absent);
  check_int "minterm_log2" 2 (Cube.minterm_log2 c)

let test_cube_ops () =
  let a = Cube.make 3 [ (0, true) ] and b = Cube.make 3 [ (0, false); (1, true) ] in
  check "intersect empty" true (Cube.intersect a b = None);
  check_int "distance" 1 (Cube.distance a b);
  let c = Cube.make 3 [ (1, true) ] in
  (match Cube.intersect a c with
  | Some x -> check_int "intersect lits" 2 (Cube.num_literals x)
  | None -> Alcotest.fail "intersect should exist");
  (match Cube.consensus a b with
  | Some x -> check "consensus" true (Cube.equal x (Cube.make 3 [ (1, true) ]))
  | None -> Alcotest.fail "consensus should exist");
  check "supercube" true
    (Cube.equal (Cube.supercube a b) (Cube.universe 3))

let prop_cube_intersect_eval =
  QCheck.Test.make ~name:"cube: eval of intersection = conjunction" ~count:500
    (QCheck.pair (arb_cube 6) (arb_cube 6)) (fun (a, b) ->
      let assignment = Array.init 6 (fun i -> i land 1 = 0) in
      match Cube.intersect a b with
      | Some c -> Cube.eval c assignment = (Cube.eval a assignment && Cube.eval b assignment)
      | None ->
        (* Empty intersection: no assignment satisfies both. *)
        let all = List.init 64 (fun i -> Array.init 6 (fun v -> i lsr v land 1 = 1)) in
        List.for_all (fun x -> not (Cube.eval a x && Cube.eval b x)) all)

let prop_cube_covers_semantics =
  QCheck.Test.make ~name:"cube: covers = minterm containment" ~count:300
    (QCheck.pair (arb_cube 5) (arb_cube 5)) (fun (a, b) ->
      let all = List.init 32 (fun i -> Array.init 5 (fun v -> i lsr v land 1 = 1)) in
      Cube.covers a b
      = List.for_all (fun x -> (not (Cube.eval b x)) || Cube.eval a x) all)

(* ---------- Covers ---------- *)

let cover_gen n =
  QCheck.Gen.map (Cover.of_cubes n) QCheck.Gen.(list_size (int_bound 6) (cube_gen n))

let arb_cover n = QCheck.make ~print:Cover.to_string (cover_gen n)

let all_assignments n = List.init (1 lsl n) (fun i -> Array.init n (fun v -> i lsr v land 1 = 1))

let test_cover_basic () =
  let vars = [| "a"; "b"; "c" |] in
  let f = Sop.parse ~vars "a*b + !a*c" in
  check "eval 110" true (Cover.eval f [| true; true; false |]);
  check "eval 001" true (Cover.eval f [| false; false; true |]);
  check "eval 100" false (Cover.eval f [| true; false; false |]);
  check "not taut" false (Cover.is_tautology f);
  check "a + !a taut" true (Cover.is_tautology (Sop.parse ~vars "a + !a"));
  check "zero" true (Cover.is_zero (Cover.zero 3))

let test_cover_complement () =
  let vars = [| "a"; "b"; "c"; "d" |] in
  let f = Sop.parse ~vars "a*b + c*!d + !a*!b*!c" in
  let g = Cover.complement f in
  List.iter
    (fun x -> check "complement pointwise" true (Cover.eval f x <> Cover.eval g x))
    (all_assignments 4)

let prop_cover_complement =
  QCheck.Test.make ~name:"cover: complement is pointwise negation" ~count:200
    (arb_cover 5) (fun f ->
      let g = Cover.complement f in
      List.for_all (fun x -> Cover.eval f x <> Cover.eval g x) (all_assignments 5))

let prop_cover_tautology =
  QCheck.Test.make ~name:"cover: tautology = all-ones truth table" ~count:300
    (arb_cover 5) (fun f ->
      Cover.is_tautology f = List.for_all (Cover.eval f) (all_assignments 5))

let prop_cover_product =
  QCheck.Test.make ~name:"cover: product is conjunction" ~count:200
    (QCheck.pair (arb_cover 5) (arb_cover 5)) (fun (f, g) ->
      let p = Cover.product f g in
      List.for_all
        (fun x -> Cover.eval p x = (Cover.eval f x && Cover.eval g x))
        (all_assignments 5))

let prop_cover_irredundant =
  QCheck.Test.make ~name:"cover: irredundant preserves the function" ~count:200
    (arb_cover 5) (fun f ->
      let g = Cover.irredundant f in
      List.for_all (fun x -> Cover.eval f x = Cover.eval g x) (all_assignments 5))

let prop_cover_minimize =
  QCheck.Test.make ~name:"cover: minimize preserves function, never grows" ~count:200
    (arb_cover 5) (fun f ->
      let g = Cover.minimize f in
      Cover.num_cubes g <= max 1 (Cover.num_cubes f)
      && List.for_all (fun x -> Cover.eval f x = Cover.eval g x) (all_assignments 5))

let prop_cover_covers_cube =
  QCheck.Test.make ~name:"cover: covers_cube semantics" ~count:300
    (QCheck.pair (arb_cover 4) (arb_cube 4)) (fun (f, c) ->
      Cover.covers_cube f c
      = List.for_all
          (fun x -> (not (Cube.eval c x)) || Cover.eval f x)
          (all_assignments 4))

(* ---------- Primes ---------- *)

let is_implicant f c =
  List.for_all
    (fun x -> (not (Cube.eval c x)) || Cover.eval f x)
    (all_assignments (Cover.num_vars f))

let is_prime f c =
  is_implicant f c
  && List.for_all
       (fun (v, _) -> not (is_implicant f (Cube.remove_var c v)))
       (Cube.literals c)

let prop_primes_consensus =
  QCheck.Test.make ~name:"primes: every output cube is prime; function preserved"
    ~count:100 (arb_cover 4) (fun f ->
      QCheck.assume (not (Cover.is_zero f));
      let p = Primes.of_cover f in
      List.for_all (is_prime f) (Cover.cubes p)
      && List.for_all
           (fun x -> Cover.eval f x = Cover.eval p x)
           (all_assignments 4))

let prop_primes_qm_equals_consensus =
  QCheck.Test.make ~name:"primes: QM = iterated consensus" ~count:100
    (arb_cover 4) (fun f ->
      let via_consensus = Primes.of_cover f in
      let via_qm = Primes.quine_mccluskey (Truth.of_cover f) in
      let norm c = List.sort compare (List.map Cube.literals (Cover.cubes c)) in
      norm via_consensus = norm via_qm)

let test_primes_example () =
  (* xor has exactly its two minterm cubes as primes *)
  let vars = [| "a"; "b" |] in
  let f = Sop.parse ~vars "a*!b + !a*b" in
  let p = Primes.of_cover f in
  check_int "xor primes" 2 (Cover.num_cubes p);
  let on, off = Primes.onset_and_offset_primes f in
  check_int "xor on-primes" 2 (Cover.num_cubes on);
  check_int "xor off-primes" 2 (Cover.num_cubes off)

(* ---------- Truth / Sop ---------- *)

let test_truth_roundtrip () =
  let vars = [| "a"; "b"; "c" |] in
  let f = Sop.parse ~vars "a*b + !c" in
  let t = Truth.of_cover f in
  let f' = Truth.to_cover t in
  List.iter
    (fun x -> check "roundtrip" true (Cover.eval f x = Cover.eval f' x))
    (all_assignments 3)

let test_blif_rows () =
  let c = Sop.cube_of_blif_row 4 "01-1" in
  check "row decode" true
    (Cube.equal c (Cube.make 4 [ (0, false); (1, true); (3, true) ]));
  check "row encode" true (Sop.blif_row_of_cube c = "01-1")

(* Deterministic QCheck seeding (no wall-clock self-init): the state
   comes from Fuzz.Rng.qcheck_state, overridable via QCHECK_SEED. *)
let qsuite name tests =
  let rand = Fuzz.Rng.qcheck_state () in
  (name, List.map (QCheck_alcotest.to_alcotest ~rand) tests)

let () =
  Alcotest.run "logic2"
    [
      ( "bits",
        [
          Alcotest.test_case "basic" `Quick test_bits_basic;
          Alcotest.test_case "set ops" `Quick test_bits_set_ops;
        ] );
      qsuite "bits-props" [ prop_bits_demorgan; prop_bits_count ];
      ( "cube",
        [
          Alcotest.test_case "basic" `Quick test_cube_basic;
          Alcotest.test_case "ops" `Quick test_cube_ops;
        ] );
      qsuite "cube-props" [ prop_cube_intersect_eval; prop_cube_covers_semantics ];
      ( "cover",
        [
          Alcotest.test_case "basic" `Quick test_cover_basic;
          Alcotest.test_case "complement" `Quick test_cover_complement;
        ] );
      qsuite "cover-props"
        [
          prop_cover_complement;
          prop_cover_tautology;
          prop_cover_product;
          prop_cover_irredundant;
          prop_cover_minimize;
          prop_cover_covers_cube;
        ];
      ("primes", [ Alcotest.test_case "xor" `Quick test_primes_example ]);
      qsuite "primes-props" [ prop_primes_consensus; prop_primes_qm_equals_consensus ];
      ( "truth-sop",
        [
          Alcotest.test_case "truth roundtrip" `Quick test_truth_roundtrip;
          Alcotest.test_case "blif rows" `Quick test_blif_rows;
        ] );
    ]
