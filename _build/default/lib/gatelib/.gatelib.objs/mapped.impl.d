lib/gatelib/mapped.ml: Array Cell Format Network Printf
