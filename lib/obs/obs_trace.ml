(* Chrome/Perfetto trace-event JSON writer.

   Renders the calling domain's trace buffer (its own events plus every
   merged worker snapshot) in the trace-event format both
   chrome://tracing and https://ui.perfetto.dev load directly:

   - one timeline row ("thread") per domain — tid 0 is the coordinating
     domain, merged workers get tids 1..N, each named by a thread_name
     metadata event;
   - every closed span activation is a complete ("ph":"X") event with
     microsecond ts/dur on the shared process clock;
   - instant markers (budget walls, synthesis-ladder fallbacks, BDD
     table growth) are thread-scoped instant ("ph":"i") events.

   The JSON-object form ({"traceEvents": [...]}) is used rather than the
   bare array so viewers accept the file without guessing, and
   displayTimeUnit keeps Perfetto's ruler in milliseconds. *)

let pid = 1

let meta_json ~tid ~name ~value =
  Obs_json.Obj
    [
      ("ph", Obs_json.String "M");
      ("pid", Obs_json.Int pid);
      ("tid", Obs_json.Int tid);
      ("name", Obs_json.String name);
      ("args", Obs_json.Obj [ ("name", Obs_json.String value) ]);
    ]

let event_json (e : Obs.trace_event) =
  let common =
    [
      ("name", Obs_json.String e.Obs.ev_name);
      ("cat", Obs_json.String "emask");
      ("pid", Obs_json.Int pid);
      ("tid", Obs_json.Int e.Obs.ev_tid);
      ("ts", Obs_json.Float (Float.max 0. e.Obs.ev_ts_us));
    ]
  in
  match e.Obs.ev_kind with
  | `Complete ->
    Obs_json.Obj
      (common
      @ [
          ("ph", Obs_json.String "X");
          ("dur", Obs_json.Float (Float.max 0. e.Obs.ev_dur_us));
        ])
  | `Instant ->
    Obs_json.Obj (common @ [ ("ph", Obs_json.String "i"); ("s", Obs_json.String "t") ])

let render () =
  let metas =
    meta_json ~tid:0 ~name:"process_name" ~value:"emask"
    :: List.map
         (fun (tid, label) -> meta_json ~tid ~name:"thread_name" ~value:label)
         (Obs.thread_labels ())
  in
  let events = List.map event_json (Obs.trace_events ()) in
  Obs_json.Obj
    [
      ("traceEvents", Obs_json.List (metas @ events));
      ("displayTimeUnit", Obs_json.String "ms");
    ]

let write_file path =
  Obs_json.with_atomic_file path (fun oc ->
      Obs_json.to_channel oc (render ());
      output_char oc '\n')
