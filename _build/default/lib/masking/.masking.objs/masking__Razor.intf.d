lib/masking/razor.mli: Format Synthesis
