(* Regenerates the paper's Table 2: area and power overhead for 100%
   masking of timing errors on speed-paths within 10% of the critical
   path delay, over the full 20-circuit suite. *)

let line = String.make 112 '-'

(* `--stats-json FILE` writes a per-circuit JSON sidecar of the
   synthesis/verification internals (spans, counters, histograms). *)
let stats_json_path () =
  let rec scan i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--stats-json" && i + 1 < Array.length Sys.argv then
      Some Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

(* `--jobs N` (default: EMASK_JOBS, else 1) fans the SPCF stage of each
   synthesis out over N domains. The printed table is byte-identical for
   every N: the parallel driver merges function-identical BDDs in
   deterministic output order. *)
let jobs_arg () =
  let rec scan i =
    if i >= Array.length Sys.argv then Spcf.Parallel.default_jobs ()
    else if Sys.argv.(i) = "--jobs" && i + 1 < Array.length Sys.argv then
      match int_of_string_opt Sys.argv.(i + 1) with
      | Some n when n >= 1 -> n
      | _ -> Spcf.Parallel.default_jobs ()
    else scan (i + 1)
  in
  scan 1

let () =
  let sidecar = stats_json_path () in
  let jobs = jobs_arg () in
  if sidecar <> None then Obs.set_enabled true;
  let collect = Obs.on () in
  let all_stats = ref [] in
  Printf.printf
    "Table 2: area and power overhead for 100%% masking of timing errors on speed-paths\n";
  Printf.printf "%s\n" line;
  Printf.printf "%-18s %-9s %-6s %-5s %-12s %-7s %-7s %-7s %-9s %-6s\n" "Circuit"
    "I/O" "Gates" "Crit" "Critical" "Slack" "Area" "Power" "Coverage" "OK";
  Printf.printf "%-18s %-9s %-6s %-5s %-12s %-7s %-7s %-7s %-9s %-6s\n" "" "" ""
    "POs" "minterms" "(%)" "(%)" "(%)" "(%)" "";
  Printf.printf "%s\n" line;
  let slacks = ref [] and areas = ref [] and powers = ref [] in
  List.iter
    (fun entry ->
      let net = Suite.network entry in
      (* Pre-flight: reject a malformed circuit with a one-line summary
         instead of failing deep inside synthesis. *)
      Analysis.Lint.gate ~what:entry.Suite.ename (Analysis.Lint.preflight net);
      if collect then Obs.reset ();
      let options = { Masking.Synthesis.default_options with jobs } in
      let m = Masking.Synthesis.synthesize ~options net in
      let r = Masking.Verify.check m in
      if collect then
        all_stats := (entry.Suite.ename, Obs_json.snapshot ()) :: !all_stats;
      let ok =
        r.Masking.Verify.equivalent && r.Masking.Verify.coverage_ok
        && r.Masking.Verify.prediction_ok
      in
      slacks := r.Masking.Verify.slack_pct :: !slacks;
      areas := r.Masking.Verify.area_overhead_pct :: !areas;
      powers := r.Masking.Verify.power_overhead_pct :: !powers;
      Printf.printf "%-18s %-9s %-6d %-5d %-12s %-7.1f %-7.1f %-7.1f %-9.1f %-6b\n%!"
        entry.Suite.ename
        (Printf.sprintf "%d/%d"
           (Array.length (Network.inputs net))
           (Array.length (Network.outputs net)))
        (Mapped.gate_count m.Masking.Synthesis.original)
        r.Masking.Verify.critical_outputs
        (Extfloat.to_string r.Masking.Verify.critical_minterms)
        r.Masking.Verify.slack_pct r.Masking.Verify.area_overhead_pct
        r.Masking.Verify.power_overhead_pct r.Masking.Verify.coverage_pct ok)
    Suite.all;
  Printf.printf "%s\n" line;
  let avg l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  Printf.printf "%-18s %-9s %-6s %-5s %-12s %-7.1f %-7.1f %-7.1f\n" "Average" ""
    "" "" "" (avg !slacks) (avg !areas) (avg !powers);
  Printf.printf
    "\nShape targets (paper): 100%% coverage on every circuit; average slack 57%%;\n\
     average area (power) overhead 18%% (16%%); ~20%% of outputs critical.\n";
  match sidecar with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Obs_json.to_channel oc
      (Obs_json.Obj [ ("table2", Obs_json.Obj (List.rev !all_stats)) ]);
    output_char oc '\n';
    close_out oc;
    Printf.printf "per-circuit stats written to %s\n" path
