(** Reader/writer for the combinational subset of BLIF (.model/.inputs/
    .outputs/.names/.end; single-output on-set or off-set covers).

    Parsing is split in two stages so static analysis can inspect
    ill-formed netlists that the strict elaborator would reject:
    [parse_source] builds a raw, unchecked representation carrying
    source locations, and [elaborate] turns it into an acyclic
    {!Network.t}, raising {!Parse_error} (with [file:line] positions)
    on cycles, undriven or multiply-driven signals, and malformed
    covers. *)

exception Parse_error of string

type loc = { file : string option; line : int }
(** A source position; [line] is 1-based. *)

val pp_loc : Format.formatter -> loc -> unit
val loc_to_string : loc -> string

type raw_node = {
  out : string;  (** the signal driven by this [.names] block *)
  ins : string list;  (** fanin signals, in declaration order *)
  rows : (string * char) list;
      (** cover rows: input plane (possibly [""] for constants) and
          output value ['0'] or ['1'] *)
  nloc : loc;  (** position of the [.names] line *)
}

type source = {
  src_file : string option;
  model : string option;
  src_inputs : (string * loc) list;  (** [.inputs], in declaration order *)
  src_outputs : (string * loc) list;  (** [.outputs], in declaration order *)
  nodes : raw_node list;  (** every [.names] block, in file order *)
}
(** A raw netlist: tokenized and shaped, but with no well-formedness
    guarantees — signals may be undriven, multiply driven, or cyclic.
    The static-analysis passes in [lib/analysis] consume this form. *)

val parse_source : ?file:string -> string -> source
(** Raises {!Parse_error} only on token-level problems (unknown
    directives, malformed cover rows, sequential constructs). *)

val read_source : string -> source
(** [parse_source] on a file's contents, recording its name in
    locations. *)

val elaborate : source -> Network.t
(** Strict elaboration; raises {!Parse_error} on any structural
    ill-formedness (undriven, multiply driven — including a [.names]
    block redefining a declared input — cyclic, mixed on/off rows). *)

val parse : string -> Network.t
(** [elaborate (parse_source text)]. *)

val parse_file : string -> Network.t
val to_string : ?model:string -> Network.t -> string
val write_file : ?model:string -> string -> Network.t -> unit
