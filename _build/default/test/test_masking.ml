(* Tests for the error-masking synthesis (the paper's core contribution):
   functional safety, SPCF coverage, prediction soundness, the slack
   requirement, option/ablation variants, and the cube-selection core. *)

let check = Alcotest.(check bool)

let full_check ?(options = Masking.Synthesis.default_options) name net =
  let m = Masking.Synthesis.synthesize ~options net in
  let r = Masking.Verify.check m in
  check (name ^ ": equivalent") true r.Masking.Verify.equivalent;
  check (name ^ ": coverage") true r.Masking.Verify.coverage_ok;
  check (name ^ ": prediction") true r.Masking.Verify.prediction_ok;
  check (name ^ ": coverage 100%") true (r.Masking.Verify.coverage_pct >= 100. -. 1e-6);
  (m, r)

let test_benchmarks () =
  List.iter
    (fun name ->
      let _, r = full_check name (Suite.load name) in
      check (name ^ ": positive slack") true (r.Masking.Verify.slack_pct > 0.))
    [ "i1"; "cmb"; "x2"; "cu"; "frg1"; "C432"; "C880"; "sparc_ifu_invctl" ]

let test_slack_requirement () =
  (* The paper's design point: at least 20% slack over the original. *)
  List.iter
    (fun name ->
      let _, r = full_check name (Suite.load name) in
      check (name ^ ": >=20% slack") true (r.Masking.Verify.slack_pct >= 20.))
    [ "i1"; "C432"; "C2670"; "sparc_ifu_dcl" ]

let test_comparator_paper () =
  let options =
    { Masking.Synthesis.default_options with delay_model = Sta.Paper_units }
  in
  let net = Comparator.network () in
  let m, r = full_check ~options "comparator" net in
  let ctx = m.Masking.Synthesis.ctx in
  let po = List.hd m.Masking.Synthesis.per_output in
  check "sigma matches paper" true
    (po.Masking.Synthesis.sigma = Bdd.of_cover ctx.Spcf.Ctx.man Comparator.paper_spcf);
  check "slack >= 20%" true (r.Masking.Verify.slack_pct >= 20.)

let test_structural_indicator () =
  let options =
    { Masking.Synthesis.default_options with indicator = Masking.Synthesis.Structural }
  in
  List.iter
    (fun name -> ignore (full_check ~options ("structural:" ^ name) (Suite.load name)))
    [ "cmb"; "x2"; "i1"; "C432" ]

let test_cube_orders () =
  (* The ablation orders must all remain sound (area may differ). *)
  List.iter
    (fun order ->
      let options = { Masking.Synthesis.default_options with cube_order = order } in
      ignore (full_check ~options "order" (Suite.load "x2")))
    [ Masking.Synthesis.Ascending; Masking.Synthesis.Descending; Masking.Synthesis.Unsorted ]

let test_no_optimize () =
  let options =
    { Masking.Synthesis.default_options with optimize = false; collapse = false }
  in
  ignore (full_check ~options "no-optimize" (Suite.load "cmb"))

let test_no_simplify_e () =
  let options =
    {
      Masking.Synthesis.default_options with
      indicator = Masking.Synthesis.Structural;
      simplify_e = false;
    }
  in
  ignore (full_check ~options "no-simplify-e" (Suite.load "x2"))

let test_node_based_masking () =
  (* Masking driven by the over-approximate SPCF is also sound (it just
     protects more patterns). *)
  let options =
    { Masking.Synthesis.default_options with algorithm = Masking.Synthesis.Node_based }
  in
  ignore (full_check ~options "node-based" (Suite.load "C432"))

let test_theta_sweep () =
  List.iter
    (fun theta ->
      let options = { Masking.Synthesis.default_options with theta } in
      let m, _ = full_check ~options (Printf.sprintf "theta %.2f" theta) (Suite.load "cmb") in
      check "target set" true
        (abs_float (m.Masking.Synthesis.target -. (theta *. m.Masking.Synthesis.delta))
        < 1e-9))
    [ 0.8; 0.9; 0.95 ]

let test_no_critical_outputs () =
  (* With theta = 1.0 nothing is critical; the combined circuit is just
     the original. *)
  let options = { Masking.Synthesis.default_options with theta = 1.0 } in
  let net = Suite.load "cmb" in
  let m = Masking.Synthesis.synthesize ~options net in
  check "no critical outputs" true (m.Masking.Synthesis.per_output = []);
  let r = Masking.Verify.check m in
  check "still equivalent" true r.Masking.Verify.equivalent

let test_log_errors_outputs () =
  let options = { Masking.Synthesis.default_options with log_errors = true } in
  let net = Suite.load "cmb" in
  let m = Masking.Synthesis.synthesize ~options net in
  List.iter
    (fun (po : Masking.Synthesis.per_output) ->
      check "err output present" true (po.Masking.Synthesis.err_combined <> None))
    m.Masking.Synthesis.per_output

let test_masked_functionality_random () =
  (* Monte-Carlo functional check of the combined circuit against the
     source network, independent of the BDD-based verifier. *)
  let net = Suite.load "C880" in
  let m = Masking.Synthesis.synthesize net in
  let cnet = Mapped.network m.Masking.Synthesis.combined in
  let n_in = Array.length (Network.inputs net) in
  let rng = Util.Rng.create 17 in
  for _ = 1 to 500 do
    let pattern = Array.init n_in (fun _ -> Util.Rng.bool rng) in
    let expected = Network.eval_outputs net pattern in
    let cv = Network.eval cnet pattern in
    Array.iteri
      (fun i (name, _) ->
        match Array.find_opt (fun (n, _) -> n = name) (Network.outputs cnet) with
        | Some (_, s) -> check "masked output value" true (cv.(s) = expected.(i))
        | None -> Alcotest.fail "missing output")
      (Network.outputs net)
  done

(* ---------- select_cubes core ---------- *)

let test_select_cubes_properties () =
  (* On the comparator's output node: selected covers must cover the
     Σ-induced care minterms, using only original cubes. *)
  let man = Bdd.create ~nvars:4 () in
  let sigma = Bdd.of_cover man Comparator.paper_spcf in
  let fanin_bdds = Array.init 4 (fun v -> Bdd.var man v) in
  let vars = [| "a0"; "a1"; "b0"; "b1" |] in
  (* on-set of y (a1a0 >= b1b0), as a flat SOP *)
  let on = Logic2.Sop.parse ~vars "a1*!b1 + a0*a1 + a0*!b1 + !b0*a1 + !b0*!b1" in
  let selected =
    Masking.Synthesis.select_cubes ~man ~order:Masking.Synthesis.Ascending ~sigma
      ~fanin_bdds on
  in
  (* Selected is a subset of the original cubes. *)
  List.iter
    (fun c ->
      check "cube from original" true
        (List.exists (Logic2.Cube.equal c) (Logic2.Cover.cubes on)))
    (Logic2.Cover.cubes selected);
  (* Selected covers every Σ pattern the original covers. *)
  let covers cover =
    Bdd.band man sigma (Bdd.cover_with man cover fanin_bdds)
  in
  check "covers Σ-care" true (covers selected = covers on);
  (* Every selected cube is essential w.r.t. the scan order: removing any
     one loses some Σ pattern that only later cubes would re-cover...
     weaker check: no selected cube is Σ-empty. *)
  List.iter
    (fun c ->
      check "selected cube intersects Σ" true
        (Bdd.band man sigma (Bdd.cube_with man c fanin_bdds) <> Bdd.bfalse))
    (Logic2.Cover.cubes selected)

let test_select_cubes_empty_sigma () =
  let man = Bdd.create ~nvars:2 () in
  let fanin_bdds = [| Bdd.var man 0; Bdd.var man 1 |] in
  let on = Logic2.Sop.parse ~vars:[| "a"; "b" |] "a*b + !a*!b" in
  let selected =
    Masking.Synthesis.select_cubes ~man ~order:Masking.Synthesis.Ascending
      ~sigma:Bdd.bfalse ~fanin_bdds on
  in
  check "nothing selected" true (Logic2.Cover.is_zero selected)

let () =
  Alcotest.run "masking"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "benchmarks" `Slow test_benchmarks;
          Alcotest.test_case "20% slack" `Slow test_slack_requirement;
          Alcotest.test_case "comparator (paper)" `Quick test_comparator_paper;
          Alcotest.test_case "random functional check" `Slow test_masked_functionality_random;
        ] );
      ( "options",
        [
          Alcotest.test_case "structural indicator" `Slow test_structural_indicator;
          Alcotest.test_case "cube orders" `Quick test_cube_orders;
          Alcotest.test_case "no optimize" `Quick test_no_optimize;
          Alcotest.test_case "no e simplification" `Quick test_no_simplify_e;
          Alcotest.test_case "node-based SPCF" `Quick test_node_based_masking;
          Alcotest.test_case "theta sweep" `Quick test_theta_sweep;
          Alcotest.test_case "no critical outputs" `Quick test_no_critical_outputs;
          Alcotest.test_case "error logging outputs" `Quick test_log_errors_outputs;
        ] );
      ( "select-cubes",
        [
          Alcotest.test_case "properties" `Quick test_select_cubes_properties;
          Alcotest.test_case "empty sigma" `Quick test_select_cubes_empty_sigma;
        ] );
    ]
