(* Grammar- and mutation-based specimen generator. Specs are flat so
   the mutator and the shrinker can do structural surgery; Network.t is
   only built at the oracle boundary. *)

type node = { fanins : int array; func : Logic2.Cover.t }
type spec = { n_pi : int; nodes : node array; outputs : int array }
type params = { max_pi : int; max_nodes : int; max_outputs : int }

let default_params = { max_pi = 8; max_nodes = 24; max_outputs = 4 }
let num_gates spec = Array.length spec.nodes

(* ---------- random covers ---------- *)

let random_cube rng k ~p_lit =
  let lits = ref [] in
  for v = 0 to k - 1 do
    if Rng.float rng < p_lit then lits := (v, Rng.bool rng) :: !lits
  done;
  match !lits with
  | [] -> Logic2.Cube.universe k
  | lits -> Logic2.Cube.make k lits

(* A random cover over [k] fanins, including the degenerate shapes the
   strict Generator refuses: constants, tautologies, covers that ignore
   some (or all) fanins. *)
let random_cover rng k =
  match Rng.int rng 14 with
  | 0 -> Logic2.Cover.zero k (* constant-0 node *)
  | 1 -> Logic2.Cover.one k (* constant-1 node *)
  | 2 ->
    (* single wide product (AND-like) *)
    Logic2.Cover.of_cubes k
      [ Logic2.Cube.make k (List.init k (fun v -> (v, Rng.bool rng))) ]
  | 3 ->
    (* OR of single literals *)
    Logic2.Cover.of_cubes k (List.init k (fun v -> Logic2.Cube.make k [ (v, Rng.bool rng) ]))
  | 4 when k >= 2 ->
    (* XOR of the first two fanins (ignores the rest) *)
    Logic2.Cover.of_cubes k
      [
        Logic2.Cube.make k [ (0, true); (1, false) ];
        Logic2.Cube.make k [ (0, false); (1, true) ];
      ]
  | _ ->
    let n_cubes = 1 + Rng.int rng 4 in
    Logic2.Cover.of_cubes k (List.init n_cubes (fun _ -> random_cube rng k ~p_lit:0.55))

(* Fanins are biased towards recent signals (deep chains) and may
   repeat (duplicate pins — a shape the suite circuits never contain). *)
let random_fanins rng ~avail ~k =
  Array.init k (fun _ ->
      if avail > 3 && Rng.float rng < 0.5 then avail - 1 - Rng.int rng (min 4 avail)
      else Rng.int rng avail)

let random_node rng ~avail =
  let k_wish =
    match Rng.int rng 12 with
    | 0 -> 1 (* buffer / inverter / 1-var constant *)
    | 1 | 2 | 3 | 4 -> 2
    | 5 | 6 | 7 -> 3
    | 8 | 9 -> 4
    | 10 -> 5 + Rng.int rng 2
    | _ -> 7 + Rng.int rng 2 (* wide fanin *)
  in
  let k = max 1 (min k_wish avail) in
  { fanins = random_fanins rng ~avail ~k; func = random_cover rng k }

let generate ?(params = default_params) rng =
  let n_pi = 1 + Rng.int rng params.max_pi in
  let n_nodes = Rng.int rng (params.max_nodes + 1) in
  let nodes = Array.init n_nodes (fun i -> random_node rng ~avail:(n_pi + i)) in
  let total = n_pi + n_nodes in
  let n_po = 1 + Rng.int rng params.max_outputs in
  let outputs =
    Array.init n_po (fun i ->
        if i = 0 && n_nodes > 0 then total - 1 (* the deepest node is always observed *)
        else Rng.int rng total)
  in
  { n_pi; nodes; outputs }

(* ---------- mutation ---------- *)

let mutate rng spec =
  let nodes = ref (Array.copy spec.nodes) in
  let outputs = ref (Array.copy spec.outputs) in
  let n_pi = spec.n_pi in
  let n_edits = 1 + Rng.int rng 3 in
  for _ = 1 to n_edits do
    let n_nodes = Array.length !nodes in
    let total = n_pi + n_nodes in
    match Rng.int rng 6 with
    | 0 when n_nodes > 0 ->
      (* refunction a node *)
      let i = Rng.int rng n_nodes in
      let n = (!nodes).(i) in
      let k = Array.length n.fanins in
      (!nodes).(i) <- { n with func = random_cover rng k }
    | 1 when n_nodes > 0 ->
      (* rewire one fanin (possibly creating a duplicate pin) *)
      let i = Rng.int rng n_nodes in
      let n = (!nodes).(i) in
      let fanins = Array.copy n.fanins in
      let j = Rng.int rng (Array.length fanins) in
      fanins.(j) <- Rng.int rng (n_pi + i);
      (!nodes).(i) <- { n with fanins }
    | 2 ->
      (* append a node and observe it *)
      nodes := Array.append !nodes [| random_node rng ~avail:total |];
      outputs := Array.append !outputs [| total |]
    | 3 ->
      (* retarget an output *)
      let o = !outputs in
      o.(Rng.int rng (Array.length o)) <- Rng.int rng total
    | 4 when Array.length !outputs > 1 ->
      (* drop an output *)
      let o = !outputs in
      let i = Rng.int rng (Array.length o) in
      outputs :=
        Array.init
          (Array.length o - 1)
          (fun j -> if j < i then o.(j) else o.(j + 1))
    | _ ->
      (* duplicate an output (same signal observed twice) *)
      outputs := Array.append !outputs [| Rng.pick rng !outputs |]
  done;
  { n_pi; nodes = !nodes; outputs = !outputs }

(* ---------- lowering ---------- *)

let network spec =
  let net = Network.create () in
  let total = spec.n_pi + Array.length spec.nodes in
  let signals = Array.make (max total 1) (-1) in
  for i = 0 to spec.n_pi - 1 do
    signals.(i) <- Network.add_input net (Printf.sprintf "pi%d" i)
  done;
  Array.iteri
    (fun i n ->
      let fanins = Array.map (fun f -> signals.(f)) n.fanins in
      signals.(spec.n_pi + i) <-
        Network.add_node net (Printf.sprintf "g%d" i) ~fanins ~func:n.func)
    spec.nodes;
  Array.iteri
    (fun i o -> Network.mark_output net ~name:(Printf.sprintf "po%d" i) signals.(o))
    spec.outputs;
  net

let pp fmt spec =
  Format.fprintf fmt "@[<v>spec: %d PI, %d nodes, %d outputs@," spec.n_pi
    (Array.length spec.nodes) (Array.length spec.outputs);
  Array.iteri
    (fun i n ->
      Format.fprintf fmt "  g%d(%s) cubes=%d@," i
        (String.concat ","
           (List.map string_of_int (Array.to_list n.fanins)))
        (Logic2.Cover.num_cubes n.func))
    spec.nodes;
  Format.fprintf fmt "  outputs: %s@]"
    (String.concat "," (List.map string_of_int (Array.to_list spec.outputs)))
