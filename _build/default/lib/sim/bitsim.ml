(* Bit-parallel zero-delay logic simulation: 63 patterns per native int
   word, evaluated over a network's SOP node functions. *)

type t = {
  net : Network.t;
  order : Network.signal array;
  inputs : Network.signal array;
}

let prepare net =
  { net; order = Network.topo_order net; inputs = Network.inputs net }

let of_mapped circuit = prepare (Mapped.network circuit)

(* Evaluate all signals for a word of patterns; [pi_words.(i)] carries the
   i-th primary input's values, one pattern per bit. *)
let eval_word t pi_words =
  if Array.length pi_words <> Array.length t.inputs then
    invalid_arg "Bitsim.eval_word: wrong number of input words";
  let n = Network.num_signals t.net in
  let value = Array.make n 0 in
  Array.iteri (fun i s -> value.(s) <- pi_words.(i)) t.inputs;
  Array.iter
    (fun s ->
      match Network.node_of t.net s with
      | None -> ()
      | Some nd ->
        let local = Array.map (fun f -> value.(f)) nd.Network.fanins in
        let eval_cube c =
          List.fold_left
            (fun acc (v, ph) -> acc land (if ph then local.(v) else lnot local.(v)))
            (-1) (Logic2.Cube.literals c)
        in
        value.(s) <-
          List.fold_left
            (fun acc c -> acc lor eval_cube c)
            0
            (Logic2.Cover.cubes nd.Network.func))
    t.order;
  value

let random_pi_words t rng =
  Array.init (Array.length t.inputs) (fun _ ->
      (* 62 random bits, keeping the sign bit clear. *)
      let a = Util.Rng.int rng (1 lsl 31) and b = Util.Rng.int rng (1 lsl 31) in
      (a lsl 31) lor b)

(* Per-signal toggle counts between consecutive randomly-drawn pattern
   words, for switching-activity estimation. [rounds] words are applied;
   each contributes 62 pattern pairs plus one carry-over pair. *)
let toggle_counts t rng ~rounds =
  let n = Network.num_signals t.net in
  let toggles = Array.make n 0 in
  let popcount w =
    let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
    go w 0
  in
  let prev = ref None in
  for _ = 1 to rounds do
    let words = random_pi_words t rng in
    let value = eval_word t words in
    (match !prev with
    | None -> ()
    | Some last ->
      (* Pairs within the word: bit b vs bit b+1 (61 pairs over 62 bits),
         plus the seam between the previous word's top bit and this one's
         bottom bit. *)
      for s = 0 to n - 1 do
        let v = value.(s) in
        let within = (v lxor (v lsr 1)) land ((1 lsl 61) - 1) in
        let seam = (v lxor (last.(s) lsr 61)) land 1 in
        toggles.(s) <- toggles.(s) + popcount within + seam
      done);
    prev := Some value
  done;
  let pairs = max 1 ((rounds - 1) * 62) in
  (toggles, pairs)

(* Activity = toggle probability per signal. *)
let activities t rng ~rounds =
  let toggles, pairs = toggle_counts t rng ~rounds in
  Array.map (fun c -> float_of_int c /. float_of_int pairs) toggles
