(* Regenerates the paper's Table 1: accuracy vs. runtime of the SPCF
   computation — node-based over-approximation [22], the exact path-based
   extension of [22], and the proposed short-path-based algorithm — on
   the five Table-1 circuits, at a target arrival time of 0.9 Δ.

   With `--stats-json FILE` (or EMASK_OBS=1 plus the flag), a JSON
   sidecar of per-circuit / per-algorithm internal statistics (span
   tree, BDD and recursion counters, histograms) is written alongside
   the table — diffable against BENCH_*.json trajectories. *)

let line = String.make 118 '-'

type row = {
  name : string;
  io : string;
  area : float;
  node_count : string;
  node_rt : float;
  path_count : string;
  path_rt : float;
  short_count : string;
  short_rt : float;
  exactness : string;
}

(* When collecting stats, each algorithm run is isolated in a fresh
   registry so the sidecar attributes every counter to one run. *)
let snapshot_after ~collect f =
  if collect then begin
    Obs.reset ();
    let r = f () in
    (r, Some (Obs_json.snapshot ()))
  end
  else (f (), None)

let run_row ~collect ~jobs entry =
  let name = entry.Suite.ename in
  let net = Suite.network entry in
  (* Pre-flight: reject a malformed circuit with a one-line summary
     instead of failing deep inside BDD construction. *)
  Analysis.Lint.gate ~what:name (Analysis.Lint.preflight net);
  (* Fresh context per algorithm: shared BDD managers would warm the
     caches of whichever algorithm runs later. *)
  let run algo =
    snapshot_after ~collect (fun () ->
        let mc = Mapper.map net in
        let ctx = Spcf.Ctx.create mc in
        let target = Spcf.Ctx.target_of_theta ctx 0.9 in
        let r =
          match algo with
          | `Node -> Spcf.Node_based.compute ctx ~target
          | `Path -> Spcf.Parallel.path_based ~jobs ctx ~target
          | `Short -> Spcf.Parallel.short_path ~jobs ctx ~target
        in
        (ctx, r))
  in
  let (cn, rn), stats_n = run `Node in
  let (cp, rp), stats_p = run `Path in
  let (cs, rs), stats_s = run `Short in
  if collect then Obs.reset ();
  let mc = Mapper.map net in
  let count c r = Extfloat.to_string (Spcf.Ctx.count c r) in
  (* Exactness cross-checks (computed on one shared manager). *)
  let exactness =
    let mc' = Mapper.map net in
    let ctx = Spcf.Ctx.create mc' in
    let target = Spcf.Ctx.target_of_theta ctx 0.9 in
    let a = Spcf.Node_based.compute ctx ~target in
    let b = Spcf.Exact.path_based ctx ~target in
    let c = Spcf.Exact.short_path ctx ~target in
    let superset =
      Bdd.bimply ctx.Spcf.Ctx.man c.Spcf.Ctx.union a.Spcf.Ctx.union = Bdd.btrue
    in
    let equal = b.Spcf.Ctx.union = c.Spcf.Ctx.union in
    Printf.sprintf "node⊇exact:%b path=short:%b" superset equal
  in
  let io =
    Printf.sprintf "%d/%d"
      (Array.length (Network.inputs net))
      (Array.length (Network.outputs net))
  in
  let stats =
    List.filter_map
      (fun (algo, s) -> Option.map (fun j -> (algo, j)) s)
      [ ("node-based", stats_n); ("path-based", stats_p); ("short-path", stats_s) ]
  in
  ( {
      name;
      io;
      area = Mapped.area mc;
      node_count = count cn rn;
      node_rt = rn.Spcf.Ctx.runtime;
      path_count = count cp rp;
      path_rt = rp.Spcf.Ctx.runtime;
      short_count = count cs rs;
      short_rt = rs.Spcf.Ctx.runtime;
      exactness;
    },
    stats )

let stats_json_path () =
  let rec scan i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--stats-json" && i + 1 < Array.length Sys.argv then
      Some Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

(* `--jobs N` (default: EMASK_JOBS, else 1) fans the short-path and
   path-based SPCF computations out over N domains; counts are
   unaffected (see Spcf.Parallel), only runtimes change. *)
let jobs_arg () =
  let rec scan i =
    if i >= Array.length Sys.argv then Spcf.Parallel.default_jobs ()
    else if Sys.argv.(i) = "--jobs" && i + 1 < Array.length Sys.argv then
      match int_of_string_opt Sys.argv.(i + 1) with
      | Some n when n >= 1 -> n
      | _ -> Spcf.Parallel.default_jobs ()
    else scan (i + 1)
  in
  scan 1

let () =
  let sidecar = stats_json_path () in
  let jobs = jobs_arg () in
  if sidecar <> None then Obs.set_enabled true;
  let collect = Obs.on () in
  Printf.printf "Table 1: accuracy vs. runtime of SPCF computation (target = 0.9 x critical path delay)\n";
  Printf.printf "%s\n" line;
  Printf.printf "%-18s %-9s %-7s | %-12s %-8s | %-12s %-8s | %-12s %-8s | %s\n"
    "Circuit" "I/O" "Area" "node-based" "rt (s)" "path-based" "rt (s)"
    "short-path" "rt (s)" "checks";
  Printf.printf "%-18s %-9s %-7s | %-12s %-8s | %-12s %-8s | %-12s %-8s |\n" "" ""
    "" "(overapprox)" "" "(exact)" "" "(proposed)" "";
  Printf.printf "%s\n" line;
  let all_stats = ref [] in
  List.iter
    (fun entry ->
      let r, stats = run_row ~collect ~jobs entry in
      if stats <> [] then
        all_stats := (r.name, Obs_json.Obj stats) :: !all_stats;
      Printf.printf "%-18s %-9s %-7.0f | %-12s %-8.3f | %-12s %-8.3f | %-12s %-8.3f | %s\n%!"
        r.name r.io r.area r.node_count r.node_rt r.path_count r.path_rt
        r.short_count r.short_rt r.exactness)
    Suite.table1_entries;
  Printf.printf "%s\n" line;
  Printf.printf
    "Shape targets (paper): node-based counts are a superset of the exact sets;\n\
     path-based and short-path agree exactly; the proposed short-path algorithm\n\
     runs in node-based-class time while the path-based extension is slower.\n";
  match sidecar with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Obs_json.to_channel oc
      (Obs_json.Obj [ ("table1", Obs_json.Obj (List.rev !all_stats)) ]);
    output_char oc '\n';
    close_out oc;
    Printf.printf "per-algorithm stats written to %s\n" path
