(* Reduced ordered binary decision diagrams with a hash-consed unique
   table and an ite computed-table, per manager. Node handles are ints;
   0 and 1 are the terminals. Variables are 0 .. nvars-1 in fixed order.

   Storage layer (see DESIGN.md §8): both hot-path tables are flat int
   arrays rather than polymorphic Hashtbls, so an [ite] call performs no
   allocation and no polymorphic hashing.

   - The unique table is open-addressing with linear probing over a
     power-of-two slot array; a slot holds a node id (0 = empty — the
     terminals are never interned, so 0 is free as a sentinel). Nodes
     are never deleted, hence no tombstones and probe chains stay
     contiguous. The table doubles at 3/4 load and rehashes from the
     node arrays themselves.

   - The computed table for [ite] is a lossy direct-mapped cache of
     packed keys: key word 1 is [f << 31 | g], key word 2 is
     [generation << 31 | h]. Memory is bounded (no rehash storms — a
     miss simply overwrites the resident entry), and [clear_caches]
     invalidates every entry in O(1) by bumping the generation tag.
     Node ids are capped below 2^30 so the packing cannot overflow. *)

type t = int

type man = {
  nvars : int;
  mutable var : int array; (* variable label per node; nvars for terminals *)
  mutable low : int array;
  mutable high : int array;
  mutable n_nodes : int;
  (* unique table: open addressing, capacity = umask + 1 (power of two) *)
  mutable utable : int array;
  mutable umask : int;
  (* ite computed table: direct-mapped, capacity = cmask + 1 *)
  mutable ck1 : int array;
  mutable ck2 : int array;
  mutable cres : int array;
  mutable cmask : int;
  mutable cgen : int; (* generation tag, < 2^30 *)
  cache_fixed : bool; (* explicit ~cache_bits: never resize (tests) *)
  mutable budget : Budget.t;
      (* resource governance; Budget.unlimited (the default) keeps the
         hot paths to a single physical-equality test *)
}

let bfalse : t = 0
let btrue : t = 1

(* Hard ceiling on node ids so packed cache keys fit in one word. *)
let max_nodes = 1 lsl 30

(* Instrumentation probes (free when Obs is disabled). *)
let c_ite_calls = Obs.counter "bdd.ite.calls"
let c_ite_hits = Obs.counter "bdd.ite.cache_hits"
let c_ite_misses = Obs.counter "bdd.ite.cache_misses"
let c_unique_hits = Obs.counter "bdd.unique.hits"
let c_unique_inserts = Obs.counter "bdd.unique.inserts"
let c_unique_rehash = Obs.counter "bdd.unique.rehash_events"
let c_grow = Obs.counter "bdd.grow_events"
let c_nodes_max = Obs.counter "bdd.nodes.max"

(* Integer mix of a (var, low, high) triple: three odd multipliers from
   the murmur3/splitmix64 finalizers, then a 64-bit avalanche. The
   result may be negative; callers mask with [land] (the mask is
   positive, so the slot index always lands in range). *)
let[@inline] mix3 a b c =
  let h = (a * 0x9E3779B1) + (b * 0x85EBCA77) + (c * 0xC2B2AE3D) in
  let h = h lxor (h lsr 29) in
  let h = h * 0x27D4EB2F165667C5 in
  h lxor (h lsr 32)

let cache_make bits =
  let cap = 1 lsl bits in
  (Array.make cap (-1), Array.make cap 0, Array.make cap 0, cap - 1)

let default_cache_bits = 14
let max_cache_bits = 20

let create ?cache_bits ~nvars () =
  if nvars < 0 then invalid_arg "Bdd.create: negative nvars";
  let cbits, cache_fixed =
    match cache_bits with
    | None -> (default_cache_bits, false)
    | Some b ->
      if b < 1 || b > max_cache_bits then invalid_arg "Bdd.create: cache_bits";
      (b, true)
  in
  let cap = 1024 in
  let var = Array.make cap 0 and low = Array.make cap 0 and high = Array.make cap 0 in
  var.(0) <- nvars;
  var.(1) <- nvars;
  let ck1, ck2, cres, cmask = cache_make cbits in
  {
    nvars;
    var;
    low;
    high;
    n_nodes = 2;
    utable = Array.make 4096 0;
    umask = 4095;
    ck1;
    ck2;
    cres;
    cmask;
    cgen = 0;
    cache_fixed;
    budget = Budget.unlimited;
  }

let set_budget man b = man.budget <- b
let budget man = man.budget

let nvars man = man.nvars
let num_nodes man = man.n_nodes
let unique_capacity man = man.umask + 1
let cache_capacity man = man.cmask + 1

(* Invalidate every computed-table entry in O(1): entries carry the
   generation in their second key word, so bumping the tag orphans them.
   The generation wraps at 2^30 to keep the packing in range — after
   2^30 clears an ancient entry could in principle alias, which is
   indistinguishable from an ordinary cache collision given the entry
   would also need matching keys. *)
let clear_caches man = man.cgen <- (man.cgen + 1) land (max_nodes - 1)

let var_of man n = man.var.(n)
let low_of man n = man.low.(n)
let high_of man n = man.high.(n)
let is_terminal n = n < 2

let grow_nodes man =
  Obs.incr c_grow;
  Obs.instant "bdd.grow";
  let cap = Array.length man.var in
  if cap >= max_nodes then failwith "Bdd: node limit (2^30) exceeded";
  let cap' = cap * 2 in
  let extend a =
    let a' = Array.make cap' 0 in
    Array.blit a 0 a' 0 cap;
    a'
  in
  man.var <- extend man.var;
  man.low <- extend man.low;
  man.high <- extend man.high

(* Double the unique table and reinsert every interned node. Insertion
   scans for the first empty slot — no deletions ever happen, so there
   are no tombstones and every probe chain is a contiguous run. *)
let unique_rehash man =
  Obs.incr c_unique_rehash;
  Obs.instant "bdd.unique.rehash";
  let mask' = ((man.umask + 1) * 2) - 1 in
  let t' = Array.make (mask' + 1) 0 in
  for n = 2 to man.n_nodes - 1 do
    let i = ref (mix3 man.var.(n) man.low.(n) man.high.(n) land mask') in
    while Array.unsafe_get t' !i <> 0 do
      i := (!i + 1) land mask'
    done;
    Array.unsafe_set t' !i n
  done;
  man.utable <- t';
  man.umask <- mask';
  (* Let the lossy ite cache track the unique table up to a ceiling:
     dropping the resident entries is sound (it is a cache) and growth
     events are logarithmically rare, so there are no rehash storms. *)
  if (not man.cache_fixed) && man.cmask + 1 < 1 lsl max_cache_bits && man.cmask < mask'
  then begin
    let bits =
      let rec bits_of n acc = if n <= 1 then acc else bits_of (n lsr 1) (acc + 1) in
      min max_cache_bits (bits_of (mask' + 1) 0)
    in
    let ck1, ck2, cres, cmask = cache_make bits in
    man.ck1 <- ck1;
    man.ck2 <- ck2;
    man.cres <- cres;
    man.cmask <- cmask
  end

(* Hash-consing find-or-insert. One probe sequence serves both the
   lookup and the insertion point: the first empty slot terminates an
   unsuccessful probe and is exactly where the new node id goes. *)
let mk man v lo hi =
  if lo = hi then lo
  else begin
    let table = man.utable and mask = man.umask in
    let var = man.var and low = man.low and high = man.high in
    let i = ref (mix3 v lo hi land mask) in
    let found = ref (-1) in
    let scanning = ref true in
    while !scanning do
      let n = Array.unsafe_get table !i in
      if n = 0 then scanning := false
      else if
        Array.unsafe_get var n = v
        && Array.unsafe_get low n = lo
        && Array.unsafe_get high n = hi
      then begin
        found := n;
        scanning := false
      end
      else i := (!i + 1) land mask
    done;
    if !found >= 0 then begin
      Obs.incr c_unique_hits;
      !found
    end
    else begin
      Obs.incr c_unique_inserts;
      if man.n_nodes >= Array.length man.var then grow_nodes man;
      let n = man.n_nodes in
      man.var.(n) <- v;
      man.low.(n) <- lo;
      man.high.(n) <- hi;
      man.n_nodes <- n + 1;
      if man.budget != Budget.unlimited then Budget.check_nodes man.budget (n + 1);
      Obs.record_max c_nodes_max (n + 1);
      Array.unsafe_set table !i n;
      if (man.n_nodes - 2) * 4 > (mask + 1) * 3 then unique_rehash man;
      n
    end
  end

let var man v =
  if v < 0 || v >= man.nvars then invalid_arg "Bdd.var: out of range";
  mk man v bfalse btrue

let nvar man v =
  if v < 0 || v >= man.nvars then invalid_arg "Bdd.nvar: out of range";
  mk man v btrue bfalse

(* Cofactors of [n] w.r.t. variable [v], assuming v <= var(n). *)
let cofactors man v n =
  if man.var.(n) = v then (man.low.(n), man.high.(n)) else (n, n)

let rec ite man f g h =
  if f = btrue then g
  else if f = bfalse then h
  else if g = h then g
  else if g = btrue && h = bfalse then f
  else begin
    Obs.incr c_ite_calls;
    if man.budget != Budget.unlimited then Budget.tick man.budget;
    let k1 = (f lsl 31) lor g and k2 = (man.cgen lsl 31) lor h in
    let slot = mix3 f g h land man.cmask in
    if Array.unsafe_get man.ck1 slot = k1 && Array.unsafe_get man.ck2 slot = k2 then begin
      Obs.incr c_ite_hits;
      Array.unsafe_get man.cres slot
    end
    else begin
      Obs.incr c_ite_misses;
      let v = min man.var.(f) (min man.var.(g) man.var.(h)) in
      let f0, f1 = cofactors man v f in
      let g0, g1 = cofactors man v g in
      let h0, h1 = cofactors man v h in
      let r1 = ite man f1 g1 h1 in
      let r0 = ite man f0 g0 h0 in
      let r = mk man v r0 r1 in
      (* The cache may have been resized during the recursion: recompute
         the slot against the current mask before storing. *)
      let slot = mix3 f g h land man.cmask in
      man.ck1.(slot) <- k1;
      man.ck2.(slot) <- k2;
      man.cres.(slot) <- r;
      r
    end
  end

let bnot man f = ite man f bfalse btrue
let band man f g = ite man f g bfalse
let bor man f g = ite man f btrue g
let bxor man f g = ite man f (bnot man g) g
let bnand man f g = bnot man (band man f g)
let bnor man f g = bnot man (bor man f g)
let bxnor man f g = bnot man (bxor man f g)
let bimply man f g = ite man f g btrue

let band_list man = List.fold_left (band man) btrue
let bor_list man = List.fold_left (bor man) bfalse

let rec eval man f assignment =
  if f = btrue then true
  else if f = bfalse then false
  else if assignment.(man.var.(f)) then eval man man.high.(f) assignment
  else eval man man.low.(f) assignment

let size man f =
  let seen = Hashtbl.create 64 in
  let rec walk n =
    if not (is_terminal n || Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      walk man.low.(n);
      walk man.high.(n)
    end
  in
  walk f;
  Hashtbl.length seen + 2

let support man f =
  let seen = Hashtbl.create 64 in
  let vars = Array.make man.nvars false in
  let rec walk n =
    if not (is_terminal n || Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      vars.(man.var.(n)) <- true;
      walk man.low.(n);
      walk man.high.(n)
    end
  in
  walk f;
  vars

(* Minterm count over all nvars variables, in extended-range arithmetic.
   count(n) counts assignments of variables var(n) .. nvars-1; the root
   result is then scaled by 2^var(root). *)
let satcount man f =
  let memo = Hashtbl.create 64 in
  let rec count n =
    if n = bfalse then Extfloat.zero
    else if n = btrue then Extfloat.one
    else
      match Hashtbl.find_opt memo n with
      | Some c -> c
      | None ->
        let v = man.var.(n) in
        let branch child =
          Extfloat.mul_pow2 (count child) (man.var.(child) - v - 1)
        in
        let c = Extfloat.add (branch man.low.(n)) (branch man.high.(n)) in
        Hashtbl.add memo n c;
        c
  in
  if f = bfalse then Extfloat.zero
  else Extfloat.mul_pow2 (count f) man.var.(f)

(* One satisfying (partial) assignment as (var, value) literals. *)
let any_sat man f =
  if f = bfalse then None
  else begin
    let rec descend n acc =
      if n = btrue then acc
      else if man.high.(n) <> bfalse then
        descend man.high.(n) ((man.var.(n), true) :: acc)
      else descend man.low.(n) ((man.var.(n), false) :: acc)
    in
    Some (List.rev (descend f []))
  end

(* Uniformly sample a full minterm of f, weighting branch choice by
   satcount. [rand_float ()] must be uniform in [0,1). *)
let sample_sat man f ~rand_float =
  if f = bfalse then None
  else begin
    let assignment = Array.make man.nvars false in
    let flip v = assignment.(v) <- rand_float () < 0.5 in
    let rec descend n next_var =
      if n = btrue then
        for v = next_var to man.nvars - 1 do
          flip v
        done
      else begin
        let v = man.var.(n) in
        for u = next_var to v - 1 do
          flip u
        done;
        let c_lo = satcount man man.low.(n) and c_hi = satcount man man.high.(n) in
        let total = Extfloat.add c_lo c_hi in
        (* P(high) = c_hi / total, computed in extended range. *)
        let p_hi =
          if Extfloat.is_zero c_hi then 0.
          else Extfloat.to_float (Extfloat.div c_hi total)
        in
        let take_hi = rand_float () < p_hi in
        assignment.(v) <- take_hi;
        descend (if take_hi then man.high.(n) else man.low.(n)) (v + 1)
      end
    in
    (* satcount of subnodes counts vars below var(n); using the manager
       satcount keeps results consistent since the 2^k factors cancel in
       the ratio only if both children start at the same depth — they do,
       because both counts are scaled to full nvars here. *)
    descend f 0;
    Some assignment
  end

(* Existential quantification over the variables marked true in [vars]. *)
let exists man vars f =
  let memo = Hashtbl.create 64 in
  let rec ex n =
    if is_terminal n then n
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
        let v = man.var.(n) in
        let lo = ex man.low.(n) and hi = ex man.high.(n) in
        let r = if vars.(v) then bor man lo hi else mk man v lo hi in
        Hashtbl.add memo n r;
        r
  in
  ex f

let forall man vars f = bnot man (exists man vars (bnot man f))

(* Restrict variable v to a constant. *)
let restrict man f v value =
  let memo = Hashtbl.create 64 in
  let rec go n =
    if is_terminal n || man.var.(n) > v then n
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
        let r =
          if man.var.(n) = v then if value then man.high.(n) else man.low.(n)
          else mk man man.var.(n) (go man.low.(n)) (go man.high.(n))
        in
        Hashtbl.add memo n r;
        r
  in
  go f

(* Simultaneous substitution: variable i is replaced by subs.(i). *)
let compose_vec man f subs =
  if Array.length subs <> man.nvars then
    invalid_arg "Bdd.compose_vec: substitution arity mismatch";
  let memo = Hashtbl.create 64 in
  let rec go n =
    if is_terminal n then n
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
        let r = ite man subs.(man.var.(n)) (go man.high.(n)) (go man.low.(n)) in
        Hashtbl.add memo n r;
        r
  in
  go f

(* A cube over BDD inputs given as function handles: AND of literals with
   each variable v standing for inputs.(v). *)
let cube_with man cube inputs =
  List.fold_left
    (fun acc (v, ph) ->
      let lit = if ph then inputs.(v) else bnot man inputs.(v) in
      band man acc lit)
    btrue (Logic2.Cube.literals cube)

let cover_with man cover inputs =
  List.fold_left
    (fun acc c -> bor man acc (cube_with man c inputs))
    bfalse
    (Logic2.Cover.cubes cover)

(* Direct encodings where cover variable i is BDD variable i. *)
let of_cube man cube =
  cube_with man cube (Array.init man.nvars (fun v -> var man v))

let of_cover man cover =
  cover_with man cover (Array.init man.nvars (fun v -> var man v))
