(* The [emask serve] daemon: a persistent analysis service over the
   length-prefixed JSON protocol of {!Serve_protocol}.

   Shape: the calling thread runs the accept loop; [jobs] worker
   domains drain a bounded queue of accepted connections. Admission
   control happens at accept time — a full queue is answered with a
   structured rejection immediately, never by silently parking the
   client; accepted sockets carry an SO_RCVTIMEO deadline so a client
   that never finishes its request cannot wedge the accept thread.
   Each job owns a per-request {!Budget.flag}; watcher threads turn
   client disconnect into a tripped flag — [watch_queue] sweeps parked
   jobs, [watch_disconnect] covers the running one — which the budget
   machinery surfaces as [Budget_exceeded Cancelled] at the next
   poll — cancellation is cooperative and cannot corrupt a shared BDD
   manager mid-operation.

   Scrapes are served in the accept loop (never queued): a [metrics]
   job frame, or a plain [GET /metrics] HTTP request — the first bytes
   of a connection are peeked to tell the two apart, so one socket
   serves both the frame protocol and curl. *)

type bind = Unix_sock of string | Tcp of string * int

type config = {
  bind : bind;
  jobs : int;
  queue_cap : int;
  cache_mb : int;
  default_budget : Budget.spec;
      (** merged under every request's own budget (request wins) *)
  ledger : string option;  (** per-request JSONL records, appended here *)
  read_timeout : float;
      (** SO_RCVTIMEO on accepted sockets: a client that connects and
          never finishes its request head/frame costs at most this
          many seconds of the accept thread, not the daemon *)
  verbose : bool;
}

let default_config =
  {
    bind = Tcp ("127.0.0.1", 9309);
    jobs = 2;
    queue_cap = 16;
    cache_mb = 256;
    default_budget = Budget.no_limits;
    ledger = None;
    read_timeout = 10.;
    verbose = false;
  }

type job = {
  fd : Unix.file_descr;
  req : Serve_protocol.request;
  flag : Budget.flag;
}

type t = {
  config : config;
  cache : Serve_cache.t;
  queue : job Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  stop : bool Atomic.t;
}

let logf t fmt =
  if t.config.verbose then Printf.eprintf ("emask serve: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* --- metrics ------------------------------------------------------------- *)

let metrics_body t =
  let entries, used, cap = Serve_cache.stats t.cache in
  Obs_prom.render ()
  ^ Obs_prom.exposition
      (Serve_metrics.snapshot ()
      @ [
          ("serve.cache.entries", entries);
          ("serve.cache.bytes", used);
          ("serve.cache.cap_bytes", cap);
          ("serve.queue.cap", t.config.queue_cap);
          ("serve.workers", t.config.jobs);
        ])

(* --- job execution ------------------------------------------------------- *)

let poll_interval = 0.05

(* [ping] holds a worker while cooperatively polling its cancel flag —
   the deterministic fixture for queue-saturation and disconnect
   tests. *)
let run_ping flag delay =
  let deadline = Unix.gettimeofday () +. delay in
  let rec wait () =
    if Budget.tripped flag then
      raise (Budget.Budget_exceeded Budget.Cancelled);
    let left = deadline -. Unix.gettimeofday () in
    if left > 0. then begin
      Unix.sleepf (Float.min poll_interval left);
      wait ()
    end
  in
  wait ();
  (0, "pong\n")

let run_job t (j : job) note =
  let lookup = Serve_cache.lookup t.cache in
  let budget rspec =
    Budget.cancelled_by j.flag (Budget.merge rspec t.config.default_budget)
  in
  let buf = Buffer.create 1024 in
  match j.req with
  | Serve_protocol.Lint (c, r) ->
    let code = Serve_jobs.run_lint ~note buf c r in
    (code, Buffer.contents buf)
  | Serve_protocol.Spcf (c, r, b) ->
    let code = Serve_jobs.run_spcf ~note buf lookup c r (budget b) in
    (code, Buffer.contents buf)
  | Serve_protocol.Paths (c, r, b) ->
    let code = Serve_jobs.run_paths ~note buf lookup c r (budget b) in
    (code, Buffer.contents buf)
  | Serve_protocol.Protect (c, r, b) ->
    let code = Serve_jobs.run_protect ~note buf lookup c r (budget b) in
    (code, Buffer.contents buf)
  | Serve_protocol.Eco (c, r, b) ->
    (* Whole-job entry lock: the cached baseline's manager is shared,
       and the recompute mutates it. The entry is pinned for the whole
       job — the shadowed [lookup] resolves this circuit to the locked
       entry, never back through the table (see Serve_cache). *)
    Serve_cache.with_eco_lock t.cache c (fun ~lookup ~snapshot_for ->
        let code = Serve_jobs.run_eco ~note ~snapshot_for buf lookup c r (budget b) in
        (code, Buffer.contents buf))
  | Serve_protocol.Ping delay -> run_ping j.flag delay
  | Serve_protocol.Metrics -> (0, metrics_body t)
  | Serve_protocol.Shutdown -> (0, "shutting down\n")

let job_name = function
  | Serve_protocol.Lint _ -> "lint"
  | Serve_protocol.Spcf _ -> "spcf"
  | Serve_protocol.Paths _ -> "paths"
  | Serve_protocol.Protect _ -> "protect"
  | Serve_protocol.Eco _ -> "eco"
  | Serve_protocol.Ping _ -> "ping"
  | Serve_protocol.Metrics -> "metrics"
  | Serve_protocol.Shutdown -> "shutdown"

(* Run one job to a response, classifying failures exactly as the CLI
   does (same codes and messages), plus the server-only outcomes. *)
let response_of t (j : job) note =
  match run_job t j note with
  | code, output -> Serve_protocol.Ok_output (code, output)
  | exception Budget.Budget_exceeded Budget.Cancelled ->
    Serve_metrics.incr Serve_metrics.cancelled;
    Serve_protocol.Error_resp ("CANCELLED", "client disconnected; job cancelled")
  | exception (Budget.Budget_exceeded _ as e) ->
    Serve_metrics.incr Serve_metrics.budget_exhausted;
    let code, msg = Option.get (Serve_jobs.error_code e) in
    Serve_protocol.Error_resp (code, msg)
  | exception Analysis.Lint.Gate_failed msg ->
    Serve_metrics.incr Serve_metrics.errors;
    Serve_protocol.Error_resp ("GATE001", msg)
  | exception e -> (
    Serve_metrics.incr Serve_metrics.errors;
    match Serve_jobs.error_code e with
    | Some (code, msg) -> Serve_protocol.Error_resp (code, msg)
    | None -> Serve_protocol.Error_resp ("SERVE001", Printexc.to_string e))

(* --- disconnect watcher -------------------------------------------------- *)

(* A thread that trips the job's cancel flag when the peer goes away.
   One request / one response means the client writes nothing after
   the request frame, so a readable descriptor that peeks zero bytes
   is EOF — a disconnect. (A misbehaving client that pipelines extra
   bytes merely loses its disconnect cancellation.) *)
let watch_disconnect fd flag ~done_ =
  Thread.create
    (fun () ->
      try
        while (not (Atomic.get done_)) && not (Budget.tripped flag) do
          let readable, _, _ = Unix.select [ fd ] [] [] poll_interval in
          if readable <> [] then
            if Unix.recv fd (Bytes.create 1) 0 1 [ Unix.MSG_PEEK ] = 0 then
              Budget.trip flag
            else Thread.delay poll_interval
        done
      with Unix.Unix_error _ -> ())
    ()

(* The queued-job counterpart of [watch_disconnect]: one thread (owned
   by the accept domain) that polls the fds of jobs still parked in
   the queue, so a client that hangs up while waiting trips its cancel
   flag before a worker wastes time running the job — exactly the
   overload conditions the queue exists for. Racing a worker that
   dequeues the job mid-sweep is harmless: MSG_PEEK consumes nothing,
   and tripping the flag of a job that already ran is a no-op; a peek
   that errors (the fd closed under us) conservatively trips too. *)
let watch_queue t =
  Thread.create
    (fun () ->
      while not (Atomic.get t.stop) do
        Thread.delay poll_interval;
        Mutex.lock t.qlock;
        let queued = Queue.fold (fun acc j -> j :: acc) [] t.queue in
        Mutex.unlock t.qlock;
        List.iter
          (fun j ->
            if not (Budget.tripped j.flag) then
              try
                match Unix.select [ j.fd ] [] [] 0. with
                | [ _ ], _, _ ->
                  if Unix.recv j.fd (Bytes.create 1) 0 1 [ Unix.MSG_PEEK ] = 0 then
                    Budget.trip j.flag
                | _ -> ()
              with Unix.Unix_error _ -> Budget.trip j.flag)
          queued
      done)
    ()

(* --- workers ------------------------------------------------------------- *)

let dequeue t =
  Mutex.lock t.qlock;
  let rec next () =
    if not (Queue.is_empty t.queue) then begin
      let j = Queue.pop t.queue in
      Mutex.unlock t.qlock;
      Some j
    end
    else if Atomic.get t.stop then begin
      Mutex.unlock t.qlock;
      None
    end
    else begin
      Condition.wait t.qcond t.qlock;
      next ()
    end
  in
  next ()

let ledger_append t ~cmd notes =
  match t.config.ledger with
  | None -> ()
  | Some path -> Obs_ledger.append ~path ~notes ~cmd ()

let worker t () =
  let rec loop () =
    match dequeue t with
    | None -> ()
    | Some j ->
      let name = job_name j.req in
      let notes = ref [] in
      let note =
        match t.config.ledger with
        | None -> None
        | Some _ -> Some (fun k v -> notes := !notes @ [ (k, v) ])
      in
      let started = Unix.gettimeofday () in
      let resp =
        if Budget.tripped j.flag then begin
          (* The client left while the job sat in the queue — tripped
             by [watch_queue]'s sweep of parked fds. *)
          Serve_metrics.incr Serve_metrics.cancelled;
          Serve_protocol.Error_resp ("CANCELLED", "client disconnected; job cancelled")
        end
        else begin
          let done_ = Atomic.make false in
          let watcher = watch_disconnect j.fd j.flag ~done_ in
          Fun.protect
            ~finally:(fun () ->
              Atomic.set done_ true;
              Thread.join watcher)
            (fun () -> response_of t j note)
        end
      in
      ledger_append t ~cmd:("serve." ^ name)
        (!notes
        @ [
            ("runtime_s", Obs_json.Float (Unix.gettimeofday () -. started));
            ( "status",
              Obs_json.String
                (match resp with
                | Serve_protocol.Ok_output _ -> "ok"
                | Serve_protocol.Rejected _ -> "rejected"
                | Serve_protocol.Error_resp _ -> "error") );
          ]);
      (try Serve_protocol.send_response j.fd resp
       with Unix.Unix_error _ | Serve_protocol.Protocol_error _ -> ());
      (try Unix.close j.fd with Unix.Unix_error _ -> ());
      loop ()
  in
  loop ()

(* --- accept loop --------------------------------------------------------- *)

let http_404 = "HTTP/1.1 404 Not Found\r\nConnection: close\r\n\r\n"

let http_response body =
  Printf.sprintf
    "HTTP/1.1 200 OK\r\n\
     Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    (String.length body) body

(* Serve a plain-HTTP scrape on a connection whose first bytes peeked
   as "GET ". Reads until the end of the request head (or EOF), checks
   the path, answers, closes. *)
let serve_http t fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec read_head () =
    if
      Buffer.length buf < 8192
      && not
           (String.length (Buffer.contents buf) >= 4
           && String.ends_with ~suffix:"\r\n\r\n" (Buffer.contents buf))
    then begin
      match Unix.read fd chunk 0 1024 with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        read_head ()
    end
  in
  read_head ();
  let head = Buffer.contents buf in
  let target = match String.split_on_char ' ' head with _ :: t :: _ -> t | _ -> "" in
  let reply =
    if target = "/metrics" || target = "/metrics/" then
      http_response (metrics_body t)
    else http_404
  in
  let b = Bytes.unsafe_of_string reply in
  let sent = ref 0 in
  (try
     while !sent < Bytes.length b do
       sent := !sent + Unix.write fd b !sent (Bytes.length b - !sent)
     done
   with Unix.Unix_error _ -> ())

let peek_prefix fd n =
  let b = Bytes.create n in
  let got = Unix.recv fd b 0 n [ Unix.MSG_PEEK ] in
  Bytes.sub_string b 0 got

let enqueue t fd req =
  let j = { fd; req; flag = Budget.flag () } in
  Mutex.lock t.qlock;
  let admitted =
    if Queue.length t.queue < t.config.queue_cap then begin
      Queue.push j t.queue;
      Condition.signal t.qcond;
      true
    end
    else false
  in
  Mutex.unlock t.qlock;
  admitted

let handle_conn_body t fd ~close =
  match peek_prefix fd 4 with
  | "GET " ->
    serve_http t fd;
    close ();
    true
  | _ -> (
    match Serve_protocol.parse_request (Serve_protocol.read_frame fd) with
    | exception Serve_protocol.Protocol_error msg ->
      Serve_metrics.incr Serve_metrics.rejected_proto;
      (try Serve_protocol.send_response fd (Serve_protocol.Rejected ("PROTO001", msg))
       with Unix.Unix_error _ | Serve_protocol.Protocol_error _ -> ());
      close ();
      true
    | exception (Unix.Unix_error _ as e) ->
      logf t "connection lost before request: %s" (Printexc.to_string e);
      close ();
      true
    | Serve_protocol.Metrics ->
      Serve_metrics.incr Serve_metrics.requests;
      (try
         Serve_protocol.send_response fd
           (Serve_protocol.Ok_output (0, metrics_body t))
       with Unix.Unix_error _ | Serve_protocol.Protocol_error _ -> ());
      close ();
      true
    | Serve_protocol.Shutdown ->
      Serve_metrics.incr Serve_metrics.requests;
      (try
         Serve_protocol.send_response fd
           (Serve_protocol.Ok_output (0, "shutting down\n"))
       with Unix.Unix_error _ | Serve_protocol.Protocol_error _ -> ());
      close ();
      false
    | req ->
      Serve_metrics.incr Serve_metrics.requests;
      if enqueue t fd req then begin
        Serve_metrics.incr Serve_metrics.accepted;
        true
      end
      else begin
        Serve_metrics.incr Serve_metrics.rejected_queue;
        (try
           Serve_protocol.send_response fd
             (Serve_protocol.Rejected
                ( "QUEUE001",
                  Printf.sprintf
                    "job queue is full (%d queued, %d workers); retry later"
                    t.config.queue_cap t.config.jobs ))
         with Unix.Unix_error _ | Serve_protocol.Protocol_error _ -> ());
        close ();
        true
      end)

(* Handle one accepted connection in the accept loop. Returns [true]
   to keep serving, [false] on shutdown. Every per-connection I/O
   failure — a reset peer (ECONNRESET from a port scanner or an
   aborted curl), a request read that trips SO_RCVTIMEO — must cost
   exactly this connection: this wrapper is what keeps one misbehaving
   client from reaching [run]'s shutdown path and taking the daemon
   with it. *)
let handle_conn t fd =
  let close () = try Unix.close fd with Unix.Unix_error _ -> () in
  try handle_conn_body t fd ~close
  with Unix.Unix_error _ as e ->
    logf t "connection error: %s" (Printexc.to_string e);
    close ();
    true

let listen_socket config =
  match config.bind with
  | Unix_sock path ->
    (match Unix.lstat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
    | _ -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | Tcp (host, port) ->
    let addr =
      try (List.hd (Unix.getaddrinfo host (string_of_int port)
             [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ])).Unix.ai_addr
      with Failure _ ->
        Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
    in
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd addr;
    Unix.listen fd 64;
    fd

let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> Some port
  | Unix.ADDR_UNIX _ -> None

(* Run the daemon until a [shutdown] request. [ready] is called once
   the socket is listening, with the actual port (0 in the config
   means "pick one"). *)
let run ?(ready = fun _ -> ()) config =
  (* A client that disconnects mid-response must cost us an EPIPE
     errno, not a fatal signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let t =
    {
      config;
      cache = Serve_cache.create ~cap_mb:config.cache_mb;
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      stop = Atomic.make false;
    }
  in
  let listen_fd = listen_socket config in
  ready (Option.value ~default:0 (bound_port listen_fd));
  logf t "listening (%d workers, queue %d, cache %d MiB)" config.jobs
    config.queue_cap config.cache_mb;
  let workers = List.init config.jobs (fun _ -> Domain.spawn (worker t)) in
  let queue_watcher = watch_queue t in
  let rec accept_loop () =
    match Unix.accept listen_fd with
    | fd, _ ->
      (* Bound every request read (the peek, an HTTP head, a frame):
         a client that connects and trickles or sends nothing raises
         EAGAIN into [handle_conn]'s per-connection handler instead of
         blocking the accept thread — and every other client — forever. *)
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO config.read_timeout
       with Unix.Unix_error _ -> ());
      if handle_conn t fd then accept_loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  (try accept_loop () with Unix.Unix_error _ -> ());
  Atomic.set t.stop true;
  Mutex.lock t.qlock;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qlock;
  List.iter Domain.join workers;
  Thread.join queue_watcher;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match config.bind with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  logf t "stopped"
