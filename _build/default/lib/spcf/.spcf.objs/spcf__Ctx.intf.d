lib/spcf/ctx.mli: Bdd Extfloat Hashtbl Logic2 Mapped Network Sta
