lib/logic2/cube.ml: Array Bits Format List Option Printf
