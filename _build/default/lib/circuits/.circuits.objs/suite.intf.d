lib/circuits/suite.mli: Generator Network
