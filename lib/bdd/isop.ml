(* Irredundant sum-of-products extraction from a BDD interval
   (Minato-Morreale). Given lower and upper bound functions L ⊆ U, the
   result is a cover F with L ⊆ F ⊆ U — the don't-care gap U \ L is
   exploited to shrink the cover. Used to synthesize indicator logic
   directly from SPCF BDDs. *)

let c_calls = Obs.counter "bdd.isop.calls"
let c_memo_hits = Obs.counter "bdd.isop.memo_hits"
let h_cover_cubes = Obs.histogram "bdd.isop.cover_cubes"

let compute man ~lower ~upper =
  Obs.enter "bdd.isop";
  let nvars = Bdd.nvars man in
  let memo : (Bdd.t * Bdd.t, (int * bool) list list * Bdd.t) Hashtbl.t =
    Hashtbl.create 256
  in
  (* Returns (cubes, g) where g is the BDD of the cover. Cubes are built
     as literal lists over BDD variables. *)
  let rec isop l u =
    if l = Bdd.bfalse then ([], Bdd.bfalse)
    else if u = Bdd.btrue then ([ [] ], Bdd.btrue)
    else begin
      Obs.incr c_calls;
      let key = (l, u) in
      match Hashtbl.find_opt memo key with
      | Some r ->
        Obs.incr c_memo_hits;
        r
      | None ->
        let v = min (Bdd.var_of man l) (Bdd.var_of man u) in
        let cof f value =
          if Bdd.is_terminal f || Bdd.var_of man f <> v then f
          else if value then Bdd.high_of man f
          else Bdd.low_of man f
        in
        let l0 = cof l false and l1 = cof l true in
        let u0 = cof u false and u1 = cof u true in
        (* Minterms of l0 not coverable by v-free cubes must use ¬v. *)
        let l_n = Bdd.band man l0 (Bdd.bnot man u1) in
        let cubes0, g0 = isop l_n u0 in
        let l_p = Bdd.band man l1 (Bdd.bnot man u0) in
        let cubes1, g1 = isop l_p u1 in
        (* What remains after the v-literal cubes. *)
        let rest0 = Bdd.band man l0 (Bdd.bnot man g0) in
        let rest1 = Bdd.band man l1 (Bdd.bnot man g1) in
        let l_d = Bdd.bor man rest0 rest1 in
        let cubes_d, gd = isop l_d (Bdd.band man u0 u1) in
        let cubes =
          List.map (fun c -> (v, false) :: c) cubes0
          @ List.map (fun c -> (v, true) :: c) cubes1
          @ cubes_d
        in
        let g =
          Bdd.bor man gd
            (Bdd.bor man
               (Bdd.band man (Bdd.nvar man v) g0)
               (Bdd.band man (Bdd.var man v) g1))
        in
        let r = (cubes, g) in
        Hashtbl.replace memo key r;
        r
    end
  in
  let cubes, g = isop lower upper in
  (* Sanity: lower ⊆ g ⊆ upper. *)
  assert (Bdd.bimply man lower g = Bdd.btrue);
  assert (Bdd.bimply man g upper = Bdd.btrue);
  Obs.observe h_cover_cubes (List.length cubes);
  Obs.leave ();
  Logic2.Cover.of_cubes nvars (List.map (Logic2.Cube.make nvars) cubes)

let of_bdd man f = compute man ~lower:f ~upper:f
