lib/logic2/sop.ml: Array Buffer Cover Cube List Printf String
