(* Minimal binary min-heap keyed by floats, stable for equal keys
   (FIFO: among equal keys, the earliest-pushed element pops first).
   Stability matters to the event-driven timing simulator: several
   evaluations of one gate can be scheduled for the same instant, and
   the one scheduled last — computed from the freshest input values —
   must take effect last. *)

type 'a t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable data : 'a array;
  mutable size : int;
  mutable stamp : int;
  dummy : 'a;
}

let create dummy =
  {
    keys = Array.make 16 0.;
    seqs = Array.make 16 0;
    data = Array.make 16 dummy;
    size = 0;
    stamp = 0;
    dummy;
  }

let is_empty h = h.size = 0
let size h = h.size

let grow h =
  let cap = Array.length h.keys * 2 in
  let keys = Array.make cap 0. and seqs = Array.make cap 0 and data = Array.make cap h.dummy in
  Array.blit h.keys 0 keys 0 h.size;
  Array.blit h.seqs 0 seqs 0 h.size;
  Array.blit h.data 0 data 0 h.size;
  h.keys <- keys;
  h.seqs <- seqs;
  h.data <- data

let less h i j =
  h.keys.(i) < h.keys.(j) || (h.keys.(i) = h.keys.(j) && h.seqs.(i) < h.seqs.(j))

let swap h i j =
  let k = h.keys.(i) and q = h.seqs.(i) and d = h.data.(i) in
  h.keys.(i) <- h.keys.(j);
  h.seqs.(i) <- h.seqs.(j);
  h.data.(i) <- h.data.(j);
  h.keys.(j) <- k;
  h.seqs.(j) <- q;
  h.data.(j) <- d

let push h key value =
  if h.size >= Array.length h.keys then grow h;
  h.keys.(h.size) <- key;
  h.seqs.(h.size) <- h.stamp;
  h.data.(h.size) <- value;
  h.stamp <- h.stamp + 1;
  h.size <- h.size + 1;
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less h i parent then begin
        swap h parent i;
        up parent
      end
    end
  in
  up (h.size - 1)

let peek_key h = if h.size = 0 then None else Some h.keys.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let key = h.keys.(0) and value = h.data.(0) in
    h.size <- h.size - 1;
    h.keys.(0) <- h.keys.(h.size);
    h.seqs.(0) <- h.seqs.(h.size);
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- h.dummy;
    let rec down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let smallest = ref i in
      if l < h.size && less h l !smallest then smallest := l;
      if r < h.size && less h r !smallest then smallest := r;
      if !smallest <> i then begin
        swap h i !smallest;
        down !smallest
      end
    in
    down 0;
    Some (key, value)
  end
