(* Reduced ordered binary decision diagrams with a hash-consed unique
   table and an ite computed-table, per manager. Node handles are ints;
   0 and 1 are the terminals. Variables are 0 .. nvars-1 in fixed order. *)

type t = int

type man = {
  nvars : int;
  mutable var : int array; (* variable label per node; nvars for terminals *)
  mutable low : int array;
  mutable high : int array;
  mutable n_nodes : int;
  unique : (int * int * int, int) Hashtbl.t;
  ite_cache : (int * int * int, int) Hashtbl.t;
}

let bfalse : t = 0
let btrue : t = 1

(* Instrumentation probes (free when Obs is disabled). *)
let c_ite_calls = Obs.counter "bdd.ite.calls"
let c_ite_hits = Obs.counter "bdd.ite.cache_hits"
let c_ite_misses = Obs.counter "bdd.ite.cache_misses"
let c_unique_hits = Obs.counter "bdd.unique.hits"
let c_unique_inserts = Obs.counter "bdd.unique.inserts"
let c_grow = Obs.counter "bdd.grow_events"
let c_nodes_max = Obs.counter "bdd.nodes.max"

let create ~nvars () =
  if nvars < 0 then invalid_arg "Bdd.create: negative nvars";
  let cap = 1024 in
  let var = Array.make cap 0 and low = Array.make cap 0 and high = Array.make cap 0 in
  var.(0) <- nvars;
  var.(1) <- nvars;
  {
    nvars;
    var;
    low;
    high;
    n_nodes = 2;
    unique = Hashtbl.create 4096;
    ite_cache = Hashtbl.create 4096;
  }

let nvars man = man.nvars
let num_nodes man = man.n_nodes

let var_of man n = man.var.(n)
let low_of man n = man.low.(n)
let high_of man n = man.high.(n)
let is_terminal n = n < 2

let grow man =
  Obs.incr c_grow;
  let cap = Array.length man.var in
  let cap' = cap * 2 in
  let extend a = Array.init cap' (fun i -> if i < cap then a.(i) else 0) in
  man.var <- extend man.var;
  man.low <- extend man.low;
  man.high <- extend man.high

let mk man v lo hi =
  if lo = hi then lo
  else
    let key = (v, lo, hi) in
    match Hashtbl.find_opt man.unique key with
    | Some n ->
      Obs.incr c_unique_hits;
      n
    | None ->
      Obs.incr c_unique_inserts;
      if man.n_nodes >= Array.length man.var then grow man;
      let n = man.n_nodes in
      man.var.(n) <- v;
      man.low.(n) <- lo;
      man.high.(n) <- hi;
      man.n_nodes <- n + 1;
      Obs.record_max c_nodes_max (n + 1);
      Hashtbl.add man.unique key n;
      n

let var man v =
  if v < 0 || v >= man.nvars then invalid_arg "Bdd.var: out of range";
  mk man v bfalse btrue

let nvar man v =
  if v < 0 || v >= man.nvars then invalid_arg "Bdd.nvar: out of range";
  mk man v btrue bfalse

(* Cofactors of [n] w.r.t. variable [v], assuming v <= var(n). *)
let cofactors man v n =
  if man.var.(n) = v then (man.low.(n), man.high.(n)) else (n, n)

let rec ite man f g h =
  if f = btrue then g
  else if f = bfalse then h
  else if g = h then g
  else if g = btrue && h = bfalse then f
  else begin
    Obs.incr c_ite_calls;
    let key = (f, g, h) in
    match Hashtbl.find_opt man.ite_cache key with
    | Some r ->
      Obs.incr c_ite_hits;
      r
    | None ->
      Obs.incr c_ite_misses;
      let v = min man.var.(f) (min man.var.(g) man.var.(h)) in
      let f0, f1 = cofactors man v f in
      let g0, g1 = cofactors man v g in
      let h0, h1 = cofactors man v h in
      let r1 = ite man f1 g1 h1 in
      let r0 = ite man f0 g0 h0 in
      let r = mk man v r0 r1 in
      Hashtbl.add man.ite_cache key r;
      r
  end

let bnot man f = ite man f bfalse btrue
let band man f g = ite man f g bfalse
let bor man f g = ite man f btrue g
let bxor man f g = ite man f (bnot man g) g
let bnand man f g = bnot man (band man f g)
let bnor man f g = bnot man (bor man f g)
let bxnor man f g = bnot man (bxor man f g)
let bimply man f g = ite man f g btrue

let band_list man = List.fold_left (band man) btrue
let bor_list man = List.fold_left (bor man) bfalse

let rec eval man f assignment =
  if f = btrue then true
  else if f = bfalse then false
  else if assignment.(man.var.(f)) then eval man man.high.(f) assignment
  else eval man man.low.(f) assignment

let size man f =
  let seen = Hashtbl.create 64 in
  let rec walk n =
    if not (is_terminal n || Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      walk man.low.(n);
      walk man.high.(n)
    end
  in
  walk f;
  Hashtbl.length seen + 2

let support man f =
  let seen = Hashtbl.create 64 in
  let vars = Array.make man.nvars false in
  let rec walk n =
    if not (is_terminal n || Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      vars.(man.var.(n)) <- true;
      walk man.low.(n);
      walk man.high.(n)
    end
  in
  walk f;
  vars

(* Minterm count over all nvars variables, in extended-range arithmetic.
   count(n) counts assignments of variables var(n) .. nvars-1; the root
   result is then scaled by 2^var(root). *)
let satcount man f =
  let memo = Hashtbl.create 64 in
  let rec count n =
    if n = bfalse then Extfloat.zero
    else if n = btrue then Extfloat.one
    else
      match Hashtbl.find_opt memo n with
      | Some c -> c
      | None ->
        let v = man.var.(n) in
        let branch child =
          Extfloat.mul_pow2 (count child) (man.var.(child) - v - 1)
        in
        let c = Extfloat.add (branch man.low.(n)) (branch man.high.(n)) in
        Hashtbl.add memo n c;
        c
  in
  if f = bfalse then Extfloat.zero
  else Extfloat.mul_pow2 (count f) man.var.(f)

(* One satisfying (partial) assignment as (var, value) literals. *)
let any_sat man f =
  if f = bfalse then None
  else begin
    let rec descend n acc =
      if n = btrue then acc
      else if man.high.(n) <> bfalse then
        descend man.high.(n) ((man.var.(n), true) :: acc)
      else descend man.low.(n) ((man.var.(n), false) :: acc)
    in
    Some (List.rev (descend f []))
  end

(* Uniformly sample a full minterm of f, weighting branch choice by
   satcount. [rand_float ()] must be uniform in [0,1). *)
let sample_sat man f ~rand_float =
  if f = bfalse then None
  else begin
    let assignment = Array.make man.nvars false in
    let flip v = assignment.(v) <- rand_float () < 0.5 in
    let rec descend n next_var =
      if n = btrue then
        for v = next_var to man.nvars - 1 do
          flip v
        done
      else begin
        let v = man.var.(n) in
        for u = next_var to v - 1 do
          flip u
        done;
        let c_lo = satcount man man.low.(n) and c_hi = satcount man man.high.(n) in
        let total = Extfloat.add c_lo c_hi in
        (* P(high) = c_hi / total, computed in extended range. *)
        let p_hi =
          if Extfloat.is_zero c_hi then 0.
          else Extfloat.to_float (Extfloat.div c_hi total)
        in
        let take_hi = rand_float () < p_hi in
        assignment.(v) <- take_hi;
        descend (if take_hi then man.high.(n) else man.low.(n)) (v + 1)
      end
    in
    (* satcount of subnodes counts vars below var(n); using the manager
       satcount keeps results consistent since the 2^k factors cancel in
       the ratio only if both children start at the same depth — they do,
       because both counts are scaled to full nvars here. *)
    descend f 0;
    Some assignment
  end

(* Existential quantification over the variables marked true in [vars]. *)
let exists man vars f =
  let memo = Hashtbl.create 64 in
  let rec ex n =
    if is_terminal n then n
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
        let v = man.var.(n) in
        let lo = ex man.low.(n) and hi = ex man.high.(n) in
        let r = if vars.(v) then bor man lo hi else mk man v lo hi in
        Hashtbl.add memo n r;
        r
  in
  ex f

let forall man vars f = bnot man (exists man vars (bnot man f))

(* Restrict variable v to a constant. *)
let restrict man f v value =
  let memo = Hashtbl.create 64 in
  let rec go n =
    if is_terminal n || man.var.(n) > v then n
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
        let r =
          if man.var.(n) = v then if value then man.high.(n) else man.low.(n)
          else mk man man.var.(n) (go man.low.(n)) (go man.high.(n))
        in
        Hashtbl.add memo n r;
        r
  in
  go f

(* Simultaneous substitution: variable i is replaced by subs.(i). *)
let compose_vec man f subs =
  if Array.length subs <> man.nvars then
    invalid_arg "Bdd.compose_vec: substitution arity mismatch";
  let memo = Hashtbl.create 64 in
  let rec go n =
    if is_terminal n then n
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
        let r = ite man subs.(man.var.(n)) (go man.high.(n)) (go man.low.(n)) in
        Hashtbl.add memo n r;
        r
  in
  go f

(* A cube over BDD inputs given as function handles: AND of literals with
   each variable v standing for inputs.(v). *)
let cube_with man cube inputs =
  List.fold_left
    (fun acc (v, ph) ->
      let lit = if ph then inputs.(v) else bnot man inputs.(v) in
      band man acc lit)
    btrue (Logic2.Cube.literals cube)

let cover_with man cover inputs =
  List.fold_left
    (fun acc c -> bor man acc (cube_with man c inputs))
    bfalse
    (Logic2.Cover.cubes cover)

(* Direct encodings where cover variable i is BDD variable i. *)
let of_cube man cube =
  cube_with man cube (Array.init man.nvars (fun v -> var man v))

let of_cover man cover =
  cover_with man cover (Array.init man.nvars (fun v -> var man v))
