(* Domain-parallel SPCF computation (OCaml 5 Domains).

   The per-output SPCFs Σ_y are independent: each one is a function of
   the (immutable) mapped circuit, the delay model and the target only.
   The BDD manager is the single piece of shared mutable state in the
   sequential algorithms — so each worker domain gets its *own* manager
   by building a private [Ctx.t] from the shared circuit, computes the
   Σ_y of its assigned outputs there, and ships each result back as a
   plain-integer DAG. The main domain re-imports every Σ_y into the
   caller's manager in critical-output order, so the merged result is
   deterministic and — because ROBDDs are canonical — the imported
   functions are exactly the ones the sequential algorithm produces.
   [jobs = 1] (the default) bypasses all of this and runs the sequential
   algorithm unchanged, keeping single-job runs bit-for-bit identical to
   the pre-parallel code path.

   Observability composes with parallelism: each worker domain gets its
   own domain-local Obs collectors for free (Domain.DLS), exports a
   snapshot as its last act, and the main domain merges the snapshots in
   worker order after the join — so `--jobs N --stats` reports true
   parallel behaviour with per-domain attribution, and counter totals
   are deterministic for a fixed (circuit, jobs) pair. *)

type algorithm = Short_path | Path_based

(* The default job count: EMASK_JOBS, else 1 — parallelism is opt-in so
   every seeded workflow stays on the sequential (identical) path. A
   malformed or non-positive value is a hard error: silently falling
   back to sequential would change the execution mode behind the
   user's back. *)
let default_jobs () =
  match Sys.getenv_opt "EMASK_JOBS" with
  | None -> 1
  | Some raw -> (
    let s = String.trim raw in
    if s = "" then 1
    else
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | Some _ | None ->
        invalid_arg
          (Printf.sprintf "EMASK_JOBS: expected a positive integer, got %S" raw))

(* --- cross-manager BDD transport ---------------------------------------

   A BDD is exported as a postorder DAG over plain integers: ids 0/1 are
   the terminals, internal node i (array index) has id i + 2, and
   children always precede parents. Import replays the array bottom-up
   with ite(var v, high, low) = the node (v, low, high), which re-canonizes
   the function inside the destination manager. *)

type dag = int array * int array * int array * int

let export man root : dag =
  if Bdd.is_terminal root then ([||], [||], [||], (root :> int))
  else begin
    let ids : (Bdd.t, int) Hashtbl.t = Hashtbl.create 256 in
    let acc = ref [] and count = ref 0 in
    (* Depth is bounded by the variable order (nvars), so plain
       recursion is safe. *)
    let rec walk n =
      if (not (Bdd.is_terminal n)) && not (Hashtbl.mem ids n) then begin
        Hashtbl.add ids n (-1);
        walk (Bdd.low_of man n);
        walk (Bdd.high_of man n);
        Hashtbl.replace ids n (!count + 2);
        incr count;
        acc := n :: !acc
      end
    in
    walk root;
    let nodes = Array.of_list (List.rev !acc) in
    let id n = if Bdd.is_terminal n then (n :> int) else Hashtbl.find ids n in
    ( Array.map (fun n -> Bdd.var_of man n) nodes,
      Array.map (fun n -> id (Bdd.low_of man n)) nodes,
      Array.map (fun n -> id (Bdd.high_of man n)) nodes,
      id root )
  end

let import man ((vars, lows, highs, root) : dag) =
  if root = 0 then Bdd.bfalse
  else if root = 1 then Bdd.btrue
  else begin
    let n = Array.length vars in
    let handle = Array.make (n + 2) Bdd.bfalse in
    handle.(1) <- Bdd.btrue;
    for i = 0 to n - 1 do
      handle.(i + 2) <-
        Bdd.ite man (Bdd.var man vars.(i)) handle.(highs.(i)) handle.(lows.(i))
    done;
    handle.(root)
  end

(* --- parallel driver ---------------------------------------------------- *)

let sequential ctx ~algorithm ~target =
  match algorithm with
  | Short_path -> Exact.short_path ctx ~target
  | Path_based -> Exact.path_based ctx ~target

let compute ?jobs ctx ~algorithm ~target =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  if jobs = 1 then sequential ctx ~algorithm ~target
  else begin
    let critical = Sta.critical_outputs ctx.Ctx.sta ~target in
    let n = Array.length critical in
    let k = min jobs n in
    if k <= 1 then sequential ctx ~algorithm ~target
    else begin
      let name =
        match algorithm with
        | Short_path -> "short-path-based"
        | Path_based -> "path-based"
      in
      let outputs, runtime =
        Obs.timed ("spcf." ^ name) (fun () ->
            let target_units = Ctx.units_of_target target in
            let circuit = ctx.Ctx.circuit and model = ctx.Ctx.model in
            (* Round-robin assignment: worker j owns critical outputs
               j, j+k, j+2k, ... — deterministic, and it interleaves
               neighbouring (often similar-sized) cones across workers. *)
            let chunk j =
              Array.of_list
                (List.filteri (fun i _ -> i mod k = j) (Array.to_list critical))
            in
            let parent_budget = ctx.Ctx.budget in
            let collect = Obs.on () in
            let worker j () =
              (* Workers share the parent's cancel flag: the first one
                 to exhaust its budget cancels the team, and the others
                 abandon their shards at the next amortized poll. *)
              let wbudget = Budget.for_worker parent_budget in
              let res =
                match
                  let wctx = Ctx.create ~model ~budget:wbudget circuit in
                  let sigs =
                    match algorithm with
                    | Short_path ->
                      Exact.sigmas wctx ~opts:Exact.proposed_options
                        ~outputs:(chunk j) ~target_units
                    | Path_based ->
                      Exact.sigmas_lateness wctx ~outputs:(chunk j) ~target_units
                  in
                  List.map
                    (fun (nm, y, sigma) -> (nm, y, export wctx.Ctx.man sigma))
                    sigs
                with
                | sigs -> Ok sigs
                | exception Budget.Budget_exceeded r ->
                  Budget.cancel wbudget;
                  Error r
              in
              (* Exporting the snapshot is the worker's last act, on
                 both the success and the budget-exceeded path: partial
                 work must still be attributed. *)
              (res, if collect then Some (Obs.export_snapshot ()) else None)
            in
            let domains = Array.init k (fun j -> Domain.spawn (worker j)) in
            let joined = Array.map Domain.join domains in
            (* Merge observability snapshots first, in worker order, so
               the registry is complete and deterministic even when a
               budget error propagates below. *)
            Array.iteri
              (fun j (_, snap) ->
                match snap with
                | Some s ->
                  Obs.merge_snapshot ~label:(Printf.sprintf "worker %d" (j + 1)) s
                | None -> ())
              joined;
            let joined = Array.map fst joined in
            (* Every domain has joined; surface the root cause (the
               first non-Cancelled reason) if any worker ran out. *)
            let errors =
              Array.to_list joined
              |> List.filter_map (function Error r -> Some r | Ok _ -> None)
            in
            (match
               ( List.find_opt (fun r -> r <> Budget.Cancelled) errors,
                 errors )
             with
            | Some r, _ | None, r :: _ -> raise (Budget.Budget_exceeded r)
            | None, [] -> ());
            let per_domain =
              Array.map
                (function Ok sigs -> sigs | Error _ -> assert false)
                joined
            in
            (* Merge in critical-output order: worker j's p-th result is
               critical output j + p*k. Importing into the caller's
               manager happens only here, on the main domain. *)
            let man = ctx.Ctx.man in
            let merged = Array.make n None in
            Array.iteri
              (fun j sigs ->
                List.iteri
                  (fun p (nm, y, dag) ->
                    merged.(j + (p * k)) <- Some (nm, y, import man dag))
                  sigs)
              per_domain;
            Array.to_list merged
            |> List.map (function
                 | Some r -> r
                 | None -> assert false))
      in
      Ctx.make_result ctx ~algorithm:name ~target outputs ~runtime
    end
  end

let short_path ?jobs ctx ~target = compute ?jobs ctx ~algorithm:Short_path ~target
let path_based ?jobs ctx ~target = compute ?jobs ctx ~algorithm:Path_based ~target
