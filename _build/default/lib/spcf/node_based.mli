(** Node-based SPCF over-approximation (Su et al. [22] style): critical
    gates marked statically, one stability function per gate, single
    topological pass. Guaranteed superset of the exact SPCF. *)

val compute : Ctx.t -> target:float -> Ctx.result
