lib/spcf/exact.mli: Ctx Network
