(* A combinational standard-cell library modeled on the lsi_10k library
   the paper used: inverters/buffers, NAND/NOR/AND/OR up to 4 inputs,
   XOR/XNOR, AOI/OAI, and a 2-to-1 mux. Areas are in equivalent-gate
   units, delays in ns-like units, input capacitances in unit loads. *)

type t = {
  cname : string;
  arity : int;
  area : float;
  delay : float; (* pin-to-pin, uniform over pins *)
  input_cap : float;
  logic : Logic2.Cover.t; (* over variables 0 .. arity-1 *)
}

let make cname arity area delay input_cap sop =
  let vars = Array.init arity (fun i -> Printf.sprintf "%c" (Char.chr (Char.code 'a' + i))) in
  { cname; arity; area; delay; input_cap; logic = Logic2.Sop.parse ~vars sop }

let inv = make "IV" 1 1.0 0.13 1.0 "!a"
let buf = make "B1" 1 2.0 0.20 1.0 "a"
let nd2 = make "ND2" 2 2.0 0.16 1.0 "!a + !b"
let nd3 = make "ND3" 3 3.0 0.21 1.1 "!a + !b + !c"
let nd4 = make "ND4" 4 4.0 0.27 1.2 "!a + !b + !c + !d"
let nr2 = make "NR2" 2 2.0 0.20 1.0 "!a * !b"
let nr3 = make "NR3" 3 3.0 0.28 1.1 "!a * !b * !c"
let nr4 = make "NR4" 4 4.0 0.36 1.2 "!a * !b * !c * !d"
let an2 = make "AN2" 2 3.0 0.25 1.0 "a * b"
let an3 = make "AN3" 3 4.0 0.30 1.1 "a * b * c"
let an4 = make "AN4" 4 5.0 0.35 1.2 "a * b * c * d"
let or2 = make "OR2" 2 3.0 0.30 1.0 "a + b"
let or3 = make "OR3" 3 4.0 0.38 1.1 "a + b + c"
let or4 = make "OR4" 4 5.0 0.45 1.2 "a + b + c + d"
let eo = make "EO" 2 4.0 0.35 1.3 "a*!b + !a*b"
let en = make "EN" 2 4.0 0.35 1.3 "a*b + !a*!b"
let aoi21 = make "AOI21" 3 3.0 0.22 1.1 "!a*!c + !b*!c"
let aoi22 = make "AOI22" 4 4.0 0.26 1.2 "!a*!c + !a*!d + !b*!c + !b*!d"
let oai21 = make "OAI21" 3 3.0 0.22 1.1 "!c + !a*!b"
let oai22 = make "OAI22" 4 4.0 0.26 1.2 "!a*!b + !c*!d"
let mux21 = make "MUX21" 3 5.0 0.40 1.2 "!c*a + c*b"
(* MUX21 convention: input a is the 0-input, b the 1-input, c the select. *)

let all =
  [
    inv; buf; nd2; nd3; nd4; nr2; nr3; nr4; an2; an3; an4; or2; or3; or4; eo;
    en; aoi21; aoi22; oai21; oai22; mux21;
  ]

let by_name =
  let tbl = Hashtbl.create 32 in
  List.iter (fun c -> Hashtbl.replace tbl c.cname c) all;
  tbl

let find name = Hashtbl.find_opt by_name name

let and_cells = [| an2; an3; an4 |] (* index = arity - 2 *)
let or_cells = [| or2; or3; or4 |]
let nand_cells = [| nd2; nd3; nd4 |]
let nor_cells = [| nr2; nr3; nr4 |]
