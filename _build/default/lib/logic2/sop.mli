(** SOP expression parsing for tests, examples and BLIF I/O. *)

val parse : vars:string array -> string -> Cover.t
(** [parse ~vars "a*!b + c"] — terms split on ['+'], literals on ['*'] or
    whitespace, ['!'] negates, ["1"]/["0"] are the constants. *)

val cube_of_blif_row : int -> string -> Cube.t
(** Decode a BLIF input-plane row such as ["01-"]. *)

val blif_row_of_cube : Cube.t -> string
