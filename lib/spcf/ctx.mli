(** Shared state for SPCF computation on a mapped circuit. *)

type t = {
  circuit : Mapped.t;
  model : Sta.delay_model;
  sta : Sta.t;
  man : Bdd.man;
  funcs : Bdd.t array;
  delay_units : int array;
  arrival_units : int array;
  primes : (string, Logic2.Cover.t * Logic2.Cover.t) Hashtbl.t;
  budget : Budget.t;  (** governs [man]; [Budget.unlimited] by default *)
}

val grid : float
(** Delay lattice step (0.01 units); all cell delays are exact multiples. *)

val units_of_delay : float -> int
val units_of_target : float -> int
val create :
  ?model:Sta.delay_model -> ?budget:Budget.t -> ?shared:bool -> Mapped.t -> t
(** [budget] governs the context's BDD manager from construction on:
    both [to_bdds] and every subsequent SPCF computation can raise
    [Budget.Budget_exceeded]. [shared] (default false) builds the
    context over a concurrent BDD manager ({!Bdd.create_shared}) so
    worker domains can compute SPCFs directly in it. *)

val network : t -> Network.t

val primes_of : t -> Network.signal -> Logic2.Cover.t * Logic2.Cover.t

val prewarm_primes : t -> unit
(** Populate the per-cell prime cache for every gate. Required before
    several domains share this context: afterwards [primes_of] is a
    pure read. *)

val delta : t -> float
val target_of_theta : t -> float -> float

type result = {
  target : float;
  algorithm : string;
  outputs : (string * Network.signal * Bdd.t) list;
      (** the SPCF Σ_y for every critical primary output *)
  union : Bdd.t;  (** OR of the per-output SPCFs *)
  runtime : float;  (** wall-clock seconds for the computation *)
}

val count : t -> result -> Extfloat.t
(** Number of critical patterns (minterms of the union SPCF). *)

val count_output : t -> result -> string -> Extfloat.t option
val num_critical_outputs : result -> int

val make_result :
  t ->
  algorithm:string ->
  target:float ->
  (string * Network.signal * Bdd.t) list ->
  runtime:float ->
  result
