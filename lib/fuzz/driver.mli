(** The fuzzing loop: generate (or mutate) a specimen, run the oracle
    catalogue, shrink failures, write repro netlists.

    Every sample [i] draws its randomness from [Rng.child root i], so a
    failure is replayed from [(seed, index)] alone; the header of every
    repro [.blif] names the oracle, the root seed, the index, and the
    [EMASK_*] environment the run saw. [eco-equal] failures additionally
    get a companion [.eco] file — the greedily minimized edit sequence
    in [Eco.parse_edits] format, re-derived from [(seed, index)] — next
    to the [.blif] it applies to. *)

type config = {
  seed : int;  (** root seed; every report names it *)
  count : int;  (** samples to run (ignored when the budget ends first) *)
  budget : Budget.spec;
      (** campaign budget: the loop stops when the deadline passes, and
          each oracle execution runs under a worker view of the same
          instance (shared deadline, per-oracle node/op quotas); an
          oracle that exhausts it is a [Skip], not a failure *)
  oracles : Oracle.t list;  (** the checks to run on every sample *)
  shrink : bool;  (** minimize failing specimens before reporting *)
  out_dir : string option;  (** where repro [.blif] files go; [None] = no files *)
  params : Gen.params;  (** specimen size envelope *)
}

val default_config : config
(** Seed 0, 100 samples, no budget, all oracles, shrinking on, no
    repro directory. *)

type failure = {
  oracle : string;
  index : int;  (** sample index under the root seed *)
  message : string;  (** the oracle's disagreement message *)
  gates : int;  (** gate count of the (shrunken) repro *)
  spec : Gen.spec;  (** the (shrunken) reproducing specimen *)
  repro : string option;  (** path of the written [.blif], if any *)
}

type summary = {
  samples : int;  (** specimens generated *)
  checks : int;  (** oracle executions (excluding shrinking) *)
  skips : int;  (** oracle skips (specimen outside an envelope) *)
  failures : failure list;  (** in discovery order *)
  elapsed : float;  (** wall-clock seconds *)
}

val run : ?log:(string -> unit) -> config -> summary
(** [log] receives one line per failure (seed, index, oracle, message)
    and a final tally; default prints to stdout. *)

val repro_blif : oracle:string -> seed:int -> index:int -> message:string -> Gen.spec -> string
(** The repro file contents: a comment header naming the oracle, root
    seed, sample index and message, followed by the netlist in BLIF. *)
