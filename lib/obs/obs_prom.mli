(** Prometheus text-exposition renderer of the Obs registry.

    [render ()] produces the version-0.0.4 text format a /metrics
    endpoint serves: every counter as an [emask_]-prefixed gauge, every
    log2 histogram as a Prometheus histogram whose cumulative bucket
    bounds ([le = 2^i - 1], integers) are exact, and the span tree
    flattened into [emask_span_seconds]/[emask_span_calls] families
    labelled by the '/'-joined span path. This is the payload the
    future [emask serve] daemon's /metrics endpoint will emit. *)

val render : unit -> string

val write_file : string -> unit
(** [render] to a file (for `--prom FILE` and file-based scrapers). *)
