lib/masking/telescopic.mli: Format Synthesis
