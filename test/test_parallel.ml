(* Tests for the domain-parallel SPCF driver: the cross-manager DAG
   transport round-trips arbitrary functions, and running with several
   worker domains yields exactly the sequential results — same critical
   outputs in the same order, same per-output SPCFs, same synthesized
   masking circuit. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---------- Export / import round-trip ---------- *)

type expr = Var of int | Not of expr | And of expr * expr | Xor of expr * expr

let rec eval_expr env = function
  | Var v -> env.(v)
  | Not e -> not (eval_expr env e)
  | And (a, b) -> eval_expr env a && eval_expr env b
  | Xor (a, b) -> eval_expr env a <> eval_expr env b

let rec build man = function
  | Var v -> Bdd.var man v
  | Not e -> Bdd.bnot man (build man e)
  | And (a, b) -> Bdd.band man (build man a) (build man b)
  | Xor (a, b) -> Bdd.bxor man (build man a) (build man b)

let nvars = 6
let envs = List.init (1 lsl nvars) (fun i -> Array.init nvars (fun v -> (i lsr v) land 1 = 1))

let expr_gen =
  let open QCheck.Gen in
  sized_size (int_bound 8)
  @@ fix (fun self n ->
         if n <= 0 then map (fun v -> Var v) (int_bound (nvars - 1))
         else
           frequency
             [
               (1, map (fun v -> Var v) (int_bound (nvars - 1)));
               (2, map (fun e -> Not e) (self (n - 1)));
               (2, map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2)));
               (2, map2 (fun a b -> Xor (a, b)) (self (n / 2)) (self (n / 2)));
             ])

let rec expr_print = function
  | Var v -> Printf.sprintf "x%d" v
  | Not e -> Printf.sprintf "!(%s)" (expr_print e)
  | And (a, b) -> Printf.sprintf "(%s & %s)" (expr_print a) (expr_print b)
  | Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (expr_print a) (expr_print b)

let prop_roundtrip =
  QCheck.Test.make ~name:"transport: export/import preserves the function"
    ~count:300
    (QCheck.make ~print:expr_print expr_gen)
    (fun e ->
      let m1 = Bdd.create ~nvars () in
      let m2 = Bdd.create ~nvars () in
      let f = build m1 e in
      let g = Spcf.Parallel.import m2 (Spcf.Parallel.export m1 f) in
      List.for_all (fun env -> Bdd.eval m2 g env = eval_expr env e) envs)

let prop_roundtrip_same_manager =
  QCheck.Test.make ~name:"transport: re-import into the source manager is identity"
    ~count:300
    (QCheck.make ~print:expr_print expr_gen)
    (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build man e in
      Spcf.Parallel.import man (Spcf.Parallel.export man f) = f)

(* ---------- Determinism: jobs = 4 vs jobs = 1 ---------- *)

let circuits = [ "i1"; "cmb"; "x2" ]

(* Per-output SPCFs live in different managers for the two runs, so the
   comparison is semantic: same names in the same order, same minterm
   counts per output and for the union. *)
let same_result (ctx1, (r1 : Spcf.Ctx.result)) (ctx4, (r4 : Spcf.Ctx.result)) =
  let names r = List.map (fun (n, _, _) -> n) r.Spcf.Ctx.outputs in
  check_str "output order" (String.concat "," (names r1)) (String.concat "," (names r4));
  List.iter2
    (fun (n, _, s1) (_, _, s4) ->
      check (n ^ " satcount") true
        (Extfloat.equal
           (Bdd.satcount ctx1.Spcf.Ctx.man s1)
           (Bdd.satcount ctx4.Spcf.Ctx.man s4)))
    r1.Spcf.Ctx.outputs r4.Spcf.Ctx.outputs;
  check "union satcount" true
    (Extfloat.equal (Spcf.Ctx.count ctx1 r1) (Spcf.Ctx.count ctx4 r4))

let run_spcf algo jobs name =
  let mc = Mapper.map (Suite.load name) in
  let ctx = Spcf.Ctx.create mc in
  let target = Spcf.Ctx.target_of_theta ctx 0.9 in
  let r =
    match algo with
    | `Short -> Spcf.Parallel.short_path ~jobs ctx ~target
    | `Path -> Spcf.Parallel.path_based ~jobs ctx ~target
  in
  (ctx, r)

let test_spcf_determinism algo () =
  List.iter
    (fun name -> same_result (run_spcf algo 1 name) (run_spcf algo 4 name))
    circuits

(* Downstream synthesis + verification must be unaffected by the worker
   count: every verdict and every overhead figure matches. *)
let test_synthesis_determinism () =
  List.iter
    (fun name ->
      let net = Suite.load name in
      let run jobs =
        let options = { Masking.Synthesis.default_options with jobs } in
        Masking.Verify.check (Masking.Synthesis.synthesize ~options net)
      in
      let r1 = run 1 and r4 = run 4 in
      check (name ^ " equivalent") r1.Masking.Verify.equivalent
        r4.Masking.Verify.equivalent;
      check (name ^ " coverage_ok") r1.Masking.Verify.coverage_ok
        r4.Masking.Verify.coverage_ok;
      check (name ^ " prediction_ok") r1.Masking.Verify.prediction_ok
        r4.Masking.Verify.prediction_ok;
      check_int (name ^ " critical outputs") r1.Masking.Verify.critical_outputs
        r4.Masking.Verify.critical_outputs;
      check (name ^ " critical minterms") true
        (Extfloat.equal r1.Masking.Verify.critical_minterms
           r4.Masking.Verify.critical_minterms);
      Alcotest.(check (float 1e-9))
        (name ^ " area overhead") r1.Masking.Verify.area_overhead_pct
        r4.Masking.Verify.area_overhead_pct;
      Alcotest.(check (float 1e-9))
        (name ^ " coverage pct") r1.Masking.Verify.coverage_pct
        r4.Masking.Verify.coverage_pct)
    circuits

(* ---------- Observability composes with parallelism ---------- *)

let c_late_calls = Obs.counter "spcf.lateness.calls"
let c_late_memo = Obs.counter "spcf.lateness.memo_hits"

let with_obs_collect f =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.reset ();
      Obs.set_enabled false)
    f

(* Obs collection no longer forces the sequential path: with collection
   enabled, worker snapshots merge into the main registry and the jobs
   knob still must not change results. *)
let test_obs_parallel_results () =
  with_obs_collect (fun () ->
      let c1, r1 = run_spcf `Short 1 "i1" in
      let c4, r4 = run_spcf `Short 4 "i1" in
      same_result (c1, r1) (c4, r4))

(* The path-based algorithm uses a fresh lateness memo per output, so
   its counters partition exactly over any round-robin assignment: the
   merged totals under k workers must equal the sequential totals. *)
let test_obs_merged_counters () =
  List.iter
    (fun name ->
      let totals jobs =
        with_obs_collect (fun () ->
            ignore (run_spcf `Path jobs name);
            (Obs.counter_value c_late_calls, Obs.counter_value c_late_memo))
      in
      let calls1, memo1 = totals 1 in
      check "sequential run recorded lateness calls" true (calls1 > 0);
      List.iter
        (fun jobs ->
          let calls_k, memo_k = totals jobs in
          check_int
            (Printf.sprintf "%s lateness.calls jobs=%d" name jobs)
            calls1 calls_k;
          check_int
            (Printf.sprintf "%s lateness.memo_hits jobs=%d" name jobs)
            memo1 memo_k)
        [ 2; 4; 8 ])
    circuits

(* Worker snapshots land with per-domain attribution: a parallel run
   must register at least one "worker N" breakdown entry whose counters
   sum (with main's share) to the merged registry totals. *)
let test_obs_domain_breakdown () =
  with_obs_collect (fun () ->
      ignore (run_spcf `Path 4 "x2");
      let breakdown = Obs.domain_breakdown () in
      check "has worker entries" true (List.length breakdown >= 1);
      List.iter
        (fun (label, _) ->
          check (label ^ " labelled as worker") true
            (String.length label >= 6 && String.sub label 0 6 = "worker"))
        breakdown;
      let workers_total =
        List.fold_left
          (fun acc (_, counters) ->
            acc
            + Option.value ~default:0
                (List.assoc_opt "spcf.lateness.calls" counters))
          0 breakdown
      in
      (* Every lateness call happens inside a worker domain, so the
         attribution must account for the full merged total. *)
      check_int "breakdown accounts for all lateness calls"
        (Obs.counter_value c_late_calls)
        workers_total)

(* The exported SPCF DAGs are a canonical, manager-independent encoding
   (postorder over the ROBDD): for a fixed circuit they must be
   byte-identical across every worker count, with collection enabled. *)
let dag_bytes (ctx, (r : Spcf.Ctx.result)) =
  r.Spcf.Ctx.outputs
  |> List.map (fun (n, _, sigma) ->
         let vars, lows, highs, root =
           Spcf.Parallel.export ctx.Spcf.Ctx.man sigma
         in
         let pp a =
           String.concat "," (List.map string_of_int (Array.to_list a))
         in
         Printf.sprintf "%s[%s;%s;%s;%d]" n (pp vars) (pp lows) (pp highs) root)
  |> String.concat "|"

let test_obs_dag_identical () =
  with_obs_collect (fun () ->
      List.iter
        (fun name ->
          let base = dag_bytes (run_spcf `Short 1 name) in
          List.iter
            (fun jobs ->
              check_str
                (Printf.sprintf "%s exported DAG jobs=%d" name jobs)
                base
                (dag_bytes (run_spcf `Short jobs name)))
            [ 2; 4; 8 ])
        circuits)

(* Deterministic QCheck seeding (no wall-clock self-init): the state
   comes from Fuzz.Rng.qcheck_state, overridable via QCHECK_SEED. *)
let qsuite name tests =
  let rand = Fuzz.Rng.qcheck_state () in
  (name, List.map (QCheck_alcotest.to_alcotest ~rand) tests)

let () =
  Alcotest.run "spcf-parallel"
    [
      qsuite "transport" [ prop_roundtrip; prop_roundtrip_same_manager ];
      ( "determinism",
        [
          Alcotest.test_case "short-path jobs=4 = jobs=1" `Quick
            (test_spcf_determinism `Short);
          Alcotest.test_case "path-based jobs=4 = jobs=1" `Quick
            (test_spcf_determinism `Path);
          Alcotest.test_case "synthesis jobs=4 = jobs=1" `Quick
            test_synthesis_determinism;
        ] );
      ( "observability",
        [
          Alcotest.test_case "obs-enabled parallel results" `Quick
            test_obs_parallel_results;
          Alcotest.test_case "merged counters = sequential totals" `Quick
            test_obs_merged_counters;
          Alcotest.test_case "per-domain attribution" `Quick
            test_obs_domain_breakdown;
          Alcotest.test_case "exported DAGs byte-identical, jobs in {1,2,4,8}"
            `Quick test_obs_dag_identical;
        ] );
    ]
