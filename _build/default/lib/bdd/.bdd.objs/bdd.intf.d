lib/bdd/bdd.mli: Extfloat Logic2
