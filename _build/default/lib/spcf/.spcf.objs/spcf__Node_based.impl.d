lib/spcf/node_based.ml: Array Bdd Ctx List Logic2 Network Sta Unix
