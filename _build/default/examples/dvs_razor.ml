(* Beyond masking: the paper's future-work applications and the Razor
   baseline it positions itself against.

     dune exec examples/dvs_razor.exe

   1. Razor-style detection (Ernst et al. [8]) vs masking: detection
      pays replay throughput in the protected band and *misses* errors
      beyond its guard band; masking pays nothing and misses nothing
      within its design band.
   2. Aggressive DVS (paper Sec. 6, future work): with masking in place
      the supply can scale past the point where speed-paths fail.
   3. Telescopic (variable-latency) operation [27, 28]: the indicator
      doubles as a hold function, clocking the unit at θΔ. *)

let () =
  let net = Suite.load "i1" in
  let m = Masking.Synthesis.synthesize net in

  Format.printf "=== Razor-style detection vs error masking (circuit i1) ===@.";
  List.iter
    (fun c -> Format.printf "%a@." Masking.Razor.pp c)
    (Masking.Razor.compare_schemes ~trials:400 m);
  Format.printf
    "note: razor repairs cost replay cycles (throughput < 1) and its guard band@.";
  Format.printf
    "can be outrun by heavy aging (escaped > 0); masking does neither.@.@.";

  Format.printf "=== Aggressive DVS under masking (circuit i1) ===@.";
  List.iter
    (fun s -> Format.printf "%a@." Masking.Dvs.pp s)
    (Masking.Dvs.sweep ~trials:400 m);
  Format.printf
    "raw errors appear as the supply drops; the masked outputs hold on,@.";
  Format.printf "so the protected circuit can run at lower energy.@.@.";

  Format.printf "=== Telescopic (variable-latency) unit (circuit i1) ===@.";
  let r = Masking.Telescopic.analyze m in
  Format.printf "%a@." Masking.Telescopic.pp r;
  Format.printf "hold function validated: %b@."
    (Masking.Telescopic.validate ~samples:1000 m)
