(* Tests for the extension modules: the Razor detection baseline, the
   DVS sweep, and telescopic (variable-latency) units. *)

let check = Alcotest.(check bool)

let synth name = Masking.Synthesis.synthesize (Suite.load name)

let test_razor_consistency () =
  let m = synth "i1" in
  let cs = Masking.Razor.compare_schemes ~trials:200 ~factors:[ 1.0; 1.1; 1.25 ] m in
  List.iter
    (fun (c : Masking.Razor.comparison) ->
      let s = c.Masking.Razor.razor in
      check "rates are probabilities" true
        (List.for_all
           (fun x -> x >= 0. && x <= 1.)
           [ c.raw_error_rate; s.escaped_rate; s.repair_rate; s.throughput ]);
      (* Escapes + detected repairs bound the raw errors from above:
         every raw error is either detected or escaped. *)
      check "raw <= escapes + repairs" true
        (c.raw_error_rate <= s.escaped_rate +. s.repair_rate +. 1e-9);
      (* Detection costs throughput whenever it fires. *)
      check "throughput <= 1" true (s.throughput <= 1.);
      if s.repair_rate > 0. then check "repairs cost throughput" true (s.throughput < 1.);
      (* Masking never pays throughput. *)
      check "masking full throughput" true (c.masking.throughput = 1.))
    cs

let test_razor_nominal_clean () =
  let m = synth "C432" in
  match Masking.Razor.compare_schemes ~trials:150 ~factors:[ 1.0 ] m with
  | [ c ] ->
    check "no raw errors fresh" true (c.Masking.Razor.raw_error_rate = 0.);
    check "no escapes fresh" true (c.Masking.Razor.razor.escaped_rate = 0.)
  | _ -> Alcotest.fail "one comparison expected"

let test_razor_masking_in_band () =
  (* In the protected band the masked outputs never err. *)
  let m = synth "i1" in
  let cs = Masking.Razor.compare_schemes ~trials:300 ~factors:[ 1.05; 1.1 ] m in
  List.iter
    (fun (c : Masking.Razor.comparison) ->
      check "masking escapes nothing in band" true
        (c.Masking.Razor.masking.escaped_rate = 0.))
    cs

let test_dvs_monotone_energy () =
  let m = synth "cmb" in
  let samples = Masking.Dvs.sweep ~trials:100 m in
  let rec pairs = function
    | a :: (b :: _ as rest) ->
      check "voltage decreasing" true
        (b.Masking.Dvs.voltage < a.Masking.Dvs.voltage);
      check "energy decreasing" true (b.Masking.Dvs.energy < a.Masking.Dvs.energy);
      pairs rest
    | _ -> ()
  in
  pairs samples;
  (* At nominal voltage nothing fails. *)
  (match samples with
  | first :: _ ->
    check "nominal clean" true (first.Masking.Dvs.raw_error_rate = 0.)
  | [] -> Alcotest.fail "no samples");
  check "energy model" true (Masking.Dvs.energy_of 0.9 = 0.81);
  check "delay model" true (abs_float (Masking.Dvs.delay_factor 0.8 -. 1.25) < 1e-9)

let test_dvs_masking_extends_range () =
  (* Whenever raw errors appear, the masked outputs fail no more often. *)
  let m = synth "i1" in
  let samples = Masking.Dvs.sweep ~trials:300 m in
  List.iter
    (fun (s : Masking.Dvs.sample) ->
      check "masked <= raw" true
        (s.Masking.Dvs.masked_error_rate <= s.Masking.Dvs.raw_error_rate +. 1e-9))
    samples

let test_telescopic () =
  List.iter
    (fun name ->
      let m = synth name in
      let r = Masking.Telescopic.analyze m in
      check (name ^ ": fast clock below slow") true
        (r.Masking.Telescopic.fast_clock < r.Masking.Telescopic.slow_clock);
      check (name ^ ": hold prob in [0,1]") true
        (r.Masking.Telescopic.hold_probability >= 0.
        && r.Masking.Telescopic.hold_probability <= 1.);
      (* The hold function contains the exact SPCF. *)
      check (name ^ ": hold >= exact") true
        (r.Masking.Telescopic.hold_probability
        >= r.Masking.Telescopic.hold_exact_probability -. 1e-9);
      check (name ^ ": latency = 1 + P(hold)") true
        (abs_float
           (r.Masking.Telescopic.expected_latency_cycles
           -. (1. +. r.Masking.Telescopic.hold_probability))
        < 1e-9);
      check (name ^ ": hold validated") true
        (Masking.Telescopic.validate ~samples:400 m))
    [ "i1"; "cmb"; "C432" ]

let () =
  Alcotest.run "extensions"
    [
      ( "razor-baseline",
        [
          Alcotest.test_case "consistency" `Slow test_razor_consistency;
          Alcotest.test_case "nominal clean" `Quick test_razor_nominal_clean;
          Alcotest.test_case "masking in band" `Slow test_razor_masking_in_band;
        ] );
      ( "dvs",
        [
          Alcotest.test_case "monotone energy" `Quick test_dvs_monotone_energy;
          Alcotest.test_case "masking extends range" `Slow test_dvs_masking_extends_range;
        ] );
      ("telescopic", [ Alcotest.test_case "reports + validation" `Slow test_telescopic ]);
    ]
