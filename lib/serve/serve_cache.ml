(* The daemon's circuit cache: an LRU over loaded (parsed + mapped)
   circuits, keyed by content digest, with eco baseline snapshots
   memoized per (circuit, theta, band) on each entry.

   Keying by the digest of the source text (or the suite name) means
   "same netlist, different file name" is one entry, and an edited
   file is a clean miss — there is no invalidation protocol to get
   wrong. Sizing is a deliberate estimate, not an exact accounting:
   the source text dominates for inline circuits, and the per-gate /
   per-snapshot constants keep a cache full of suite circuits or
   snapshot-heavy entries from looking free.

   Locking: the table lock covers lookup/insert/evict bookkeeping
   only — never a parse, map or snapshot, so a slow load on one
   connection cannot stall cache hits on others. The per-entry lock
   serializes whole eco jobs ([with_eco_lock] wraps snapshot reuse
   *and* the recompute): every eco job on an entry shares the cached
   baseline's BDD manager, and the recompute mutates it, so two eco
   jobs on the same circuit run in sequence (on different circuits, in
   parallel). [snapshot_for] therefore assumes the caller holds the
   entry lock and takes only the table lock itself. Duplicate
   concurrent loads of one circuit are possible and harmless — last
   insert wins, the loser's work is garbage. *)

type entry = {
  key : string;
  job : Serve_jobs.entry;
  bytes : int;  (** size estimate for eviction accounting *)
  lock : Mutex.t;  (** serializes eco jobs (see [with_eco_lock]) *)
  mutable snaps : ((float * float option) * Eco.t) list;
      (** eco baselines by (theta, band) *)
  mutable stamp : int;  (** last-use tick for LRU eviction *)
}

type t = {
  cap_bytes : int;
  tbl : (string, entry) Hashtbl.t;
  tlock : Mutex.t;
  mutable tick : int;
  mutable used : int;
}

let create ~cap_mb =
  {
    cap_bytes = cap_mb * 1024 * 1024;
    tbl = Hashtbl.create 64;
    tlock = Mutex.create ();
    tick = 0;
    used = 0;
  }

let key_of (c : Serve_jobs.circuit) =
  match c.Serve_jobs.source with
  | Some text -> Digest.to_hex (Digest.string text)
  | None -> "suite:" ^ c.Serve_jobs.spec

(* ~1 KiB per gate for the elaborated network + mapped realization is
   generous but the right order of magnitude; a snapshot's BDDs are
   charged at a flat 256 KiB. Being off by 2x either way only moves
   the eviction point, never correctness. *)
let per_gate_bytes = 1024
let per_snap_bytes = 256 * 1024

let estimate (c : Serve_jobs.circuit) (e : Serve_jobs.entry) =
  let src = match c.Serve_jobs.source with Some s -> String.length s | None -> 0 in
  src + (Network.num_signals e.Serve_jobs.e_net * per_gate_bytes)

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Evict least-recently-used entries until under capacity. Runs with
   the table lock held. *)
let evict_to_cap t =
  while t.used > t.cap_bytes && Hashtbl.length t.tbl > 1 do
    let victim =
      Hashtbl.fold
        (fun _ e acc ->
          match acc with
          | Some b when b.stamp <= e.stamp -> acc
          | _ -> Some e)
        t.tbl None
    in
    match victim with
    | None -> ()
    | Some e ->
      Hashtbl.remove t.tbl e.key;
      t.used <- t.used - e.bytes;
      Serve_metrics.incr Serve_metrics.cache_evictions
  done

(* The [lookup] the job runners get: LRU hit, or load + insert. *)
let find t (c : Serve_jobs.circuit) =
  let key = key_of c in
  let hit =
    locked t.tlock (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some e ->
          t.tick <- t.tick + 1;
          e.stamp <- t.tick;
          Some e
        | None -> None)
  in
  match hit with
  | Some e ->
    Serve_metrics.incr Serve_metrics.cache_hits;
    e
  | None ->
    Serve_metrics.incr Serve_metrics.cache_misses;
    let job = Serve_jobs.load_entry c in
    (* Force the mapping outside the table lock: a cached entry must
       be complete, or a hit would re-pay (and re-span) the map. *)
    ignore (Lazy.force job.Serve_jobs.e_mc);
    let entry =
      {
        key;
        job;
        bytes = estimate c job;
        lock = Mutex.create ();
        snaps = [];
        stamp = 0;
      }
    in
    locked t.tlock (fun () ->
        t.tick <- t.tick + 1;
        entry.stamp <- t.tick;
        (match Hashtbl.find_opt t.tbl key with
        | Some prev -> t.used <- t.used - prev.bytes
        | None -> ());
        Hashtbl.replace t.tbl key entry;
        t.used <- t.used + entry.bytes;
        evict_to_cap t);
    entry

let lookup t c = (find t c).job

(* Eco baseline memoization on a pinned [entry]. Runs with that
   entry's lock held (via [with_eco_lock]); only the size bookkeeping
   takes the table lock — and only charges the table if this exact
   entry is still the cached one (an entry evicted mid-job keeps its
   snapshot for the rest of the job, but the table does not pay for
   it). *)
let snapshot_on t (e : entry) : Serve_jobs.snapshot_for =
 fun ~theta ~band ~jobs ~budget d0 ->
  match List.assoc_opt (theta, band) e.snaps with
  | Some snap ->
    Serve_metrics.incr Serve_metrics.snap_hits;
    snap
  | None ->
    Serve_metrics.incr Serve_metrics.snap_misses;
    let snap = Eco.snapshot ~theta ?band ~jobs ~budget d0 in
    e.snaps <- ((theta, band), snap) :: e.snaps;
    locked t.tlock (fun () ->
        match Hashtbl.find_opt t.tbl e.key with
        | Some e' when e' == e ->
          t.used <- t.used + per_snap_bytes;
          evict_to_cap t
        | Some _ | None -> ());
    snap

(* Serialize an eco job on its entry: the cached baseline's BDD
   manager is shared between every job on this circuit, and the
   recompute mutates it. The entry is resolved ONCE and pinned for the
   whole job — the [lookup] and [snapshot_for] handed to [f] resolve
   this circuit to that same entry, never back through [find]. If
   cache pressure evicts and reloads the key mid-job, the reloaded
   entry has its own manager and its own lock, so a later job cannot
   share mutable state with this one; re-resolving here instead would
   let two jobs hold different entries' locks while touching one
   manager. Mutexes are not reentrant, so nothing inside [f] may
   re-lock — and nothing does. *)
let with_eco_lock t (c : Serve_jobs.circuit) f =
  let e = find t c in
  let lookup c' = if key_of c' = e.key then e.job else (find t c').job in
  locked e.lock (fun () -> f ~lookup ~snapshot_for:(snapshot_on t e))

let stats t =
  locked t.tlock (fun () -> (Hashtbl.length t.tbl, t.used, t.cap_bytes))
