(** The fuzzing subsystem's single randomness source.

    Every random decision of the fuzzer — specimen generation, mutation,
    oracle pattern sampling — flows through one of these generators, and
    every generator descends deterministically from one integer root
    seed. A failure report therefore only ever needs to name [(root
    seed, sample index)] to be replayed bit-for-bit; there is no
    [Random.self_init] or wall-clock seeding anywhere in the fuzzing
    path.

    The underlying stream is {!Util.Rng} (splitmix64), the repository's
    global deterministic source. *)

type t

val create : seed:int -> t
(** A root generator. *)

val seed : t -> int
(** The root seed this generator descends from (printed in every
    failure report). *)

val child : t -> int -> t
(** [child t i] is the [i]-th independent substream — a pure function
    of [(seed t, i)], unaffected by how much of [t] has been consumed.
    The driver gives sample [i] the stream [child root i], so any
    sample can be replayed without regenerating its predecessors. *)

val base : t -> Util.Rng.t
(** The underlying stream, for library APIs that take a {!Util.Rng.t}. *)

val int : t -> int -> int
(** Uniform in [0, bound). *)

val bool : t -> bool
val float : t -> float
val pick : t -> 'a array -> 'a
val shuffle : t -> 'a array -> unit

val qcheck_state : unit -> Random.State.t
(** A deterministic [Random.State.t] for QCheck-based property tests:
    seeded from [QCHECK_SEED] when set, else a fixed default, with the
    chosen seed printed to stderr so every reported counterexample is
    reproducible. This replaces QCheck's wall-clock self-seeding. *)
