(** Variable-latency (telescopic) units synthesized from the SPCF — the
    application of refs [27, 28] the paper's Sec. 3 builds on. The
    masking circuit's indicators double as the hold function. *)

type report = {
  fast_clock : float;
  slow_clock : float;
  hold_probability : float;
  expected_latency_cycles : float;
  expected_time : float;
  speedup_vs_fixed : float;
  hold_exact_probability : float;
}

val analyze : Synthesis.t -> report

val validate : ?samples:int -> ?seed:int -> Synthesis.t -> bool
(** Whenever hold is low, every critical output settles within the fast
    clock (checked against exact per-pattern stabilization times). *)

val pp : Format.formatter -> report -> unit
