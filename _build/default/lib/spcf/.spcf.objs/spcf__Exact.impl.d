lib/spcf/exact.ml: Array Bdd Ctx Hashtbl List Logic2 Network Sta Unix
