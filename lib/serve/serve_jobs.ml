(* Shared job runners: the bodies of the lint / spcf / paths / protect
   / eco subcommands, rendered into a buffer instead of stdout.

   Both entry points delegate here — `emask <job>` prints the buffer
   on stdout and exits with the returned code, `emask serve` ships it
   back in a response frame — so a served response is byte-identical
   to the one-shot CLI for the same inputs by construction, not by
   test discipline. Nothing in a runner touches process-global state:
   ledger facts go through the caller-supplied [note] sink (the CLI
   passes the global note store, the server a per-request collector),
   circuits come from the caller-supplied [lookup] (direct load for
   the CLI, the LRU for the server), and failures raise — the CLI
   maps them to stderr + exit 2, the server to an error response. *)

type circuit = { spec : string; source : string option }

type entry = {
  e_spec : string;
  e_source : string option;
  e_src : Blif.source option;  (** parsed raw source for inline circuits *)
  e_net : Network.t;
  e_mc : Mapped.t Lazy.t;
}

type lookup = circuit -> entry

(* A note sink for ledger facts; [None] when no ledger is configured,
   so runners skip the digest work exactly like the one-shot CLI. *)
type note = (string -> Obs_json.t -> unit) option

let put n k v = match n with Some f -> f k v | None -> ()

let lazy_map net = lazy (Obs.with_span "map" (fun () -> Mapper.map net))

(* The shared loader: parse / suite-load under the "load" span, with
   the cheap error-only preflight gate ([Gate_failed] on errors). *)
let load_entry (c : circuit) =
  Obs.with_span "load" (fun () ->
      match c.source with
      | Some text ->
        let src = Blif.parse_source ~file:c.spec text in
        Analysis.Lint.gate_check ~what:c.spec (Analysis.Lint.preflight_source src);
        let net = Blif.elaborate src in
        {
          e_spec = c.spec;
          e_source = c.source;
          e_src = Some src;
          e_net = net;
          e_mc = lazy_map net;
        }
      | None ->
        let net = Suite.load c.spec in
        Analysis.Lint.gate_check ~what:c.spec (Analysis.Lint.preflight net);
        {
          e_spec = c.spec;
          e_source = None;
          e_src = None;
          e_net = net;
          e_mc = lazy_map net;
        })

(* Ledger facts about the circuit under analysis. The hash is the
   digest of the canonical BLIF serialization, so "same circuit,
   different file name" groups together in [emask report]. *)
let note_circuit note spec net =
  put note "circuit" (Obs_json.String spec);
  if note <> None then
    put note "circuit_sha"
      (Obs_json.String (Digest.to_hex (Digest.string (Blif.to_string net))))

let note_run note ~theta ~jobs =
  put note "theta" (Obs_json.Float theta);
  put note "jobs" (Obs_json.Int jobs)

(* --- budget-degradation reporting --------------------------------------- *)

let pp_reasons attempts =
  String.concat ", "
    (List.map
       (fun (tier, reason) ->
         Printf.sprintf "%s: %s"
           (Spcf.Governed.tier_to_string tier)
           (Budget.reason_to_string reason))
       attempts)

let report_spcf_degradation buf (o : Spcf.Governed.outcome) =
  if o.Spcf.Governed.tier <> Spcf.Governed.Exact then
    Printf.bprintf buf "budget: degraded to %s SPCF (%s); degraded outputs: %s\n"
      (Spcf.Governed.tier_to_string o.Spcf.Governed.tier)
      (pp_reasons o.Spcf.Governed.attempts)
      (String.concat ", "
         (List.map (fun (n, _, _) -> n) o.Spcf.Governed.result.Spcf.Ctx.outputs))

let report_synthesis_degradation buf (m : Masking.Synthesis.t) =
  if m.Masking.Synthesis.tier <> Spcf.Governed.Exact then
    Printf.bprintf buf "budget: degraded to %s (%s); degraded outputs: %s\n"
      (Spcf.Governed.tier_to_string m.Masking.Synthesis.tier)
      (pp_reasons m.Masking.Synthesis.attempts)
      (String.concat ", "
         (List.map
            (fun p -> p.Masking.Synthesis.name)
            m.Masking.Synthesis.per_output))

(* --- lint ---------------------------------------------------------------- *)

type lint_req = {
  l_fail_on : Analysis.Diag.severity;
  l_json : bool;
  l_contract : bool;
  l_theta : float;
  l_jobs : int;
}

(* Lint a circuit. Inline/file sources are first analyzed in raw form
   (the only form in which cycles and undriven/multiply-driven signals
   are even representable); if the source passes the error-level
   checks it is elaborated and the semantic + timing passes run on the
   mapped realization. Suite circuits skip the source stage. *)
let run_lint ~note buf (c : circuit) (r : lint_req) =
  let source_diags, net =
    match c.source with
    | Some text -> (
      match Blif.parse_source ~file:c.spec text with
      | src ->
        let ds = Analysis.Lint.source src in
        if Analysis.Diag.errors ds = [] then (ds, Some (Blif.elaborate src))
        else (ds, None)
      | exception Blif.Parse_error msg ->
        ([ Analysis.Diag.diag Analysis.Diag.Parse_error msg ], None))
    | None -> ([], Some (load_entry c).e_net)
  in
  (match net with Some n -> note_circuit note c.spec n | None -> ());
  let semantic_diags =
    match net with
    | None -> []
    | Some net ->
      (* For source circuits the structural passes already ran on the
         raw form; only the cover-semantic pass is new. Suite circuits
         get the full network pipeline. *)
      let net_ds =
        if c.source <> None then Analysis.Passes.net_const_gates net
        else Analysis.Lint.network net
      in
      let mc = Obs.with_span "map" (fun () -> Mapper.map net) in
      let mapped_ds =
        Analysis.Passes.mapped_unmapped_gates mc @ Analysis.Passes.sta_consistency mc
      in
      let contract_ds =
        if r.l_contract && Analysis.Diag.errors net_ds = [] then begin
          let options =
            {
              Masking.Synthesis.default_options with
              theta = r.l_theta;
              jobs = r.l_jobs;
            }
          in
          let m = Masking.Synthesis.synthesize ~options net in
          Analysis.Lint.masking m
        end
        else []
      in
      net_ds @ mapped_ds @ contract_ds
  in
  let diags = source_diags @ semantic_diags in
  if r.l_json then
    Buffer.add_string buf
      (Obs_json.to_string (Analysis.Diag.report_json ~name:c.spec diags) ^ "\n")
  else begin
    (* Same rendering as [Analysis.Diag.print]. *)
    List.iter
      (fun d -> Buffer.add_string buf (Analysis.Diag.to_string d ^ "\n"))
      (Analysis.Diag.sort diags);
    Printf.bprintf buf "lint: %s\n" (Analysis.Diag.summary diags)
  end;
  Analysis.Diag.exit_code ~fail_on:r.l_fail_on diags

(* --- spcf ---------------------------------------------------------------- *)

type spcf_req = {
  s_theta : float;
  s_algorithm : Spcf.Governed.algorithm;
  s_jobs : int;
}

let run_spcf ~note buf (lookup : lookup) (c : circuit) (r : spcf_req)
    (bspec : Budget.spec) =
  let entry = lookup c in
  let net = entry.e_net in
  note_circuit note c.spec net;
  note_run note ~theta:r.s_theta ~jobs:r.s_jobs;
  let mc = Lazy.force entry.e_mc in
  let o =
    Spcf.Governed.compute ~jobs:r.s_jobs ~spec:bspec ~algorithm:r.s_algorithm
      ~theta:r.s_theta mc
  in
  let ctx = o.Spcf.Governed.ctx and res = o.Spcf.Governed.result in
  put note "algorithm" (Obs_json.String res.Spcf.Ctx.algorithm);
  put note "tier"
    (Obs_json.String (Spcf.Governed.tier_to_string o.Spcf.Governed.tier));
  put note "compute_s" (Obs_json.Float res.Spcf.Ctx.runtime);
  Printf.bprintf buf "circuit: %s\n" c.spec;
  Printf.bprintf buf "gates: %d  area: %.1f  delta: %.3f  target: %.3f\n"
    (Mapped.gate_count mc) (Mapped.area mc) (Spcf.Ctx.delta ctx)
    res.Spcf.Ctx.target;
  Printf.bprintf buf "algorithm: %s  runtime: %.3fs\n" res.Spcf.Ctx.algorithm
    res.Spcf.Ctx.runtime;
  Printf.bprintf buf "critical outputs: %d\n" (Spcf.Ctx.num_critical_outputs res);
  List.iter
    (fun (name, _, sigma) ->
      Printf.bprintf buf "  %-16s critical minterms: %s\n" name
        (Extfloat.to_string (Bdd.satcount ctx.Spcf.Ctx.man sigma)))
    res.Spcf.Ctx.outputs;
  Printf.bprintf buf "total critical minterms: %s\n"
    (Extfloat.to_string (Spcf.Ctx.count ctx res));
  report_spcf_degradation buf o;
  0

(* --- paths --------------------------------------------------------------- *)

type paths_req = {
  p_band : float;
  p_max_paths : int;
  p_jobs : int;
  p_json : bool;
  p_fail_on : Analysis.Diag.severity;
}

(* A witness pattern as "a=1 b=0 ..." over the primary-input names. *)
let pp_witness mnet w =
  String.concat " "
    (Array.to_list
       (Array.mapi
          (fun i s ->
            Printf.sprintf "%s=%d" (Network.name_of mnet s) (if w.(i) then 1 else 0))
          (Network.inputs mnet)))

let paths_json spec mnet (report : Sensitization.report) diags =
  let open Obs_json in
  let path_json (c : Sensitization.classified) =
    let p = c.Sensitization.path in
    let base =
      [
        ("output", String p.Paths.output);
        ( "signals",
          List
            (Array.to_list
               (Array.map (fun s -> String (Network.name_of mnet s)) p.Paths.signals))
        );
        ("length", Float p.Paths.length);
        ("verdict", String (Sensitization.verdict_name c.Sensitization.verdict));
      ]
    in
    match c.Sensitization.verdict with
    | Sensitization.True w ->
      Obj
        (base
        @ [
            ( "witness",
              Obj
                (Array.to_list
                   (Array.mapi
                      (fun i s -> (Network.name_of mnet s, Bool w.(i)))
                      (Network.inputs mnet))) );
          ])
    | Sensitization.False -> Obj base
    | Sensitization.Unknown r ->
      Obj (base @ [ ("reason", String (Budget.reason_to_string r)) ])
  in
  let summary_json (s : Sensitization.summary) =
    Obj
      [
        ("output", String s.Sensitization.output);
        ("paths", Int s.Sensitization.num_paths);
        ("true", Int s.Sensitization.num_true);
        ("false", Int s.Sensitization.num_false);
        ("unknown", Int s.Sensitization.num_unknown);
        ("topological", Float s.Sensitization.topological);
        ("functional", Float s.Sensitization.functional);
      ]
  in
  let nt, nf, nu = Sensitization.counts report in
  Obj
    [
      ("circuit", String spec);
      ("delta", Float report.Sensitization.delta);
      ("band", Float report.Sensitization.band);
      ("target", Float report.Sensitization.target);
      ("truncated", Bool report.Sensitization.truncated);
      ("functional_delta", Float report.Sensitization.functional_delta);
      ("paths", List (List.map path_json report.Sensitization.paths));
      ("outputs", List (List.map summary_json report.Sensitization.summaries));
      ("verdicts", Obj [ ("true", Int nt); ("false", Int nf); ("unknown", Int nu) ]);
      ("diagnostics", List (List.map Analysis.Diag.to_json diags));
    ]

let run_paths ~note buf (lookup : lookup) (c : circuit) (r : paths_req)
    (bspec : Budget.spec) =
  let budget =
    if Budget.is_no_limits bspec then Budget.unlimited else Budget.instantiate bspec
  in
  let entry = lookup c in
  note_circuit note c.spec entry.e_net;
  put note "jobs" (Obs_json.Int r.p_jobs);
  let mc = Lazy.force entry.e_mc in
  let mnet = Mapped.network mc in
  let report =
    Sensitization.analyze ~band:r.p_band ~max_paths:r.p_max_paths ~jobs:r.p_jobs
      ~budget mc
  in
  let diags = Analysis.Passes.sensitization report in
  let nt, nf, nu = Sensitization.counts report in
  if r.p_json then
    Buffer.add_string buf
      (Obs_json.to_string (paths_json c.spec mnet report diags) ^ "\n")
  else begin
    Printf.bprintf buf "circuit: %s\n" c.spec;
    Printf.bprintf buf "delta: %.3f  band: %.3f  target: %.3f\n"
      report.Sensitization.delta report.Sensitization.band
      report.Sensitization.target;
    Printf.bprintf buf "near-critical paths: %d%s\n"
      (List.length report.Sensitization.paths)
      (if report.Sensitization.truncated then
         "  (truncated: enumeration capped, missed paths unclassified)"
       else "");
    List.iter
      (fun (cl : Sensitization.classified) ->
        let p = cl.Sensitization.path in
        Printf.bprintf buf "  %-8s %s: %s%s\n"
          (Sensitization.verdict_name cl.Sensitization.verdict)
          p.Paths.output (Paths.to_string mnet p)
          (match cl.Sensitization.verdict with
          | Sensitization.True w -> "  witness " ^ pp_witness mnet w
          | Sensitization.False -> ""
          | Sensitization.Unknown r -> "  (" ^ Budget.reason_to_string r ^ ")"))
      report.Sensitization.paths;
    List.iter
      (fun (s : Sensitization.summary) ->
        if s.Sensitization.num_paths > 0 then
          Printf.bprintf buf
            "output %-16s paths: %d (%d true, %d false, %d unknown)  arrival: \
             %.3f  functional: %.3f\n"
            s.Sensitization.output s.Sensitization.num_paths
            s.Sensitization.num_true s.Sensitization.num_false
            s.Sensitization.num_unknown s.Sensitization.topological
            s.Sensitization.functional)
      report.Sensitization.summaries;
    Printf.bprintf buf "functional delta: %.3f  (topological %.3f)\n"
      report.Sensitization.functional_delta report.Sensitization.delta;
    List.iter
      (fun d -> Printf.bprintf buf "%s\n" (Analysis.Diag.to_string d))
      (Analysis.Diag.sort diags);
    Printf.bprintf buf "verdicts: %d true, %d false, %d unknown\n" nt nf nu
  end;
  Analysis.Diag.exit_code ~fail_on:r.p_fail_on diags

(* --- protect ------------------------------------------------------------- *)

type protect_req = { m_theta : float; m_jobs : int; m_prune : bool }

let run_protect ~note ?out buf (lookup : lookup) (c : circuit) (r : protect_req)
    (bspec : Budget.spec) =
  let entry = lookup c in
  note_circuit note c.spec entry.e_net;
  note_run note ~theta:r.m_theta ~jobs:r.m_jobs;
  let options =
    {
      Masking.Synthesis.default_options with
      theta = r.m_theta;
      jobs = r.m_jobs;
      prune_false_paths = r.m_prune;
      budget = bspec;
    }
  in
  let m = Masking.Synthesis.synthesize ~options entry.e_net in
  put note "tier"
    (Obs_json.String (Spcf.Governed.tier_to_string m.Masking.Synthesis.tier));
  let v = Masking.Verify.check m in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "circuit: %s@." c.spec;
  Format.fprintf ppf "%a@." Masking.Verify.pp v;
  (match m.Masking.Synthesis.pruned with
  | [] -> ()
  | pruned ->
    Format.fprintf ppf "pruned false-path outputs: %s@." (String.concat ", " pruned));
  Format.pp_print_flush ppf ();
  report_synthesis_degradation buf m;
  (match out with
  | Some path ->
    Blif.write_file ~model:(Filename.basename path) path
      (Mapped.network m.Masking.Synthesis.combined);
    Printf.bprintf buf "combined circuit written to %s\n" path
  | None -> ());
  0

(* --- eco ----------------------------------------------------------------- *)

type eco_req = {
  c_edits_name : string;  (** display name (the CLI's --edits path) *)
  c_edits : string;  (** edit-sequence text *)
  c_theta : float;
  c_band : float option;
  c_jobs : int;
  c_json : bool;
  c_check : bool;
}

(* The baseline snapshot is the expensive, circuit-pure half of an eco
   job; the server memoizes it per (circuit, theta, band) through this
   hook. The default recomputes from scratch — the one-shot path. *)
type snapshot_for =
  theta:float -> band:float option -> jobs:int -> budget:Budget.t -> Eco.design -> Eco.t

let default_snapshot ~theta ~band ~jobs ~budget d0 =
  Eco.snapshot ~theta ?band ~jobs ~budget d0

let eco_json spec ~edits ~jobs ~check_result (base : Eco.t) (t : Eco.t) =
  let open Obs_json in
  let st = t.Eco.stats in
  Obj
    ([
       ("circuit", String spec);
       ("edits", Int (List.length edits));
       ("theta", Float t.Eco.theta);
       ("jobs", Int jobs);
       ("delta_before", Float base.Eco.delta);
       ("delta_after", Float t.Eco.delta);
       ("target", Float t.Eco.target);
       ("total_signals", Int st.Eco.total_signals);
       ("dirty_signals", Int st.Eco.dirty_signals);
       ("funcs_reused", Int st.Eco.funcs_reused);
       ("funcs_rebuilt", Int st.Eco.funcs_rebuilt);
       ("sigmas_reused", Int st.Eco.sigmas_reused);
       ("sigmas_recomputed", Int st.Eco.sigmas_recomputed);
       ("delta_changed", Bool st.Eco.delta_changed);
       ("critical_outputs", List (List.map (fun (n, _, _) -> String n) t.Eco.sigmas));
       ("fingerprint", String (Eco.fingerprint t));
     ]
    @ (match t.Eco.band with Some b -> [ ("band", Float b) ] | None -> [])
    @
    match check_result with
    | None -> []
    | Some ok -> [ ("check", String (if ok then "identical" else "DIVERGED")) ])

let run_eco ~note ?(snapshot_for = default_snapshot) buf (lookup : lookup)
    (c : circuit) (r : eco_req) (bspec : Budget.spec) =
  let budget =
    if Budget.is_no_limits bspec then Budget.unlimited else Budget.instantiate bspec
  in
  let entry = lookup c in
  note_circuit note c.spec entry.e_net;
  note_run note ~theta:r.c_theta ~jobs:r.c_jobs;
  let mc = Lazy.force entry.e_mc in
  let d0 = Eco.design_of_mapped mc in
  let edits = Eco.parse_edits d0 r.c_edits in
  let base =
    Obs.with_span "eco.baseline" (fun () ->
        snapshot_for ~theta:r.c_theta ~band:r.c_band ~jobs:r.c_jobs ~budget d0)
  in
  let t = Obs.with_span "eco.recompute" (fun () -> Eco.recompute ~jobs:r.c_jobs base edits) in
  let check_result =
    if not r.c_check then None
    else
      Some
        (Obs.with_span "eco.check" (fun () ->
             let full =
               Eco.snapshot ~theta:r.c_theta ?band:r.c_band ~jobs:r.c_jobs ~budget
                 t.Eco.design
             in
             Eco.canonical full = Eco.canonical t))
  in
  let st = t.Eco.stats in
  put note "edits" (Obs_json.Int (List.length edits));
  put note "dirty_signals" (Obs_json.Int st.Eco.dirty_signals);
  if r.c_json then
    Buffer.add_string buf
      (Obs_json.to_string
         (eco_json c.spec ~edits ~jobs:r.c_jobs ~check_result base t)
      ^ "\n")
  else begin
    Printf.bprintf buf "circuit: %s\n" c.spec;
    Printf.bprintf buf "edits: %d  (from %s)\n" (List.length edits) r.c_edits_name;
    Printf.bprintf buf "delta: %.3f -> %.3f%s  target: %.3f  (theta %.3f)\n"
      base.Eco.delta t.Eco.delta
      (if st.Eco.delta_changed then "  [changed: all targets re-derived]" else "")
      t.Eco.target r.c_theta;
    Printf.bprintf buf "dirty cone: %d of %d signals\n" st.Eco.dirty_signals
      st.Eco.total_signals;
    Printf.bprintf buf "node functions: %d reused, %d rebuilt\n" st.Eco.funcs_reused
      st.Eco.funcs_rebuilt;
    Printf.bprintf buf "output SPCFs:   %d reused, %d recomputed\n"
      st.Eco.sigmas_reused st.Eco.sigmas_recomputed;
    Printf.bprintf buf "critical outputs: %s\n"
      (match t.Eco.sigmas with
      | [] -> "(none)"
      | l -> String.concat ", " (List.map (fun (n, _, _) -> n) l));
    (match t.Eco.sens with
    | None -> ()
    | Some rep ->
      let nt, nf, nu = Sensitization.counts rep in
      Printf.bprintf buf "sensitization: %d paths (%d true, %d false, %d unknown)\n"
        (List.length rep.Sensitization.paths)
        nt nf nu);
    Printf.bprintf buf "fingerprint: %s\n" (Eco.fingerprint t);
    match check_result with
    | None -> ()
    | Some true ->
      Printf.bprintf buf
        "check: incremental = full recompute (canonical forms identical)\n"
    | Some false ->
      Printf.bprintf buf
        "check: DIVERGED — incremental differs from full recompute\n"
  end;
  match check_result with Some false -> 1 | _ -> 0

(* --- the CLI exception boundary, shared ---------------------------------- *)

(* One classification for both frontends: the CLI prints
   "emask: error CODE: MSG" and exits 2, the server ships the same
   code/message in an error response. [Gate_failed] keeps its own
   (codeless) CLI rendering, so it is not listed here. *)
let error_code = function
  | Blif.Parse_error msg -> Some ("BLIF001", msg)
  | Sys_error msg -> Some ("IO001", msg)
  | Failure msg -> Some ("CLI001", msg)
  | Invalid_argument msg -> Some ("CLI002", msg)
  | Budget.Budget_exceeded r ->
    Some ("BUDGET001", "resource budget exhausted: " ^ Budget.reason_to_string r)
  | _ -> None
