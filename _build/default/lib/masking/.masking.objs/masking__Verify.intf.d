lib/masking/verify.mli: Extfloat Format Synthesis
