(** The serve daemon's circuit cache: an LRU over loaded (parsed +
    mapped) circuits keyed by content digest, with eco baseline
    snapshots memoized per (circuit, theta, band).

    Keying by the digest of the source text (or the suite name) means
    an edited file is a clean miss — there is no invalidation protocol
    to get wrong. Hits and misses feed the [serve.cache.*] counters in
    {!Serve_metrics}. *)

type t

val create : cap_mb:int -> t
(** A cache holding roughly [cap_mb] MiB of circuits (sizes are
    order-of-magnitude estimates; eviction is least-recently-used and
    always leaves at least one entry). *)

val key_of : Serve_jobs.circuit -> string

val lookup : t -> Serve_jobs.lookup
(** The [lookup] handed to job runners: LRU hit, or
    {!Serve_jobs.load_entry} (mapping forced) + insert. *)

val with_eco_lock :
  t ->
  Serve_jobs.circuit ->
  (lookup:Serve_jobs.lookup ->
  snapshot_for:Serve_jobs.snapshot_for ->
  'a) ->
  'a
(** Serialize an eco job on its circuit's entry: wraps baseline reuse
    and the manager-mutating recompute. The entry is resolved once and
    pinned — [lookup] and [snapshot_for] passed to the callback always
    answer for that same entry, so the lock held and the manager
    mutated cannot diverge even if the key is evicted and reloaded
    mid-job. Eco jobs on different circuits still run in parallel. *)

val stats : t -> int * int * int
(** [(entries, used_bytes, cap_bytes)]. *)
