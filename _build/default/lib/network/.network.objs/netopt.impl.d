lib/network/netopt.ml: Array Hashtbl Lazy List Logic2 Network Option Printf
