(* Tests for the benchmark suite and the synthetic circuit generator:
   interface conformance to the paper's Tables 1-2, determinism, BDD
   tractability, and timing-structure properties. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_suite_io_counts () =
  List.iter
    (fun e ->
      let net = Suite.network e in
      check_int
        (e.Suite.ename ^ " inputs")
        e.Suite.params.Generator.n_pi
        (Array.length (Network.inputs net));
      check_int
        (e.Suite.ename ^ " outputs")
        e.Suite.params.Generator.n_po
        (Array.length (Network.outputs net)))
    Suite.all

let test_suite_names () =
  check_int "20 circuits" 20 (List.length Suite.all);
  check_int "5 table-1 circuits" 5 (List.length Suite.table1_entries);
  check "find works" true ((Suite.find "C432").Suite.ename = "C432");
  check "find rejects unknown" true
    (try
       ignore (Suite.find "nope");
       false
     with Invalid_argument _ -> true)

let test_generator_determinism () =
  let e = Suite.find "C880" in
  let a = Suite.network e and b = Suite.network e in
  check "same seed, same circuit" true (Network.equivalent a b);
  let p = { e.Suite.params with seed = e.Suite.params.seed + 1 } in
  let c = Generator.generate p in
  (* Different seeds virtually never coincide. *)
  check "different seed, different circuit" false (Network.equivalent a c)

let test_generator_gate_counts () =
  (* Mapped gate counts land in the same ballpark as the paper's. Small
     benchmarks carry a fixed overhead for the deliberate near-critical
     chains (see DESIGN.md), hence the additive allowance. *)
  List.iter
    (fun e ->
      let mc = Mapper.map (Suite.network e) in
      let g = float_of_int (Mapped.gate_count mc) in
      let p = float_of_int e.Suite.paper_gates in
      check
        (Printf.sprintf "%s gates %.0f vs paper %.0f" e.Suite.ename g p)
        true
        (g > 0.25 *. p && g < (3.0 *. p) +. 80.))
    Suite.all

let test_generator_bdd_tractable () =
  (* The structural invariant: every suite circuit elaborates to BDDs in
     bounded node counts (no exponential blowup), even the 882-input one. *)
  List.iter
    (fun name ->
      let net = Suite.load name in
      let man, _ = Network.to_bdds net in
      check (name ^ " bdd bounded") true (Bdd.num_nodes man < 300_000))
    [ "sparc_ifu_ifqdp"; "sparc_exu_ecl"; "C2670"; "k2"; "apex6" ]

let test_generator_no_dangling () =
  (* All generated logic is reachable from the outputs. *)
  List.iter
    (fun name ->
      let net = Suite.load name in
      let outs = Array.to_list (Network.output_signals net) in
      let cone = Network.cone net outs in
      let dead = ref 0 in
      Array.iter
        (fun s -> if (not cone.(s)) && not (Network.is_input net s) then incr dead)
        (Network.topo_order net);
      check_int (name ^ " dead nodes") 0 !dead)
    [ "i1"; "C432"; "C2670"; "lsu_stb_ctl" ]

let test_generator_speed_paths_sensitizable () =
  (* The design property that makes the suite useful for this paper:
     every circuit has a non-empty exact SPCF at 0.9 delta. *)
  List.iter
    (fun name ->
      let net = Suite.load name in
      let mc = Mapper.map net in
      let ctx = Spcf.Ctx.create mc in
      let r = Spcf.Exact.short_path ctx ~target:(Spcf.Ctx.target_of_theta ctx 0.9) in
      check (name ^ " has critical outputs") true (r.Spcf.Ctx.outputs <> []);
      check (name ^ " nonempty SPCF") true (r.Spcf.Ctx.union <> Bdd.bfalse))
    [ "i1"; "cmb"; "x2"; "cu"; "C432"; "C880"; "C2670"; "sparc_ifu_invctl"; "frg1" ]

let test_comparator_structure () =
  let net = Comparator.network () in
  check_int "4 inputs" 4 (Array.length (Network.inputs net));
  check_int "7 nodes" 7 (Network.num_nodes net);
  (* y = (a1a0 >= b1b0) semantics. *)
  for i = 0 to 15 do
    let a0 = i land 1 = 1 and a1 = i lsr 1 land 1 = 1 in
    let b0 = i lsr 2 land 1 = 1 and b1 = i lsr 3 land 1 = 1 in
    let a = (if a1 then 2 else 0) + if a0 then 1 else 0 in
    let b = (if b1 then 2 else 0) + if b0 then 1 else 0 in
    let out = Network.eval_outputs net [| a0; a1; b0; b1 |] in
    check "comparator semantics" true (out.(0) = (a >= b))
  done

let test_rng_determinism () =
  let a = Util.Rng.create 7 and b = Util.Rng.create 7 in
  for _ = 1 to 100 do
    check "stream equal" true (Util.Rng.int a 1000 = Util.Rng.int b 1000)
  done;
  let c = Util.Rng.create 8 in
  let diffs = ref 0 in
  for _ = 1 to 100 do
    if Util.Rng.int a 1000 <> Util.Rng.int c 1000 then incr diffs
  done;
  check "different seed differs" true (!diffs > 50);
  (* float range *)
  let r = Util.Rng.create 9 in
  for _ = 1 to 1000 do
    let f = Util.Rng.float r in
    check "float in [0,1)" true (f >= 0. && f < 1.)
  done

let () =
  Alcotest.run "circuits"
    [
      ( "suite",
        [
          Alcotest.test_case "io counts" `Slow test_suite_io_counts;
          Alcotest.test_case "names" `Quick test_suite_names;
          Alcotest.test_case "gate counts" `Slow test_generator_gate_counts;
        ] );
      ( "generator",
        [
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
          Alcotest.test_case "bdd tractable" `Slow test_generator_bdd_tractable;
          Alcotest.test_case "no dangling logic" `Quick test_generator_no_dangling;
          Alcotest.test_case "sensitizable speed paths" `Slow
            test_generator_speed_paths_sensitizable;
        ] );
      ( "comparator",
        [ Alcotest.test_case "structure + semantics" `Quick test_comparator_structure ]
      );
      ("rng", [ Alcotest.test_case "determinism" `Quick test_rng_determinism ]);
    ]
