lib/sim/power.ml: Array Bitsim Mapped Util
