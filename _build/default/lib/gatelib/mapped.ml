(* A technology-mapped (gate-level) circuit: a Boolean network in which
   every internal node is an instance of a library cell. *)

type t = {
  net : Network.t;
  mutable cells : Cell.t option array;
  mutable gensym : int;
}

let create () = { net = Network.create (); cells = Array.make 64 None; gensym = 0 }

let network t = t.net

let ensure_capacity t =
  let n = Network.num_signals t.net in
  if n > Array.length t.cells then begin
    let cap = max (n * 2) (Array.length t.cells * 2) in
    t.cells <- Array.init cap (fun i -> if i < Array.length t.cells then t.cells.(i) else None)
  end

let add_input t name =
  let s = Network.add_input t.net name in
  ensure_capacity t;
  s

let fresh_name t prefix =
  let rec next () =
    let name = Printf.sprintf "%s%d" prefix t.gensym in
    t.gensym <- t.gensym + 1;
    if Network.find t.net name = None then name else next ()
  in
  next ()

let add_gate t ?name cell fanins =
  if Array.length fanins <> cell.Cell.arity then
    invalid_arg "Mapped.add_gate: fanin count must match cell arity";
  let name = match name with Some n -> n | None -> fresh_name t ("g_" ^ cell.Cell.cname ^ "_") in
  let s = Network.add_node t.net name ~fanins ~func:cell.Cell.logic in
  ensure_capacity t;
  t.cells.(s) <- Some cell;
  s

let mark_output t ?name s = Network.mark_output t.net ?name s

let cell_of t s = if s < Array.length t.cells then t.cells.(s) else None

let gate_count t =
  let c = ref 0 in
  for s = 0 to Network.num_signals t.net - 1 do
    if cell_of t s <> None then incr c
  done;
  !c

let area t =
  let a = ref 0. in
  for s = 0 to Network.num_signals t.net - 1 do
    match cell_of t s with Some c -> a := !a +. c.Cell.area | None -> ()
  done;
  !a

(* Capacitive load on each signal: the input capacitance of every fanout
   pin, plus a default load on primary outputs. *)
let output_load = 2.0

let loads t =
  let n = Network.num_signals t.net in
  let load = Array.make n 0. in
  for s = 0 to n - 1 do
    match Network.node_of t.net s with
    | None -> ()
    | Some nd ->
      let cap = match cell_of t s with Some c -> c.Cell.input_cap | None -> 1.0 in
      Array.iter (fun f -> load.(f) <- load.(f) +. cap) nd.Network.fanins
  done;
  Array.iter (fun (_, s) -> load.(s) <- load.(s) +. output_load) (Network.outputs t.net);
  load

(* Copy all gates of [src] into [dst]. Primary inputs are matched by name
   and must already exist in [dst]; internal signals are renamed with
   [prefix]. Returns the signal map from src to dst. *)
let append dst ~prefix src =
  let n = Network.num_signals (network src) in
  let map = Array.make n (-1) in
  Array.iter
    (fun s ->
      let name = Network.name_of (network src) s in
      match Network.find dst.net name with
      | Some d -> map.(s) <- d
      | None ->
        invalid_arg (Printf.sprintf "Mapped.append: input %S missing in target" name))
    (Network.inputs (network src));
  Array.iter
    (fun s ->
      match Network.node_of (network src) s with
      | None -> ()
      | Some nd ->
        let cell =
          match cell_of src s with
          | Some c -> c
          | None -> invalid_arg "Mapped.append: source gate without a cell"
        in
        let name = prefix ^ Network.name_of (network src) s in
        let fanins = Array.map (fun f -> map.(f)) nd.Network.fanins in
        map.(s) <- add_gate dst ~name cell fanins)
    (Network.topo_order (network src));
  map

let pp fmt t =
  Format.fprintf fmt "mapped: %d gates, area %.1f" (gate_count t) (area t)
