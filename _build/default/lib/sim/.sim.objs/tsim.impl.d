lib/sim/tsim.ml: Array Float List Logic2 Mapped Network Util
