lib/logic2/truth.ml: Array Bytes Cover Cube List
