lib/masking/synthesis.ml: Array Bdd Cell Hashtbl Isop Lazy List Logic2 Mapped Mapper Netopt Network Spcf Sta
