lib/logic2/cube.mli: Bits Format
