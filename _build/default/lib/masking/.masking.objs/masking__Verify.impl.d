lib/masking/verify.ml: Array Bdd Extfloat Format List Mapped Network Power Spcf Sta String Synthesis
