lib/gatelib/mapped.mli: Cell Format Network
