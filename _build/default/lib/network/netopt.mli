(** Technology-independent network optimization: constant folding, wire
    collapsing, bounded elimination (inlining small node functions into
    their fanouts) and XOR-chain rebalancing. Function-preserving; used
    between don't-care simplification and technology mapping. *)

type limits = {
  max_sub_cubes : int;  (** largest cover (in cubes) eligible for inlining *)
  max_result_cubes : int;  (** size bound on a fanout cover after inlining *)
  passes : int;
}

val default_limits : limits

val rebalance_xor : Network.t -> Network.t
(** Rebuild maximal single-fanout XOR/XNOR chains as balanced trees. *)

val collapse_chains : ?min_len:int -> Network.t -> Network.t
(** Collapse single-fanout chains by balanced composition of per-node
    affine decompositions f(x,s) = (x ∧ A(s)) ⊕ B(s) — the
    carry-lookahead trick. Depth O(log m) for an m-node chain. *)

val optimize : ?limits:limits -> ?collapse:bool -> Network.t -> Network.t
(** Full pipeline: repeated elimination passes, dead-logic sweep, XOR
    rebalancing, and (with [collapse]) affine chain collapsing. The
    result is functionally equivalent (checkable with
    [Network.equivalent]). *)
