(** Aggressive dynamic voltage scaling under error masking (the paper's
    future-work item (ii)): sweep the normalized supply, slowing gates
    as 1/v and saving energy as v², and measure raw vs masked error
    rates at the nominal clock. *)

type sample = {
  voltage : float;
  energy : float;
  raw_error_rate : float;
  masked_error_rate : float;
}

val delay_factor : float -> float
val energy_of : float -> float

val sweep :
  ?trials:int -> ?seed:int -> ?voltages:float list -> Synthesis.t -> sample list

val pp : Format.formatter -> sample -> unit
