(** Prime implicant generation. *)

val of_cover : Cover.t -> Cover.t
(** All prime implicants of the function denoted by the cover, by
    iterated consensus with absorption. *)

val quine_mccluskey : Truth.t -> Cover.t
(** All prime implicants of a small function given as a truth table. *)

val onset_and_offset_primes : Cover.t -> Cover.t * Cover.t
(** [(on_primes, off_primes)] — the set [P] of the paper's Eqn. 1. *)
