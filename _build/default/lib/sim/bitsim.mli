(** Bit-parallel zero-delay logic simulation (62 patterns per word). *)

type t

val prepare : Network.t -> t
val of_mapped : Mapped.t -> t

val eval_word : t -> int array -> int array
(** [eval_word t pi_words] evaluates all signals; [pi_words.(i)] packs the
    i-th primary input across patterns, one per bit. *)

val random_pi_words : t -> Util.Rng.t -> int array

val toggle_counts : t -> Util.Rng.t -> rounds:int -> int array * int
(** Per-signal toggle counts over consecutive random patterns, and the
    number of pattern pairs simulated. *)

val activities : t -> Util.Rng.t -> rounds:int -> float array
(** Per-signal toggle probability. *)
