lib/gatelib/mapper.ml: Array Cell Hashtbl Lazy List Logic2 Mapped Network
