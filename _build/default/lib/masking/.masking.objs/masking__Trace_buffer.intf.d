lib/masking/trace_buffer.mli: Format Synthesis
