(* Global instrumentation registry. Single-threaded by design, like the
   rest of the repository: no locks, plain mutable state.

   The zero-cost-when-disabled discipline: every recording entry point
   ([incr], [add], [observe], [enter], ...) is a tiny wrapper that
   branches on [on_flag] and tail-calls the real implementation, so the
   disabled path is one load + one conditional and never allocates.
   Registration of counters/histograms happens lazily on the first
   recording, which keeps the registry empty after a disabled run. *)

let on_flag = ref false
let on () = !on_flag
let set_enabled b = on_flag := b

let () =
  match Sys.getenv_opt "EMASK_OBS" with
  | None | Some "" | Some "0" -> ()
  | Some _ -> on_flag := true

let debug_flag =
  let set v = match v with None | Some "" | Some "0" -> false | Some _ -> true in
  set (Sys.getenv_opt "EMASK_OBS_DEBUG") || set (Sys.getenv_opt "EMASK_GEN_DEBUG")

let debug () = debug_flag

(* Monotonic clock, one code path for all timing: clock_gettime
   (CLOCK_MONOTONIC) through a one-function C stub, so spans and
   reported runtimes cannot go negative under NTP wall-clock steps.
   Seconds from an arbitrary origin; only differences are meaningful. *)
external monotonic_now : unit -> float = "emask_obs_monotonic_now"

let now () = monotonic_now ()

(* --- counters ---------------------------------------------------------- *)

type counter = { cname : string; mutable count : int; mutable cregistered : bool }

let all_counters : counter list ref = ref [] (* reverse first-use order *)
let counter cname = { cname; count = 0; cregistered = false }

let register_counter c =
  if not c.cregistered then begin
    c.cregistered <- true;
    all_counters := c :: !all_counters
  end

let add_slow c n =
  register_counter c;
  c.count <- c.count + n

let[@inline] incr c = if !on_flag then add_slow c 1
let[@inline] add c n = if !on_flag then add_slow c n

let record_max_slow c n =
  register_counter c;
  if n > c.count then c.count <- n

let[@inline] record_max c n = if !on_flag then record_max_slow c n
let counter_value c = c.count

(* --- histograms -------------------------------------------------------- *)

(* Bucket 0 holds sample 0; bucket i >= 1 holds [2^(i-1), 2^i). 64
   buckets cover the whole nonnegative int range. *)
type histogram = {
  hname : string;
  mutable hregistered : bool;
  mutable n : int;
  mutable sum : int;
  mutable max : int;
  buckets : int array;
}

type hist_stats = {
  hn : int;
  hsum : int;
  hmax : int;
  hbuckets : (int * int) list;
}

let all_histograms : histogram list ref = ref []

let histogram hname =
  { hname; hregistered = false; n = 0; sum = 0; max = 0; buckets = Array.make 64 0 }

let bucket_index v =
  if v <= 0 then 0
  else begin
    let i = ref 1 and v = ref v in
    while !v > 1 do
      v := !v lsr 1;
      Stdlib.incr i
    done;
    !i
  end

let bucket_lower i = if i = 0 then 0 else 1 lsl (i - 1)

let observe_slow h v =
  if not h.hregistered then begin
    h.hregistered <- true;
    all_histograms := h :: !all_histograms
  end;
  let v = Stdlib.max 0 v in
  h.n <- h.n + 1;
  h.sum <- h.sum + v;
  if v > h.max then h.max <- v;
  let i = bucket_index v in
  h.buckets.(i) <- h.buckets.(i) + 1

let[@inline] observe h v = if !on_flag then observe_slow h v

let histogram_stats h =
  let hbuckets = ref [] in
  for i = Array.length h.buckets - 1 downto 0 do
    if h.buckets.(i) > 0 then hbuckets := (bucket_lower i, h.buckets.(i)) :: !hbuckets
  done;
  { hn = h.n; hsum = h.sum; hmax = h.max; hbuckets = !hbuckets }

(* --- spans ------------------------------------------------------------- *)

type span = {
  sname : string;
  mutable calls : int;
  mutable total : float;
  mutable children : span list;
  mutable live : int;
  mutable started : float;
}

let make_span sname =
  { sname; calls = 0; total = 0.; children = []; live = 0; started = 0. }

let root_span = ref (make_span "root")
let stack : span list ref = ref []

let root () = !root_span

let child_of parent name =
  let rec find = function
    | [] ->
      let s = make_span name in
      parent.children <- s :: parent.children;
      s
    | s :: rest -> if s.sname = name then s else find rest
  in
  find parent.children

let enter_slow name =
  (* Recursive re-entry: if a span with this name is already open on the
     stack, accumulate into it instead of growing a same-name chain;
     only its outermost activation contributes wall time. *)
  let rec open_ancestor = function
    | [] -> None
    | s :: rest -> if s.sname = name then Some s else open_ancestor rest
  in
  let s =
    match open_ancestor !stack with
    | Some s -> s
    | None ->
      let parent = match !stack with s :: _ -> s | [] -> !root_span in
      child_of parent name
  in
  s.calls <- s.calls + 1;
  if s.live = 0 then s.started <- now ();
  s.live <- s.live + 1;
  stack := s :: !stack

let[@inline] enter name = if !on_flag then enter_slow name

let leave_slow () =
  match !stack with
  | [] -> () (* unmatched leave (e.g. enabled mid-run): ignore *)
  | s :: rest ->
    stack := rest;
    s.live <- s.live - 1;
    if s.live = 0 then s.total <- s.total +. (now () -. s.started)

let[@inline] leave () = if !on_flag then leave_slow ()

let with_span name f =
  if not !on_flag then f ()
  else begin
    enter_slow name;
    Fun.protect ~finally:leave_slow f
  end

let timed name f =
  let t0 = now () in
  let finish () = now () -. t0 in
  if not !on_flag then begin
    let r = f () in
    (r, finish ())
  end
  else begin
    enter_slow name;
    let r = Fun.protect ~finally:leave_slow f in
    (r, finish ())
  end

(* --- registry ---------------------------------------------------------- *)

let registered_counters () =
  List.rev_map (fun c -> (c.cname, c.count)) !all_counters

let registered_histograms () =
  List.rev_map (fun h -> (h.hname, histogram_stats h)) !all_histograms

let reset () =
  List.iter
    (fun c ->
      c.count <- 0;
      c.cregistered <- false)
    !all_counters;
  all_counters := [];
  List.iter
    (fun h ->
      h.hregistered <- false;
      h.n <- 0;
      h.sum <- 0;
      h.max <- 0;
      Array.fill h.buckets 0 (Array.length h.buckets) 0)
    !all_histograms;
  all_histograms := [];
  root_span := make_span "root";
  stack := []
