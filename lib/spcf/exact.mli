(** Exact SPCF computation under floating-mode timing semantics
    (the paper's Eqn. 1, refined per output value). *)

type options = {
  arrival_shortcut : bool;
      (** cut recursion once the budget reaches the structural arrival
          time — the "short-path" insight of the proposed algorithm *)
  share_across_outputs : bool;
      (** share the (signal, value, budget) memo table between outputs *)
}

val proposed_options : options
val path_based_options : options

val compute :
  Ctx.t -> opts:options -> algorithm:string -> target:float -> Ctx.result

val sigmas :
  Ctx.t ->
  opts:options ->
  outputs:(string * Network.signal) array ->
  target_units:int ->
  (string * Network.signal * Bdd.t) list
(** Per-output SPCFs for an explicit output set (no [Ctx.result]
    wrapper) — the unit of work one parallel worker performs. The memo
    is shared across the given outputs iff [opts.share_across_outputs]. *)

val sigmas_lateness :
  Ctx.t ->
  outputs:(string * Network.signal) array ->
  target_units:int ->
  (string * Network.signal * Bdd.t) list
(** Same, in the lateness (product-of-sums) formulation the path-based
    extension uses: fresh memo per output. *)

val short_path : Ctx.t -> target:float -> Ctx.result
(** The paper's proposed algorithm: exact, with memoized time budgets
    and the structural-arrival shortcut. *)

val path_based : Ctx.t -> target:float -> Ctx.result
(** The exact path-based extension of [22]: same result, explores
    path-delay suffixes without the shortcut or cross-output sharing. *)

val floating_delay : Ctx.t -> Network.signal -> float
(** Exact floating-mode (sensitizable) delay of a signal — the largest
    stabilization time over all input patterns. At most the structural
    arrival time; the gap is the signal's false-path slack. *)

val pattern_arrivals : Ctx.t -> bool array -> bool array * int array
(** [(values, arrival_units)] — exact floating-mode stabilization times
    of every signal for one input pattern (reference semantics). *)
