(** Event-driven gate-level timing simulation (transport delays). *)

type result = {
  final : bool array;  (** settled value per signal *)
  at_clock : bool array;  (** value per signal at the sampling edge *)
  last_change : float array;
  settle : float;  (** time of the last change anywhere *)
}

val simulate :
  Mapped.t ->
  delays:float array ->
  from_:bool array ->
  to_:bool array ->
  clock:float ->
  result
(** Steady state under [from_], inputs switch to [to_] at t = 0, sampled
    at [clock]. *)

val output_errors : Mapped.t -> result -> (string * Network.signal) list
(** Outputs whose captured value differs from their settled value. *)

val degraded_delays :
  float array -> factor:float -> on:(Network.signal -> bool) -> float array
(** Scale the delays of selected gates — the aging/wearout model. *)
