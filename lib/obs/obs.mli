(** Lightweight instrumentation: hierarchical spans, counters and
    log-bucketed histograms, behind one global on/off switch.

    Probes are designed to be free when observation is disabled: every
    recording entry point first branches on a single mutable bool and
    returns immediately, without allocating or touching the registry.
    Counters and histograms are created eagerly (usually at module
    initialisation) but only *register* themselves on their first
    recording while enabled — so after a disabled run the registry is
    exactly empty.

    Enabled either programmatically ([set_enabled true]) or by setting
    the environment variable [EMASK_OBS] to anything but ["0"] or the
    empty string. *)

val on : unit -> bool
(** Is observation currently enabled? *)

val set_enabled : bool -> unit

val debug : unit -> bool
(** Debug-print toggle for ad-hoc tracing ([EMASK_OBS_DEBUG]; the
    legacy [EMASK_GEN_DEBUG] is honoured for compatibility). Distinct
    from [on]: statistics collection does not imply stderr chatter. *)

val now : unit -> float
(** The clock used by every span and by [timed]: monotonic seconds from
    an arbitrary origin (only differences are meaningful, and they can
    never be negative). One code path for all timing, so CLI-reported
    runtimes and span totals agree. *)

(** {2 Counters} *)

type counter

val counter : string -> counter
(** Create a counter. Cheap; does not register until first use. *)

val incr : counter -> unit
val add : counter -> int -> unit

val record_max : counter -> int -> unit
(** High-water-mark gauge: keep the largest value seen. *)

val counter_value : counter -> int

(** {2 Histograms} *)

type histogram

val histogram : string -> histogram

val observe : histogram -> int -> unit
(** Record a non-negative sample into log2 buckets: bucket 0 holds 0,
    bucket [i >= 1] holds values in [[2^(i-1), 2^i)]. *)

type hist_stats = {
  hn : int;  (** number of samples *)
  hsum : int;
  hmax : int;
  hbuckets : (int * int) list;  (** (bucket lower bound, count), nonzero only *)
}

val histogram_stats : histogram -> hist_stats

(** {2 Spans}

    A span is a node in a tree keyed by name under its parent; entering
    the same name under the same parent accumulates into one node.
    Re-entrant (recursive) entries are counted as calls but only the
    outermost activation contributes wall time. *)

type span = {
  sname : string;
  mutable calls : int;
  mutable total : float;  (** accumulated seconds over closed activations *)
  mutable children : span list;  (** most recently created first *)
  mutable live : int;  (** currently-open activations (recursion depth) *)
  mutable started : float;  (** start of the outermost open activation *)
}

val enter : string -> unit
val leave : unit -> unit

val with_span : string -> (unit -> 'a) -> 'a
(** [enter]/[leave] around a thunk, exception-safe. When disabled the
    thunk runs directly. *)

val timed : string -> (unit -> 'a) -> 'a * float
(** Like [with_span] but always measures and returns the elapsed
    seconds, even when observation is disabled — for results (such as
    algorithm runtimes) that are part of normal output. *)

(** {2 Registry} *)

val root : unit -> span
(** The root of the span tree. Its [total] is meaningless; reporters
    show its children. *)

val registered_counters : unit -> (string * int) list
(** Counters touched while enabled, in first-use order. *)

val registered_histograms : unit -> (string * hist_stats) list

val reset : unit -> unit
(** Clear the span tree, zero and de-register every counter and
    histogram, and drop any open span stack. Does not change the
    enabled flag. *)
