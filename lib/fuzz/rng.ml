(* All fuzzing randomness descends from one root seed through Util.Rng
   (splitmix64). Child streams are pure functions of (root, index) so a
   failing sample replays without regenerating its predecessors. *)

type t = { root : int; rng : Util.Rng.t }

let create ~seed = { root = seed; rng = Util.Rng.create seed }
let seed t = t.root

(* Distinct odd multiplier keeps sibling streams decorrelated; the
   splitmix64 finalizer inside Util.Rng does the heavy mixing. *)
let child t i = { root = t.root; rng = Util.Rng.create (t.root lxor (((2 * i) + 1) * 0x2545F491)) }
let base t = t.rng
let int t bound = Util.Rng.int t.rng bound
let bool t = Util.Rng.bool t.rng
let float t = Util.Rng.float t.rng
let pick t a = Util.Rng.pick t.rng a
let shuffle t a = Util.Rng.shuffle t.rng a

let qcheck_announced = ref false

let qcheck_state () =
  let default = 0x5EED in
  let seed =
    match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> ( try int_of_string (String.trim s) with _ -> default)
    | None -> default
  in
  if not !qcheck_announced then begin
    qcheck_announced := true;
    Printf.eprintf "[fuzz] qcheck seed: %d (override with QCHECK_SEED)\n%!" seed
  end;
  Random.State.make [| seed |]
