(* End-to-end verification of a synthesized error-masking circuit:
   functional safety (the masked circuit is combinationally equivalent
   to the original — the mux can never corrupt an output), coverage
   (every SPCF pattern raises the indicator), prediction soundness
   (a raised indicator implies a correct prediction), the timing-slack
   requirement on the masking circuit, and the area/power overheads the
   paper reports in Table 2. *)

type report = {
  equivalent : bool;
  coverage_ok : bool;
  prediction_ok : bool;
  coverage_pct : float;
  critical_outputs : int;
  critical_minterms : Extfloat.t;
  delta_original : float;
  delta_masking : float;
  slack_pct : float;
  mux_delay_impact : float; (* combined delta - original delta *)
  area_original : float;
  area_total : float;
  area_overhead_pct : float;
  power_original : float;
  power_total : float;
  power_overhead_pct : float;
}

let c_outputs_checked = Obs.counter "verify.outputs_checked"
let c_power_rounds = Obs.counter "verify.power_rounds"

let check ?(power_rounds = 128) (m : Synthesis.t) =
  Obs.with_span "verify" @@ fun () ->
  let ctx = m.Synthesis.ctx in
  let man = ctx.Spcf.Ctx.man in
  (* Elaborate the combined circuit in the SPCF manager: input names and
     order match the original network's by construction. *)
  let cnet = Mapped.network m.Synthesis.combined in
  let cf, of_ =
    Obs.with_span "elaborate" (fun () ->
        let cf = Synthesis.bdds_in_man man cnet in
        let of_ = Synthesis.bdds_in_man man (Mapped.network m.Synthesis.original) in
        (cf, of_))
  in
  let onet = Mapped.network m.Synthesis.original in
  let orig_out name =
    match Array.find_opt (fun (n, _) -> n = name) (Network.outputs onet) with
    | Some (_, s) -> of_.(s)
    | None -> invalid_arg ("Verify.check: unknown output " ^ name)
  in
  (* Equivalence over every original output. *)
  let equivalent =
    Obs.with_span "equivalence" @@ fun () ->
    Array.for_all
      (fun (name, s) ->
        match String.index_opt name '_' with
        | _ when String.length name >= 5 && String.sub name (String.length name - 5) 5 = "__err"
          -> true
        | _ -> cf.(s) = orig_out name)
      (Network.outputs cnet)
  in
  (* Coverage and prediction checks per critical output. *)
  let coverage_ok = ref true and prediction_ok = ref true in
  let covered = ref Extfloat.zero and total = ref Extfloat.zero in
  Obs.enter "coverage";
  List.iter
    (fun (po : Synthesis.per_output) ->
      Obs.incr c_outputs_checked;
      let e = cf.(po.Synthesis.e_combined) in
      let y = cf.(po.Synthesis.y_combined) in
      let yt = cf.(po.Synthesis.ytilde_combined) in
      let sigma = po.Synthesis.sigma in
      if Bdd.bimply man sigma e <> Bdd.btrue then coverage_ok := false;
      if Bdd.bimply man e (Bdd.bxnor man y yt) <> Bdd.btrue then
        prediction_ok := false;
      covered := Extfloat.add !covered (Bdd.satcount man (Bdd.band man sigma e));
      total := Extfloat.add !total (Bdd.satcount man sigma))
    m.Synthesis.per_output;
  Obs.leave ();
  let coverage_pct =
    if Extfloat.is_zero !total then 100.
    else 100. *. Extfloat.to_float (Extfloat.div !covered !total)
  in
  (* Timing. *)
  Obs.enter "timing";
  let model = m.Synthesis.options.Synthesis.delay_model in
  let delta_original = m.Synthesis.delta in
  let sta_mask = Sta.analyze ~model m.Synthesis.masking in
  let delta_masking = Sta.delta sta_mask in
  let slack_pct = 100. *. (delta_original -. delta_masking) /. delta_original in
  let sta_combined = Sta.analyze ~model m.Synthesis.combined in
  let mux_delay_impact = Sta.delta sta_combined -. delta_original in
  Obs.leave ();
  (* Area and power. *)
  let area_original = Mapped.area m.Synthesis.original in
  let area_total = Mapped.area m.Synthesis.combined in
  let area_overhead_pct = 100. *. (area_total -. area_original) /. area_original in
  Obs.enter "power";
  Obs.add c_power_rounds (2 * power_rounds);
  let power_original = Power.total ~rounds:power_rounds m.Synthesis.original in
  let power_total = Power.total ~rounds:power_rounds m.Synthesis.combined in
  Obs.leave ();
  let power_overhead_pct = 100. *. (power_total -. power_original) /. power_original in
  {
    equivalent;
    coverage_ok = !coverage_ok;
    prediction_ok = !prediction_ok;
    coverage_pct;
    critical_outputs = List.length m.Synthesis.per_output;
    critical_minterms = Spcf.Ctx.count ctx m.Synthesis.spcf;
    delta_original;
    delta_masking;
    slack_pct;
    mux_delay_impact;
    area_original;
    area_total;
    area_overhead_pct;
    power_original;
    power_total;
    power_overhead_pct;
  }

let pp fmt r =
  Format.fprintf fmt
    "equiv=%b coverage=%b(%.1f%%) prediction=%b critPO=%d minterms=%s@ \
     delta %.3f -> masking %.3f (slack %.1f%%) mux impact %.3f@ area +%.1f%% power +%.1f%%"
    r.equivalent r.coverage_ok r.coverage_pct r.prediction_ok r.critical_outputs
    (Extfloat.to_string r.critical_minterms)
    r.delta_original r.delta_masking r.slack_pct r.mux_delay_impact
    r.area_overhead_pct r.power_overhead_pct
