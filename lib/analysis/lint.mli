(** Standard lint pipelines: compositions of the {!Passes} library used
    by [emask lint] and by the pre-flight checks guarding every
    SPCF / synthesis entry point. *)

val source : Blif.source -> Diag.t list
(** All source-level passes: multi-driver, undriven, cycles, dead
    cones, unused inputs, no-outputs. *)

val network : Network.t -> Diag.t list
(** All network-level passes on an elaborated network: unused inputs,
    dead cones, constant-provable gates, no-outputs. *)

val mapped : ?model:Sta.delay_model -> Mapped.t -> Diag.t list
(** Network-level passes on the underlying network, plus unmapped-gate
    and STA-consistency checks. *)

val masking : ?margin:float -> Masking.Synthesis.t -> Diag.t list
(** The masking-contract checks ({!Contract.check}) plus mapped-level
    lint of the combined circuit. *)

val preflight_source : Blif.source -> Diag.t list
(** The cheap error-only subset run before elaboration: multi-driver,
    undriven, cycles, no-outputs. Linear in the netlist; anything it
    reports would make {!Blif.elaborate} (and everything downstream)
    fail. *)

val preflight : Network.t -> Diag.t list
(** The cheap error-only subset for already-elaborated networks (the
    structural defects are unrepresentable there, so this reduces to
    the no-outputs check). *)

exception Gate_failed of string
(** A preflight gate tripped; the payload is the one-line summary
    ("WHAT: SUMMARY — run `emask lint` for details"). *)

val gate_check : what:string -> Diag.t list -> unit
(** Raise {!Gate_failed} if [diags] contains errors — the form for
    callers that must survive a bad circuit (the serve daemon turns it
    into a per-request error response). *)

val gate : what:string -> Diag.t list -> unit
(** Exit-code policy helper for CLI entry points: {!gate_check}, but a
    tripped gate prints the summary to [stderr] and exits with status
    2. *)
