(* Wire protocol for [emask serve]: one request, one response, one
   connection.

   A frame is a 4-byte big-endian length prefix followed by that many
   bytes of JSON. The length cap is a denial-of-service guard, not a
   real circuit-size limit (a 64 MiB BLIF is well past what the
   analyses handle interactively anyway).

   Requests:
     {"job": "lint"|"spcf"|"paths"|"protect"|"eco"|"ping"|"metrics"
             |"shutdown",
      "circuit": NAME, "source": BLIF-TEXT?, ...job parameters...}

   Responses:
     {"status": "ok", "exit": N, "output": S}
     {"status": "rejected"|"error", "code": C, "message": M}

   The parameter vocabulary deliberately mirrors the CLI flags
   (theta, band, jobs, json, contract, fail_on, max_paths, edits,
   check, timeout, max_nodes), including their validation: the daemon
   enforces the same domains the cmdliner converters do, so a request
   no CLI invocation could express is rejected, not silently
   interpreted. *)

exception Protocol_error of string

let max_frame = 64 * 1024 * 1024

(* --- framing ------------------------------------------------------------- *)

let really_read fd buf off len =
  let got = ref 0 in
  while !got < len do
    match Unix.read fd buf (off + !got) (len - !got) with
    | 0 -> raise (Protocol_error "connection closed mid-frame")
    | n -> got := !got + n
  done

let really_write fd buf off len =
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write fd buf (off + !sent) (len - !sent)
  done

let read_frame fd =
  let hdr = Bytes.create 4 in
  (match Unix.read fd hdr 0 4 with
  | 0 -> raise (Protocol_error "connection closed before frame")
  | n -> if n < 4 then really_read fd hdr n (4 - n));
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || len > max_frame then
    raise (Protocol_error (Printf.sprintf "frame length %d out of range" len));
  let body = Bytes.create len in
  really_read fd body 0 len;
  Bytes.unsafe_to_string body

let write_frame fd payload =
  let len = String.length payload in
  if len > max_frame then
    raise (Protocol_error (Printf.sprintf "frame length %d out of range" len));
  let msg = Bytes.create (4 + len) in
  Bytes.set_int32_be msg 0 (Int32.of_int len);
  Bytes.blit_string payload 0 msg 4 len;
  really_write fd msg 0 (4 + len)

(* --- requests ------------------------------------------------------------ *)

type request =
  | Lint of Serve_jobs.circuit * Serve_jobs.lint_req
  | Spcf of Serve_jobs.circuit * Serve_jobs.spcf_req * Budget.spec
  | Paths of Serve_jobs.circuit * Serve_jobs.paths_req * Budget.spec
  | Protect of Serve_jobs.circuit * Serve_jobs.protect_req * Budget.spec
  | Eco of Serve_jobs.circuit * Serve_jobs.eco_req * Budget.spec
  | Ping of float  (** hold a worker for [delay] seconds, polling its budget *)
  | Metrics
  | Shutdown

let bad fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

let obj_string key j =
  match Obs_json.member key j with
  | Some (Obs_json.String s) -> Some s
  | Some _ -> bad "%S must be a string" key
  | None -> None

let obj_bool key j =
  match Obs_json.member key j with
  | Some (Obs_json.Bool b) -> b
  | Some _ -> bad "%S must be a boolean" key
  | None -> false

let obj_number key j =
  match Obs_json.member key j with
  | Some (Obs_json.Float f) -> Some f
  | Some (Obs_json.Int i) -> Some (float_of_int i)
  | Some _ -> bad "%S must be a number" key
  | None -> None

(* The same domains the CLI converters enforce, with the same
   one-line message shapes. *)
let unit_interval key j ~default =
  match obj_number key j with
  | None -> default
  | Some v ->
    if v > 0. && v <= 1. then v
    else bad "%S must lie in (0, 1], got %g" key v

let pos_int key j ~default =
  match Obs_json.member key j with
  | None -> default
  | Some (Obs_json.Int n) when n >= 1 -> n
  | Some _ -> bad "%S must be a positive integer" key

let pos_float_opt key j =
  match obj_number key j with
  | None -> None
  | Some v ->
    if v > 0. && v < infinity then Some v
    else bad "%S must be a positive number, got %g" key v

let circuit_of j =
  match obj_string "circuit" j with
  | None -> bad "missing \"circuit\""
  | Some spec -> { Serve_jobs.spec; source = obj_string "source" j }

let budget_of j =
  {
    Budget.timeout = pos_float_opt "timeout" j;
    max_nodes =
      (match Obs_json.member "max_nodes" j with
      | None -> None
      | Some (Obs_json.Int n) when n >= 1 -> Some n
      | Some _ -> bad "\"max_nodes\" must be a positive integer");
    max_ops = None;
    cancel_with = None;
  }

let fail_on_of j =
  match obj_string "fail_on" j with
  | None | Some "error" -> Analysis.Diag.Error
  | Some "warning" -> Analysis.Diag.Warning
  | Some s -> bad "\"fail_on\" must be \"error\" or \"warning\", got %S" s

let algorithm_of j =
  match obj_string "algorithm" j with
  | None | Some "short" -> Spcf.Governed.Short_path
  | Some "path" -> Spcf.Governed.Path_based
  | Some "node" -> Spcf.Governed.Node_based
  | Some s -> bad "\"algorithm\" must be short, path or node, got %S" s

let request_of_json j =
  match obj_string "job" j with
  | None -> bad "missing \"job\""
  | Some "lint" ->
    Lint
      ( circuit_of j,
        {
          Serve_jobs.l_fail_on = fail_on_of j;
          l_json = obj_bool "json" j;
          l_contract = obj_bool "contract" j;
          l_theta = unit_interval "theta" j ~default:0.9;
          l_jobs = pos_int "jobs" j ~default:1;
        } )
  | Some "spcf" ->
    Spcf
      ( circuit_of j,
        {
          Serve_jobs.s_theta = unit_interval "theta" j ~default:0.9;
          s_algorithm = algorithm_of j;
          s_jobs = pos_int "jobs" j ~default:1;
        },
        budget_of j )
  | Some "paths" ->
    Paths
      ( circuit_of j,
        {
          Serve_jobs.p_band = unit_interval "band" j ~default:0.1;
          p_max_paths = pos_int "max_paths" j ~default:4096;
          p_jobs = pos_int "jobs" j ~default:1;
          p_json = obj_bool "json" j;
          p_fail_on = fail_on_of j;
        },
        budget_of j )
  | Some "protect" ->
    Protect
      ( circuit_of j,
        {
          Serve_jobs.m_theta = unit_interval "theta" j ~default:0.9;
          m_jobs = pos_int "jobs" j ~default:1;
          m_prune = obj_bool "prune_false_paths" j;
        },
        budget_of j )
  | Some "eco" ->
    let edits =
      match obj_string "edits" j with
      | Some e -> e
      | None -> bad "missing \"edits\""
    in
    Eco
      ( circuit_of j,
        {
          Serve_jobs.c_edits_name =
            Option.value ~default:"<request>" (obj_string "edits_name" j);
          c_edits = edits;
          c_theta = unit_interval "theta" j ~default:0.9;
          c_band =
            (match Obs_json.member "band" j with
            | None -> None
            | Some _ -> Some (unit_interval "band" j ~default:0.1));
          c_jobs = pos_int "jobs" j ~default:1;
          c_json = obj_bool "json" j;
          c_check = obj_bool "check" j;
        },
        budget_of j )
  | Some "ping" ->
    Ping (match obj_number "delay" j with None -> 0. | Some d -> Float.max 0. d)
  | Some "metrics" -> Metrics
  | Some "shutdown" -> Shutdown
  | Some job -> bad "unknown job %S" job

let parse_request payload =
  match Obs_json.of_string payload with
  | Error e -> bad "request is not JSON: %s" e
  | Ok j -> request_of_json j

let json_of_circuit (c : Serve_jobs.circuit) =
  ("circuit", Obs_json.String c.Serve_jobs.spec)
  ::
  (match c.Serve_jobs.source with
  | Some s -> [ ("source", Obs_json.String s) ]
  | None -> [])

let json_of_budget (b : Budget.spec) =
  (match b.Budget.timeout with
  | Some t -> [ ("timeout", Obs_json.Float t) ]
  | None -> [])
  @
  match b.Budget.max_nodes with
  | Some n -> [ ("max_nodes", Obs_json.Int n) ]
  | None -> []

let string_of_fail_on = function
  | Analysis.Diag.Error -> "error"
  | Analysis.Diag.Warning -> "warning"
  | Analysis.Diag.Info -> "info"

let json_of_request r =
  let open Obs_json in
  let fields =
    match r with
    | Lint (c, l) ->
      (("job", String "lint") :: json_of_circuit c)
      @ [
          ( "fail_on",
            String (string_of_fail_on l.Serve_jobs.l_fail_on) );
          ("json", Bool l.Serve_jobs.l_json);
          ("contract", Bool l.Serve_jobs.l_contract);
          ("theta", Float l.Serve_jobs.l_theta);
          ("jobs", Int l.Serve_jobs.l_jobs);
        ]
    | Spcf (c, s, b) ->
      (("job", String "spcf") :: json_of_circuit c)
      @ [
          ("theta", Float s.Serve_jobs.s_theta);
          ( "algorithm",
            String
              (match s.Serve_jobs.s_algorithm with
              | Spcf.Governed.Short_path -> "short"
              | Spcf.Governed.Path_based -> "path"
              | Spcf.Governed.Node_based -> "node") );
          ("jobs", Int s.Serve_jobs.s_jobs);
        ]
      @ json_of_budget b
    | Paths (c, p, b) ->
      (("job", String "paths") :: json_of_circuit c)
      @ [
          ("band", Float p.Serve_jobs.p_band);
          ("max_paths", Int p.Serve_jobs.p_max_paths);
          ("jobs", Int p.Serve_jobs.p_jobs);
          ("json", Bool p.Serve_jobs.p_json);
          ( "fail_on",
            String (string_of_fail_on p.Serve_jobs.p_fail_on) );
        ]
      @ json_of_budget b
    | Protect (c, m, b) ->
      (("job", String "protect") :: json_of_circuit c)
      @ [
          ("theta", Float m.Serve_jobs.m_theta);
          ("jobs", Int m.Serve_jobs.m_jobs);
          ("prune_false_paths", Bool m.Serve_jobs.m_prune);
        ]
      @ json_of_budget b
    | Eco (c, e, b) ->
      (("job", String "eco") :: json_of_circuit c)
      @ [
          ("edits", String e.Serve_jobs.c_edits);
          ("edits_name", String e.Serve_jobs.c_edits_name);
          ("theta", Float e.Serve_jobs.c_theta);
        ]
      @ (match e.Serve_jobs.c_band with
        | Some b -> [ ("band", Float b) ]
        | None -> [])
      @ [
          ("jobs", Int e.Serve_jobs.c_jobs);
          ("json", Bool e.Serve_jobs.c_json);
          ("check", Bool e.Serve_jobs.c_check);
        ]
      @ json_of_budget b
    | Ping d -> [ ("job", String "ping"); ("delay", Float d) ]
    | Metrics -> [ ("job", String "metrics") ]
    | Shutdown -> [ ("job", String "shutdown") ]
  in
  Obj fields

(* --- responses ----------------------------------------------------------- *)

type response =
  | Ok_output of int * string  (** exit code, rendered output *)
  | Rejected of string * string  (** code, message — admission refusals *)
  | Error_resp of string * string  (** code, message — job failures *)

let json_of_response =
  let open Obs_json in
  function
  | Ok_output (exit, output) ->
    Obj [ ("status", String "ok"); ("exit", Int exit); ("output", String output) ]
  | Rejected (code, message) ->
    Obj
      [
        ("status", String "rejected");
        ("code", String code);
        ("message", String message);
      ]
  | Error_resp (code, message) ->
    Obj
      [ ("status", String "error"); ("code", String code); ("message", String message) ]

let response_of_json j =
  match obj_string "status" j with
  | Some "ok" -> (
    match (Obs_json.member "exit" j, obj_string "output" j) with
    | Some (Obs_json.Int e), Some out -> Ok_output (e, out)
    | _ -> bad "malformed ok response")
  | Some (("rejected" | "error") as st) -> (
    match (obj_string "code" j, obj_string "message" j) with
    | Some c, Some m -> if st = "rejected" then Rejected (c, m) else Error_resp (c, m)
    | _ -> bad "malformed %s response" st)
  | _ -> bad "malformed response"

let parse_response payload =
  match Obs_json.of_string payload with
  | Error e -> bad "response is not JSON: %s" e
  | Ok j -> response_of_json j

let send fd v = write_frame fd (Obs_json.to_string v)
let send_response fd r = send fd (json_of_response r)
let send_request fd r = send fd (json_of_request r)
let recv_response fd = parse_response (read_frame fd)
