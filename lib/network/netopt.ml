(* Technology-independent network optimization: constant folding, wire
   collapsing, bounded SOP elimination (substituting small node functions
   into their fanouts), and rebalancing of XOR/XNOR chains into trees.
   Used on the error-masking network T̃ between SPCF-based simplification
   and technology mapping — the depth reduction it buys is what gives the
   mapped masking circuit its timing slack over the original circuit. *)

module Cover = Logic2.Cover
module Cube = Logic2.Cube

(* --- The optimizer ----------------------------------------------------- *)

type limits = {
  max_sub_cubes : int; (* a substituted node's cover size bound *)
  max_result_cubes : int; (* fanout cover size bound after substitution *)
  passes : int;
}

let default_limits = { max_sub_cubes = 4; max_result_cubes = 16; passes = 4 }

(* Internal working representation: mutable node table indexed by the
   original network's signals. *)
type work = {
  n : int;
  names : string array;
  mutable defs : (int array * Cover.t) option array; (* fanins, func *)
  input_list : Network.signal array;
  outputs : (string * Network.signal) array;
}

let work_of_network net =
  let n = Network.num_signals net in
  {
    n;
    names = Array.init n (Network.name_of net);
    defs =
      Array.init n (fun s ->
          match Network.node_of net s with
          | None -> None
          | Some nd -> Some (Array.copy nd.Network.fanins, nd.Network.func));
    input_list = Network.inputs net;
    outputs = Network.outputs net;
  }

let is_const_cover c =
  if Cover.is_zero c then Some false
  else if Cover.is_tautology c then Some true
  else None

(* Rebuild a proper Network from the work table, keeping only signals
   reachable from the outputs. Aliases (None-def signals that redirect to
   another signal) are resolved through [alias]. *)
let rebuild w alias =
  let rec resolve s = match alias.(s) with -1 -> s | a -> resolve a in
  let net = Network.create () in
  let remap = Array.make w.n (-1) in
  let const_cache = Hashtbl.create 4 in
  (* Realize a constant as a node over the first input. *)
  let constant value =
    match Hashtbl.find_opt const_cache value with
    | Some s -> s
    | None ->
      let name = if value then "__const1" else "__const0" in
      let s =
        match Network.inputs net with
        | [||] ->
          (* Constant-only network (the fuzz generator emits these): a
             0-ary cover carries the constant without borrowing an
             input that does not exist. *)
          let func = if value then Cover.one 0 else Cover.zero 0 in
          Network.add_node net name ~fanins:[||] ~func
        | ins ->
          let func =
            if value then
              Cover.of_cubes 1 [ Cube.make 1 [ (0, true) ] ]
              |> fun on ->
              Cover.union on (Cover.of_cubes 1 [ Cube.make 1 [ (0, false) ] ])
            else Cover.zero 1
          in
          Network.add_node net name ~fanins:[| ins.(0) |] ~func
      in
      Hashtbl.replace const_cache value s;
      s
  in
  Array.iter (fun s -> remap.(s) <- Network.add_input net w.names.(s)) w.input_list;
  let rec realize s0 =
    let s = resolve s0 in
    if remap.(s) >= 0 then remap.(s)
    else begin
      match w.defs.(s) with
      | None -> remap.(s) (* inputs already mapped; -1 impossible *)
      | Some (fanins, func) -> (
        match is_const_cover func with
        | Some v ->
          let c = constant v in
          remap.(s) <- c;
          c
        | None ->
          let mapped_fanins = Array.map realize fanins in
          let r = Network.add_node net w.names.(s) ~fanins:mapped_fanins ~func in
          remap.(s) <- r;
          r)
    end
  in
  Array.iter (fun (name, s) -> Network.mark_output net ~name (realize s)) w.outputs;
  net

(* One elimination pass: substitute small single-fanout-friendly nodes
   into their fanouts when the result stays within the cube limits. *)
let eliminate_pass w limits alias =
  let rec resolve s = match alias.(s) with -1 -> s | a -> resolve a in
  let changed = ref false in
  (* Wire collapsing: single positive literal nodes become aliases. *)
  for s = 0 to w.n - 1 do
    match w.defs.(s) with
    | Some (fanins, func)
      when Cover.num_cubes func = 1 && Cover.num_literals func = 1 -> (
      match Cube.literals (List.hd (Cover.cubes func)) with
      | [ (v, true) ] ->
        alias.(s) <- resolve fanins.(v);
        w.defs.(s) <- None;
        changed := true
      | _ -> ())
    | _ -> ()
  done;
  (* Fanout counts after aliasing. *)
  let fanout = Array.make w.n 0 in
  for s = 0 to w.n - 1 do
    match w.defs.(s) with
    | None -> ()
    | Some (fanins, _) ->
      Array.iter (fun f -> fanout.(resolve f) <- fanout.(resolve f) + 1) fanins
  done;
  Array.iter (fun (_, s) -> fanout.(resolve s) <- fanout.(resolve s) + 1) w.outputs;
  (* Substitute small nodes into their fanouts. Work on a signal s whose
     def references a small node g: merge g's function into s's cover. *)
  for s = 0 to w.n - 1 do
    match w.defs.(s) with
    | None -> ()
    | Some (fanins, func) ->
      let fanins = Array.map resolve fanins in
      let arity = Array.length fanins in
      (* Try to inline each fanin that is a small node. The composed
         cover lives in a widened variable space: existing fanins plus
         the candidate's fanins. *)
      let try_inline local =
        let g_sig = fanins.(local) in
        match w.defs.(g_sig) with
        | None -> None
        | Some (g_fanins, g_func) ->
          if
            Cover.num_cubes g_func > limits.max_sub_cubes
            || fanout.(g_sig) > 2
          then None
          else begin
            let g_fanins = Array.map resolve g_fanins in
            (* New fanin array: old fanins (minus the inlined one) plus
               g's fanins, deduplicated. *)
            let keep = ref [] in
            Array.iteri (fun i f -> if i <> local then keep := f :: !keep) fanins;
            Array.iter
              (fun f -> if not (List.mem f !keep) then keep := f :: !keep)
              g_fanins;
            let new_fanins = Array.of_list (List.rev !keep) in
            let new_arity = Array.length new_fanins in
            if new_arity > 12 then None
            else begin
              let index_of f =
                let rec go i = if new_fanins.(i) = f then i else go (i + 1) in
                go 0
              in
              (* Rewrite a cube of the host cover into the new space. *)
              let widen_cube cube =
                let lits = ref [] in
                List.iter
                  (fun (v, ph) ->
                    if v <> local then lits := (index_of fanins.(v), ph) :: !lits)
                  (Cube.literals cube);
                (Cube.make new_arity !lits, Cube.polarity cube local)
              in
              let widen_g_cover cover =
                Cover.of_cubes new_arity
                  (List.map
                     (fun c ->
                       Cube.make new_arity
                         (List.map
                            (fun (v, ph) -> (index_of g_fanins.(v), ph))
                            (Cube.literals c)))
                     (Cover.cubes cover))
              in
              let g_wide = widen_g_cover g_func in
              let g_bar_wide = lazy (Cover.complement g_wide) in
              let pieces =
                List.map
                  (fun cube ->
                    let base, pol = widen_cube cube in
                    let base_cover = Cover.of_cubes new_arity [ base ] in
                    match pol with
                    | Cube.Absent -> base_cover
                    | Cube.Pos -> Cover.product base_cover g_wide
                    | Cube.Neg -> Cover.product base_cover (Lazy.force g_bar_wide))
                  (Cover.cubes func)
              in
              let composed =
                Cover.single_cube_containment
                  (List.fold_left Cover.union (Cover.zero new_arity) pieces)
              in
              if Cover.num_cubes composed > limits.max_result_cubes then None
              else Some (new_fanins, composed)
            end
          end
      in
      (* Duplicate host fanins can make a rewritten cube contradictory;
         treat that inlining attempt as not applicable. *)
      let try_inline local = try try_inline local with Invalid_argument _ -> None in
      let rec attempt local =
        if local >= arity then ()
        else
          match try_inline local with
          | Some (new_fanins, composed) ->
            w.defs.(s) <- Some (new_fanins, composed);
            changed := true
          | None -> attempt (local + 1)
      in
      attempt 0
  done;
  !changed

(* Detect 2-input XOR/XNOR covers. *)
let xor_kind func =
  if Cover.num_vars func <> 2 then None
  else begin
    let tt = Array.init 4 (fun i -> Cover.eval func [| i land 1 = 1; i lsr 1 = 1 |]) in
    match tt with
    | [| false; true; true; false |] -> Some true (* xor *)
    | [| true; false; false; true |] -> Some false (* xnor *)
    | _ -> None
  end

(* Rebalance maximal single-fanout XOR/XNOR chains into trees. *)
let rebalance_xor net =
  let n = Network.num_signals net in
  let fanout_count = Array.map List.length (Network.fanouts net) in
  Array.iter (fun (_, s) -> fanout_count.(s) <- fanout_count.(s) + 1)
    (Network.outputs net);
  let is_xorish s =
    match Network.node_of net s with
    | Some nd -> xor_kind nd.Network.func |> Option.map (fun k -> (k, nd.Network.fanins))
    | None -> None
  in
  (* Collect parity leaves of the maximal xor tree rooted at s; returns
     (leaves, parity_flip). A fanin participates only if it is xorish and
     has a single fanout. *)
  let rec leaves_of s ~root =
    match is_xorish s with
    | Some (kind, fanins) when root || fanout_count.(s) <= 1 ->
      let l0, f0 = leaves_of fanins.(0) ~root:false in
      let l1, f1 = leaves_of fanins.(1) ~root:false in
      (l0 @ l1, (not kind) <> (f0 <> f1))
      (* xnor contributes one polarity flip *)
    | _ -> ([ s ], false)
  in
  let out = Network.create () in
  let remap = Array.make n (-1) in
  Array.iter
    (fun s -> remap.(s) <- Network.add_input out (Network.name_of net s))
    (Network.inputs net);
  let xor_cover =
    Cover.of_cubes 2
      [ Cube.make 2 [ (0, true); (1, false) ]; Cube.make 2 [ (0, false); (1, true) ] ]
  in
  let xnor_cover = Cover.complement xor_cover in
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "__%s%d" prefix !counter
  in
  let rec realize s =
    if remap.(s) >= 0 then remap.(s)
    else begin
      let r =
        match is_xorish s with
        | Some _ ->
          let leaves, flip = leaves_of s ~root:true in
          if List.length leaves <= 2 then realize_plain s
          else begin
            let mapped = List.map realize leaves in
            (* Balanced xor tree; the final gate absorbs the polarity. *)
            let rec tree = function
              | [] -> assert false
              | [ x ] -> x
              | items ->
                let rec pair acc = function
                  | [] -> List.rev acc
                  | [ x ] -> List.rev (x :: acc)
                  | a :: b :: rest ->
                    let nodesig =
                      Network.add_node out (fresh "bx") ~fanins:[| a; b |]
                        ~func:xor_cover
                    in
                    pair (nodesig :: acc) rest
                in
                tree (pair [] items)
            in
            match mapped with
            | a :: b :: rest ->
              let first_func = if flip then xnor_cover else xor_cover in
              let first =
                Network.add_node out (fresh "bx") ~fanins:[| a; b |] ~func:first_func
              in
              tree (first :: rest)
            | _ -> assert false
          end
        | None -> realize_plain s
      in
      remap.(s) <- r;
      r
    end
  and realize_plain s =
    match Network.node_of net s with
    | None -> remap.(s)
    | Some nd ->
      Network.add_node out (Network.name_of net s)
        ~fanins:(Array.map realize nd.Network.fanins)
        ~func:nd.Network.func
  in
  Array.iter
    (fun (name, s) -> Network.mark_output out ~name (realize s))
    (Network.outputs net);
  out

(* --- Affine chain collapsing ------------------------------------------ *)

(* Every Boolean function is affine in each input over GF(2):
   f(x, s) = (x ∧ A(s)) ⊕ B(s) with A = f|x=1 ⊕ f|x=0 (the Boolean
   difference) and B = f|x=0. A single-fanout chain of such steps is a
   composition of affine maps, and affine maps compose associatively:
   (A,B) ∘ (A',B') = (A∧A', (B∧A')⊕B'). Reassociating the composition
   as a balanced tree — the carry-lookahead trick — computes a chain of
   m nodes in O(log m) levels instead of m. This is the restructuring
   step that gives the error-masking circuit its timing slack over
   deep sensitizable paths. *)

type sigc = Const of bool | Sig of Network.signal

let collapse_chains ?(min_len = 5) net =
  let n = Network.num_signals net in
  let fanout_count = Array.map List.length (Network.fanouts net) in
  Array.iter (fun (_, s) -> fanout_count.(s) <- fanout_count.(s) + 1)
    (Network.outputs net);
  let level = Array.make n 0 in
  Array.iter
    (fun s ->
      match Network.node_of net s with
      | None -> ()
      | Some nd ->
        level.(s) <-
          1 + Array.fold_left (fun acc f -> max acc level.(f)) 0 nd.Network.fanins)
    (Network.topo_order net);
  (* The chain predecessor of node s: its deepest internal single-fanout
     fanin, provided s is small enough to cofactor cheaply. *)
  let pred s =
    match Network.node_of net s with
    | None -> None
    | Some nd ->
      let distinct =
        let l = Array.to_list nd.Network.fanins in
        List.length (List.sort_uniq compare l) = List.length l
      in
      if
        Array.length nd.Network.fanins > 4
        || Logic2.Cover.num_cubes nd.Network.func > 6
        || not distinct
      then None
      else begin
        let best = ref None in
        Array.iter
          (fun f ->
            if (not (Network.is_input net f)) && fanout_count.(f) = 1 then
              match !best with
              | Some b when level.(b) >= level.(f) -> ()
              | _ -> best := Some f)
          nd.Network.fanins;
        !best
      end
  in
  let out = Network.create () in
  let remap = Array.make n (-1) in
  Array.iter
    (fun s -> remap.(s) <- Network.add_input out (Network.name_of net s))
    (Network.inputs net);
  let counter = ref 0 in
  let fresh prefix =
    incr counter;
    Printf.sprintf "__%s%d" prefix !counter
  in
  (* Symbolic node constructors with constant folding. *)
  let rec realize s =
    if remap.(s) >= 0 then remap.(s)
    else begin
      let r =
        let chain = chain_of s in
        if List.length chain >= min_len then realize_chain s chain
        else realize_plain s
      in
      remap.(s) <- r;
      r
    end
  and realize_plain s =
    match Network.node_of net s with
    | None -> remap.(s)
    | Some nd ->
      Network.add_node out (Network.name_of net s)
        ~fanins:(Array.map realize nd.Network.fanins)
        ~func:nd.Network.func
  (* The maximal chain ending at s, listed bottom-up (nearest the leaf
     first); s itself is included. *)
  and chain_of s =
    let rec walk s acc = match pred s with None -> s :: acc | Some p -> walk p (s :: acc) in
    walk s []
  (* Emit a cover over concrete signals, folding trivial cases. The
     cover is first compacted to its support, so only the fanins it
     actually reads are realized — in particular, never the (dead)
     chain predecessor. [lookup v] realizes the node's fanin [v]. *)
  and emit lookup cover =
    if Logic2.Cover.is_zero cover then Const false
    else if Logic2.Cover.is_tautology cover then Const true
    else begin
      let sup = Logic2.Cover.support cover in
      let vars = Logic2.Bits.to_list sup in
      let new_arity = List.length vars in
      let index = Hashtbl.create 8 in
      List.iteri (fun i v -> Hashtbl.replace index v i) vars;
      let remap_cube c =
        Logic2.Cube.make new_arity
          (List.map (fun (v, ph) -> (Hashtbl.find index v, ph)) (Logic2.Cube.literals c))
      in
      let cover' =
        Logic2.Cover.of_cubes new_arity (List.map remap_cube (Logic2.Cover.cubes cover))
      in
      match Logic2.Cover.cubes cover' with
      | [ c ] when Logic2.Cube.num_literals c = 1 -> (
        match (Logic2.Cube.literals c, vars) with
        | [ (0, true) ], [ v ] -> Sig (lookup v)
        | [ (0, false) ], [ v ] ->
          Sig
            (Network.add_node out (fresh "ci")
               ~fanins:[| lookup v |]
               ~func:(Logic2.Cover.of_cubes 1 [ Logic2.Cube.make 1 [ (0, false) ] ]))
        | _ -> assert false)
      | _ ->
        let fanins = Array.of_list (List.map lookup vars) in
        Sig (Network.add_node out (fresh "cf") ~fanins ~func:cover')
    end
  and band2 a b =
    match (a, b) with
    | Const false, _ | _, Const false -> Const false
    | Const true, x | x, Const true -> x
    | Sig sa, Sig sb ->
      if sa = sb then Sig sa
      else
        Sig
          (Network.add_node out (fresh "ca") ~fanins:[| sa; sb |]
             ~func:
               (Logic2.Cover.of_cubes 2 [ Logic2.Cube.make 2 [ (0, true); (1, true) ] ]))
  and bxor2 a b =
    match (a, b) with
    | Const false, x | x, Const false -> x
    | Const true, Sig s ->
      Sig
        (Network.add_node out (fresh "ci") ~fanins:[| s |]
           ~func:(Logic2.Cover.of_cubes 1 [ Logic2.Cube.make 1 [ (0, false) ] ]))
    | Sig s, Const true ->
      bxor2 (Const true) (Sig s)
    | Const true, Const true -> Const false
    | Sig sa, Sig sb ->
      if sa = sb then Const false
      else
        Sig
          (Network.add_node out (fresh "cx") ~fanins:[| sa; sb |]
             ~func:
               (Logic2.Cover.of_cubes 2
                  [
                    Logic2.Cube.make 2 [ (0, true); (1, false) ];
                    Logic2.Cube.make 2 [ (0, false); (1, true) ];
                  ]))
  (* (b ∧ a') ⊕ b' *)
  and affine_b b a' b' = bxor2 (band2 b a') b'
  and realize_chain s chain =
    match chain with
    | [] | [ _ ] -> realize_plain s
    | first :: _ ->
      (* The chain's external deep input: first's predecessor does not
         exist, so its deep var is just one of its fanins; we treat the
         whole of [first] as a step over x0 = its deepest realized fanin
         only if it has one — otherwise x0 is a fresh constant-false and
         B absorbs the function. Simpler and robust: take x0 = first's
         deepest fanin (realized normally). *)
      let x0 =
        match Network.node_of net first with
        | None -> assert false
        | Some nd ->
          let best = ref nd.Network.fanins.(0) in
          Array.iter (fun f -> if level.(f) > level.(!best) then best := f) nd.Network.fanins;
          !best
      in
      let step node =
        match Network.node_of net node with
        | None -> assert false
        | Some nd ->
          (* Deep input: the chain predecessor (or x0 for the first). *)
          let deep =
            match pred node with
            | Some p -> p
            | None -> x0
          in
          let deep_local =
            let rec find i = if nd.Network.fanins.(i) = deep then i else find (i + 1) in
            find 0
          in
          let f1 = Logic2.Cover.cofactor nd.Network.func deep_local true in
          let f0 = Logic2.Cover.cofactor nd.Network.func deep_local false in
          (* A = f1 ⊕ f0, B = f0, over the node's full fanin space (the
             deep variable no longer occurs). *)
          let nf0 = Logic2.Cover.complement f0 in
          let nf1 = Logic2.Cover.complement f1 in
          let a_cover =
            Logic2.Cover.single_cube_containment
              (Logic2.Cover.union
                 (Logic2.Cover.product f1 nf0)
                 (Logic2.Cover.product f0 nf1))
          in
          let lookup v = realize nd.Network.fanins.(v) in
          (emit lookup a_cover, emit lookup f0)
      in
      let steps = List.map step chain in
      (* Balanced composition of the affine maps. *)
      let combine (a, b) (a', b') = (band2 a a', affine_b b a' b') in
      let rec tree = function
        | [] -> assert false
        | [ x ] -> x
        | items ->
          let rec pair acc = function
            | [] -> List.rev acc
            | [ x ] -> List.rev (x :: acc)
            | p :: q :: rest -> pair (combine p q :: acc) rest
          in
          tree (pair [] items)
      in
      let a_tot, b_tot = tree steps in
      let result = bxor2 (band2 (Sig (realize x0)) a_tot) b_tot in
      (match result with
      | Sig r -> r
      | Const v -> (
        (* Constant chain value: realize as a constant node — 0-ary when
           the network has no inputs to borrow. *)
        match Network.inputs out with
        | [||] ->
          let func = if v then Logic2.Cover.one 0 else Logic2.Cover.zero 0 in
          Network.add_node out (fresh "cc") ~fanins:[||] ~func
        | ins ->
          let func =
            if v then
              Logic2.Cover.of_cubes 1
                [ Logic2.Cube.make 1 [ (0, true) ]; Logic2.Cube.make 1 [ (0, false) ] ]
            else Logic2.Cover.zero 1
          in
          Network.add_node out (fresh "cc") ~fanins:[| ins.(0) |] ~func))
  in
  Array.iter
    (fun (name, s) -> Network.mark_output out ~name (realize s))
    (Network.outputs net);
  out

let eliminate ?(limits = default_limits) net =
  let w = work_of_network net in
  let alias = Array.make w.n (-1) in
  let rec loop k =
    if k > 0 && eliminate_pass w limits alias then loop (k - 1)
  in
  loop limits.passes;
  rebuild w alias

(* Collapse first: chain collapsing needs the narrow 2-3-input chain
   nodes intact, and elimination would merge them past its arity bound. *)
let optimize ?(limits = default_limits) ?(collapse = false) net =
  let net = if collapse then collapse_chains net else net in
  rebalance_xor (eliminate ~limits net)
