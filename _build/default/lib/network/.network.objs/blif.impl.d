lib/network/blif.ml: Array Buffer Hashtbl List Logic2 Network Option Printf String
