(** Irredundant SOP extraction from BDDs (Minato–Morreale). *)

val compute :
  Bdd.man -> lower:Bdd.t -> upper:Bdd.t -> Logic2.Cover.t
(** A cover [F] with [lower ⊆ F ⊆ upper]; the gap is don't-care space
    exploited to keep the cover small. Variables of the cover are the
    manager's BDD variables. *)

val of_bdd : Bdd.man -> Bdd.t -> Logic2.Cover.t
(** Exact cover of a function ([compute] with a collapsed interval). *)
