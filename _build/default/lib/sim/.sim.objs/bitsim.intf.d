lib/sim/bitsim.mli: Mapped Network Util
