(** A minimal JSON value type with a printer and a parser (enough for
    round-trip tests and for diffing stats sidecars against the
    [BENCH_*.json] trajectories), plus a serializer for the whole
    instrumentation registry. No external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val to_channel : out_channel -> t -> unit

val of_string : string -> (t, string) result
(** Strict parser: the whole input must be one JSON value (surrounding
    whitespace allowed). Numbers without [.], [e] or [E] parse as
    [Int]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] otherwise. *)

val snapshot : unit -> t
(** The full registry: span tree (with per-node total/self seconds and
    call counts), counters, histograms. *)

val with_atomic_file : string -> (out_channel -> unit) -> unit
(** Run the writer against a sibling temp file and rename it over
    [path] only after a clean close: an exception (or a crash) during
    the write leaves the previous [path] intact and removes the temp
    file — no consumer ever sees a partial artifact. Used by every
    exporter ([--stats-json], [--trace], [--prom]). *)

val write_file : string -> unit
(** [snapshot] pretty-printed to a file, atomically
    ({!with_atomic_file}). *)
