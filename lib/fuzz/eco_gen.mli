(** Random valid edit sequences over an {!Eco.design} — the input side
    of the [eco-equal] differential oracle. Every edit is validated by
    construction against the design it applies to (the sequence
    evolves the design as it is generated), so [Eco.apply_all] on the
    result never raises. Deterministic in the generator state: the
    driver re-derives a failure's edit sequence from [(seed, index)]
    alone when writing [.eco] repro files. *)

val edits : rng:Util.Rng.t -> count:int -> Eco.design -> Eco.edit list
(** Up to [count] random edits (gate replace/rewire/add/remove, output
    add/drop) with fresh names drawn from [eco_g%d] / [eco_po%d]. May
    return fewer (or none) when the design offers no feasible edit —
    never an invalid one. *)
