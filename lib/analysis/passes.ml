(* The pass library: pure IR -> diagnostics functions. Source-level
   passes work on the raw BLIF name graph (the only representation in
   which structural defects survive — Network.t is acyclic and fully
   driven by construction); network/mapped passes work on elaborated
   IRs. *)

let c_pass_runs = Obs.counter "analysis.pass_runs"
let c_diags = Obs.counter "analysis.diags"

let run_pass name f x =
  Obs.with_span ("lint." ^ name) @@ fun () ->
  Obs.incr c_pass_runs;
  let ds = f x in
  Obs.add c_diags (List.length ds);
  ds

(* ------------------------------------------------------------------ *)
(* Source-level passes                                                 *)
(* ------------------------------------------------------------------ *)

(* Signals driven by more than one .names block, .names blocks driving
   a declared input, and doubly declared inputs. The elaborator rejects
   all three; the pass reports every instance with both positions. *)
let source_multi_driver (src : Blif.source) =
  run_pass "multi-driver"
    (fun (src : Blif.source) ->
  let input_loc = Hashtbl.create 16 in
  let diags = ref [] in
  List.iter
    (fun (i, loc) ->
      match Hashtbl.find_opt input_loc i with
      | Some (first : Blif.loc) ->
        diags :=
          Diag.diag Diag.Multi_driver ~loc ~signal:i
            (Printf.sprintf "input %S declared twice (first at %s)" i
               (Blif.loc_to_string first))
          :: !diags
      | None -> Hashtbl.replace input_loc i loc)
    src.Blif.src_inputs;
  let defs = Hashtbl.create 64 in
  List.iter
    (fun (n : Blif.raw_node) ->
      (match Hashtbl.find_opt defs n.Blif.out with
      | Some (first : Blif.raw_node) ->
        diags :=
          Diag.diag Diag.Multi_driver ~loc:n.Blif.nloc ~signal:n.Blif.out
            (Printf.sprintf "signal %S driven by two .names blocks (first at %s)"
               n.Blif.out
               (Blif.loc_to_string first.Blif.nloc))
          :: !diags
      | None -> Hashtbl.replace defs n.Blif.out n);
      match Hashtbl.find_opt input_loc n.Blif.out with
      | Some iloc ->
        diags :=
          Diag.diag Diag.Multi_driver ~loc:n.Blif.nloc ~signal:n.Blif.out
            (Printf.sprintf
               "signal %S is a declared input (at %s) and may not be driven by .names"
               n.Blif.out (Blif.loc_to_string iloc))
          :: !diags
      | None -> ())
    src.Blif.nodes;
      List.rev !diags)
    src

(* First driver of each signal; later duplicates are multi_driver's
   business, not ours. *)
let driver_map (src : Blif.source) =
  let defs = Hashtbl.create 64 in
  List.iter
    (fun (n : Blif.raw_node) ->
      if not (Hashtbl.mem defs n.Blif.out) then Hashtbl.replace defs n.Blif.out n)
    src.Blif.nodes;
  defs

let input_set (src : Blif.source) =
  let s = Hashtbl.create 16 in
  List.iter (fun (i, _) -> Hashtbl.replace s i ()) src.Blif.src_inputs;
  s

let source_undriven (src : Blif.source) =
  run_pass "undriven"
    (fun (src : Blif.source) ->
  let defs = driver_map src and ins = input_set src in
  let driven name = Hashtbl.mem defs name || Hashtbl.mem ins name in
  let reported = Hashtbl.create 16 in
  let diags = ref [] in
  let report name loc context =
    if not (Hashtbl.mem reported name) then begin
      Hashtbl.replace reported name ();
      diags :=
        Diag.diag Diag.Undriven ~loc ~signal:name
          (Printf.sprintf "signal %S is %s but has no driver" name context)
        :: !diags
    end
  in
  List.iter
    (fun (n : Blif.raw_node) ->
      List.iter
        (fun i -> if not (driven i) then report i n.Blif.nloc "used as a fanin")
        n.Blif.ins)
    src.Blif.nodes;
  List.iter
    (fun (o, loc) -> if not (driven o) then report o loc "a primary output")
    src.Blif.src_outputs;
      List.rev !diags)
    src

(* Tarjan's strongly connected components over the driver graph; any
   component with more than one node — or a self-loop — is a
   combinational cycle. *)
let source_cycles (src : Blif.source) =
  run_pass "cycles"
    (fun (src : Blif.source) ->
  let defs = driver_map src in
  let index = Hashtbl.create 64 and low = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] and counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect name (node : Blif.raw_node) =
    Hashtbl.replace index name !counter;
    Hashtbl.replace low name !counter;
    incr counter;
    stack := name :: !stack;
    Hashtbl.replace on_stack name ();
    List.iter
      (fun dep ->
        match Hashtbl.find_opt defs dep with
        | None -> ()
        | Some dep_node ->
          if not (Hashtbl.mem index dep) then begin
            strongconnect dep dep_node;
            Hashtbl.replace low name
              (min (Hashtbl.find low name) (Hashtbl.find low dep))
          end
          else if Hashtbl.mem on_stack dep then
            Hashtbl.replace low name
              (min (Hashtbl.find low name) (Hashtbl.find index dep)))
      node.Blif.ins;
    if Hashtbl.find low name = Hashtbl.find index name then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | top :: rest ->
          stack := rest;
          Hashtbl.remove on_stack top;
          if top = name then top :: acc else pop (top :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  Hashtbl.iter
    (fun name node -> if not (Hashtbl.mem index name) then strongconnect name node)
    defs;
  let cyclic scc =
    match scc with
    | [ single ] -> (
      match Hashtbl.find_opt defs single with
      | Some n -> List.mem single n.Blif.ins
      | None -> false)
    | _ -> true
  in
  !sccs
  |> List.filter cyclic
  |> List.map (fun scc ->
         let scc = List.sort compare scc in
         let head = List.hd scc in
         let loc = (Hashtbl.find defs head).Blif.nloc in
         Diag.diag Diag.Cycle ~loc ~signal:head
           (Printf.sprintf "combinational cycle through {%s}" (String.concat ", " scc)))
      |> List.sort Diag.compare)
    src

let source_structure (src : Blif.source) =
  run_pass "structure"
    (fun (src : Blif.source) ->
  let defs = driver_map src in
  let outputs = List.map fst src.Blif.src_outputs in
  let diags = ref [] in
  if outputs = [] then
    diags := [ Diag.diag Diag.No_outputs "netlist declares no primary outputs" ];
  (* Reverse reachability from the outputs over the driver graph. *)
  let reach = Hashtbl.create 64 in
  let rec visit name =
    if not (Hashtbl.mem reach name) then begin
      Hashtbl.replace reach name ();
      match Hashtbl.find_opt defs name with
      | Some n -> List.iter visit n.Blif.ins
      | None -> ()
    end
  in
  List.iter visit outputs;
  List.iter
    (fun (n : Blif.raw_node) ->
      if outputs <> [] && not (Hashtbl.mem reach n.Blif.out) then
        diags :=
          Diag.diag Diag.Dead_cone ~loc:n.Blif.nloc ~signal:n.Blif.out
            (Printf.sprintf "node %S is unreachable from every primary output"
               n.Blif.out)
          :: !diags)
    src.Blif.nodes;
  List.iter
    (fun (i, loc) ->
      if (not (Hashtbl.mem reach i)) && outputs <> [] then
        diags :=
          Diag.diag Diag.Unused_input ~loc ~signal:i
            (Printf.sprintf "input %S feeds no primary output" i)
          :: !diags)
    src.Blif.src_inputs;
      List.rev !diags)
    src

(* ------------------------------------------------------------------ *)
(* Network-level passes                                                *)
(* ------------------------------------------------------------------ *)

let net_no_outputs net =
  run_pass "net-no-outputs"
    (fun net ->
      if Array.length (Network.outputs net) = 0 then
        [ Diag.diag Diag.No_outputs "network has no primary outputs" ]
      else [])
    net

let net_unused_inputs net =
  run_pass "net-unused-inputs"
    (fun net ->
      let fanouts = Network.fanouts net in
      let is_output = Array.make (Network.num_signals net) false in
      Array.iter (fun (_, s) -> is_output.(s) <- true) (Network.outputs net);
      Array.to_list (Network.inputs net)
      |> List.filter (fun s -> fanouts.(s) = [] && not is_output.(s))
      |> List.map (fun s ->
             Diag.diag Diag.Unused_input ~signal:(Network.name_of net s)
               (Printf.sprintf "input %S drives no logic and is not an output"
                  (Network.name_of net s))))
    net

let net_dead_cones net =
  run_pass "net-dead-cones"
    (fun net ->
      let outs = Array.to_list (Network.output_signals net) in
      if outs = [] then []
      else begin
        let reach = Network.cone net outs in
        let diags = ref [] in
        for s = Network.num_signals net - 1 downto 0 do
          if (not reach.(s)) && not (Network.is_input net s) then
            diags :=
              Diag.diag Diag.Dead_cone ~signal:(Network.name_of net s)
                (Printf.sprintf "node %S is unreachable from every primary output"
                   (Network.name_of net s))
              :: !diags
        done;
        !diags
      end)
    net

(* Bounded constant propagation: fold the known-constant fanins into
   each node's cover by cofactoring, then test the residual cover for
   0 / tautology. Exact per node given its fanin constants; cheap —
   covers are node-sized. *)
let net_constants net =
  let n = Network.num_signals net in
  let const = Array.make n None in
  Array.iter
    (fun s ->
      match Network.node_of net s with
      | None -> ()
      | Some nd ->
        let cover = ref nd.Network.func in
        Array.iteri
          (fun i f ->
            match const.(f) with
            | Some v -> cover := Logic2.Cover.cofactor !cover i v
            | None -> ())
          nd.Network.fanins;
        if Logic2.Cover.is_zero !cover then const.(s) <- Some false
        else if Logic2.Cover.is_tautology !cover then const.(s) <- Some true)
    (Network.topo_order net);
  const

let net_const_gates net =
  run_pass "net-const-gates"
    (fun net ->
      let const = net_constants net in
      let diags = ref [] in
      for s = Network.num_signals net - 1 downto 0 do
        match const.(s) with
        | Some v when not (Network.is_input net s) ->
          diags :=
            Diag.diag Diag.Const_gate ~signal:(Network.name_of net s)
              (Printf.sprintf "node %S provably evaluates to constant %d"
                 (Network.name_of net s)
                 (if v then 1 else 0))
            :: !diags
        | _ -> ()
      done;
      !diags)
    net

(* ------------------------------------------------------------------ *)
(* Mapped-level passes                                                 *)
(* ------------------------------------------------------------------ *)

let mapped_unmapped_gates mc =
  run_pass "unmapped-gates"
    (fun mc ->
      let net = Mapped.network mc in
      let diags = ref [] in
      for s = Network.num_signals net - 1 downto 0 do
        if Network.node_of net s <> None && Mapped.cell_of mc s = None then
          diags :=
            Diag.diag Diag.Unmapped_gate ~signal:(Network.name_of net s)
              (Printf.sprintf "internal node %S carries no library cell"
                 (Network.name_of net s))
            :: !diags
      done;
      !diags)
    mc

(* Internal consistency of the timing view: Δ is the maximum per-output
   arrival and is attained by some output (Δ_y consistency); arrivals
   are monotone along fanin edges (arrival = worst fanin + own delay);
   nothing is negative. A violation means a timing bug, not a slow
   circuit. *)
let sta_consistency ?model mc =
  run_pass "sta-consistency"
    (fun mc ->
      let sta = Sta.analyze ?model mc in
      let net = Mapped.network mc in
      let diags = ref [] in
      let add d = diags := d :: !diags in
      let delta = Sta.delta sta in
      if delta < -.Sta.eps then
        add
          (Diag.diag Diag.Sta_negative
             (Printf.sprintf "critical path delay is negative (%.6f)" delta));
      let worst = ref 0. in
      Array.iter
        (fun (name, s) ->
          let a = Sta.arrival sta s in
          worst := Float.max !worst a;
          if a > delta +. Sta.eps then
            add
              (Diag.diag Diag.Sta_delta ~signal:name
                 (Printf.sprintf
                    "output %S arrives at %.6f, later than the critical path delay %.6f"
                    name a delta)))
        (Network.outputs net);
      if
        Array.length (Network.outputs net) > 0
        && Float.abs (!worst -. delta) > Sta.eps
      then
        add
          (Diag.diag Diag.Sta_delta
             (Printf.sprintf
                "critical path delay %.6f is not attained by any output (max arrival \
                 %.6f)"
                delta !worst));
      Array.iter
        (fun s ->
          let d = Sta.delay sta s and a = Sta.arrival sta s in
          if d < -.Sta.eps || a < -.Sta.eps then
            add
              (Diag.diag Diag.Sta_negative ~signal:(Network.name_of net s)
                 (Printf.sprintf "negative delay (%.6f) or arrival (%.6f)" d a));
          match Network.node_of net s with
          | None ->
            if Float.abs a > Sta.eps then
              add
                (Diag.diag Diag.Sta_monotone ~signal:(Network.name_of net s)
                   (Printf.sprintf "primary input arrives at %.6f, expected 0" a))
          | Some nd ->
            let worst_in =
              Array.fold_left
                (fun acc f -> Float.max acc (Sta.arrival sta f))
                0. nd.Network.fanins
            in
            if Float.abs (a -. (worst_in +. d)) > Sta.eps then
              add
                (Diag.diag Diag.Sta_monotone ~signal:(Network.name_of net s)
                   (Printf.sprintf
                      "arrival %.6f differs from worst fanin arrival %.6f + delay %.6f"
                      a worst_in d)))
        (Network.topo_order net);
      List.rev !diags)
    mc

(* ------------------------------------------------------------------ *)
(* Sensitization findings                                              *)
(* ------------------------------------------------------------------ *)

(* Advisory diagnostics over a sensitization report. Both findings are
   gated on a complete enumeration: with [truncated] set, the missed
   paths may well be sensitizable and nothing can be claimed. *)
let sensitization (report : Sensitization.report) =
  run_pass "sensitization"
    (fun (report : Sensitization.report) ->
      if report.Sensitization.truncated then []
      else begin
        let diags =
          Sensitization.false_outputs report
          |> List.map (fun output ->
                 Diag.diag Diag.Sta_false_path ~signal:output
                   (Printf.sprintf
                      "output %S is topologically critical only through provably \
                       false paths (functional delay <= %.6f, topological %.6f)"
                      output report.Sensitization.target
                      report.Sensitization.delta))
        in
        let _, nf, _ = Sensitization.counts report in
        let n = List.length report.Sensitization.paths in
        if n > 0 && 2 * nf >= n then
          diags
          @ [
              Diag.diag Diag.Mask_false_paths
                (Printf.sprintf
                   "%d of %d near-critical paths are statically false: the masking \
                    cover over-protects (consider --prune-false-paths)"
                   nf n);
            ]
        else diags
      end)
    report
