(* Prime implicant generation. Two engines:
   - iterated consensus with absorption, working directly on covers
     (complete by the consensus theorem; practical for node-level SOPs);
   - Quine-McCluskey on truth tables for small, dense functions. *)

(* Iterated consensus: repeatedly add consensus cubes that are not
   absorbed by an existing cube, pruning absorbed cubes, until fixpoint.
   The resulting cover is exactly the set of all prime implicants. *)
let of_cover cover =
  let absorb cubes =
    Cover.cubes (Cover.single_cube_containment (Cover.of_cubes (Cover.num_vars cover) cubes))
  in
  let rec fixpoint cubes =
    let additions = ref [] in
    let consider c =
      let absorbed =
        List.exists (fun d -> Cube.covers d c) cubes
        || List.exists (fun d -> Cube.covers d c) !additions
      in
      if not absorbed then additions := c :: !additions
    in
    let rec pairs = function
      | [] -> ()
      | a :: rest ->
        List.iter
          (fun b -> match Cube.consensus a b with Some c -> consider c | None -> ())
          rest;
        pairs rest
    in
    pairs cubes;
    if !additions = [] then cubes
    else fixpoint (absorb (!additions @ cubes))
  in
  Cover.of_cubes (Cover.num_vars cover) (fixpoint (absorb (Cover.cubes cover)))

(* Quine-McCluskey on a truth table. Cubes are (value, mask) pairs: [mask]
   bits are don't-cares, [value] holds the fixed bits (0 within mask). *)
let quine_mccluskey truth =
  let n = Truth.num_vars truth in
  let module IS = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let level0 = List.map (fun m -> (m, 0)) (Truth.minterms truth) in
  let rec rounds current primes =
    if current = [] then primes
    else begin
      let current_set = IS.of_list current in
      let merged = Hashtbl.create 64 in
      let next = ref IS.empty in
      let try_merge (v, m) =
        for b = 0 to n - 1 do
          let bit = 1 lsl b in
          if m land bit = 0 && v land bit = 0 then begin
            let partner = (v lor bit, m) in
            if IS.mem partner current_set then begin
              Hashtbl.replace merged (v, m) ();
              Hashtbl.replace merged partner ();
              next := IS.add (v, m lor bit) !next
            end
          end
        done
      in
      List.iter try_merge current;
      let unmerged =
        List.filter (fun c -> not (Hashtbl.mem merged c)) current
      in
      rounds (IS.elements !next) (unmerged @ primes)
    end
  in
  let prime_pairs = rounds level0 [] in
  let cube_of (v, m) =
    let lits = ref [] in
    for b = 0 to n - 1 do
      if m land (1 lsl b) = 0 then lits := (b, v land (1 lsl b) <> 0) :: !lits
    done;
    Cube.make n !lits
  in
  Cover.of_cubes n (List.map cube_of prime_pairs)

(* All primes of the on-set and the off-set of a function given as an
   on-set cover — the set P of Eqn. 1 in the paper. *)
let onset_and_offset_primes cover =
  let on = of_cover cover in
  let off = of_cover (Cover.complement cover) in
  (on, off)
