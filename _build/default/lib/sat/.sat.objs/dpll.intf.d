lib/sat/dpll.mli:
