(* Unit and property tests for the BDD package: operations checked
   against truth-table semantics on random expressions, extended-range
   sat-counting, quantification, composition, ISOP extraction. *)

let check = Alcotest.(check bool)
let _check_int = Alcotest.(check int)

(* ---------- Extfloat ---------- *)

let test_extfloat_basic () =
  let open Extfloat in
  check "zero" true (is_zero zero);
  check "1+1=2" true (equal (add one one) (of_float 2.));
  check "3*4=12" true (equal (mul (of_float 3.) (of_float 4.)) (of_float 12.));
  check "12/4=3" true (equal (div (of_float 12.) (of_float 4.)) (of_float 3.));
  check "2^10" true (equal (pow2 10) (of_float 1024.));
  check "mul_pow2" true (equal (mul_pow2 (of_float 3.) 4) (of_float 48.));
  check "compare" true (lt (of_float 3.) (of_float 4.));
  check "roundtrip" true (to_float (of_float 1.5e300) = 1.5e300)

let test_extfloat_huge () =
  let open Extfloat in
  (* 2^882 — beyond IEEE range. *)
  let huge = pow2 882 in
  check "log2" true (abs_float (log2 huge -. 882.) < 1e-9);
  check "add self" true (equal (add huge huge) (pow2 883));
  check "ratio" true (to_float (div huge (pow2 880)) = 4.);
  check "ordering" true (lt (pow2 881) huge);
  (* String form: 2^882 ≈ 3.2e265 *)
  let s = to_string huge in
  check "sci string" true (String.length s > 4 && String.sub s (String.length s - 3) 3 = "265")

let test_extfloat_sum_precision () =
  let open Extfloat in
  (* Sum of 1000 ones equals 1000 despite normalization. *)
  let s = List.fold_left add zero (List.init 1000 (fun _ -> one)) in
  check "sum" true (equal s (of_float 1000.))

(* ---------- Random Boolean expressions ---------- *)

type expr =
  | Var of int
  | Not of expr
  | And of expr * expr
  | Or of expr * expr
  | Xor of expr * expr

let rec eval_expr env = function
  | Var v -> env.(v)
  | Not e -> not (eval_expr env e)
  | And (a, b) -> eval_expr env a && eval_expr env b
  | Or (a, b) -> eval_expr env a || eval_expr env b
  | Xor (a, b) -> eval_expr env a <> eval_expr env b

let rec build_bdd man = function
  | Var v -> Bdd.var man v
  | Not e -> Bdd.bnot man (build_bdd man e)
  | And (a, b) -> Bdd.band man (build_bdd man a) (build_bdd man b)
  | Or (a, b) -> Bdd.bor man (build_bdd man a) (build_bdd man b)
  | Xor (a, b) -> Bdd.bxor man (build_bdd man a) (build_bdd man b)

let expr_gen nvars =
  let open QCheck.Gen in
  sized_size (int_bound 8) @@ fix (fun self n ->
      if n <= 0 then map (fun v -> Var v) (int_bound (nvars - 1))
      else
        frequency
          [
            (1, map (fun v -> Var v) (int_bound (nvars - 1)));
            (2, map (fun e -> Not e) (self (n - 1)));
            (2, map2 (fun a b -> And (a, b)) (self (n / 2)) (self (n / 2)));
            (2, map2 (fun a b -> Or (a, b)) (self (n / 2)) (self (n / 2)));
            (1, map2 (fun a b -> Xor (a, b)) (self (n / 2)) (self (n / 2)));
          ])

let rec expr_print = function
  | Var v -> Printf.sprintf "x%d" v
  | Not e -> Printf.sprintf "!(%s)" (expr_print e)
  | And (a, b) -> Printf.sprintf "(%s & %s)" (expr_print a) (expr_print b)
  | Or (a, b) -> Printf.sprintf "(%s | %s)" (expr_print a) (expr_print b)
  | Xor (a, b) -> Printf.sprintf "(%s ^ %s)" (expr_print a) (expr_print b)

let arb_expr n = QCheck.make ~print:expr_print (expr_gen n)

let nvars = 6
let all_envs = List.init (1 lsl nvars) (fun i -> Array.init nvars (fun v -> i lsr v land 1 = 1))

let prop_bdd_semantics =
  QCheck.Test.make ~name:"bdd: eval matches expression semantics" ~count:300
    (arb_expr nvars) (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      List.for_all (fun env -> Bdd.eval man f env = eval_expr env e) all_envs)

let prop_bdd_canonical =
  QCheck.Test.make ~name:"bdd: semantic equality = handle equality" ~count:200
    (QCheck.pair (arb_expr nvars) (arb_expr nvars)) (fun (a, b) ->
      let man = Bdd.create ~nvars () in
      let fa = build_bdd man a and fb = build_bdd man b in
      let sem_equal = List.for_all (fun env -> eval_expr env a = eval_expr env b) all_envs in
      (fa = fb) = sem_equal)

let prop_bdd_satcount =
  QCheck.Test.make ~name:"bdd: satcount matches enumeration" ~count:200
    (arb_expr nvars) (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      let expected = List.length (List.filter (fun env -> eval_expr env e) all_envs) in
      Extfloat.equal (Bdd.satcount man f) (Extfloat.of_float (float_of_int expected)))

let prop_bdd_exists =
  QCheck.Test.make ~name:"bdd: existential quantification" ~count:200
    (QCheck.pair (arb_expr nvars) (QCheck.int_bound (nvars - 1))) (fun (e, v) ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      let vars = Array.init nvars (fun i -> i = v) in
      let ex = Bdd.exists man vars f in
      List.for_all
        (fun env ->
          let env0 = Array.copy env and env1 = Array.copy env in
          env0.(v) <- false;
          env1.(v) <- true;
          Bdd.eval man ex env = (eval_expr env0 e || eval_expr env1 e))
        all_envs)

let prop_bdd_restrict =
  QCheck.Test.make ~name:"bdd: restrict pins a variable" ~count:200
    (QCheck.triple (arb_expr nvars) (QCheck.int_bound (nvars - 1)) QCheck.bool)
    (fun (e, v, value) ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      let r = Bdd.restrict man f v value in
      List.for_all
        (fun env ->
          let env' = Array.copy env in
          env'.(v) <- value;
          Bdd.eval man r env = eval_expr env' e)
        all_envs)

let prop_bdd_compose =
  QCheck.Test.make ~name:"bdd: vector composition" ~count:100
    (QCheck.triple (arb_expr nvars) (arb_expr nvars) (QCheck.int_bound (nvars - 1)))
    (fun (e, g, v) ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      let subs = Array.init nvars (fun i -> Bdd.var man i) in
      subs.(v) <- build_bdd man g;
      let composed = Bdd.compose_vec man f subs in
      List.for_all
        (fun env ->
          let env' = Array.copy env in
          env'.(v) <- eval_expr env g;
          Bdd.eval man composed env = eval_expr env' e)
        all_envs)

let prop_bdd_support =
  QCheck.Test.make ~name:"bdd: support contains exactly the sensitive vars" ~count:200
    (arb_expr nvars) (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      let sup = Bdd.support man f in
      let sensitive v =
        List.exists
          (fun env ->
            let env' = Array.copy env in
            env'.(v) <- not env'.(v);
            eval_expr env e <> eval_expr env' e)
          all_envs
      in
      List.for_all (fun v -> sup.(v) = sensitive v) (List.init nvars (fun i -> i)))

let prop_bdd_any_sat =
  QCheck.Test.make ~name:"bdd: any_sat returns a satisfying partial assignment"
    ~count:200 (arb_expr nvars) (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      match Bdd.any_sat man f with
      | None -> f = Bdd.bfalse
      | Some lits ->
        let env = Array.make nvars false in
        (* Free variables default to false; check both defaults. *)
        List.iter (fun (v, value) -> env.(v) <- value) lits;
        Bdd.eval man f env)

let prop_bdd_cover_bridge =
  QCheck.Test.make ~name:"bdd: of_cover matches Cover.eval" ~count:200
    (QCheck.make ~print:Logic2.Cover.to_string
       (QCheck.Gen.map (Logic2.Cover.of_cubes nvars)
          QCheck.Gen.(
            list_size (int_bound 5)
              (map
                 (fun lits ->
                   let seen = Hashtbl.create 8 in
                   let lits =
                     List.filter
                       (fun (v, _) ->
                         if Hashtbl.mem seen v then false
                         else (Hashtbl.add seen v (); true))
                       lits
                   in
                   Logic2.Cube.make nvars lits)
                 (list_size (int_bound nvars) (pair (int_bound (nvars - 1)) bool))))))
    (fun cover ->
      let man = Bdd.create ~nvars () in
      let f = Bdd.of_cover man cover in
      List.for_all (fun env -> Bdd.eval man f env = Logic2.Cover.eval cover env) all_envs)

let test_sample_sat () =
  let man = Bdd.create ~nvars:8 () in
  (* f = x0 & !x3 *)
  let f = Bdd.band man (Bdd.var man 0) (Bdd.nvar man 3) in
  let rng = Util.Rng.create 5 in
  for _ = 1 to 50 do
    match Bdd.sample_sat man f ~rand_float:(fun () -> Util.Rng.float rng) with
    | None -> Alcotest.fail "satisfiable function"
    | Some a ->
      check "sample satisfies" true (Bdd.eval man f a)
  done;
  check "unsat sample" true
    (Bdd.sample_sat man Bdd.bfalse ~rand_float:(fun () -> 0.5) = None)

(* ---------- ISOP ---------- *)

let prop_isop_exact =
  QCheck.Test.make ~name:"isop: of_bdd reproduces the function" ~count:200
    (arb_expr nvars) (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      let cover = Isop.of_bdd man f in
      List.for_all
        (fun env -> Logic2.Cover.eval cover env = eval_expr env e)
        all_envs)

let prop_isop_interval =
  QCheck.Test.make ~name:"isop: interval result lies within bounds" ~count:200
    (QCheck.pair (arb_expr nvars) (arb_expr nvars)) (fun (a, b) ->
      let man = Bdd.create ~nvars () in
      let fa = build_bdd man a and fb = build_bdd man b in
      let lower = Bdd.band man fa fb in
      let upper = Bdd.bor man fa fb in
      let cover = Isop.compute man ~lower ~upper in
      let g = Bdd.of_cover man cover in
      Bdd.bimply man lower g = Bdd.btrue && Bdd.bimply man g upper = Bdd.btrue)

let prop_isop_exploits_dc =
  QCheck.Test.make ~name:"isop: interval cover never larger than exact" ~count:100
    (arb_expr nvars) (fun e ->
      let man = Bdd.create ~nvars () in
      let f = build_bdd man e in
      let exact = Isop.of_bdd man f in
      (* Widen the interval by an extra don't-care variable pattern. *)
      let upper = Bdd.bor man f (Bdd.var man 0) in
      let relaxed = Isop.compute man ~lower:(Bdd.band man f (Bdd.nvar man 0)) ~upper in
      Logic2.Cover.num_cubes relaxed <= max 1 (Logic2.Cover.num_cubes exact) + 1)

let test_satcount_wide () =
  (* A function over 700 variables: x0 | x1 — count = 2^700 - 2^698·1 *)
  let man = Bdd.create ~nvars:700 () in
  let f = Bdd.bor man (Bdd.var man 0) (Bdd.var man 1) in
  let count = Bdd.satcount man f in
  (* 3/4 of 2^700 = 3 × 2^698 *)
  check "wide satcount" true
    (Extfloat.equal count (Extfloat.mul_pow2 (Extfloat.of_float 3.) 698))

(* Deterministic QCheck seeding (no wall-clock self-init): the state
   comes from Fuzz.Rng.qcheck_state, overridable via QCHECK_SEED. *)
let qsuite name tests =
  let rand = Fuzz.Rng.qcheck_state () in
  (name, List.map (QCheck_alcotest.to_alcotest ~rand) tests)

let () =
  Alcotest.run "bdd"
    [
      ( "extfloat",
        [
          Alcotest.test_case "basic" `Quick test_extfloat_basic;
          Alcotest.test_case "huge" `Quick test_extfloat_huge;
          Alcotest.test_case "sum precision" `Quick test_extfloat_sum_precision;
        ] );
      qsuite "bdd-props"
        [
          prop_bdd_semantics;
          prop_bdd_canonical;
          prop_bdd_satcount;
          prop_bdd_exists;
          prop_bdd_restrict;
          prop_bdd_compose;
          prop_bdd_support;
          prop_bdd_any_sat;
          prop_bdd_cover_bridge;
        ];
      ( "bdd-unit",
        [
          Alcotest.test_case "sample_sat" `Quick test_sample_sat;
          Alcotest.test_case "satcount 700 vars" `Quick test_satcount_wide;
        ] );
      qsuite "isop" [ prop_isop_exact; prop_isop_interval; prop_isop_exploits_dc ];
    ]
