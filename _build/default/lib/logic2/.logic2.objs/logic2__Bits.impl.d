lib/logic2/bits.ml: Array Format List Sys
