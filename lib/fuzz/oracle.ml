(* The differential-oracle catalogue. Each oracle re-derives one result
   through at least two independent implementations and fails on any
   disagreement; exceptions escaping a body are findings too (run
   converts them to Fail). *)

type outcome = Pass | Fail of string | Skip of string

type t = {
  name : string;
  describe : string;
  check : rng:Util.Rng.t -> budget:Budget.t -> Network.t -> outcome;
}

let failf fmt = Printf.ksprintf (fun s -> Fail s) fmt

(* A specimen large enough to make the BDD-backed oracles expensive is
   outside the fuzzing envelope (the generator never produces one, but
   user-supplied mutations might). *)
let too_large net = Network.num_nodes net > 80 || Array.length (Network.inputs net) > 12

(* ---------- spcf-equal ---------- *)

(* The Table-1 invariant: short-path ≡ path-based ≡ parallel(jobs=2),
   node-based ⊇ exact, at a routine and a near-zero-slack target. All
   four results live in the same BDD manager, so "identical function"
   is handle equality and containment is one band/bnot. *)
let spcf_equal ~rng:_ ~budget net =
  if too_large net then Skip "too large for SPCF cross-check"
  else begin
    let mc = Mapper.map net in
    let ctx = Spcf.Ctx.create ~budget mc in
    let man = ctx.Spcf.Ctx.man in
    (* EMASK_FUZZ_SHARED=1 adds a fifth implementation to the
       cross-check: short-path at jobs=4 over the concurrent
       shared-manager backend. Its Σs live in a different manager, so
       the comparison is the canonical exported DAG (postorder over the
       ROBDD), which must be byte-identical to the sequential one. *)
    let shared_ctx =
      match Sys.getenv_opt "EMASK_FUZZ_SHARED" with
      | None | Some "" | Some "0" -> None
      | Some _ -> Some (Spcf.Ctx.create ~budget ~shared:true mc)
    in
    let check_theta theta =
      let target = Spcf.Ctx.target_of_theta ctx theta in
      let short = Spcf.Exact.short_path ctx ~target in
      let path = Spcf.Exact.path_based ctx ~target in
      let par = Spcf.Parallel.short_path ~jobs:2 ctx ~target in
      let node = Spcf.Node_based.compute ctx ~target in
      let names r =
        String.concat "," (List.map (fun (n, _, _) -> n) r.Spcf.Ctx.outputs)
      in
      let against tag (r : Spcf.Ctx.result) =
        if names short <> names r then
          failf "theta=%.3f: critical outputs differ (short=[%s] %s=[%s])" theta
            (names short) tag (names r)
        else
          let mismatch =
            List.find_opt
              (fun ((_, _, a), (_, _, b)) -> a <> b)
              (List.combine short.Spcf.Ctx.outputs r.Spcf.Ctx.outputs)
          in
          match mismatch with
          | Some ((o, _, _), _) ->
            failf "theta=%.3f: SPCF of %s differs between short-path and %s" theta o tag
          | None -> Pass
      in
      let superset () =
        if names short <> names node then
          failf "theta=%.3f: critical outputs differ (short=[%s] node=[%s])" theta
            (names short) (names node)
        else
          let bad =
            List.find_opt
              (fun ((_, _, exact), (_, _, over)) ->
                Bdd.band man exact (Bdd.bnot man over) <> Bdd.bfalse)
              (List.combine short.Spcf.Ctx.outputs node.Spcf.Ctx.outputs)
          in
          match bad with
          | Some ((o, _, _), _) ->
            failf "theta=%.3f: node-based SPCF of %s is not a superset of the exact SPCF"
              theta o
          | None
            when Bdd.band man short.Spcf.Ctx.union (Bdd.bnot man node.Spcf.Ctx.union)
                 <> Bdd.bfalse ->
            failf "theta=%.3f: node-based union is not a superset" theta
          | None -> Pass
      in
      let against_shared () =
        match shared_ctx with
        | None -> Pass
        | Some sctx ->
          let r =
            Spcf.Parallel.short_path ~jobs:4 sctx
              ~target:(Spcf.Ctx.target_of_theta sctx theta)
          in
          if names short <> names r then
            failf "theta=%.3f: critical outputs differ (short=[%s] shared=[%s])"
              theta (names short) (names r)
          else begin
            let mismatch =
              List.find_opt
                (fun ((_, _, a), (_, _, b)) ->
                  Spcf.Parallel.export man a
                  <> Spcf.Parallel.export sctx.Spcf.Ctx.man b)
                (List.combine short.Spcf.Ctx.outputs r.Spcf.Ctx.outputs)
            in
            match mismatch with
            | Some ((o, _, _), _) ->
              failf
                "theta=%.3f: SPCF of %s differs between short-path and shared jobs=4"
                theta o
            | None -> Pass
          end
      in
      List.fold_left
        (fun acc r -> match acc with Pass -> r () | other -> other)
        Pass
        [
          (fun () -> against "path-based" path);
          (fun () -> against "parallel" par);
          (fun () -> against_shared ());
          superset;
        ]
    in
    match check_theta 0.9 with Pass -> check_theta 0.995 | other -> other
  end

(* ---------- bdd-sim ---------- *)

(* Global BDDs vs bit-parallel simulation vs scalar evaluation,
   exhaustive over the input space (specimens have at most 8 inputs;
   12 is the hard cap). Both heavy sides run word-parallel: Bitsim packs
   62 patterns per word, and the BDD side answers the same 62-pattern
   block with one memoized DAG walk per signal ([Bdd.eval_vec]). The
   scalar [Network.eval] reference then cross-checks every pattern when
   the space is small, one pattern per block otherwise — the word
   comparison has already pinned bitsim = bdd on all of them. *)
let bdd_vs_sim ~rng:_ ~budget net =
  let n = Array.length (Network.inputs net) in
  if n > 12 then Skip "too many inputs for exhaustive comparison"
  else begin
    let man, funcs = Network.to_bdds ~budget net in
    let sim = Bitsim.prepare net in
    let nsig = Network.num_signals net in
    let npat = 1 lsl n in
    let result = ref Pass in
    let base = ref 0 in
    while !result = Pass && !base < npat do
      let lo = !base in
      let cnt = min 62 (npat - lo) in
      (* cnt = 62 wraps 1 lsl 62 to min_int; minus 1 is exactly 62 ones. *)
      let mask = (1 lsl cnt) - 1 in
      let pi_words =
        Array.init n (fun v ->
            let w = ref 0 in
            for b = 0 to cnt - 1 do
              if (lo + b) lsr v land 1 = 1 then w := !w lor (1 lsl b)
            done;
            !w)
      in
      let words = Bitsim.eval_word sim pi_words in
      let report s b =
        let env = Array.init n (fun v -> (lo + b) lsr v land 1 = 1) in
        failf "signal %s pattern %d: eval=%b bitsim=%b bdd=%b"
          (Network.name_of net s) (lo + b)
          (Network.eval net env).(s)
          (words.(s) lsr b land 1 = 1)
          (Bdd.eval man funcs.(s) env)
      in
      (* Word-parallel: all 62 patterns of every signal at once. *)
      for s = 0 to nsig - 1 do
        if !result = Pass then begin
          let diff = (Bdd.eval_vec man funcs.(s) pi_words lxor words.(s)) land mask in
          if diff <> 0 then begin
            let b = ref 0 in
            while diff lsr !b land 1 = 0 do
              incr b
            done;
            result := report s !b
          end
        end
      done;
      (* Scalar reference cross-check. *)
      let scalar_checks = if !result = Pass then if n <= 8 then cnt else 1 else 0 in
      for b = 0 to scalar_checks - 1 do
        if !result = Pass then begin
          let env = Array.init n (fun v -> (lo + b) lsr v land 1 = 1) in
          let vals = Network.eval net env in
          for s = 0 to nsig - 1 do
            if !result = Pass && (words.(s) lsr b land 1 = 1) <> vals.(s) then
              result := report s b
          done
        end
      done;
      base := lo + cnt
    done;
    !result
  end

(* ---------- tsim-sta ---------- *)

(* Event-driven timing simulation against the STA bounds: no signal
   changes after its structural arrival time, sampling at Δ captures
   the settled (zero-delay) values, and nothing settles after the
   latest arrival anywhere. (Δ itself only bounds the *outputs* —
   logic outside every output cone may legitimately settle later.) *)
let tsim_vs_sta ~rng ~budget:_ net =
  let mc = Mapper.map net in
  let sta = Sta.analyze ~model:Sta.Library mc in
  let delays = Sta.gate_delays Sta.Library mc in
  let delta = Sta.delta sta in
  let mnet = Mapped.network mc in
  let n = Array.length (Network.inputs mnet) in
  let nsig = Network.num_signals mnet in
  let latest = ref 0. in
  for s = 0 to nsig - 1 do
    latest := Float.max !latest (Sta.arrival sta s)
  done;
  let result = ref Pass in
  for _round = 1 to 6 do
    if !result = Pass then begin
      let from_ = Array.init n (fun _ -> Util.Rng.bool rng) in
      let to_ = Array.init n (fun _ -> Util.Rng.bool rng) in
      let r = Tsim.simulate mc ~delays ~from_ ~to_ ~clock:(delta +. Sta.eps) in
      if r.Tsim.settle > !latest +. Sta.eps then
        result := failf "settle %.4f after latest STA arrival %.4f" r.Tsim.settle !latest
      else begin
        let vals = Network.eval mnet to_ in
        for s = 0 to nsig - 1 do
          if !result = Pass then
            if r.Tsim.last_change.(s) > Sta.arrival sta s +. Sta.eps then
              result :=
                failf "signal %s changed at %.4f, after its STA arrival %.4f"
                  (Network.name_of mnet s) r.Tsim.last_change.(s) (Sta.arrival sta s)
            else if r.Tsim.final.(s) <> vals.(s) then
              result :=
                failf "signal %s settled to %b but evaluates to %b"
                  (Network.name_of mnet s) r.Tsim.final.(s) vals.(s)
        done;
        if !result = Pass then
          match Tsim.output_errors mc r with
          | [] -> ()
          | (o, _) :: _ ->
            result := failf "output %s mis-captured when sampling at Delta" o
      end
    end
  done;
  !result

(* ---------- pattern-arrival ---------- *)

(* The exact floating-mode reference semantics per pattern, and (when
   the input space is small) the floating delay as the max per-pattern
   arrival. *)
let pattern_arrival ~rng ~budget net =
  if too_large net then Skip "too large for pattern-arrival cross-check"
  else begin
    let mc = Mapper.map net in
    let ctx = Spcf.Ctx.create ~budget mc in
    let mnet = Mapped.network mc in
    let n = Array.length (Network.inputs mnet) in
    let nsig = Network.num_signals mnet in
    let exhaustive = n <= 6 in
    let patterns =
      if exhaustive then
        List.init (1 lsl n) (fun i -> Array.init n (fun v -> i lsr v land 1 = 1))
      else List.init 8 (fun _ -> Array.init n (fun _ -> Util.Rng.bool rng))
    in
    let result = ref Pass in
    let max_arrival = Array.make nsig 0 in
    List.iter
      (fun pat ->
        if !result = Pass then begin
          let values, arrivals = Spcf.Exact.pattern_arrivals ctx pat in
          let vals = Network.eval mnet pat in
          for s = 0 to nsig - 1 do
            max_arrival.(s) <- max max_arrival.(s) arrivals.(s);
            if !result = Pass then
              if values.(s) <> vals.(s) then
                result :=
                  failf "signal %s: pattern value %b vs evaluation %b"
                    (Network.name_of mnet s) values.(s) vals.(s)
              else if arrivals.(s) > ctx.Spcf.Ctx.arrival_units.(s) then
                result :=
                  failf "signal %s: floating arrival %d exceeds structural arrival %d"
                    (Network.name_of mnet s) arrivals.(s)
                    ctx.Spcf.Ctx.arrival_units.(s)
          done
        end)
      patterns;
    if !result = Pass && exhaustive then
      Array.iter
        (fun (o, s) ->
          if !result = Pass then begin
            let fd = Spcf.Ctx.units_of_delay (Spcf.Exact.floating_delay ctx s) in
            if fd <> max_arrival.(s) then
              result :=
                failf "output %s: floating delay %d vs max pattern arrival %d" o fd
                  max_arrival.(s)
          end)
        (Network.outputs mnet);
    !result
  end

(* ---------- masking ---------- *)

(* End-to-end synthesis: equivalence of the masked circuit, the paper's
   Σ ⊆ e ⊆ (ỹ = y) interval, and the masking-contract lints (minus the
   slack margin, which is a quality target rather than an invariant on
   adversarial specimens). *)
let masking ~rng:_ ~budget net =
  if too_large net then Skip "too large for synthesis cross-check"
  else begin
    (* The remaining budget is handed to the synthesis ladder as a spec:
       under pressure the oracle exercises (and still verifies) the
       degraded tiers — they must be sound too. *)
    let options =
      { Masking.Synthesis.default_options with budget = Budget.spec_of budget }
    in
    let m = Masking.Synthesis.synthesize ~options net in
    let r = Masking.Verify.check ~power_rounds:8 m in
    if not r.Masking.Verify.equivalent then
      Fail "masked circuit is not equivalent to the original"
    else if not r.Masking.Verify.coverage_ok then
      Fail "indicator does not cover the SPCF (sigma not a subset of e)"
    else if not r.Masking.Verify.prediction_ok then
      Fail "prediction unsound (e not a subset of (ytilde = y))"
    else begin
      let diags =
        Analysis.Contract.check_mux_insertion m
        @ Analysis.Contract.check_non_intrusive m
        @ Analysis.Contract.check_indicator_soundness m
      in
      match Analysis.Diag.errors diags with
      | [] -> Pass
      | d :: _ -> Fail (Analysis.Diag.to_string d)
    end
  end

(* ---------- blif-roundtrip ---------- *)

(* parse ∘ print preserves the function, and printing reaches a
   fixpoint after one round (the first print may introduce pass-through
   nodes for renamed outputs and drop dead cones). *)
let blif_roundtrip ~rng:_ ~budget:_ net =
  let s1 = Blif.to_string ~model:"fuzz" net in
  let n2 =
    try Blif.parse s1
    with Blif.Parse_error msg ->
      raise (Failure (Printf.sprintf "printed netlist does not re-parse: %s" msg))
  in
  if not (Network.equivalent net n2) then
    Fail "parse(print(net)) is not equivalent to net"
  else begin
    let s2 = Blif.to_string ~model:"fuzz" n2 in
    let n3 = Blif.parse s2 in
    if not (Network.equivalent n2 n3) then
      Fail "second parse/print round changes the function"
    else if Blif.to_string ~model:"fuzz" n3 <> s2 then
      Fail "printing does not reach a fixpoint after one round"
    else Pass
  end

(* ---------- sens-sim ---------- *)

(* Sensitization verdicts against exhaustive bit-parallel simulation.
   The analysis proves them with BDDs and witnesses them with DPLL;
   here a third engine re-derives the static sensitization condition
   per pattern: every signal word comes from [Bitsim], and the per-gate
   Boolean difference is evaluated directly over the SOP cover with the
   on-path pins forced to all-ones / all-zeros words. A [False] path
   must be dead on all 2^n patterns; a [True] path's witness must
   sensitize it. [Unknown] is exempt by construction — it claims
   nothing. *)
let sens_vs_sim ~rng:_ ~budget net =
  let n = Array.length (Network.inputs net) in
  if n > 14 then Skip "too many inputs for exhaustive sensitization check"
  else if Network.num_nodes net > 120 then
    Skip "too large for sensitization check"
  else begin
    let mc = Mapper.map net in
    let report = Sensitization.analyze ~band:0.35 ~budget mc in
    let paths = report.Sensitization.paths in
    if List.length paths > 256 then Skip "too many near-critical paths"
    else begin
      let mnet = Mapped.network mc in
      let sim = Bitsim.prepare mnet in
      (* SOP evaluation over 62-pattern words, independent of the BDD
         and DPLL engines (and of [Logic2.Cover.eval]). *)
      let cover_word cover fanin_words =
        List.fold_left
          (fun acc cube ->
            acc
            lor List.fold_left
                  (fun w (v, phase) ->
                    w land (if phase then fanin_words.(v) else lnot fanin_words.(v)))
                  (-1) (Logic2.Cube.literals cube))
          0 (Logic2.Cover.cubes cover)
      in
      (* The sensitization condition of [path] on one 62-pattern block:
         AND over its gates of f[x:=1] xor f[x:=0], side inputs at
         their simulated values. *)
      let cond_word sigs words =
        let w = ref (-1) in
        for i = 1 to Array.length sigs - 1 do
          let g = sigs.(i) and x = sigs.(i - 1) in
          match Network.node_of mnet g with
          | None -> ()
          | Some nd ->
            let sub c =
              Array.map
                (fun f -> if f = x then c else words.(f))
                nd.Network.fanins
            in
            w :=
              !w
              land (cover_word nd.Network.func (sub (-1))
                   lxor cover_word nd.Network.func (sub 0))
        done;
        !w
      in
      let pi_words_of ~lo ~cnt =
        Array.init n (fun v ->
            let w = ref 0 in
            for b = 0 to cnt - 1 do
              if (lo + b) lsr v land 1 = 1 then w := !w lor (1 lsl b)
            done;
            !w)
      in
      let npat = 1 lsl n in
      let check c =
        let sigs = c.Sensitization.path.Paths.signals in
        let name () = Paths.to_string mnet c.Sensitization.path in
        match c.Sensitization.verdict with
        | Sensitization.Unknown _ -> Pass
        | Sensitization.True w ->
          (* One-block evaluation at the witness pattern. *)
          let pi_words = Array.init n (fun v -> if w.(v) then 1 else 0) in
          let words = Bitsim.eval_word sim pi_words in
          if cond_word sigs words land 1 = 1 then Pass
          else failf "witness does not sensitize path %s" (name ())
        | Sensitization.False ->
          let result = ref Pass in
          let base = ref 0 in
          while !result = Pass && !base < npat do
            let lo = !base in
            let cnt = min 62 (npat - lo) in
            let mask = (1 lsl cnt) - 1 in
            let words = Bitsim.eval_word sim (pi_words_of ~lo ~cnt) in
            let hit = cond_word sigs words land mask in
            if hit <> 0 then begin
              let b = ref 0 in
              while hit lsr !b land 1 = 0 do
                incr b
              done;
              result :=
                failf "pattern %d sensitizes path %s declared False" (lo + !b)
                  (name ())
            end;
            base := lo + cnt
          done;
          !result
      in
      List.fold_left
        (fun acc c -> match acc with Pass -> check c | other -> other)
        Pass paths
    end
  end

(* ---------- eco-equal ---------- *)

(* Full recompute vs incremental recompute after a random edit
   sequence, across jobs ∈ {1, 2, 4, 8}: the canonical rendering
   (SPCF postorder DAGs, masking covers, verdict kinds, summaries)
   must be byte-identical. θ = 0.5 keeps several outputs critical so
   jobs > 1 actually fans out; the sensitization band exercises the
   verdict-reuse path too. *)
let eco_theta = 0.5
let eco_band = 0.35

let eco_edits ~rng net =
  match Eco.design_of_mapped (Mapper.map net) with
  | exception Invalid_argument _ -> None
  | d -> (
    let count = 1 + Util.Rng.int rng 6 in
    match Eco_gen.edits ~rng ~count d with [] -> None | edits -> Some edits)

(* Budget-sound [Unknown] verdicts are exempt from the comparison: the
   incremental path may legally keep an [Unknown] a fresh run would
   decide (and vice versa), since the two runs tick the budget
   differently. *)
let has_unknown t =
  match t.Eco.sens with
  | None -> false
  | Some r ->
    List.exists
      (fun c ->
        match c.Sensitization.verdict with Sensitization.Unknown _ -> true | _ -> false)
      r.Sensitization.paths

let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i = function
    | x :: xs, y :: ys -> if x <> y then (i, x, y) else go (i + 1) (xs, ys)
    | x :: _, [] -> (i, x, "<missing>")
    | [], y :: _ -> (i, "<missing>", y)
    | [], [] -> (i, "<equal>", "<equal>")
  in
  go 1 (la, lb)

let eco_replay ~budget net edits =
  let d = Eco.design_of_mapped (Mapper.map net) in
  let base = Eco.snapshot ~theta:eco_theta ~band:eco_band ~budget d in
  let d', _, _ = Eco.apply_all d edits in
  let full = Eco.snapshot ~theta:eco_theta ~band:eco_band ~budget d' in
  if has_unknown base || has_unknown full then Skip "unknown verdicts under budget"
  else begin
    let reference = Eco.canonical full in
    let rec loop = function
      | [] -> Pass
      | jobs :: rest ->
        let incr = Eco.recompute ~jobs base edits in
        if has_unknown incr then
          Skip (Printf.sprintf "unknown verdicts at jobs=%d" jobs)
        else begin
          let got = Eco.canonical incr in
          if got <> reference then begin
            let line, want, have = first_diff reference got in
            failf
              "jobs=%d: incremental diverges from full recompute after %d edits \
               (canonical line %d: full %S vs incremental %S)"
              jobs (List.length edits) line want have
          end
          else loop rest
        end
    in
    loop [ 1; 2; 4; 8 ]
  end

let eco_equal ~rng ~budget net =
  if Network.num_nodes net > 60 || Array.length (Network.inputs net) > 12 then
    Skip "too large for ECO cross-check"
  else
    match eco_edits ~rng net with
    | None -> Skip "no feasible edit sequence"
    | Some edits -> eco_replay ~budget net edits

(* ---------- catalogue ---------- *)

let all =
  [
    {
      name = "spcf-equal";
      describe =
        "short-path = path-based = parallel SPCF; node-based is a superset (Table 1)";
      check = spcf_equal;
    };
    {
      name = "bdd-sim";
      describe =
        "word-parallel BDD evaluation vs bit-parallel simulation vs scalar \
         evaluation, exhaustive";
      check = bdd_vs_sim;
    };
    {
      name = "tsim-sta";
      describe = "event-driven timing simulation within STA bounds; Delta-sampling safe";
      check = tsim_vs_sta;
    };
    {
      name = "pattern-arrival";
      describe = "floating-mode per-pattern arrivals vs structural bounds and evaluation";
      check = pattern_arrival;
    };
    {
      name = "masking";
      describe = "synthesized masker: equivalence, sigma <= e <= (ytilde = y), contract lints";
      check = masking;
    };
    {
      name = "blif-roundtrip";
      describe = "BLIF parse/print round-trip preserves the function; printing is a fixpoint";
      check = blif_roundtrip;
    };
    {
      name = "sens-sim";
      describe =
        "sensitization verdicts vs exhaustive bit-parallel simulation (True \
         witnesses sensitize; False paths dead on all patterns)";
      check = sens_vs_sim;
    };
    {
      name = "eco-equal";
      describe =
        "incremental ECO recompute = full recompute after random edit sequences, \
         byte-identical canonical form across jobs in {1,2,4,8}";
      check = eco_equal;
    };
  ]

let names = List.map (fun o -> o.name) all
let find name = List.find_opt (fun o -> o.name = name) all

let run o ~rng ?(budget = Budget.unlimited) net =
  try o.check ~rng ~budget net with
  | Budget.Budget_exceeded r ->
    (* Running out of budget on a specimen is not a finding: the check
       simply did not complete. *)
    Skip (Printf.sprintf "budget exhausted (%s)" (Budget.reason_to_string r))
  | e -> Fail (Printf.sprintf "uncaught exception: %s" (Printexc.to_string e))
