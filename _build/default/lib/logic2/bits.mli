(** Fixed-width bitsets over [0 .. width-1]. Mutating operations ([set],
    [clear], [assign]) modify in place; all binary operations are pure. *)

type t

val create : int -> t
(** [create width] is the empty set over a universe of [width] bits. *)

val width : t -> int
val copy : t -> t

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val symdiff : t -> t -> t
val complement : t -> t

val is_empty : t -> bool
val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is [true] iff every bit of [a] is set in [b]. *)

val disjoint : t -> t -> bool
val count : t -> int
val hash : t -> int

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int -> int list -> t
val first_set : t -> int option
val pp : Format.formatter -> t -> unit
