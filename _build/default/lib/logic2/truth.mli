(** Dense truth tables for small arities (n ≤ 24); index [i] encodes the
    assignment whose variable [v] is [(i lsr v) land 1]. *)

type t

val max_vars : int
val create : int -> t
val num_vars : t -> int
val size : t -> int
val get : t -> int -> bool
val set : t -> int -> bool -> unit
val assignment_of_index : int -> int -> bool array
val init : int -> (bool array -> bool) -> t
val of_cover : Cover.t -> t
val count_ones : t -> int
val equal : t -> t -> bool
val lnot : t -> t
val land_ : t -> t -> t
val lor_ : t -> t -> t
val lxor_ : t -> t -> t
val minterms : t -> int list
val cover_of_minterms : int -> int list -> Cover.t
val to_cover : t -> Cover.t
