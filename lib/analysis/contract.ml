(* Masking-contract verification (paper Sec. 4), as lint passes over a
   synthesized Masking.Synthesis.t: structural mux-insertion checks,
   BDD-based non-intrusiveness and indicator soundness, and the >= 20%
   timing-slack requirement on the masking circuit. *)

open Masking

let slack_margin = 0.2

let run_pass name f x =
  Obs.with_span ("lint.contract." ^ name) @@ fun () -> f x

(* The output mux of every protected output must be a MUX21 with pins
   (a = original y, b = prediction ~y, c = indicator e), and the
   combined circuit's output of that name must be the mux itself. *)
let check_mux_insertion (m : Synthesis.t) =
  run_pass "mux"
    (fun (m : Synthesis.t) ->
  let combined = m.Synthesis.combined in
  let cnet = Mapped.network combined in
  let outs = Network.outputs cnet in
  let out_signal name =
    Array.find_opt (fun (n, _) -> n = name) outs |> Option.map snd
  in
  List.concat_map
    (fun (po : Synthesis.per_output) ->
      let name = po.Synthesis.name in
      let bad fmt =
        Printf.ksprintf
          (fun msg -> [ Diag.diag Diag.Mask_mux ~signal:name msg ])
          fmt
      in
      match Mapped.cell_of combined po.Synthesis.masked_combined with
      | None -> bad "masked output %S is not driven by a gate" name
      | Some cell when cell.Cell.cname <> Cell.mux21.Cell.cname ->
        bad "masked output %S is driven by %s, expected MUX21" name cell.Cell.cname
      | Some _ ->
        let fanins = Network.fanins cnet po.Synthesis.masked_combined in
        if
          fanins
          <> [|
               po.Synthesis.y_combined;
               po.Synthesis.ytilde_combined;
               po.Synthesis.e_combined;
             |]
        then bad "mux pins of %S are not (y, ~y, e) in MUX21 pin order" name
        else if out_signal name <> Some po.Synthesis.masked_combined then
          bad "combined output %S does not expose the mux" name
        else [])
    m.Synthesis.per_output)
    m

(* BDDs of the combined and original circuits in the SPCF manager (the
   input orders agree by construction). *)
let elaborate_pair (m : Synthesis.t) =
  let man = m.Synthesis.ctx.Spcf.Ctx.man in
  let cf = Synthesis.bdds_in_man man (Mapped.network m.Synthesis.combined) in
  let of_ = Synthesis.bdds_in_man man (Mapped.network m.Synthesis.original) in
  (man, cf, of_)

let is_err_output name =
  String.length name >= 5 && String.sub name (String.length name - 5) 5 = "__err"

let check_non_intrusive (m : Synthesis.t) =
  run_pass "non-intrusive"
    (fun (m : Synthesis.t) ->
  let _, cf, of_ = elaborate_pair m in
  let onet = Mapped.network m.Synthesis.original in
  let orig_outs = Network.outputs onet in
  let orig name =
    Array.find_opt (fun (n, _) -> n = name) orig_outs |> Option.map snd
  in
  Array.to_list (Network.outputs (Mapped.network m.Synthesis.combined))
  |> List.filter_map (fun (name, s) ->
         if is_err_output name then None
         else
           match orig name with
           | None ->
             Some
               (Diag.diag Diag.Mask_intrusive ~signal:name
                  (Printf.sprintf
                     "combined circuit exposes output %S absent from the original"
                     name))
           | Some os ->
             if cf.(s) = of_.(os) then None
             else
               Some
                 (Diag.diag Diag.Mask_intrusive ~signal:name
                    (Printf.sprintf
                       "masked output %S is not combinationally equivalent to the \
                        original"
                       name))))
    m

let check_indicator_soundness (m : Synthesis.t) =
  run_pass "indicator"
    (fun (m : Synthesis.t) ->
  let man, cf, _ = elaborate_pair m in
  List.concat_map
    (fun (po : Synthesis.per_output) ->
      let name = po.Synthesis.name in
      let e = cf.(po.Synthesis.e_combined) in
      let y = cf.(po.Synthesis.y_combined) in
      let yt = cf.(po.Synthesis.ytilde_combined) in
      let sigma = po.Synthesis.sigma in
      let coverage =
        if Bdd.bimply man sigma e <> Bdd.btrue then
          [
            Diag.diag Diag.Mask_coverage ~signal:name
              (Printf.sprintf
                 "indicator of %S does not cover its SPCF (some speed-path pattern \
                  is unmasked)"
                 name);
          ]
        else []
      in
      let soundness =
        if Bdd.bimply man e (Bdd.bxnor man y yt) <> Bdd.btrue then
          [
            Diag.diag Diag.Mask_coverage ~signal:name
              (Printf.sprintf
                 "indicator of %S can select an incorrect prediction (e raised while \
                  ~y differs from y)"
                 name);
          ]
        else []
      in
      coverage @ soundness)
    m.Synthesis.per_output)
    m

let check_slack ?(margin = slack_margin) (m : Synthesis.t) =
  run_pass "slack"
    (fun (m : Synthesis.t) ->
  if m.Synthesis.per_output = [] then []
  else begin
    let model = m.Synthesis.options.Synthesis.delay_model in
    let delta = m.Synthesis.delta in
    let delta_masking =
      Sta.delta (Sta.analyze ~model m.Synthesis.masking)
    in
    let bound = (1. -. margin) *. delta in
    if delta_masking > bound +. Sta.eps then
      [
        Diag.diag Diag.Mask_slack
          (Printf.sprintf
             "masking circuit delay %.3f exceeds %.3f (= %.0f%% of the original \
              critical path %.3f); slack is %.1f%%, contract requires >= %.0f%%"
             delta_masking bound
             ((1. -. margin) *. 100.)
             delta
             (100. *. (delta -. delta_masking) /. delta)
             (margin *. 100.));
      ]
    else []
  end)
    m

let check ?margin m =
  Obs.with_span "lint.contract" @@ fun () ->
  check_mux_insertion m @ check_non_intrusive m @ check_indicator_soundness m
  @ check_slack ?margin m
