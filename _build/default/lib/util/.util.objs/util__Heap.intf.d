lib/util/heap.mli:
