lib/sim/tsim.mli: Mapped Network
