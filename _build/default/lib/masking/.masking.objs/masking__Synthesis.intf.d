lib/masking/synthesis.mli: Bdd Logic2 Mapped Mapper Network Spcf Sta
