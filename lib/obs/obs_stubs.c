/* Monotonic clock for Obs.now: seconds (as a double) from an arbitrary
   fixed origin. Spans and reported runtimes only ever use differences
   of this value, so the origin does not matter — what matters is that
   the clock cannot step backwards under NTP adjustment, which
   gettimeofday can. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>

/* The realtime clock (emask_obs_realtime_now) is the one exception:
   the run ledger stamps records with wall-clock epoch seconds so runs
   can be ordered across reboots. It is never used for durations. */

#if defined(_WIN32)

#include <windows.h>
#include <time.h>

CAMLprim value emask_obs_monotonic_now(value unit)
{
  LARGE_INTEGER freq, count;
  (void)unit;
  QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&count);
  return caml_copy_double((double)count.QuadPart / (double)freq.QuadPart);
}

CAMLprim value emask_obs_realtime_now(value unit)
{
  (void)unit;
  return caml_copy_double((double)time(NULL));
}

#else

#include <time.h>

CAMLprim value emask_obs_monotonic_now(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec);
}

CAMLprim value emask_obs_realtime_now(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_REALTIME, &ts);
  return caml_copy_double((double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec);
}

#endif
