(* Diagnostics: stable check codes with severities, optional source
   locations (threaded from the BLIF parser) and signal names, plus the
   text and JSON reporters shared by every pass and by `emask lint`. *)

type severity = Info | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_order = function Info -> 0 | Warning -> 1 | Error -> 2

type code =
  | Parse_error
  | Cycle
  | Undriven
  | Multi_driver
  | Unused_input
  | Dead_cone
  | Const_gate
  | No_outputs
  | Unmapped_gate
  | Sta_delta
  | Sta_monotone
  | Sta_negative
  | Sta_false_path
  | Mask_intrusive
  | Mask_slack
  | Mask_mux
  | Mask_coverage
  | Mask_false_paths

let code_id = function
  | Parse_error -> "BLIF001"
  | Cycle -> "NET001"
  | Undriven -> "NET002"
  | Multi_driver -> "NET003"
  | Unused_input -> "NET004"
  | Dead_cone -> "NET005"
  | Const_gate -> "NET006"
  | No_outputs -> "NET007"
  | Unmapped_gate -> "MAP001"
  | Sta_delta -> "STA001"
  | Sta_monotone -> "STA002"
  | Sta_negative -> "STA003"
  | Sta_false_path -> "STA004"
  | Mask_intrusive -> "MASK001"
  | Mask_slack -> "MASK002"
  | Mask_mux -> "MASK003"
  | Mask_coverage -> "MASK004"
  | Mask_false_paths -> "MASK005"

let code_name = function
  | Parse_error -> "parse-error"
  | Cycle -> "cycle"
  | Undriven -> "undriven"
  | Multi_driver -> "multi-driver"
  | Unused_input -> "unused-input"
  | Dead_cone -> "dead-cone"
  | Const_gate -> "const-gate"
  | No_outputs -> "no-outputs"
  | Unmapped_gate -> "unmapped-gate"
  | Sta_delta -> "sta-delta"
  | Sta_monotone -> "sta-monotone"
  | Sta_negative -> "sta-negative"
  | Sta_false_path -> "sta-false-path"
  | Mask_intrusive -> "mask-intrusive"
  | Mask_slack -> "mask-slack"
  | Mask_mux -> "mask-mux"
  | Mask_coverage -> "mask-coverage"
  | Mask_false_paths -> "mask-false-paths"

let default_severity = function
  | Parse_error | Cycle | Undriven | Multi_driver | No_outputs -> Error
  | Unmapped_gate | Sta_delta | Sta_monotone | Sta_negative -> Error
  | Mask_intrusive | Mask_slack | Mask_mux | Mask_coverage -> Error
  | Unused_input | Dead_cone | Const_gate -> Warning
  (* Advisory findings: a false path wastes area/timing margin but the
     circuit and its masking remain correct. *)
  | Sta_false_path | Mask_false_paths -> Warning

let all_codes =
  [
    Parse_error;
    Cycle;
    Undriven;
    Multi_driver;
    Unused_input;
    Dead_cone;
    Const_gate;
    No_outputs;
    Unmapped_gate;
    Sta_delta;
    Sta_monotone;
    Sta_negative;
    Sta_false_path;
    Mask_intrusive;
    Mask_slack;
    Mask_mux;
    Mask_coverage;
    Mask_false_paths;
  ]

(* The IR level a check runs at — the third column of the README
   catalogue table (pinned by a test so docs can't drift). *)
let code_level = function
  | Parse_error -> "BLIF"
  | Cycle | Undriven | Multi_driver | Unused_input | Dead_cone | Const_gate
  | No_outputs ->
    "Network"
  | Unmapped_gate | Sta_delta | Sta_monotone | Sta_negative | Sta_false_path
  | Mask_intrusive | Mask_slack | Mask_mux | Mask_coverage | Mask_false_paths ->
    "Mapped"

(* One-line meanings, also pinned into the README table. *)
let code_meaning = function
  | Parse_error -> "BLIF source failed to parse"
  | Cycle -> "combinational cycle"
  | Undriven -> "undriven signal"
  | Multi_driver -> "multiply-driven signal"
  | Unused_input -> "unused primary input"
  | Dead_cone -> "logic unreachable from any primary output"
  | Const_gate -> "constant-provable gate"
  | No_outputs -> "network has no primary outputs"
  | Unmapped_gate -> "internal node without a library cell"
  | Sta_delta -> "critical-path / per-output arrival inconsistency"
  | Sta_monotone -> "arrival-time monotonicity violation"
  | Sta_negative -> "negative delay or arrival"
  | Sta_false_path -> "topologically-critical output carried only by provably false paths"
  | Mask_intrusive -> "masking circuit is intrusive (combined differs from original)"
  | Mask_slack -> "timing-slack contract violated (< 20 % margin)"
  | Mask_mux -> "malformed output-mux insertion"
  | Mask_coverage -> "indicator coverage / prediction-soundness gap"
  | Mask_false_paths -> "masking cover dominated by statically false paths"

type t = {
  code : code;
  severity : severity;
  loc : Blif.loc option;
  signal : string option;
  message : string;
}

let diag ?severity ?loc ?signal code message =
  let severity = match severity with Some s -> s | None -> default_severity code in
  { code; severity; loc; signal; message }

let compare a b =
  let c = Stdlib.compare (severity_order b.severity) (severity_order a.severity) in
  if c <> 0 then c
  else
    let line = function Some l -> l.Blif.line | None -> max_int in
    let c = Stdlib.compare (line a.loc) (line b.loc) in
    if c <> 0 then c
    else
      let c = Stdlib.compare (code_id a.code) (code_id b.code) in
      if c <> 0 then c else Stdlib.compare (a.signal, a.message) (b.signal, b.message)

let sort ds = List.stable_sort compare ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)
let errors ds = List.filter (fun d -> d.severity = Error) ds

let max_severity = function
  | [] -> None
  | ds ->
    Some
      (List.fold_left
         (fun acc d ->
           if severity_order d.severity > severity_order acc then d.severity else acc)
         Info ds)

let exit_code ?(fail_on = Error) ds =
  match max_severity ds with
  | Some Error -> 2
  | Some Warning when severity_order fail_on <= severity_order Warning -> 1
  | Some Info when fail_on = Info -> 1
  | _ -> 0

let to_string d =
  let b = Buffer.create 80 in
  (match d.loc with
  | Some l ->
    Buffer.add_string b (Blif.loc_to_string l);
    Buffer.add_string b ": "
  | None -> ());
  Buffer.add_string b (severity_to_string d.severity);
  Buffer.add_string b (Printf.sprintf " %s [%s]" (code_id d.code) (code_name d.code));
  (match d.signal with
  | Some s -> Buffer.add_string b (Printf.sprintf " (signal %s)" s)
  | None -> ());
  Buffer.add_string b ": ";
  Buffer.add_string b d.message;
  Buffer.contents b

let summary ds =
  let e = count Error ds and w = count Warning ds and i = count Info ds in
  if e = 0 && w = 0 && i = 0 then "clean"
  else
    let plural n word =
      Printf.sprintf "%d %s%s" n word (if n = 1 then "" else "s")
    in
    String.concat ", "
      (List.filter_map
         (fun (n, word) -> if n > 0 then Some (plural n word) else None)
         [ (e, "error"); (w, "warning"); (i, "info") ])

let print oc ds =
  List.iter (fun d -> Printf.fprintf oc "%s\n" (to_string d)) (sort ds);
  Printf.fprintf oc "lint: %s\n" (summary ds)

let to_json d =
  let open Obs_json in
  let base =
    [
      ("code", String (code_id d.code));
      ("name", String (code_name d.code));
      ("severity", String (severity_to_string d.severity));
      ("message", String d.message);
    ]
  in
  let with_loc =
    match d.loc with
    | Some l ->
      let file = match l.Blif.file with Some f -> [ ("file", String f) ] | None -> [] in
      base @ file @ [ ("line", Int l.Blif.line) ]
    | None -> base
  in
  let with_sig =
    match d.signal with Some s -> with_loc @ [ ("signal", String s) ] | None -> with_loc
  in
  Obj with_sig

let report_json ?name ds =
  let open Obs_json in
  let header = match name with Some n -> [ ("circuit", String n) ] | None -> [] in
  Obj
    (header
    @ [
        ("diagnostics", List (List.map to_json (sort ds)));
        ( "summary",
          Obj
            [
              ("errors", Int (count Error ds));
              ("warnings", Int (count Warning ds));
              ("infos", Int (count Info ds));
            ] );
      ])
