lib/logic2/primes.mli: Cover Truth
