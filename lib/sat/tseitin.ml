(* Tseitin encoding of Boolean networks into CNF, and a SAT-based miter
   for combinational equivalence checking — the independent counterpart
   to the BDD-based [Network.equivalent]. *)

type encoding = {
  solver : Dpll.t;
  var_of_signal : int array; (* per network signal *)
  next_var : int ref;
}

let fresh enc =
  let v = !(enc.next_var) in
  incr enc.next_var;
  v

(* A cover input binding: a literal of the solver, or a constant that
   partially evaluates the cover during encoding. *)
type input = Const of bool | Lit of Dpll.literal

(* CNF-encode an SOP over per-variable bindings. Cubes are reduced
   under the constant bindings first (a conflicting literal kills the
   cube, a matching one drops out), so the encoding introduces no
   variables for logic the constants already decide; the cover's value
   comes back as a literal — or as a constant when the bindings decide
   it outright. Used for pin-substituted gate encodings (sensitization
   analysis) where some pins of a gate are forced to a value. *)
let encode_sop solver next_var cover binds =
  let fresh () =
    let v = !next_var in
    incr next_var;
    v
  in
  (* Reduce each cube: [None] when a constant binding contradicts a
     literal; [Some lits] with the surviving solver literals otherwise. *)
  let reduce cube =
    List.fold_left
      (fun acc (v, phase) ->
        match acc with
        | None -> None
        | Some lits -> (
          match binds.(v) with
          | Const b -> if b = phase then Some lits else None
          | Lit l -> Some ((if phase then l else Dpll.negate l) :: lits)))
      (Some []) (Logic2.Cube.literals cube)
  in
  let cubes = List.filter_map reduce (Logic2.Cover.cubes cover) in
  if List.exists (fun lits -> lits = []) cubes then Const true
  else
    (* Cube variables u <-> AND of surviving literals. *)
    let cube_lits =
      List.map
        (function
          | [ single ] -> single
          | lits ->
            let u = fresh () in
            List.iter (fun l -> Dpll.add_clause solver [ Dpll.neg u; l ]) lits;
            Dpll.add_clause solver (Dpll.pos u :: List.map Dpll.negate lits);
            Dpll.pos u)
        cubes
    in
    match cube_lits with
    | [] -> Const false
    | [ single ] -> Lit single
    | lits ->
      (* z <-> OR of cubes. *)
      let z = fresh () in
      Dpll.add_clause solver (Dpll.neg z :: lits);
      List.iter
        (fun l -> Dpll.add_clause solver [ Dpll.negate l; Dpll.pos z ])
        lits;
      Lit (Dpll.pos z)

(* Encode every signal of [net] on top of an existing variable budget;
   input variables are supplied by [input_var name]. *)
let encode_network solver next_var ~input_var net =
  let n = Network.num_signals net in
  let enc = { solver; var_of_signal = Array.make n (-1); next_var } in
  Array.iter
    (fun s -> enc.var_of_signal.(s) <- input_var (Network.name_of net s))
    (Network.inputs net);
  Array.iter
    (fun s ->
      match Network.node_of net s with
      | None -> ()
      | Some nd ->
        let z = fresh enc in
        enc.var_of_signal.(s) <- z;
        let lit_of (local, phase) =
          let v = enc.var_of_signal.(nd.Network.fanins.(local)) in
          if phase then Dpll.pos v else Dpll.neg v
        in
        let cover = nd.Network.func in
        if Logic2.Cover.is_zero cover then Dpll.add_clause solver [ Dpll.neg z ]
        else if Logic2.Cover.has_universe cover then
          Dpll.add_clause solver [ Dpll.pos z ]
        else begin
          (* Cube variables u_i <-> AND of literals. *)
          let cube_vars =
            List.map
              (fun cube ->
                let lits = List.map lit_of (Logic2.Cube.literals cube) in
                match lits with
                | [ single ] -> single (* the cube IS its literal *)
                | _ ->
                  let u = fresh enc in
                  List.iter
                    (fun l -> Dpll.add_clause solver [ Dpll.neg u; l ])
                    lits;
                  Dpll.add_clause solver
                    (Dpll.pos u :: List.map Dpll.negate lits);
                  Dpll.pos u)
              (Logic2.Cover.cubes cover)
          in
          (* z <-> OR of cubes. *)
          Dpll.add_clause solver (Dpll.neg z :: cube_vars);
          List.iter
            (fun u -> Dpll.add_clause solver [ Dpll.negate u; Dpll.pos z ])
            cube_vars
        end)
    (Network.topo_order net);
  enc

(* SAT-based combinational equivalence: build a miter over shared input
   variables and ask whether any output pair can differ. *)
let equivalent net_a net_b =
  (* Inputs are matched by name over the union of both input sets: an
     input appearing on one side only is simply an unconstrained
     variable there (a circuit that truly depends on it differently is
     caught by the miter). *)
  let names_a =
    List.sort compare (Array.to_list (Array.map (Network.name_of net_a) (Network.inputs net_a)))
  in
  let names_b =
    List.sort compare (Array.to_list (Array.map (Network.name_of net_b) (Network.inputs net_b)))
  in
  let names = List.sort_uniq compare (names_a @ names_b) in
  begin
    let next_var = ref 0 in
    let input_vars = Hashtbl.create 32 in
    List.iter
      (fun name ->
        Hashtbl.replace input_vars name !next_var;
        incr next_var)
      names;
    (* A generous variable budget: inputs + nodes + cubes. *)
    let budget net =
      Network.num_signals net + 4
      + Array.fold_left
          (fun acc s ->
            match Network.node_of net s with
            | None -> acc
            | Some nd -> acc + Logic2.Cover.num_cubes nd.Network.func + 1)
          0 (Network.topo_order net)
    in
    let total = !next_var + budget net_a + budget net_b + 8 in
    let solver = Dpll.create (total + Array.length (Network.outputs net_a) + 1) in
    let input_var name = Hashtbl.find input_vars name in
    let enc_a = encode_network solver next_var ~input_var net_a in
    let enc_b = encode_network solver next_var ~input_var net_b in
    let outs_a = Network.outputs net_a and outs_b = Network.outputs net_b in
    if Array.length outs_a <> Array.length outs_b then false
    else begin
      let diff_lits =
        Array.to_list outs_a
        |> List.filter_map (fun (name, sa) ->
               match Array.find_opt (fun (n, _) -> n = name) outs_b with
               | None -> None
               | Some (_, sb) ->
                 let a = enc_a.var_of_signal.(sa)
                 and b = enc_b.var_of_signal.(sb) in
                 (* d <-> a xor b *)
                 let d = fresh enc_a in
                 Dpll.add_clause solver [ Dpll.neg d; Dpll.pos a; Dpll.pos b ];
                 Dpll.add_clause solver [ Dpll.neg d; Dpll.neg a; Dpll.neg b ];
                 Dpll.add_clause solver [ Dpll.pos d; Dpll.neg a; Dpll.pos b ];
                 Dpll.add_clause solver [ Dpll.pos d; Dpll.pos a; Dpll.neg b ];
                 Some (Dpll.pos d))
      in
      if List.length diff_lits <> Array.length outs_a then false
      else begin
        Dpll.add_clause solver diff_lits;
        not (Dpll.is_satisfiable solver)
      end
    end
  end
