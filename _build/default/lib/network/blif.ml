(* Reader/writer for the combinational subset of BLIF: .model, .inputs,
   .outputs, .names (single-output on-set covers), .end. Latches and
   subcircuits are rejected — the paper's circuits are combinational. *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let tokenize_lines text =
  (* Join continuation lines ending in '\', drop comments and blanks. *)
  let raw = String.split_on_char '\n' text in
  let rec join acc pending = function
    | [] -> List.rev (if pending = "" then acc else pending :: acc)
    | line :: rest ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim (pending ^ " " ^ line) in
      if String.length line > 0 && line.[String.length line - 1] = '\\' then
        join acc (String.sub line 0 (String.length line - 1)) rest
      else if line = "" then join acc "" rest
      else join (line :: acc) "" rest
  in
  let lines = join [] "" raw in
  List.map
    (fun l ->
      String.split_on_char ' ' l |> List.filter (fun s -> s <> "") |> fun ts ->
      List.concat_map (String.split_on_char '\t') ts |> List.filter (fun s -> s <> ""))
    lines
  |> List.filter (fun l -> l <> [])

type pending_names = { out : string; ins : string list; rows : (string * char) list }

let parse text =
  let lines = tokenize_lines text in
  let inputs = ref [] and outputs = ref [] and names = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | None -> ()
    | Some p ->
      names := { p with rows = List.rev p.rows } :: !names;
      current := None
  in
  let handle = function
    | ".model" :: _ -> ()
    | ".inputs" :: ins -> inputs := !inputs @ ins
    | ".outputs" :: outs -> outputs := !outputs @ outs
    | ".names" :: signals -> begin
      flush ();
      match List.rev signals with
      | out :: ins_rev -> current := Some { out; ins = List.rev ins_rev; rows = [] }
      | [] -> fail ".names with no signals"
    end
    | ".end" :: _ -> flush ()
    | (".latch" | ".subckt" | ".gate") :: _ ->
      fail "only combinational single-model BLIF is supported"
    | [ row; value ] when !current <> None ->
      let p = Option.get !current in
      if String.length value <> 1 || (value.[0] <> '0' && value.[0] <> '1') then
        fail "bad cover output value %S" value;
      current := Some { p with rows = (row, value.[0]) :: p.rows }
    | [ value ] when !current <> None && (value = "0" || value = "1") ->
      (* Constant node: a row with no input plane. *)
      let p = Option.get !current in
      current := Some { p with rows = ("", value.[0]) :: p.rows }
    | tok :: _ -> fail "unexpected token %S" tok
    | [] -> ()
  in
  List.iter handle lines;
  flush ();
  let names = List.rev !names in
  (* Build the network; nodes may appear in any order in BLIF, so insert
     them in dependency order. *)
  let net = Network.create () in
  List.iter (fun i -> ignore (Network.add_input net i)) !inputs;
  let defs = Hashtbl.create 64 in
  List.iter
    (fun p ->
      if Hashtbl.mem defs p.out then fail "signal %S defined twice" p.out;
      Hashtbl.replace defs p.out p)
    names;
  let in_progress = Hashtbl.create 64 in
  let rec ensure name =
    match Network.find net name with
    | Some s -> s
    | None ->
      if Hashtbl.mem in_progress name then fail "combinational cycle at %S" name;
      Hashtbl.replace in_progress name ();
      let p =
        match Hashtbl.find_opt defs name with
        | Some p -> p
        | None -> fail "undefined signal %S" name
      in
      let fanins = Array.of_list (List.map ensure p.ins) in
      let arity = Array.length fanins in
      let on_rows = List.filter (fun (_, v) -> v = '1') p.rows in
      let off_rows = List.filter (fun (_, v) -> v = '0') p.rows in
      let cover_of rows =
        Logic2.Cover.of_cubes arity
          (List.map
             (fun (row, _) ->
               if row = "" then Logic2.Cube.universe arity
               else Logic2.Sop.cube_of_blif_row arity row)
             rows)
      in
      let func =
        match (on_rows, off_rows) with
        | [], [] -> Logic2.Cover.zero arity
        | rows, [] -> cover_of rows
        | [], rows -> Logic2.Cover.complement (cover_of rows)
        | _ -> fail "mixed on-set/off-set rows for %S" name
      in
      Hashtbl.remove in_progress name;
      Network.add_node net name ~fanins ~func
  in
  List.iter (fun o -> Network.mark_output net ~name:o (ensure o)) !outputs;
  net

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let to_string ?(model = "circuit") net =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr ".model %s\n" model;
  let names arr = String.concat " " (Array.to_list arr) in
  pr ".inputs %s\n" (names (Array.map (Network.name_of net) (Network.inputs net)));
  pr ".outputs %s\n" (names (Array.map fst (Network.outputs net)));
  Array.iter
    (fun s ->
      match Network.node_of net s with
      | None -> ()
      | Some n ->
        pr ".names %s %s\n"
          (names (Array.map (Network.name_of net) n.Network.fanins))
          (Network.name_of net s);
        List.iter
          (fun c -> pr "%s 1\n" (Logic2.Sop.blif_row_of_cube c))
          (Logic2.Cover.cubes n.Network.func))
    (Network.topo_order net);
  (* Outputs that rename an existing signal need a pass-through node. *)
  Array.iter
    (fun (name, s) ->
      if Network.name_of net s <> name then begin
        pr ".names %s %s\n" (Network.name_of net s) name;
        pr "1 1\n"
      end)
    (Network.outputs net);
  pr ".end\n";
  Buffer.contents buf

let write_file ?model path net =
  let oc = open_out path in
  output_string oc (to_string ?model net);
  close_out oc
