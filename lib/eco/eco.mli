(** Incremental/ECO recompute over mapped circuits.

    Production timing flows re-analyze after small engineering-change
    orders, not from scratch. This layer keeps an editable cell-level
    {!design} (append-only gate slots with stable ids), applies edits,
    computes the dirty transitive-fanout cone of each edit, and
    re-derives only the affected arrival times, SPCFs, sensitization
    verdicts and masking covers — everything outside the cone is reused
    verbatim from a retained {!t} snapshot. Full recompute and
    incremental recompute are function-identical: the {!canonical}
    rendering (SPCF DAGs via the [Spcf.Parallel] postorder export,
    covers, verdict kinds) is byte-equal, which the [eco-equal] fuzz
    oracle enforces. See DESIGN.md §15. *)

(** {1 Editable designs} *)

type gate = {
  gname : string;
  cell : Cell.t;
  fanins : int array;  (** design signals; each a PI or an earlier slot *)
}

type design = {
  pi_names : string array;
  gates : gate option array;
      (** slot [i] drives design signal [npi + i]; [None] = removed.
          Slots are append-only so design signals are stable across
          edits. *)
  outputs : (string * int) list;  (** declaration order *)
}

val num_pis : design -> int
val num_signals : design -> int
val live : design -> int -> bool
(** PIs and occupied gate slots. *)

val signal_name : design -> int -> string
val find_signal : design -> string -> int option

val gate_of : design -> int -> gate option
(** The gate occupying a slot signal ([None] for PIs and dead slots). *)

val live_gates : design -> int
(** Occupied gate slots. *)

val design_of_mapped : Mapped.t -> design
(** Raises [Invalid_argument] if some internal node carries no library
    cell (unmapped circuits cannot be edited). *)

val lower : design -> Mapped.t * int array
(** Deterministic lowering: PIs in order, live slots in slot order,
    outputs in declaration order. Also returns the design-signal →
    network-signal map (-1 for dead slots). *)

(** {1 Edits} *)

type edit =
  | Replace of { target : int; cell : Cell.t; fanins : int array }
      (** swap the cell and fanins of a live slot *)
  | Rewire of { target : int; pin : int; fanin : int }
      (** redirect one fanin pin of a live slot *)
  | Add of { aname : string; cell : Cell.t; fanins : int array }
      (** append a fresh slot (initially dead until consumed) *)
  | Remove of { target : int }
      (** drop a slot; consumers and outputs are rewired to its first
          fanin *)
  | Add_output of { oname : string; target : int }
  | Drop_output of { oname : string }
      (** the last output cannot be dropped *)

type applied = {
  next : design;
  seeds : int list;
      (** design signals whose local function or defining gate changed *)
  load_seeds : int list;
      (** design signals whose capacitive load changed (dirty only
          under [Sta.Library_load], where delay depends on load) *)
}

val apply : design -> edit -> applied
(** Validates the edit (live targets, matching arity, fanins restricted
    to PIs or earlier slots so slot order stays topological, fresh
    names) and raises [Invalid_argument] with a one-line diagnostic
    otherwise. *)

val apply_all : design -> edit list -> design * int list * int list
(** Folds {!apply}; returns the final design and the unioned seed sets,
    filtered to signals still live at the end. *)

val dirty_cone : design -> model:Sta.delay_model -> int list -> int list -> bool array
(** Transitive fanout closure (seeds included) of the structural seeds —
    plus the load seeds under [Library_load] — in the edited design,
    indexed by design signal. Everything outside is reusable: its
    global function, gate delay and arrival time are unchanged. *)

(** {1 Edit-list text format} *)

val parse_edits : design -> string -> edit list
(** One edit per line, names resolved against the evolving design;
    blank lines and [#] comments are skipped. Raises [Invalid_argument]
    on malformed input (line number included).
    {v
    replace TARGET CELL FANIN...
    rewire TARGET PIN FANIN
    add NAME CELL FANIN...
    remove TARGET
    add-output NAME TARGET
    drop-output NAME
    v} *)

val edit_to_string : design -> edit -> string
(** The {!parse_edits} line for an edit, valid in the given design
    (i.e. the design the edit applies to). *)

val edits_to_string : design -> edit list -> string

(** {1 Snapshots} *)

type stats = {
  total_signals : int;
  dirty_signals : int;  (** 0 for a fresh snapshot's baseline *)
  funcs_reused : int;
  funcs_rebuilt : int;
  sigmas_reused : int;
  sigmas_recomputed : int;
  delta_changed : bool;
}

type t = {
  design : design;
  circuit : Mapped.t;
  sig_of : int array;  (** design signal → network signal, -1 if dead *)
  ctx : Spcf.Ctx.t;
  theta : float;
  band : float option;  (** sensitization analysis enabled when set *)
  delta : float;
  target : float;  (** [theta *. delta] *)
  sigmas : (string * Network.signal * Bdd.t) list;
      (** per critical output, critical-output order *)
  covers : (string * Logic2.Cover.t) list;
      (** deterministic masking cover per critical output *)
  sens : Sensitization.report option;
  stats : stats;
}

val snapshot :
  ?theta:float ->
  ?model:Sta.delay_model ->
  ?band:float ->
  ?jobs:int ->
  ?budget:Budget.t ->
  design ->
  t
(** Full analysis from scratch over a shared-manager context
    ([theta] defaults to [0.9], [model] to [Library], sensitization
    runs only when [band] is given, [jobs] defaults to [1]). Can raise
    [Budget.Budget_exceeded]. *)

val recompute : ?jobs:int -> t -> edit list -> t
(** Apply the edits and re-derive only the dirty cone: clean signals
    keep their BDD handle from the snapshot's manager, clean critical
    outputs keep their Σ handle, cover and sensitization verdicts
    verbatim. A Δ change (the critical-path delay moved) invalidates
    the target, so every Σ is recomputed — node functions are still
    reused. Function-identical to
    [snapshot (apply_all t.design edits)]. *)

(** {1 Canonical form and persistence} *)

val canonical : t -> string
(** Deterministic rendering of everything the analysis derived: model,
    θ, Δ, target, per-output arrivals ([%h]), per-critical-output SPCF
    postorder DAGs, masking covers, and sensitization verdict kinds
    with summaries. Witness patterns are excluded — they may legally
    differ between full and incremental runs (DPLL decision order
    follows internal ids). Equal canonical forms ⇒ the analyses agree
    on every function, delay and verdict. *)

val fingerprint : t -> string
(** Hex digest of {!canonical}. *)

val serialize : t -> string
(** The ["emask-eco/1"] snapshot format: design, parameters, Δ, and
    each critical output's SPCF as a [Spcf.Parallel] postorder DAG plus
    its cover. Floats are printed with [%h] (lossless round-trip). *)

val deserialize : string -> t
(** Rebuilds the context (fresh shared manager), imports the SPCF DAGs,
    and integrity-checks Δ against a fresh STA pass; sensitization is
    re-derived when a band was recorded (verdicts are a pure function
    of the circuit). Raises [Invalid_argument] on malformed or
    inconsistent input. *)

(** {1 Bench/fuzz helpers} *)

val smallest_cone_edit : design -> edit option
(** A minimal-impact 1-gate edit: among live gates with the smallest
    transitive-fanout cone, prefer swapping the cell for its
    equal-delay dual (EO↔EN, AOI21↔OAI21, AOI22↔OAI22), else replace a
    multi-input gate with its own cell on reversed fanins. [None] only
    when no gate admits either edit. *)
