(** Sum-of-products covers over variables [0 .. n-1]. Constant 0 is the
    empty cover; constant 1 is the cover containing the universe cube. *)

type t

val zero : int -> t
val one : int -> t
val of_cubes : int -> Cube.t list -> t
val cubes : t -> Cube.t list
val num_vars : t -> int
val num_cubes : t -> int
val num_literals : t -> int
val is_zero : t -> bool
val has_universe : t -> bool

val eval : t -> bool array -> bool
val add_cube : t -> Cube.t -> t
val union : t -> t -> t
val cofactor : t -> int -> bool -> t
val cofactor_cube : t -> Cube.t -> t

val single_cube_containment : t -> t
(** Drop cubes contained in another single cube; also dedups. *)

val most_binate_var : t -> int option
val is_tautology : t -> bool

val covers_cube : ?dc:t -> t -> Cube.t -> bool
(** [covers_cube ~dc f c]: is every minterm of [c] in [f ∪ dc]? *)

val covers_cover : ?dc:t -> t -> t -> bool
val equivalent : t -> t -> bool

val complement : t -> t
(** Exact complement by unate-recursive Shannon expansion. *)

val product : t -> t -> t
val intersects : t -> t -> bool

val irredundant : ?dc:t -> t -> t
(** Remove cubes covered by the rest of the cover (plus don't-cares). *)

val expand_against : t -> offset:t -> t
(** Greedily grow each cube while it stays disjoint from [offset]. *)

val minimize : ?dc:t -> t -> t
(** Espresso-lite: expand against the care-complement, then irredundant. *)

val sort_by_literals : t -> t
val support : t -> Bits.t
val pp : ?names:(int -> string) -> Format.formatter -> t -> unit
val to_string : ?names:(int -> string) -> t -> string
