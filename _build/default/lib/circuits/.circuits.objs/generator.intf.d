lib/circuits/generator.mli: Network
