(** Client-side plumbing for [emask client]: connect to a daemon, ship
    one request, read one response. *)

type endpoint = Unix_sock of string | Tcp of string * int

val connect : endpoint -> Unix.file_descr
(** Raises [Sys_error] (the CLI's IO001 class) when the daemon is not
    reachable. *)

val circuit_of_spec : string -> Serve_jobs.circuit
(** The CIRCUIT argument, client-side: a readable file is shipped as
    inline text with the path kept as display name; anything else is a
    suite-circuit name the daemon resolves. *)

val roundtrip : endpoint -> Serve_protocol.request -> Serve_protocol.response
(** Connect, send, receive, close. Protocol failures raise
    {!Serve_protocol.Protocol_error}. *)
