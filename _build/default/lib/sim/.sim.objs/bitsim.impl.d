lib/sim/bitsim.ml: Array List Logic2 Mapped Network Util
