(* Tests for the resource-governance layer: structured exhaustion from
   the BDD core, the spec/instance split, environment parsing, the
   governed SPCF ladder, the synthesis fallback tiers, and the
   constant-only Netopt regression the fuzzer exposed. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* ---------- specs: merge, environment, instances ---------- *)

let test_spec_merge () =
  let a =
    { Budget.timeout = Some 1.; max_nodes = None; max_ops = Some 5;
      cancel_with = None }
  in
  let b =
    { Budget.timeout = Some 9.; max_nodes = Some 7; max_ops = None;
      cancel_with = None }
  in
  let m = Budget.merge a b in
  check "timeout from a" true (m.Budget.timeout = Some 1.);
  check "nodes fill from b" true (m.Budget.max_nodes = Some 7);
  check "ops from a" true (m.Budget.max_ops = Some 5);
  check "no_limits is no_limits" true (Budget.is_no_limits Budget.no_limits);
  check "merged has limits" false (Budget.is_no_limits m);
  check "instantiate no_limits is unlimited" true
    (Budget.instantiate Budget.no_limits == Budget.unlimited)

let test_of_env () =
  let set k v = Unix.putenv k v in
  set "EMASK_BUDGET_TIMEOUT" "2.5";
  set "EMASK_BUDGET_MAX_NODES" "100";
  set "EMASK_BUDGET_MAX_OPS" "";
  let s = Budget.of_env () in
  check "timeout read" true (s.Budget.timeout = Some 2.5);
  check "nodes read" true (s.Budget.max_nodes = Some 100);
  check "empty is unset" true (s.Budget.max_ops = None);
  List.iter
    (fun bad ->
      set "EMASK_BUDGET_MAX_NODES" bad;
      check ("reject " ^ bad) true (raises_invalid Budget.of_env))
    [ "zero"; "0"; "-3"; "1.5" ];
  set "EMASK_BUDGET_TIMEOUT" "nan";
  set "EMASK_BUDGET_MAX_NODES" "";
  check "reject nan timeout" true (raises_invalid Budget.of_env);
  set "EMASK_BUDGET_TIMEOUT" "";
  check "all unset is no_limits" true (Budget.is_no_limits (Budget.of_env ()))

let test_jobs_env () =
  let set v = Unix.putenv "EMASK_JOBS" v in
  set "3";
  check_int "valid value" 3 (Spcf.Parallel.default_jobs ());
  set "";
  check_int "empty means sequential" 1 (Spcf.Parallel.default_jobs ());
  List.iter
    (fun bad ->
      set bad;
      check ("reject " ^ bad) true (raises_invalid Spcf.Parallel.default_jobs))
    [ "abc"; "0"; "-4" ];
  set ""

let test_cancel_and_renew () =
  let b = Budget.create ~max_ops:1_000_000 () in
  check "fresh not exhausted" true (Budget.exhausted b = None);
  let w = Budget.for_worker b in
  Budget.cancel w;
  check "worker cancel reaches parent" true (Budget.cancelled b);
  check "poll reports cancellation" true (Budget.exhausted b = Some Budget.Cancelled);
  let r = Budget.renew b in
  check "renew clears the cancel flag" false (Budget.cancelled r);
  check "unlimited never exhausts" true (Budget.exhausted Budget.unlimited = None);
  Budget.tick Budget.unlimited (* free and must not raise *)

(* ---------- structured exhaustion from the BDD core ---------- *)

let xor_chain man n =
  let acc = ref (Bdd.var man 0) in
  for v = 1 to n - 1 do
    acc := Bdd.bxor man !acc (Bdd.var man v)
  done;
  !acc

let test_bdd_node_quota () =
  let man = Bdd.create ~nvars:16 () in
  Bdd.set_budget man (Budget.create ~max_nodes:8 ());
  check "node quota raises Nodes" true
    (match xor_chain man 16 with
    | exception Budget.Budget_exceeded Budget.Nodes -> true
    | _ -> false)

let test_bdd_op_quota () =
  let man = Bdd.create ~nvars:16 () in
  Bdd.set_budget man (Budget.create ~max_ops:10 ());
  check "op quota raises Ops" true
    (match xor_chain man 16 with
    | exception Budget.Budget_exceeded Budget.Ops -> true
    | _ -> false)

let test_bdd_budget_lift () =
  let man = Bdd.create ~nvars:16 () in
  Bdd.set_budget man (Budget.create ~max_nodes:8 ());
  (match xor_chain man 16 with
  | exception Budget.Budget_exceeded _ -> ()
  | _ -> Alcotest.fail "expected exhaustion");
  (* Lifting the budget lets the same manager finish the work. *)
  Bdd.set_budget man Budget.unlimited;
  let f = xor_chain man 16 in
  check "finishes after lift" true (f <> Bdd.btrue && f <> Bdd.bfalse)

(* ---------- the governed SPCF ladder ---------- *)

let mapped name = Mapper.map (Suite.network (Suite.find name))

let test_governed_ungoverned_identical () =
  let mc = mapped "cmb" in
  let o =
    Spcf.Governed.compute ~algorithm:Spcf.Governed.Short_path ~theta:0.9 mc
  in
  check "ungoverned lands exact" true (o.Spcf.Governed.tier = Spcf.Governed.Exact);
  check "no attempts" true (o.Spcf.Governed.attempts = []);
  let mc' = mapped "cmb" in
  let ctx = Spcf.Ctx.create mc' in
  let target = Spcf.Ctx.target_of_theta ctx 0.9 in
  let r = Spcf.Parallel.short_path ctx ~target in
  check_str "same count"
    (Extfloat.to_string (Spcf.Ctx.count ctx r))
    (Extfloat.to_string
       (Spcf.Ctx.count o.Spcf.Governed.ctx o.Spcf.Governed.result));
  check_int "same critical outputs"
    (Spcf.Ctx.num_critical_outputs r)
    (Spcf.Ctx.num_critical_outputs o.Spcf.Governed.result)

let test_governed_fallback_sound () =
  let mc = mapped "x2" in
  let spec = { Budget.no_limits with Budget.max_ops = Some 50 } in
  let o =
    Spcf.Governed.compute ~spec ~algorithm:Spcf.Governed.Short_path ~theta:0.9 mc
  in
  check "degraded" true (o.Spcf.Governed.tier <> Spcf.Governed.Exact);
  check "attempts recorded" true (o.Spcf.Governed.attempts <> []);
  (* Soundness: any landing tier over-approximates the exact count. *)
  let exact =
    let mc' = mapped "x2" in
    let ctx = Spcf.Ctx.create mc' in
    let target = Spcf.Ctx.target_of_theta ctx 0.9 in
    Spcf.Ctx.count ctx (Spcf.Parallel.short_path ctx ~target)
  in
  let got = Spcf.Ctx.count o.Spcf.Governed.ctx o.Spcf.Governed.result in
  check "over-approximates exact" false (Extfloat.lt got exact)

let test_governed_always_on_floor () =
  let mc = mapped "x2" in
  (* A one-node quota kills even the global BDD construction: both
     governed tiers exhaust and the ungoverned floor must land. *)
  let spec = { Budget.no_limits with Budget.max_nodes = Some 1 } in
  let o =
    Spcf.Governed.compute ~spec ~algorithm:Spcf.Governed.Path_based ~theta:0.9 mc
  in
  check "floor tier" true (o.Spcf.Governed.tier = Spcf.Governed.Always_on);
  check "two walls recorded" true (List.length o.Spcf.Governed.attempts = 2);
  List.iter
    (fun (_, _, sigma) -> check "sigma is 1" true (sigma = Bdd.btrue))
    o.Spcf.Governed.result.Spcf.Ctx.outputs

(* ---------- the synthesis ladder ---------- *)

let verify_clean what m =
  let r = Masking.Verify.check m in
  check (what ^ " equivalent") true r.Masking.Verify.equivalent;
  check (what ^ " coverage") true r.Masking.Verify.coverage_ok;
  check (what ^ " prediction") true r.Masking.Verify.prediction_ok;
  check (what ^ " contract clean") true
    (Analysis.Diag.errors (Analysis.Lint.masking m) = [])

let test_synthesis_node_fallback () =
  let net = Suite.network (Suite.find "x2") in
  (* The op quota sits between the cost of a full node-based synthesis
     (~8.2k ite calls on x2) and of a path-based one (~9.1k), so the
     exact tier exhausts and the node-based rerun completes. *)
  let options =
    {
      Masking.Synthesis.default_options with
      algorithm = Masking.Synthesis.Path_based;
      budget = { Budget.no_limits with Budget.max_ops = Some 8_700 };
    }
  in
  let m = Masking.Synthesis.synthesize ~options net in
  check "landed on node-based" true
    (m.Masking.Synthesis.tier = Spcf.Governed.Node_fallback);
  check "exact wall recorded" true
    (List.exists
       (fun (t, _) -> t = Spcf.Governed.Exact)
       m.Masking.Synthesis.attempts);
  List.iter
    (fun (p : Masking.Synthesis.per_output) ->
      check "per-output tier" true
        (p.Masking.Synthesis.tier = Spcf.Governed.Node_fallback))
    m.Masking.Synthesis.per_output;
  verify_clean "node-fallback" m

let test_synthesis_always_on_floor () =
  let net = Suite.network (Suite.find "x2") in
  let options =
    {
      Masking.Synthesis.default_options with
      budget = { Budget.no_limits with Budget.max_nodes = Some 1 };
    }
  in
  let m = Masking.Synthesis.synthesize ~options net in
  check "landed on the floor" true
    (m.Masking.Synthesis.tier = Spcf.Governed.Always_on);
  check "both walls recorded" true (List.length m.Masking.Synthesis.attempts = 2);
  verify_clean "always-on" m

let test_synthesis_generous_budget_identical () =
  let net = Suite.network (Suite.find "cmb") in
  let m1 = Masking.Synthesis.synthesize net in
  let options =
    {
      Masking.Synthesis.default_options with
      budget =
        {
          Budget.timeout = Some 3600.;
          max_nodes = Some 100_000_000;
          max_ops = Some 1_000_000_000;
          cancel_with = None;
        };
    }
  in
  let m2 = Masking.Synthesis.synthesize ~options net in
  check "stays exact" true (m2.Masking.Synthesis.tier = Spcf.Governed.Exact);
  check_str "combined circuit identical"
    (Blif.to_string (Mapped.network m1.Masking.Synthesis.combined))
    (Blif.to_string (Mapped.network m2.Masking.Synthesis.combined))

(* ---------- Netopt on constant-only networks (fuzz regression) ---------- *)

(* Under `dune runtest` the cwd is the test directory (fixtures are
   declared deps); fall back for manual runs from the repo root. *)
let fixture_text name =
  let candidates =
    [ Filename.concat "fixtures" name; Filename.concat "test/fixtures" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path ->
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  | None -> Alcotest.failf "fixture %s not found" name

let test_netopt_const_only () =
  let net = Blif.parse (fixture_text "gen_edge_const_only.blif") in
  let check_consts what net' =
    let _, bdds = Network.to_bdds net' in
    check_int (what ^ " arity") 2 (Array.length bdds);
    check (what ^ " k1 is 1") true (bdds.(0) = Bdd.btrue);
    check (what ^ " k0 is 0") true (bdds.(1) = Bdd.bfalse)
  in
  check_consts "parsed" net;
  (* Both sites used to crash on input-free networks. *)
  check_consts "optimized" (Netopt.optimize net);
  check_consts "collapsed" (Netopt.optimize ~collapse:true net);
  check_consts "chains" (Netopt.collapse_chains net)

let () =
  Alcotest.run "budget"
    [
      ( "spec",
        [
          Alcotest.test_case "merge" `Quick test_spec_merge;
          Alcotest.test_case "of_env" `Quick test_of_env;
          Alcotest.test_case "jobs env" `Quick test_jobs_env;
          Alcotest.test_case "cancel and renew" `Quick test_cancel_and_renew;
        ] );
      ( "bdd",
        [
          Alcotest.test_case "node quota" `Quick test_bdd_node_quota;
          Alcotest.test_case "op quota" `Quick test_bdd_op_quota;
          Alcotest.test_case "budget lift" `Quick test_bdd_budget_lift;
        ] );
      ( "governed",
        [
          Alcotest.test_case "ungoverned identical" `Quick
            test_governed_ungoverned_identical;
          Alcotest.test_case "fallback sound" `Quick test_governed_fallback_sound;
          Alcotest.test_case "always-on floor" `Quick test_governed_always_on_floor;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "node fallback" `Slow test_synthesis_node_fallback;
          Alcotest.test_case "always-on floor" `Slow test_synthesis_always_on_floor;
          Alcotest.test_case "generous budget identical" `Slow
            test_synthesis_generous_budget_identical;
        ] );
      ( "netopt",
        [ Alcotest.test_case "constant-only network" `Quick test_netopt_const_only ] );
    ]
