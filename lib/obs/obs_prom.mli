(** Prometheus text-exposition renderer of the Obs registry.

    [render ()] produces the version-0.0.4 text format a /metrics
    endpoint serves: every counter as an [emask_]-prefixed gauge, every
    log2 histogram as a Prometheus histogram whose cumulative bucket
    bounds ([le = 2^i - 1], integers) are exact, and the span tree
    flattened into [emask_span_seconds]/[emask_span_calls] families
    labelled by the '/'-joined span path. This is the payload the
    [emask serve] daemon's /metrics endpoint emits. *)

val render : unit -> string

val exposition : (string * int) list -> string
(** Render plain [(name, value)] pairs as [emask_]-prefixed gauges in
    the same dialect — for metric sources outside the per-domain Obs
    registry (the serve daemon's process-wide atomic counters). The
    /metrics endpoint serves [render () ^ exposition serve_counters]. *)

val write_file : string -> unit
(** [render] to a file (for `--prom FILE` and file-based scrapers),
    atomically ([Obs_json.with_atomic_file]). *)
