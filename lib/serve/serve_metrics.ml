(* Process-wide serve-daemon counters.

   The Obs registry is per-domain by design (counters merge at domain
   join), which is the wrong shape for a daemon whose workers never
   join while /metrics is being scraped. These are plain atomics,
   incremented from any domain and read exactly once per scrape. *)

type t = {
  name : string;
  cell : int Atomic.t;
}

let registry : t list ref = ref []

let make name =
  let c = { name; cell = Atomic.make 0 } in
  registry := c :: !registry;
  c

(* Registration order is reporting order (the list is built in reverse). *)
let requests = make "serve.requests"
let accepted = make "serve.accepted"
let rejected_queue = make "serve.rejected.queue"
let rejected_proto = make "serve.rejected.proto"
let errors = make "serve.errors"
let budget_exhausted = make "serve.budget_exhausted"
let cancelled = make "serve.cancelled"
let cache_hits = make "serve.cache.hits"
let cache_misses = make "serve.cache.misses"
let cache_evictions = make "serve.cache.evictions"
let snap_hits = make "serve.cache.snap_hits"
let snap_misses = make "serve.cache.snap_misses"

let incr c = Atomic.incr c.cell
let add c n = ignore (Atomic.fetch_and_add c.cell n)
let get c = Atomic.get c.cell

let snapshot () = List.rev_map (fun c -> (c.name, Atomic.get c.cell)) !registry

(* Tests restart the counters between scenarios within one process. *)
let reset () = List.iter (fun c -> Atomic.set c.cell 0) !registry
