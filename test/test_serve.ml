(* End-to-end tests of the emask serve daemon: served responses are
   byte-identical to the one-shot CLI across worker counts, repeated
   circuits hit the LRU, saturation and budget exhaustion produce
   structured rejections, a client disconnect cancels the running job
   via its budget flag, hung clients are shed by the read timeout
   without taking the daemon down, and a disconnect while queued drops
   the job unrun. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let emask =
  match Sys.getenv_opt "EMASK" with
  | Some path -> path
  | None -> Filename.concat ".." (Filename.concat "bin" "emask.exe")

(* Run the binary, returning (exit code, stdout lines, stderr lines). *)
let run args =
  let out = Filename.temp_file "emask_out" ".txt" in
  let err = Filename.temp_file "emask_err" ".txt" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" (Filename.quote emask)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let slurp f =
    let ic = open_in f in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    let lines = go [] in
    close_in ic;
    Sys.remove f;
    lines
  in
  (code, slurp out, slurp err)

let contains text needle =
  let n = String.length needle and len = String.length text in
  let rec go i = i + n <= len && (String.sub text i n = needle || go (i + 1)) in
  go 0

let fixture name = Filename.concat "fixtures" name

(* Wall-clock noise is the one legitimate difference between two runs
   of the same job, so the spcf "runtime: x.xxxs" tail is masked
   before comparison (it differs between two one-shot runs too). *)
let normalize lines =
  List.map
    (fun line ->
      if contains line "  runtime: " then begin
        let rec find i =
          if String.sub line i 11 = "  runtime: " then i else find (i + 1)
        in
        String.sub line 0 (find 0) ^ "  runtime: <t>"
      end
      else line)
    lines

(* --- daemon lifecycle ----------------------------------------------------- *)

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "emask-serve-test-%d-%d.sock" (Unix.getpid ()) !n)

(* Start a daemon on a fresh Unix socket, run [f sock], always shut
   the daemon down. *)
let with_server ?(args = []) f =
  let sock = fresh_sock () in
  if Sys.file_exists sock then Sys.remove sock;
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process emask
      (Array.of_list (([ emask; "serve"; "--socket"; sock ] @ args)))
      dev_null dev_null dev_null
  in
  Unix.close dev_null;
  (* Wait until the daemon accepts connections. *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait_ready () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "serve daemon did not come up";
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.05;
      wait_ready ()
  in
  wait_ready ();
  Fun.protect
    ~finally:(fun () ->
      let code, _, _ = run [ "client"; "shutdown"; "--socket"; sock ] in
      ignore code;
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      if Sys.file_exists sock then Sys.remove sock)
    (fun () -> f sock)

let scrape sock =
  let code, out, _ = run [ "client"; "metrics"; "--socket"; sock ] in
  check_int "metrics scrape exits 0" 0 code;
  String.concat "\n" out

let counter_value metrics name =
  let prefix = name ^ " " in
  List.fold_left
    (fun acc line ->
      if String.starts_with ~prefix line then
        int_of_string
          (String.trim
             (String.sub line (String.length prefix)
                (String.length line - String.length prefix)))
      else acc)
    (-1)
    (String.split_on_char '\n' metrics)

(* --- byte identity -------------------------------------------------------- *)

(* Every job kind, served vs one-shot, across worker counts: exit code
   and (runtime-normalized) stdout must agree byte for byte. The
   served run repeats each circuit, so later iterations are cache
   hits — identity must hold for those too. *)
let test_byte_identity () =
  let edits = Filename.temp_file "emask_edits" ".eco" in
  let oc = open_out edits in
  output_string oc "# no edits\n";
  close_out oc;
  let blif = fixture "allfalse.blif" in
  let cases =
    [
      [ "lint"; blif ];
      [ "lint"; "cmb" ];
      [ "spcf"; blif; "--theta"; "0.8" ];
      [ "spcf"; "cmb" ];
      [ "paths"; blif; "--band"; "0.2" ];
      [ "protect"; blif ];
      [ "eco"; blif; "--edits"; edits; "--check" ];
    ]
  in
  List.iter
    (fun jobs ->
      with_server ~args:[ "--jobs"; jobs ] (fun sock ->
          List.iter
            (fun case ->
              let name = String.concat " " case ^ " @jobs=" ^ jobs in
              let case = case @ [ "--jobs"; jobs ] in
              let ccode, cout, _ = run case in
              let scode, sout, serr =
                run ((("client" :: case) @ [ "--socket"; sock ]))
              in
              check
                (name ^ " no client stderr: " ^ String.concat "|" serr)
                true (serr = []);
              check_int (name ^ " exit code") ccode scode;
              check_string (name ^ " output")
                (String.concat "\n" (normalize cout))
                (String.concat "\n" (normalize sout)))
            cases))
    [ "1"; "2"; "4" ];
  Sys.remove edits

(* --- cache ---------------------------------------------------------------- *)

let test_cache_hits () =
  with_server ~args:[ "--jobs"; "2" ] (fun sock ->
      let before = scrape sock in
      check_int "no hits yet" 0 (counter_value before "emask_serve_cache_hits");
      let c1, _, _ = run [ "client"; "spcf"; "cmb"; "--socket"; sock ] in
      let c2, _, _ = run [ "client"; "spcf"; "cmb"; "--socket"; sock ] in
      let c3, _, _ = run [ "client"; "paths"; "cmb"; "--socket"; sock ] in
      check_int "spcf #1" 0 c1;
      check_int "spcf #2" 0 c2;
      check_int "paths" 0 c3;
      let m = scrape sock in
      let hits = counter_value m "emask_serve_cache_hits" in
      let misses = counter_value m "emask_serve_cache_misses" in
      check ("repeat circuit hits the LRU, hits=" ^ string_of_int hits) true
        (hits >= 2);
      check_int "one miss for one distinct circuit" 1 misses;
      (* Eco baseline snapshots are memoized per (circuit, theta, band). *)
      let edits = Filename.temp_file "emask_edits" ".eco" in
      let oc = open_out edits in
      output_string oc "# no edits\n";
      close_out oc;
      let e1, _, _ = run [ "client"; "eco"; "cmb"; "--edits"; edits; "--socket"; sock ] in
      let e2, _, _ = run [ "client"; "eco"; "cmb"; "--edits"; edits; "--socket"; sock ] in
      Sys.remove edits;
      check_int "eco #1" 0 e1;
      check_int "eco #2" 0 e2;
      let m = scrape sock in
      check "snapshot reused" true
        (counter_value m "emask_serve_cache_snap_hits" >= 1))

(* --- admission control ---------------------------------------------------- *)

let test_queue_full () =
  (* One worker, queue bound 1: a long ping occupies the worker, a
     second fills the queue, the third must be rejected immediately
     with the structured QUEUE001 diagnostic. *)
  with_server ~args:[ "--jobs"; "1"; "--queue"; "1" ] (fun sock ->
      let spawn_ping () =
        let dev_null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
        let pid =
          Unix.create_process emask
            [| emask; "client"; "ping"; "--delay"; "5"; "--socket"; sock |]
            dev_null dev_null dev_null
        in
        Unix.close dev_null;
        pid
      in
      let p1 = spawn_ping () in
      Unix.sleepf 0.5 (* worker picks up the first ping *);
      let p2 = spawn_ping () in
      Unix.sleepf 0.5 (* second ping parks in the queue *);
      let started = Unix.gettimeofday () in
      let code, _, err = run [ "client"; "ping"; "--socket"; sock ] in
      let elapsed = Unix.gettimeofday () -. started in
      check_int "saturated queue rejects" 2 code;
      check "rejection names QUEUE001" true
        (contains (String.concat "\n" err) "QUEUE001");
      check "rejection is immediate, not parked" true (elapsed < 2.);
      ignore (Unix.waitpid [] p1);
      ignore (Unix.waitpid [] p2))

let test_budget_exceeded () =
  (* A request-scoped budget that cannot cover the job must come back
     as a structured BUDGET001 error response, exit 2 — and must not
     poison the daemon for later well-budgeted requests. *)
  with_server ~args:[ "--jobs"; "1" ] (fun sock ->
      let code, _, err =
        run
          [
            "client"; "eco"; "cmb"; "--edits"; "/dev/null"; "--max-nodes"; "1";
            "--socket"; sock;
          ]
      in
      check_int "exhausted budget exits 2" 2 code;
      check "diagnostic names BUDGET001" true
        (contains (String.concat "\n" err) "BUDGET001");
      let m = scrape sock in
      check "exhaustion counted" true
        (counter_value m "emask_serve_budget_exhausted" >= 1);
      let code, _, _ = run [ "client"; "spcf"; "cmb"; "--socket"; sock ] in
      check_int "daemon still serves afterwards" 0 code)

(* --- disconnect cancellation ---------------------------------------------- *)

let test_disconnect_cancels () =
  (* Ship a long ping over a raw protocol connection and hang up
     immediately: the watcher must trip the job's budget flag, and the
     job must land in serve.cancelled — the worker is free again long
     before the ping's nominal delay. *)
  with_server ~args:[ "--jobs"; "1" ] (fun sock ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      Serve_protocol.send_request fd (Serve_protocol.Ping 30.);
      Unix.sleepf 0.3 (* let the worker pick the job up *);
      Unix.close fd;
      let deadline = Unix.gettimeofday () +. 10. in
      let rec wait_cancelled () =
        let m = scrape sock in
        if counter_value m "emask_serve_cancelled" >= 1 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "disconnect did not cancel the running job"
        else begin
          Unix.sleepf 0.2;
          wait_cancelled ()
        end
      in
      wait_cancelled ())

(* --- abusive clients ------------------------------------------------------- *)

(* A client that connects and never finishes its request must cost the
   daemon at most --read-timeout on the accept thread, and the failed
   read must cost exactly that connection — not the accept loop: after
   both a hung HTTP head and a hung half-frame, the daemon still
   answers pings, and the stalled connections have been dropped (EOF
   on the client side). *)
let test_abusive_clients_survive () =
  with_server ~args:[ "--read-timeout"; "0.5" ] (fun sock ->
      let hang payload =
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX sock);
        let b = Bytes.of_string payload in
        ignore (Unix.write fd b 0 (Bytes.length b));
        fd
      in
      let http = hang "GET " (* head that never completes *) in
      let frame = hang "\x00\x00" (* frame header that never completes *) in
      let code, _, _ = run [ "client"; "ping"; "--socket"; sock ] in
      check_int "daemon serves past hung clients" 0 code;
      let dropped fd =
        let deadline = Unix.gettimeofday () +. 10. in
        let rec wait () =
          match Unix.select [ fd ] [] [] 0.2 with
          | [ _ ], _, _ -> Unix.recv fd (Bytes.create 1) 0 1 [] = 0
          | _ -> Unix.gettimeofday () <= deadline && wait ()
        in
        wait ()
      in
      check "hung HTTP client was dropped" true (dropped http);
      check "hung frame client was dropped" true (dropped frame);
      Unix.close http;
      Unix.close frame)

(* A client that hangs up while its job is still parked in the queue
   must have the job dropped as CANCELLED, not run: the queue watcher
   trips the flag at park time, so the counter moves long before the
   abandoned ping's nominal 30 s delay could elapse. *)
let test_queued_disconnect_drops () =
  with_server ~args:[ "--jobs"; "1" ] (fun sock ->
      let dev_null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
      let busy =
        Unix.create_process emask
          [| emask; "client"; "ping"; "--delay"; "2"; "--socket"; sock |]
          dev_null dev_null dev_null
      in
      Unix.close dev_null;
      Unix.sleepf 0.3 (* the lone worker picks the first ping up *);
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      Serve_protocol.send_request fd (Serve_protocol.Ping 30.);
      Unix.sleepf 0.3 (* the second ping parks in the queue *);
      Unix.close fd (* ... and its client gives up *);
      let deadline = Unix.gettimeofday () +. 10. in
      let rec wait_cancelled () =
        let m = scrape sock in
        if counter_value m "emask_serve_cancelled" >= 1 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.fail "queued job of a gone client was not dropped"
        else begin
          Unix.sleepf 0.2;
          wait_cancelled ()
        end
      in
      wait_cancelled ();
      ignore (Unix.waitpid [] busy))

(* --- protocol-level rejection --------------------------------------------- *)

let test_protocol_rejections () =
  with_server (fun sock ->
      (* Garbage framing: answered with PROTO001, connection closed. *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      Serve_protocol.write_frame fd "this is not json";
      (match Serve_protocol.recv_response fd with
      | Serve_protocol.Rejected (code, _) -> check_string "proto code" "PROTO001" code
      | _ -> Alcotest.fail "expected a PROTO001 rejection");
      Unix.close fd;
      (* Out-of-domain parameters are rejected with the CLI converter's
         message, not silently clamped. *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      Serve_protocol.write_frame fd
        {|{"job":"spcf","circuit":"cmb","theta":1.5}|};
      (match Serve_protocol.recv_response fd with
      | Serve_protocol.Rejected (code, msg) ->
        check_string "theta code" "PROTO001" code;
        check "theta message names the domain" true (contains msg "(0, 1]")
      | _ -> Alcotest.fail "expected a PROTO001 rejection");
      Unix.close fd)

let () =
  Alcotest.run "serve"
    [
      ( "serve",
        [
          Alcotest.test_case "byte identity" `Slow test_byte_identity;
          Alcotest.test_case "cache hits" `Quick test_cache_hits;
          Alcotest.test_case "queue full" `Quick test_queue_full;
          Alcotest.test_case "budget exceeded" `Quick test_budget_exceeded;
          Alcotest.test_case "disconnect cancels" `Quick test_disconnect_cancels;
          Alcotest.test_case "abusive clients survive" `Quick
            test_abusive_clients_survive;
          Alcotest.test_case "queued disconnect drops" `Quick
            test_queued_disconnect_drops;
          Alcotest.test_case "protocol rejections" `Quick test_protocol_rejections;
        ] );
    ]
