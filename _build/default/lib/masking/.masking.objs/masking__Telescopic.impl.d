lib/masking/telescopic.ml: Array Bdd Extfloat Format List Mapped Network Spcf Synthesis Util
