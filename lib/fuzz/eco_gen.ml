(* Random-but-valid ECO edit sequences. Each edit is drawn against the
   current design and applied before the next is drawn, mirroring how
   [Eco.parse_edits] resolves names against the evolving design. Kinds
   that are infeasible on the current design (no live gate to remove,
   only one output left) are simply re-rolled a few times. *)

let all_cells = Array.of_list Cell.all

let live_gate_slots d =
  let npi = Eco.num_pis d in
  let out = ref [] in
  for s = Eco.num_signals d - 1 downto npi do
    if Eco.live d s then out := s :: !out
  done;
  Array.of_list !out

(* Live signals usable as a fanin of the slot driving [bound] — PIs and
   strictly earlier slots (the validity rule [Eco.apply] enforces). *)
let preds d ~bound =
  let out = ref [] in
  for s = min bound (Eco.num_signals d) - 1 downto 0 do
    if Eco.live d s then out := s :: !out
  done;
  Array.of_list !out

let fresh_name d counter prefix =
  let rec go () =
    let name = Printf.sprintf "%s%d" prefix !counter in
    incr counter;
    if Eco.find_signal d name <> None || List.mem_assoc name d.Eco.outputs then go ()
    else name
  in
  go ()

let gen_edit rng d counter =
  let gates = live_gate_slots d in
  match Util.Rng.int rng 6 with
  | 0 when Array.length gates > 0 ->
    let target = Util.Rng.pick rng gates in
    let cell = Util.Rng.pick rng all_cells in
    let pool = preds d ~bound:target in
    let fanins = Array.init cell.Cell.arity (fun _ -> Util.Rng.pick rng pool) in
    Some (Eco.Replace { target; cell; fanins })
  | 1 when Array.length gates > 0 ->
    let target = Util.Rng.pick rng gates in
    let g = Option.get (Eco.gate_of d target) in
    let pin = Util.Rng.int rng (Array.length g.Eco.fanins) in
    let fanin = Util.Rng.pick rng (preds d ~bound:target) in
    Some (Eco.Rewire { target; pin; fanin })
  | 2 ->
    let cell = Util.Rng.pick rng all_cells in
    let pool = preds d ~bound:(Eco.num_signals d) in
    let fanins = Array.init cell.Cell.arity (fun _ -> Util.Rng.pick rng pool) in
    Some (Eco.Add { aname = fresh_name d counter "eco_g"; cell; fanins })
  | 3 when Array.length gates > 0 ->
    Some (Eco.Remove { target = Util.Rng.pick rng gates })
  | 4 ->
    let pool = preds d ~bound:(Eco.num_signals d) in
    let oname = fresh_name d counter "eco_po" in
    Some (Eco.Add_output { oname; target = Util.Rng.pick rng pool })
  | 5 when List.length d.Eco.outputs > 1 ->
    let names = Array.of_list (List.map fst d.Eco.outputs) in
    Some (Eco.Drop_output { oname = Util.Rng.pick rng names })
  | _ -> None

let edits ~rng ~count d =
  let counter = ref 0 in
  let out = ref [] and cur = ref d and made = ref 0 in
  let attempts = ref 0 in
  while !made < count && !attempts < count * 8 do
    incr attempts;
    match gen_edit rng !cur counter with
    | None -> ()
    | Some e -> (
      (* Valid by construction; the apply is both the evolution step
         and a defensive check. *)
      match Eco.apply !cur e with
      | a ->
        cur := a.Eco.next;
        out := e :: !out;
        incr made
      | exception Invalid_argument _ -> ())
  done;
  List.rev !out
