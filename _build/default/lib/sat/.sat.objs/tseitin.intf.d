lib/sat/tseitin.mli: Dpll Network
