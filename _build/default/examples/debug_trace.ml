(* In-system silicon debug (paper Sec. 2.1): trace buffers are small; a
   failing speed-path is exercised only on a few cycles. Gating capture
   with the masking circuit's indicator e stores exactly the suspect
   cycles, stretching the effective observation window.

     dune exec examples/debug_trace.exe *)

let () =
  List.iter
    (fun name ->
      let net = Suite.load name in
      let m = Masking.Synthesis.synthesize net in
      Format.printf "circuit %-14s (%d critical outputs)@." name
        (List.length m.Masking.Synthesis.per_output);
      List.iter
        (fun size ->
          let r =
            Masking.Trace_buffer.selective_capture ~buffer_size:size
              ~cycles:200_000 m
          in
          Format.printf "  %a@." Masking.Trace_buffer.pp r)
        [ 32; 64; 256 ])
    [ "C432"; "C2670"; "frg1" ];
  Format.printf
    "@.selective capture stores only cycles on which a speed-path is sensitized,@.";
  Format.printf
    "expanding the observation window by the inverse of the SPCF's density.@."
