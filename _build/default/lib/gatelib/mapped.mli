(** Gate-level circuits: Boolean networks whose internal nodes are
    instances of library cells. *)

type t

val create : unit -> t
val network : t -> Network.t
val add_input : t -> string -> Network.signal
val fresh_name : t -> string -> string

val add_gate :
  t -> ?name:string -> Cell.t -> Network.signal array -> Network.signal

val mark_output : t -> ?name:string -> Network.signal -> unit
val cell_of : t -> Network.signal -> Cell.t option
val gate_count : t -> int
val area : t -> float

val output_load : float
val loads : t -> float array
(** Capacitive load per signal (fanout pin caps + primary-output load). *)

val append : t -> prefix:string -> t -> int array
(** [append dst ~prefix src] copies every gate of [src] into [dst],
    matching primary inputs by name (they must exist in [dst]) and
    prefixing internal names. Returns the src→dst signal map. *)

val pp : Format.formatter -> t -> unit
