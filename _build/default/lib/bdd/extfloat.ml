(* Non-negative reals with an extended binary exponent, value = m * 2^e2
   with m in [1,2) (or m = 0). IEEE doubles top out near 1.8e308 = 2^1024,
   far below the 2^882-scale pattern counts of wide circuits. *)

type t = { m : float; e2 : int }

let zero = { m = 0.; e2 = 0 }
let is_zero t = t.m = 0.

let normalize m e2 =
  if m = 0. then zero
  else begin
    let frac, ex = Float.frexp m in
    (* frexp yields frac in [0.5,1); shift to [1,2). *)
    { m = frac *. 2.; e2 = e2 + ex - 1 }
  end

let of_float f =
  if f < 0. then invalid_arg "Extfloat.of_float: negative";
  normalize f 0

let one = of_float 1.
let pow2 k = { m = 1.; e2 = k }

let mul_pow2 t k = if is_zero t then zero else { t with e2 = t.e2 + k }

let add a b =
  if is_zero a then b
  else if is_zero b then a
  else begin
    (* Align to the larger exponent; beyond ~64 bits the smaller term is
       below representable precision. *)
    let hi, lo = if a.e2 >= b.e2 then (a, b) else (b, a) in
    let shift = hi.e2 - lo.e2 in
    if shift > 128 then hi
    else normalize (hi.m +. Float.ldexp lo.m (-shift)) hi.e2
  end

let mul a b =
  if is_zero a || is_zero b then zero else normalize (a.m *. b.m) (a.e2 + b.e2)

let div a b =
  if is_zero b then invalid_arg "Extfloat.div: division by zero"
  else if is_zero a then zero
  else normalize (a.m /. b.m) (a.e2 - b.e2)

let compare a b =
  match (is_zero a, is_zero b) with
  | true, true -> 0
  | true, false -> -1
  | false, true -> 1
  | false, false ->
    if a.e2 <> b.e2 then Stdlib.compare a.e2 b.e2 else Stdlib.compare a.m b.m

let equal a b = compare a b = 0
let lt a b = compare a b < 0
let leq a b = compare a b <= 0

let to_float t = Float.ldexp t.m t.e2

let log2 t =
  if is_zero t then neg_infinity else Float.log2 t.m +. float_of_int t.e2

let log10 t = log2 t *. Float.log10 2.

(* Scientific-notation string, e.g. "8.0e66", robust to huge exponents. *)
let to_string t =
  if is_zero t then "0"
  else begin
    let l10 = log10 t in
    let e10 = int_of_float (Float.floor l10) in
    let mantissa = Float.pow 10. (l10 -. float_of_int e10) in
    (* Guard against round-off pushing the mantissa to 10.0. *)
    let mantissa, e10 =
      if mantissa >= 9.95 then (1.0, e10 + 1) else (mantissa, e10)
    in
    if e10 >= -3 && e10 <= 6 then Printf.sprintf "%g" (to_float t)
    else Printf.sprintf "%.1fe%d" mantissa e10
  end

let pp fmt t = Format.pp_print_string fmt (to_string t)
