lib/gatelib/mapper.mli: Mapped Network
