(** Tseitin CNF encoding of Boolean networks and a SAT miter. *)

type encoding = {
  solver : Dpll.t;
  var_of_signal : int array;
  next_var : int ref;
}

val encode_network :
  Dpll.t -> int ref -> input_var:(string -> int) -> Network.t -> encoding

val equivalent : Network.t -> Network.t -> bool
(** SAT-based combinational equivalence (inputs/outputs matched by
    name) — independent of [Network.equivalent]. *)
