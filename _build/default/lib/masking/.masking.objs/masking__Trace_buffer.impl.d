lib/masking/trace_buffer.ml: Array Bitsim Format List Mapped Network Synthesis Util
