(* Dynamic-power estimation: switching activity from random-vector
   simulation times the capacitive load each signal drives. This is the
   standard CV²f proxy with V and f normalized out — adequate because the
   paper reports power *overhead ratios*, which the proxy preserves. *)

type report = {
  total : float;
  per_signal : float array; (* activity × load per signal *)
  activity : float array;
}

let estimate ?(rounds = 256) ?(seed = 1) circuit =
  let sim = Bitsim.of_mapped circuit in
  let rng = Util.Rng.create seed in
  let activity = Bitsim.activities sim rng ~rounds in
  let load = Mapped.loads circuit in
  let n = Array.length activity in
  let per_signal = Array.init n (fun s -> activity.(s) *. load.(s)) in
  let total = Array.fold_left ( +. ) 0. per_signal in
  { total; per_signal; activity }

let total ?rounds ?seed circuit = (estimate ?rounds ?seed circuit).total
