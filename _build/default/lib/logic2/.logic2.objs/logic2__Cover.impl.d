lib/logic2/cover.ml: Array Bits Cube Format List Option
