lib/masking/dvs.mli: Format Synthesis
