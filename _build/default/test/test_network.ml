(* Tests for Boolean networks, BLIF I/O, network optimization, the
   technology mapper and the cell library. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let vars2 = [| "x"; "y" |]
let and2 = Logic2.Sop.parse ~vars:vars2 "x*y"
let or2 = Logic2.Sop.parse ~vars:vars2 "x + y"
let xor2 = Logic2.Sop.parse ~vars:vars2 "x*!y + !x*y"
let inv1 = Logic2.Sop.parse ~vars:[| "x" |] "!x"

(* A small reference network: f = (a&b) ^ !(c|d), g = a&b *)
let build_reference () =
  let net = Network.create () in
  let a = Network.add_input net "a" in
  let b = Network.add_input net "b" in
  let c = Network.add_input net "c" in
  let d = Network.add_input net "d" in
  let ab = Network.add_node net "ab" ~fanins:[| a; b |] ~func:and2 in
  let cd = Network.add_node net "cd" ~fanins:[| c; d |] ~func:or2 in
  let ncd = Network.add_node net "ncd" ~fanins:[| cd |] ~func:inv1 in
  let f = Network.add_node net "f" ~fanins:[| ab; ncd |] ~func:xor2 in
  Network.mark_output net ~name:"f" f;
  Network.mark_output net ~name:"g" ab;
  net

let reference_f a b c d = (a && b) <> not (c || d)
let reference_g a b = a && b

let all4 = List.init 16 (fun i -> Array.init 4 (fun v -> i lsr v land 1 = 1))

let test_network_eval () =
  let net = build_reference () in
  check_int "nodes" 4 (Network.num_nodes net);
  List.iter
    (fun x ->
      let outs = Network.eval_outputs net x in
      check "f" true (outs.(0) = reference_f x.(0) x.(1) x.(2) x.(3));
      check "g" true (outs.(1) = reference_g x.(0) x.(1)))
    all4

let test_network_bdds () =
  let net = build_reference () in
  let man, f = Network.to_bdds net in
  let outs = Network.outputs net in
  List.iter
    (fun x ->
      Array.iter
        (fun (name, s) ->
          let expected =
            if name = "f" then reference_f x.(0) x.(1) x.(2) x.(3)
            else reference_g x.(0) x.(1)
          in
          check "bdd vs eval" true (Bdd.eval man f.(s) x = expected))
        outs)
    all4

let test_network_cone () =
  let net = build_reference () in
  let g = Option.get (Network.find net "ab") in
  let cone = Network.cone net [ g ] in
  check "a in cone" true cone.(Option.get (Network.find net "a"));
  check "c not in cone" false cone.(Option.get (Network.find net "c"))

let test_extract_cone () =
  let net = build_reference () in
  let sub = Network.extract_cone net [ "g" ] in
  check_int "sub nodes" 1 (Network.num_nodes sub);
  check_int "sub inputs" 2 (Array.length (Network.inputs sub))

let test_equivalence () =
  let net = build_reference () in
  check "self equivalent" true (Network.equivalent net (build_reference ()));
  (* A mutated version: f uses OR instead of XOR. *)
  let net2 = build_reference () in
  let h = Network.add_node net2 "h" ~fanins:[| 0; 1 |] ~func:or2 in
  let net3 = Network.create () in
  ignore h;
  ignore net2;
  let a = Network.add_input net3 "a" in
  let b = Network.add_input net3 "b" in
  let c = Network.add_input net3 "c" in
  let d = Network.add_input net3 "d" in
  let ab = Network.add_node net3 "ab" ~fanins:[| a; b |] ~func:and2 in
  let cd = Network.add_node net3 "cd" ~fanins:[| c; d |] ~func:or2 in
  let ncd = Network.add_node net3 "ncd" ~fanins:[| cd |] ~func:inv1 in
  let f = Network.add_node net3 "f" ~fanins:[| ab; ncd |] ~func:or2 in
  Network.mark_output net3 ~name:"f" f;
  Network.mark_output net3 ~name:"g" ab;
  check "mutant differs" false (Network.equivalent net net3)

let test_blif_roundtrip () =
  let net = build_reference () in
  let text = Blif.to_string ~model:"ref" net in
  let net' = Blif.parse text in
  check "roundtrip equivalent" true (Network.equivalent net net');
  (* Suite circuit roundtrip. *)
  let big = Suite.load "i1" in
  let big' = Blif.parse (Blif.to_string big) in
  check "suite roundtrip" true (Network.equivalent big big')

let test_blif_offset_rows () =
  (* A node given by its off-set (output value 0 rows). *)
  let text =
    ".model t\n.inputs a b\n.outputs z\n.names a b z\n11 0\n.end\n"
  in
  let net = Blif.parse text in
  (* z = !(a&b) *)
  let cases = [ (false, false, true); (true, false, true); (true, true, false) ] in
  List.iter
    (fun (a, b, expected) ->
      check "offset rows" true ((Network.eval_outputs net [| a; b |]).(0) = expected))
    cases

let test_blif_errors () =
  let bad = ".model t\n.inputs a\n.outputs z\n.latch a z\n.end\n" in
  check "latch rejected" true
    (try
       ignore (Blif.parse bad);
       false
     with Blif.Parse_error _ -> true)

(* ---------- Netopt ---------- *)

let suite_names = [ "i1"; "cmb"; "x2"; "cu"; "frg1"; "C432"; "C880" ]

let test_netopt_equivalence () =
  List.iter
    (fun name ->
      let net = Suite.load name in
      let opt = Netopt.optimize net in
      check (name ^ " optimize preserves") true (Network.equivalent net opt);
      let col = Netopt.optimize ~collapse:true net in
      check (name ^ " collapse preserves") true (Network.equivalent net col))
    suite_names

let test_rebalance_xor () =
  (* A 9-input xor chain becomes a log-depth tree with the same function. *)
  let net = Network.create () in
  let pis = Array.init 9 (fun i -> Network.add_input net (Printf.sprintf "x%d" i)) in
  let acc = ref pis.(0) in
  for i = 1 to 8 do
    acc := Network.add_node net (Printf.sprintf "s%d" i) ~fanins:[| !acc; pis.(i) |] ~func:xor2
  done;
  Network.mark_output net ~name:"parity" !acc;
  let opt = Netopt.rebalance_xor net in
  check "parity preserved" true (Network.equivalent net opt);
  let depth n =
    let d = Array.make (Network.num_signals n) 0 in
    Array.iter
      (fun s ->
        match Network.node_of n s with
        | None -> ()
        | Some nd ->
          d.(s) <- 1 + Array.fold_left (fun acc f -> max acc d.(f)) 0 nd.Network.fanins)
      (Network.topo_order n);
    Array.fold_left max 0 d
  in
  check_int "chain depth" 8 (depth net);
  check "tree depth is logarithmic" true (depth opt <= 4)

let test_collapse_chains_depth () =
  (* A long mixed and/xor chain collapses to logarithmic depth. *)
  let net = Network.create () in
  let pis = Array.init 17 (fun i -> Network.add_input net (Printf.sprintf "x%d" i)) in
  let acc = ref pis.(0) in
  for i = 1 to 16 do
    let func = if i mod 3 = 0 then and2 else xor2 in
    acc := Network.add_node net (Printf.sprintf "s%d" i) ~fanins:[| !acc; pis.(i) |] ~func
  done;
  Network.mark_output net ~name:"out" !acc;
  let opt = Netopt.collapse_chains net in
  check "collapse preserves" true (Network.equivalent net opt);
  let mc = Mapper.map net and mo = Mapper.map opt in
  let d = Sta.delta (Sta.analyze mc) and d' = Sta.delta (Sta.analyze mo) in
  check "collapsed is shallower" true (d' < 0.75 *. d)

(* ---------- Mapper / cells ---------- *)

let test_cell_library () =
  List.iter
    (fun cell ->
      check_int
        (cell.Cell.cname ^ " arity matches logic")
        cell.Cell.arity
        (Logic2.Cover.num_vars cell.Cell.logic);
      check (cell.Cell.cname ^ " positive delay") true (cell.Cell.delay > 0.);
      check (cell.Cell.cname ^ " positive area") true (cell.Cell.area > 0.))
    Cell.all;
  check "find" true (Cell.find "ND2" = Some Cell.nd2);
  check "find missing" true (Cell.find "BOGUS" = None)

let test_mapper_equivalence () =
  List.iter
    (fun name ->
      let net = Suite.load name in
      let mapped = Mapper.map net in
      check (name ^ " mapping preserves function") true
        (Network.equivalent net (Mapped.network mapped));
      let chained = Mapper.map ~style:Mapper.Chain net in
      check (name ^ " chain mapping preserves") true
        (Network.equivalent net (Mapped.network chained)))
    suite_names

let test_mapper_cells_legal () =
  let net = Suite.load "C432" in
  let mc = Mapper.map net in
  let mnet = Mapped.network mc in
  Array.iter
    (fun s ->
      match (Network.node_of mnet s, Mapped.cell_of mc s) with
      | None, None -> ()
      | Some nd, Some cell ->
        check_int "gate arity" cell.Cell.arity (Array.length nd.Network.fanins)
      | Some _, None -> Alcotest.fail "gate without cell"
      | None, Some _ -> Alcotest.fail "cell on primary input")
    (Network.topo_order mnet)

let test_mapper_direct_match () =
  (* A bare xor node must map to the single EO cell. *)
  let net = Network.create () in
  let a = Network.add_input net "a" in
  let b = Network.add_input net "b" in
  let x = Network.add_node net "x" ~fanins:[| a; b |] ~func:xor2 in
  Network.mark_output net ~name:"x" x;
  let mc = Mapper.map net in
  check_int "single gate" 1 (Mapped.gate_count mc)

let test_mapper_balanced_depth () =
  (* A 16-literal product: balanced mapping is at most 2 AND levels. *)
  let net = Network.create () in
  let pis = Array.init 16 (fun i -> Network.add_input net (Printf.sprintf "x%d" i)) in
  let cube = Logic2.Cube.make 16 (List.init 16 (fun v -> (v, true))) in
  let func = Logic2.Cover.of_cubes 16 [ cube ] in
  let s = Network.add_node net "p" ~fanins:pis ~func in
  Network.mark_output net ~name:"p" s;
  let bal = Mapper.map net in
  let chain = Mapper.map ~style:Mapper.Chain net in
  let d_bal = Sta.delta (Sta.analyze ~model:Sta.Unit bal) in
  let d_chain = Sta.delta (Sta.analyze ~model:Sta.Unit chain) in
  check "balanced 2 levels" true (d_bal <= 2.01);
  check "chain 15 levels" true (d_chain >= 14.99)

let () =
  Alcotest.run "network"
    [
      ( "network",
        [
          Alcotest.test_case "eval" `Quick test_network_eval;
          Alcotest.test_case "bdds" `Quick test_network_bdds;
          Alcotest.test_case "cone" `Quick test_network_cone;
          Alcotest.test_case "extract_cone" `Quick test_extract_cone;
          Alcotest.test_case "equivalence" `Quick test_equivalence;
        ] );
      ( "blif",
        [
          Alcotest.test_case "roundtrip" `Quick test_blif_roundtrip;
          Alcotest.test_case "offset rows" `Quick test_blif_offset_rows;
          Alcotest.test_case "errors" `Quick test_blif_errors;
        ] );
      ( "netopt",
        [
          Alcotest.test_case "optimize equivalence" `Slow test_netopt_equivalence;
          Alcotest.test_case "xor rebalance" `Quick test_rebalance_xor;
          Alcotest.test_case "chain collapse" `Quick test_collapse_chains_depth;
        ] );
      ( "mapper",
        [
          Alcotest.test_case "cell library" `Quick test_cell_library;
          Alcotest.test_case "mapping equivalence" `Slow test_mapper_equivalence;
          Alcotest.test_case "cells legal" `Quick test_mapper_cells_legal;
          Alcotest.test_case "direct match" `Quick test_mapper_direct_match;
          Alcotest.test_case "balanced depth" `Quick test_mapper_balanced_depth;
        ] );
    ]
