lib/bdd/isop.mli: Bdd Logic2
