(* The fuzzing loop. Specimens alternate between fresh generation and
   mutation of the previous specimen (mutation walks reach shapes the
   grammar's one-shot distribution rarely produces). Each sample's
   randomness comes from Rng.child root index, so (seed, index) replays
   a failure exactly. *)

type config = {
  seed : int;
  count : int;
  budget : Budget.spec;
  oracles : Oracle.t list;
  shrink : bool;
  out_dir : string option;
  params : Gen.params;
}

let default_config =
  {
    seed = 0;
    count = 100;
    budget = Budget.no_limits;
    oracles = Oracle.all;
    shrink = true;
    out_dir = None;
    params = Gen.default_params;
  }

type failure = {
  oracle : string;
  index : int;
  message : string;
  gates : int;
  spec : Gen.spec;
  repro : string option;
}

type summary = {
  samples : int;
  checks : int;
  skips : int;
  failures : failure list;
  elapsed : float;
}

let sanitize msg =
  String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) msg

(* The environment knobs that change how a failure reproduces: a repro
   found under --jobs 4 with a tight budget may not fire sequentially
   and unbounded, so the header pins what the run actually saw. *)
let env_header () =
  [ "EMASK_JOBS"; "EMASK_BUDGET_TIMEOUT"; "EMASK_BUDGET_MAX_NODES";
    "EMASK_BUDGET_MAX_OPS"; "EMASK_OBS"; "EMASK_FUZZ_SHARED" ]
  |> List.map (fun v ->
         Printf.sprintf "%s=%s" v
           (match Sys.getenv_opt v with
           | None | Some "" -> "unset"
           | Some s -> sanitize s))
  |> String.concat " "

let repro_blif ~oracle ~seed ~index ~message spec =
  Printf.sprintf
    "# emask fuzz repro\n# oracle: %s\n# seed: %d  index: %d\n# env: %s\n# %s\n%s"
    oracle seed index (env_header ()) (sanitize message)
    (Blif.to_string ~model:(Printf.sprintf "fuzz_%s_%d_%d" oracle seed index)
       (Gen.network spec))

let write_repro ~dir ~oracle ~seed ~index ~message spec =
  let path = Filename.concat dir (Printf.sprintf "fuzz-%s-seed%d-%d.blif" oracle seed index) in
  let oc = open_out path in
  output_string oc (repro_blif ~oracle ~seed ~index ~message spec);
  close_out oc;
  path

(* Re-running an oracle during shrinking needs fresh-but-deterministic
   pattern randomness: the stream is a fixed child of the sample's. A
   Skip (including budget exhaustion) counts as "does not fail", so
   shrinking under pressure stays sound — it just stops early. *)
let still_fails oracle ~sample_rng ~budget spec =
  let rng = Rng.base (Rng.child sample_rng 0x51412) in
  match Oracle.run oracle ~rng ~budget:(Budget.for_worker budget) (Gen.network spec) with
  | Oracle.Fail _ -> true
  | _ -> false

(* eco-equal failures also carry an edit sequence. It is re-derived
   from (seed, index) — the oracle's only rng consumption — on the
   post-shrink spec, greedily minimized, and written next to the .blif
   as a replayable .eco file ([Eco.parse_edits] format; the companion
   netlist is named in the header). *)
let eco_edit_fails ~budget net edits =
  match
    let d = Eco.design_of_mapped (Mapper.map net) in
    let _ = Eco.apply_all d edits in
    Oracle.eco_replay ~budget:(Budget.for_worker budget) net edits
  with
  | Oracle.Fail _ -> true
  | _ | (exception _) -> false

let write_eco_repro ~log ~dir ~seed ~index ~message ~sample_rng ~budget spec =
  let net = Gen.network spec in
  let rng = Rng.base (Rng.child sample_rng 0x51412) in
  match Oracle.eco_edits ~rng net with
  | None -> ()
  | Some edits ->
    let edits, evals =
      if eco_edit_fails ~budget net edits then
        Shrink.shrink_edits ~fails:(eco_edit_fails ~budget net) edits
      else (edits, 0)
    in
    let d = Eco.design_of_mapped (Mapper.map net) in
    let path =
      Filename.concat dir (Printf.sprintf "fuzz-eco-equal-seed%d-%d.eco" seed index)
    in
    let oc = open_out path in
    Printf.fprintf oc
      "# emask fuzz eco repro\n# oracle: eco-equal\n# seed: %d  index: %d\n\
       # env: %s\n# %s\n# apply to: fuzz-eco-equal-seed%d-%d.blif\n%s"
      seed index (env_header ()) (sanitize message) seed index
      (Eco.edits_to_string d edits);
    close_out oc;
    log
      (Printf.sprintf "  edit sequence (%d edits, %d replays) written to %s"
         (List.length edits) evals path)

let run ?(log = print_endline) config =
  let t0 = Obs.now () in
  let root = Rng.create ~seed:config.seed in
  let checks = ref 0 and skips = ref 0 and samples = ref 0 in
  let failures = ref [] in
  let prev = ref None in
  (* One budget instance governs the whole campaign: the loop polls it
     between work items, and each oracle execution runs under a worker
     view (shared deadline and quotas, fresh operation count). *)
  let budget = Budget.instantiate config.budget in
  let budget_left () = Budget.exhausted budget = None in
  let i = ref 0 in
  while !i < config.count && budget_left () do
    let index = !i in
    let sample_rng = Rng.child root index in
    let spec =
      Obs.with_span "fuzz.gen" (fun () ->
          match !prev with
          | Some p when index > 0 && Rng.float sample_rng < 0.4 ->
            Gen.mutate sample_rng p
          | _ -> Gen.generate ~params:config.params sample_rng)
    in
    prev := Some spec;
    incr samples;
    let net = Gen.network spec in
    List.iter
      (fun oracle ->
        if budget_left () then begin
          incr checks;
          let rng = Rng.base (Rng.child sample_rng 0x51412) in
          match
            Obs.with_span ("fuzz.oracle." ^ oracle.Oracle.name) (fun () ->
                Oracle.run oracle ~rng ~budget:(Budget.for_worker budget) net)
          with
          | Oracle.Pass -> ()
          | Oracle.Skip _ -> incr skips
          | Oracle.Fail message ->
            log
              (Printf.sprintf "FAIL %s: seed=%d index=%d gates=%d: %s"
                 oracle.Oracle.name config.seed index (Gen.num_gates spec)
                 (sanitize message));
            let spec, evals =
              if config.shrink then
                Obs.with_span "fuzz.shrink" (fun () ->
                    Shrink.shrink ~fails:(still_fails oracle ~sample_rng ~budget) spec)
              else (spec, 0)
            in
            if config.shrink then
              log
                (Printf.sprintf "  shrunk to %d gates / %d inputs (%d oracle runs)"
                   (Gen.num_gates spec) spec.Gen.n_pi evals);
            let repro =
              Option.map
                (fun dir ->
                  let path =
                    write_repro ~dir ~oracle:oracle.Oracle.name ~seed:config.seed
                      ~index ~message spec
                  in
                  log (Printf.sprintf "  repro written to %s" path);
                  if oracle.Oracle.name = "eco-equal" then
                    write_eco_repro ~log ~dir ~seed:config.seed ~index ~message
                      ~sample_rng ~budget spec;
                  path)
                config.out_dir
            in
            failures :=
              {
                oracle = oracle.Oracle.name;
                index;
                message;
                gates = Gen.num_gates spec;
                spec;
                repro;
              }
              :: !failures
        end)
      config.oracles;
    incr i
  done;
  let elapsed = Obs.now () -. t0 in
  let failures = List.rev !failures in
  log
    (Printf.sprintf "fuzz: %d samples, %d oracle runs, %d skips, %d failures (%.1fs, seed %d)"
       !samples !checks !skips (List.length failures) elapsed config.seed);
  { samples = !samples; checks = !checks; skips = !skips; failures; elapsed }
