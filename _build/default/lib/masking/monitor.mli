(** Wearout prediction (paper Sec. 2.1): sweep an aging factor over the
    original circuit's near-critical gates and measure raw, masked and
    logged timing-error rates with the event-driven timing simulator. *)

type sample = {
  factor : float;  (** delay degradation on the aged gates *)
  raw_error_rate : float;  (** capture errors at unprotected outputs *)
  masked_error_rate : float;  (** capture errors surviving the mux *)
  logged_rate : float;  (** e·(y ⊕ ỹ) events — the wearout signal *)
  indicator_rate : float;
}

val aging_sweep :
  ?trials:int -> ?seed:int -> ?factors:float list -> Synthesis.t -> sample list

val pp_sample : Format.formatter -> sample -> unit
