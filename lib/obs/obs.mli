(** Lightweight, domain-safe instrumentation: hierarchical spans,
    counters, log-bucketed histograms and timeline (trace) events,
    behind one global on/off switch.

    Probes are designed to be free when observation is disabled: every
    recording entry point first branches on a single mutable bool and
    returns immediately, without allocating or touching the registry.

    {b Domain model.} A [counter]/[histogram] value is an immutable
    {e descriptor} (interned by name); the mutable cells it records
    into are {e per-domain}, allocated lazily in domain-local storage.
    Recording never synchronises between domains. A worker domain ships
    its recordings back as a {!snapshot}; the coordinating domain folds
    them in with {!merge_snapshot} in a deterministic order. Counters
    and histograms only {e register} themselves on their first recording
    in a domain — so after a disabled run the registry is exactly empty.

    Enabled either programmatically ([set_enabled true]) or by setting
    the environment variable [EMASK_OBS] to anything but ["0"] or the
    empty string. *)

val on : unit -> bool
(** Is observation currently enabled? *)

val set_enabled : bool -> unit
(** Toggle collection. Not synchronised: flip it before spawning worker
    domains, not while they run. *)

val debug : unit -> bool
(** Debug-print toggle for ad-hoc tracing ([EMASK_OBS_DEBUG]; the
    legacy [EMASK_GEN_DEBUG] is honoured for compatibility). Distinct
    from [on]: statistics collection does not imply stderr chatter. *)

val now : unit -> float
(** The clock used by every span and by [timed]: monotonic seconds from
    an arbitrary origin (only differences are meaningful, and they can
    never be negative). One code path for all timing, so CLI-reported
    runtimes and span totals agree. *)

(** {2 Counters} *)

type counter

val counter : string -> counter
(** Create (or intern) a counter descriptor. Cheap; a domain's cell does
    not register until first use there. Two calls with the same name
    return descriptors for the same metric. *)

val incr : counter -> unit
val add : counter -> int -> unit

val record_max : counter -> int -> unit
(** High-water-mark gauge: keep the largest value seen. Snapshots merge
    these by [max], not by sum. *)

val counter_value : counter -> int
(** The calling domain's cell (after merges, the merged value). *)

val touch_counter : counter -> unit
(** Force-register the counter in this domain at its current value (0 if
    never recorded), so reports distinguish "instrumented, nothing
    happened" from "not instrumented". No-op when disabled. *)

(** {2 Histograms} *)

type histogram

val histogram : string -> histogram

val observe : histogram -> int -> unit
(** Record a non-negative sample into log2 buckets: bucket 0 holds 0,
    bucket [i >= 1] holds values in [[2^(i-1), 2^i)]. *)

val touch_histogram : histogram -> unit
(** Force-register an empty histogram in this domain (see
    {!touch_counter}). No-op when disabled. *)

type hist_stats = {
  hn : int;  (** number of samples *)
  hsum : int;
  hmax : int;
  hbuckets : (int * int) list;  (** (bucket lower bound, count), nonzero only *)
}

val histogram_stats : histogram -> hist_stats

(** {2 Spans}

    A span is a node in a tree keyed by name under its parent; entering
    the same name under the same parent accumulates into one node.
    Re-entrant (recursive) entries are counted as calls but only the
    outermost activation contributes wall time. Each domain grows its
    own tree; {!merge_snapshot} grafts a worker's tree under the
    coordinator's currently open span. *)

type span = {
  sname : string;
  mutable calls : int;
  mutable total : float;  (** accumulated seconds over closed activations *)
  mutable children : span list;  (** most recently created first *)
  mutable live : int;  (** currently-open activations (recursion depth) *)
  mutable started : float;  (** start of the outermost open activation *)
}

val enter : string -> unit
val leave : unit -> unit

val with_span : string -> (unit -> 'a) -> 'a
(** [enter]/[leave] around a thunk, exception-safe. When disabled the
    thunk runs directly. *)

val timed : string -> (unit -> 'a) -> 'a * float
(** Like [with_span] but always measures and returns the elapsed
    seconds, even when observation is disabled — for results (such as
    algorithm runtimes) that are part of normal output. *)

(** {2 Trace events (timeline)}

    Tracing is a second, independent switch ([EMASK_TRACE] or
    {!set_trace_enabled}): when both collection and tracing are on,
    every closed span activation appends a complete event and
    {!instant} appends a point event, each stamped in microseconds from
    process start on a single clock shared by all domains. Merged
    worker events keep their timestamps and get their own timeline row
    ([ev_tid]); the coordinating domain is row 0. [Obs_trace] renders
    the buffer in Chrome trace-event JSON. *)

val trace : unit -> bool
val set_trace_enabled : bool -> unit

val instant : string -> unit
(** Append an instant (point-in-time) event — budget walls, fallbacks,
    cache clears. No-op unless tracing is enabled. *)

type trace_event = {
  ev_tid : int;  (** timeline row: 0 = this domain, merges allocate 1.. *)
  ev_kind : [ `Complete | `Instant ];
  ev_name : string;
  ev_ts_us : float;  (** microseconds from process start, >= 0 *)
  ev_dur_us : float;  (** duration ([`Complete]) or 0 ([`Instant]), >= 0 *)
}

val trace_events : unit -> trace_event list
(** This domain's buffered events (own + merged), in emission order. *)

val thread_labels : unit -> (int * string) list
(** Timeline-row labels: [(0, "main")] plus one per merged snapshot. *)

(** {2 Registry} *)

val root : unit -> span
(** The root of the calling domain's span tree. Its [total] is
    meaningless; reporters show its children. *)

val registered_counters : unit -> (string * int) list
(** Counters touched in this domain while enabled, in first-use order
    (merged worker counters register at their merge point). *)

val registered_histograms : unit -> (string * hist_stats) list

val domain_breakdown : unit -> (string * (string * int) list) list
(** Per-domain attribution: for every merged snapshot, its label and
    the counter values that domain recorded, in merge order. Empty for
    sequential runs. *)

val reset : unit -> unit
(** Clear the calling domain's state: span tree, counters, histograms,
    trace events, merge labels. Does not change the enabled flags. *)

(** {2 Snapshots (cross-domain transport)} *)

type snapshot

val export_snapshot : unit -> snapshot
(** Plain-data copy of everything the calling domain recorded. Call it
    as the last thing a worker domain does, and ship the result back
    with the worker's payload. *)

val merge_snapshot : ?label:string -> snapshot -> unit
(** Fold a worker snapshot into the calling domain: counters sum
    (high-water gauges max), histograms add bucket-wise, the worker's
    span tree is grafted under the currently open span, and its trace
    events are assigned the next free timeline row, labelled [label]
    (default ["worker N"]). Call in a fixed order — worker 0, worker 1,
    ... — so merged registries are deterministic. *)
