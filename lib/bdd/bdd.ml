(* Reduced ordered binary decision diagrams with a hash-consed unique
   table and an ite computed-table, per manager. Node handles are ints;
   0 and 1 are the terminals. Variables are 0 .. nvars-1 in fixed order.

   A manager has one of two storage backends (see DESIGN.md §8 and §13):

   - [Seq] — the single-domain backend: flat int arrays for the node
     store, an open-addressing unique table with linear probing, and a
     lossy direct-mapped ite cache with packed keys. This is exactly
     the pre-concurrency code path: no atomics, no locks, no
     indirection on the hot path.

   - [Shr] — the shared-memory backend ([create_shared]): one unique
     table that several domains grow concurrently. The node store is a
     preallocated spine of stride-3 chunks (var/low/high adjacent for
     cache locality); node ids are claimed from an atomic counter, so
     handles never move once published. The unique table is striped:
     64 independent open-addressing sub-tables, each with its own
     mutex, selected by high hash bits. Lookups are lock-free (slots
     are [int Atomic.t]; an acquire read of a published slot makes the
     node's plain fields visible — the slot-publication protocol of
     DESIGN.md §13); inserts take the stripe lock, re-probe, claim an
     id, write the fields, and only then publish the slot with a
     release store. Stripe growth is cooperative: the lock holder
     partitions the old table into segments and any domain that
     arrives at the busy stripe helps copy segments, CAS-ing node ids
     into the new table. The ite computed cache stays per-domain
     (Domain.DLS) so the ~90% hit path never touches shared cache
     lines; [clear_caches] bumps a global generation that orphans
     every domain's entries at their next ite call. *)

type t = int

let bfalse : t = 0
let btrue : t = 1

(* Hard ceiling on node ids so packed cache keys fit in one word. *)
let max_nodes = 1 lsl 30

(* Instrumentation probes (free when Obs is disabled). *)
let c_ite_calls = Obs.counter "bdd.ite.calls"
let c_ite_hits = Obs.counter "bdd.ite.cache_hits"
let c_ite_misses = Obs.counter "bdd.ite.cache_misses"
let c_unique_hits = Obs.counter "bdd.unique.hits"
let c_unique_inserts = Obs.counter "bdd.unique.inserts"
let c_unique_rehash = Obs.counter "bdd.unique.rehash_events"
let c_grow = Obs.counter "bdd.grow_events"
let c_nodes_max = Obs.counter "bdd.nodes.max"

(* Contention probes for the shared backend. *)
let c_stripe_waits = Obs.counter "bdd.shared.stripe_waits"
let c_insert_races = Obs.counter "bdd.shared.insert_races"
let c_cas_retries = Obs.counter "bdd.shared.cas_retries"
let c_rehash_coop = Obs.counter "bdd.shared.rehash_coop"

(* Integer mix of a (var, low, high) triple: three odd multipliers from
   the murmur3/splitmix64 finalizers, then a 64-bit avalanche. The
   result may be negative; callers mask with [land] (the mask is
   positive, so the slot index always lands in range). *)
let[@inline] mix3 a b c =
  let h = (a * 0x9E3779B1) + (b * 0x85EBCA77) + (c * 0xC2B2AE3D) in
  let h = h lxor (h lsr 29) in
  let h = h * 0x27D4EB2F165667C5 in
  h lxor (h lsr 32)

(* ---------- sequential backend ---------- *)

type seq = {
  mutable var : int array; (* variable label per node; nvars for terminals *)
  mutable low : int array;
  mutable high : int array;
  mutable n_nodes : int;
  (* unique table: open addressing, capacity = umask + 1 (power of two) *)
  mutable utable : int array;
  mutable umask : int;
  (* ite computed table: direct-mapped, capacity = cmask + 1 *)
  mutable ck1 : int array;
  mutable ck2 : int array;
  mutable cres : int array;
  mutable cmask : int;
  mutable cgen : int; (* generation tag, < 2^30 *)
  cache_fixed : bool; (* explicit ~cache_bits: never resize (tests) *)
}

(* ---------- shared backend ---------- *)

(* Node storage: [chunk_nodes] nodes per chunk, stride 3 (var, low,
   high adjacent). The spine is preallocated for the 2^30 ceiling, so
   growth never moves a published node. *)
let chunk_bits = 16
let chunk_nodes = 1 lsl chunk_bits
let chunk_mask = chunk_nodes - 1
let nstripes = 64

(* Old-table entries per cooperative-rehash segment. *)
let seg_entries = 512

type rehash = {
  r_src : int Atomic.t array;
  r_dst : int Atomic.t array;
  r_next_seg : int Atomic.t; (* next segment index to claim *)
  r_done_segs : int Atomic.t; (* segments fully copied *)
  r_nsegs : int;
}

type stripe = {
  st_lock : Mutex.t;
  st_slots : int Atomic.t array Atomic.t;
  mutable st_count : int; (* interned nodes; only touched under the lock *)
  st_rehash : rehash option Atomic.t; (* active cooperative rehash, if any *)
}

type shr = {
  uid : int; (* distinguishes managers in the per-domain cache *)
  chunks : int array array; (* spine; plain writes published via [limit] *)
  alloc_lock : Mutex.t;
  limit : int Atomic.t; (* allocated node capacity (release store) *)
  next : int Atomic.t; (* next node id to claim *)
  stripes : stripe array;
  sgen : int Atomic.t; (* shared ite-cache generation *)
  s_cache_bits : int;
}

type backend = Seq of seq | Shr of shr

type man = {
  nvars : int;
  tab : backend;
  mutable budget : Budget.t;
      (* resource governance; Budget.unlimited (the default) keeps the
         hot paths to a single physical-equality test. In shared mode
         the budget is installed before workers spawn and read-only
         afterwards. *)
}

let cache_make bits =
  let cap = 1 lsl bits in
  (Array.make cap (-1), Array.make cap 0, Array.make cap 0, cap - 1)

let default_cache_bits = 14
let default_shared_cache_bits = 16
let max_cache_bits = 20

let check_cache_bits = function
  | Some b when b < 1 || b > max_cache_bits -> invalid_arg "Bdd.create: cache_bits"
  | _ -> ()

let create ?cache_bits ~nvars () =
  if nvars < 0 then invalid_arg "Bdd.create: negative nvars";
  check_cache_bits cache_bits;
  let cbits, cache_fixed =
    match cache_bits with None -> (default_cache_bits, false) | Some b -> (b, true)
  in
  let cap = 1024 in
  let var = Array.make cap 0 and low = Array.make cap 0 and high = Array.make cap 0 in
  var.(0) <- nvars;
  var.(1) <- nvars;
  let ck1, ck2, cres, cmask = cache_make cbits in
  {
    nvars;
    tab =
      Seq
        {
          var;
          low;
          high;
          n_nodes = 2;
          utable = Array.make 4096 0;
          umask = 4095;
          ck1;
          ck2;
          cres;
          cmask;
          cgen = 0;
          cache_fixed;
        };
    budget = Budget.unlimited;
  }

let shared_uid = Atomic.make 1

let create_shared ?cache_bits ~nvars () =
  if nvars < 0 then invalid_arg "Bdd.create_shared: negative nvars";
  check_cache_bits cache_bits;
  let cbits = Option.value cache_bits ~default:default_shared_cache_bits in
  let chunks = Array.make (max_nodes lsr chunk_bits) [||] in
  let c0 = Array.make (chunk_nodes * 3) 0 in
  (* Terminals: var = nvars, children unused. *)
  c0.(0) <- nvars;
  c0.(3) <- nvars;
  chunks.(0) <- c0;
  let stripe () =
    {
      st_lock = Mutex.create ();
      st_slots = Atomic.make (Array.init 64 (fun _ -> Atomic.make 0));
      st_count = 0;
      st_rehash = Atomic.make None;
    }
  in
  {
    nvars;
    tab =
      Shr
        {
          uid = Atomic.fetch_and_add shared_uid 1;
          chunks;
          alloc_lock = Mutex.create ();
          limit = Atomic.make chunk_nodes;
          next = Atomic.make 2;
          stripes = Array.init nstripes (fun _ -> stripe ());
          sgen = Atomic.make 0;
          s_cache_bits = cbits;
        };
    budget = Budget.unlimited;
  }

let is_shared man = match man.tab with Seq _ -> false | Shr _ -> true

let set_budget man b = man.budget <- b
let budget man = man.budget

let nvars man = man.nvars

(* Shared-backend field access. A node id is only ever obtained through
   an acquire (slot read, [limit] read, Domain.spawn/join), which makes
   the plain chunk writes behind it visible — see DESIGN.md §13. *)
let[@inline] sh_var h n =
  Array.unsafe_get (Array.unsafe_get h.chunks (n lsr chunk_bits)) ((n land chunk_mask) * 3)

let[@inline] sh_low h n =
  Array.unsafe_get
    (Array.unsafe_get h.chunks (n lsr chunk_bits))
    (((n land chunk_mask) * 3) + 1)

let[@inline] sh_high h n =
  Array.unsafe_get
    (Array.unsafe_get h.chunks (n lsr chunk_bits))
    (((n land chunk_mask) * 3) + 2)

let num_nodes man =
  match man.tab with Seq s -> s.n_nodes | Shr h -> Atomic.get h.next

let unique_capacity man =
  match man.tab with
  | Seq s -> s.umask + 1
  | Shr h ->
    Array.fold_left
      (fun acc st -> acc + Array.length (Atomic.get st.st_slots))
      0 h.stripes

let cache_capacity man =
  match man.tab with Seq s -> s.cmask + 1 | Shr h -> 1 lsl h.s_cache_bits

(* Invalidate every computed-table entry in O(1): entries carry the
   generation in their second key word, so bumping the tag orphans them.
   The generation wraps at 2^30 to keep the packing in range — after
   2^30 clears an ancient entry could in principle alias, which is
   indistinguishable from an ordinary cache collision given the entry
   would also need matching keys. In shared mode the bump invalidates
   every domain's cache at its next [ite] call. *)
let clear_caches man =
  match man.tab with
  | Seq s -> s.cgen <- (s.cgen + 1) land (max_nodes - 1)
  | Shr h -> Atomic.set h.sgen ((Atomic.get h.sgen + 1) land (max_nodes - 1))

let var_of man n =
  match man.tab with Seq s -> s.var.(n) | Shr h -> sh_var h n

let low_of man n = match man.tab with Seq s -> s.low.(n) | Shr h -> sh_low h n
let high_of man n = match man.tab with Seq s -> s.high.(n) | Shr h -> sh_high h n
let is_terminal n = n < 2

(* Generic accessors for the cold (traversal) paths; the hot ite/mk
   paths below are specialized per backend instead. *)
let[@inline] ivar man n =
  match man.tab with Seq s -> Array.unsafe_get s.var n | Shr h -> sh_var h n

let[@inline] ilow man n =
  match man.tab with Seq s -> Array.unsafe_get s.low n | Shr h -> sh_low h n

let[@inline] ihigh man n =
  match man.tab with Seq s -> Array.unsafe_get s.high n | Shr h -> sh_high h n

(* ---------- sequential mk / ite (the uncontended fast path) ---------- *)

let grow_nodes s =
  Obs.incr c_grow;
  Obs.instant "bdd.grow";
  let cap = Array.length s.var in
  if cap >= max_nodes then failwith "Bdd: node limit (2^30) exceeded";
  let cap' = cap * 2 in
  let extend a =
    let a' = Array.make cap' 0 in
    Array.blit a 0 a' 0 cap;
    a'
  in
  s.var <- extend s.var;
  s.low <- extend s.low;
  s.high <- extend s.high

(* Double the unique table and reinsert every interned node. Insertion
   scans for the first empty slot — no deletions ever happen, so there
   are no tombstones and every probe chain is a contiguous run. *)
let unique_rehash s =
  Obs.incr c_unique_rehash;
  Obs.instant "bdd.unique.rehash";
  let mask' = ((s.umask + 1) * 2) - 1 in
  let t' = Array.make (mask' + 1) 0 in
  for n = 2 to s.n_nodes - 1 do
    let i = ref (mix3 s.var.(n) s.low.(n) s.high.(n) land mask') in
    while Array.unsafe_get t' !i <> 0 do
      i := (!i + 1) land mask'
    done;
    Array.unsafe_set t' !i n
  done;
  s.utable <- t';
  s.umask <- mask';
  (* Let the lossy ite cache track the unique table up to a ceiling:
     dropping the resident entries is sound (it is a cache) and growth
     events are logarithmically rare, so there are no rehash storms. *)
  if (not s.cache_fixed) && s.cmask + 1 < 1 lsl max_cache_bits && s.cmask < mask'
  then begin
    let bits =
      let rec bits_of n acc = if n <= 1 then acc else bits_of (n lsr 1) (acc + 1) in
      min max_cache_bits (bits_of (mask' + 1) 0)
    in
    let ck1, ck2, cres, cmask = cache_make bits in
    s.ck1 <- ck1;
    s.ck2 <- ck2;
    s.cres <- cres;
    s.cmask <- cmask
  end

(* Hash-consing find-or-insert. One probe sequence serves both the
   lookup and the insertion point: the first empty slot terminates an
   unsuccessful probe and is exactly where the new node id goes. *)
let mk_seq man s v lo hi =
  if lo = hi then lo
  else begin
    let table = s.utable and mask = s.umask in
    let var = s.var and low = s.low and high = s.high in
    let i = ref (mix3 v lo hi land mask) in
    let found = ref (-1) in
    let scanning = ref true in
    while !scanning do
      let n = Array.unsafe_get table !i in
      if n = 0 then scanning := false
      else if
        Array.unsafe_get var n = v
        && Array.unsafe_get low n = lo
        && Array.unsafe_get high n = hi
      then begin
        found := n;
        scanning := false
      end
      else i := (!i + 1) land mask
    done;
    if !found >= 0 then begin
      Obs.incr c_unique_hits;
      !found
    end
    else begin
      Obs.incr c_unique_inserts;
      if s.n_nodes >= Array.length s.var then grow_nodes s;
      let n = s.n_nodes in
      s.var.(n) <- v;
      s.low.(n) <- lo;
      s.high.(n) <- hi;
      s.n_nodes <- n + 1;
      if man.budget != Budget.unlimited then Budget.check_nodes man.budget (n + 1);
      Obs.record_max c_nodes_max (n + 1);
      Array.unsafe_set table !i n;
      if (s.n_nodes - 2) * 4 > (mask + 1) * 3 then unique_rehash s;
      n
    end
  end

(* Cofactors of [n] w.r.t. variable [v], assuming v <= var(n). *)
let cofactors_seq s v n =
  if s.var.(n) = v then (s.low.(n), s.high.(n)) else (n, n)

let rec ite_seq man s f g h =
  if f = btrue then g
  else if f = bfalse then h
  else if g = h then g
  else if g = btrue && h = bfalse then f
  else begin
    Obs.incr c_ite_calls;
    if man.budget != Budget.unlimited then Budget.tick man.budget;
    let k1 = (f lsl 31) lor g and k2 = (s.cgen lsl 31) lor h in
    let slot = mix3 f g h land s.cmask in
    if Array.unsafe_get s.ck1 slot = k1 && Array.unsafe_get s.ck2 slot = k2 then begin
      Obs.incr c_ite_hits;
      Array.unsafe_get s.cres slot
    end
    else begin
      Obs.incr c_ite_misses;
      let v = min s.var.(f) (min s.var.(g) s.var.(h)) in
      let f0, f1 = cofactors_seq s v f in
      let g0, g1 = cofactors_seq s v g in
      let h0, h1 = cofactors_seq s v h in
      let r1 = ite_seq man s f1 g1 h1 in
      let r0 = ite_seq man s f0 g0 h0 in
      let r = mk_seq man s v r0 r1 in
      (* The cache may have been resized during the recursion: recompute
         the slot against the current mask before storing. *)
      let slot = mix3 f g h land s.cmask in
      s.ck1.(slot) <- k1;
      s.ck2.(slot) <- k2;
      s.cres.(slot) <- r;
      r
    end
  end

(* ---------- shared mk: striped table, cooperative rehash ---------- *)

(* Copy the claimed segments of a live rehash into the destination
   table. Called by the stripe-lock holder and by any domain that finds
   the stripe busy: segments are claimed from an atomic counter, and
   ids are CAS-ed into the destination so two helpers can never
   double-fill a slot. No lock is held by helpers, so helping never
   deadlocks. *)
(* Insert node id [n] into rehash destination [dst]: probe from its
   hash; stop as soon as some copier is seen to have placed [n]
   already. Cells only ever go 0 -> id, and [n] always lands at the
   first cell that was empty in its probe order, so a later walk for
   the same [n] must encounter it before any empty cell — which makes
   the copy idempotent and lets two copiers cover the same range. *)
let sh_rehash_insert h dst dmask n =
  let hh = mix3 (sh_var h n) (sh_low h n) (sh_high h n) in
  let rec ins j =
    let cell = Array.unsafe_get dst j in
    let v = Atomic.get cell in
    if v = n then ()
    else if v = 0 then begin
      if not (Atomic.compare_and_set cell 0 n) then begin
        Obs.incr c_cas_retries;
        (* Re-examine the same cell: the winning writer may have
           published exactly [n]. *)
        ins j
      end
    end
    else ins ((j + 1) land dmask)
  in
  ins (hh land dmask)

let sh_copy_range h (r : rehash) lo hi =
  let dst = r.r_dst in
  let dmask = Array.length dst - 1 in
  for i = lo to hi do
    let n = Atomic.get (Array.unsafe_get r.r_src i) in
    if n <> 0 then sh_rehash_insert h dst dmask n
  done

let sh_rehash_work h (r : rehash) =
  let seg_len = Array.length r.r_src / r.r_nsegs in
  let rec claim () =
    let seg = Atomic.fetch_and_add r.r_next_seg 1 in
    if seg < r.r_nsegs then begin
      let base = seg * seg_len in
      sh_copy_range h r base (base + seg_len - 1);
      ignore (Atomic.fetch_and_add r.r_done_segs 1 : int);
      claim ()
    end
  in
  claim ()

(* Grow one stripe. The caller holds the stripe lock, so no new ids can
   be published into the source table; lock-free readers may keep
   probing it until the swap, which is safe (they either hit a
   published node or fall through to the locked path). Completeness of
   the copy before the swap does NOT wait on helpers: a helper that
   claimed a segment and was then descheduled must not stall the
   grower — on an oversubscribed machine, spinning here burns the very
   timeslice that helper needs to finish. Instead, if any claimed
   segment is still unfinished after the grower's own claim loop, the
   grower redoes the whole copy (idempotent, see [sh_rehash_insert])
   and swaps; the stalled helper's remaining walk is a no-op against
   the live table, because every id it would insert is already
   present. Per-cell visibility needs no extra ceremony: node fields
   are published before an id ever enters any table, and each slot is
   its own release/acquire pair. *)
let sh_grow_stripe h st =
  Obs.incr c_unique_rehash;
  Obs.instant "bdd.unique.rehash";
  let src = Atomic.get st.st_slots in
  let cap = Array.length src in
  let dst = Array.init (cap * 2) (fun _ -> Atomic.make 0) in
  let nsegs = if cap <= seg_entries then 1 else cap / seg_entries in
  let r =
    {
      r_src = src;
      r_dst = dst;
      r_next_seg = Atomic.make 0;
      r_done_segs = Atomic.make 0;
      r_nsegs = nsegs;
    }
  in
  Atomic.set st.st_rehash (Some r);
  sh_rehash_work h r;
  if Atomic.get r.r_done_segs < nsegs then sh_copy_range h r 0 (cap - 1);
  Atomic.set st.st_slots dst;
  Atomic.set st.st_rehash None

(* Take the stripe lock; if it is contended, spend the wait helping an
   in-flight rehash of the same stripe instead of just blocking. *)
let sh_lock_stripe h st =
  if not (Mutex.try_lock st.st_lock) then begin
    Obs.incr c_stripe_waits;
    (match Atomic.get st.st_rehash with
    | Some r ->
      Obs.incr c_rehash_coop;
      sh_rehash_work h r
    | None -> ());
    Mutex.lock st.st_lock
  end

(* Make node id [id] addressable: allocate chunks up to it. Only the
   claiming inserter calls this, under the allocation lock; the
   release store to [limit] publishes the fresh chunk. *)
let sh_ensure h id =
  if id >= Atomic.get h.limit then begin
    Mutex.lock h.alloc_lock;
    while id >= Atomic.get h.limit do
      let lim = Atomic.get h.limit in
      Obs.incr c_grow;
      Obs.instant "bdd.grow";
      h.chunks.(lim lsr chunk_bits) <- Array.make (chunk_nodes * 3) 0;
      Atomic.set h.limit (lim + chunk_nodes)
    done;
    Mutex.unlock h.alloc_lock
  end

let[@inline] sh_stripe_of h hash =
  Array.unsafe_get h.stripes ((hash lsr 45) land (nstripes - 1))

(* Find-or-insert under the stripe lock. The probe runs on the current
   table (a rehash may have swapped it since the lock-free attempt). *)
let sh_insert_locked man h st hash v lo hi =
  let tab = Atomic.get st.st_slots in
  let mask = Array.length tab - 1 in
  let rec probe i =
    let cell = Array.unsafe_get tab i in
    let n = Atomic.get cell in
    if n = 0 then begin
      let id = Atomic.fetch_and_add h.next 1 in
      if id >= max_nodes then failwith "Bdd: node limit (2^30) exceeded";
      if man.budget != Budget.unlimited then Budget.check_nodes man.budget (id + 1);
      sh_ensure h id;
      let chunk = Array.unsafe_get h.chunks (id lsr chunk_bits) in
      let base = (id land chunk_mask) * 3 in
      Array.unsafe_set chunk base v;
      Array.unsafe_set chunk (base + 1) lo;
      Array.unsafe_set chunk (base + 2) hi;
      Obs.incr c_unique_inserts;
      Obs.record_max c_nodes_max (id + 1);
      (* Publication point: after this release store any domain that
         reads the slot sees the fields written above. *)
      Atomic.set cell id;
      st.st_count <- st.st_count + 1;
      if st.st_count * 4 > (mask + 1) * 3 then sh_grow_stripe h st;
      id
    end
    else if sh_var h n = v && sh_low h n = lo && sh_high h n = hi then begin
      (* Another domain interned the same triple between our lock-free
         miss and the lock acquisition. *)
      Obs.incr c_unique_hits;
      Obs.incr c_insert_races;
      n
    end
    else probe ((i + 1) land mask)
  in
  probe (hash land mask)

let mk_shr man h v lo hi =
  if lo = hi then lo
  else begin
    let hash = mix3 v lo hi in
    let st = sh_stripe_of h hash in
    (* Lock-free probe on the current table. A concurrent rehash can
       leave us scanning the superseded table; that only ever produces
       a miss (never a wrong hit — published nodes are immutable), and
       the locked path below re-probes the live table. *)
    let tab = Atomic.get st.st_slots in
    let mask = Array.length tab - 1 in
    let rec probe i =
      let n = Atomic.get (Array.unsafe_get tab i) in
      if n = 0 then -1
      else if sh_var h n = v && sh_low h n = lo && sh_high h n = hi then n
      else probe ((i + 1) land mask)
    in
    let n = probe (hash land mask) in
    if n > 0 then begin
      Obs.incr c_unique_hits;
      n
    end
    else begin
      sh_lock_stripe h st;
      match sh_insert_locked man h st hash v lo hi with
      | id ->
        Mutex.unlock st.st_lock;
        id
      | exception e ->
        (* Budget exhaustion must not leave the stripe locked: other
           workers still drain their cancellation through [mk]. *)
        Mutex.unlock st.st_lock;
        raise e
    end
  end

(* ---------- per-domain ite cache (shared backend) ---------- *)

(* One direct-mapped cache per domain, reused across shared managers:
   acquiring it for a different manager (or an incompatible size)
   clears or reallocates it. Keys pack exactly as in the sequential
   cache; -1 in ck1 never matches a real key (f >= 2).

   The cache starts small and doubles toward the configured
   2^s_cache_bits as the domain accumulates misses: worker domains are
   freshly spawned per parallel run, so a full-size up-front
   allocation (megabytes, zeroed) would be a fixed per-domain tax paid
   before any useful work — measurable milliseconds per worker —
   while short-lived workers never profit from the full size. *)
type dcache = {
  mutable d_owner : int; (* shr uid; 0 = unowned *)
  mutable d_ck1 : int array;
  mutable d_ck2 : int array;
  mutable d_cres : int array;
  mutable d_cmask : int;
  mutable d_misses : int; (* since the last (re)size *)
}

let dcache_initial_bits = 12

let dcache_key =
  Domain.DLS.new_key (fun () ->
      {
        d_owner = 0;
        d_ck1 = [||];
        d_ck2 = [||];
        d_cres = [||];
        d_cmask = -1;
        d_misses = 0;
      })

let dcache_alloc c cap =
  c.d_ck1 <- Array.make cap (-1);
  c.d_ck2 <- Array.make cap 0;
  c.d_cres <- Array.make cap 0;
  c.d_cmask <- cap - 1;
  c.d_misses <- 0

let get_dcache h =
  let c = Domain.DLS.get dcache_key in
  let cap_limit = 1 lsl h.s_cache_bits in
  if c.d_owner <> h.uid then begin
    let have = c.d_cmask + 1 in
    let floor_cap = 1 lsl (min h.s_cache_bits dcache_initial_bits) in
    (* An existing array of acceptable size is kept (cleared), so a
       domain alternating between managers does not thrash the
       allocator. *)
    if have >= floor_cap && have <= cap_limit then begin
      Array.fill c.d_ck1 0 have (-1);
      c.d_misses <- 0
    end
    else dcache_alloc c floor_cap;
    c.d_owner <- h.uid
  end
  else if c.d_misses > (c.d_cmask + 1) * 2 && c.d_cmask + 1 < cap_limit then
    (* Grow between top-level calls only: ite_shr computes each slot
       against the mask it reads, so the cache must not resize while a
       recursion is in flight. Entries are dropped, not rehashed — it
       is a cache. *)
    dcache_alloc c ((c.d_cmask + 1) * 2);
  c

let rec ite_shr man h c gen f g hh =
  if f = btrue then g
  else if f = bfalse then hh
  else if g = hh then g
  else if g = btrue && hh = bfalse then f
  else begin
    Obs.incr c_ite_calls;
    if man.budget != Budget.unlimited then Budget.tick man.budget;
    let k1 = (f lsl 31) lor g and k2 = (gen lsl 31) lor hh in
    let slot = mix3 f g hh land c.d_cmask in
    if Array.unsafe_get c.d_ck1 slot = k1 && Array.unsafe_get c.d_ck2 slot = k2
    then begin
      Obs.incr c_ite_hits;
      Array.unsafe_get c.d_cres slot
    end
    else begin
      Obs.incr c_ite_misses;
      c.d_misses <- c.d_misses + 1;
      let vf = sh_var h f and vg = sh_var h g and vh = sh_var h hh in
      let v = min vf (min vg vh) in
      let f0, f1 = if vf = v then (sh_low h f, sh_high h f) else (f, f) in
      let g0, g1 = if vg = v then (sh_low h g, sh_high h g) else (g, g) in
      let h0, h1 = if vh = v then (sh_low h hh, sh_high h hh) else (hh, hh) in
      let r1 = ite_shr man h c gen f1 g1 h1 in
      let r0 = ite_shr man h c gen f0 g0 h0 in
      let r = mk_shr man h v r0 r1 in
      (* The per-domain cache never resizes mid-call: the slot is
         still valid here. *)
      Array.unsafe_set c.d_ck1 slot k1;
      Array.unsafe_set c.d_ck2 slot k2;
      Array.unsafe_set c.d_cres slot r;
      r
    end
  end

(* ---------- public mk / ite ---------- *)

let mk man v lo hi =
  match man.tab with Seq s -> mk_seq man s v lo hi | Shr h -> mk_shr man h v lo hi

let ite man f g h =
  match man.tab with
  | Seq s -> ite_seq man s f g h
  | Shr hh ->
    if f = btrue then g
    else if f = bfalse then h
    else if g = h then g
    else if g = btrue && h = bfalse then f
    else ite_shr man hh (get_dcache hh) (Atomic.get hh.sgen) f g h

let var man v =
  if v < 0 || v >= man.nvars then invalid_arg "Bdd.var: out of range";
  mk man v bfalse btrue

let nvar man v =
  if v < 0 || v >= man.nvars then invalid_arg "Bdd.nvar: out of range";
  mk man v btrue bfalse

let bnot man f = ite man f bfalse btrue
let band man f g = ite man f g bfalse
let bor man f g = ite man f btrue g
let bxor man f g = ite man f (bnot man g) g
let bnand man f g = bnot man (band man f g)
let bnor man f g = bnot man (bor man f g)
let bxnor man f g = bnot man (bxor man f g)
let bimply man f g = ite man f g btrue

let band_list man = List.fold_left (band man) btrue
let bor_list man = List.fold_left (bor man) bfalse

let rec eval man f assignment =
  if f = btrue then true
  else if f = bfalse then false
  else if assignment.(ivar man f) then eval man (ihigh man f) assignment
  else eval man (ilow man f) assignment

(* Bit-parallel evaluation: [var_words.(v)] packs variable v across
   patterns, one per bit; the result packs f across the same patterns.
   One memoized DAG walk replaces a per-pattern descent. *)
let eval_vec man f var_words =
  if Array.length var_words <> man.nvars then
    invalid_arg "Bdd.eval_vec: wrong number of variable words";
  let memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec go n =
    if n = bfalse then 0
    else if n = btrue then -1
    else
      match Hashtbl.find_opt memo n with
      | Some w -> w
      | None ->
        let vw = var_words.(ivar man n) in
        let hi = go (ihigh man n) in
        let lo = go (ilow man n) in
        let w = vw land hi lor (lnot vw land lo) in
        Hashtbl.add memo n w;
        w
  in
  go f

(* Every published node, in id order. In shared mode this is meaningful
   only at quiescence (no concurrent inserts): ids claimed but never
   published (a budget raise between claim and field writes) read as
   all-zero triples and are skipped via lo = hi, which no reduced node
   can exhibit. *)
let iter_nodes man fn =
  match man.tab with
  | Seq s ->
    for n = 2 to s.n_nodes - 1 do
      fn n s.var.(n) s.low.(n) s.high.(n)
    done
  | Shr h ->
    let stop = Atomic.get h.next in
    for n = 2 to stop - 1 do
      let lo = sh_low h n and hi = sh_high h n in
      if lo <> hi then fn n (sh_var h n) lo hi
    done

let size man f =
  let seen = Hashtbl.create 64 in
  let rec walk n =
    if not (is_terminal n || Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      walk (ilow man n);
      walk (ihigh man n)
    end
  in
  walk f;
  Hashtbl.length seen + 2

let support man f =
  let seen = Hashtbl.create 64 in
  let vars = Array.make man.nvars false in
  let rec walk n =
    if not (is_terminal n || Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      vars.(ivar man n) <- true;
      walk (ilow man n);
      walk (ihigh man n)
    end
  in
  walk f;
  vars

(* Minterm count over all nvars variables, in extended-range arithmetic.
   count(n) counts assignments of variables var(n) .. nvars-1; the root
   result is then scaled by 2^var(root). *)
let satcount man f =
  let memo = Hashtbl.create 64 in
  let rec count n =
    if n = bfalse then Extfloat.zero
    else if n = btrue then Extfloat.one
    else
      match Hashtbl.find_opt memo n with
      | Some c -> c
      | None ->
        let v = ivar man n in
        let branch child = Extfloat.mul_pow2 (count child) (ivar man child - v - 1) in
        let c = Extfloat.add (branch (ilow man n)) (branch (ihigh man n)) in
        Hashtbl.add memo n c;
        c
  in
  if f = bfalse then Extfloat.zero else Extfloat.mul_pow2 (count f) (ivar man f)

(* One satisfying (partial) assignment as (var, value) literals. *)
let any_sat man f =
  if f = bfalse then None
  else begin
    let rec descend n acc =
      if n = btrue then acc
      else if ihigh man n <> bfalse then descend (ihigh man n) ((ivar man n, true) :: acc)
      else descend (ilow man n) ((ivar man n, false) :: acc)
    in
    Some (List.rev (descend f []))
  end

(* Uniformly sample a full minterm of f, weighting branch choice by
   satcount. [rand_float ()] must be uniform in [0,1). *)
let sample_sat man f ~rand_float =
  if f = bfalse then None
  else begin
    let assignment = Array.make man.nvars false in
    let flip v = assignment.(v) <- rand_float () < 0.5 in
    let rec descend n next_var =
      if n = btrue then
        for v = next_var to man.nvars - 1 do
          flip v
        done
      else begin
        let v = ivar man n in
        for u = next_var to v - 1 do
          flip u
        done;
        let c_lo = satcount man (ilow man n) and c_hi = satcount man (ihigh man n) in
        let total = Extfloat.add c_lo c_hi in
        (* P(high) = c_hi / total, computed in extended range. *)
        let p_hi =
          if Extfloat.is_zero c_hi then 0.
          else Extfloat.to_float (Extfloat.div c_hi total)
        in
        let take_hi = rand_float () < p_hi in
        assignment.(v) <- take_hi;
        descend (if take_hi then ihigh man n else ilow man n) (v + 1)
      end
    in
    (* satcount of subnodes counts vars below var(n); using the manager
       satcount keeps results consistent since the 2^k factors cancel in
       the ratio only if both children start at the same depth — they do,
       because both counts are scaled to full nvars here. *)
    descend f 0;
    Some assignment
  end

(* Existential quantification over the variables marked true in [vars]. *)
let exists man vars f =
  let memo = Hashtbl.create 64 in
  let rec ex n =
    if is_terminal n then n
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
        let v = ivar man n in
        let lo = ex (ilow man n) and hi = ex (ihigh man n) in
        let r = if vars.(v) then bor man lo hi else mk man v lo hi in
        Hashtbl.add memo n r;
        r
  in
  ex f

let forall man vars f = bnot man (exists man vars (bnot man f))

(* Restrict variable v to a constant. *)
let restrict man f v value =
  let memo = Hashtbl.create 64 in
  let rec go n =
    if is_terminal n || ivar man n > v then n
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
        let r =
          if ivar man n = v then if value then ihigh man n else ilow man n
          else mk man (ivar man n) (go (ilow man n)) (go (ihigh man n))
        in
        Hashtbl.add memo n r;
        r
  in
  go f

(* Simultaneous substitution: variable i is replaced by subs.(i). *)
let compose_vec man f subs =
  if Array.length subs <> man.nvars then
    invalid_arg "Bdd.compose_vec: substitution arity mismatch";
  let memo = Hashtbl.create 64 in
  let rec go n =
    if is_terminal n then n
    else
      match Hashtbl.find_opt memo n with
      | Some r -> r
      | None ->
        let r = ite man subs.(ivar man n) (go (ihigh man n)) (go (ilow man n)) in
        Hashtbl.add memo n r;
        r
  in
  go f

(* A cube over BDD inputs given as function handles: AND of literals with
   each variable v standing for inputs.(v). *)
let cube_with man cube inputs =
  List.fold_left
    (fun acc (v, ph) ->
      let lit = if ph then inputs.(v) else bnot man inputs.(v) in
      band man acc lit)
    btrue (Logic2.Cube.literals cube)

let cover_with man cover inputs =
  List.fold_left
    (fun acc c -> bor man acc (cube_with man c inputs))
    bfalse
    (Logic2.Cover.cubes cover)

(* Direct encodings where cover variable i is BDD variable i. *)
let of_cube man cube =
  cube_with man cube (Array.init man.nvars (fun v -> var man v))

let of_cover man cover =
  cover_with man cover (Array.init man.nvars (fun v -> var man v))
