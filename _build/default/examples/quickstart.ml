(* Quickstart: protect a logic circuit against timing errors on its
   speed-paths (the mechanism of the paper's Fig. 1).

     dune exec examples/quickstart.exe

   1. Build (or load) a technology-independent Boolean network.
   2. [Masking.Synthesis.synthesize] maps it, computes the SPCF of every
      critical output, synthesizes the error-masking circuit C̃, and
      returns the combined circuit: C, C̃, and a MUX21 in front of each
      critical output that selects the prediction ỹ whenever the
      indicator e is raised.
   3. [Masking.Verify.check] proves the construction: the masked circuit
      is combinationally equivalent to the original (the mux can never
      corrupt an output), every SPCF pattern raises e, e implies a
      correct prediction, and C̃ meets the 20% timing-slack requirement. *)

let () =
  (* A small synthetic control-logic block (seeded, reproducible). *)
  let net =
    Generator.generate
      {
        Generator.default_params with
        name = "quickstart";
        n_pi = 20;
        n_po = 6;
        n_nodes = 50;
        seed = 2026;
      }
  in
  Format.printf "original network:   %a@." Network.pp net;

  (* Synthesize the error-masking circuit. *)
  let m = Masking.Synthesis.synthesize net in
  Format.printf "critical path delay: %.3f, target arrival: %.3f@."
    m.Masking.Synthesis.delta m.Masking.Synthesis.target;
  Format.printf "critical outputs:    %d of %d@."
    (List.length m.Masking.Synthesis.per_output)
    (Array.length (Network.outputs net));
  List.iter
    (fun (po : Masking.Synthesis.per_output) ->
      Format.printf "  %-8s speed-path activation patterns: %s@."
        po.Masking.Synthesis.name
        (Extfloat.to_string
           (Bdd.satcount m.Masking.Synthesis.ctx.Spcf.Ctx.man po.Masking.Synthesis.sigma)))
    m.Masking.Synthesis.per_output;
  Format.printf "masking circuit:     %a@." Mapped.pp m.Masking.Synthesis.masking;
  Format.printf "combined circuit:    %a@." Mapped.pp m.Masking.Synthesis.combined;

  (* Verify everything and report the paper's Table-2 metrics. *)
  let r = Masking.Verify.check m in
  Format.printf "@[<v 2>verification:@ %a@]@." Masking.Verify.pp r;
  assert (r.Masking.Verify.equivalent);
  assert (r.Masking.Verify.coverage_ok);
  assert (r.Masking.Verify.prediction_ok);
  Format.printf "all checks passed: timing errors on speed-paths within 10%% of the@.";
  Format.printf "critical path delay are masked at the outputs, with zero functional risk.@."
