(** Static timing analysis over mapped circuits. *)

val eps : float
(** Comparison epsilon for delay arithmetic. *)

type delay_model =
  | Unit
  | Paper_units  (** inverter = 1, other gates = 2 (paper Sec. 4.2) *)
  | Library
  | Library_load of float  (** cell delay + slope × load *)

val gate_delays : delay_model -> Mapped.t -> float array
(** Per-signal driving-gate delay (0 for primary inputs). *)

type t

val analyze : ?model:delay_model -> Mapped.t -> t
val circuit : t -> Mapped.t
val model : t -> delay_model

val delta : t -> float
(** Critical path delay Δ (max arrival over primary outputs). *)

val arrival : t -> Network.signal -> float
val tail : t -> Network.signal -> float
(** Maximum downstream gate-delay sum from the signal to any output. *)

val delay : t -> Network.signal -> float
val slack : t -> target:float -> Network.signal -> float

val critical_outputs : t -> target:float -> (string * Network.signal) array
(** Outputs where a structural path longer than [target] terminates. *)

val critical_signals : t -> target:float -> bool array
(** Signals on some structural path longer than [target] (the static
    marking used by the node-based SPCF approach). *)

val longest_path : t -> Network.signal list * float
val pp : Format.formatter -> t -> unit
