(* Seeded generator for synthetic multi-level control logic. It stands in
   for the ISCAS/MCNC/OpenSPARC netlists the paper used (see DESIGN.md).

   Structure: the primary inputs are split into contiguous *blocks* of at
   most [max_support] variables. Phase 1 grows an irregular multi-level
   tree/DAG inside each block — arbitrary node functions, depth-biased
   fanin choice, bounded fanout reuse (the source of the reconvergence
   that separates the node-based SPCF over-approximation from the exact
   algorithms). Phase 2 merges adjacent blocks pairwise with 2-input
   combine nodes until one region remains.

   Tractability invariant: any node function over more than [max_support]
   variables combines sub-functions whose primary-input support intervals
   are disjoint and non-interleaved (blocks are merged in PI order), so
   BDD sizes compose additively. Every signal's BDD is therefore bounded
   by (#blocks × 2^max_support / max_support) regardless of circuit
   width — wide circuits like the 882-input sparc_ifu_ifqdp stay cheap. *)

type params = {
  name : string;
  n_pi : int;
  n_po : int;
  n_nodes : int;
  seed : int;
  p_chain : float; (* probability a fanin is drawn from the newest signals *)
  p_reuse : float; (* probability of one extra fanin reused from the block *)
  max_support : int; (* block width; also the rich-function support bound *)
}

let default_params =
  {
    name = "synthetic";
    n_pi = 16;
    n_po = 4;
    n_nodes = 40;
    seed = 1;
    p_chain = 0.35;
    p_reuse = 0.15;
    max_support = 14;
  }

let product rng k =
  Logic2.Cover.of_cubes k
    [ Logic2.Cube.make k (List.init k (fun v -> (v, Util.Rng.bool rng))) ]

let full_or rng k =
  Logic2.Cover.of_cubes k
    (List.init k (fun v -> Logic2.Cube.make k [ (v, Util.Rng.bool rng) ]))

let xor2 =
  Logic2.Cover.of_cubes 2
    [ Logic2.Cube.make 2 [ (0, true); (1, false) ]; Logic2.Cube.make 2 [ (0, false); (1, true) ] ]

(* fanin 2 selects between fanins 0 and 1 *)
let mux3 =
  Logic2.Cover.of_cubes 3
    [ Logic2.Cube.make 3 [ (2, false); (0, true) ]; Logic2.Cube.make 3 [ (2, true); (1, true) ] ]

let majority3 =
  Logic2.Cover.of_cubes 3
    [
      Logic2.Cube.make 3 [ (0, true); (1, true) ];
      Logic2.Cube.make 3 [ (0, true); (2, true) ];
      Logic2.Cube.make 3 [ (1, true); (2, true) ];
    ]

let random_sop rng k =
  let n_cubes = 2 + Util.Rng.int rng 2 in
  let cube () =
    let lits = ref [] in
    for v = 0 to k - 1 do
      if Util.Rng.float rng < 0.6 then lits := (v, Util.Rng.bool rng) :: !lits
    done;
    match !lits with
    | [] -> Logic2.Cube.make k [ (Util.Rng.int rng k, Util.Rng.bool rng) ]
    | lits -> Logic2.Cube.make k lits
  in
  Logic2.Cover.of_cubes k (List.init n_cubes (fun _ -> cube ()))

(* A random non-degenerate node function over [k] fanins. *)
let random_func rng k =
  let candidate () =
    match (k, Util.Rng.int rng 10) with
    | 2, (0 | 1 | 2) -> xor2
    | 3, (0 | 1) -> mux3
    | 3, 2 -> majority3
    | _, (2 | 3 | 4) -> product rng k
    | _, (5 | 6) -> full_or rng k
    | _, _ -> random_sop rng k
  in
  let acceptable f =
    (not (Logic2.Cover.is_zero f))
    && (not (Logic2.Cover.is_tautology f))
    && Logic2.Bits.count (Logic2.Cover.support f) = k
  in
  let rec try_one attempts =
    let f = candidate () in
    if acceptable f then f
    else if attempts > 20 then product rng k
    else try_one (attempts + 1)
  in
  try_one 0

(* Remove the [idx]-th element of a list. *)
let remove_nth idx l =
  let rec go i acc = function
    | [] -> assert false
    | x :: rest ->
      if i = 0 then (x, List.rev_append acc rest) else go (i - 1) (x :: acc) rest
  in
  go idx [] l

(* Draw and remove a pool element; recent elements are preferred with
   probability [p_chain], which stretches path depth. Also reports
   whether the depth-biased branch was taken (a "spine" draw). *)
let draw_from_pool_spine rng p_chain pool =
  let n = List.length pool in
  assert (n > 0);
  let spine = Util.Rng.float rng < p_chain in
  let idx = if spine then Util.Rng.int rng (min 3 n) else Util.Rng.int rng n in
  let s, rest = remove_nth idx pool in
  (s, rest, spine)

let draw_from_pool rng p_chain pool =
  let s, rest, _ = draw_from_pool_spine rng p_chain pool in
  (s, rest)

(* Spine nodes favor functions with no early-stabilizing primes (XOR:
   every prime contains both inputs; MAJ: two of three), so the deep
   paths they form are genuinely sensitizable and the circuit's
   floating-mode delay tracks its structural delay — the regime of
   timing-tight synthesized logic the paper's benchmarks live in. *)
let spine_func rng k =
  match (k, Util.Rng.int rng 10) with
  | 2, (0 | 1 | 2 | 3 | 4 | 5 | 6) -> xor2
  | 3, (0 | 1 | 2 | 3) -> majority3
  | 3, (4 | 5) -> mux3
  | _, _ -> random_func rng k

type region = {
  mutable pool : Network.signal list; (* open signals, newest first *)
  mutable members : Network.signal list; (* every signal of the region *)
  mutable max_level : int; (* deepest signal level in the region *)
}

let generate p =
  (* Validate up front: hostile parameters used to die as bare assertion
     failures deep inside the pool machinery (found by the fuzzer). *)
  if p.n_pi <= 0 then
    invalid_arg (Printf.sprintf "Generator.generate %s: n_pi must be positive" p.name);
  if p.n_po < 0 then
    invalid_arg (Printf.sprintf "Generator.generate %s: n_po must be non-negative" p.name);
  if p.max_support <= 0 then
    invalid_arg
      (Printf.sprintf "Generator.generate %s: max_support must be positive" p.name);
  let rng = Util.Rng.create p.seed in
  let net = Network.create () in
  let node_counter = ref 0 in
  let next_name () =
    let i = !node_counter in
    incr node_counter;
    Printf.sprintf "n%d" i
  in
  (* Blocks of adjacent primary inputs. *)
  let bs = max 2 p.max_support in
  let nblocks = max 1 ((p.n_pi + bs - 1) / bs) in
  let regions =
    Array.init nblocks (fun b ->
        let lo = b * bs and hi = min p.n_pi ((b + 1) * bs) in
        let pis =
          List.init (hi - lo) (fun i -> Network.add_input net (Printf.sprintf "pi%d" (lo + i)))
        in
        { pool = List.rev pis; members = pis; max_level = 0 })
  in
  (* One node inside a region: fanins from its pool (depth-biased), plus
     an occasional reused region member (fanout > 1, reconvergence). *)
  let level = Hashtbl.create 256 in
  let level_of s = try Hashtbl.find level s with Not_found -> 0 in
  let add_node_in region =
    let pool_size = List.length region.pool in
    let k_wish =
      match Util.Rng.int rng 10 with
      | 0 | 1 | 2 | 3 | 4 -> 2
      | 5 | 6 | 7 -> 3
      | 8 -> 4
      | _ -> 5
    in
    let k_pool = max 1 (min k_wish pool_size) in
    let fanins = ref [] in
    for _ = 1 to k_pool do
      let s, rest = draw_from_pool rng p.p_chain region.pool in
      region.pool <- rest;
      fanins := s :: !fanins
    done;
    let members = Array.of_list region.members in
    let top_up target =
      let tries = ref 0 in
      while List.length !fanins < target && !tries < 10 do
        incr tries;
        let s = Util.Rng.pick rng members in
        if not (List.mem s !fanins) then fanins := s :: !fanins
      done
    in
    top_up k_wish;
    if Util.Rng.float rng < p.p_reuse then top_up (List.length !fanins + 1);
    let fanins = Array.of_list !fanins in
    let k = Array.length fanins in
    (* A node that extends the region's deepest path gets a function with
       no early-stabilizing primes, so the deepest paths stay genuinely
       sensitizable (floating delay tracks structural delay). *)
    let fanin_level =
      Array.fold_left (fun acc f -> max acc (level_of f)) 0 fanins
    in
    let spine = fanin_level >= region.max_level in
    let func =
      if k = 1 then Logic2.Cover.of_cubes 1 [ Logic2.Cube.make 1 [ (0, false) ] ]
      else if spine then spine_func rng k
      else random_func rng k
    in
    let s = Network.add_node net (next_name ()) ~fanins ~func in
    Hashtbl.replace level s (fanin_level + 1);
    region.max_level <- max region.max_level (fanin_level + 1);
    region.pool <- s :: region.pool;
    region.members <- s :: region.members
  in
  (* Phase 1: spread the node budget evenly over blocks (round-robin), so
     block depths stay comparable and many structural paths land within
     10 % of the critical path delay — the regime the paper's benchmarks
     exhibit and the SPCF experiments need. *)
  let merge_budget = 2 * (nblocks - 1) in
  let phase1_budget = max 0 (p.n_nodes - merge_budget) in
  for i = 0 to phase1_budget - 1 do
    add_node_in regions.(i mod nblocks)
  done;
  (* Phase 2: merge adjacent regions pairwise (in PI order) with 2-input
     combine nodes over one open signal from each side — sibling support
     intervals never interleave. *)
  let combine a b =
    let sa, rest_a = draw_from_pool rng 0.5 a.pool in
    let sb, rest_b = draw_from_pool rng 0.5 b.pool in
    let func =
      match Util.Rng.int rng 6 with
      | 0 | 1 | 2 -> xor2
      | 3 -> product rng 2
      | _ -> full_or rng 2
    in
    let s = Network.add_node net (next_name ()) ~fanins:[| sa; sb |] ~func in
    Hashtbl.replace level s (1 + max (level_of sa) (level_of sb));
    {
      pool = s :: (rest_a @ rest_b);
      members = s :: (a.members @ b.members);
      max_level = 1 + max a.max_level b.max_level;
    }
  in
  let rec merge_round regs =
    match regs with
    | [] | [ _ ] -> regs
    | a :: b :: rest -> combine a b :: merge_round rest
  in
  let rec merge_all regs =
    match regs with
    | [] -> invalid_arg "Generator.generate: no regions"
    | [ r ] -> r
    | _ -> merge_all (merge_round regs)
  in
  let final = merge_all (Array.to_list regions) in
  (* Phase 3: deliberate near-critical chains. Real timing-closed logic
     has MANY sensitizable paths just under the critical path delay; the
     random phases alone leave large false-path slack (their structural
     critical paths thread through conditional gates whose sensitization
     conditions conflict). Each chain starts at a deep signal of one
     block and stacks XOR / MAJ / MUX steps — functions whose primes all
     contain the on-path input, so the chain is late whenever its taps
     allow — with taps drawn from the same block (narrow support keeps
     the per-output SPCF BDDs small). Chain lengths are calibrated with
     an intermediate timing analysis so the longest chain defines the
     critical path delay and a controlled band of chains lands within
     10 % of it. *)
  let mapped0, signal_map = Mapper.map_with_signals net in
  let sta0 = Sta.analyze ~model:Sta.Library mapped0 in
  let arrival0 s = Sta.arrival sta0 signal_map.(s) in
  let delta0 =
    List.fold_left (fun acc s -> Float.max acc (arrival0 s)) 0.01 final.members
  in
  let delta_target = delta0 *. 1.18 in
  let debug = Obs.debug () in
  if debug then
    Printf.eprintf "[gen %s] delta0=%.2f target=%.2f\n%!" p.name delta0 delta_target;
  (* Scale the number of deliberate near-critical chains with both the
     output count (the paper sees ~20% critical POs) and the circuit
     size (small blocks must not be dominated by chain overhead). *)
  let n_chains =
    max 2 (min (min 32 ((p.n_po / 6) + 1)) ((p.n_nodes / 10) + 1))
  in
  let members_by_block =
    (* Phase-3 taps must stay inside one block for narrow support; block
       membership was fixed before merging. *)
    Array.map (fun r -> Array.of_list r.members) regions
  in
  let chain_arrival = Hashtbl.create 64 in
  let arrival_of s =
    match Hashtbl.find_opt chain_arrival s with
    | Some a -> a
    | None -> arrival0 s
  in
  let chain_ends = ref [] in
  for i = 0 to n_chains - 1 do
    let block = members_by_block.(i mod nblocks) in
    (* Aim this chain at a fraction of the final delay: the first few
       chains sit within 10 % of it (critical), later ones fall below. *)
    let goal =
      delta_target *. (1. -. (0.25 *. float_of_int i /. float_of_int (max 1 (n_chains - 1))))
    in
    (* Start at a primary input: any structural depth at the chain's
       start carries false-path slack (its floating arrival can be far
       below its structural arrival), which would eat into the narrow
       10 % criticality band and could leave the chain's SPCF empty. *)
    let start =
      let pis = List.filter (Network.is_input net) (Array.to_list block) in
      match pis with
      | [] -> block.(0)
      | l -> Util.Rng.pick rng (Array.of_list l)
    in
    (* Taps likewise come from the shallow part of the block, so their
       false-path slack cannot shorten the chain's floating delay. They
       are additionally capped below ~half the target depth: a prediction
       circuit must recompute tap values on SPCF patterns, so deep tap
       cones would put a floor under the masking circuit's delay. *)
    let tap_cap = 0.3 *. delta_target in
    let candidates_below limit =
      let limit = Float.min limit tap_cap in
      Array.of_list (List.filter (fun s -> arrival_of s <= limit) (Array.to_list block))
    in
    let tap_below limit =
      let candidates = candidates_below limit in
      if Array.length candidates = 0 then block.(0)
      else Util.Rng.pick rng candidates
    in
    (* Sensitization constraints must stay jointly satisfiable:
       - MUX selects come from a pool of primary inputs (all-zero is
         always consistent);
       - MAJ steps all use one dedicated, disjoint pair of primary
         inputs ("the pair disagrees" — consistent with itself and with
         the select constraints because the pools are disjoint).
       Mixing the roles lets constraints like "p = 0 ∧ p ≠ q ∧ q = 0"
       arise, silently emptying the chain's SPCF. *)
    let block_pis =
      let l = List.filter (Network.is_input net) (Array.to_list block) in
      let a = Array.of_list l in
      Util.Rng.shuffle rng a;
      a
    in
    let maj_pair, select_pool =
      if Array.length block_pis >= 4 then
        ( Some (block_pis.(0), block_pis.(1)),
          Array.sub block_pis 2 (Array.length block_pis - 2) )
      else (None, block_pis)
    in
    let pi_tap () =
      if Array.length select_pool = 0 then block.(0)
      else Util.Rng.pick rng select_pool
    in
    let grow_chain from_signal ~goal =
      let prev = ref from_signal in
      let steps = ref 0 in
      let intermediates = ref [] in
      while arrival_of !prev < goal && !steps < 400 do
        incr steps;
        let a_prev = arrival_of !prev in
        (* MAJ steps impose "taps disagree" constraints; over a small tap
           pool those form unsatisfiable anti-equality cycles that kill
           the chain's sensitizability. Stick to XOR (constraint-free)
           until the pool is diverse, and prefer MUX (whose "select = 0"
           constraints never conflict) over MAJ. *)
        let pool_diverse = Array.length (candidates_below a_prev) >= 8 in
        let kind = if pool_diverse then Util.Rng.int rng 10 else 0 in
        let xor_step () = ([| !prev; tap_below a_prev |], xor2, 0.35) in
        (* MUX-heavy mix: each MUX step halves the sensitized fraction
           (its "select = 0" conditions never conflict), keeping the SPCF
           a sparse subset of the input space — the regime the paper's
           benchmarks live in, and the source of the don't-care space
           that lets the masking circuit simplify. *)
        let fanins, func, step_cost =
          if kind < 3 then xor_step ()
          else if kind < 9 then begin
            (* MUX with the chain on a data input and a primary-input
               select. *)
            let data = tap_below a_prev and select = pi_tap () in
            if data = select then xor_step ()
            else ([| !prev; data; select |], mux3, 0.40)
          end
          else begin
            match maj_pair with
            | Some (t1, t2) -> ([| !prev; t1; t2 |], majority3, 0.63)
            | None -> xor_step ()
          end
        in
        let s = Network.add_node net (next_name ()) ~fanins ~func in
        Hashtbl.replace chain_arrival s (a_prev +. step_cost);
        intermediates := s :: !intermediates;
        prev := s
      done;
      (!prev, !intermediates)
    in
    if debug then
      Printf.eprintf "[gen %s] chain %d goal=%.2f start=%s arr=%.2f\n%!" p.name i
        goal (Network.name_of net start) (arrival_of start);
    let chain_end, intermediates = grow_chain start ~goal in
    chain_ends := chain_end :: !chain_ends;
    (* Fork: continue from a mid-chain signal to a second, slightly
       shorter near-critical output. The shared prefix gates then have
       fanout 2 with different downstream tails — the structural source
       of the node-based SPCF over-approximation (a gate critical along
       one branch is treated as critical along both). *)
    if Util.Rng.float rng < 0.7 && intermediates <> [] then begin
      let mid =
        List.nth intermediates (Util.Rng.int rng (List.length intermediates))
      in
      let fork_goal = goal *. (0.88 +. (0.1 *. Util.Rng.float rng)) in
      if arrival_of mid < fork_goal then begin
        let fork_end, _ = grow_chain mid ~goal:fork_goal in
        if fork_end <> mid then chain_ends := fork_end :: !chain_ends
      end
    end
  done;
  (* Outputs: the chain ends (deepest first), then the open signals, then
     wires of random signals if more outputs are required. *)
  let outputs = ref (List.rev !chain_ends @ final.pool) in
  let members = Array.of_list final.members in
  let wire_count = ref 0 in
  while List.length !outputs < p.n_po do
    let src = Util.Rng.pick rng members in
    let func = Logic2.Cover.of_cubes 1 [ Logic2.Cube.make 1 [ (0, true) ] ] in
    let s =
      Network.add_node net (Printf.sprintf "w%d" !wire_count) ~fanins:[| src |] ~func
    in
    incr wire_count;
    outputs := !outputs @ [ s ]
  done;
  List.iteri
    (fun i s -> Network.mark_output net ~name:(Printf.sprintf "po%d" i) s)
    (List.filteri (fun i _ -> i < p.n_po) !outputs);
  net
