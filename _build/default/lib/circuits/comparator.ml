(* The 2-bit comparator of the paper's Fig. 2(a), gate for gate:

     y = a1·!b1 + (a0 + !b0)·(a1 + !b1)

   y is 1 iff the unsigned value a1a0 is >= b1b0. Under the paper's
   abstract delay units (inverter = 1, two-input gate = 2) its critical
   path delay is 7, the speed-paths run through !b0 and !b1 into the
   (a0+!b0)(a1+!b1) product, and the SPCF at Δ_y = 6.3 is !a1 + !a0·b1. *)

let inv_func = Logic2.Sop.parse ~vars:[| "x" |] "!x"
let or2_func = Logic2.Sop.parse ~vars:[| "x"; "y" |] "x + y"
let and2_func = Logic2.Sop.parse ~vars:[| "x"; "y" |] "x * y"

let network () =
  let net = Network.create () in
  let a0 = Network.add_input net "a0" in
  let a1 = Network.add_input net "a1" in
  let b0 = Network.add_input net "b0" in
  let b1 = Network.add_input net "b1" in
  let nb0 = Network.add_node net "nb0" ~fanins:[| b0 |] ~func:inv_func in
  let nb1 = Network.add_node net "nb1" ~fanins:[| b1 |] ~func:inv_func in
  let or1 = Network.add_node net "or1" ~fanins:[| a0; nb0 |] ~func:or2_func in
  let or2 = Network.add_node net "or2" ~fanins:[| a1; nb1 |] ~func:or2_func in
  let and1 = Network.add_node net "and1" ~fanins:[| or1; or2 |] ~func:and2_func in
  let and2 = Network.add_node net "and2" ~fanins:[| a1; nb1 |] ~func:and2_func in
  let y = Network.add_node net "y" ~fanins:[| and2; and1 |] ~func:or2_func in
  Network.mark_output net ~name:"y" y;
  net

let mapped () = Mapper.map (network ())

(* Reference facts from Sec. 4.2, used by tests and the worked example. *)
let paper_delta = 7.0
let paper_target = 6.3

(* Σ_y(Δ_y) = !a1 + !a0·b1 over inputs (a0, a1, b0, b1). *)
let paper_spcf =
  Logic2.Sop.parse ~vars:[| "a0"; "a1"; "b0"; "b1" |] "!a1 + !a0*b1"

(* ỹ = (a0 + !b0)(a1 + !b1), e = !a1 + b1 (after simplification). *)
let paper_prediction =
  Logic2.Sop.parse ~vars:[| "a0"; "a1"; "b0"; "b1" |]
    "a0*a1 + a0*!b1 + !b0*a1 + !b0*!b1"

let paper_indicator =
  Logic2.Sop.parse ~vars:[| "a0"; "a1"; "b0"; "b1" |] "!a1 + b1"
