(* Property tests aimed at the packed BDD core: random operation
   sequences replayed against a truth-table reference — once on a
   default manager and once on a 4-entry pinned computed-table, so
   every cache eviction path is exercised — plus directed adversarial
   cases for unique-table growth/rehash stability and generation-based
   cache clearing. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Truth-table reference ---------- *)

(* Functions over [nvars] variables as bitmask truth tables: bit i of
   the table is f(env_i) where env_i.(v) = (i lsr v) land 1. *)
let nvars = 5
let n_env = 1 lsl nvars
let full = (1 lsl n_env) - 1

let tt_var v =
  let r = ref 0 in
  for i = 0 to n_env - 1 do
    if (i lsr v) land 1 = 1 then r := !r lor (1 lsl i)
  done;
  !r

let tt_not f = lnot f land full
let tt_ite f g h = f land g lor (tt_not f land h)

let tt_restrict f v b =
  let r = ref 0 in
  for i = 0 to n_env - 1 do
    let j = if b then i lor (1 lsl v) else i land lnot (1 lsl v) in
    if (f lsr j) land 1 = 1 then r := !r lor (1 lsl i)
  done;
  !r

let tt_exists f v = tt_restrict f v false lor tt_restrict f v true
let popcount f = let c = ref 0 in for i = 0 to n_env - 1 do c := !c + ((f lsr i) land 1) done; !c

let envs =
  List.init n_env (fun i -> Array.init nvars (fun v -> (i lsr v) land 1 = 1))

(* ---------- Random operation sequences ---------- *)

(* Raw integer operands are interpreted modulo the current pool size at
   replay time, so any generated sequence is valid and shrinks freely. *)
type op =
  | Ite of int * int * int
  | And of int * int
  | Or of int * int
  | Xor of int * int
  | Not of int
  | Restrict of int * int * bool
  | Exists of int * int
  | Clear  (** generation-bump the computed table mid-sequence *)

let op_print = function
  | Ite (a, b, c) -> Printf.sprintf "ite %d %d %d" a b c
  | And (a, b) -> Printf.sprintf "and %d %d" a b
  | Or (a, b) -> Printf.sprintf "or %d %d" a b
  | Xor (a, b) -> Printf.sprintf "xor %d %d" a b
  | Not a -> Printf.sprintf "not %d" a
  | Restrict (a, v, b) -> Printf.sprintf "restrict %d x%d:=%b" a v b
  | Exists (a, v) -> Printf.sprintf "exists %d x%d" a v
  | Clear -> "clear-caches"

let op_gen =
  let open QCheck.Gen in
  let idx = int_bound 1000 in
  let v = int_bound (nvars - 1) in
  frequency
    [
      (3, map3 (fun a b c -> Ite (a, b, c)) idx idx idx);
      (2, map2 (fun a b -> And (a, b)) idx idx);
      (2, map2 (fun a b -> Or (a, b)) idx idx);
      (2, map2 (fun a b -> Xor (a, b)) idx idx);
      (1, map (fun a -> Not a) idx);
      (1, map3 (fun a x b -> Restrict (a, x, b)) idx v bool);
      (1, map2 (fun a x -> Exists (a, x)) idx v);
      (1, return Clear);
    ]

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_print ops))
    QCheck.Gen.(list_size (int_range 1 60) op_gen)

(* Replay [ops] on [man] and on the truth-table reference; the pool
   starts with the variables and every result is appended to it. *)
let replay man ops =
  let pool = ref [||] in
  let push b t = pool := Array.append !pool [| (b, t) |] in
  for v = 0 to nvars - 1 do
    push (Bdd.var man v) (tt_var v)
  done;
  let get i =
    let a = !pool in
    a.(i mod Array.length a)
  in
  List.iter
    (fun op ->
      match op with
      | Ite (a, b, c) ->
        let fa, ta = get a and fb, tb = get b and fc, tc = get c in
        push (Bdd.ite man fa fb fc) (tt_ite ta tb tc)
      | And (a, b) ->
        let fa, ta = get a and fb, tb = get b in
        push (Bdd.band man fa fb) (ta land tb)
      | Or (a, b) ->
        let fa, ta = get a and fb, tb = get b in
        push (Bdd.bor man fa fb) (ta lor tb)
      | Xor (a, b) ->
        let fa, ta = get a and fb, tb = get b in
        push (Bdd.bxor man fa fb) ((ta lxor tb) land full)
      | Not a ->
        let fa, ta = get a in
        push (Bdd.bnot man fa) (tt_not ta)
      | Restrict (a, v, b) ->
        let fa, ta = get a in
        push (Bdd.restrict man fa v b) (tt_restrict ta v b)
      | Exists (a, v) ->
        let fa, ta = get a in
        let vars = Array.init nvars (fun i -> i = v) in
        push (Bdd.exists man vars fa) (tt_exists ta v)
      | Clear -> Bdd.clear_caches man)
    ops;
  !pool

let agrees man (f, tt) =
  List.for_all
    (fun env ->
      let i =
        Array.to_list (Array.mapi (fun v b -> if b then 1 lsl v else 0) env)
        |> List.fold_left ( lor ) 0
      in
      Bdd.eval man f env = ((tt lsr i) land 1 = 1))
    envs
  && Extfloat.equal (Bdd.satcount man f)
       (Extfloat.of_float (float_of_int (popcount tt)))

let prop_replay_default =
  QCheck.Test.make ~name:"core: op replay vs truth tables (default cache)"
    ~count:300 arb_ops (fun ops ->
      let man = Bdd.create ~nvars () in
      Array.for_all (agrees man) (replay man ops))

(* A 4-entry computed table evicts on nearly every insert; correctness
   must not depend on what the cache remembers. *)
let prop_replay_tiny_cache =
  QCheck.Test.make ~name:"core: op replay vs truth tables (4-entry cache)"
    ~count:300 arb_ops (fun ops ->
      let man = Bdd.create ~cache_bits:2 ~nvars () in
      Array.for_all (agrees man) (replay man ops))

(* The same sequence on both managers must yield the same handles:
   hash-consed structure is independent of the computed-table size. *)
let prop_cache_size_invariance =
  QCheck.Test.make ~name:"core: handles independent of cache size" ~count:200
    arb_ops (fun ops ->
      let m1 = Bdd.create ~nvars () in
      let m2 = Bdd.create ~cache_bits:2 ~nvars () in
      let p1 = replay m1 ops and p2 = replay m2 ops in
      Array.for_all2 (fun (f1, _) (f2, _) -> f1 = f2) p1 p2)

(* ---------- Adversarial growth ---------- *)

(* x = y over two 13-bit vectors with all x's ordered before all y's:
   the canonical ROBDD must remember every x value, so it has more than
   2^13 internal nodes — well past the initial 4096-slot unique table
   (rehash triggers at 3/4 load) and the initial node-array capacity. *)
let eq_bits = 13

let build_eq man =
  let fs =
    List.init eq_bits (fun i ->
        Bdd.bxnor man (Bdd.var man i) (Bdd.var man (eq_bits + i)))
  in
  Bdd.band_list man fs

let test_growth_and_rehash () =
  let man = Bdd.create ~nvars:(2 * eq_bits) () in
  let cap0 = Bdd.unique_capacity man in
  check_int "initial capacity" 4096 cap0;
  let f = build_eq man in
  check "forced rehash" true (Bdd.unique_capacity man > cap0);
  check "forced node growth" true (Bdd.num_nodes man > 1 lsl eq_bits);
  check "satcount = 2^13" true
    (Extfloat.equal (Bdd.satcount man f) (Extfloat.pow2 eq_bits));
  (* Hash-consing stability across rehashes: rebuilding the same
     function in the same manager finds every node again. *)
  check "stable handle after rehash" true (build_eq man = f);
  (* The adaptive computed table tracked the unique table upward. *)
  check "cache grew with table" true (Bdd.cache_capacity man > 1 lsl 14)

let test_fixed_cache_never_grows () =
  let man = Bdd.create ~cache_bits:2 ~nvars:(2 * eq_bits) () in
  let f = build_eq man in
  check_int "pinned cache" 4 (Bdd.cache_capacity man);
  check "pinned-cache result correct" true
    (Extfloat.equal (Bdd.satcount man f) (Extfloat.pow2 eq_bits))

let test_clear_caches_identity () =
  let man = Bdd.create ~nvars:8 () in
  let f = Bdd.bxor man (Bdd.var man 0) (Bdd.var man 5) in
  let g = Bdd.bor man (Bdd.var man 2) (Bdd.nvar man 7) in
  let r1 = Bdd.ite man f g (Bdd.bnot man g) in
  Bdd.clear_caches man;
  let r2 = Bdd.ite man f g (Bdd.bnot man g) in
  check "same handle after clear" true (r1 = r2);
  (* Many generations: the generation counter wraps safely. *)
  for _ = 1 to 10_000 do
    Bdd.clear_caches man
  done;
  check "same handle after 10k clears" true (Bdd.ite man f g (Bdd.bnot man g) = r1)

(* Deterministic QCheck seeding (no wall-clock self-init): the state
   comes from Fuzz.Rng.qcheck_state, overridable via QCHECK_SEED. *)
let qsuite name tests =
  let rand = Fuzz.Rng.qcheck_state () in
  (name, List.map (QCheck_alcotest.to_alcotest ~rand) tests)

let () =
  Alcotest.run "bdd-core"
    [
      qsuite "replay"
        [ prop_replay_default; prop_replay_tiny_cache; prop_cache_size_invariance ];
      ( "adversarial",
        [
          Alcotest.test_case "growth and rehash" `Quick test_growth_and_rehash;
          Alcotest.test_case "fixed cache never grows" `Quick
            test_fixed_cache_never_grows;
          Alcotest.test_case "clear_caches identity" `Quick
            test_clear_caches_identity;
        ] );
    ]
