(** The named benchmarks of the paper's Tables 1–2 (synthetic stand-ins
    with the paper's I/O counts; see DESIGN.md). *)

type entry = {
  ename : string;
  params : Generator.params;
  paper_gates : int;
  table1 : bool;
}

val all : entry list
val table1_entries : entry list
val find : string -> entry
val network : entry -> Network.t
val load : string -> Network.t
val names : string list
