(* Domain-parallel SPCF computation (OCaml 5 Domains).

   The per-output SPCFs Σ_y are independent: each one is a function of
   the (immutable) mapped circuit, the delay model and the target only.
   Two execution modes cover the two manager backends:

   - Shared-manager mode (the fast path, used when the context was
     built with [~shared:true]): all workers compute directly in the
     one concurrent BDD manager and return node handles. Subgraphs
     common to several output cones — exactly the reconvergent logic
     that makes table1 circuits expensive — are interned once instead
     of once per worker, and no export/import pass exists at all.

   - Private-manager mode (the compatibility path, and the ECO
     persistence format): each worker builds a private [Ctx.t], ships
     each Σ_y back as a plain-integer postorder DAG, and the main
     domain re-imports them into the caller's manager in
     critical-output order.

   Both modes produce the same function set as the sequential
   algorithms — ROBDDs are canonical, and every consumer (satcount,
   ISOP extraction, synthesis) is a function of the BDD semantics, not
   of node numbering. [jobs = 1] (the default) bypasses all of this
   and runs the sequential algorithm unchanged, keeping single-job
   runs bit-for-bit identical to the pre-parallel code path.

   Observability composes with parallelism: each worker domain gets its
   own domain-local Obs collectors for free (Domain.DLS), exports a
   snapshot as its last act, and the main domain merges the snapshots in
   worker order after the join — so `--jobs N --stats` reports true
   parallel behaviour with per-domain attribution. *)

type algorithm = Short_path | Path_based

let parse_jobs raw =
  let s = String.trim raw in
  if s = "" then None
  else
    match int_of_string_opt s with
    | Some n when n >= 1 -> Some n
    | Some _ | None ->
      invalid_arg
        (Printf.sprintf "EMASK_JOBS: expected a positive integer, got %S" raw)

(* The default job count: EMASK_JOBS, else 1 — parallelism is opt-in so
   every seeded workflow stays on the sequential (identical) path. A
   malformed or non-positive value is a hard error: silently falling
   back to sequential would change the execution mode behind the
   user's back. *)
let default_jobs () =
  match Sys.getenv_opt "EMASK_JOBS" with
  | None -> 1
  | Some raw -> ( match parse_jobs raw with None -> 1 | Some n -> n)

(* Hardware-default job count for the CLI entry points that opt into
   parallelism (emask spcf/protect, table1/table2): EMASK_JOBS still
   wins when set, otherwise the recommended domain count capped at 8 —
   SPCF fan-out is per critical output, and beyond a handful of domains
   the stragglers dominate before memory bandwidth does. *)
let auto_jobs ?(cap = 8) () =
  match Sys.getenv_opt "EMASK_JOBS" with
  | None -> max 1 (min cap (Domain.recommended_domain_count ()))
  | Some raw -> (
    match parse_jobs raw with
    | None -> max 1 (min cap (Domain.recommended_domain_count ()))
    | Some n -> n)

(* --- cross-manager BDD transport ---------------------------------------

   A BDD is exported as a postorder DAG over plain integers: ids 0/1 are
   the terminals, internal node i (array index) has id i + 2, and
   children always precede parents. Import replays the array bottom-up
   with ite(var v, high, low) = the node (v, low, high), which re-canonizes
   the function inside the destination manager. *)

type dag = int array * int array * int array * int

let export man root : dag =
  if Bdd.is_terminal root then ([||], [||], [||], (root :> int))
  else begin
    let ids : (Bdd.t, int) Hashtbl.t = Hashtbl.create 256 in
    let acc = ref [] and count = ref 0 in
    (* Depth is bounded by the variable order (nvars), so plain
       recursion is safe. *)
    let rec walk n =
      if (not (Bdd.is_terminal n)) && not (Hashtbl.mem ids n) then begin
        Hashtbl.add ids n (-1);
        walk (Bdd.low_of man n);
        walk (Bdd.high_of man n);
        Hashtbl.replace ids n (!count + 2);
        incr count;
        acc := n :: !acc
      end
    in
    walk root;
    let nodes = Array.of_list (List.rev !acc) in
    let id n = if Bdd.is_terminal n then (n :> int) else Hashtbl.find ids n in
    ( Array.map (fun n -> Bdd.var_of man n) nodes,
      Array.map (fun n -> id (Bdd.low_of man n)) nodes,
      Array.map (fun n -> id (Bdd.high_of man n)) nodes,
      id root )
  end

let import man ((vars, lows, highs, root) : dag) =
  if root = 0 then Bdd.bfalse
  else if root = 1 then Bdd.btrue
  else begin
    let n = Array.length vars in
    let handle = Array.make (n + 2) Bdd.bfalse in
    handle.(1) <- Bdd.btrue;
    for i = 0 to n - 1 do
      handle.(i + 2) <-
        Bdd.ite man (Bdd.var man vars.(i)) handle.(highs.(i)) handle.(lows.(i))
    done;
    handle.(root)
  end

(* --- parallel driver ---------------------------------------------------- *)

let sequential ctx ~algorithm ~target =
  match algorithm with
  | Short_path -> Exact.short_path ctx ~target
  | Path_based -> Exact.path_based ctx ~target

(* Spawn [k] workers, join them, merge Obs snapshots in worker order,
   surface the first non-Cancelled budget error if any worker ran out,
   and hand the per-worker successes to [commit]. Each worker returns
   the sigma list of its round-robin chunk (worker j owns critical
   outputs j, j+k, ...). *)
let fanout ~k ~worker ~commit =
  let collect = Obs.on () in
  let wrapped j () =
    let res = worker j in
    (* Exporting the snapshot is the worker's last act, on both the
       success and the budget-exceeded path: partial work must still
       be attributed. *)
    (res, if collect then Some (Obs.export_snapshot ()) else None)
  in
  let domains = Array.init k (fun j -> Domain.spawn (wrapped j)) in
  let joined = Array.map Domain.join domains in
  (* Merge observability snapshots first, in worker order, so the
     registry is complete and deterministic even when a budget error
     propagates below. *)
  Array.iteri
    (fun j (_, snap) ->
      match snap with
      | Some s -> Obs.merge_snapshot ~label:(Printf.sprintf "worker %d" (j + 1)) s
      | None -> ())
    joined;
  let joined = Array.map fst joined in
  (* Every domain has joined; surface the root cause (the first
     non-Cancelled reason) if any worker ran out. *)
  let errors =
    Array.to_list joined
    |> List.filter_map (function Error r -> Some r | Ok _ -> None)
  in
  (match (List.find_opt (fun r -> r <> Budget.Cancelled) errors, errors) with
  | Some r, _ | None, r :: _ -> raise (Budget.Budget_exceeded r)
  | None, [] -> ());
  commit (Array.map (function Ok sigs -> sigs | Error _ -> assert false) joined)

(* Interleave worker results back into critical-output order: worker
   j's p-th result is critical output j + p*k. *)
let interleave ~n ~k per_domain =
  let merged = Array.make n None in
  Array.iteri
    (fun j sigs ->
      List.iteri (fun p (nm, y, sigma) -> merged.(j + (p * k)) <- Some (nm, y, sigma)) sigs)
    per_domain;
  Array.to_list merged
  |> List.map (function Some r -> r | None -> assert false)

let worker_sigmas ctx ~algorithm ~outputs ~target_units =
  match algorithm with
  | Short_path ->
    Exact.sigmas ctx ~opts:Exact.proposed_options ~outputs ~target_units
  | Path_based -> Exact.sigmas_lateness ctx ~outputs ~target_units

(* Private-manager mode: worker j builds its own context, computes its
   chunk there, and exports each Σ as a manager-independent DAG. *)
let compute_private ctx ~algorithm ~target:_ ~critical ~k ~chunk ~target_units =
  let circuit = ctx.Ctx.circuit and model = ctx.Ctx.model in
  let parent_budget = ctx.Ctx.budget in
  let worker j =
    (* Workers share the parent's cancel flag: the first one to
       exhaust its budget cancels the team, and the others abandon
       their shards at the next amortized poll. *)
    let wbudget = Budget.for_worker parent_budget in
    match
      let wctx = Ctx.create ~model ~budget:wbudget circuit in
      worker_sigmas wctx ~algorithm ~outputs:(chunk j) ~target_units
      |> List.map (fun (nm, y, sigma) -> (nm, y, export wctx.Ctx.man sigma))
    with
    | sigs -> Ok sigs
    | exception Budget.Budget_exceeded r ->
      Budget.cancel wbudget;
      Error r
  in
  fanout ~k ~worker ~commit:(fun per_domain ->
      (* Importing into the caller's manager happens only here, on the
         main domain, in critical-output order. *)
      let man = ctx.Ctx.man in
      interleave ~n:(Array.length critical) ~k per_domain
      |> List.map (fun (nm, y, dag) -> (nm, y, import man dag)))

(* Shared-manager mode: every worker computes directly in the
   caller's manager and returns node handles — no transport at all.
   The context is made read-only for workers up front (prime cache
   prewarmed); the manager itself is the concurrent backend. *)
let compute_shared ctx ~algorithm ~target:_ ~critical ~k ~chunk ~target_units =
  Ctx.prewarm_primes ctx;
  let parent_budget = ctx.Ctx.budget in
  let worker j =
    match worker_sigmas ctx ~algorithm ~outputs:(chunk j) ~target_units with
    | sigs -> Ok sigs
    | exception Budget.Budget_exceeded r ->
      (* All workers tick the one shared budget: cancelling it stops
         the team at their next poll. *)
      Budget.cancel parent_budget;
      Error r
  in
  fanout ~k ~worker ~commit:(interleave ~n:(Array.length critical) ~k)

let compute ?jobs ctx ~algorithm ~target =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  if jobs = 1 then sequential ctx ~algorithm ~target
  else begin
    let critical = Sta.critical_outputs ctx.Ctx.sta ~target in
    let n = Array.length critical in
    let k = min jobs n in
    if k <= 1 then sequential ctx ~algorithm ~target
    else begin
      let name =
        match algorithm with
        | Short_path -> "short-path-based"
        | Path_based -> "path-based"
      in
      let outputs, runtime =
        Obs.timed ("spcf." ^ name) (fun () ->
            let target_units = Ctx.units_of_target target in
            (* Round-robin assignment: worker j owns critical outputs
               j, j+k, j+2k, ... — deterministic, and it interleaves
               neighbouring (often similar-sized) cones across workers. *)
            let chunk j =
              Array.of_list
                (List.filteri (fun i _ -> i mod k = j) (Array.to_list critical))
            in
            let mode =
              if Bdd.is_shared ctx.Ctx.man then compute_shared else compute_private
            in
            mode ctx ~algorithm ~target ~critical ~k ~chunk ~target_units)
      in
      Ctx.make_result ctx ~algorithm:name ~target outputs ~runtime
    end
  end

let short_path ?jobs ctx ~target = compute ?jobs ctx ~algorithm:Short_path ~target
let path_based ?jobs ctx ~target = compute ?jobs ctx ~algorithm:Path_based ~target
