(** Budget-governed SPCF with graceful degradation.

    The paper's Table 1 orders the SPCF variants by tightness: the exact
    short-path SPCF, the path-based SPCF, and the node-based
    over-approximation of Su et al. [22]. Any over-approximation of Σ
    still yields a sound masking circuit — the indicator fires more
    often, the prediction stays correct — so when the exact computation
    exhausts its resource budget we can fall back a tier instead of
    failing:

    - tier 1 ({!Exact}): the requested algorithm, under the budget;
    - tier 2 ({!Node_fallback}): node-based SPCF in a fresh context,
      under a renewed budget (same deadline and quotas, fresh counters);
    - tier 3 ({!Always_on}): Σ_y := 1 for every critical output —
      "assume every pattern exercises a speed-path", the maximal sound
      over-approximation. This floor runs ungoverned and always
      completes (its only BDD work is building the circuit's global
      functions).

    Degradation is observable, never silent: fallbacks bump the
    [spcf.fallback.*] counters, each tier records its critical-output
    count in a per-tier histogram, and the outcome names the tier and
    every budget wall that was hit on the way down. *)

type algorithm = Short_path | Path_based | Node_based

type tier = Exact | Node_fallback | Always_on

val tier_to_string : tier -> string
(** ["exact"], ["node-based"], ["always-on"]. *)

val record_fallback : tier -> unit
(** Bump the [spcf.fallback.node_based] / [spcf.fallback.always_on]
    counter for a fallback that landed on [tier] (no-op for [Exact]).
    Exposed so [Masking.Synthesis]'s ladder shares the same counters. *)

val always_on : Ctx.t -> target:float -> Ctx.result
(** The tier-3 result: Σ_y = 1 for every critical output (algorithm
    ["always-on"]). Performs no BDD computation beyond the context's
    existing functions. *)

type outcome = {
  ctx : Ctx.t;  (** the context of the tier that completed *)
  result : Ctx.result;
  tier : tier;
  attempts : (tier * Budget.reason) list;
      (** budget walls hit by the tiers that did {e not} complete, in
          ladder order; [[]] iff [tier = Exact] *)
}

val compute :
  ?jobs:int ->
  ?model:Sta.delay_model ->
  ?spec:Budget.spec ->
  algorithm:algorithm ->
  theta:float ->
  Mapped.t ->
  outcome
(** Run the ladder. With [spec = Budget.no_limits] (the default) this
    is exactly the ungoverned computation — same context, same result,
    bit for bit. On success of any tier the context's manager budget is
    lifted, so downstream consumers (satcounts, verification) are not
    tripped by a quota the construction already survived. *)
