(** Cubes (product terms) over variables [0 .. n-1]. The contradictory
    (empty) cube is unrepresentable: operations that would produce it
    return [None]. *)

type polarity = Pos | Neg | Absent

type t

val universe : int -> t
(** The tautology cube (no literals) over [n] variables. *)

val num_vars : t -> int

val make : int -> (int * bool) list -> t
(** [make n lits] builds a cube from [(var, phase)] literals; [true] is
    the positive phase. Raises [Invalid_argument] on out-of-range or
    contradictory literals. *)

val polarity : t -> int -> polarity
val literals : t -> (int * bool) list
val num_literals : t -> int
val is_universe : t -> bool

val equal : t -> t -> bool
val hash : t -> int

val compare_by_literals : t -> t -> int
(** Orders by ascending literal count (the paper's cube-selection order),
    breaking ties structurally for determinism. *)

val covers : t -> t -> bool
(** [covers c1 c2] iff every minterm of [c2] is a minterm of [c1]. *)

val intersect : t -> t -> t option
val disjoint : t -> t -> bool

val distance : t -> t -> int
(** Number of variables on which the cubes take opposite polarities. *)

val supercube : t -> t -> t
val cofactor : t -> int -> bool -> t option
val with_literal : t -> int -> bool -> t option
val remove_var : t -> int -> t
val consensus : t -> t -> t option
val eval : t -> bool array -> bool
val support : t -> Bits.t

val minterm_log2 : t -> int
(** [minterm_log2 c] is [log2] of the number of minterms of [c]. *)

val pp : ?names:(int -> string) -> Format.formatter -> t -> unit
val to_string : ?names:(int -> string) -> t -> string
