lib/logic2/cover.mli: Bits Cube Format
