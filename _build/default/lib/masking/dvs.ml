(* Aggressive dynamic voltage scaling by masking timing errors — the
   paper's future-work item (ii), Sec. 6.

   Lowering the supply slows every gate (delay ∝ 1/v in the normalized
   alpha-power model used here) and saves dynamic energy (∝ v²). An
   unprotected circuit must keep its critical path inside the clock, so
   it cannot scale below v = 1. With the error-masking circuit in place,
   only the sub-target paths must meet the clock: the speed-paths within
   the 10 % band may fail and be masked, buying ~θ of voltage headroom
   (θ = 0.9 gives up to ~19 % dynamic-energy saving) with zero escaped
   errors. Below that, errors appear on unprotected paths — the sweep
   exposes the cliff. *)

type sample = {
  voltage : float; (* normalized supply *)
  energy : float; (* normalized dynamic energy, v² *)
  raw_error_rate : float; (* errors at the unprotected outputs *)
  masked_error_rate : float; (* errors escaping the masked outputs *)
}

let delay_factor v = 1. /. v
let energy_of v = v *. v

let sweep ?(trials = 300) ?(seed = 53)
    ?(voltages = [ 1.0; 0.95; 0.9; 0.87; 0.84; 0.8; 0.76; 0.72 ]) (m : Synthesis.t) =
  let model = m.Synthesis.options.Synthesis.delay_model in
  let combined = m.Synthesis.combined in
  let cnet = Mapped.network combined in
  let base = Sta.gate_delays model combined in
  let clock = Sta.delta (Sta.analyze ~model combined) in
  let n_in = Array.length (Network.inputs cnet) in
  let run voltage =
    let rng = Util.Rng.create seed in
    let f = delay_factor voltage in
    let delays = Array.map (fun d -> d *. f) base in
    let raw = ref 0 and masked = ref 0 in
    for _ = 1 to trials do
      let from_ = Array.init n_in (fun _ -> Util.Rng.bool rng) in
      let to_ = Array.init n_in (fun _ -> Util.Rng.bool rng) in
      let r = Tsim.simulate combined ~delays ~from_ ~to_ ~clock in
      let cap s = r.Tsim.at_clock.(s) and fin s = r.Tsim.final.(s) in
      let any_raw = ref false and any_masked = ref false in
      List.iter
        (fun (po : Synthesis.per_output) ->
          if cap po.Synthesis.y_combined <> fin po.Synthesis.y_combined then
            any_raw := true;
          if cap po.Synthesis.masked_combined <> fin po.Synthesis.masked_combined
          then any_masked := true)
        m.Synthesis.per_output;
      if !any_raw then incr raw;
      if !any_masked then incr masked
    done;
    {
      voltage;
      energy = energy_of voltage;
      raw_error_rate = float_of_int !raw /. float_of_int trials;
      masked_error_rate = float_of_int !masked /. float_of_int trials;
    }
  in
  List.map run voltages

let pp fmt s =
  Format.fprintf fmt
    "v=%.2f energy=%.3f raw-errors=%.3f masked-output-errors=%.3f" s.voltage
    s.energy s.raw_error_rate s.masked_error_rate
