(* Greedy delta-debugging over Gen.spec: try one structural reduction
   at a time, keep it iff the oracle still fails, repeat to fixpoint.
   Reductions preserve the spec invariants (fanins precede their node,
   at least one output, at least one primary input, fanin arity >= 1),
   so every intermediate candidate is a well-formed netlist. *)

open Gen

let remove_idx a i =
  Array.init (Array.length a - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

(* Drop output [i] (never the last one). *)
let drop_output (spec : spec) i =
  if Array.length spec.outputs <= 1 then None
  else Some { spec with outputs = remove_idx spec.outputs i }

(* Delete node [i]; references to it are rewired to its first fanin
   (or primary input 0 — specs always have one), and every later
   signal id shifts down. *)
let drop_node (spec : spec) i =
  let sid = spec.n_pi + i in
  let repl =
    if Array.length spec.nodes.(i).fanins > 0 then spec.nodes.(i).fanins.(0) else 0
  in
  let remap s = if s = sid then repl else if s > sid then s - 1 else s in
  let nodes =
    Array.init
      (Array.length spec.nodes - 1)
      (fun j ->
        let src = if j < i then spec.nodes.(j) else spec.nodes.(j + 1) in
        { src with fanins = Array.map remap src.fanins })
  in
  Some { spec with nodes; outputs = Array.map remap spec.outputs }

(* Drop cube [j] of node [i]'s cover (covers may become constant 0). *)
let drop_cube (spec : spec) i j =
  let n = spec.nodes.(i) in
  let cubes = Logic2.Cover.cubes n.func in
  if List.length cubes <= j then None
  else begin
    let remaining = List.filteri (fun t _ -> t <> j) cubes in
    let func = Logic2.Cover.of_cubes (Logic2.Cover.num_vars n.func) remaining in
    let nodes = Array.copy spec.nodes in
    nodes.(i) <- { n with func };
    Some { spec with nodes }
  end

(* Remove fanin pin [j] of node [i] (arity must stay >= 1): the cover
   loses variable [j], widening every cube that constrained it. *)
let drop_fanin (spec : spec) i j =
  let n = spec.nodes.(i) in
  let k = Array.length n.fanins in
  if k <= 1 then None
  else begin
    let fanins = remove_idx n.fanins j in
    let cubes =
      List.map
        (fun c ->
          let lits =
            List.filter_map
              (fun (v, b) -> if v = j then None else Some ((if v > j then v - 1 else v), b))
              (Logic2.Cube.literals c)
          in
          Logic2.Cube.make (k - 1) lits)
        (Logic2.Cover.cubes n.func)
    in
    let func = Logic2.Cover.of_cubes (k - 1) cubes in
    let nodes = Array.copy spec.nodes in
    nodes.(i) <- { fanins; func };
    Some { spec with nodes }
  end

(* Garbage-collect primary input [p] if nothing references it. *)
let drop_pi (spec : spec) p =
  if spec.n_pi <= 1 then None
  else begin
    let used =
      Array.exists (fun n -> Array.exists (fun f -> f = p) n.fanins) spec.nodes
      || Array.exists (fun o -> o = p) spec.outputs
    in
    if used then None
    else begin
      let remap s = if s > p then s - 1 else s in
      Some
        {
          n_pi = spec.n_pi - 1;
          nodes =
            Array.map (fun n -> { n with fanins = Array.map remap n.fanins }) spec.nodes;
          outputs = Array.map remap spec.outputs;
        }
    end
  end

(* All single-step reductions of a spec, cheapest-to-check first: the
   order matters only for speed (outputs and whole gates first shed
   the most logic per accepted step). *)
let candidates (spec : spec) =
  let n_nodes = Array.length spec.nodes in
  let outs = List.init (Array.length spec.outputs) (fun i () -> drop_output spec i) in
  let nodes = List.init n_nodes (fun i () -> drop_node spec (n_nodes - 1 - i)) in
  let fanins =
    List.concat
      (List.init n_nodes (fun i ->
           List.init
             (Array.length spec.nodes.(i).fanins)
             (fun j () -> drop_fanin spec i j)))
  in
  let cubes =
    List.concat
      (List.init n_nodes (fun i ->
           List.init
             (Logic2.Cover.num_cubes spec.nodes.(i).func)
             (fun j () -> drop_cube spec i j)))
  in
  let pis = List.init spec.n_pi (fun p () -> drop_pi spec p) in
  outs @ nodes @ fanins @ cubes @ pis

let shrink ?(max_evals = 2000) ~fails spec =
  let evals = ref 0 in
  let keeps c =
    if !evals >= max_evals then false
    else begin
      incr evals;
      fails c
    end
  in
  let cur = ref spec in
  let progress = ref true in
  while !progress && !evals < max_evals do
    progress := false;
    let rec scan = function
      | [] -> ()
      | mk :: rest -> (
        match mk () with
        | Some c when keeps c ->
          cur := c;
          progress := true
        | _ -> scan rest)
    in
    scan (candidates !cur)
  done;
  (!cur, !evals)

(* Greedy single-removal minimization of an edit (or any) sequence:
   drop one element at a time, keep the drop iff the failure persists,
   repeat to fixpoint. Element validity after a removal is the
   predicate's concern — [fails] must answer [false] for sequences it
   cannot even apply. *)
let shrink_edits ?(max_evals = 200) ~fails edits =
  let evals = ref 0 in
  let keeps c =
    if !evals >= max_evals then false
    else begin
      incr evals;
      fails c
    end
  in
  let cur = ref edits in
  let progress = ref true in
  while !progress && !evals < max_evals do
    progress := false;
    let n = List.length !cur in
    let rec scan i =
      if i < n && not !progress then begin
        let c = List.filteri (fun j _ -> j <> i) !cur in
        if c <> [] && keeps c then begin
          cur := c;
          progress := true
        end
        else scan (i + 1)
      end
    in
    scan 0
  done;
  (!cur, !evals)
