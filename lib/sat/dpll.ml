(* A small DPLL SAT solver: unit propagation with a trail, chronological
   backtracking, first-unassigned branching. Built as an *independent*
   verification engine — equivalence and coverage results proved with
   BDDs elsewhere in the repository are cross-checked against it, so a
   bug would have to appear identically in two very different procedures
   to go unnoticed.

   Literal encoding: variable v >= 0; literal = 2v (positive) or 2v+1
   (negated). *)

type literal = int

let pos v = 2 * v
let neg v = (2 * v) + 1
let var_of l = l / 2
let is_neg l = l land 1 = 1
let negate l = l lxor 1

type result = Sat of bool array | Unsat

let c_solves = Obs.counter "sat.dpll.solves"
let c_decisions = Obs.counter "sat.dpll.decisions"
let c_propagations = Obs.counter "sat.dpll.propagations"
let c_conflicts = Obs.counter "sat.dpll.conflicts"
let c_max_level = Obs.counter "sat.dpll.max_decision_level"
let h_decision_level = Obs.histogram "sat.dpll.decision_level"

type t = {
  nvars : int;
  mutable clauses : literal array list;
}

let create nvars = { nvars; clauses = [] }

let add_clause t lits =
  (* Trivially true clauses (l ∨ ¬l) are dropped; duplicates kept. *)
  let tautological =
    List.exists (fun l -> List.mem (negate l) lits) lits
  in
  if not tautological then t.clauses <- Array.of_list lits :: t.clauses

exception Found of bool array

let solve ?(budget = Budget.unlimited) t =
  Obs.enter "sat.dpll.solve";
  Obs.incr c_solves;
  let clauses = Array.of_list t.clauses in
  (* 0 = unassigned, 1 = true, -1 = false *)
  let value = Array.make t.nvars 0 in
  let lit_value l =
    let v = value.(var_of l) in
    if v = 0 then 0 else if is_neg l then -v else v
  in
  let trail = Array.make (max 1 t.nvars) 0 in
  let trail_len = ref 0 in
  let assign l =
    value.(var_of l) <- (if is_neg l then -1 else 1);
    trail.(!trail_len) <- var_of l;
    incr trail_len
  in
  let undo_to mark =
    while !trail_len > mark do
      decr trail_len;
      value.(trail.(!trail_len)) <- 0
    done
  in
  (* Unit propagation by scanning; returns false on conflict. *)
  let rec propagate () =
    let changed = ref false in
    let ok =
      Array.for_all
        (fun clause ->
          let satisfied = ref false in
          let unassigned = ref (-1) in
          let n_unassigned = ref 0 in
          Array.iter
            (fun l ->
              match lit_value l with
              | 1 -> satisfied := true
              | 0 ->
                incr n_unassigned;
                unassigned := l
              | _ -> ())
            clause;
          if !satisfied then true
          else if !n_unassigned = 0 then begin
            Obs.incr c_conflicts;
            false
          end
          else begin
            if !n_unassigned = 1 then begin
              Obs.incr c_propagations;
              assign !unassigned;
              changed := true
            end;
            true
          end)
        clauses
    in
    if not ok then false else if !changed then propagate () else true
  in
  let rec decide level =
    let rec next v = if v >= t.nvars then -1 else if value.(v) = 0 then v else next (v + 1) in
    let v = next 0 in
    if v < 0 then raise (Found (Array.map (fun x -> x = 1) value))
    else begin
      Budget.tick budget;
      Obs.incr c_decisions;
      Obs.observe h_decision_level level;
      Obs.record_max c_max_level level;
      let mark = !trail_len in
      assign (pos v);
      if propagate () then decide (level + 1);
      undo_to mark;
      assign (neg v);
      if propagate () then decide (level + 1);
      undo_to mark
    end
  in
  (* [Fun.protect] keeps the Obs span balanced when [Budget.tick]
     aborts the search with [Budget_exceeded]. *)
  Fun.protect ~finally:Obs.leave (fun () ->
      try
        if propagate () then decide 1;
        Unsat
      with Found model -> Sat model)

let is_satisfiable ?budget t =
  match solve ?budget t with Sat _ -> true | Unsat -> false
