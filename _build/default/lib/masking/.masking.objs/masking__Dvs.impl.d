lib/masking/dvs.ml: Array Format List Mapped Network Sta Synthesis Tsim Util
