(* Wearout prediction (paper Sec. 2.1): the masking circuit's logged
   events e·(y ⊕ ỹ) reveal speed-path slowdown long before it would be
   user-visible — the masked-error rate jumps from zero as soon as aging
   pushes the speed-paths past the clock, while the outputs stay clean.

     dune exec examples/wearout.exe *)

let () =
  let net = Suite.load "i1" in
  let m = Masking.Synthesis.synthesize net in
  Format.printf "circuit i1: delta=%.3f, %d critical outputs@."
    m.Masking.Synthesis.delta
    (List.length m.Masking.Synthesis.per_output);
  Format.printf
    "aging sweep (delay degradation on speed-path gates, 600 random transitions each):@.";
  Format.printf "%-8s %-14s %-20s %-14s %-12s@." "factor" "raw errors"
    "masked-output errors" "logged e(y^yt)" "e raised";
  let samples =
    Masking.Monitor.aging_sweep ~trials:600
      ~factors:[ 0.95; 1.0; 1.02; 1.05; 1.1; 1.15; 1.2; 1.3 ]
      m
  in
  List.iter
    (fun (s : Masking.Monitor.sample) ->
      Format.printf "%-8.2f %-14.4f %-20.4f %-14.4f %-12.4f@." s.factor
        s.raw_error_rate s.masked_error_rate s.logged_rate s.indicator_rate)
    samples;
  (* The wearout signal: the logged rate switches on with the onset of
     degradation while the masked outputs stay (almost always) clean. *)
  let fresh = List.hd samples in
  let aged = List.nth samples (List.length samples - 1) in
  Format.printf "@.fresh silicon:   logged rate %.4f (no speed-path is late)@."
    fresh.Masking.Monitor.logged_rate;
  Format.printf "aged silicon:    logged rate %.4f -> offline analysis flags wearout onset@."
    aged.Masking.Monitor.logged_rate;
  Format.printf
    "masked outputs remained correct throughout: errors are masked, not just detected.@."
