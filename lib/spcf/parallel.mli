(** Domain-parallel per-output SPCF computation.

    The per-output SPCFs are independent given the (immutable) mapped
    circuit. On a shared-manager context ([Ctx.create ~shared:true])
    all workers compute node handles directly in the one concurrent
    BDD manager — common subgraphs are interned once, and no
    export/import pass exists. On a sequential-manager context each
    worker builds a private [Ctx.t], ships each Σ_y back as a
    plain-integer DAG, and the main domain re-imports them in
    critical-output order (the compatibility path, also the ECO
    persistence format). Either way results are deterministic and
    function-identical to the sequential algorithms. With [jobs = 1]
    (the default) the sequential code path runs unchanged. Obs
    collection composes with parallelism: workers record into
    domain-local collectors, and their snapshots are merged into the
    main domain's registry in worker order after the join, so
    [--jobs N --stats] reports true parallel behaviour with per-domain
    attribution. *)

type algorithm = Short_path | Path_based

val default_jobs : unit -> int
(** [EMASK_JOBS] when set to a positive integer, else 1. A set but
    malformed or non-positive value raises [Invalid_argument] — the
    execution mode is never changed silently. *)

val auto_jobs : ?cap:int -> unit -> int
(** The hardware default for CLI entry points that opt into
    parallelism: [EMASK_JOBS] when set, else
    [Domain.recommended_domain_count ()] capped at [cap] (default 8). *)

val compute : ?jobs:int -> Ctx.t -> algorithm:algorithm -> target:float -> Ctx.result
(** [jobs] defaults to [default_jobs ()]. The result — outputs in
    critical-output order, union, counts — is the same function set the
    sequential algorithm produces; only [runtime] (wall clock) and the
    internal node numbering of the shared manager may differ. *)

val short_path : ?jobs:int -> Ctx.t -> target:float -> Ctx.result
val path_based : ?jobs:int -> Ctx.t -> target:float -> Ctx.result

(**/**)

type dag = int array * int array * int array * int

val export : Bdd.man -> Bdd.t -> dag
val import : Bdd.man -> dag -> Bdd.t
(** Cross-manager BDD transport (exposed for tests): postorder DAG with
    terminal ids 0/1 and internal ids offset by 2. *)

val fanout :
  k:int ->
  worker:(int -> ('a, Budget.reason) result) ->
  commit:('a array -> 'b) ->
  'b
(** Generic domain fan-out driver (exposed for the sensitization
    analysis): spawn [k] workers, join them, merge their Obs snapshots
    in worker order, raise [Budget.Budget_exceeded] with the first
    non-Cancelled reason if any worker returned [Error], else hand the
    per-worker successes to [commit]. *)
