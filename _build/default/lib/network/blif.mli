(** Reader/writer for the combinational subset of BLIF (.model/.inputs/
    .outputs/.names/.end; single-output on-set or off-set covers). *)

exception Parse_error of string

val parse : string -> Network.t
val parse_file : string -> Network.t
val to_string : ?model:string -> Network.t -> string
val write_file : ?model:string -> string -> Network.t -> unit
