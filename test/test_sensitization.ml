(* Tests for static path-sensitization analysis: verdict correctness
   (cross-checked by the exhaustive sens-sim fuzz oracle), witness
   validity, determinism across [jobs], budget soundness, diagnostic
   integration, and the synthesis false-path pruning option. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_float name a b =
  Alcotest.(check (float 1e-9)) name a b

(* Path a -> n1 -> n2 -> y is statically false (needs b = 1 at n1 and
   b = 0 at n2); both b-paths are true.  The buffer a1 is absorbed by
   the mapper. *)
let falsepath_src =
  ".model falsepath\n.inputs a b d\n.outputs y\n.names a a1\n1 1\n\
   .names a1 b n1\n11 1\n.names n1 b n2\n10 1\n\
   .names n2 d y\n1- 1\n-1 1\n.end\n"

(* Lengthening a and c through the XOR makes every topologically
   critical path of y pass through the contradictory b / not-b pair,
   so the whole near-critical set proves false at a narrow band. *)
let allfalse_src =
  ".model allfalse\n.inputs a b c d\n.outputs y\n\
   .names a c x1\n10 1\n01 1\n.names x1 b n1\n11 1\n\
   .names n1 b n2\n10 1\n.names n2 d y\n1- 1\n-1 1\n.end\n"

let mapped src = Mapper.map (Blif.parse src)

let test_mixed_verdicts () =
  let r = Sensitization.analyze ~band:0.35 (mapped falsepath_src) in
  let nt, nf, nu = Sensitization.counts r in
  check_int "true paths" 2 nt;
  check_int "false paths" 1 nf;
  check_int "unknown paths" 0 nu;
  check "not truncated" false r.Sensitization.truncated;
  check "no all-false output" true (Sensitization.false_outputs r = []);
  (match r.Sensitization.summaries with
  | [ s ] ->
      check_int "one output, three paths" 3 s.Sensitization.num_paths;
      check_float "functional bound is the longest true path"
        s.Sensitization.topological s.Sensitization.functional
  | _ -> Alcotest.fail "expected exactly one output summary");
  (* Every witness assigns every primary input. *)
  let npis = Array.length (Network.inputs (Mapped.network (mapped falsepath_src))) in
  List.iter
    (fun c ->
      match c.Sensitization.verdict with
      | Sensitization.True w -> check_int "witness width" npis (Array.length w)
      | _ -> ())
    r.Sensitization.paths

let test_all_false_output () =
  let r = Sensitization.analyze ~band:0.2 (mapped allfalse_src) in
  let nt, nf, nu = Sensitization.counts r in
  check_int "no true paths" 0 nt;
  check_int "both critical paths false" 2 nf;
  check_int "no unknown" 0 nu;
  check "y proved false" true (Sensitization.false_outputs r = [ "y" ]);
  check "functional delta tightened" true
    (r.Sensitization.functional_delta < r.Sensitization.delta -. 1e-9);
  check_float "tightened to the band target" r.Sensitization.target
    r.Sensitization.functional_delta;
  let codes = List.map (fun d -> Analysis.Diag.code_id d.Analysis.Diag.code)
      (Analysis.Passes.sensitization r) in
  check "STA004 raised" true (List.mem "STA004" codes);
  check "MASK005 raised" true (List.mem "MASK005" codes)

let test_oracle_agreement () =
  (* The sens-sim oracle exhaustively simulates every input pattern:
     True witnesses must sensitize, False paths must be dead. *)
  match Fuzz.Oracle.find "sens-sim" with
  | None -> Alcotest.fail "sens-sim oracle missing from catalogue"
  | Some o ->
      List.iter
        (fun src ->
          let net = Blif.parse src in
          match Fuzz.Oracle.run o ~rng:(Util.Rng.create 7) net with
          | Fuzz.Oracle.Pass -> ()
          | Fuzz.Oracle.Fail m -> Alcotest.failf "sens-sim disagrees: %s" m
          | Fuzz.Oracle.Skip m -> Alcotest.failf "sens-sim skipped: %s" m)
        [ falsepath_src; allfalse_src ]

let test_jobs_deterministic () =
  let base = Sensitization.analyze ~band:0.35 ~jobs:1 (mapped allfalse_src) in
  List.iter
    (fun jobs ->
      let r = Sensitization.analyze ~band:0.35 ~jobs (mapped allfalse_src) in
      check
        (Printf.sprintf "jobs=%d report identical" jobs)
        true
        ({ r with Sensitization.jobs = 1 } = base))
    [ 2; 4; 8 ]

let test_budget_unknown () =
  (* A starved budget must degrade to Unknown, never to a wrong
     True/False verdict, and must not tighten the delay bound. *)
  let budget = Budget.create ~max_ops:1 () in
  let r = Sensitization.analyze ~band:0.35 ~budget (mapped falsepath_src) in
  let nt, nf, nu = Sensitization.counts r in
  check_int "no true under starvation" 0 nt;
  check_int "no false under starvation" 0 nf;
  check "everything unknown" true (nu >= 1);
  check "no pruning evidence" true (Sensitization.false_outputs r = []);
  check_float "bound stays topological" r.Sensitization.delta
    r.Sensitization.functional_delta

let test_band_validation () =
  check "band > 1 rejected" true
    (try
       ignore (Sensitization.analyze ~band:1.5 (mapped falsepath_src));
       false
     with Invalid_argument _ -> true)

let verify_ok name m =
  let r = Masking.Verify.check m in
  check (name ^ ": equivalent") true r.Masking.Verify.equivalent;
  check (name ^ ": coverage") true r.Masking.Verify.coverage_ok;
  check (name ^ ": prediction") true r.Masking.Verify.prediction_ok

let test_prune_certified () =
  let net = Blif.parse allfalse_src in
  let options =
    { Masking.Synthesis.default_options with theta = 0.8; prune_false_paths = true }
  in
  let m = Masking.Synthesis.synthesize ~options net in
  check "y pruned" true (m.Masking.Synthesis.pruned = [ "y" ]);
  verify_ok "pruned" m;
  (* Without the option nothing is pruned and verification still holds. *)
  let m0 =
    Masking.Synthesis.synthesize
      ~options:{ options with Masking.Synthesis.prune_false_paths = false }
      net
  in
  check "prune is opt-in" true (m0.Masking.Synthesis.pruned = []);
  verify_ok "unpruned" m0

let test_prune_preserved_on_suite () =
  (* Pruning must never break certification where plain protect
     succeeds. *)
  List.iter
    (fun name ->
      let options =
        { Masking.Synthesis.default_options with prune_false_paths = true }
      in
      let m = Masking.Synthesis.synthesize ~options (Suite.load name) in
      verify_ok name m)
    [ "i1"; "cmb"; "x2"; "C432" ]

let () =
  Alcotest.run "sensitization"
    [
      ( "verdicts",
        [
          Alcotest.test_case "mixed" `Quick test_mixed_verdicts;
          Alcotest.test_case "all-false output" `Quick test_all_false_output;
          Alcotest.test_case "oracle agreement" `Quick test_oracle_agreement;
          Alcotest.test_case "band validation" `Quick test_band_validation;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "jobs deterministic" `Quick test_jobs_deterministic;
          Alcotest.test_case "budget unknown" `Quick test_budget_unknown;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "certified" `Quick test_prune_certified;
          Alcotest.test_case "suite preserved" `Quick test_prune_preserved_on_suite;
        ] );
    ]
