(* Static path-sensitization analysis over the near-critical band.

   The STA in [lib/timing] is purely topological: a path counts as
   critical whenever its gate delays add up, whether or not any input
   pattern can propagate a transition along it. This pass classifies
   every near-critical structural path ({!Paths}) functionally:

   - the *static sensitization condition* of a path is the AND, over
     its gates, of the Boolean difference of the gate function with
     respect to the on-path signal — i.e. "the gate output depends on
     the on-path pin", which requires every side input to sit at a
     non-controlling value. Side inputs are the global functions of
     the fanin signals (BDDs over the primary inputs), so the
     condition is a function of primary inputs only;
   - a path whose condition is the zero function is statically FALSE:
     no input pattern sensitizes it, and it cannot set the circuit's
     functional delay;
   - a path whose condition is satisfiable is reported TRUE together
     with a concrete witness pattern found by the independent
     {!Dpll} engine (never by the BDD that made the claim — the two
     procedures cross-check each other);
   - a path whose classification exhausts the [lib/budget] governor
     (BDD nodes, SAT decisions, wall clock) is UNKNOWN, which every
     consumer must treat as "possibly sensitizable". Unknown is the
     sound direction: it can only make the functional delay bound
     *larger*, never smaller.

   Caveat, stated here because the synthesis consumer depends on it:
   static sensitization is itself optimistic for *floating-mode*
   delay (a statically-false path can still carry a transition under
   multi-input switching). The masking pruner therefore never relies
   on verdicts alone — it drops an output's paths only when the SPCF
   Σ_y is additionally empty (see [Masking.Synthesis]); the verdict
   layer here is documentation plus the functional-Δ bound, which is
   valid for single-input-change delay. *)

type verdict =
  | True of bool array  (** SAT witness, indexed by primary-input position *)
  | False
  | Unknown of Budget.reason

type classified = { path : Paths.path; verdict : verdict }

type summary = {
  output : string;
  signal : Network.signal;
  num_paths : int;  (** near-critical paths terminating here *)
  num_true : int;
  num_false : int;
  num_unknown : int;
  topological : float;  (** STA arrival time of the output *)
  functional : float;
      (** sound upper bound on the single-input-change functional
          delay: max length over non-[False] near-critical paths, the
          band target when all proved [False], the topological arrival
          when enumeration truncated *)
}

type report = {
  band : float;
  target : float;  (** (1 - band) * Delta *)
  delta : float;
  model : Sta.delay_model;
  truncated : bool;
  jobs : int;
  paths : classified list;  (** in {!Paths.enumerate} order *)
  summaries : summary list;  (** every primary output, declaration order *)
  functional_delta : float;  (** max over the per-output bounds *)
}

let verdict_name = function
  | True _ -> "true"
  | False -> "false"
  | Unknown _ -> "unknown"

let c_paths = Obs.counter "sens.paths"
let c_true = Obs.counter "sens.true"
let c_false = Obs.counter "sens.false"
let c_unknown = Obs.counter "sens.unknown"

(* --- SAT witness extraction -------------------------------------------- *)

(* Encode the path's static-sensitization condition into CNF over the
   fanin cone of its output and solve with the DPLL engine. Primary
   inputs take solver variables 0 .. npis-1 by input position, so a
   model projects directly onto a witness vector. Returns [None] on
   UNSAT — which the caller treats as an engine disagreement, since it
   only asks after the BDD found the condition satisfiable. *)
let witness_of_path ~budget net ~npis path =
  let sigs = path.Paths.signals in
  let po = sigs.(Array.length sigs - 1) in
  let cone = Network.cone net [ po ] in
  (* A safe variable upper bound: [encode_sop] allocates at most one
     variable per cube plus one for the OR — once for each cone gate,
     twice more (both substitutions) for each on-path gate. *)
  let est = ref (npis + 8) in
  Array.iter
    (fun s ->
      if cone.(s) then
        match Network.node_of net s with
        | Some nd -> est := !est + Logic2.Cover.num_cubes nd.Network.func + 1
        | None -> ())
    (Network.topo_order net);
  Array.iter
    (fun s ->
      match Network.node_of net s with
      | Some nd -> est := !est + (2 * (Logic2.Cover.num_cubes nd.Network.func + 1))
      | None -> ())
    sigs;
  let solver = Dpll.create !est in
  let next_var = ref npis in
  let repr = Array.make (Network.num_signals net) (Tseitin.Const false) in
  let positions = Network.input_positions net in
  Array.iter
    (fun s -> repr.(s) <- Tseitin.Lit (Dpll.pos positions.(s)))
    (Network.inputs net);
  Array.iter
    (fun s ->
      if cone.(s) then
        match Network.node_of net s with
        | None -> ()
        | Some nd ->
          let binds = Array.map (fun f -> repr.(f)) nd.Network.fanins in
          repr.(s) <- Tseitin.encode_sop solver next_var nd.Network.func binds)
    (Network.topo_order net);
  for i = 1 to Array.length sigs - 1 do
    let g = sigs.(i) and x = sigs.(i - 1) in
    match Network.node_of net g with
    | None -> ()
    | Some nd ->
      let sub c =
        Array.map
          (fun f -> if f = x then Tseitin.Const c else repr.(f))
          nd.Network.fanins
      in
      let l1 = Tseitin.encode_sop solver next_var nd.Network.func (sub true) in
      let l0 = Tseitin.encode_sop solver next_var nd.Network.func (sub false) in
      (* Require f[x:=1] XOR f[x:=0] — the gate output must depend on
         the on-path pin. *)
      (match (l1, l0) with
      | Tseitin.Const a, Tseitin.Const b ->
        if a = b then Dpll.add_clause solver [] (* statically impossible *)
      | Tseitin.Const a, Tseitin.Lit l | Tseitin.Lit l, Tseitin.Const a ->
        Dpll.add_clause solver [ (if a then Dpll.negate l else l) ]
      | Tseitin.Lit a, Tseitin.Lit b ->
        Dpll.add_clause solver [ a; b ];
        Dpll.add_clause solver [ Dpll.negate a; Dpll.negate b ])
  done;
  match Dpll.solve ~budget solver with
  | Dpll.Sat model -> Some (Array.init npis (fun i -> model.(i)))
  | Dpll.Unsat -> None

(* --- BDD classification ------------------------------------------------ *)

(* Boolean difference of gate [g]'s cover with respect to the on-path
   *signal* [x]: every pin fed by [x] is substituted together, so a
   gate wired to [x] on several pins is treated as one dependency.
   Cached per (gate, on-path signal) — neighbouring near-critical
   paths share almost all of their gates. *)
let gate_condition cache ctx g x =
  match Hashtbl.find_opt cache (g, x) with
  | Some c -> c
  | None ->
    let man = ctx.Spcf.Ctx.man and funcs = ctx.Spcf.Ctx.funcs in
    let net = Spcf.Ctx.network ctx in
    let nd =
      match Network.node_of net g with Some nd -> nd | None -> assert false
    in
    let subst c =
      Array.map (fun f -> if f = x then c else funcs.(f)) nd.Network.fanins
    in
    let f1 = Bdd.cover_with man nd.Network.func (subst Bdd.btrue) in
    let f0 = Bdd.cover_with man nd.Network.func (subst Bdd.bfalse) in
    let cond = Bdd.bxor man f1 f0 in
    Hashtbl.add cache (g, x) cond;
    cond

exception Dead

let classify_one ~cache ctx ~npis path =
  Obs.incr c_paths;
  let verdict =
    match
      let man = ctx.Spcf.Ctx.man in
      let net = Spcf.Ctx.network ctx in
      let sigs = path.Paths.signals in
      let cond = ref Bdd.btrue in
      (try
         for i = 1 to Array.length sigs - 1 do
           cond := Bdd.band man !cond (gate_condition cache ctx sigs.(i) sigs.(i - 1));
           if !cond = Bdd.bfalse then raise Dead
         done
       with Dead -> ());
      if !cond = Bdd.bfalse then False
      else begin
        (* The BDD says satisfiable: the independent DPLL engine must
           produce a witness, and the BDD must accept it. Either
           failure is an engine disagreement, not a verdict. *)
        match
          witness_of_path ~budget:ctx.Spcf.Ctx.budget net ~npis path
        with
        | Some w ->
          if not (Bdd.eval man !cond w) then
            failwith "Sensitization: SAT witness rejected by BDD condition";
          True w
        | None ->
          failwith "Sensitization: engines disagree (BDD sat, DPLL unsat)"
      end
    with
    | v -> v
    | exception Budget.Budget_exceeded r -> Unknown r
  in
  (match verdict with
  | True _ -> Obs.incr c_true
  | False -> Obs.incr c_false
  | Unknown _ -> Obs.incr c_unknown);
  { path; verdict }

(* --- report assembly --------------------------------------------------- *)

let summarize sta net ~target ~truncated classified =
  Array.to_list (Network.outputs net)
  |> List.map (fun (name, s) ->
         let mine = List.filter (fun c -> c.path.Paths.output = name) classified in
         let count p = List.length (List.filter p mine) in
         let topological = Sta.arrival sta s in
         let functional =
           if truncated || mine = [] then topological
           else
             List.fold_left
               (fun acc c ->
                 match c.verdict with
                 | False -> acc
                 | True _ | Unknown _ -> Float.max acc c.path.Paths.length)
               target mine
         in
         {
           output = name;
           signal = s;
           num_paths = List.length mine;
           num_true = count (fun c -> match c.verdict with True _ -> true | _ -> false);
           num_false = count (fun c -> c.verdict = False);
           num_unknown =
             count (fun c -> match c.verdict with Unknown _ -> true | _ -> false);
           topological;
           functional;
         })

let make_report ctx ~jobs enum classified =
  let sta = ctx.Spcf.Ctx.sta in
  let net = Spcf.Ctx.network ctx in
  let summaries =
    summarize sta net ~target:enum.Paths.target ~truncated:enum.Paths.truncated
      classified
  in
  {
    band = enum.Paths.band;
    target = enum.Paths.target;
    delta = Sta.delta sta;
    model = ctx.Spcf.Ctx.model;
    truncated = enum.Paths.truncated;
    jobs;
    paths = classified;
    summaries;
    functional_delta =
      List.fold_left (fun acc s -> Float.max acc s.functional) 0. summaries;
  }

(* Classify an explicit path subset sequentially with one shared
   Boolean-difference cache — the incremental/ECO integration point:
   [Eco.recompute] reuses verdicts for paths whose cone is clean and
   hands only the stale remainder here. *)
let classify_paths ctx paths =
  let net = Spcf.Ctx.network ctx in
  let npis = Array.length (Network.inputs net) in
  let cache = Hashtbl.create 64 in
  List.map (classify_one ~cache ctx ~npis) paths

let assemble = make_report

let analyze_ctx ?(band = 0.1) ?(max_paths = 4096) ?jobs ctx =
  let jobs = match jobs with Some j -> max 1 j | None -> 1 in
  Obs.enter "sens.analyze";
  Fun.protect ~finally:Obs.leave (fun () ->
      let enum = Paths.enumerate ~band ~max_paths ctx.Spcf.Ctx.sta in
      let net = Spcf.Ctx.network ctx in
      let npis = Array.length (Network.inputs net) in
      let parr = Array.of_list enum.Paths.paths in
      let n = Array.length parr in
      (* A sequential manager is not safe to grow from worker domains:
         parallel classification requires a shared-manager context. *)
      let k = if Bdd.is_shared ctx.Spcf.Ctx.man then min jobs (max n 1) else 1 in
      let classified =
        if k <= 1 then begin
          let cache = Hashtbl.create 64 in
          Array.to_list (Array.map (classify_one ~cache ctx ~npis) parr)
        end
        else begin
          Spcf.Ctx.prewarm_primes ctx;
          (* Round-robin chunks, results re-interleaved into path
             order: verdicts are a per-path pure function, so the
             merged list is byte-identical for every [jobs]. Workers
             never return [Error] — budget exhaustion is a per-path
             [Unknown] verdict, not a team failure. *)
          let worker j =
            let cache = Hashtbl.create 64 in
            let out = ref [] and i = ref j in
            while !i < n do
              out := classify_one ~cache ctx ~npis parr.(!i) :: !out;
              i := !i + k
            done;
            Ok (List.rev !out)
          in
          Spcf.Parallel.fanout ~k ~worker ~commit:(fun per_domain ->
              let merged = Array.make n None in
              Array.iteri
                (fun j lst ->
                  List.iteri (fun p r -> merged.(j + (p * k)) <- Some r) lst)
                per_domain;
              Array.to_list merged
              |> List.map (function Some r -> r | None -> assert false))
        end
      in
      make_report ctx ~jobs enum classified)

let analyze ?model ?(band = 0.1) ?(max_paths = 4096) ?jobs ?budget circuit =
  let jobs = match jobs with Some j -> max 1 j | None -> 1 in
  match Spcf.Ctx.create ?model ?budget ~shared:(jobs > 1) circuit with
  | ctx -> analyze_ctx ~band ~max_paths ~jobs ctx
  | exception Budget.Budget_exceeded r ->
    (* The budget died while the context built the circuit's BDDs:
       no verdict can be computed, but the topological enumeration is
       cheap and every path is soundly [Unknown]. *)
    let sta = Sta.analyze ?model circuit in
    let net = Mapped.network circuit in
    let enum = Paths.enumerate ~band ~max_paths sta in
    let classified =
      List.map
        (fun path ->
          Obs.incr c_paths;
          Obs.incr c_unknown;
          { path; verdict = Unknown r })
        enum.Paths.paths
    in
    let summaries =
      summarize sta net ~target:enum.Paths.target ~truncated:true classified
    in
    {
      band = enum.Paths.band;
      target = enum.Paths.target;
      delta = Sta.delta sta;
      model = Sta.model sta;
      truncated = enum.Paths.truncated;
      jobs;
      paths = classified;
      summaries;
      functional_delta =
        List.fold_left (fun acc s -> Float.max acc s.functional) 0. summaries;
    }

(* --- consumers' view --------------------------------------------------- *)

let false_outputs report =
  if report.truncated then []
  else
    List.filter_map
      (fun s ->
        if s.num_paths > 0 && s.num_false = s.num_paths then Some s.output
        else None)
      report.summaries

let counts report =
  List.fold_left
    (fun (t, f, u) c ->
      match c.verdict with
      | True _ -> (t + 1, f, u)
      | False -> (t, f + 1, u)
      | Unknown _ -> (t, f, u + 1))
    (0, 0, 0) report.paths
