(** The 2-bit comparator of the paper's Fig. 2, with the reference SPCF,
    prediction and indicator functions from Sec. 4.2. *)

val network : unit -> Network.t
val mapped : unit -> Mapped.t

val paper_delta : float
(** Critical path delay (7 abstract units: INV = 1, 2-input gate = 2). *)

val paper_target : float
(** Δ_y = 6.3 — speed-paths within 10 % of Δ. *)

val paper_spcf : Logic2.Cover.t
(** Σ_y = !a1 + !a0·b1 over inputs (a0, a1, b0, b1). *)

val paper_prediction : Logic2.Cover.t
(** ỹ = (a0 + !b0)(a1 + !b1), expanded to SOP. *)

val paper_indicator : Logic2.Cover.t
(** e = !a1 + b1 (after the paper's simplification step). *)
