(** Switching-activity dynamic-power estimation for mapped circuits. *)

type report = {
  total : float;
  per_signal : float array;
  activity : float array;
}

val estimate : ?rounds:int -> ?seed:int -> Mapped.t -> report
val total : ?rounds:int -> ?seed:int -> Mapped.t -> float
