lib/network/netopt.mli: Network
