(* Tier-1 coverage for the fuzzing subsystem: RNG reproducibility, the
   specimen generator/mutator, the greedy shrinker, the oracle
   catalogue on a fixed-seed corpus, the Spcf.Parallel determinism
   property, and the Generator edge cases the fuzzer uncovered (pinned
   against committed fixtures). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Fuzz.Rng ---------- *)

(* child i is a pure function of (root seed, i): consuming the parent
   stream must not perturb any child, and the same (seed, i) always
   yields the same stream. *)
let test_rng_child_pure () =
  let draws t = Array.init 16 (fun _ -> Fuzz.Rng.int t 1_000_000) in
  let fresh = Fuzz.Rng.create ~seed:1234 in
  let expected = Array.init 4 (fun i -> draws (Fuzz.Rng.child fresh i)) in
  let consumed = Fuzz.Rng.create ~seed:1234 in
  for _ = 1 to 100 do
    ignore (Fuzz.Rng.int consumed 7)
  done;
  for i = 0 to 3 do
    check "child stream unaffected by parent consumption" true
      (draws (Fuzz.Rng.child consumed i) = expected.(i))
  done;
  check "distinct children have distinct streams" false (expected.(0) = expected.(1));
  check_int "seed is preserved" 1234 (Fuzz.Rng.seed (Fuzz.Rng.child fresh 3))

let test_rng_determinism () =
  let net_of seed i =
    let rng = Fuzz.Rng.child (Fuzz.Rng.create ~seed) i in
    Blif.to_string (Fuzz.Gen.network (Fuzz.Gen.generate rng))
  in
  check "same (seed, index) replays the same specimen" true (net_of 7 5 = net_of 7 5);
  check "different indices differ" false (net_of 7 5 = net_of 7 6)

(* ---------- Fuzz.Gen ---------- *)

let spec_ok (s : Fuzz.Gen.spec) =
  s.Fuzz.Gen.n_pi >= 1
  && Array.length s.Fuzz.Gen.outputs >= 1
  && Array.for_all
       (fun o -> o >= 0 && o < s.Fuzz.Gen.n_pi + Array.length s.Fuzz.Gen.nodes)
       s.Fuzz.Gen.outputs

let test_gen_valid () =
  let root = Fuzz.Rng.create ~seed:99 in
  for i = 0 to 49 do
    let rng = Fuzz.Rng.child root i in
    let spec = Fuzz.Gen.generate rng in
    check "spec invariants hold" true (spec_ok spec);
    let net = Fuzz.Gen.network spec in
    check "lowered network has outputs" true (Array.length (Network.outputs net) >= 1);
    (* The lowering must produce an evaluable network. *)
    let env = Array.make (Array.length (Network.inputs net)) false in
    ignore (Network.eval net env)
  done

let test_mutate_valid () =
  let root = Fuzz.Rng.create ~seed:5 in
  let spec = ref (Fuzz.Gen.generate (Fuzz.Rng.child root 0)) in
  for i = 1 to 60 do
    spec := Fuzz.Gen.mutate (Fuzz.Rng.child root i) !spec;
    check "mutated spec invariants hold" true (spec_ok !spec);
    ignore (Fuzz.Gen.network !spec)
  done

(* ---------- Fuzz.Shrink ---------- *)

(* Synthetic monotone predicates with a known minimal form: the greedy
   shrinker must reach it exactly and never return a passing spec. *)
let big_spec () =
  let rng = Fuzz.Rng.create ~seed:4242 in
  let rec grow spec n = if n = 0 then spec else grow (Fuzz.Gen.mutate rng spec) (n - 1) in
  grow (Fuzz.Gen.generate rng) 10

let test_shrink_gate_count () =
  let spec = big_spec () in
  let fails s = Fuzz.Gen.num_gates s >= 3 in
  Alcotest.(check bool) "input fails" true (fails spec);
  let minimal, evals = Fuzz.Shrink.shrink ~fails spec in
  check_int "shrunk to exactly 3 gates" 3 (Fuzz.Gen.num_gates minimal);
  check "minimal spec still fails" true (fails minimal);
  check "eval budget respected" true (evals <= 2000)

let test_shrink_output_count () =
  let spec = big_spec () in
  let fails s = Array.length s.Fuzz.Gen.outputs >= 2 in
  let spec =
    if fails spec then spec
    else { spec with Fuzz.Gen.outputs = Array.append spec.Fuzz.Gen.outputs [| 0 |] }
  in
  let minimal, _ = Fuzz.Shrink.shrink ~fails spec in
  check_int "shrunk to exactly 2 outputs" 2 (Array.length minimal.Fuzz.Gen.outputs);
  check_int "no gates survive an output-only predicate" 0 (Fuzz.Gen.num_gates minimal)

let test_shrink_budget () =
  let spec = big_spec () in
  let evals_seen = ref 0 in
  let fails _ =
    incr evals_seen;
    true
  in
  let _, evals = Fuzz.Shrink.shrink ~max_evals:25 ~fails spec in
  check "max_evals caps predicate calls" true (evals <= 25)

(* ---------- Fuzz.Oracle catalogue ---------- *)

let test_oracle_catalogue () =
  let names = Fuzz.Oracle.names in
  check_int "eight oracles" 8 (List.length names);
  check "names are unique" true
    (List.length (List.sort_uniq compare names) = List.length names);
  List.iter
    (fun n ->
      match Fuzz.Oracle.find n with
      | Some o -> check ("find " ^ n) true (o.Fuzz.Oracle.name = n)
      | None -> Alcotest.failf "oracle %s not found by name" n)
    names;
  check "unknown name yields None" true (Fuzz.Oracle.find "no-such-oracle" = None)

let test_oracle_run_catches () =
  let boom =
    {
      Fuzz.Oracle.name = "boom";
      describe = "always raises";
      check = (fun ~rng:_ ~budget:_ _ -> failwith "kaboom");
    }
  in
  let net = Fuzz.Gen.network (Fuzz.Gen.generate (Fuzz.Rng.create ~seed:1)) in
  match Fuzz.Oracle.run boom ~rng:(Util.Rng.create 1) net with
  | Fuzz.Oracle.Fail msg -> check "exception message captured" true (msg <> "")
  | _ -> Alcotest.fail "escaping exception must convert to Fail"

(* The acceptance gate: a fixed-seed corpus through every oracle with
   shrinking enabled must come back clean. Kept small enough for tier-1
   (the CI fuzz-smoke job runs the larger budget). *)
let test_fixed_seed_corpus () =
  let summary =
    Fuzz.Driver.run ~log:(fun _ -> ())
      { Fuzz.Driver.default_config with seed = 42; count = 40 }
  in
  check_int "all samples ran" 40 summary.Fuzz.Driver.samples;
  check "oracles actually executed" true (summary.Fuzz.Driver.checks >= 40 * 6);
  (match summary.Fuzz.Driver.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "oracle %s failed at seed 42 index %d: %s" f.Fuzz.Driver.oracle
      f.Fuzz.Driver.index f.Fuzz.Driver.message);
  check "elapsed is sane" true (summary.Fuzz.Driver.elapsed >= 0.)

let test_repro_blif_parses () =
  let spec = Fuzz.Gen.generate (Fuzz.Rng.create ~seed:77) in
  let text =
    Fuzz.Driver.repro_blif ~oracle:"spcf-equal" ~seed:77 ~index:0
      ~message:"synthetic repro header" spec
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  check "header names the oracle" true
    (String.length text > 0 && text.[0] = '#' && contains text "spcf-equal");
  (* The header pins the environment knobs the failure was found under;
     with none of them set, every knob reads "unset". *)
  check "header records the environment" true (contains text "# env: EMASK_JOBS=");
  List.iter
    (fun v -> check (v ^ " pinned in header") true (contains text v))
    [
      "EMASK_JOBS"; "EMASK_BUDGET_TIMEOUT"; "EMASK_BUDGET_MAX_NODES";
      "EMASK_BUDGET_MAX_OPS"; "EMASK_OBS";
    ];
  let reparsed = Blif.parse text in
  check "repro text parses back to an equivalent network" true
    (Network.equivalent (Fuzz.Gen.network spec) reparsed)

(* ---------- Spcf.Parallel determinism (satellite) ---------- *)

(* jobs ∈ {1,2,4,8} must produce byte-identical exported SPCF DAGs on
   every specimen: the parallel driver re-imports worker results in
   critical-output order, so the final functions — and their postorder
   export — cannot depend on the worker count. *)
let test_parallel_determinism () =
  let root = Fuzz.Rng.create ~seed:2024 in
  let circuits = 100 in
  for i = 0 to circuits - 1 do
    let spec = Fuzz.Gen.generate (Fuzz.Rng.child root i) in
    let net = Fuzz.Gen.network spec in
    let ctx = Spcf.Ctx.create (Mapper.map net) in
    let man = ctx.Spcf.Ctx.man in
    let target = Spcf.Ctx.target_of_theta ctx 0.9 in
    let dags jobs =
      let r = Spcf.Parallel.short_path ~jobs ctx ~target in
      List.map
        (fun (name, _, sigma) -> (name, Spcf.Parallel.export man sigma))
        r.Spcf.Ctx.outputs
    in
    let reference = dags 1 in
    List.iter
      (fun jobs ->
        if dags jobs <> reference then
          Alcotest.failf "circuit %d: jobs=%d exported DAGs differ from jobs=1" i jobs)
      [ 2; 4; 8 ]
  done

(* Clearing the BDD operation caches between per-output computations is
   semantically invisible: caches only memoize, they never define. *)
let test_clear_caches_stable () =
  let root = Fuzz.Rng.create ~seed:31337 in
  for i = 0 to 19 do
    let net = Fuzz.Gen.network (Fuzz.Gen.generate (Fuzz.Rng.child root i)) in
    let ctx = Spcf.Ctx.create (Mapper.map net) in
    let man = ctx.Spcf.Ctx.man in
    let target = Spcf.Ctx.target_of_theta ctx 0.9 in
    let target_units = Spcf.Ctx.units_of_target target in
    let outs = Sta.critical_outputs ctx.Spcf.Ctx.sta ~target in
    let batch =
      Spcf.Exact.sigmas ctx ~opts:Spcf.Exact.proposed_options ~outputs:outs
        ~target_units
    in
    let interrupted =
      Array.to_list outs
      |> List.concat_map (fun out ->
             Bdd.clear_caches man;
             Spcf.Exact.sigmas ctx ~opts:Spcf.Exact.proposed_options
               ~outputs:[| out |] ~target_units)
    in
    List.iter2
      (fun (n1, _, s1) (n2, _, s2) ->
        if n1 <> n2 || s1 <> s2 then
          Alcotest.failf "circuit %d: clear_caches changed SPCF of %s" i n1)
      batch interrupted
  done

(* ---------- Generator edge cases (satellite) ---------- *)

let test_generator_rejects () =
  let expect_invalid label p =
    match ignore (Generator.generate p) with
    | () -> Alcotest.failf "%s: expected Invalid_argument" label
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "n_pi = 0" { Generator.default_params with name = "z"; n_pi = 0 };
  expect_invalid "n_pi < 0" { Generator.default_params with name = "z"; n_pi = -3 };
  expect_invalid "n_po < 0" { Generator.default_params with name = "z"; n_po = -1 };
  expect_invalid "max_support = 0"
    { Generator.default_params with name = "z"; max_support = 0 }

let test_generator_edge_shapes () =
  (* More outputs than the logic can supply: the surplus becomes wire
     copies, and the count is still exactly n_po. *)
  let wide =
    Generator.generate
      { Generator.default_params with name = "w"; n_pi = 2; n_po = 9; n_nodes = 3 }
  in
  check_int "n_po honored when it exceeds reachable logic" 9
    (Array.length (Network.outputs wide));
  (* Zero (or negative) gate budget yields the minimal skeleton, still
     with the requested interface. *)
  let empty =
    Generator.generate { Generator.default_params with name = "e"; n_nodes = 0; n_po = 2 }
  in
  check_int "zero-gate params keep the requested outputs" 2
    (Array.length (Network.outputs empty));
  check "zero-gate params still synthesize a skeleton" true (Network.num_nodes empty > 0);
  let neg =
    Generator.generate { Generator.default_params with name = "n"; n_nodes = -5; n_po = 1 }
  in
  check_int "negative gate budget behaves like zero" 1 (Array.length (Network.outputs neg));
  (* n_po = 0 is legal: a network with no observed outputs. *)
  let blind =
    Generator.generate { Generator.default_params with name = "b"; n_po = 0; n_nodes = 4 }
  in
  check_int "n_po = 0 yields no outputs" 0 (Array.length (Network.outputs blind))

(* The committed fixtures pin the exact netlists the edge parameters
   produce; any drift in the generator shows up as a byte diff. *)
let fixture_text name =
  let candidates = [ Filename.concat "fixtures" name; Filename.concat "test/fixtures" name ] in
  match List.find_opt Sys.file_exists candidates with
  | Some path ->
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  | None -> Alcotest.failf "fixture %s not found" name

let test_generator_fixtures () =
  let pin fixture p =
    let expected = fixture_text (fixture ^ ".blif") in
    let got = Blif.to_string ~model:fixture (Generator.generate p) in
    if got <> expected then
      Alcotest.failf "generator drifted from fixture %s.blif" fixture
  in
  pin "gen_edge_npo"
    { Generator.default_params with name = "gen_edge_npo"; n_pi = 2; n_po = 9; n_nodes = 3 };
  pin "gen_edge_zero_gates"
    { Generator.default_params with name = "gen_edge_zero_gates"; n_nodes = 0; n_po = 2 };
  pin "gen_edge_one_pi"
    {
      Generator.default_params with
      name = "gen_edge_one_pi";
      n_pi = 1;
      n_po = 1;
      n_nodes = 2;
    }

let () =
  Alcotest.run "fuzz"
    [
      ( "rng",
        [
          Alcotest.test_case "child-pure" `Quick test_rng_child_pure;
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
        ] );
      ( "gen",
        [
          Alcotest.test_case "valid-specimens" `Quick test_gen_valid;
          Alcotest.test_case "mutate-valid" `Quick test_mutate_valid;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "gate-count" `Quick test_shrink_gate_count;
          Alcotest.test_case "output-count" `Quick test_shrink_output_count;
          Alcotest.test_case "eval-budget" `Quick test_shrink_budget;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "catalogue" `Quick test_oracle_catalogue;
          Alcotest.test_case "run-catches-exceptions" `Quick test_oracle_run_catches;
          Alcotest.test_case "fixed-seed-corpus" `Slow test_fixed_seed_corpus;
          Alcotest.test_case "repro-blif" `Quick test_repro_blif_parses;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "jobs-determinism" `Slow test_parallel_determinism;
          Alcotest.test_case "clear-caches-stable" `Quick test_clear_caches_stable;
        ] );
      ( "generator-edges",
        [
          Alcotest.test_case "invalid-params" `Quick test_generator_rejects;
          Alcotest.test_case "edge-shapes" `Quick test_generator_edge_shapes;
          Alcotest.test_case "fixtures" `Quick test_generator_fixtures;
        ] );
    ]
