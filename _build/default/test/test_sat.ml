(* Tests for the DPLL solver and the SAT miter, including cross-checks
   of the BDD-based equivalence and masking verification results. *)

let check = Alcotest.(check bool)

let test_dpll_basic () =
  let s = Dpll.create 2 in
  Dpll.add_clause s [ Dpll.pos 0; Dpll.pos 1 ];
  Dpll.add_clause s [ Dpll.neg 0 ];
  (match Dpll.solve s with
  | Dpll.Sat m ->
    check "x0 false" false m.(0);
    check "x1 true" true m.(1)
  | Dpll.Unsat -> Alcotest.fail "satisfiable");
  let u = Dpll.create 1 in
  Dpll.add_clause u [ Dpll.pos 0 ];
  Dpll.add_clause u [ Dpll.neg 0 ];
  check "contradiction unsat" false (Dpll.is_satisfiable u)

let test_dpll_pigeonhole () =
  (* 3 pigeons, 2 holes: classic small UNSAT instance. p(i,h) = var. *)
  let v i h = (i * 2) + h in
  let s = Dpll.create 6 in
  for i = 0 to 2 do
    Dpll.add_clause s [ Dpll.pos (v i 0); Dpll.pos (v i 1) ]
  done;
  for h = 0 to 1 do
    for i = 0 to 2 do
      for j = i + 1 to 2 do
        Dpll.add_clause s [ Dpll.neg (v i h); Dpll.neg (v j h) ]
      done
    done
  done;
  check "pigeonhole unsat" false (Dpll.is_satisfiable s)

let test_dpll_random_vs_enumeration () =
  (* Random 3-CNF over 8 vars: DPLL verdict must match enumeration. *)
  let rng = Util.Rng.create 13 in
  for _ = 1 to 50 do
    let nvars = 8 in
    let nclauses = 4 + Util.Rng.int rng 30 in
    let clauses =
      List.init nclauses (fun _ ->
          List.init 3 (fun _ ->
              let v = Util.Rng.int rng nvars in
              if Util.Rng.bool rng then Dpll.pos v else Dpll.neg v))
    in
    let s = Dpll.create nvars in
    List.iter (Dpll.add_clause s) clauses;
    let brute =
      List.exists
        (fun i ->
          let env v = i lsr v land 1 = 1 in
          List.for_all
            (fun clause ->
              List.exists
                (fun l ->
                  let value = env (Dpll.var_of l) in
                  if Dpll.is_neg l then not value else value)
                clause)
            clauses)
        (List.init (1 lsl nvars) (fun i -> i))
    in
    check "dpll = enumeration" brute (Dpll.is_satisfiable s)
  done

let test_miter_agrees_with_bdd () =
  (* SAT miter and BDD equivalence agree on optimized copies. The
     benchmark circuits contain XOR chains, whose miters are Tseitin
     formulas — exponential for DPLL without clause learning — so the
     cross-check runs on the smallest circuit plus the comparator. *)
  List.iter
    (fun (name, net) ->
      let opt = Netopt.optimize net in
      check (name ^ ": sat says equivalent") true (Tseitin.equivalent net opt);
      check (name ^ ": agrees with bdd") true
        (Tseitin.equivalent net opt = Network.equivalent net opt))
    [ ("cmb", Suite.load "cmb"); ("comparator", Comparator.network ()) ]

let test_miter_detects_difference () =
  (* Build two tiny networks differing in one gate. *)
  let vars = [| "x"; "y" |] in
  let build func =
    let net = Network.create () in
    let a = Network.add_input net "a" in
    let b = Network.add_input net "b" in
    let z = Network.add_node net "z" ~fanins:[| a; b |] ~func in
    Network.mark_output net ~name:"z" z;
    net
  in
  let and_net = build (Logic2.Sop.parse ~vars "x*y") in
  let or_net = build (Logic2.Sop.parse ~vars "x + y") in
  let and_net2 = build (Logic2.Sop.parse ~vars "x*y") in
  check "same function equivalent" true (Tseitin.equivalent and_net and_net2);
  check "different function detected" false (Tseitin.equivalent and_net or_net)

let test_masking_equivalence_by_sat () =
  (* The flagship cross-check: the masked circuit is equivalent to the
     original under an engine that shares nothing with the BDD verifier. *)
  List.iter
    (fun name ->
      let net = Suite.load name in
      let m = Masking.Synthesis.synthesize net in
      let combined = Mapped.network m.Masking.Synthesis.combined in
      (* Restrict the combined circuit to the original output set. *)
      let restricted = Network.extract_cone combined (
        Array.to_list (Network.outputs net) |> List.map fst)
      in
      check (name ^ ": sat equivalence of masked circuit") true
        (Tseitin.equivalent net restricted))
    [ "cmb" ]

let () =
  Alcotest.run "sat"
    [
      ( "dpll",
        [
          Alcotest.test_case "basics" `Quick test_dpll_basic;
          Alcotest.test_case "pigeonhole" `Quick test_dpll_pigeonhole;
          Alcotest.test_case "random vs enumeration" `Quick test_dpll_random_vs_enumeration;
        ] );
      ( "miter",
        [
          Alcotest.test_case "agrees with bdd" `Slow test_miter_agrees_with_bdd;
          Alcotest.test_case "detects difference" `Quick test_miter_detects_difference;
          Alcotest.test_case "masked circuit equivalence" `Slow
            test_masking_equivalence_by_sat;
        ] );
    ]
