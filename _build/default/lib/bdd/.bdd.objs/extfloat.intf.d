lib/bdd/extfloat.mli: Format
