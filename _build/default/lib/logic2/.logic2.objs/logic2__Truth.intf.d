lib/logic2/truth.mli: Cover
