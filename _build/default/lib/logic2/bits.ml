(* Fixed-width bitsets backed by int arrays (62 usable bits per word
   would complicate indexing; we use the full 63-bit native int words). *)

type t = { width : int; words : int array }

let bits_per_word = Sys.int_size (* 63 on 64-bit systems *)

let nwords width =
  if width = 0 then 0 else ((width - 1) / bits_per_word) + 1

let create width =
  if width < 0 then invalid_arg "Bits.create: negative width";
  { width; words = Array.make (nwords width) 0 }

let width t = t.width

let copy t = { t with words = Array.copy t.words }

let check_index t i =
  if i < 0 || i >= t.width then invalid_arg "Bits: index out of bounds"

let get t i =
  check_index t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) lsr b land 1 = 1

let set t i =
  check_index t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let clear t i =
  check_index t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let assign t i v = if v then set t i else clear t i

(* Mask covering the valid bits of the last word, so bitwise complements
   never leak set bits past [width]. *)
let last_mask t =
  let rem = t.width mod bits_per_word in
  if rem = 0 then -1 else (1 lsl rem) - 1

let check_same_width a b =
  if a.width <> b.width then invalid_arg "Bits: width mismatch"

let map2 f a b =
  check_same_width a b;
  let words = Array.init (Array.length a.words) (fun i -> f a.words.(i) b.words.(i)) in
  { width = a.width; words }

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b
let symdiff a b = map2 ( lxor ) a b

let complement a =
  let words = Array.map lnot a.words in
  let n = Array.length words in
  if n > 0 then words.(n - 1) <- words.(n - 1) land last_mask a;
  { width = a.width; words }

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b = a.width = b.width && Array.for_all2 ( = ) a.words b.words

(* a ⊆ b *)
let subset a b =
  check_same_width a b;
  let n = Array.length a.words in
  let rec loop i = i >= n || (a.words.(i) land lnot b.words.(i) = 0 && loop (i + 1)) in
  loop 0

let disjoint a b =
  check_same_width a b;
  let n = Array.length a.words in
  let rec loop i = i >= n || (a.words.(i) land b.words.(i) = 0 && loop (i + 1)) in
  loop 0

let popcount_word w =
  let rec loop w acc = if w = 0 then acc else loop (w land (w - 1)) (acc + 1) in
  loop w 0

let count t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let hash t =
  Array.fold_left (fun acc w -> (acc * 0x01000193) lxor w) t.width t.words

let iter f t =
  for i = 0 to t.width - 1 do
    if get t i then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list width l =
  let t = create width in
  List.iter (fun i -> set t i) l;
  t

let first_set t =
  let n = Array.length t.words in
  let rec loop w =
    if w >= n then None
    else if t.words.(w) = 0 then loop (w + 1)
    else begin
      let word = t.words.(w) in
      let rec bit b = if word lsr b land 1 = 1 then b else bit (b + 1) in
      Some ((w * bits_per_word) + bit 0)
    end
  in
  loop 0

let pp fmt t =
  Format.fprintf fmt "{";
  let first = ref true in
  iter
    (fun i ->
      if !first then first := false else Format.fprintf fmt ",";
      Format.fprintf fmt "%d" i)
    t;
  Format.fprintf fmt "}"
