(* Variable-latency ("telescopic") units from the SPCF — the original
   application of speed-path characteristic functions (Benini et al.
   [27, 28], which the paper's Sec. 3 builds on).

   A telescopic unit clocks the combinational block at the reduced
   period θΔ. A hold function raised exactly on the speed-path
   activation patterns stretches those computations over a second
   cycle; everything else completes in one. The indicator logic e_y of
   the masking circuit is precisely such a hold function (Σ_y ⊆ e_y and
   e_y is safe), so the masking synthesis doubles as telescopic-unit
   synthesis: hold = OR of the per-output indicators.

   Expected latency under uniform inputs is 1 + P(hold); the unit beats
   the fixed-clock design whenever θ (1 + P(hold)) < 1 + θ, i.e. for any
   sparse hold function. *)

type report = {
  fast_clock : float; (* θΔ *)
  slow_clock : float; (* Δ — the fixed-clock baseline *)
  hold_probability : float; (* P(hold) under uniform inputs *)
  expected_latency_cycles : float; (* 1 + P(hold) *)
  expected_time : float; (* θΔ (1 + P(hold)) *)
  speedup_vs_fixed : float; (* Δ / expected_time *)
  hold_exact_probability : float; (* P(Σ) — the ideal (exact-SPCF) hold *)
}

let analyze (m : Synthesis.t) =
  let ctx = m.Synthesis.ctx in
  let man = ctx.Spcf.Ctx.man in
  let nvars = Bdd.nvars man in
  let space = Extfloat.pow2 nvars in
  (* hold = OR over critical outputs of e_y, evaluated on the combined
     circuit's BDDs (the e signals of the masking circuit). *)
  let cnet = Mapped.network m.Synthesis.combined in
  let cf = Synthesis.bdds_in_man man cnet in
  let hold =
    List.fold_left
      (fun acc (po : Synthesis.per_output) ->
        Bdd.bor man acc cf.(po.Synthesis.e_combined))
      Bdd.bfalse m.Synthesis.per_output
  in
  let p_of f = Extfloat.to_float (Extfloat.div (Bdd.satcount man f) space) in
  let p_hold = p_of hold in
  let p_sigma = p_of m.Synthesis.spcf.Spcf.Ctx.union in
  let fast_clock = m.Synthesis.target in
  let slow_clock = m.Synthesis.delta in
  let expected_latency = 1. +. p_hold in
  let expected_time = fast_clock *. expected_latency in
  {
    fast_clock;
    slow_clock;
    hold_probability = p_hold;
    expected_latency_cycles = expected_latency;
    expected_time;
    speedup_vs_fixed = slow_clock /. expected_time;
    hold_exact_probability = p_sigma;
  }

(* Functional validation: whenever hold is low, every critical output
   has settled by the fast clock (its floating arrival is within θΔ) —
   checked per pattern with the exact stabilization times. *)
let validate ?(samples = 2000) ?(seed = 77) (m : Synthesis.t) =
  let ctx = m.Synthesis.ctx in
  let man = ctx.Spcf.Ctx.man in
  let cnet = Mapped.network m.Synthesis.combined in
  let cf = Synthesis.bdds_in_man man cnet in
  let target_units = Spcf.Ctx.units_of_target m.Synthesis.target in
  let n_in = Bdd.nvars man in
  let rng = Util.Rng.create seed in
  let ok = ref true in
  for _ = 1 to samples do
    let pattern = Array.init n_in (fun _ -> Util.Rng.bool rng) in
    let hold =
      List.exists
        (fun (po : Synthesis.per_output) ->
          Bdd.eval man cf.(po.Synthesis.e_combined) pattern)
        m.Synthesis.per_output
    in
    if not hold then begin
      let _, arrival = Spcf.Exact.pattern_arrivals ctx pattern in
      List.iter
        (fun (po : Synthesis.per_output) ->
          match
            Array.find_opt
              (fun (n, _) -> n = po.Synthesis.name)
              (Network.outputs (Mapped.network m.Synthesis.original))
          with
          | Some (_, s) -> if arrival.(s) > target_units then ok := false
          | None -> ok := false)
        m.Synthesis.per_output
    end
  done;
  !ok

let pp fmt r =
  Format.fprintf fmt
    "telescopic: clock %.3f -> %.3f, P(hold)=%.4f (exact %.4f), E[latency]=%.3f cycles, speedup %.2fx"
    r.slow_clock r.fast_clock r.hold_probability r.hold_exact_probability
    r.expected_latency_cycles r.speedup_vs_fixed
