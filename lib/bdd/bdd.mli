(** Reduced ordered BDDs. Handles are valid only with the manager that
    created them; equal handles denote equal functions. *)

type t = private int
type man

val bfalse : t
val btrue : t

val create : ?cache_bits:int -> nvars:int -> unit -> man
(** [cache_bits] pins the ite computed-table to [2^cache_bits] entries
    and disables its growth — useful for stress-testing eviction; the
    default is an adaptive cache that tracks the unique table. *)

val create_shared : ?cache_bits:int -> nvars:int -> unit -> man
(** A manager whose unique table several domains may grow concurrently:
    handles are stable once returned, equal triples intern to equal
    handles across domains, and every operation of this interface is
    safe to call from any domain. The ite computed cache is per-domain
    ([Domain.DLS]): it starts at 2^12 entries and doubles with use up
    to [2^cache_bits] (default 2^16), so freshly spawned worker
    domains pay no up-front megabyte allocation. Single-domain use is
    supported but slower than [create]; see DESIGN.md §13. *)

val is_shared : man -> bool

val nvars : man -> int
val num_nodes : man -> int
(** Total nodes allocated in the manager (a growth diagnostic). *)

val unique_capacity : man -> int
(** Slots in the open-addressing unique table (a power of two). *)

val cache_capacity : man -> int
(** Entries in the direct-mapped ite computed-table (a power of two). *)

val set_budget : man -> Budget.t -> unit
(** Govern this manager: node allocation checks the node quota and each
    [ite] call ticks the operation/deadline/cancellation budget, raising
    [Budget.Budget_exceeded] on exhaustion. The default is
    [Budget.unlimited], under which every check is a single
    physical-equality test. *)

val budget : man -> Budget.t

val clear_caches : man -> unit
(** Drop every ite computed-table entry in O(1) (generation bump). The
    node store and unique table are untouched; results of subsequent
    operations are unchanged — only their cost. *)

val var : man -> int -> t
val nvar : man -> int -> t

val var_of : man -> t -> int
val low_of : man -> t -> t
val high_of : man -> t -> t
val is_terminal : t -> bool

val ite : man -> t -> t -> t -> t
val bnot : man -> t -> t
val band : man -> t -> t -> t
val bor : man -> t -> t -> t
val bxor : man -> t -> t -> t
val bnand : man -> t -> t -> t
val bnor : man -> t -> t -> t
val bxnor : man -> t -> t -> t
val bimply : man -> t -> t -> t
val band_list : man -> t list -> t
val bor_list : man -> t list -> t

val eval : man -> t -> bool array -> bool

val eval_vec : man -> t -> int array -> int
(** Bit-parallel evaluation: word [i] of the argument packs variable
    [i] across up to 62 patterns, one per bit; the result packs the
    function across the same patterns (one memoized DAG walk instead
    of a per-pattern descent). Bits above the patterns supplied are
    unspecified — mask the result. *)

val iter_nodes : man -> (t -> int -> t -> t -> unit) -> unit
(** [iter_nodes man f] calls [f handle var low high] for every interned
    (non-terminal) node, in handle order. On a shared manager this is
    meaningful only at quiescence (no concurrent inserts). *)

val size : man -> t -> int
(** Nodes reachable from the root, terminals included. *)

val support : man -> t -> bool array

val satcount : man -> t -> Extfloat.t
(** Number of satisfying assignments over all manager variables. *)

val any_sat : man -> t -> (int * bool) list option
val sample_sat : man -> t -> rand_float:(unit -> float) -> bool array option
(** Uniform random minterm of the function, or [None] if unsatisfiable. *)

val exists : man -> bool array -> t -> t
val forall : man -> bool array -> t -> t
val restrict : man -> t -> int -> bool -> t
val compose_vec : man -> t -> t array -> t

val cube_with : man -> Logic2.Cube.t -> t array -> t
(** The cube with its variable [v] standing for the function
    [inputs.(v)] — i.e. the cube evaluated on arbitrary signals. *)

val cover_with : man -> Logic2.Cover.t -> t array -> t
val of_cube : man -> Logic2.Cube.t -> t
val of_cover : man -> Logic2.Cover.t -> t
