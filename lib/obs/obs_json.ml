type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ---------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* Shortest readable form that still round-trips: 12 significant
       digits when they reproduce the value exactly (the common case for
       human-scale numbers), full precision otherwise — sub-microsecond
       span totals from the monotonic clock need all 17 digits. *)
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    (* Keep Float values distinguishable from Int on re-parse. *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = Stdlib.incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape");
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* Only BMP codepoints below 0x80 are emitted by our printer;
             encode anything else as UTF-8. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> fail (Printf.sprintf "bad escape %C" c));
        advance ();
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E'
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* --- registry snapshot ------------------------------------------------- *)

let rec span_json (s : Obs.span) =
  Obj
    [
      ("name", String s.Obs.sname);
      ("calls", Int s.Obs.calls);
      ("total_s", Float s.Obs.total);
      ("self_s", Float (Obs_report.self_time s));
      ("children", List (List.rev_map span_json s.Obs.children));
    ]

let hist_json (st : Obs.hist_stats) =
  Obj
    [
      ("n", Int st.Obs.hn);
      ("sum", Int st.Obs.hsum);
      ("max", Int st.Obs.hmax);
      ( "buckets",
        List
          (List.map
             (fun (lo, count) -> Obj [ ("ge", Int lo); ("count", Int count) ])
             st.Obs.hbuckets) );
    ]

let snapshot () =
  let r = Obs.root () in
  Obj
    [
      ("spans", List (List.rev_map span_json r.Obs.children));
      ( "counters",
        Obj (List.map (fun (k, v) -> (k, Int v)) (Obs.registered_counters ())) );
      ( "histograms",
        Obj
          (List.map
             (fun (k, st) -> (k, hist_json st))
             (Obs.registered_histograms ())) );
      ( "domains",
        (* Per-domain counter attribution, one entry per merged worker
           snapshot; empty for sequential runs. *)
        Obj
          (List.map
             (fun (label, counters) ->
               (label, Obj (List.map (fun (k, v) -> (k, Int v)) counters)))
             (Obs.domain_breakdown ())) );
    ]

(* Export files are replaced, never updated in place: the payload goes
   to a sibling temp file that is renamed over the target only after a
   clean close. A run that crashes or is budget-killed mid-write
   leaves the previous artifact intact (or no artifact), never a
   truncated one — truncated exports used to poison
   [emask report --against]. *)
let with_atomic_file path f =
  let tmp =
    Filename.temp_file
      ~temp_dir:(Filename.dirname path)
      (Filename.basename path ^ ".")
      ".tmp"
  in
  let oc = open_out tmp in
  match
    f oc;
    close_out oc
  with
  | () -> Sys.rename tmp path
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let write_file path =
  with_atomic_file path (fun oc ->
      to_channel oc (snapshot ());
      output_char oc '\n')
