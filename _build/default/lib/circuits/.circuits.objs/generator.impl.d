lib/circuits/generator.ml: Array Float Hashtbl List Logic2 Mapper Network Printf Sta Sys Util
