(** The differential-oracle catalogue.

    Each oracle checks one of the repository's cross-implementation
    invariants on a single specimen network and reports {!Pass},
    {!Fail} (with a message naming the disagreement), or {!Skip} (the
    specimen is outside the oracle's applicability envelope, e.g. too
    large for exhaustive comparison). Any exception escaping an
    oracle's body is converted to {!Fail} by {!run} — a crash on a
    well-formed specimen is a finding, not an infrastructure error.

    Catalogue (names are stable CLI identifiers):

    - [spcf-equal] — the paper's Table-1 invariant: the proposed
      short-path SPCF, the path-based extension, and the domain-parallel
      driver ([jobs = 2]) produce identical per-output Σ_y, and the
      node-based over-approximation contains each of them. Checked at
      θ = 0.9 and at near-zero slack (θ = 0.995).
    - [bdd-sim] — global BDDs vs bit-parallel simulation vs scalar
      evaluation, exhaustive over all input patterns (specimens are
      capped at 8 inputs, so 256 patterns).
    - [tsim-sta] — event-driven timing simulation vs STA bounds:
      settle times never exceed arrivals, sampling at the critical
      path delay captures settled values, and the settled values match
      zero-delay evaluation.
    - [pattern-arrival] — the exact floating-mode reference semantics:
      per-pattern stabilization values match evaluation, per-pattern
      arrivals respect the structural bound, and (exhaustively, when
      feasible) the floating delay equals the max per-pattern arrival.
    - [masking] — end-to-end synthesis: the masked circuit is
      equivalent, Σ ⊆ e ⊆ (ỹ = y), and the masking-contract lints
      (mux shape, non-intrusiveness, indicator soundness) are clean.
    - [blif-roundtrip] — parse → print → parse: equivalence is
      preserved and printing reaches a fixpoint after one round.
    - [eco-equal] — incremental ECO recompute vs full recompute: after
      a random edit sequence, [Eco.recompute] at jobs ∈ {1, 2, 4, 8}
      must render the same {!Eco.canonical} form (SPCF DAGs, covers,
      verdict kinds) as a from-scratch [Eco.snapshot] of the edited
      design. *)

type outcome = Pass | Fail of string | Skip of string

type t = {
  name : string;  (** stable CLI identifier *)
  describe : string;  (** one-line catalogue entry *)
  check : rng:Util.Rng.t -> budget:Budget.t -> Network.t -> outcome;
      (** the raw body; prefer {!run}, which converts exceptions *)
}

val all : t list
val names : string list

val find : string -> t option
(** Lookup by [name]. *)

val run : t -> rng:Util.Rng.t -> ?budget:Budget.t -> Network.t -> outcome
(** [check] with every escaping exception converted to [Fail] — except
    [Budget.Budget_exceeded], which becomes [Skip]: a check that ran
    out of budget did not complete, which is not a finding. [budget]
    defaults to [Budget.unlimited]. *)

(** {1 ECO replay}

    [eco-equal]'s body, split so the fuzz driver can re-derive a
    failing edit sequence from [(seed, index)] and replay or shrink it
    when writing [.eco] repro files. *)

val eco_edits : rng:Util.Rng.t -> Network.t -> Eco.edit list option
(** The edit sequence [eco-equal] draws for this specimen — the only
    rng consumption the oracle performs. [None] when the specimen is
    unmappable or offers no feasible edit. *)

val eco_replay : budget:Budget.t -> Network.t -> Eco.edit list -> outcome
(** Full-vs-incremental comparison for a concrete edit sequence
    (θ = 0.5, band = 0.35, jobs ∈ {1, 2, 4, 8}). *)
