(* emask — command-line driver for the error-masking library.

   Subcommands:
     list      enumerate the built-in benchmark suite
     lint      static analysis: structural, timing and masking checks
     spcf      compute speed-path characteristic functions
     paths     near-critical path sensitization verdicts + witnesses
     protect   synthesize + verify an error-masking circuit
     eco       incremental recompute after an edit sequence
     wearout   aging sweep with the timing simulator
     trace     trace-buffer window expansion report
     fuzz      property-based differential fuzzing of the whole stack
     report    diff the EMASK_LEDGER run ledger, incl. bench baselines

   Every subcommand accepts --stats (print the instrumentation report:
   span tree, counters, histograms), --stats-json FILE (the same data
   as JSON), --trace FILE (Chrome/Perfetto timeline, one row per
   domain) and --prom FILE (Prometheus text exposition). EMASK_OBS=1
   in the environment enables the report without a flag, and
   EMASK_LEDGER=FILE appends one JSONL record per invocation.

   Exit codes: 0 success / lint clean; 1 lint warnings under
   --fail-on=warning; 2 lint errors (including pre-flight failures of
   the other subcommands). *)

open Cmdliner

(* The CLI exception boundary: bad input must produce a one-line
   diagnostic and exit 2 — the lint preflight policy — never a raw
   OCaml backtrace. Every subcommand body runs inside [guarded]. *)
let cli_error code msg =
  Printf.eprintf "emask: error %s: %s\n%!" code msg;
  exit 2

let guarded f =
  try f () with
  | Blif.Parse_error msg -> cli_error "BLIF001" msg
  | Sys_error msg -> cli_error "IO001" msg
  | Failure msg -> cli_error "CLI001" msg
  | Invalid_argument msg -> cli_error "CLI002" msg
  | Budget.Budget_exceeded r ->
    cli_error "BUDGET001" ("resource budget exhausted: " ^ Budget.reason_to_string r)

(* Every entry point pre-flights its input with the cheap error-only
   lint subset and exits 2 with a one-line summary instead of failing
   deep inside BDD construction. *)
let load_circuit spec =
  Obs.with_span "load" (fun () ->
      if Sys.file_exists spec then begin
        let src = Blif.read_source spec in
        Analysis.Lint.gate ~what:spec (Analysis.Lint.preflight_source src);
        Blif.elaborate src
      end
      else begin
        let net = Suite.load spec in
        Analysis.Lint.gate ~what:spec (Analysis.Lint.preflight net);
        net
      end)

let circuit_arg =
  let doc = "Benchmark name (see $(b,emask list)) or path to a BLIF file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

(* θ scales the critical-path delay into the speed-path target; a
   value outside (0, 1] silently inverts the band, so it is an
   argument error under the same policy as --jobs. *)
let theta_conv =
  let parse s =
    match float_of_string_opt s with
    | Some v when v > 0. && v <= 1. -> Ok v
    | Some _ | None ->
      Error (`Msg (Printf.sprintf "THETA must lie in (0, 1], got %S" s))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%g" v)

let theta_arg =
  let doc = "Target arrival factor: speed-paths within (1-THETA) of the critical path delay." in
  Arg.(value & opt theta_conv 0.9 & info [ "theta" ] ~docv:"THETA" ~doc)

let algorithm_arg =
  let doc = "SPCF algorithm: short (proposed, exact), path (exact), node (over-approximate)." in
  let algo_conv = Arg.enum [ ("short", `Short); ("path", `Path); ("node", `Node) ] in
  Arg.(value & opt algo_conv `Short & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc)

(* A strictly positive integer argument: 0 or a negative value is an
   argument error, not a silent fallback to some other mode. *)
let pos_int_conv what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ | None ->
      Error (`Msg (Printf.sprintf "%s must be a positive integer, got %S" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let pos_float_conv what =
  let parse s =
    match float_of_string_opt s with
    | Some v when v > 0. && v < infinity -> Ok v
    | Some _ | None ->
      Error (`Msg (Printf.sprintf "%s must be a positive number, got %S" what s))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%g" v)

let jobs_arg =
  let doc =
    "Worker domains for the per-output SPCF fan-out (default: \\$(b,EMASK_JOBS), \
     else the recommended domain count, capped at 8). Results are identical for \
     every N; only runtime changes."
  in
  Arg.(
    value
    & opt (some (pos_int_conv "--jobs")) None
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let resolve_jobs = function Some n -> n | None -> Spcf.Parallel.auto_jobs ()

(* --- resource budgets --------------------------------------------------- *)

let timeout_arg =
  let doc =
    "Wall-clock budget in seconds (also \\$(b,EMASK_BUDGET_TIMEOUT)). On exhaustion \
     the computation degrades tier by tier (exact SPCF, node-based SPCF, always-on \
     masking) instead of running away; degradation is reported, never silent."
  in
  Arg.(
    value
    & opt (some (pos_float_conv "--timeout")) None
    & info [ "timeout" ] ~docv:"SEC" ~doc)

let max_nodes_arg =
  let doc =
    "BDD node quota per manager (also \\$(b,EMASK_BUDGET_MAX_NODES)). Same \
     degradation ladder as $(b,--timeout)."
  in
  Arg.(
    value
    & opt (some (pos_int_conv "--max-nodes")) None
    & info [ "max-nodes" ] ~docv:"N" ~doc)

let budget_term = Term.(const (fun t n -> (t, n)) $ timeout_arg $ max_nodes_arg)

(* Flags take precedence; EMASK_BUDGET_* fills the gaps. *)
let resolve_budget (timeout, max_nodes) =
  Budget.merge { Budget.timeout; max_nodes; max_ops = None } (Budget.of_env ())

let pp_reasons attempts =
  String.concat ", "
    (List.map
       (fun (tier, reason) ->
         Printf.sprintf "%s: %s"
           (Spcf.Governed.tier_to_string tier)
           (Budget.reason_to_string reason))
       attempts)

let report_spcf_degradation (o : Spcf.Governed.outcome) =
  if o.Spcf.Governed.tier <> Spcf.Governed.Exact then
    Printf.printf "budget: degraded to %s SPCF (%s); degraded outputs: %s\n"
      (Spcf.Governed.tier_to_string o.Spcf.Governed.tier)
      (pp_reasons o.Spcf.Governed.attempts)
      (String.concat ", "
         (List.map (fun (n, _, _) -> n) o.Spcf.Governed.result.Spcf.Ctx.outputs))

let report_synthesis_degradation (m : Masking.Synthesis.t) =
  if m.Masking.Synthesis.tier <> Spcf.Governed.Exact then
    Printf.printf "budget: degraded to %s (%s); degraded outputs: %s\n"
      (Spcf.Governed.tier_to_string m.Masking.Synthesis.tier)
      (pp_reasons m.Masking.Synthesis.attempts)
      (String.concat ", "
         (List.map
            (fun p -> p.Masking.Synthesis.name)
            m.Masking.Synthesis.per_output))

(* --- instrumentation plumbing ------------------------------------------ *)

let stats_arg =
  let doc = "Print the instrumentation report (span tree, counters, histograms)." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let stats_json_arg =
  let doc = "Write the instrumentation report as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Write a Chrome/Perfetto trace-event timeline to $(docv) (load it at \
     ui.perfetto.dev or chrome://tracing): one row per domain, spans as complete \
     events, budget walls and synthesis-ladder fallbacks as instant markers. \
     Implies statistics collection."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let prom_arg =
  let doc =
    "Write the counter/histogram registry in Prometheus text exposition format to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "prom" ] ~docv:"FILE" ~doc)

let obs_term =
  Term.(
    const (fun s j t p -> (s, j, t, p))
    $ stats_arg $ stats_json_arg $ trace_out_arg $ prom_arg)

let env_truthy name =
  match Sys.getenv_opt name with None | Some "" | Some "0" -> false | Some _ -> true

(* Run [f] under a root span; afterwards write the requested export
   files, print the report when asked for, and append the run-ledger
   record. With no flag, no EMASK_OBS and no EMASK_LEDGER, collection
   stays disabled and output is exactly the uninstrumented CLI's. The
   textual report prints only for --stats / EMASK_OBS — a ledger or an
   export file alone keeps stdout quiet. *)
let with_obs (stats, json, trace_out, prom) name f =
  if stats || json <> None || prom <> None || Obs_ledger.enabled () then
    Obs.set_enabled true;
  if trace_out <> None then begin
    Obs.set_enabled true;
    Obs.set_trace_enabled true
  end;
  let r, runtime = Obs.timed ("emask." ^ name) f in
  Obs_ledger.note "runtime_s" (Obs_json.Float runtime);
  (match json with Some path -> Obs_json.write_file path | None -> ());
  (match trace_out with
  | Some path ->
    Obs_trace.write_file path;
    Printf.eprintf "trace written to %s\n%!" path
  | None -> ());
  (match prom with Some path -> Obs_prom.write_file path | None -> ());
  if stats || env_truthy "EMASK_OBS" then Obs_report.print stdout;
  Obs_ledger.append ~cmd:name ();
  r

(* Ledger facts about the circuit under analysis. The hash is the digest
   of the canonical BLIF serialization, so "same circuit, different
   file name" groups together in [emask report]. *)
let note_circuit spec net =
  if Obs_ledger.enabled () then begin
    Obs_ledger.note "circuit" (Obs_json.String spec);
    Obs_ledger.note "circuit_sha"
      (Obs_json.String (Digest.to_hex (Digest.string (Blif.to_string net))))
  end

let note_run ~theta ~jobs =
  if Obs_ledger.enabled () then begin
    Obs_ledger.note "theta" (Obs_json.Float theta);
    Obs_ledger.note "jobs" (Obs_json.Int jobs)
  end

(* --- subcommands -------------------------------------------------------- *)

let list_run obs =
  with_obs obs "list" @@ fun () ->
  Printf.printf "%-18s %8s %8s %8s\n" "name" "inputs" "outputs" "paper-gates";
  List.iter
    (fun e ->
      Printf.printf "%-18s %8d %8d %8d\n" e.Suite.ename e.Suite.params.Generator.n_pi
        e.Suite.params.Generator.n_po e.Suite.paper_gates)
    Suite.all

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark suite")
    Term.(const list_run $ obs_term)

(* --- lint --------------------------------------------------------------- *)

let fail_on_arg =
  let doc =
    "Severity that makes the exit status nonzero: $(b,error) (default; exit 2) or \
     $(b,warning) (exit 1 on warnings, 2 on errors)."
  in
  let sev_conv =
    Arg.enum [ ("error", Analysis.Diag.Error); ("warning", Analysis.Diag.Warning) ]
  in
  Arg.(
    value & opt sev_conv Analysis.Diag.Error & info [ "fail-on" ] ~docv:"SEVERITY" ~doc)

let json_arg =
  let doc = "Emit the diagnostics as a JSON report on stdout instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let contract_arg =
  let doc =
    "Also synthesize the error-masking circuit and verify the paper's masking \
     contract (mux insertion, non-intrusiveness, indicator soundness, the >= 20% \
     timing-slack margin)."
  in
  Arg.(value & flag & info [ "contract" ] ~doc)

(* Lint a circuit. BLIF files are first analyzed in raw form (the only
   form in which cycles and undriven/multiply-driven signals are even
   representable); if the source passes the error-level checks it is
   elaborated and the semantic + timing passes run on the mapped
   realization. Suite circuits skip the source stage. *)
let lint_run obs spec fail_on json contract theta jobs =
  let code =
    guarded @@ fun () ->
    with_obs obs "lint" @@ fun () ->
    let source_diags, net =
      if Sys.file_exists spec then begin
        match Blif.read_source spec with
        | src ->
          let ds = Analysis.Lint.source src in
          if Analysis.Diag.errors ds = [] then (ds, Some (Blif.elaborate src))
          else (ds, None)
        | exception Blif.Parse_error msg ->
          ([ Analysis.Diag.diag Analysis.Diag.Parse_error msg ], None)
      end
      else ([], Some (load_circuit spec))
    in
    (match net with Some n -> note_circuit spec n | None -> ());
    let semantic_diags =
      match net with
      | None -> []
      | Some net ->
        (* For BLIF files the structural passes already ran on the raw
           source; only the cover-semantic pass is new. Suite circuits
           get the full network pipeline. *)
        let net_ds =
          if Sys.file_exists spec then Analysis.Passes.net_const_gates net
          else Analysis.Lint.network net
        in
        let mc = Obs.with_span "map" (fun () -> Mapper.map net) in
        let mapped_ds =
          Analysis.Passes.mapped_unmapped_gates mc
          @ Analysis.Passes.sta_consistency mc
        in
        let contract_ds =
          if contract && Analysis.Diag.errors net_ds = [] then begin
            let options =
              { Masking.Synthesis.default_options with theta; jobs = resolve_jobs jobs }
            in
            let m = Masking.Synthesis.synthesize ~options net in
            Analysis.Lint.masking m
          end
          else []
        in
        net_ds @ mapped_ds @ contract_ds
    in
    let diags = source_diags @ semantic_diags in
    if json then
      print_endline (Obs_json.to_string (Analysis.Diag.report_json ~name:spec diags))
    else Analysis.Diag.print stdout diags;
    Analysis.Diag.exit_code ~fail_on diags
  in
  if code <> 0 then exit code

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a circuit: structural well-formedness (cycles, \
          undriven and multiply-driven signals, dead cones, provable constants), \
          STA consistency, and optionally the masking contract")
    Term.(
      const lint_run $ obs_term $ circuit_arg $ fail_on_arg $ json_arg $ contract_arg
      $ theta_arg $ jobs_arg)

let spcf_run obs spec theta algo jobs bflags =
  guarded @@ fun () ->
  with_obs obs "spcf" @@ fun () ->
  let jobs = resolve_jobs jobs in
  let bspec = resolve_budget bflags in
  let net = load_circuit spec in
  note_circuit spec net;
  note_run ~theta ~jobs;
  let mc = Obs.with_span "map" (fun () -> Mapper.map net) in
  let algorithm =
    match algo with
    | `Short -> Spcf.Governed.Short_path
    | `Path -> Spcf.Governed.Path_based
    | `Node -> Spcf.Governed.Node_based
  in
  let o = Spcf.Governed.compute ~jobs ~spec:bspec ~algorithm ~theta mc in
  let ctx = o.Spcf.Governed.ctx and r = o.Spcf.Governed.result in
  if Obs_ledger.enabled () then begin
    Obs_ledger.note "algorithm" (Obs_json.String r.Spcf.Ctx.algorithm);
    Obs_ledger.note "tier"
      (Obs_json.String (Spcf.Governed.tier_to_string o.Spcf.Governed.tier));
    Obs_ledger.note "compute_s" (Obs_json.Float r.Spcf.Ctx.runtime)
  end;
  Printf.printf "circuit: %s\n" spec;
  Printf.printf "gates: %d  area: %.1f  delta: %.3f  target: %.3f\n"
    (Mapped.gate_count mc) (Mapped.area mc) (Spcf.Ctx.delta ctx) r.Spcf.Ctx.target;
  Printf.printf "algorithm: %s  runtime: %.3fs\n" r.Spcf.Ctx.algorithm
    r.Spcf.Ctx.runtime;
  Printf.printf "critical outputs: %d\n" (Spcf.Ctx.num_critical_outputs r);
  List.iter
    (fun (name, _, sigma) ->
      Printf.printf "  %-16s critical minterms: %s\n" name
        (Extfloat.to_string (Bdd.satcount ctx.Spcf.Ctx.man sigma)))
    r.Spcf.Ctx.outputs;
  Printf.printf "total critical minterms: %s\n"
    (Extfloat.to_string (Spcf.Ctx.count ctx r));
  report_spcf_degradation o

let spcf_cmd =
  Cmd.v
    (Cmd.info "spcf" ~doc:"Compute the speed-path characteristic function")
    Term.(
      const spcf_run $ obs_term $ circuit_arg $ theta_arg $ algorithm_arg $ jobs_arg
      $ budget_term)

let protect_run obs spec theta jobs prune out bflags =
  guarded @@ fun () ->
  with_obs obs "protect" @@ fun () ->
  let net = load_circuit spec in
  note_circuit spec net;
  note_run ~theta ~jobs:(resolve_jobs jobs);
  let options =
    {
      Masking.Synthesis.default_options with
      theta;
      jobs = resolve_jobs jobs;
      prune_false_paths = prune;
      budget = resolve_budget bflags;
    }
  in
  let m = Masking.Synthesis.synthesize ~options net in
  if Obs_ledger.enabled () then
    Obs_ledger.note "tier"
      (Obs_json.String (Spcf.Governed.tier_to_string m.Masking.Synthesis.tier));
  let r = Masking.Verify.check m in
  Format.printf "circuit: %s@." spec;
  Format.printf "%a@." Masking.Verify.pp r;
  (match m.Masking.Synthesis.pruned with
  | [] -> ()
  | pruned ->
    Format.printf "pruned false-path outputs: %s@." (String.concat ", " pruned));
  report_synthesis_degradation m;
  (match out with
  | Some path ->
    Blif.write_file ~model:(Filename.basename path) path
      (Mapped.network m.Masking.Synthesis.combined);
    Format.printf "combined circuit written to %s@." path
  | None -> ())

let out_arg =
  let doc = "Write the combined (protected) circuit as BLIF to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let prune_arg =
  let doc =
    "Drop a critical output from the masking cover when every near-critical path \
     to it is provably false and its SPCF is empty (see $(b,emask paths)); the \
     indicator shrinks, the soundness interval is preserved and re-verified."
  in
  Arg.(value & flag & info [ "prune-false-paths" ] ~doc)

let protect_cmd =
  Cmd.v
    (Cmd.info "protect" ~doc:"Synthesize and verify an error-masking circuit")
    Term.(
      const protect_run $ obs_term $ circuit_arg $ theta_arg $ jobs_arg $ prune_arg
      $ out_arg $ budget_term)

(* --- paths: sensitization analysis of the near-critical band ------------ *)

(* Same converter discipline as --theta/--jobs: a band of 0 classifies
   nothing and one above 1 silently clamps, so both are argument errors
   (one-line diagnostic, exit 2), not silent near-no-ops. *)
let band_conv =
  let parse s =
    match float_of_string_opt s with
    | Some v when v > 0. && v <= 1. -> Ok v
    | Some _ | None ->
      Error (`Msg (Printf.sprintf "BAND must lie in (0, 1], got %S" s))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%g" v)

let band_arg =
  let doc =
    "Near-critical band: classify every structural path longer than \
     (1-BAND) * Delta."
  in
  Arg.(value & opt band_conv 0.1 & info [ "band" ] ~docv:"F" ~doc)

let max_paths_arg =
  let doc = "Stop enumerating after $(docv) paths (the report is marked truncated)." in
  Arg.(
    value
    & opt (pos_int_conv "--max-paths") 4096
    & info [ "max-paths" ] ~docv:"N" ~doc)

(* A witness pattern as "a=1 b=0 ..." over the primary-input names. *)
let pp_witness mnet w =
  String.concat " "
    (Array.to_list
       (Array.mapi
          (fun i s ->
            Printf.sprintf "%s=%d" (Network.name_of mnet s)
              (if w.(i) then 1 else 0))
          (Network.inputs mnet)))

let paths_json spec mnet (report : Sensitization.report) diags =
  let open Obs_json in
  let path_json (c : Sensitization.classified) =
    let p = c.Sensitization.path in
    let base =
      [
        ("output", String p.Paths.output);
        ( "signals",
          List
            (Array.to_list
               (Array.map (fun s -> String (Network.name_of mnet s)) p.Paths.signals))
        );
        ("length", Float p.Paths.length);
        ("verdict", String (Sensitization.verdict_name c.Sensitization.verdict));
      ]
    in
    match c.Sensitization.verdict with
    | Sensitization.True w ->
      Obj
        (base
        @ [
            ( "witness",
              Obj
                (Array.to_list
                   (Array.mapi
                      (fun i s -> (Network.name_of mnet s, Bool w.(i)))
                      (Network.inputs mnet))) );
          ])
    | Sensitization.False -> Obj base
    | Sensitization.Unknown r ->
      Obj (base @ [ ("reason", String (Budget.reason_to_string r)) ])
  in
  let summary_json (s : Sensitization.summary) =
    Obj
      [
        ("output", String s.Sensitization.output);
        ("paths", Int s.Sensitization.num_paths);
        ("true", Int s.Sensitization.num_true);
        ("false", Int s.Sensitization.num_false);
        ("unknown", Int s.Sensitization.num_unknown);
        ("topological", Float s.Sensitization.topological);
        ("functional", Float s.Sensitization.functional);
      ]
  in
  let nt, nf, nu = Sensitization.counts report in
  Obj
    [
      ("circuit", String spec);
      ("delta", Float report.Sensitization.delta);
      ("band", Float report.Sensitization.band);
      ("target", Float report.Sensitization.target);
      ("truncated", Bool report.Sensitization.truncated);
      ("functional_delta", Float report.Sensitization.functional_delta);
      ("paths", List (List.map path_json report.Sensitization.paths));
      ("outputs", List (List.map summary_json report.Sensitization.summaries));
      ( "verdicts",
        Obj [ ("true", Int nt); ("false", Int nf); ("unknown", Int nu) ] );
      ("diagnostics", List (List.map Analysis.Diag.to_json diags));
    ]

let paths_run obs spec band max_paths jobs json fail_on bflags =
  let code =
    guarded @@ fun () ->
    with_obs obs "paths" @@ fun () ->
    let jobs = resolve_jobs jobs in
    let bspec = resolve_budget bflags in
    let budget =
      if Budget.is_no_limits bspec then Budget.unlimited else Budget.instantiate bspec
    in
    let net = load_circuit spec in
    note_circuit spec net;
    if Obs_ledger.enabled () then Obs_ledger.note "jobs" (Obs_json.Int jobs);
    let mc = Obs.with_span "map" (fun () -> Mapper.map net) in
    let mnet = Mapped.network mc in
    let report = Sensitization.analyze ~band ~max_paths ~jobs ~budget mc in
    let diags = Analysis.Passes.sensitization report in
    let nt, nf, nu = Sensitization.counts report in
    if json then
      print_endline (Obs_json.to_string (paths_json spec mnet report diags))
    else begin
      Printf.printf "circuit: %s\n" spec;
      Printf.printf "delta: %.3f  band: %.3f  target: %.3f\n"
        report.Sensitization.delta report.Sensitization.band
        report.Sensitization.target;
      Printf.printf "near-critical paths: %d%s\n"
        (List.length report.Sensitization.paths)
        (if report.Sensitization.truncated then
           "  (truncated: enumeration capped, missed paths unclassified)"
         else "");
      List.iter
        (fun (c : Sensitization.classified) ->
          let p = c.Sensitization.path in
          Printf.printf "  %-8s %s: %s%s\n"
            (Sensitization.verdict_name c.Sensitization.verdict)
            p.Paths.output
            (Paths.to_string mnet p)
            (match c.Sensitization.verdict with
            | Sensitization.True w -> "  witness " ^ pp_witness mnet w
            | Sensitization.False -> ""
            | Sensitization.Unknown r ->
              "  (" ^ Budget.reason_to_string r ^ ")"))
        report.Sensitization.paths;
      List.iter
        (fun (s : Sensitization.summary) ->
          if s.Sensitization.num_paths > 0 then
            Printf.printf
              "output %-16s paths: %d (%d true, %d false, %d unknown)  arrival: \
               %.3f  functional: %.3f\n"
              s.Sensitization.output s.Sensitization.num_paths
              s.Sensitization.num_true s.Sensitization.num_false
              s.Sensitization.num_unknown s.Sensitization.topological
              s.Sensitization.functional)
        report.Sensitization.summaries;
      Printf.printf "functional delta: %.3f  (topological %.3f)\n"
        report.Sensitization.functional_delta report.Sensitization.delta;
      List.iter
        (fun d -> Printf.printf "%s\n" (Analysis.Diag.to_string d))
        (Analysis.Diag.sort diags);
      Printf.printf "verdicts: %d true, %d false, %d unknown\n" nt nf nu
    end;
    Analysis.Diag.exit_code ~fail_on diags
  in
  if code <> 0 then exit code

let paths_cmd =
  Cmd.v
    (Cmd.info "paths"
       ~doc:
         "Enumerate the near-critical structural paths and classify each as true \
          (sensitizable, with a SAT witness pattern), false (no input pattern \
          sensitizes it) or unknown (budget exhausted); reports the tightened \
          functional delay bound per output")
    Term.(
      const paths_run $ obs_term $ circuit_arg $ band_arg $ max_paths_arg $ jobs_arg
      $ json_arg $ fail_on_arg $ budget_term)

let wearout_run obs spec trials bflags =
  guarded @@ fun () ->
  with_obs obs "wearout" @@ fun () ->
  let net = load_circuit spec in
  note_circuit spec net;
  let options =
    { Masking.Synthesis.default_options with budget = resolve_budget bflags }
  in
  let m = Masking.Synthesis.synthesize ~options net in
  if Obs_ledger.enabled () then
    Obs_ledger.note "tier"
      (Obs_json.String (Spcf.Governed.tier_to_string m.Masking.Synthesis.tier));
  report_synthesis_degradation m;
  let samples =
    Obs.with_span "aging-sweep" (fun () -> Masking.Monitor.aging_sweep ~trials m)
  in
  List.iter (fun s -> Format.printf "%a@." Masking.Monitor.pp_sample s) samples

let trials_arg =
  let doc = "Random input transitions per aging factor." in
  Arg.(value & opt int 400 & info [ "trials" ] ~docv:"N" ~doc)

let wearout_cmd =
  Cmd.v
    (Cmd.info "wearout" ~doc:"Aging sweep: raw vs masked vs logged error rates")
    Term.(const wearout_run $ obs_term $ circuit_arg $ trials_arg $ budget_term)

let trace_run obs spec buffer cycles =
  guarded @@ fun () ->
  with_obs obs "trace" @@ fun () ->
  let net = load_circuit spec in
  note_circuit spec net;
  let m = Masking.Synthesis.synthesize net in
  let r =
    Obs.with_span "selective-capture" (fun () ->
        Masking.Trace_buffer.selective_capture ~buffer_size:buffer ~cycles m)
  in
  Format.printf "%a@." Masking.Trace_buffer.pp r

let buffer_arg =
  Arg.(value & opt int 64 & info [ "buffer" ] ~docv:"ENTRIES" ~doc:"Trace buffer size.")

let cycles_arg =
  Arg.(value & opt int 100000 & info [ "cycles" ] ~docv:"N" ~doc:"Cycles to simulate.")

let trace_cmd =
  Cmd.v
    (Cmd.info "trace" ~doc:"Trace-buffer window expansion via selective capture")
    Term.(const trace_run $ obs_term $ circuit_arg $ buffer_arg $ cycles_arg)

(* --- eco: incremental recompute after an engineering change order ------- *)

let edits_arg =
  let doc =
    "Edit-sequence file, one edit per line: $(b,replace), $(b,rewire), $(b,add), \
     $(b,remove), $(b,add-output), $(b,drop-output); blank lines and $(b,#) \
     comments are skipped. Fuzz $(b,.eco) repro files use this format."
  in
  Arg.(required & opt (some string) None & info [ "edits" ] ~docv:"FILE" ~doc)

let eco_band_arg =
  let doc =
    "Also carry sensitization verdicts for the near-critical band (same semantics \
     as $(b,emask paths --band)); verdicts on paths through clean outputs are \
     reused from the baseline."
  in
  Arg.(value & opt (some band_conv) None & info [ "band" ] ~docv:"F" ~doc)

let check_arg =
  let doc =
    "Cross-check the incremental result against a full from-scratch analysis of \
     the edited design: the canonical forms must be byte-identical (exit 1 \
     otherwise). This is the $(b,eco-equal) oracle on the given edit sequence."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let eco_json spec ~edits ~jobs ~check_result (base : Eco.t) (t : Eco.t) =
  let open Obs_json in
  let st = t.Eco.stats in
  Obj
    ([
       ("circuit", String spec);
       ("edits", Int (List.length edits));
       ("theta", Float t.Eco.theta);
       ("jobs", Int jobs);
       ("delta_before", Float base.Eco.delta);
       ("delta_after", Float t.Eco.delta);
       ("target", Float t.Eco.target);
       ("total_signals", Int st.Eco.total_signals);
       ("dirty_signals", Int st.Eco.dirty_signals);
       ("funcs_reused", Int st.Eco.funcs_reused);
       ("funcs_rebuilt", Int st.Eco.funcs_rebuilt);
       ("sigmas_reused", Int st.Eco.sigmas_reused);
       ("sigmas_recomputed", Int st.Eco.sigmas_recomputed);
       ("delta_changed", Bool st.Eco.delta_changed);
       ( "critical_outputs",
         List (List.map (fun (n, _, _) -> String n) t.Eco.sigmas) );
       ("fingerprint", String (Eco.fingerprint t));
     ]
    @ (match t.Eco.band with Some b -> [ ("band", Float b) ] | None -> [])
    @
    match check_result with
    | None -> []
    | Some ok -> [ ("check", String (if ok then "identical" else "DIVERGED")) ])

let eco_run obs spec edits_file theta band jobs json check bflags =
  let code =
    guarded @@ fun () ->
    with_obs obs "eco" @@ fun () ->
    let jobs = resolve_jobs jobs in
    let bspec = resolve_budget bflags in
    let budget =
      if Budget.is_no_limits bspec then Budget.unlimited else Budget.instantiate bspec
    in
    let net = load_circuit spec in
    note_circuit spec net;
    note_run ~theta ~jobs;
    let mc = Obs.with_span "map" (fun () -> Mapper.map net) in
    let d0 = Eco.design_of_mapped mc in
    let edits = Eco.parse_edits d0 (read_file edits_file) in
    let base =
      Obs.with_span "eco.baseline" (fun () ->
          Eco.snapshot ~theta ?band ~jobs ~budget d0)
    in
    let t =
      Obs.with_span "eco.recompute" (fun () -> Eco.recompute ~jobs base edits)
    in
    let check_result =
      if not check then None
      else
        Some
          (Obs.with_span "eco.check" (fun () ->
               let full = Eco.snapshot ~theta ?band ~jobs ~budget t.Eco.design in
               Eco.canonical full = Eco.canonical t))
    in
    let st = t.Eco.stats in
    if Obs_ledger.enabled () then begin
      Obs_ledger.note "edits" (Obs_json.Int (List.length edits));
      Obs_ledger.note "dirty_signals" (Obs_json.Int st.Eco.dirty_signals)
    end;
    if json then
      print_endline
        (Obs_json.to_string (eco_json spec ~edits ~jobs ~check_result base t))
    else begin
      Printf.printf "circuit: %s\n" spec;
      Printf.printf "edits: %d  (from %s)\n" (List.length edits) edits_file;
      Printf.printf "delta: %.3f -> %.3f%s  target: %.3f  (theta %.3f)\n"
        base.Eco.delta t.Eco.delta
        (if st.Eco.delta_changed then "  [changed: all targets re-derived]" else "")
        t.Eco.target theta;
      Printf.printf "dirty cone: %d of %d signals\n" st.Eco.dirty_signals
        st.Eco.total_signals;
      Printf.printf "node functions: %d reused, %d rebuilt\n" st.Eco.funcs_reused
        st.Eco.funcs_rebuilt;
      Printf.printf "output SPCFs:   %d reused, %d recomputed\n" st.Eco.sigmas_reused
        st.Eco.sigmas_recomputed;
      Printf.printf "critical outputs: %s\n"
        (match t.Eco.sigmas with
        | [] -> "(none)"
        | l -> String.concat ", " (List.map (fun (n, _, _) -> n) l));
      (match t.Eco.sens with
      | None -> ()
      | Some r ->
        let nt, nf, nu = Sensitization.counts r in
        Printf.printf "sensitization: %d paths (%d true, %d false, %d unknown)\n"
          (List.length r.Sensitization.paths)
          nt nf nu);
      Printf.printf "fingerprint: %s\n" (Eco.fingerprint t);
      match check_result with
      | None -> ()
      | Some true -> Printf.printf "check: incremental = full recompute (canonical forms identical)\n"
      | Some false ->
        Printf.printf "check: DIVERGED — incremental differs from full recompute\n"
    end;
    match check_result with Some false -> 1 | _ -> 0
  in
  if code <> 0 then exit code

let eco_cmd =
  Cmd.v
    (Cmd.info "eco"
       ~doc:
         "Apply an engineering-change-order edit sequence and incrementally \
          re-derive the timing-error-masking analysis: only the dirty \
          transitive-fanout cone is recomputed; node functions, per-output SPCFs, \
          masking covers and sensitization verdicts outside the cone are reused \
          from the baseline snapshot")
    Term.(
      const eco_run $ obs_term $ circuit_arg $ edits_arg $ theta_arg $ eco_band_arg
      $ jobs_arg $ json_arg $ check_arg $ budget_term)

(* --- fuzz --------------------------------------------------------------- *)

let seed_arg =
  let doc =
    "Root seed. Every failure report names (seed, index), which replays the sample \
     exactly."
  in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)

let count_arg =
  let doc = "Number of random specimens to generate." in
  Arg.(value & opt int 100 & info [ "count"; "n" ] ~docv:"N" ~doc)

let time_budget_arg =
  let doc = "Deprecated alias for $(b,--timeout)." in
  Arg.(
    value
    & opt (some (pos_float_conv "--time-budget")) None
    & info [ "time-budget" ] ~docv:"S" ~doc)

let oracle_arg =
  let doc =
    Printf.sprintf "Run only the named oracle (default: all). One of: %s."
      (String.concat ", " Fuzz.Oracle.names)
  in
  Arg.(value & opt (some string) None & info [ "oracle" ] ~docv:"NAME" ~doc)

let shrink_arg =
  let doc =
    "Greedily minimize failing specimens (delete outputs, gates, cover rows, pins) \
     before writing the repro."
  in
  Arg.(value & flag & info [ "shrink" ] ~doc)

let fuzz_out_arg =
  let doc = "Directory for shrunken repro .blif files (created if missing)." in
  Arg.(value & opt string "." & info [ "out" ] ~docv:"DIR" ~doc)

let fuzz_run obs seed count time_budget oracle shrink out bflags =
  let code =
    guarded @@ fun () ->
    with_obs obs "fuzz" @@ fun () ->
    let oracles =
      match oracle with
      | None -> Fuzz.Oracle.all
      | Some name -> (
        match Fuzz.Oracle.find name with
        | Some o -> [ o ]
        | None ->
          Printf.eprintf "unknown oracle %S (have: %s)\n" name
            (String.concat ", " Fuzz.Oracle.names);
          exit 2)
    in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let budget =
      let timeout, max_nodes = bflags in
      let timeout = match timeout with Some _ -> timeout | None -> time_budget in
      resolve_budget (timeout, max_nodes)
    in
    let config =
      {
        Fuzz.Driver.default_config with
        seed;
        count;
        budget;
        oracles;
        shrink;
        out_dir = Some out;
      }
    in
    if Obs_ledger.enabled () then begin
      Obs_ledger.note "seed" (Obs_json.Int seed);
      Obs_ledger.note "count" (Obs_json.Int count)
    end;
    let summary = Fuzz.Driver.run config in
    if Obs_ledger.enabled () then
      Obs_ledger.note "failures"
        (Obs_json.Int (List.length summary.Fuzz.Driver.failures));
    List.iter
      (fun o ->
        Printf.printf "  oracle %-16s %s\n" o.Fuzz.Oracle.name o.Fuzz.Oracle.describe)
      oracles;
    if summary.Fuzz.Driver.failures = [] then 0 else 1
  in
  if code <> 0 then exit code

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Property-based differential fuzzing: random netlists (including degenerate \
          shapes) are cross-checked through the SPCF algorithms, the simulators, the \
          static timing bounds, the masking synthesis and the BLIF round-trip; \
          failures are shrunk to minimal repro netlists")
    Term.(
      const fuzz_run $ obs_term $ seed_arg $ count_arg $ time_budget_arg $ oracle_arg
      $ shrink_arg $ fuzz_out_arg $ budget_term)

(* --- report: diff run-ledger trajectories ------------------------------- *)

(* Typed accessors over ledger records (missing fields are simply absent
   — older schema versions and hand-written records must still print). *)
let field_string key r =
  match Obs_json.member key r with Some (Obs_json.String s) -> Some s | _ -> None

let field_float key r =
  match Obs_json.member key r with
  | Some (Obs_json.Float f) -> Some f
  | Some (Obs_json.Int i) -> Some (float_of_int i)
  | _ -> None

let field_counters r =
  match Obs_json.member "counters" r with
  | Some (Obs_json.Obj fields) ->
    List.filter_map
      (fun (k, v) -> match v with Obs_json.Int i -> Some (k, i) | _ -> None)
      fields
  | _ -> []

(* Runs group by what they computed: the command plus the circuit
   identity (content hash when known, name otherwise; bench rows use
   the case name). *)
let record_group r =
  let cmd = Option.value ~default:"?" (field_string "cmd" r) in
  let subject =
    match field_string "case" r with
    | Some c -> c
    | None -> (
      match (field_string "circuit_sha" r, field_string "circuit" r) with
      | Some sha, Some c -> Printf.sprintf "%s#%s" c (String.sub sha 0 8)
      | Some sha, None -> sha
      | None, Some c -> c
      | None, None -> "-")
  in
  (cmd, subject)

let record_time r =
  match field_float "runtime_s" r with
  | Some t -> Some ("runtime", t)
  | None -> (
    match field_float "ns_per_run" r with
    | Some ns -> Some ("per-run", ns /. 1e9)
    | None -> None)

let pp_delta ?(what = "prev") cur prev =
  if prev > 0. then
    Printf.sprintf " (%+.1f%% vs %s)" ((cur /. prev -. 1.) *. 100.) what
  else ""

let print_group (cmd, subject) records =
  let n = List.length records in
  let latest = List.nth records (n - 1) in
  let prev = if n >= 2 then Some (List.nth records (n - 2)) else None in
  Printf.printf "%s %s  (%d run%s)\n" cmd subject n (if n = 1 then "" else "s");
  let describe r =
    String.concat "  "
      (List.filter_map
         (fun f -> f r)
         [
           (fun r -> field_string "ts_iso" r);
           (fun r ->
             Option.map (fun (what, t) -> Printf.sprintf "%s %.4fs" what t)
               (record_time r));
           (fun r -> Option.map (fun t -> "tier " ^ t) (field_string "tier" r));
           (fun r ->
             Option.map
               (fun j -> Printf.sprintf "jobs %d" (int_of_float j))
               (field_float "jobs" r));
         ])
  in
  Printf.printf "  latest: %s%s\n" (describe latest)
    (match (record_time latest, Option.bind prev record_time) with
    | Some (_, cur), Some (_, p) -> pp_delta cur p
    | _ -> "");
  (match prev with
  | Some p -> Printf.printf "  prev:   %s\n" (describe p)
  | None -> ());
  (* Counter drift: the latest run's counters against the previous
     run's, changed entries only — constant counters are noise here. *)
  match prev with
  | None -> ()
  | Some p ->
    let prev_counters = field_counters p in
    List.iter
      (fun (k, v) ->
        match List.assoc_opt k prev_counters with
        | Some pv when pv <> v ->
          Printf.printf "  counter %-32s %d -> %d%s\n" k pv v
            (if pv > 0 then
               Printf.sprintf " (%+.1f%%)"
                 ((float_of_int v /. float_of_int pv -. 1.) *. 100.)
             else "")
        | _ -> ())
      (field_counters latest)

(* Bench baselines (BENCH_*.json): case name -> ns_per_run. *)
let baseline_entries path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Obs_json.of_string s with
  | Error e -> failwith (Printf.sprintf "%s: %s" path e)
  | Ok j -> (
    match Obs_json.member "results" j with
    | Some (Obs_json.Obj fields) ->
      List.filter_map
        (fun (name, entry) ->
          Option.map (fun ns -> (name, ns)) (field_float "ns_per_run" entry))
        fields
    | _ -> failwith (Printf.sprintf "%s: no results object" path))

let compare_against_baselines ~baselines records =
  let latest_ns = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match (field_string "case" r, field_float "ns_per_run" r) with
      | Some case, Some ns -> Hashtbl.replace latest_ns case ns
      | _ -> ())
    records;
  let compared = ref 0 in
  List.iter
    (fun (name, base) ->
      match Hashtbl.find_opt latest_ns name with
      | Some ns when base > 0. ->
        incr compared;
        Printf.printf "  %-48s %10.3f ms/run  baseline %10.3f%s\n" name (ns /. 1e6)
          (base /. 1e6)
          (pp_delta ~what:"baseline" ns base)
      | _ -> ())
    baselines;
  if !compared = 0 then
    Printf.printf "  (no ledger bench records match the baseline cases)\n"

let report_run ledger againsts last =
  guarded @@ fun () ->
  let path =
    match (ledger, Obs_ledger.path ()) with
    | Some p, _ -> p
    | None, Some p -> p
    | None, None ->
      cli_error "LEDGER001"
        (Printf.sprintf "no ledger: pass --ledger FILE or set %s"
           Obs_ledger.env_var)
  in
  let records =
    match Obs_ledger.read_file path with
    | Ok rs -> rs
    | Error e -> cli_error "LEDGER002" e
  in
  let records =
    (* Most recent N, in chronological order. *)
    let n = List.length records in
    if n <= last then records
    else List.filteri (fun i _ -> i >= n - last) records
  in
  if records = [] then print_endline "ledger is empty"
  else begin
    Printf.printf "ledger: %s  (%d record%s shown)\n\n" path (List.length records)
      (if List.length records = 1 then "" else "s");
    let groups = ref [] in
    List.iter
      (fun r ->
        let g = record_group r in
        match List.assoc_opt g !groups with
        | Some rs -> rs := r :: !rs
        | None -> groups := !groups @ [ (g, ref [ r ]) ])
      records;
    List.iter
      (fun (g, rs) ->
        print_group g (List.rev !rs);
        print_newline ())
      !groups;
    match againsts with
    | [] -> ()
    | paths ->
      let baselines = List.concat_map baseline_entries paths in
      Printf.printf "against %s:\n" (String.concat ", " paths);
      compare_against_baselines ~baselines records
  end

let ledger_arg =
  let doc =
    Printf.sprintf "Ledger file to report on (default: \\$(b,%s))."
      Obs_ledger.env_var
  in
  Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE" ~doc)

let against_arg =
  let doc =
    "Compare the ledger's latest bench records against a $(b,BENCH_*.json) \
     baseline (repeatable)."
  in
  Arg.(value & opt_all string [] & info [ "against" ] ~docv:"FILE" ~doc)

let last_arg =
  let doc = "Only consider the most recent $(docv) ledger records." in
  Arg.(value & opt int 50 & info [ "last" ] ~docv:"N" ~doc)

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Diff run-ledger trajectories: group the JSONL records appended under \
          \\$(b,EMASK_LEDGER) by command and circuit, show runtime and counter \
          drift between consecutive runs, and compare bench records against \
          committed BENCH_*.json baselines")
    Term.(const report_run $ ledger_arg $ against_arg $ last_arg)

let () =
  let info =
    Cmd.info "emask" ~version:"1.0.0"
      ~doc:"Masking timing errors on speed-paths in logic circuits (DATE 2009)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; lint_cmd; spcf_cmd; paths_cmd; protect_cmd; eco_cmd;
            wearout_cmd; trace_cmd; fuzz_cmd; report_cmd;
          ]))
