(* Near-critical structural path enumeration.

   A structural (topological) path is a chain of signals from a primary
   input to a primary output; its length is the sum of the driving-gate
   delays along it. The enumerator lists, per primary output and in a
   deterministic order, every path whose length exceeds
   (1 - band) * Delta — the near-critical band that functional
   sensitization analysis then classifies path by path.

   The walk is a backward DFS from each output. At signal [s] with
   [suffix] delay already accumulated on the partial path above it, the
   subtree can contribute a qualifying path iff
   arrival(s) + suffix > target + eps: [arrival s] is the exact maximum
   prefix length ending at [s], so the bound is admissible (no
   qualifying path is missed) and exact (every surviving leaf emits a
   path above the target — the DFS only descends into fanins that still
   satisfy the bound, and the maximum is attained by at least one of
   them). Path counts are exponential in the worst case, so enumeration
   stops — marked, never silently — at [max_paths]. *)

type path = {
  output : string;  (** primary-output name the path terminates in *)
  signals : Network.signal array;  (** primary input first, output last *)
  length : float;  (** sum of gate delays along the path *)
}

type t = {
  band : float;
  target : float;  (** (1 - band) * Delta *)
  paths : path list;  (** grouped by output, outputs in declaration order *)
  truncated : bool;  (** enumeration stopped at the [max_paths] cap *)
}

exception Capped

let enumerate ?(band = 0.1) ?(max_paths = 4096) sta =
  if not (band >= 0. && band <= 1.) then
    invalid_arg "Paths.enumerate: band must be in [0, 1]";
  if max_paths < 1 then invalid_arg "Paths.enumerate: max_paths must be positive";
  let net = Mapped.network (Sta.circuit sta) in
  let delta = Sta.delta sta in
  let target = (1. -. band) *. delta in
  let acc = ref [] and count = ref 0 and truncated = ref false in
  let emit output rev_tail length =
    if !count >= max_paths then begin
      truncated := true;
      raise Capped
    end;
    incr count;
    (* Signals are prepended as the DFS descends, so the accumulated
       list is already input-first, output-last. *)
    acc := { output; signals = Array.of_list rev_tail; length } :: !acc
  in
  (* [suffix] is the delay of every gate strictly below [s] on the
     partial path (the output side); [rev_tail] lists those signals,
     deepest first, with [s] not yet included. *)
  let rec visit output s ~suffix ~rev_tail =
    if Sta.arrival sta s +. suffix > target +. Sta.eps then begin
      let rev_tail = s :: rev_tail in
      match Network.node_of net s with
      | None -> emit output rev_tail suffix
      | Some nd ->
        let suffix = suffix +. Sta.delay sta s in
        (* A gate wired to the same signal on several pins contributes
           one signal path; sensitization treats all pins of the signal
           together, so duplicates are skipped (first occurrence kept). *)
        Array.iteri
          (fun i f ->
            let dup = ref false in
            for j = 0 to i - 1 do
              if nd.Network.fanins.(j) = f then dup := true
            done;
            if not !dup then visit output f ~suffix ~rev_tail)
          nd.Network.fanins
    end
  in
  (try
     Array.iter
       (fun (name, s) -> visit name s ~suffix:0. ~rev_tail:[])
       (Network.outputs net)
   with Capped -> ());
  { band; target; paths = List.rev !acc; truncated = !truncated }

let num_paths t = List.length t.paths

let to_string net p =
  Printf.sprintf "%s (%.3f)"
    (String.concat " -> "
       (Array.to_list (Array.map (Network.name_of net) p.signals)))
    p.length
