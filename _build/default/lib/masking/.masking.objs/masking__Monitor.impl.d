lib/masking/monitor.ml: Array Format Hashtbl List Mapped Network Sta Synthesis Tsim Util
