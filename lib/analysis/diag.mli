(** The diagnostics engine of the static-analysis layer: stable check
    codes, severity levels, source locations threaded from the BLIF
    parser, and text / JSON reporters.

    Check-code catalogue (stable identifiers; see DESIGN.md §9):

    - [BLIF001] parse error
    - [NET001] combinational cycle
    - [NET002] undriven signal
    - [NET003] multiply-driven signal
    - [NET004] unused primary input
    - [NET005] dead cone (logic unreachable from any primary output)
    - [NET006] constant-provable gate
    - [NET007] network has no primary outputs
    - [MAP001] internal node without a library cell
    - [STA001] Δ / per-output arrival inconsistency
    - [STA002] arrival-time monotonicity violation
    - [STA003] negative delay or arrival
    - [STA004] topologically-critical output carried only by provably
      false paths
    - [MASK001] masking circuit is intrusive (combined ≠ original)
    - [MASK002] timing-slack contract violated (< 20 % margin)
    - [MASK003] malformed output-mux insertion
    - [MASK004] indicator coverage / prediction-soundness gap
    - [MASK005] masking cover dominated by statically false paths *)

type severity = Info | Warning | Error

val severity_to_string : severity -> string
val severity_order : severity -> int
(** [Info] < [Warning] < [Error]. *)

type code =
  | Parse_error
  | Cycle
  | Undriven
  | Multi_driver
  | Unused_input
  | Dead_cone
  | Const_gate
  | No_outputs
  | Unmapped_gate
  | Sta_delta
  | Sta_monotone
  | Sta_negative
  | Sta_false_path
  | Mask_intrusive
  | Mask_slack
  | Mask_mux
  | Mask_coverage
  | Mask_false_paths

val code_id : code -> string
(** The stable identifier, e.g. ["NET001"]. *)

val code_name : code -> string
(** A short mnemonic, e.g. ["cycle"]. *)

val default_severity : code -> severity

val code_level : code -> string
(** The IR level the check runs at: ["BLIF"], ["Network"] or
    ["Mapped"] — the third column of the README catalogue table. *)

val code_meaning : code -> string
(** One-line meaning — the fourth column of the README catalogue
    table, pinned by a test so docs can't drift. *)

val all_codes : code list

type t = {
  code : code;
  severity : severity;
  loc : Blif.loc option;
  signal : string option;  (** the offending signal / output, if any *)
  message : string;
}

val diag : ?severity:severity -> ?loc:Blif.loc -> ?signal:string -> code -> string -> t
(** [diag code message] with the code's default severity. *)

val compare : t -> t -> int
(** Orders by descending severity, then source position, then code and
    signal — a stable presentation order. *)

val sort : t list -> t list

val count : severity -> t list -> int
val errors : t list -> t list
val max_severity : t list -> severity option

val exit_code : ?fail_on:severity -> t list -> int
(** The CLI exit-code policy: [2] if any error; [1] if [fail_on] is
    [Warning] (resp. [Info]) and a warning (resp. any diagnostic) is
    present; [0] otherwise. Default [fail_on] is [Error]. *)

val to_string : t -> string
(** One line: ["file.blif:3: error NET001 [cycle] (signal x): ..."]. *)

val summary : t list -> string
(** One line, e.g. ["2 errors, 1 warning"] or ["clean"]. *)

val print : out_channel -> t list -> unit
(** Sorted diagnostics, one per line, followed by the summary line. *)

val to_json : t -> Obs_json.t
val report_json : ?name:string -> t list -> Obs_json.t
(** [{"circuit": name?, "diagnostics": [...], "summary": {"errors": n,
    "warnings": n, "infos": n}}]. *)
