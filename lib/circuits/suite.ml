(* The named benchmark suite of the paper's Tables 1 and 2. Each entry is
   a synthetic stand-in with the paper's primary-input/-output counts and
   a node budget sized so the mapped gate count lands near the paper's
   (see DESIGN.md for the substitution rationale). Every circuit is
   deterministic in its per-circuit seed. *)

type entry = {
  ename : string;
  params : Generator.params;
  paper_gates : int; (* as reported in the paper's Table 2 *)
  table1 : bool; (* appears in Table 1 *)
}

let mk ?(table1 = false) ename n_pi n_po paper_gates ~nodes ~seed ~p_chain ~p_reuse =
  {
    ename;
    paper_gates;
    table1;
    params =
      {
        Generator.name = ename;
        n_pi;
        n_po;
        n_nodes = nodes;
        seed;
        p_chain;
        p_reuse;
        max_support = 14;
      };
  }

(* Node budgets are roughly paper_gates / 2.5 (SOP nodes expand to a few
   gates each when mapped); p_chain shapes depth, p_reuse fanout. *)
let all : entry list =
  [
    mk "i1" 25 16 33 ~nodes:14 ~seed:101 ~p_chain:0.30 ~p_reuse:0.15;
    mk "cmb" 16 4 13 ~nodes:6 ~seed:102 ~p_chain:0.30 ~p_reuse:0.15;
    mk "x2" 10 7 26 ~nodes:11 ~seed:103 ~p_chain:0.30 ~p_reuse:0.2;
    mk "cu" 14 11 26 ~nodes:11 ~seed:104 ~p_chain:0.25 ~p_reuse:0.2;
    mk "too_large" 38 3 230 ~nodes:90 ~seed:105 ~p_chain:0.40 ~p_reuse:0.2;
    mk "k2" 45 45 649 ~nodes:180 ~seed:106 ~p_chain:0.35 ~p_reuse:0.2;
    mk "alu2" 10 6 190 ~nodes:76 ~seed:107 ~p_chain:0.35 ~p_reuse:0.25;
    mk "alu4" 14 8 355 ~nodes:110 ~seed:108 ~p_chain:0.35 ~p_reuse:0.25;
    mk "apex4" 9 19 973 ~nodes:150 ~seed:109 ~p_chain:0.30 ~p_reuse:0.25;
    mk "apex6" 135 99 392 ~nodes:160 ~seed:110 ~p_chain:0.30 ~p_reuse:0.15;
    mk "frg1" 28 3 56 ~nodes:22 ~seed:111 ~p_chain:0.40 ~p_reuse:0.2;
    mk "C432" 36 7 95 ~nodes:38 ~seed:112 ~p_chain:0.40 ~p_reuse:0.2 ~table1:true;
    mk "C880" 60 26 180 ~nodes:72 ~seed:113 ~p_chain:0.35 ~p_reuse:0.2;
    mk "C2670" 233 140 369 ~nodes:150 ~seed:114 ~p_chain:0.30 ~p_reuse:0.15 ~table1:true;
    mk "sparc_ifu_dec" 131 146 556 ~nodes:230 ~seed:115 ~p_chain:0.30 ~p_reuse:0.15
      ~table1:true;
    mk "sparc_ifu_invctl" 212 72 312 ~nodes:125 ~seed:116 ~p_chain:0.30 ~p_reuse:0.15
      ~table1:true;
    mk "sparc_ifu_ifqdp" 882 987 1974 ~nodes:800 ~seed:117 ~p_chain:0.25 ~p_reuse:0.1;
    mk "sparc_ifu_dcl" 136 94 315 ~nodes:125 ~seed:118 ~p_chain:0.30 ~p_reuse:0.15;
    mk "lsu_stb_ctl" 182 169 810 ~nodes:330 ~seed:119 ~p_chain:0.25 ~p_reuse:0.12
      ~table1:true;
    mk "sparc_exu_ecl" 572 634 1515 ~nodes:620 ~seed:120 ~p_chain:0.25 ~p_reuse:0.1;
  ]

let table1_entries = List.filter (fun e -> e.table1) all

let find name =
  match List.find_opt (fun e -> e.ename = name) all with
  | Some e -> e
  | None -> (
    (* Fall back to a case-insensitive match so e.g. "c432" finds "C432". *)
    let fold = String.lowercase_ascii in
    match List.find_opt (fun e -> fold e.ename = fold name) all with
    | Some e -> e
    | None -> invalid_arg (Printf.sprintf "Suite.find: unknown benchmark %S" name))

let network e = Generator.generate e.params
let load name = network (find name)
let names = List.map (fun e -> e.ename) all
