(* Client-side plumbing for [emask client]: connect, ship one request,
   read one response.

   The client owns the filesystem boundary: a CIRCUIT argument that
   names a readable file is read here and shipped as inline text (with
   the path kept as the display name, so served output prints the same
   "circuit: PATH" line the one-shot CLI does); anything else is
   passed through as a suite-circuit name for the daemon to resolve. *)

type endpoint = Unix_sock of string | Tcp of string * int

let connect = function
  | Unix_sock path ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with Unix.Unix_error (e, _, _) ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise
         (Sys_error
            (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))));
    fd
  | Tcp (host, port) ->
    let addr =
      try
        (List.hd
           (Unix.getaddrinfo host (string_of_int port)
              [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]))
          .Unix.ai_addr
      with Failure _ -> Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
    in
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    (try Unix.connect fd addr
     with Unix.Unix_error (e, _, _) ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise
         (Sys_error
            (Printf.sprintf "cannot connect to %s:%d: %s" host port
               (Unix.error_message e))));
    fd

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The CIRCUIT argument, client-side: file contents travel with the
   request; suite names travel as names. *)
let circuit_of_spec spec =
  if Sys.file_exists spec then
    { Serve_jobs.spec; source = Some (read_file spec) }
  else { Serve_jobs.spec; source = None }

(* One round trip. The caller still owns rendering the response. *)
let roundtrip endpoint req =
  let fd = connect endpoint in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Serve_protocol.send_request fd req;
      Serve_protocol.recv_response fd)
