(* Tree reporter. Children are stored most-recent-first; we print them
   in creation order, which follows program phase order and so reads as
   a timeline. *)

let self_time (s : Obs.span) =
  let child_total =
    List.fold_left (fun acc (c : Obs.span) -> acc +. c.Obs.total) 0. s.Obs.children
  in
  Float.max 0. (s.Obs.total -. child_total)

let rec pp_span fmt ~indent (s : Obs.span) =
  Format.fprintf fmt "%s%-*s total %8.3fms  self %8.3fms  calls %d@,"
    (String.make indent ' ')
    (Stdlib.max 1 (42 - indent))
    s.Obs.sname (1e3 *. s.Obs.total)
    (1e3 *. self_time s)
    s.Obs.calls;
  List.iter (pp_span fmt ~indent:(indent + 2)) (List.rev s.Obs.children)

let pp_histogram fmt (name, (st : Obs.hist_stats)) =
  let mean = if st.Obs.hn = 0 then 0. else float_of_int st.Obs.hsum /. float_of_int st.Obs.hn in
  Format.fprintf fmt "  %-40s n %-8d max %-8d mean %.1f  " name st.Obs.hn st.Obs.hmax mean;
  List.iter
    (fun (lo, count) -> Format.fprintf fmt "[>=%d:%d]" lo count)
    st.Obs.hbuckets;
  Format.fprintf fmt "@,"

let pp fmt () =
  let r = Obs.root () in
  Format.fprintf fmt "@[<v>";
  if r.Obs.children <> [] then begin
    Format.fprintf fmt "== spans ==@,";
    List.iter (pp_span fmt ~indent:2) (List.rev r.Obs.children)
  end;
  (match Obs.registered_counters () with
  | [] -> ()
  | counters ->
    Format.fprintf fmt "== counters ==@,";
    List.iter
      (fun (name, v) -> Format.fprintf fmt "  %-40s %d@," name v)
      counters);
  (match Obs.registered_histograms () with
  | [] -> ()
  | hists ->
    Format.fprintf fmt "== histograms ==@,";
    List.iter (pp_histogram fmt) hists);
  Format.fprintf fmt "@]"

let to_string () = Format.asprintf "%a" pp ()

let print oc =
  let fmt = Format.formatter_of_out_channel oc in
  Format.fprintf fmt "%a@." pp ()
