(* Tests for SPCF computation: the paper's worked example, brute-force
   cross-validation of the floating-mode semantics on small circuits,
   and the algebraic relations between the three algorithms. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Fig. 2 comparator ---------- *)

let test_comparator_exact () =
  let mc = Comparator.mapped () in
  let ctx = Spcf.Ctx.create ~model:Sta.Paper_units mc in
  check "delta" true (Spcf.Ctx.delta ctx = Comparator.paper_delta);
  let r = Spcf.Exact.short_path ctx ~target:Comparator.paper_target in
  check_int "one critical output" 1 (Spcf.Ctx.num_critical_outputs r);
  let expected = Bdd.of_cover ctx.Spcf.Ctx.man Comparator.paper_spcf in
  check "sigma = !a1 + !a0 b1" true (r.Spcf.Ctx.union = expected);
  check "count = 10" true
    (Extfloat.equal (Spcf.Ctx.count ctx r) (Extfloat.of_float 10.));
  (* Path-based agrees; node-based over-approximates. *)
  let rp = Spcf.Exact.path_based ctx ~target:Comparator.paper_target in
  check "path = short" true (rp.Spcf.Ctx.union = r.Spcf.Ctx.union);
  let rn = Spcf.Node_based.compute ctx ~target:Comparator.paper_target in
  check "node superset" true
    (Bdd.bimply ctx.Spcf.Ctx.man r.Spcf.Ctx.union rn.Spcf.Ctx.union = Bdd.btrue)

(* ---------- Brute-force cross-validation ---------- *)

(* For small circuits, enumerate every input pattern, compute its exact
   floating-mode arrival with [pattern_arrivals], and compare membership
   in Σ_y with the BDD produced by the algorithms. *)
let brute_force_check name net theta =
  let mc = Mapper.map net in
  let ctx = Spcf.Ctx.create mc in
  let target = Spcf.Ctx.target_of_theta ctx theta in
  let target_units = Spcf.Ctx.units_of_target target in
  let r = Spcf.Exact.short_path ctx ~target in
  let rn = Spcf.Node_based.compute ctx ~target in
  let n_in = Array.length (Network.inputs (Mapped.network mc)) in
  Alcotest.(check bool) (name ^ " small enough") true (n_in <= 16);
  let mapped_outputs = Network.outputs (Mapped.network mc) in
  for i = 0 to (1 lsl n_in) - 1 do
    let pattern = Array.init n_in (fun v -> i lsr v land 1 = 1) in
    let _, arrival = Spcf.Exact.pattern_arrivals ctx pattern in
    List.iter
      (fun (po_name, y, sigma) ->
        let late = arrival.(y) > target_units in
        let in_sigma = Bdd.eval ctx.Spcf.Ctx.man sigma pattern in
        if late <> in_sigma then
          Alcotest.failf "%s %s pattern %d: late=%b but sigma=%b" name po_name i
            late in_sigma;
        (* Node-based must contain every late pattern. *)
        (match
           List.find_opt (fun (n, _, _) -> n = po_name) rn.Spcf.Ctx.outputs
         with
        | Some (_, _, sigma_n) ->
          if late && not (Bdd.eval ctx.Spcf.Ctx.man sigma_n pattern) then
            Alcotest.failf "%s %s pattern %d: late but not in node-based SPCF"
              name po_name i
        | None -> if late then Alcotest.failf "%s: missing node-based output" name))
      r.Spcf.Ctx.outputs;
    (* Outputs that are NOT critical must never be late. *)
    Array.iter
      (fun (po_name, y) ->
        if not (List.exists (fun (n, _, _) -> n = po_name) r.Spcf.Ctx.outputs)
        then if arrival.(y) > target_units then
          Alcotest.failf "%s %s pattern %d: late at non-critical output" name
            po_name i)
      mapped_outputs
  done

let test_brute_force_comparator () =
  let net = Comparator.network () in
  let mc = Mapper.map net in
  let ctx = Spcf.Ctx.create ~model:Sta.Paper_units mc in
  let target_units = Spcf.Ctx.units_of_target Comparator.paper_target in
  let r = Spcf.Exact.short_path ctx ~target:Comparator.paper_target in
  let _, y, sigma = List.hd r.Spcf.Ctx.outputs in
  for i = 0 to 15 do
    let pattern = Array.init 4 (fun v -> i lsr v land 1 = 1) in
    let _, arrival = Spcf.Exact.pattern_arrivals ctx pattern in
    check "membership matches floating arrival" true
      (arrival.(y) > target_units = Bdd.eval ctx.Spcf.Ctx.man sigma pattern)
  done

let small_suite = [ "cmb"; "x2"; "cu"; "alu2" ]

let test_brute_force_small () =
  List.iter (fun name -> brute_force_check name (Suite.load name) 0.9) small_suite

let test_brute_force_other_theta () =
  List.iter
    (fun name -> brute_force_check (name ^ "@0.8") (Suite.load name) 0.8)
    [ "cmb"; "x2" ]

(* ---------- Algebraic relations on larger circuits ---------- *)

let relation_circuits = [ "i1"; "C432"; "C880"; "sparc_ifu_invctl"; "C2670" ]

let test_relations () =
  List.iter
    (fun name ->
      let net = Suite.load name in
      let mc = Mapper.map net in
      let ctx = Spcf.Ctx.create mc in
      let target = Spcf.Ctx.target_of_theta ctx 0.9 in
      let rs = Spcf.Exact.short_path ctx ~target in
      let rp = Spcf.Exact.path_based ctx ~target in
      let rn = Spcf.Node_based.compute ctx ~target in
      check (name ^ ": path = short") true (rp.Spcf.Ctx.union = rs.Spcf.Ctx.union);
      check (name ^ ": node superset") true
        (Bdd.bimply ctx.Spcf.Ctx.man rs.Spcf.Ctx.union rn.Spcf.Ctx.union
        = Bdd.btrue);
      (* Same critical outputs on all algorithms. *)
      let names r = List.map (fun (n, _, _) -> n) r.Spcf.Ctx.outputs in
      check (name ^ ": same outputs") true (names rs = names rn && names rs = names rp))
    relation_circuits

let test_monotone_in_target () =
  (* A larger target admits fewer speed-path patterns: Σ(t2) ⊆ Σ(t1) for
     t1 <= t2. *)
  let net = Suite.load "C432" in
  let mc = Mapper.map net in
  let ctx = Spcf.Ctx.create mc in
  let delta = Spcf.Ctx.delta ctx in
  let at theta =
    (Spcf.Exact.short_path ctx ~target:(theta *. delta)).Spcf.Ctx.union
  in
  let s80 = at 0.8 and s90 = at 0.9 and s95 = at 0.95 in
  check "0.9 within 0.8" true (Bdd.bimply ctx.Spcf.Ctx.man s90 s80 = Bdd.btrue);
  check "0.95 within 0.9" true (Bdd.bimply ctx.Spcf.Ctx.man s95 s90 = Bdd.btrue)

let test_floating_delay_bounds () =
  List.iter
    (fun name ->
      let net = Suite.load name in
      let mc = Mapper.map net in
      let ctx = Spcf.Ctx.create mc in
      Array.iter
        (fun (_, y) ->
          let fd = Spcf.Exact.floating_delay ctx y in
          check (name ^ ": floating <= structural") true
            (fd <= Sta.arrival ctx.Spcf.Ctx.sta y +. 1e-9))
        (Network.outputs (Mapped.network mc)))
    [ "cmb"; "x2"; "C432" ]

let test_floating_delay_exactness () =
  (* floating delay of the comparator's critical output is exactly 7 *)
  let mc = Comparator.mapped () in
  let ctx = Spcf.Ctx.create ~model:Sta.Paper_units mc in
  let _, y = (Network.outputs (Mapped.network mc)).(0) in
  check "comparator floating = 7" true
    (abs_float (Spcf.Exact.floating_delay ctx y -. 7.0) < 1e-9)

let test_empty_spcf_above_delta () =
  (* Nothing is slower than the critical path itself. *)
  let net = Suite.load "i1" in
  let mc = Mapper.map net in
  let ctx = Spcf.Ctx.create mc in
  let r = Spcf.Exact.short_path ctx ~target:(Spcf.Ctx.delta ctx) in
  check "no critical outputs at delta" true (r.Spcf.Ctx.outputs = [])

let test_runtime_reported () =
  let net = Suite.load "C432" in
  let mc = Mapper.map net in
  let ctx = Spcf.Ctx.create mc in
  let r = Spcf.Exact.short_path ctx ~target:(Spcf.Ctx.target_of_theta ctx 0.9) in
  check "runtime nonnegative" true (r.Spcf.Ctx.runtime >= 0.);
  check "algorithm label" true (r.Spcf.Ctx.algorithm = "short-path-based")

let test_units () =
  check_int "0.35 -> 35" 35 (Spcf.Ctx.units_of_delay 0.35);
  check_int "6.3 -> 630" 630 (Spcf.Ctx.units_of_target 6.3);
  check_int "floor semantics" 629 (Spcf.Ctx.units_of_target 6.2999)

let () =
  Alcotest.run "spcf"
    [
      ( "comparator",
        [
          Alcotest.test_case "paper SPCF" `Quick test_comparator_exact;
          Alcotest.test_case "brute force" `Quick test_brute_force_comparator;
        ] );
      ( "brute-force",
        [
          Alcotest.test_case "small circuits @0.9" `Slow test_brute_force_small;
          Alcotest.test_case "small circuits @0.8" `Slow test_brute_force_other_theta;
        ] );
      ( "relations",
        [
          Alcotest.test_case "node ⊇ path = short" `Slow test_relations;
          Alcotest.test_case "monotone in target" `Quick test_monotone_in_target;
          Alcotest.test_case "floating bounds" `Quick test_floating_delay_bounds;
          Alcotest.test_case "floating exactness" `Quick test_floating_delay_exactness;
          Alcotest.test_case "empty above delta" `Quick test_empty_spcf_above_delta;
          Alcotest.test_case "runtime reported" `Quick test_runtime_reported;
          Alcotest.test_case "time units" `Quick test_units;
        ] );
    ]
