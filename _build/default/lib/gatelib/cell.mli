(** Standard-cell library modeled on lsi_10k. *)

type t = {
  cname : string;
  arity : int;
  area : float;
  delay : float;
  input_cap : float;
  logic : Logic2.Cover.t;
}

val make : string -> int -> float -> float -> float -> string -> t
(** [make name arity area delay input_cap sop] with variables a,b,c,d. *)

val inv : t
val buf : t
val nd2 : t
val nd3 : t
val nd4 : t
val nr2 : t
val nr3 : t
val nr4 : t
val an2 : t
val an3 : t
val an4 : t
val or2 : t
val or3 : t
val or4 : t
val eo : t
val en : t
val aoi21 : t
val aoi22 : t
val oai21 : t
val oai22 : t

val mux21 : t
(** Pin convention: a = 0-input, b = 1-input, c = select. *)

val all : t list
val find : string -> t option

val and_cells : t array
(** AND cells indexed by [arity - 2] (2..4 inputs). *)

val or_cells : t array
val nand_cells : t array
val nor_cells : t array
