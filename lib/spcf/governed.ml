(* Budget-governed SPCF: exact -> node-based -> always-on.

   Each tier gets a *fresh* context. Falling back inside the exhausted
   manager would re-raise immediately (its node count already exceeds
   the quota), so tier 2 rebuilds from the circuit under a renewed
   budget — same deadline and quotas, fresh operation count — and the
   tier-3 floor rebuilds ungoverned, because a floor that can itself
   fail is not a floor. Soundness per tier is argued in DESIGN.md §11:
   every tier's Σ is a superset of the exact Σ, and any superset yields
   a masking circuit whose prediction is still correct. *)

type algorithm = Short_path | Path_based | Node_based

type tier = Exact | Node_fallback | Always_on

let tier_to_string = function
  | Exact -> "exact"
  | Node_fallback -> "node-based"
  | Always_on -> "always-on"

let c_fallback_node = Obs.counter "spcf.fallback.node_based"
let c_fallback_always = Obs.counter "spcf.fallback.always_on"
let h_outputs_exact = Obs.histogram "spcf.tier.exact.outputs"
let h_outputs_node = Obs.histogram "spcf.tier.node_based.outputs"
let h_outputs_always = Obs.histogram "spcf.tier.always_on.outputs"

let record_fallback = function
  | Exact -> ()
  | Node_fallback ->
    Obs.incr c_fallback_node;
    Obs.instant "spcf.fallback.node_based"
  | Always_on ->
    Obs.incr c_fallback_always;
    Obs.instant "spcf.fallback.always_on"

(* A governed run that never falls back must still show "fallbacks = 0"
   rather than nothing: register the ladder metrics the moment a real
   budget enters the picture. *)
let touch_ladder_metrics () =
  Obs.touch_counter c_fallback_node;
  Obs.touch_counter c_fallback_always;
  Obs.touch_histogram h_outputs_exact;
  Obs.touch_histogram h_outputs_node;
  Obs.touch_histogram h_outputs_always

let record_tier tier result =
  Obs.observe
    (match tier with
    | Exact -> h_outputs_exact
    | Node_fallback -> h_outputs_node
    | Always_on -> h_outputs_always)
    (Ctx.num_critical_outputs result)

let always_on ctx ~target =
  let outputs, runtime =
    Obs.timed "spcf.always-on" (fun () ->
        Array.to_list (Sta.critical_outputs ctx.Ctx.sta ~target)
        |> List.map (fun (name, y) -> (name, y, Bdd.btrue)))
  in
  Ctx.make_result ctx ~algorithm:"always-on" ~target outputs ~runtime

type outcome = {
  ctx : Ctx.t;
  result : Ctx.result;
  tier : tier;
  attempts : (tier * Budget.reason) list;
}

let run_tier ?jobs ~model ~budget ~theta algorithm circuit =
  (* A multi-job run of an Exact tier gets the shared-manager context,
     so workers grow one DAG instead of rebuilding private managers;
     Node_based is single-pass sequential and keeps the plain backend. *)
  let shared =
    (match jobs with Some j -> j > 1 | None -> false) && algorithm <> Node_based
  in
  let ctx = Ctx.create ~model ~budget ~shared circuit in
  let target = Ctx.target_of_theta ctx theta in
  let result =
    match algorithm with
    | Short_path -> Parallel.compute ?jobs ctx ~algorithm:Parallel.Short_path ~target
    | Path_based -> Parallel.compute ?jobs ctx ~algorithm:Parallel.Path_based ~target
    | Node_based -> Node_based.compute ctx ~target
  in
  (ctx, result)

let finish ~tier ~attempts (ctx, result) =
  (* The construction survived its budget; lift it so downstream
     consumers of the context (satcounts, verification) are not tripped
     by a quota the result already fits inside. *)
  Bdd.set_budget ctx.Ctx.man Budget.unlimited;
  record_tier tier result;
  { ctx; result; tier; attempts }

let floor_tier ~model ~theta ~attempts circuit =
  record_fallback Always_on;
  let ctx = Ctx.create ~model circuit in
  let target = Ctx.target_of_theta ctx theta in
  let result = always_on ctx ~target in
  record_tier Always_on result;
  { ctx; result; tier = Always_on; attempts }

let compute ?jobs ?(model = Sta.Library) ?(spec = Budget.no_limits) ~algorithm ~theta
    circuit =
  (* Resolve the job count once, up front: the context backend (shared
     vs sequential manager) depends on it. *)
  let jobs =
    Some (match jobs with Some j -> max 1 j | None -> Parallel.default_jobs ())
  in
  if Budget.is_no_limits spec then
    (* Ungoverned: exactly the plain computation, bit for bit. *)
    finish ~tier:Exact ~attempts:[]
      (run_tier ?jobs ~model ~budget:Budget.unlimited ~theta algorithm circuit)
  else begin
    touch_ladder_metrics ();
    let budget = Budget.instantiate spec in
    match run_tier ?jobs ~model ~budget ~theta algorithm circuit with
    | pair -> finish ~tier:Exact ~attempts:[] pair
    | exception Budget.Budget_exceeded Budget.Cancelled ->
      (* Cancellation is not exhaustion: nobody wants the result, so
         degrading to a cheaper tier would waste exactly the work the
         cancel was meant to stop. Abort instead. *)
      raise (Budget.Budget_exceeded Budget.Cancelled)
    | exception Budget.Budget_exceeded r1 ->
      let attempts = [ (Exact, r1) ] in
      if algorithm = Node_based then
        (* The request already was the tier-2 algorithm. *)
        floor_tier ~model ~theta ~attempts circuit
      else begin
        record_fallback Node_fallback;
        match
          run_tier ~model ~budget:(Budget.renew budget) ~theta Node_based circuit
        with
        | pair -> finish ~tier:Node_fallback ~attempts pair
        | exception Budget.Budget_exceeded Budget.Cancelled ->
          raise (Budget.Budget_exceeded Budget.Cancelled)
        | exception Budget.Budget_exceeded r2 ->
          floor_tier ~model ~theta ~attempts:(attempts @ [ (Node_fallback, r2) ])
            circuit
      end
  end
