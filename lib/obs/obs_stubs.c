/* Monotonic clock for Obs.now: seconds (as a double) from an arbitrary
   fixed origin. Spans and reported runtimes only ever use differences
   of this value, so the origin does not matter — what matters is that
   the clock cannot step backwards under NTP adjustment, which
   gettimeofday can. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>

#if defined(_WIN32)

#include <windows.h>

CAMLprim value emask_obs_monotonic_now(value unit)
{
  LARGE_INTEGER freq, count;
  (void)unit;
  QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&count);
  return caml_copy_double((double)count.QuadPart / (double)freq.QuadPart);
}

#else

#include <time.h>

CAMLprim value emask_obs_monotonic_now(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + 1e-9 * (double)ts.tv_nsec);
}

#endif
