lib/gatelib/cell.ml: Array Char Hashtbl List Logic2 Printf
