(** The pass library of the static-analysis layer. Each pass is a pure
    function from an IR to a list of diagnostics; the {!Lint} module
    composes them into the standard pipelines.

    Source-level passes run on the raw {!Blif.source} form — the only
    place cycles, undriven and multiply-driven signals can even be
    represented, since {!Network.t} is acyclic and fully driven by
    construction. Network- and mapped-level passes run on elaborated
    IRs and catch semantic defects (dead logic, provable constants,
    timing inconsistencies). *)

(** {1 Source-level passes (raw BLIF)} *)

val source_multi_driver : Blif.source -> Diag.t list
(** NET003: a signal driven by two [.names] blocks, a [.names] block
    driving a declared input, or an input declared twice. *)

val source_undriven : Blif.source -> Diag.t list
(** NET002: a signal referenced as a fanin or declared as an output
    with no driver and no input declaration. *)

val source_cycles : Blif.source -> Diag.t list
(** NET001: combinational cycles, one diagnostic per strongly connected
    component of the driver graph (Tarjan). *)

val source_structure : Blif.source -> Diag.t list
(** NET004 unused inputs, NET005 dead cones, NET007 no outputs. *)

(** {1 Network-level passes} *)

val net_no_outputs : Network.t -> Diag.t list
val net_unused_inputs : Network.t -> Diag.t list
val net_dead_cones : Network.t -> Diag.t list

val net_constants : Network.t -> bool option array
(** Bounded constant propagation over the SOP covers ({!Logic2.Cover}
    cofactoring): [Some v] when the signal provably evaluates to [v]
    for every input assignment. *)

val net_const_gates : Network.t -> Diag.t list
(** NET006: internal nodes whose function is provably constant. *)

(** {1 Mapped-level passes} *)

val mapped_unmapped_gates : Mapped.t -> Diag.t list
(** MAP001: internal nodes with no library cell attached. *)

val sta_consistency : ?model:Sta.delay_model -> Mapped.t -> Diag.t list
(** STA001/STA002/STA003: Δ agrees with the maximum per-output arrival
    (Δ_y consistency) and is attained; arrival times are monotone along
    fanin edges; no negative delays, arrivals or end-of-path slacks. *)

val sensitization : Sensitization.report -> Diag.t list
(** STA004: an output whose every near-critical path proved statically
    false; MASK005: at least half of all near-critical paths proved
    false. Both advisory ([Warning]) and suppressed entirely when the
    report's enumeration truncated. *)
