(* Standard pass pipelines, and the pre-flight gate used by the CLI
   entry points. *)

let source src =
  Obs.with_span "lint.source" @@ fun () ->
  Passes.source_multi_driver src @ Passes.source_undriven src
  @ Passes.source_cycles src @ Passes.source_structure src

let network net =
  Obs.with_span "lint.network" @@ fun () ->
  Passes.net_no_outputs net @ Passes.net_unused_inputs net
  @ Passes.net_dead_cones net @ Passes.net_const_gates net

let mapped ?model mc =
  Obs.with_span "lint.mapped" @@ fun () ->
  network (Mapped.network mc)
  @ Passes.mapped_unmapped_gates mc
  @ Passes.sta_consistency ?model mc

let masking ?margin m =
  Obs.with_span "lint.masking" @@ fun () ->
  Contract.check ?margin m
  @ Passes.mapped_unmapped_gates m.Masking.Synthesis.combined
  @ Passes.sta_consistency
      ~model:m.Masking.Synthesis.options.Masking.Synthesis.delay_model
      m.Masking.Synthesis.combined

let preflight_source src =
  Obs.with_span "lint.preflight" @@ fun () ->
  Diag.errors
    (Passes.source_multi_driver src @ Passes.source_undriven src
   @ Passes.source_cycles src @ Passes.source_structure src)

let preflight net =
  Obs.with_span "lint.preflight" @@ fun () -> Diag.errors (Passes.net_no_outputs net)

exception Gate_failed of string

(* The raising form of the preflight gate: long-running callers (the
   serve daemon) must translate a bad circuit into a per-request
   diagnostic, not a process exit. *)
let gate_check ~what diags =
  match Diag.errors diags with
  | [] -> ()
  | errs ->
    raise
      (Gate_failed
         (Printf.sprintf "%s: %s — run `emask lint` for details" what
            (Diag.summary errs)))

let gate ~what diags =
  try gate_check ~what diags
  with Gate_failed msg ->
    Printf.eprintf "emask: %s\n%!" msg;
    exit 2
