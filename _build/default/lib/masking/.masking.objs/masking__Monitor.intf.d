lib/masking/monitor.mli: Format Synthesis
