lib/sim/power.mli: Mapped
