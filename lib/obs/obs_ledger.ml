(* Persistent run ledger: one JSONL record per CLI invocation.

   When EMASK_LEDGER names a file, every instrumented binary appends a
   single self-describing JSON line when it finishes — the command, its
   argv, whatever run facts the command noted along the way (circuit
   hash, jobs, landed tier, runtime, ns/run), and the final counter
   registry. Appending a line is the whole protocol: the ledger is
   greppable, survives crashes of later runs, and `emask report` can
   diff trajectories across days of runs without any daemon.

   Records are stamped with wall-clock epoch seconds (CLOCK_REALTIME —
   the one place the monotonic span clock is wrong, because ledger rows
   must order across process restarts and reboots). *)

external realtime_now : unit -> float = "emask_obs_realtime_now"

let env_var = "EMASK_LEDGER"
let schema = "emask-ledger/1"

let path () =
  match Sys.getenv_opt env_var with None | Some "" -> None | Some p -> Some p

let enabled () = path () <> None

(* Run facts accumulated by the current invocation; [note] keeps the
   last value per key, in first-note order. Cleared by [append]. *)
let notes : (string * Obs_json.t) list ref = ref []

let note key v =
  if List.mem_assoc key !notes then
    notes := List.map (fun (k, old) -> (k, if k = key then v else old)) !notes
  else notes := !notes @ [ (key, v) ]

(* Epoch seconds -> ISO-8601 UTC, via the standard civil-from-days
   conversion (kept free of [Unix.gmtime] so stamps are identical on
   every libc). *)
let iso8601 t =
  let days = int_of_float (Float.floor (t /. 86400.)) in
  let secs = int_of_float (t -. (float_of_int days *. 86400.)) in
  let secs = min 86399 (max 0 secs) in
  let z = days + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = mp + if mp < 10 then 3 else -9 in
  let y = if m <= 2 then y + 1 else y in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" y m d (secs / 3600)
    (secs mod 3600 / 60) (secs mod 60)

let record ?notes:ns ~cmd () =
  let ts = realtime_now () in
  Obs_json.Obj
    ([
       ("schema", Obs_json.String schema);
       ("ts", Obs_json.Float ts);
       ("ts_iso", Obs_json.String (iso8601 ts));
       ("cmd", Obs_json.String cmd);
       ("argv", Obs_json.List (List.map (fun a -> Obs_json.String a)
                                 (Array.to_list Sys.argv)));
     ]
    @ (match ns with Some l -> l | None -> !notes)
    @ [
        ( "counters",
          Obs_json.Obj
            (List.map (fun (k, v) -> (k, Obs_json.Int v)) (Obs.registered_counters ()))
        );
      ])

(* The whole line goes to the kernel in one [Unix.single_write] on an
   O_APPEND descriptor: concurrent writers — worker domains of a
   server, or independent processes sharing one EMASK_LEDGER — each
   land a complete record at the (atomically repositioned) end of the
   file, so every ledger line parses. The old buffered-channel path
   flushed in chunks, which interleaved partial lines under exactly
   that load. POSIX only guarantees the single-shot atomicity for one
   write; the completion loop below is a last resort for short writes
   (ENOSPC territory), not the expected path. *)
let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref (Unix.single_write fd b 0 n) in
  while !off < n do
    off := !off + Unix.single_write fd b !off (n - !off)
  done

(* Append is best-effort by design: a read-only filesystem, a bad
   EMASK_LEDGER path, or a write that fails mid-record (ENOSPC, EIO)
   must not fail the run — or kill the server worker domain — it is
   trying to describe. Every [Unix_error] on the open/write/close path
   degrades to an stderr warning. *)
let append ?path:p ?notes:ns ~cmd () =
  match (match p with Some _ -> p | None -> path ()) with
  | None -> ()
  | Some file -> (
    let line = Obs_json.to_string (record ?notes:ns ~cmd ()) ^ "\n" in
    if ns = None then notes := [];
    let warn e = Printf.eprintf "emask: ledger: %s: %s\n%!" file (Unix.error_message e) in
    match Unix.openfile file [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 with
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (e, _, _) -> warn e)
        (fun () -> try write_all fd line with Unix.Unix_error (e, _, _) -> warn e)
    | exception Unix.Unix_error (e, _, _) -> warn e)

let read_file file =
  match open_in file with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let records = ref [] and line_no = ref 0 and err = ref None in
        (try
           while !err = None do
             let line = input_line ic in
             Stdlib.incr line_no;
             if String.trim line <> "" then
               match Obs_json.of_string line with
               | Ok v -> records := v :: !records
               | Error e ->
                 err := Some (Printf.sprintf "%s: line %d: %s" file !line_no e)
           done
         with End_of_file -> ());
        match !err with Some e -> Error e | None -> Ok (List.rev !records))
