lib/bdd/isop.ml: Bdd Hashtbl List Logic2
