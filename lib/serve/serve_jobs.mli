(** Shared job runners for the one-shot CLI and the [emask serve]
    daemon.

    Each [run_*] function is the body of the corresponding [emask]
    subcommand, rendering into a caller-supplied buffer and returning
    the exit code. Both frontends delegate here, so a served response
    is byte-identical to the one-shot CLI for the same inputs by
    construction. Runners never touch process-global state: ledger
    facts go through [note], circuits come from [lookup], and failures
    raise (the CLI maps them to stderr + exit 2 via its [guarded]
    wrapper, the server to a per-request error response). *)

type circuit = { spec : string; source : string option }
(** What to analyze. [spec] is the display name — the CLI's CIRCUIT
    argument — and [source] the BLIF text when the circuit came from a
    file ([emask client] reads the file and ships its text, so the
    daemon never needs the client's filesystem). [None] means [spec]
    names a built-in suite circuit. *)

type entry = {
  e_spec : string;
  e_source : string option;
  e_src : Blif.source option;  (** parsed raw source for inline circuits *)
  e_net : Network.t;
  e_mc : Mapped.t Lazy.t;  (** mapping is deferred; forced under the "map" span *)
}
(** A loaded circuit: the unit of caching in the server's LRU. *)

type lookup = circuit -> entry
(** How runners obtain a loaded circuit: [load_entry] composed with
    whatever memoization the frontend provides. *)

type note = (string -> Obs_json.t -> unit) option
(** Ledger-fact sink; [None] when no ledger is configured (runners
    then skip the digest work, like the one-shot CLI). *)

val load_entry : circuit -> entry
(** Parse / suite-load under the "load" span, with the cheap error-only
    preflight gate — raises {!Analysis.Lint.Gate_failed} on a bad
    circuit. *)

val note_circuit : note -> string -> Network.t -> unit
(** Note the circuit name and content digest (skipped when [note] is
    [None]). *)

val note_run : note -> theta:float -> jobs:int -> unit

val report_synthesis_degradation : Buffer.t -> Masking.Synthesis.t -> unit
(** The "budget: degraded to ..." line, also needed by CLI commands
    that synthesize outside these runners ([emask wearout]). *)

type lint_req = {
  l_fail_on : Analysis.Diag.severity;
  l_json : bool;
  l_contract : bool;
  l_theta : float;
  l_jobs : int;
}

val run_lint : note:note -> Buffer.t -> circuit -> lint_req -> int
(** Lint does its own raw-source staging (diagnosing circuits the
    loader would reject is its job), so it takes the circuit directly
    rather than a [lookup]. *)

type spcf_req = {
  s_theta : float;
  s_algorithm : Spcf.Governed.algorithm;
  s_jobs : int;
}

val run_spcf :
  note:note -> Buffer.t -> lookup -> circuit -> spcf_req -> Budget.spec -> int

type paths_req = {
  p_band : float;
  p_max_paths : int;
  p_jobs : int;
  p_json : bool;
  p_fail_on : Analysis.Diag.severity;
}

val run_paths :
  note:note -> Buffer.t -> lookup -> circuit -> paths_req -> Budget.spec -> int

type protect_req = { m_theta : float; m_jobs : int; m_prune : bool }

val run_protect :
  note:note ->
  ?out:string ->
  Buffer.t ->
  lookup ->
  circuit ->
  protect_req ->
  Budget.spec ->
  int
(** [?out] writes the combined circuit as BLIF — a CLI-only affordance
    (the daemon never writes client files). *)

type eco_req = {
  c_edits_name : string;  (** display name (the CLI's --edits path) *)
  c_edits : string;  (** edit-sequence text *)
  c_theta : float;
  c_band : float option;
  c_jobs : int;
  c_json : bool;
  c_check : bool;
}

type snapshot_for =
  theta:float -> band:float option -> jobs:int -> budget:Budget.t -> Eco.design -> Eco.t
(** The baseline snapshot is the expensive, circuit-pure half of an
    eco job; the server memoizes it per (circuit, theta, band) through
    this hook. *)

val run_eco :
  note:note ->
  ?snapshot_for:snapshot_for ->
  Buffer.t ->
  lookup ->
  circuit ->
  eco_req ->
  Budget.spec ->
  int

val error_code : exn -> (string * string) option
(** The shared exception classification: [Some (code, message)] for
    the failures both frontends surface as "error CODE: MESSAGE"
    (parse, I/O, argument, budget), [None] for everything else.
    {!Analysis.Lint.Gate_failed} keeps its own codeless CLI rendering
    and is deliberately not listed. *)
