(** Razor-style double-sampling error detection with replay (Ernst et
    al. [8]) — the baseline the paper positions itself against. The
    model pays a replay penalty per detection and misses transitions
    later than the guard band; masking pays neither cost. *)

type scheme = {
  escaped_rate : float;
  repair_rate : float;
  throughput : float;
  area_overhead_pct : float;
}

type comparison = {
  factor : float;
  raw_error_rate : float;
  razor : scheme;
  masking : scheme;
}

val razor_cell_area : float

val compare_schemes :
  ?trials:int ->
  ?seed:int ->
  ?guard_band_pct:float ->
  ?replay:float ->
  ?factors:float list ->
  Synthesis.t ->
  comparison list

val pp : Format.formatter -> comparison -> unit
