lib/logic2/sop.mli: Cover Cube
