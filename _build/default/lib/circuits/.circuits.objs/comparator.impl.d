lib/circuits/comparator.ml: Logic2 Mapper Network
