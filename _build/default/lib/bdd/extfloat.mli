(** Non-negative reals [m × 2^e2] with an unbounded binary exponent, for
    minterm counts beyond IEEE-double range (up to 2^max_int). *)

type t

val zero : t
val one : t
val is_zero : t -> bool
val of_float : float -> t
val pow2 : int -> t
val mul_pow2 : t -> int -> t
val add : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val lt : t -> t -> bool
val leq : t -> t -> bool

val to_float : t -> float
(** May overflow to [infinity] for very large values. *)

val log2 : t -> float
val log10 : t -> float

val to_string : t -> string
(** Scientific notation (e.g. ["8.0e66"]), exact for huge exponents. *)

val pp : Format.formatter -> t -> unit
