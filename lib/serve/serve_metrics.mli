(** Process-wide counters for the [emask serve] daemon.

    Unlike the per-domain Obs registry (which merges at domain join),
    these are plain atomics shared by every worker domain and the
    accept loop, so a /metrics scrape sees live values. They render
    through {!Obs_prom.exposition}. *)

type t

val requests : t  (** frames that parsed far enough to carry a job *)

val accepted : t  (** jobs admitted to the queue *)

val rejected_queue : t  (** jobs refused because the queue was full *)

val rejected_proto : t  (** malformed or invalid-parameter requests *)

val errors : t  (** jobs that failed with a classified error *)

val budget_exhausted : t  (** jobs aborted by their resource budget *)

val cancelled : t  (** jobs aborted because the client disconnected *)

val cache_hits : t
(** circuit served from the LRU without re-parse / re-map *)

val cache_misses : t

val cache_evictions : t

val snap_hits : t  (** eco baseline snapshots reused from the cache *)

val snap_misses : t

val incr : t -> unit

val add : t -> int -> unit

val get : t -> int

val snapshot : unit -> (string * int) list
(** All counters in registration order, for
    [Obs_prom.exposition (snapshot ())]. *)

val reset : unit -> unit
(** Zero every counter (test isolation within one process). *)
