(* Technology-independent Boolean network: a DAG of nodes, each carrying a
   sum-of-products local function over its fanins. Acyclicity holds by
   construction: a node's fanins must exist before the node is added. *)

type signal = int

type node = { fanins : signal array; func : Logic2.Cover.t }

type t = {
  mutable signal_name : string array;
  mutable def : node option array;
  mutable count : int;
  index : (string, signal) Hashtbl.t;
  mutable inputs_rev : signal list;
  mutable outputs_rev : (string * signal) list;
}

let create () =
  {
    signal_name = Array.make 64 "";
    def = Array.make 64 None;
    count = 0;
    index = Hashtbl.create 256;
    inputs_rev = [];
    outputs_rev = [];
  }

let num_signals t = t.count

let grow t =
  let cap = Array.length t.signal_name in
  let cap' = cap * 2 in
  t.signal_name <- Array.init cap' (fun i -> if i < cap then t.signal_name.(i) else "");
  t.def <- Array.init cap' (fun i -> if i < cap then t.def.(i) else None)

let fresh t name =
  if Hashtbl.mem t.index name then
    invalid_arg (Printf.sprintf "Network: duplicate signal %S" name);
  if t.count >= Array.length t.signal_name then grow t;
  let s = t.count in
  t.signal_name.(s) <- name;
  t.count <- s + 1;
  Hashtbl.add t.index name s;
  s

let add_input t name =
  let s = fresh t name in
  t.inputs_rev <- s :: t.inputs_rev;
  s

let add_node t name ~fanins ~func =
  if Logic2.Cover.num_vars func <> Array.length fanins then
    invalid_arg "Network.add_node: function arity must match fanin count";
  Array.iter
    (fun f ->
      if f < 0 || f >= t.count then invalid_arg "Network.add_node: undefined fanin")
    fanins;
  let s = fresh t name in
  t.def.(s) <- Some { fanins; func };
  s

let mark_output t ?name s =
  if s < 0 || s >= t.count then invalid_arg "Network.mark_output: bad signal";
  let name = match name with Some n -> n | None -> t.signal_name.(s) in
  t.outputs_rev <- (name, s) :: t.outputs_rev

let find t name = Hashtbl.find_opt t.index name
let name_of t s = t.signal_name.(s)
let node_of t s = t.def.(s)
let is_input t s = t.def.(s) = None

let fanins t s = match t.def.(s) with Some n -> n.fanins | None -> [||]
let func t s =
  match t.def.(s) with
  | Some n -> n.func
  | None -> invalid_arg "Network.func: signal is a primary input"

let inputs t = Array.of_list (List.rev t.inputs_rev)
let outputs t = Array.of_list (List.rev t.outputs_rev)
let output_signals t = Array.map snd (outputs t)

(* Position of each input signal in the primary-input order. *)
let input_positions t =
  let ins = inputs t in
  let pos = Array.make t.count (-1) in
  Array.iteri (fun i s -> pos.(s) <- i) ins;
  pos

(* Signals in a valid topological order (construction order is one). *)
let topo_order t = Array.init t.count (fun s -> s)

let fanouts t =
  let out = Array.make t.count [] in
  for s = 0 to t.count - 1 do
    match t.def.(s) with
    | None -> ()
    | Some n -> Array.iter (fun f -> out.(f) <- s :: out.(f)) n.fanins
  done;
  Array.map List.rev out

(* Transitive fanin cone of the given roots (roots included). *)
let cone t roots =
  let in_cone = Array.make t.count false in
  let rec visit s =
    if not in_cone.(s) then begin
      in_cone.(s) <- true;
      match t.def.(s) with
      | None -> ()
      | Some n -> Array.iter visit n.fanins
    end
  in
  List.iter visit roots;
  in_cone

let num_nodes t =
  let c = ref 0 in
  for s = 0 to t.count - 1 do
    if t.def.(s) <> None then incr c
  done;
  !c

let num_literals t =
  let c = ref 0 in
  for s = 0 to t.count - 1 do
    match t.def.(s) with
    | None -> ()
    | Some n -> c := !c + Logic2.Cover.num_literals n.func
  done;
  !c

(* Evaluate all signals for one primary-input assignment (indexed by PI
   position). *)
let eval t pi_values =
  let ins = inputs t in
  if Array.length pi_values <> Array.length ins then
    invalid_arg "Network.eval: wrong number of input values";
  let value = Array.make t.count false in
  Array.iteri (fun i s -> value.(s) <- pi_values.(i)) ins;
  for s = 0 to t.count - 1 do
    match t.def.(s) with
    | None -> ()
    | Some n ->
      let local = Array.map (fun f -> value.(f)) n.fanins in
      value.(s) <- Logic2.Cover.eval n.func local
  done;
  value

let eval_outputs t pi_values =
  let value = eval t pi_values in
  Array.map (fun (_, s) -> value.(s)) (outputs t)

(* Global BDDs for every signal; BDD variable i is the i-th primary
   input. [shared] selects the concurrent manager backend so domain
   workers can keep growing the same DAG afterwards. *)
let to_bdds ?(budget = Budget.unlimited) ?(shared = false) t =
  let ins = inputs t in
  let nvars = Array.length ins in
  let man =
    if shared then Bdd.create_shared ~nvars () else Bdd.create ~nvars ()
  in
  Bdd.set_budget man budget;
  let f = Array.make t.count Bdd.bfalse in
  Array.iteri (fun i s -> f.(s) <- Bdd.var man i) ins;
  for s = 0 to t.count - 1 do
    match t.def.(s) with
    | None -> ()
    | Some n ->
      let local = Array.map (fun x -> f.(x)) n.fanins in
      f.(s) <- Bdd.cover_with man n.func local
  done;
  (man, f)

(* A fresh network containing only the transitive fanin cones of the
   requested outputs (named subset of this network's outputs). *)
let extract_cone t keep_outputs =
  let outs = outputs t in
  let chosen =
    List.map
      (fun name ->
        match Array.find_opt (fun (n, _) -> n = name) outs with
        | Some (_, s) -> (name, s)
        | None -> invalid_arg (Printf.sprintf "extract_cone: no output %S" name))
      keep_outputs
  in
  let in_cone = cone t (List.map snd chosen) in
  let t' = create () in
  let remap = Array.make t.count (-1) in
  for s = 0 to t.count - 1 do
    if in_cone.(s) then
      remap.(s) <-
        (match t.def.(s) with
        | None -> add_input t' t.signal_name.(s)
        | Some n ->
          add_node t' t.signal_name.(s)
            ~fanins:(Array.map (fun f -> remap.(f)) n.fanins)
            ~func:n.func)
  done;
  List.iter (fun (name, s) -> mark_output t' ~name remap.(s)) chosen;
  t'

(* Exhaustive equivalence on BDDs: outputs matched by name, inputs by
   name too (missing inputs on either side are rejected). *)
let equivalent a b =
  let a_ins = Array.map (name_of a) (inputs a)
  and b_ins = Array.map (name_of b) (inputs b) in
  let sorted x = List.sort compare (Array.to_list x) in
  if sorted a_ins <> sorted b_ins then false
  else begin
    let man = Bdd.create ~nvars:(Array.length a_ins) () in
    (* Common variable order: a's input order; b maps by name. *)
    let var_of_name = Hashtbl.create 16 in
    Array.iteri (fun i n -> Hashtbl.replace var_of_name n i) a_ins;
    let bdds_of net =
      let f = Array.make (num_signals net) Bdd.bfalse in
      Array.iter
        (fun s -> f.(s) <- Bdd.var man (Hashtbl.find var_of_name (name_of net s)))
        (inputs net);
      Array.iter
        (fun s ->
          match node_of net s with
          | None -> ()
          | Some n ->
            f.(s) <- Bdd.cover_with man n.func (Array.map (fun x -> f.(x)) n.fanins))
        (topo_order net);
      f
    in
    let fa = bdds_of a and fb = bdds_of b in
    let outs_a = outputs a and outs_b = outputs b in
    let by_name outs name =
      Array.find_opt (fun (n, _) -> n = name) outs |> Option.map snd
    in
    Array.length outs_a = Array.length outs_b
    && Array.for_all
         (fun (name, sa) ->
           match by_name outs_b name with
           | Some sb -> fa.(sa) = fb.(sb)
           | None -> false)
         outs_a
  end

let pp fmt t =
  Format.fprintf fmt "network: %d inputs, %d outputs, %d nodes, %d literals"
    (Array.length (inputs t))
    (Array.length (outputs t))
    (num_nodes t) (num_literals t)
