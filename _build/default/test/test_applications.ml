(* Tests for the two runtime applications built on the masking circuit:
   wearout monitoring (aging sweeps) and trace-buffer window expansion. *)

let check = Alcotest.(check bool)

let test_monitor_consistency () =
  (* Internal consistency of the sweep: a logged event requires a raw
     capture error (e=1 implies the prediction equals the settled value,
     so a y/ỹ mismatch at the clock means y was mis-captured), and rates
     are probabilities. *)
  let net = Suite.load "i1" in
  let m = Masking.Synthesis.synthesize net in
  let samples =
    Masking.Monitor.aging_sweep ~trials:300 ~factors:[ 1.0; 1.1; 1.25 ] m
  in
  List.iter
    (fun (s : Masking.Monitor.sample) ->
      check "rates in range" true
        (List.for_all
           (fun x -> x >= 0. && x <= 1.)
           [ s.raw_error_rate; s.masked_error_rate; s.logged_rate; s.indicator_rate ]);
      check "logged implies raw" true (s.logged_rate <= s.raw_error_rate +. 1e-9))
    samples

let test_monitor_fresh_is_clean () =
  let net = Suite.load "C432" in
  let m = Masking.Synthesis.synthesize net in
  match Masking.Monitor.aging_sweep ~trials:300 ~factors:[ 1.0 ] m with
  | [ s ] ->
    check "no errors at nominal delays" true (s.Masking.Monitor.raw_error_rate = 0.);
    check "no masked errors at nominal delays" true
      (s.Masking.Monitor.masked_error_rate = 0.)
  | _ -> Alcotest.fail "one sample expected"

let test_monitor_masks_moderate_aging () =
  (* Within the protected band (degradation <= ~10% over the clock), the
     masked outputs stay clean while raw errors appear. *)
  let net = Suite.load "i1" in
  let m = Masking.Synthesis.synthesize net in
  let samples =
    Masking.Monitor.aging_sweep ~trials:600 ~factors:[ 1.2; 1.3 ] m
  in
  let total_raw =
    List.fold_left (fun acc (s : Masking.Monitor.sample) -> acc +. s.raw_error_rate) 0. samples
  in
  let total_masked =
    List.fold_left
      (fun acc (s : Masking.Monitor.sample) -> acc +. s.masked_error_rate)
      0. samples
  in
  check "aging produces raw errors" true (total_raw > 0.);
  check "masking removes them" true (total_masked = 0.)

let test_trace_buffer () =
  let net = Suite.load "C432" in
  let m = Masking.Synthesis.synthesize net in
  let r = Masking.Trace_buffer.selective_capture ~buffer_size:64 ~cycles:50_000 m in
  check "expansion >= 1" true (r.Masking.Trace_buffer.expansion >= 1.);
  check "window bounded by cycles" true
    (r.Masking.Trace_buffer.selective_window <= r.Masking.Trace_buffer.cycles_simulated);
  check "captures bounded by buffer" true
    (r.Masking.Trace_buffer.captures <= r.Masking.Trace_buffer.buffer_size);
  (* Deterministic in the seed. *)
  let r2 = Masking.Trace_buffer.selective_capture ~buffer_size:64 ~cycles:50_000 m in
  check "deterministic" true (r = r2)

let test_trace_buffer_sparse_is_better () =
  (* The sparser the SPCF, the larger the expansion. frg1's indicator
     rate is low; expansion should be substantial. *)
  let net = Suite.load "frg1" in
  let m = Masking.Synthesis.synthesize net in
  let r = Masking.Trace_buffer.selective_capture ~buffer_size:32 ~cycles:100_000 m in
  check "large expansion" true (r.Masking.Trace_buffer.expansion > 2.)

let () =
  Alcotest.run "applications"
    [
      ( "wearout-monitor",
        [
          Alcotest.test_case "consistency" `Slow test_monitor_consistency;
          Alcotest.test_case "fresh silicon clean" `Quick test_monitor_fresh_is_clean;
          Alcotest.test_case "masks moderate aging" `Slow test_monitor_masks_moderate_aging;
        ] );
      ( "trace-buffer",
        [
          Alcotest.test_case "selective capture" `Quick test_trace_buffer;
          Alcotest.test_case "sparse SPCF expands more" `Quick
            test_trace_buffer_sparse_is_better;
        ] );
    ]
