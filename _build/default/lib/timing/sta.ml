(* Static timing analysis over mapped circuits: arrival times, maximum
   downstream ("tail") delays, critical-path delay, and the θ-critical
   gate/output sets that drive SPCF computation. *)

let eps = 1e-9

type delay_model =
  | Unit  (** every gate has delay 1 *)
  | Paper_units  (** inverters 1, all other gates 2 — the Sec. 4.2 model *)
  | Library  (** per-cell pin-to-pin delay *)
  | Library_load of float  (** cell delay + slope × capacitive load *)

let gate_delays model circuit =
  let net = Mapped.network circuit in
  let n = Network.num_signals net in
  let loads = lazy (Mapped.loads circuit) in
  Array.init n (fun s ->
      match Mapped.cell_of circuit s with
      | None -> 0.
      | Some cell -> (
        match model with
        | Unit -> 1.
        | Paper_units -> if cell.Cell.cname = "IV" then 1. else 2.
        | Library -> cell.Cell.delay
        | Library_load slope ->
          cell.Cell.delay +. (slope *. (Lazy.force loads).(s))))

type t = {
  circuit : Mapped.t;
  model : delay_model;
  delay : float array; (* per signal: its driving gate's delay, 0 for PIs *)
  arrival : float array;
  tail : float array; (* max downstream gate-delay sum from this signal *)
  delta : float; (* critical path delay over primary outputs *)
}

let analyze ?(model = Library) circuit =
  let net = Mapped.network circuit in
  let n = Network.num_signals net in
  let delay = gate_delays model circuit in
  let arrival = Array.make n 0. in
  Array.iter
    (fun s ->
      match Network.node_of net s with
      | None -> ()
      | Some nd ->
        let worst =
          Array.fold_left (fun acc f -> Float.max acc arrival.(f)) 0. nd.Network.fanins
        in
        arrival.(s) <- worst +. delay.(s))
    (Network.topo_order net);
  let tail = Array.make n 0. in
  let fanouts = Network.fanouts net in
  let order = Network.topo_order net in
  for i = Array.length order - 1 downto 0 do
    let s = order.(i) in
    List.iter
      (fun g -> tail.(s) <- Float.max tail.(s) (delay.(g) +. tail.(g)))
      fanouts.(s)
  done;
  let delta =
    Array.fold_left
      (fun acc (_, s) -> Float.max acc arrival.(s))
      0. (Network.outputs net)
  in
  { circuit; model; delay; arrival; tail; delta }

let circuit t = t.circuit
let model t = t.model
let delta t = t.delta
let arrival t s = t.arrival.(s)
let tail t s = t.tail.(s)
let delay t s = t.delay.(s)

(* Slack of a signal against a target arrival time at the outputs. *)
let slack t ~target s = target -. t.arrival.(s) -. t.tail.(s)

(* Outputs at which at least one path longer than [target] terminates. *)
let critical_outputs t ~target =
  Array.to_list (Network.outputs (Mapped.network t.circuit))
  |> List.filter (fun (_, s) -> t.arrival.(s) > target +. eps)
  |> Array.of_list

(* Gates lying on some structural path longer than [target] — the static
   criticality marking of the node-based SPCF approach. *)
let critical_signals t ~target =
  let n = Network.num_signals (Mapped.network t.circuit) in
  Array.init n (fun s -> t.arrival.(s) +. t.tail.(s) > target +. eps)

(* One longest path, as signals from a primary input to an output. *)
let longest_path t =
  let net = Mapped.network t.circuit in
  let outs = Network.outputs net in
  let _, worst =
    Array.fold_left
      (fun ((best_a, _) as acc) (_, s) ->
        if t.arrival.(s) > best_a then (t.arrival.(s), s) else acc)
      (neg_infinity, -1) outs
  in
  let rec walk s acc =
    match Network.node_of net s with
    | None -> s :: acc
    | Some nd ->
      let want = t.arrival.(s) -. t.delay.(s) in
      let prev =
        Array.fold_left
          (fun found f ->
            match found with
            | Some _ -> found
            | None -> if Float.abs (t.arrival.(f) -. want) < eps then Some f else None)
          None nd.Network.fanins
      in
      (match prev with Some f -> walk f (s :: acc) | None -> s :: acc)
  in
  (walk worst [], t.delta)

let pp fmt t =
  Format.fprintf fmt "sta: delta=%.3f over %d gates" t.delta
    (Mapped.gate_count t.circuit)
