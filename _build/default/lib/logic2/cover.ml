(* Sum-of-products covers: a list of cubes over a common variable set.
   The constant-0 function is the empty cover; constant 1 contains the
   universe cube. Algorithms are the classical unate-recursive ones
   (Brayton et al., "Logic Minimization Algorithms for VLSI Synthesis"). *)

type t = { n : int; cubes : Cube.t list }

let zero n = { n; cubes = [] }
let one n = { n; cubes = [ Cube.universe n ] }

let of_cubes n cubes =
  List.iter
    (fun c ->
      if Cube.num_vars c <> n then invalid_arg "Cover.of_cubes: arity mismatch")
    cubes;
  { n; cubes }

let cubes t = t.cubes
let num_vars t = t.n
let num_cubes t = List.length t.cubes
let num_literals t =
  List.fold_left (fun acc c -> acc + Cube.num_literals c) 0 t.cubes

let is_zero t = t.cubes = []
let has_universe t = List.exists Cube.is_universe t.cubes

let eval t assignment = List.exists (fun c -> Cube.eval c assignment) t.cubes

let add_cube t c =
  if Cube.num_vars c <> t.n then invalid_arg "Cover.add_cube: arity mismatch";
  { t with cubes = c :: t.cubes }

let union a b =
  if a.n <> b.n then invalid_arg "Cover.union: arity mismatch";
  { n = a.n; cubes = a.cubes @ b.cubes }

let map_cubes f t = { t with cubes = List.filter_map f t.cubes }

(* Cofactor of a cover w.r.t. a single literal. *)
let cofactor t v ph = map_cubes (fun c -> Cube.cofactor c v ph) t

(* Cofactor of a cover w.r.t. a cube: drop cubes that conflict with it and
   strip the cube's literals from the rest. *)
let cofactor_cube t q =
  let cof c =
    if Cube.disjoint c q then None
    else begin
      let c' = ref c in
      List.iter (fun (v, _) -> c' := Cube.remove_var !c' v) (Cube.literals q);
      Some !c'
    end
  in
  map_cubes cof t

(* Remove cubes covered by another single cube of the list. *)
let single_cube_containment t =
  let cubes = List.sort_uniq (fun a b -> Cube.compare_by_literals a b) t.cubes in
  let keep c =
    not
      (List.exists (fun d -> (not (Cube.equal c d)) && Cube.covers d c) cubes)
  in
  { t with cubes = List.filter keep cubes }

(* Literal occurrence counts per variable, for binate-variable selection. *)
let occurrence_counts t =
  let pos = Array.make t.n 0 and neg = Array.make t.n 0 in
  let visit c =
    List.iter
      (fun (v, ph) -> if ph then pos.(v) <- pos.(v) + 1 else neg.(v) <- neg.(v) + 1)
      (Cube.literals c)
  in
  List.iter visit t.cubes;
  (pos, neg)

(* The most binate variable (appearing in both polarities), maximizing the
   smaller occurrence count then the total. None if the cover is unate. *)
let most_binate_var t =
  let pos, neg = occurrence_counts t in
  let best = ref None in
  for v = 0 to t.n - 1 do
    if pos.(v) > 0 && neg.(v) > 0 then begin
      let key = (min pos.(v) neg.(v), pos.(v) + neg.(v)) in
      match !best with
      | Some (_, k) when k >= key -> ()
      | _ -> best := Some (v, key)
    end
  done;
  Option.map fst !best

(* Unate covers are tautologies iff they contain the universe cube; the
   general case splits on the most binate variable. *)
let rec is_tautology t =
  if has_universe t then true
  else if is_zero t then false
  else
    match most_binate_var t with
    | None -> false
    | Some v -> is_tautology (cofactor t v true) && is_tautology (cofactor t v false)

(* cube ⊆ cover, possibly helped by a don't-care cover. *)
let covers_cube ?dc t c =
  let g = match dc with None -> t | Some d -> union t d in
  is_tautology (cofactor_cube g c)

let covers_cover ?dc t other = List.for_all (covers_cube ?dc t) other.cubes

let equivalent a b = covers_cover a b && covers_cover b a

(* Complement by Shannon expansion on the most binate variable, with
   single-cube containment to keep intermediate sizes in check. *)
let rec complement t =
  if is_zero t then one t.n
  else if has_universe t then zero t.n
  else
    match most_binate_var t with
    | Some v ->
      let c1 = complement (cofactor t v true)
      and c0 = complement (cofactor t v false) in
      let lit ph c = Cube.with_literal c v ph in
      let hi = map_cubes (lit true) c1 and lo = map_cubes (lit false) c0 in
      single_cube_containment (union hi lo)
    | None ->
      (* Unate cover: complement the single-variable factor recursively by
         splitting on any variable that occurs. *)
      let v =
        let pos, neg = occurrence_counts t in
        let rec find i =
          if i >= t.n then None
          else if pos.(i) > 0 || neg.(i) > 0 then Some i
          else find (i + 1)
        in
        find 0
      in
      (match v with
      | None -> assert false (* no literals and no universe cube: impossible *)
      | Some v ->
        let c1 = complement (cofactor t v true)
        and c0 = complement (cofactor t v false) in
        let lit ph c = Cube.with_literal c v ph in
        let hi = map_cubes (lit true) c1 and lo = map_cubes (lit false) c0 in
        single_cube_containment (union hi lo))

let product a b =
  if a.n <> b.n then invalid_arg "Cover.product: arity mismatch";
  let cubes =
    List.concat_map
      (fun ca -> List.filter_map (fun cb -> Cube.intersect ca cb) b.cubes)
      a.cubes
  in
  single_cube_containment { n = a.n; cubes }

let intersects a b =
  List.exists
    (fun ca -> List.exists (fun cb -> not (Cube.disjoint ca cb)) b.cubes)
    a.cubes

(* Remove redundant cubes: c is redundant if the rest of the cover (plus
   don't cares) covers it. Processing larger cubes first keeps primes. *)
let irredundant ?dc t =
  let cubes =
    List.sort (fun a b -> Cube.compare_by_literals b a) t.cubes
  in
  let rec loop kept = function
    | [] -> kept
    | c :: rest ->
      let others = { t with cubes = List.rev_append kept rest } in
      if covers_cube ?dc others c then loop kept rest else loop (c :: kept) rest
  in
  { t with cubes = loop [] cubes }

(* Expand each cube against an off-set cover: greedily drop literals as
   long as the expanded cube stays disjoint from every off-set cube. *)
let expand_against t ~offset =
  let expand c =
    let try_drop c (v, _ph) =
      let c' = Cube.remove_var c v in
      let hits_offset = List.exists (fun r -> not (Cube.disjoint c' r)) offset.cubes in
      if hits_offset then c else c'
    in
    List.fold_left try_drop c (Cube.literals c)
  in
  single_cube_containment { t with cubes = List.map expand t.cubes }

(* Espresso-lite: EXPAND against the complement, then IRREDUNDANT. [dc]
   enlarges the expansion room and the redundancy test. *)
let minimize ?dc t =
  let care_complement =
    match dc with
    | None -> complement t
    | Some d -> complement (union t d)
  in
  let expanded = expand_against t ~offset:care_complement in
  irredundant ?dc expanded

let sort_by_literals t =
  { t with cubes = List.sort Cube.compare_by_literals t.cubes }

let support t =
  List.fold_left (fun acc c -> Bits.union acc (Cube.support c)) (Bits.create t.n) t.cubes

let pp ?names fmt t =
  if is_zero t then Format.fprintf fmt "0"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.fprintf fmt " + ")
      (Cube.pp ?names) fmt t.cubes

let to_string ?names t = Format.asprintf "%a" (pp ?names) t
