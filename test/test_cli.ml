(* End-to-end tests of the emask executable: option validation (the
   --theta and --jobs converters reject bad values the same way), the
   paths subcommand's contract with CI (final "verdicts:" line, zero
   Unknown on the examples), and byte-identical output across --jobs. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let emask =
  match Sys.getenv_opt "EMASK" with
  | Some path -> path
  | None -> Filename.concat ".." (Filename.concat "bin" "emask.exe")

(* Run the binary, returning (exit code, stdout lines, stderr lines). *)
let run args =
  let out = Filename.temp_file "emask_out" ".txt" in
  let err = Filename.temp_file "emask_err" ".txt" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" (Filename.quote emask)
      (String.concat " " (List.map Filename.quote args))
      (Filename.quote out) (Filename.quote err)
  in
  let code =
    match Sys.command cmd with c -> c
  in
  let slurp f =
    let ic = open_in f in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    let lines = go [] in
    close_in ic;
    Sys.remove f;
    lines
  in
  (code, slurp out, slurp err)

let fixture name = Filename.concat "fixtures" name
let example name = Filename.concat (Filename.concat ".." (Filename.concat "examples" "blif")) name

let test_theta_validation () =
  (* Bad --theta must fail exactly like bad --jobs: same exit code,
     one-line diagnostic naming the offending value. *)
  let jobs_code, _, jobs_err = run [ "protect"; fixture "allfalse.blif"; "--jobs=0" ] in
  check "bad --jobs rejected" true (jobs_code <> 0);
  List.iter
    (fun bad ->
      let code, _, err = run [ "protect"; fixture "allfalse.blif"; "--theta=" ^ bad ] in
      check_int (Printf.sprintf "--theta %s exits like --jobs 0" bad) jobs_code code;
      check_int
        (Printf.sprintf "--theta %s stderr shape matches --jobs" bad)
        (List.length jobs_err) (List.length err);
      check
        (Printf.sprintf "--theta %s first line is the full diagnostic" bad)
        true
        (match err with
        | line :: _ ->
            let has needle =
              let n = String.length needle and len = String.length line in
              let rec go i = i + n <= len && (String.sub line i n = needle || go (i + 1)) in
              go 0
            in
            has "THETA" && has bad
        | [] -> false))
    [ "0"; "-0.5"; "1.5"; "2" ];
  (* Good values at the boundary still parse. *)
  let code, _, _ = run [ "protect"; fixture "allfalse.blif"; "--theta"; "1.0" ] in
  check_int "--theta 1.0 accepted" 0 code

let test_band_validation () =
  (* Bad --band must fail exactly like bad --jobs and bad --theta: same
     exit code, one-line diagnostic naming the offending value. A band
     of 0 classifies nothing and one above 1 silently clamps, so both
     are argument errors, not silent near-no-ops. *)
  let jobs_code, _, jobs_err = run [ "paths"; fixture "allfalse.blif"; "--jobs=0" ] in
  check "bad --jobs rejected" true (jobs_code <> 0);
  List.iter
    (fun bad ->
      let code, _, err = run [ "paths"; fixture "allfalse.blif"; "--band=" ^ bad ] in
      check_int (Printf.sprintf "--band %s exits like --jobs 0" bad) jobs_code code;
      check_int
        (Printf.sprintf "--band %s stderr shape matches --jobs" bad)
        (List.length jobs_err) (List.length err);
      check
        (Printf.sprintf "--band %s first line is the full diagnostic" bad)
        true
        (match err with
        | line :: _ ->
            let has needle =
              let n = String.length needle and len = String.length line in
              let rec go i = i + n <= len && (String.sub line i n = needle || go (i + 1)) in
              go 0
            in
            has "BAND" && has bad
        | [] -> false))
    [ "0"; "-0.5"; "1.5"; "abc" ];
  (* The closed boundary still parses. *)
  let code, _, _ = run [ "paths"; fixture "allfalse.blif"; "--band"; "1.0" ] in
  check_int "--band 1.0 accepted" 0 code

let test_last_validation () =
  (* emask report --last 0 (or negative) would silently report on
     nothing; it must fail exactly like bad --jobs: same exit code,
     one-line diagnostic naming the offending value. *)
  let jobs_code, _, jobs_err = run [ "paths"; fixture "allfalse.blif"; "--jobs=0" ] in
  check "bad --jobs rejected" true (jobs_code <> 0);
  List.iter
    (fun bad ->
      let code, _, err = run [ "report"; "--ledger"; "/dev/null"; "--last=" ^ bad ] in
      check_int (Printf.sprintf "--last %s exits like --jobs 0" bad) jobs_code code;
      check_int
        (Printf.sprintf "--last %s stderr shape matches --jobs" bad)
        (List.length jobs_err) (List.length err);
      check
        (Printf.sprintf "--last %s first line is the full diagnostic" bad)
        true
        (match err with
        | line :: _ ->
            let has needle =
              let n = String.length needle and len = String.length line in
              let rec go i = i + n <= len && (String.sub line i n = needle || go (i + 1)) in
              go 0
            in
            has "--last" && has bad
        | [] -> false))
    [ "0"; "-3"; "abc" ];
  (* The smallest sensible value still parses (an empty ledger is fine). *)
  let code, _, _ = run [ "report"; "--ledger"; "/dev/null"; "--last"; "1" ] in
  check_int "--last 1 accepted" 0 code

let test_eco_smoke () =
  (* emask eco with an empty edit sequence is the identity analysis:
     nothing dirty, and --check confirms incremental = full. *)
  let edits = Filename.temp_file "emask_edits" ".eco" in
  let oc = open_out edits in
  output_string oc "# no edits\n";
  close_out oc;
  let code, out, _ =
    run [ "eco"; fixture "allfalse.blif"; "--edits"; edits; "--check" ]
  in
  Sys.remove edits;
  check_int "eco clean exit" 0 code;
  let text = String.concat "\n" out in
  let has needle =
    let n = String.length needle and len = String.length text in
    let rec go i = i + n <= len && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check "nothing dirty" true (has "dirty cone: 0 of");
  check "check passes" true (has "canonical forms identical")

let last_line = function [] -> "" | lines -> List.nth lines (List.length lines - 1)

let test_paths_examples () =
  (* The CI smoke contract: clean exit, final verdict tally, zero
     Unknown on every shipped example. *)
  List.iter
    (fun name ->
      let code, out, _ = run [ "paths"; example name ] in
      check_int (name ^ " clean exit") 0 code;
      let last = last_line out in
      check (name ^ " verdict line") true
        (String.length last >= 9 && String.sub last 0 9 = "verdicts:");
      check (name ^ " zero unknown") true
        (let suffix = ", 0 unknown" in
         let k = String.length suffix and n = String.length last in
         n >= k && String.sub last (n - k) k = suffix))
    [ "full_adder.blif"; "mux4.blif"; "parity8.blif" ]

let test_paths_jobs_identical () =
  let outputs =
    List.map
      (fun jobs ->
        let code, out, _ =
          run
            [ "paths"; example "parity8.blif"; "--band"; "0.4"; "--json";
              "--jobs"; string_of_int jobs ]
        in
        check_int (Printf.sprintf "jobs=%d clean exit" jobs) 0 code;
        String.concat "\n" out)
      [ 1; 2; 4; 8 ]
  in
  match outputs with
  | base :: rest ->
      List.iteri
        (fun i o -> check (Printf.sprintf "jobs run %d identical" (i + 2)) true (o = base))
        rest
  | [] -> Alcotest.fail "no outputs"

let test_paths_diags () =
  (* allfalse at a narrow band: STA004 + MASK005 surface, exit stays 0
     (warnings), and --fail-on warning raises it to 1. *)
  let code, out, _ = run [ "paths"; fixture "allfalse.blif"; "--band"; "0.2" ] in
  check_int "warnings exit 0" 0 code;
  let text = String.concat "\n" out in
  let has needle =
    let n = String.length needle and len = String.length text in
    let rec go i = i + n <= len && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check "STA004 reported" true (has "STA004");
  check "MASK005 reported" true (has "MASK005");
  let code, _, _ =
    run [ "paths"; fixture "allfalse.blif"; "--band"; "0.2"; "--fail-on"; "warning" ]
  in
  check_int "fail-on warning exits 1" 1 code

let () =
  Alcotest.run "cli"
    [
      ( "emask",
        [
          Alcotest.test_case "theta validation" `Quick test_theta_validation;
          Alcotest.test_case "band validation" `Quick test_band_validation;
          Alcotest.test_case "last validation" `Quick test_last_validation;
          Alcotest.test_case "eco smoke" `Quick test_eco_smoke;
          Alcotest.test_case "paths examples" `Quick test_paths_examples;
          Alcotest.test_case "paths jobs identical" `Quick test_paths_jobs_identical;
          Alcotest.test_case "paths diagnostics" `Quick test_paths_diags;
        ] );
    ]
