(* Dense truth tables for small variable counts (n <= 24): index i encodes
   the assignment whose bit v is (i lsr v) land 1. Used by tests, the
   Quine-McCluskey prime generator, and exhaustive verification. *)

type t = { n : int; table : Bytes.t }

let max_vars = 24

let create n =
  if n < 0 || n > max_vars then invalid_arg "Truth.create: unsupported arity";
  { n; table = Bytes.make (1 lsl n) '\000' }

let num_vars t = t.n
let size t = 1 lsl t.n

let get t i = Bytes.get t.table i <> '\000'
let set t i v = Bytes.set t.table i (if v then '\001' else '\000')

let assignment_of_index n i = Array.init n (fun v -> i lsr v land 1 = 1)

let init n f =
  let t = create n in
  for i = 0 to size t - 1 do
    set t i (f (assignment_of_index n i))
  done;
  t

let of_cover cover =
  init (Cover.num_vars cover) (fun a -> Cover.eval cover a)

let count_ones t =
  let c = ref 0 in
  for i = 0 to size t - 1 do
    if get t i then incr c
  done;
  !c

let equal a b = a.n = b.n && Bytes.equal a.table b.table

let map2 f a b =
  if a.n <> b.n then invalid_arg "Truth.map2: arity mismatch";
  init a.n (fun _ -> false) |> fun t ->
  for i = 0 to size t - 1 do
    set t i (f (get a i) (get b i))
  done;
  t

let lnot a = init a.n (fun _ -> false) |> fun t ->
  for i = 0 to size t - 1 do
    set t i (not (get a i))
  done;
  t

let land_ a b = map2 ( && ) a b
let lor_ a b = map2 ( || ) a b
let lxor_ a b = map2 ( <> ) a b

let minterms t =
  let acc = ref [] in
  for i = size t - 1 downto 0 do
    if get t i then acc := i :: !acc
  done;
  !acc

(* A naive exact cover: one cube per minterm. Useful as a seed for
   iterated consensus or minimization. *)
let cover_of_minterms n ms =
  let cube_of_minterm i =
    Cube.make n (List.init n (fun v -> (v, i lsr v land 1 = 1)))
  in
  Cover.of_cubes n (List.map cube_of_minterm ms)

let to_cover t = cover_of_minterms t.n (minterms t)
