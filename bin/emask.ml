(* emask — command-line driver for the error-masking library.

   Subcommands:
     list      enumerate the built-in benchmark suite
     lint      static analysis: structural, timing and masking checks
     spcf      compute speed-path characteristic functions
     paths     near-critical path sensitization verdicts + witnesses
     protect   synthesize + verify an error-masking circuit
     eco       incremental recompute after an edit sequence
     wearout   aging sweep with the timing simulator
     trace     trace-buffer window expansion report
     fuzz      property-based differential fuzzing of the whole stack
     report    diff the EMASK_LEDGER run ledger, incl. bench baselines

   Every subcommand accepts --stats (print the instrumentation report:
   span tree, counters, histograms), --stats-json FILE (the same data
   as JSON), --trace FILE (Chrome/Perfetto timeline, one row per
   domain) and --prom FILE (Prometheus text exposition). EMASK_OBS=1
   in the environment enables the report without a flag, and
   EMASK_LEDGER=FILE appends one JSONL record per invocation.

   Exit codes: 0 success / lint clean; 1 lint warnings under
   --fail-on=warning; 2 lint errors (including pre-flight failures of
   the other subcommands). *)

open Cmdliner

(* The CLI exception boundary: bad input must produce a one-line
   diagnostic and exit 2 — the lint preflight policy — never a raw
   OCaml backtrace. Every subcommand body runs inside [guarded]. *)
let cli_error code msg =
  Printf.eprintf "emask: error %s: %s\n%!" code msg;
  exit 2

let guarded f =
  try f () with
  | Analysis.Lint.Gate_failed msg ->
    (* Same rendering as the old in-loader gate: a one-line summary
       without an error code. *)
    Printf.eprintf "emask: %s\n%!" msg;
    exit 2
  | e -> (
    match Serve_jobs.error_code e with
    | Some (code, msg) -> cli_error code msg
    | None -> raise e)

(* Every entry point pre-flights its input with the cheap error-only
   lint subset and exits 2 with a one-line summary instead of failing
   deep inside BDD construction ([guarded] renders the
   [Analysis.Lint.Gate_failed] the shared loader raises). *)
let cli_circuit spec = Serve_client.circuit_of_spec spec
let load_circuit spec = (Serve_jobs.load_entry (cli_circuit spec)).Serve_jobs.e_net

let circuit_arg =
  let doc = "Benchmark name (see $(b,emask list)) or path to a BLIF file." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

(* θ scales the critical-path delay into the speed-path target; a
   value outside (0, 1] silently inverts the band, so it is an
   argument error under the same policy as --jobs. *)
let theta_conv =
  let parse s =
    match float_of_string_opt s with
    | Some v when v > 0. && v <= 1. -> Ok v
    | Some _ | None ->
      Error (`Msg (Printf.sprintf "THETA must lie in (0, 1], got %S" s))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%g" v)

let theta_arg =
  let doc = "Target arrival factor: speed-paths within (1-THETA) of the critical path delay." in
  Arg.(value & opt theta_conv 0.9 & info [ "theta" ] ~docv:"THETA" ~doc)

let algorithm_arg =
  let doc = "SPCF algorithm: short (proposed, exact), path (exact), node (over-approximate)." in
  let algo_conv = Arg.enum [ ("short", `Short); ("path", `Path); ("node", `Node) ] in
  Arg.(value & opt algo_conv `Short & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc)

(* A strictly positive integer argument: 0 or a negative value is an
   argument error, not a silent fallback to some other mode. *)
let pos_int_conv what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ | None ->
      Error (`Msg (Printf.sprintf "%s must be a positive integer, got %S" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let pos_float_conv what =
  let parse s =
    match float_of_string_opt s with
    | Some v when v > 0. && v < infinity -> Ok v
    | Some _ | None ->
      Error (`Msg (Printf.sprintf "%s must be a positive number, got %S" what s))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%g" v)

let jobs_arg =
  let doc =
    "Worker domains for the per-output SPCF fan-out (default: \\$(b,EMASK_JOBS), \
     else the recommended domain count, capped at 8). Results are identical for \
     every N; only runtime changes."
  in
  Arg.(
    value
    & opt (some (pos_int_conv "--jobs")) None
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let resolve_jobs = function Some n -> n | None -> Spcf.Parallel.auto_jobs ()

(* --- resource budgets --------------------------------------------------- *)

let timeout_arg =
  let doc =
    "Wall-clock budget in seconds (also \\$(b,EMASK_BUDGET_TIMEOUT)). On exhaustion \
     the computation degrades tier by tier (exact SPCF, node-based SPCF, always-on \
     masking) instead of running away; degradation is reported, never silent."
  in
  Arg.(
    value
    & opt (some (pos_float_conv "--timeout")) None
    & info [ "timeout" ] ~docv:"SEC" ~doc)

let max_nodes_arg =
  let doc =
    "BDD node quota per manager (also \\$(b,EMASK_BUDGET_MAX_NODES)). Same \
     degradation ladder as $(b,--timeout)."
  in
  Arg.(
    value
    & opt (some (pos_int_conv "--max-nodes")) None
    & info [ "max-nodes" ] ~docv:"N" ~doc)

let budget_term = Term.(const (fun t n -> (t, n)) $ timeout_arg $ max_nodes_arg)

(* Flags take precedence; EMASK_BUDGET_* fills the gaps. *)
let resolve_budget (timeout, max_nodes) =
  Budget.merge
    { Budget.timeout; max_nodes; max_ops = None; cancel_with = None }
    (Budget.of_env ())

let report_synthesis_degradation (m : Masking.Synthesis.t) =
  let buf = Buffer.create 128 in
  Serve_jobs.report_synthesis_degradation buf m;
  print_string (Buffer.contents buf)

(* --- instrumentation plumbing ------------------------------------------ *)

let stats_arg =
  let doc = "Print the instrumentation report (span tree, counters, histograms)." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let stats_json_arg =
  let doc = "Write the instrumentation report as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Write a Chrome/Perfetto trace-event timeline to $(docv) (load it at \
     ui.perfetto.dev or chrome://tracing): one row per domain, spans as complete \
     events, budget walls and synthesis-ladder fallbacks as instant markers. \
     Implies statistics collection."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let prom_arg =
  let doc =
    "Write the counter/histogram registry in Prometheus text exposition format to \
     $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "prom" ] ~docv:"FILE" ~doc)

let obs_term =
  Term.(
    const (fun s j t p -> (s, j, t, p))
    $ stats_arg $ stats_json_arg $ trace_out_arg $ prom_arg)

let env_truthy name =
  match Sys.getenv_opt name with None | Some "" | Some "0" -> false | Some _ -> true

(* Run [f] under a root span; afterwards write the requested export
   files, print the report when asked for, and append the run-ledger
   record. With no flag, no EMASK_OBS and no EMASK_LEDGER, collection
   stays disabled and output is exactly the uninstrumented CLI's. The
   textual report prints only for --stats / EMASK_OBS — a ledger or an
   export file alone keeps stdout quiet. *)
let with_obs (stats, json, trace_out, prom) name f =
  if stats || json <> None || prom <> None || Obs_ledger.enabled () then
    Obs.set_enabled true;
  if trace_out <> None then begin
    Obs.set_enabled true;
    Obs.set_trace_enabled true
  end;
  let r, runtime = Obs.timed ("emask." ^ name) f in
  Obs_ledger.note "runtime_s" (Obs_json.Float runtime);
  (match json with Some path -> Obs_json.write_file path | None -> ());
  (match trace_out with
  | Some path ->
    Obs_trace.write_file path;
    Printf.eprintf "trace written to %s\n%!" path
  | None -> ());
  (match prom with Some path -> Obs_prom.write_file path | None -> ());
  if stats || env_truthy "EMASK_OBS" then Obs_report.print stdout;
  Obs_ledger.append ~cmd:name ();
  r

(* The ledger-fact sink handed to the shared job runners: the global
   note store when a ledger is configured, else nothing. *)
let cli_note () = if Obs_ledger.enabled () then Some Obs_ledger.note else None
let note_circuit spec net = Serve_jobs.note_circuit (cli_note ()) spec net

(* --- subcommands -------------------------------------------------------- *)

let list_run obs =
  with_obs obs "list" @@ fun () ->
  Printf.printf "%-18s %8s %8s %8s\n" "name" "inputs" "outputs" "paper-gates";
  List.iter
    (fun e ->
      Printf.printf "%-18s %8d %8d %8d\n" e.Suite.ename e.Suite.params.Generator.n_pi
        e.Suite.params.Generator.n_po e.Suite.paper_gates)
    Suite.all

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark suite")
    Term.(const list_run $ obs_term)

(* --- lint --------------------------------------------------------------- *)

let fail_on_arg =
  let doc =
    "Severity that makes the exit status nonzero: $(b,error) (default; exit 2) or \
     $(b,warning) (exit 1 on warnings, 2 on errors)."
  in
  let sev_conv =
    Arg.enum [ ("error", Analysis.Diag.Error); ("warning", Analysis.Diag.Warning) ]
  in
  Arg.(
    value & opt sev_conv Analysis.Diag.Error & info [ "fail-on" ] ~docv:"SEVERITY" ~doc)

let json_arg =
  let doc = "Emit the diagnostics as a JSON report on stdout instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let contract_arg =
  let doc =
    "Also synthesize the error-masking circuit and verify the paper's masking \
     contract (mux insertion, non-intrusiveness, indicator soundness, the >= 20% \
     timing-slack margin)."
  in
  Arg.(value & flag & info [ "contract" ] ~doc)

(* Lint a circuit. BLIF files are first analyzed in raw form (the only
   form in which cycles and undriven/multiply-driven signals are even
   representable); if the source passes the error-level checks it is
   elaborated and the semantic + timing passes run on the mapped
   realization. Suite circuits skip the source stage. *)
let lint_run obs spec fail_on json contract theta jobs =
  let code =
    guarded @@ fun () ->
    with_obs obs "lint" @@ fun () ->
    let buf = Buffer.create 1024 in
    let code =
      Serve_jobs.run_lint ~note:(cli_note ()) buf (cli_circuit spec)
        {
          Serve_jobs.l_fail_on = fail_on;
          l_json = json;
          l_contract = contract;
          l_theta = theta;
          l_jobs = resolve_jobs jobs;
        }
    in
    print_string (Buffer.contents buf);
    code
  in
  if code <> 0 then exit code

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a circuit: structural well-formedness (cycles, \
          undriven and multiply-driven signals, dead cones, provable constants), \
          STA consistency, and optionally the masking contract")
    Term.(
      const lint_run $ obs_term $ circuit_arg $ fail_on_arg $ json_arg $ contract_arg
      $ theta_arg $ jobs_arg)

let spcf_run obs spec theta algo jobs bflags =
  guarded @@ fun () ->
  with_obs obs "spcf" @@ fun () ->
  let algorithm =
    match algo with
    | `Short -> Spcf.Governed.Short_path
    | `Path -> Spcf.Governed.Path_based
    | `Node -> Spcf.Governed.Node_based
  in
  let buf = Buffer.create 1024 in
  let (_ : int) =
    Serve_jobs.run_spcf ~note:(cli_note ()) buf Serve_jobs.load_entry
      (cli_circuit spec)
      { Serve_jobs.s_theta = theta; s_algorithm = algorithm; s_jobs = resolve_jobs jobs }
      (resolve_budget bflags)
  in
  print_string (Buffer.contents buf)

let spcf_cmd =
  Cmd.v
    (Cmd.info "spcf" ~doc:"Compute the speed-path characteristic function")
    Term.(
      const spcf_run $ obs_term $ circuit_arg $ theta_arg $ algorithm_arg $ jobs_arg
      $ budget_term)

let protect_run obs spec theta jobs prune out bflags =
  guarded @@ fun () ->
  with_obs obs "protect" @@ fun () ->
  let buf = Buffer.create 1024 in
  let (_ : int) =
    Serve_jobs.run_protect ~note:(cli_note ()) ?out buf Serve_jobs.load_entry
      (cli_circuit spec)
      { Serve_jobs.m_theta = theta; m_jobs = resolve_jobs jobs; m_prune = prune }
      (resolve_budget bflags)
  in
  print_string (Buffer.contents buf)

let out_arg =
  let doc = "Write the combined (protected) circuit as BLIF to $(docv)." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let prune_arg =
  let doc =
    "Drop a critical output from the masking cover when every near-critical path \
     to it is provably false and its SPCF is empty (see $(b,emask paths)); the \
     indicator shrinks, the soundness interval is preserved and re-verified."
  in
  Arg.(value & flag & info [ "prune-false-paths" ] ~doc)

let protect_cmd =
  Cmd.v
    (Cmd.info "protect" ~doc:"Synthesize and verify an error-masking circuit")
    Term.(
      const protect_run $ obs_term $ circuit_arg $ theta_arg $ jobs_arg $ prune_arg
      $ out_arg $ budget_term)

(* --- paths: sensitization analysis of the near-critical band ------------ *)

(* Same converter discipline as --theta/--jobs: a band of 0 classifies
   nothing and one above 1 silently clamps, so both are argument errors
   (one-line diagnostic, exit 2), not silent near-no-ops. *)
let band_conv =
  let parse s =
    match float_of_string_opt s with
    | Some v when v > 0. && v <= 1. -> Ok v
    | Some _ | None ->
      Error (`Msg (Printf.sprintf "BAND must lie in (0, 1], got %S" s))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%g" v)

let band_arg =
  let doc =
    "Near-critical band: classify every structural path longer than \
     (1-BAND) * Delta."
  in
  Arg.(value & opt band_conv 0.1 & info [ "band" ] ~docv:"F" ~doc)

let max_paths_arg =
  let doc = "Stop enumerating after $(docv) paths (the report is marked truncated)." in
  Arg.(
    value
    & opt (pos_int_conv "--max-paths") 4096
    & info [ "max-paths" ] ~docv:"N" ~doc)

let paths_run obs spec band max_paths jobs json fail_on bflags =
  let code =
    guarded @@ fun () ->
    with_obs obs "paths" @@ fun () ->
    let buf = Buffer.create 1024 in
    let code =
      Serve_jobs.run_paths ~note:(cli_note ()) buf Serve_jobs.load_entry
        (cli_circuit spec)
        {
          Serve_jobs.p_band = band;
          p_max_paths = max_paths;
          p_jobs = resolve_jobs jobs;
          p_json = json;
          p_fail_on = fail_on;
        }
        (resolve_budget bflags)
    in
    print_string (Buffer.contents buf);
    code
  in
  if code <> 0 then exit code

let paths_cmd =
  Cmd.v
    (Cmd.info "paths"
       ~doc:
         "Enumerate the near-critical structural paths and classify each as true \
          (sensitizable, with a SAT witness pattern), false (no input pattern \
          sensitizes it) or unknown (budget exhausted); reports the tightened \
          functional delay bound per output")
    Term.(
      const paths_run $ obs_term $ circuit_arg $ band_arg $ max_paths_arg $ jobs_arg
      $ json_arg $ fail_on_arg $ budget_term)

let wearout_run obs spec trials bflags =
  guarded @@ fun () ->
  with_obs obs "wearout" @@ fun () ->
  let net = load_circuit spec in
  note_circuit spec net;
  let options =
    { Masking.Synthesis.default_options with budget = resolve_budget bflags }
  in
  let m = Masking.Synthesis.synthesize ~options net in
  if Obs_ledger.enabled () then
    Obs_ledger.note "tier"
      (Obs_json.String (Spcf.Governed.tier_to_string m.Masking.Synthesis.tier));
  report_synthesis_degradation m;
  let samples =
    Obs.with_span "aging-sweep" (fun () -> Masking.Monitor.aging_sweep ~trials m)
  in
  List.iter (fun s -> Format.printf "%a@." Masking.Monitor.pp_sample s) samples

let trials_arg =
  let doc = "Random input transitions per aging factor." in
  Arg.(value & opt int 400 & info [ "trials" ] ~docv:"N" ~doc)

let wearout_cmd =
  Cmd.v
    (Cmd.info "wearout" ~doc:"Aging sweep: raw vs masked vs logged error rates")
    Term.(const wearout_run $ obs_term $ circuit_arg $ trials_arg $ budget_term)

let trace_run obs spec buffer cycles =
  guarded @@ fun () ->
  with_obs obs "trace" @@ fun () ->
  let net = load_circuit spec in
  note_circuit spec net;
  let m = Masking.Synthesis.synthesize net in
  let r =
    Obs.with_span "selective-capture" (fun () ->
        Masking.Trace_buffer.selective_capture ~buffer_size:buffer ~cycles m)
  in
  Format.printf "%a@." Masking.Trace_buffer.pp r

let buffer_arg =
  Arg.(value & opt int 64 & info [ "buffer" ] ~docv:"ENTRIES" ~doc:"Trace buffer size.")

let cycles_arg =
  Arg.(value & opt int 100000 & info [ "cycles" ] ~docv:"N" ~doc:"Cycles to simulate.")

let trace_cmd =
  Cmd.v
    (Cmd.info "trace" ~doc:"Trace-buffer window expansion via selective capture")
    Term.(const trace_run $ obs_term $ circuit_arg $ buffer_arg $ cycles_arg)

(* --- eco: incremental recompute after an engineering change order ------- *)

let edits_arg =
  let doc =
    "Edit-sequence file, one edit per line: $(b,replace), $(b,rewire), $(b,add), \
     $(b,remove), $(b,add-output), $(b,drop-output); blank lines and $(b,#) \
     comments are skipped. Fuzz $(b,.eco) repro files use this format."
  in
  Arg.(required & opt (some string) None & info [ "edits" ] ~docv:"FILE" ~doc)

let eco_band_arg =
  let doc =
    "Also carry sensitization verdicts for the near-critical band (same semantics \
     as $(b,emask paths --band)); verdicts on paths through clean outputs are \
     reused from the baseline."
  in
  Arg.(value & opt (some band_conv) None & info [ "band" ] ~docv:"F" ~doc)

let check_arg =
  let doc =
    "Cross-check the incremental result against a full from-scratch analysis of \
     the edited design: the canonical forms must be byte-identical (exit 1 \
     otherwise). This is the $(b,eco-equal) oracle on the given edit sequence."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let eco_run obs spec edits_file theta band jobs json check bflags =
  let code =
    guarded @@ fun () ->
    with_obs obs "eco" @@ fun () ->
    let buf = Buffer.create 1024 in
    let code =
      Serve_jobs.run_eco ~note:(cli_note ()) buf Serve_jobs.load_entry
        (cli_circuit spec)
        {
          Serve_jobs.c_edits_name = edits_file;
          c_edits = read_file edits_file;
          c_theta = theta;
          c_band = band;
          c_jobs = resolve_jobs jobs;
          c_json = json;
          c_check = check;
        }
        (resolve_budget bflags)
    in
    print_string (Buffer.contents buf);
    code
  in
  if code <> 0 then exit code

let eco_cmd =
  Cmd.v
    (Cmd.info "eco"
       ~doc:
         "Apply an engineering-change-order edit sequence and incrementally \
          re-derive the timing-error-masking analysis: only the dirty \
          transitive-fanout cone is recomputed; node functions, per-output SPCFs, \
          masking covers and sensitization verdicts outside the cone are reused \
          from the baseline snapshot")
    Term.(
      const eco_run $ obs_term $ circuit_arg $ edits_arg $ theta_arg $ eco_band_arg
      $ jobs_arg $ json_arg $ check_arg $ budget_term)

(* --- fuzz --------------------------------------------------------------- *)

let seed_arg =
  let doc =
    "Root seed. Every failure report names (seed, index), which replays the sample \
     exactly."
  in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)

let count_arg =
  let doc = "Number of random specimens to generate." in
  Arg.(value & opt int 100 & info [ "count"; "n" ] ~docv:"N" ~doc)

let time_budget_arg =
  let doc = "Deprecated alias for $(b,--timeout)." in
  Arg.(
    value
    & opt (some (pos_float_conv "--time-budget")) None
    & info [ "time-budget" ] ~docv:"S" ~doc)

let oracle_arg =
  let doc =
    Printf.sprintf "Run only the named oracle (default: all). One of: %s."
      (String.concat ", " Fuzz.Oracle.names)
  in
  Arg.(value & opt (some string) None & info [ "oracle" ] ~docv:"NAME" ~doc)

let shrink_arg =
  let doc =
    "Greedily minimize failing specimens (delete outputs, gates, cover rows, pins) \
     before writing the repro."
  in
  Arg.(value & flag & info [ "shrink" ] ~doc)

let fuzz_out_arg =
  let doc = "Directory for shrunken repro .blif files (created if missing)." in
  Arg.(value & opt string "." & info [ "out" ] ~docv:"DIR" ~doc)

let fuzz_run obs seed count time_budget oracle shrink out bflags =
  let code =
    guarded @@ fun () ->
    with_obs obs "fuzz" @@ fun () ->
    let oracles =
      match oracle with
      | None -> Fuzz.Oracle.all
      | Some name -> (
        match Fuzz.Oracle.find name with
        | Some o -> [ o ]
        | None ->
          Printf.eprintf "unknown oracle %S (have: %s)\n" name
            (String.concat ", " Fuzz.Oracle.names);
          exit 2)
    in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    let budget =
      let timeout, max_nodes = bflags in
      let timeout = match timeout with Some _ -> timeout | None -> time_budget in
      resolve_budget (timeout, max_nodes)
    in
    let config =
      {
        Fuzz.Driver.default_config with
        seed;
        count;
        budget;
        oracles;
        shrink;
        out_dir = Some out;
      }
    in
    if Obs_ledger.enabled () then begin
      Obs_ledger.note "seed" (Obs_json.Int seed);
      Obs_ledger.note "count" (Obs_json.Int count)
    end;
    let summary = Fuzz.Driver.run config in
    if Obs_ledger.enabled () then
      Obs_ledger.note "failures"
        (Obs_json.Int (List.length summary.Fuzz.Driver.failures));
    List.iter
      (fun o ->
        Printf.printf "  oracle %-16s %s\n" o.Fuzz.Oracle.name o.Fuzz.Oracle.describe)
      oracles;
    if summary.Fuzz.Driver.failures = [] then 0 else 1
  in
  if code <> 0 then exit code

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Property-based differential fuzzing: random netlists (including degenerate \
          shapes) are cross-checked through the SPCF algorithms, the simulators, the \
          static timing bounds, the masking synthesis and the BLIF round-trip; \
          failures are shrunk to minimal repro netlists")
    Term.(
      const fuzz_run $ obs_term $ seed_arg $ count_arg $ time_budget_arg $ oracle_arg
      $ shrink_arg $ fuzz_out_arg $ budget_term)

(* --- report: diff run-ledger trajectories ------------------------------- *)

(* Typed accessors over ledger records (missing fields are simply absent
   — older schema versions and hand-written records must still print). *)
let field_string key r =
  match Obs_json.member key r with Some (Obs_json.String s) -> Some s | _ -> None

let field_float key r =
  match Obs_json.member key r with
  | Some (Obs_json.Float f) -> Some f
  | Some (Obs_json.Int i) -> Some (float_of_int i)
  | _ -> None

let field_counters r =
  match Obs_json.member "counters" r with
  | Some (Obs_json.Obj fields) ->
    List.filter_map
      (fun (k, v) -> match v with Obs_json.Int i -> Some (k, i) | _ -> None)
      fields
  | _ -> []

(* Runs group by what they computed: the command plus the circuit
   identity (content hash when known, name otherwise; bench rows use
   the case name). *)
let record_group r =
  let cmd = Option.value ~default:"?" (field_string "cmd" r) in
  let subject =
    match field_string "case" r with
    | Some c -> c
    | None -> (
      match (field_string "circuit_sha" r, field_string "circuit" r) with
      | Some sha, Some c -> Printf.sprintf "%s#%s" c (String.sub sha 0 8)
      | Some sha, None -> sha
      | None, Some c -> c
      | None, None -> "-")
  in
  (cmd, subject)

let record_time r =
  match field_float "runtime_s" r with
  | Some t -> Some ("runtime", t)
  | None -> (
    match field_float "ns_per_run" r with
    | Some ns -> Some ("per-run", ns /. 1e9)
    | None -> None)

let pp_delta ?(what = "prev") cur prev =
  if prev > 0. then
    Printf.sprintf " (%+.1f%% vs %s)" ((cur /. prev -. 1.) *. 100.) what
  else ""

let print_group (cmd, subject) records =
  let n = List.length records in
  let latest = List.nth records (n - 1) in
  let prev = if n >= 2 then Some (List.nth records (n - 2)) else None in
  Printf.printf "%s %s  (%d run%s)\n" cmd subject n (if n = 1 then "" else "s");
  let describe r =
    String.concat "  "
      (List.filter_map
         (fun f -> f r)
         [
           (fun r -> field_string "ts_iso" r);
           (fun r ->
             Option.map (fun (what, t) -> Printf.sprintf "%s %.4fs" what t)
               (record_time r));
           (fun r -> Option.map (fun t -> "tier " ^ t) (field_string "tier" r));
           (fun r ->
             Option.map
               (fun j -> Printf.sprintf "jobs %d" (int_of_float j))
               (field_float "jobs" r));
         ])
  in
  Printf.printf "  latest: %s%s\n" (describe latest)
    (match (record_time latest, Option.bind prev record_time) with
    | Some (_, cur), Some (_, p) -> pp_delta cur p
    | _ -> "");
  (match prev with
  | Some p -> Printf.printf "  prev:   %s\n" (describe p)
  | None -> ());
  (* Counter drift: the latest run's counters against the previous
     run's, changed entries only — constant counters are noise here. *)
  match prev with
  | None -> ()
  | Some p ->
    let prev_counters = field_counters p in
    List.iter
      (fun (k, v) ->
        match List.assoc_opt k prev_counters with
        | Some pv when pv <> v ->
          Printf.printf "  counter %-32s %d -> %d%s\n" k pv v
            (if pv > 0 then
               Printf.sprintf " (%+.1f%%)"
                 ((float_of_int v /. float_of_int pv -. 1.) *. 100.)
             else "")
        | _ -> ())
      (field_counters latest)

(* Bench baselines (BENCH_*.json): case name -> ns_per_run. *)
let baseline_entries path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Obs_json.of_string s with
  | Error e -> failwith (Printf.sprintf "%s: %s" path e)
  | Ok j -> (
    match Obs_json.member "results" j with
    | Some (Obs_json.Obj fields) ->
      List.filter_map
        (fun (name, entry) ->
          Option.map (fun ns -> (name, ns)) (field_float "ns_per_run" entry))
        fields
    | _ -> failwith (Printf.sprintf "%s: no results object" path))

let compare_against_baselines ~baselines records =
  let latest_ns = Hashtbl.create 16 in
  List.iter
    (fun r ->
      match (field_string "case" r, field_float "ns_per_run" r) with
      | Some case, Some ns -> Hashtbl.replace latest_ns case ns
      | _ -> ())
    records;
  let compared = ref 0 in
  List.iter
    (fun (name, base) ->
      match Hashtbl.find_opt latest_ns name with
      | Some ns when base > 0. ->
        incr compared;
        Printf.printf "  %-48s %10.3f ms/run  baseline %10.3f%s\n" name (ns /. 1e6)
          (base /. 1e6)
          (pp_delta ~what:"baseline" ns base)
      | _ -> ())
    baselines;
  if !compared = 0 then
    Printf.printf "  (no ledger bench records match the baseline cases)\n"

let report_run ledger againsts last =
  guarded @@ fun () ->
  let path =
    match (ledger, Obs_ledger.path ()) with
    | Some p, _ -> p
    | None, Some p -> p
    | None, None ->
      cli_error "LEDGER001"
        (Printf.sprintf "no ledger: pass --ledger FILE or set %s"
           Obs_ledger.env_var)
  in
  let records =
    match Obs_ledger.read_file path with
    | Ok rs -> rs
    | Error e -> cli_error "LEDGER002" e
  in
  let records =
    (* Most recent N, in chronological order. *)
    let n = List.length records in
    if n <= last then records
    else List.filteri (fun i _ -> i >= n - last) records
  in
  if records = [] then print_endline "ledger is empty"
  else begin
    Printf.printf "ledger: %s  (%d record%s shown)\n\n" path (List.length records)
      (if List.length records = 1 then "" else "s");
    let groups = ref [] in
    List.iter
      (fun r ->
        let g = record_group r in
        match List.assoc_opt g !groups with
        | Some rs -> rs := r :: !rs
        | None -> groups := !groups @ [ (g, ref [ r ]) ])
      records;
    List.iter
      (fun (g, rs) ->
        print_group g (List.rev !rs);
        print_newline ())
      !groups;
    match againsts with
    | [] -> ()
    | paths ->
      let baselines = List.concat_map baseline_entries paths in
      Printf.printf "against %s:\n" (String.concat ", " paths);
      compare_against_baselines ~baselines records
  end

let ledger_arg =
  let doc =
    Printf.sprintf "Ledger file to report on (default: \\$(b,%s))."
      Obs_ledger.env_var
  in
  Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE" ~doc)

let against_arg =
  let doc =
    "Compare the ledger's latest bench records against a $(b,BENCH_*.json) \
     baseline (repeatable)."
  in
  Arg.(value & opt_all string [] & info [ "against" ] ~docv:"FILE" ~doc)

(* Same converter discipline as --jobs: "--last 0" would silently
   report on nothing, so it is an argument error, not an empty
   report. *)
let last_arg =
  let doc = "Only consider the most recent $(docv) ledger records." in
  Arg.(value & opt (pos_int_conv "--last") 50 & info [ "last" ] ~docv:"N" ~doc)

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Diff run-ledger trajectories: group the JSONL records appended under \
          \\$(b,EMASK_LEDGER) by command and circuit, show runtime and counter \
          drift between consecutive runs, and compare bench records against \
          committed BENCH_*.json baselines")
    Term.(const report_run $ ledger_arg $ against_arg $ last_arg)

(* --- serve / client: masking-as-a-service ------------------------------- *)

let port_conv =
  let parse str =
    match int_of_string_opt str with
    | Some n when n >= 0 && n <= 65535 -> Ok n
    | Some _ | None ->
      Error (`Msg (Printf.sprintf "PORT must lie in 0..65535, got %S" str))
  in
  Arg.conv (parse, Format.pp_print_int)

let port_arg =
  let doc = "TCP port to listen on (0 asks the kernel to pick one)." in
  Arg.(value & opt port_conv 9309 & info [ "port"; "p" ] ~docv:"PORT" ~doc)

let socket_arg =
  let doc = "Listen on a Unix-domain socket at $(docv) instead of TCP." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let queue_arg =
  let doc =
    "Admission-queue bound: a request arriving with $(docv) jobs already queued \
     is rejected immediately with a QUEUE001 diagnostic, never parked."
  in
  Arg.(value & opt (pos_int_conv "--queue") 16 & info [ "queue" ] ~docv:"N" ~doc)

let cache_mb_arg =
  let doc =
    "Approximate capacity of the parsed/mapped circuit LRU in MiB (eco baseline \
     snapshots are cached per circuit, theta and band)."
  in
  Arg.(value & opt (pos_int_conv "--cache-mb") 256 & info [ "cache-mb" ] ~docv:"MIB" ~doc)

let serve_ledger_arg =
  let doc =
    Printf.sprintf
      "Append one JSONL record per served request to $(docv) (default: \
       \\$(b,%s))."
      Obs_ledger.env_var
  in
  Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE" ~doc)

let read_timeout_arg =
  let doc =
    "Per-connection request-read deadline in seconds (SO_RCVTIMEO): a client \
     that connects but never finishes its request is dropped after $(docv) \
     instead of blocking admission."
  in
  Arg.(
    value
    & opt (pos_float_conv "--read-timeout") 10.
    & info [ "read-timeout" ] ~docv:"SECONDS" ~doc)

let verbose_arg =
  let doc = "Log lifecycle events to stderr." in
  Arg.(value & flag & info [ "verbose" ] ~doc)

let serve_run port socket jobs queue cache_mb ledger read_timeout verbose bflags =
  guarded @@ fun () ->
  let bind =
    match socket with
    | Some path -> Serve.Unix_sock path
    | None -> Serve.Tcp ("127.0.0.1", port)
  in
  let config =
    {
      Serve.bind;
      jobs = resolve_jobs jobs;
      queue_cap = queue;
      cache_mb;
      default_budget = resolve_budget bflags;
      ledger = (match ledger with Some _ -> ledger | None -> Obs_ledger.path ());
      read_timeout;
      verbose;
    }
  in
  Serve.run config
    ~ready:(fun bound ->
      match bind with
      | Serve.Tcp (host, _) -> Printf.printf "listening on %s:%d\n%!" host bound
      | Serve.Unix_sock path -> Printf.printf "listening on %s\n%!" path)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent analysis daemon: lint/spcf/paths/protect/eco jobs \
          over a length-prefixed JSON protocol on a TCP or Unix socket, with a \
          worker-domain pool, a bounded admission queue, per-request budgets with \
          disconnect cancellation, a content-addressed circuit LRU, and a \
          Prometheus /metrics endpoint; responses are byte-identical to the \
          one-shot CLI")
    Term.(
      const serve_run $ port_arg $ socket_arg $ jobs_arg $ queue_arg $ cache_mb_arg
      $ serve_ledger_arg $ read_timeout_arg $ verbose_arg $ budget_term)

(* --- client -------------------------------------------------------------- *)

let job_arg =
  let doc =
    "Job to run: $(b,lint), $(b,spcf), $(b,paths), $(b,protect), $(b,eco), \
     $(b,ping), $(b,metrics) or $(b,shutdown)."
  in
  let job_conv =
    Arg.enum
      [
        ("lint", `Lint); ("spcf", `Spcf); ("paths", `Paths); ("protect", `Protect);
        ("eco", `Eco); ("ping", `Ping); ("metrics", `Metrics);
        ("shutdown", `Shutdown);
      ]
  in
  Arg.(required & pos 0 (some job_conv) None & info [] ~docv:"JOB" ~doc)

let client_circuit_arg =
  let doc = "Benchmark name or path to a BLIF file (shipped inline)." in
  Arg.(value & pos 1 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let host_arg =
  let doc = "Daemon host." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let client_edits_arg =
  let doc = "Edit-sequence file for $(b,eco) jobs (read locally, shipped inline)." in
  Arg.(value & opt (some string) None & info [ "edits" ] ~docv:"FILE" ~doc)

let client_band_arg =
  let doc = "Near-critical band for $(b,paths) / $(b,eco) jobs." in
  Arg.(value & opt (some band_conv) None & info [ "band" ] ~docv:"F" ~doc)

let delay_arg =
  let doc = "Seconds a $(b,ping) job holds a worker (a test/diagnostic aid)." in
  Arg.(value & opt float 0. & info [ "delay" ] ~docv:"SEC" ~doc)

let client_run socket host port job spec theta algo band max_paths jobs json
    contract fail_on prune edits check delay bflags =
  guarded @@ fun () ->
  let endpoint =
    match socket with
    | Some path -> Serve_client.Unix_sock path
    | None -> Serve_client.Tcp (host, port)
  in
  let circuit () =
    match spec with
    | Some sp -> Serve_client.circuit_of_spec sp
    | None -> cli_error "CLI001" "this job needs a CIRCUIT argument"
  in
  let jobs = resolve_jobs jobs in
  let bspec = resolve_budget bflags in
  let req =
    match job with
    | `Lint ->
      Serve_protocol.Lint
        ( circuit (),
          {
            Serve_jobs.l_fail_on = fail_on;
            l_json = json;
            l_contract = contract;
            l_theta = theta;
            l_jobs = jobs;
          } )
    | `Spcf ->
      let algorithm =
        match algo with
        | `Short -> Spcf.Governed.Short_path
        | `Path -> Spcf.Governed.Path_based
        | `Node -> Spcf.Governed.Node_based
      in
      Serve_protocol.Spcf
        ( circuit (),
          { Serve_jobs.s_theta = theta; s_algorithm = algorithm; s_jobs = jobs },
          bspec )
    | `Paths ->
      Serve_protocol.Paths
        ( circuit (),
          {
            Serve_jobs.p_band = Option.value ~default:0.1 band;
            p_max_paths = max_paths;
            p_jobs = jobs;
            p_json = json;
            p_fail_on = fail_on;
          },
          bspec )
    | `Protect ->
      Serve_protocol.Protect
        ( circuit (),
          { Serve_jobs.m_theta = theta; m_jobs = jobs; m_prune = prune },
          bspec )
    | `Eco ->
      let edits_file =
        match edits with
        | Some path -> path
        | None -> cli_error "CLI001" "eco jobs need --edits FILE"
      in
      Serve_protocol.Eco
        ( circuit (),
          {
            Serve_jobs.c_edits_name = edits_file;
            c_edits = read_file edits_file;
            c_theta = theta;
            c_band = band;
            c_jobs = jobs;
            c_json = json;
            c_check = check;
          },
          bspec )
    | `Ping -> Serve_protocol.Ping delay
    | `Metrics -> Serve_protocol.Metrics
    | `Shutdown -> Serve_protocol.Shutdown
  in
  match Serve_client.roundtrip endpoint req with
  | Serve_protocol.Ok_output (code, output) ->
    print_string output;
    if code <> 0 then exit code
  | Serve_protocol.Rejected (code, msg) | Serve_protocol.Error_resp (code, msg) ->
    cli_error code msg

let client_cmd =
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Run one job against a running $(b,emask serve) daemon; output and exit \
          code match the equivalent one-shot invocation")
    Term.(
      const client_run $ socket_arg $ host_arg $ port_arg $ job_arg
      $ client_circuit_arg $ theta_arg $ algorithm_arg $ client_band_arg
      $ max_paths_arg $ jobs_arg $ json_arg $ contract_arg $ fail_on_arg $ prune_arg
      $ client_edits_arg $ check_arg $ delay_arg $ budget_term)

let () =
  let info =
    Cmd.info "emask" ~version:"1.0.0"
      ~doc:"Masking timing errors on speed-paths in logic circuits (DATE 2009)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; lint_cmd; spcf_cmd; paths_cmd; protect_cmd; eco_cmd;
            wearout_cmd; trace_cmd; fuzz_cmd; report_cmd; serve_cmd; client_cmd;
          ]))
