(** Static path-sensitization analysis over the near-critical band.

    Classifies every near-critical structural path ({!Paths}) by its
    static sensitization condition — side inputs non-controlling along
    the path, compiled as the AND of per-gate Boolean differences into
    the context's BDD manager — as [True] (satisfiable, with a witness
    pattern found by the independent {!Dpll} engine and re-checked
    against the BDD), [False] (the zero function: no input pattern
    sensitizes the path), or [Unknown] (the budget governor ran out;
    sound — consumers must treat the path as possibly sensitizable).

    Verdicts are a pure per-path function of the circuit, so reports
    are byte-identical for every [jobs] value under an unlimited
    budget; under a finite budget only the [True]/[False] → [Unknown]
    frontier may shift.

    Static sensitization is optimistic for floating-mode delay: a
    statically-false path can still carry a transition under
    multi-input switching. [Masking.Synthesis] therefore prunes an
    output only when its SPCF Σ_y is additionally empty; the
    [functional] bounds reported here are valid for single-input-change
    delay (see DESIGN.md §14). *)

type verdict =
  | True of bool array  (** SAT witness, indexed by primary-input position *)
  | False
  | Unknown of Budget.reason

type classified = { path : Paths.path; verdict : verdict }

type summary = {
  output : string;
  signal : Network.signal;
  num_paths : int;  (** near-critical paths terminating here *)
  num_true : int;
  num_false : int;
  num_unknown : int;
  topological : float;  (** STA arrival time of the output *)
  functional : float;
      (** sound upper bound on the single-input-change functional
          delay: max length over non-[False] near-critical paths, the
          band target when all proved [False], the topological arrival
          when enumeration truncated *)
}

type report = {
  band : float;
  target : float;  (** [(1 - band) * Delta] *)
  delta : float;
  model : Sta.delay_model;
  truncated : bool;
  jobs : int;
  paths : classified list;  (** in {!Paths.enumerate} order *)
  summaries : summary list;  (** every primary output, declaration order *)
  functional_delta : float;  (** max over the per-output bounds *)
}

val analyze :
  ?model:Sta.delay_model ->
  ?band:float ->
  ?max_paths:int ->
  ?jobs:int ->
  ?budget:Budget.t ->
  Mapped.t ->
  report
(** Build a context and classify. [band] defaults to [0.1],
    [max_paths] to [4096], [jobs] to [1]; [jobs > 1] builds a
    shared-manager context and fans classification across domains via
    [Spcf.Parallel]. Budget exhaustion never escapes: a path whose
    classification runs out is [Unknown], and if the budget dies while
    the circuit's BDDs are built, every path is [Unknown]. Raises
    [Invalid_argument] on [band] outside [[0, 1]] or [max_paths < 1]. *)

val analyze_ctx : ?band:float -> ?max_paths:int -> ?jobs:int -> Spcf.Ctx.t -> report
(** Same over an existing context (the synthesis integration point).
    [jobs > 1] requires a shared-manager context and is clamped to [1]
    otherwise. *)

val classify_paths : Spcf.Ctx.t -> Paths.path list -> classified list
(** Classify an explicit path subset sequentially (one shared
    Boolean-difference cache), in list order. The incremental/ECO
    integration point: [Eco.recompute] reuses verdicts for paths whose
    fanin cone is untouched and classifies only the stale remainder. *)

val assemble : Spcf.Ctx.t -> jobs:int -> Paths.t -> classified list -> report
(** Build a {!report} from an enumeration and its classified paths
    (which must be in {!Paths.enumerate} order). *)

val verdict_name : verdict -> string
(** ["true"], ["false"] or ["unknown"]. *)

val false_outputs : report -> string list
(** Outputs whose every near-critical path (at least one) proved
    [False] — empty whenever the enumeration truncated, since missed
    paths may be sensitizable. *)

val counts : report -> int * int * int
(** [(true, false, unknown)] verdict totals. *)
