(** Seeded synthetic multi-level control-logic generator (the benchmark
    substitute — see DESIGN.md §2). *)

type params = {
  name : string;
  n_pi : int;
  n_po : int;
  n_nodes : int;
  seed : int;
  p_chain : float;
      (** probability a fanin is drawn from the newest open signals;
          higher values stretch path depth *)
  p_reuse : float;
      (** probability of an extra reused fanin: controls fanout > 1 and
          reconvergence *)
  max_support : int;
      (** primary-input support width beyond which node functions are
          restricted to AND-like / OR-like shapes, keeping signal BDDs
          tractable (see DESIGN.md) *)
}

val default_params : params

val generate : params -> Network.t
(** Deterministic in [params.seed]. Outputs number exactly [n_po]:
    when the generated logic has fewer open signals than [n_po], the
    remaining outputs are wire copies of random internal signals, and
    when it has more, the surplus stays in the network as dead cones
    (flagged by the NET005 lint but otherwise harmless). Raises
    [Invalid_argument] on [n_pi <= 0], [n_po < 0] or
    [max_support <= 0]; [n_nodes <= 0] yields the minimal merge/chain
    skeleton over the inputs. *)
