lib/network/network.ml: Array Bdd Format Hashtbl List Logic2 Option Printf
