lib/gatelib/cell.mli: Logic2
