(* Node-based SPCF over-approximation in the style of Su et al. [22]:
   gates are marked critical *statically* from arrival/required times, and
   a single stability function per gate is computed in one topological
   pass — no per-path time budgets.

   A gate's stability is evaluated against its own required time
   (target − tail). Because that required time is the tightest over ALL
   fanout branches, a multi-fanout gate that is critical along only one
   branch is treated as critical along every branch — exactly the source
   of over-approximation the paper attributes to node-based traversal.
   The result is guaranteed to be a superset of the exact SPCF:
   stability under-approximates the exact S(z, req(z)) inductively
   (input pins whose structural path through the gate meets the target
   are always on time; critical pins recurse; critical primary inputs
   never witness stability — "any path through a critical gate"). *)

let c_critical_gates = Obs.counter "spcf.node.critical_gates"

let value_bdd ctx s v =
  if v then ctx.Ctx.funcs.(s) else Bdd.bnot ctx.Ctx.man ctx.Ctx.funcs.(s)

let compute ctx ~target =
  let outputs, runtime =
    Obs.timed "spcf.node-based" (fun () ->
        let net = Ctx.network ctx in
        let n = Network.num_signals net in
        let target_units = Ctx.units_of_target target in
        let tail_units =
          Array.map Ctx.units_of_delay (Array.init n (Sta.tail ctx.Ctx.sta))
        in
        let arrival_units = ctx.Ctx.arrival_units in
        let critical s = arrival_units.(s) + tail_units.(s) > target_units in
        let stable = Array.make n Bdd.btrue in
        Obs.with_span "stability-pass" (fun () ->
            Array.iter
              (fun s ->
                match Network.node_of net s with
                | None -> if critical s then stable.(s) <- Bdd.bfalse
                | Some nd ->
                  if critical s then begin
                    Obs.incr c_critical_gates;
                    let d = ctx.Ctx.delay_units.(s) in
                    (* Pin (i -> s) lies on a structural path longer than the
                       target iff arr(i) + δ + tail(s) exceeds it. *)
                    let pin_long i =
                      arrival_units.(i) + d + tail_units.(s) > target_units
                    in
                    let in_time local phase =
                      let i = nd.Network.fanins.(local) in
                      let lit = value_bdd ctx i phase in
                      if pin_long i then Bdd.band ctx.Ctx.man lit stable.(i) else lit
                    in
                    let prime_term p =
                      List.fold_left
                        (fun acc (local, phase) ->
                          if acc = Bdd.bfalse then acc
                          else Bdd.band ctx.Ctx.man acc (in_time local phase))
                        Bdd.btrue (Logic2.Cube.literals p)
                    in
                    let on, off = Ctx.primes_of ctx s in
                    let all_primes = Logic2.Cover.cubes on @ Logic2.Cover.cubes off in
                    stable.(s) <-
                      List.fold_left
                        (fun acc p -> Bdd.bor ctx.Ctx.man acc (prime_term p))
                        Bdd.bfalse all_primes
                  end)
              (Network.topo_order net));
        Array.to_list (Sta.critical_outputs ctx.Ctx.sta ~target)
        |> List.map (fun (name, y) ->
               let sigma =
                 Obs.with_span ("output:" ^ name) (fun () ->
                     Bdd.bnot ctx.Ctx.man stable.(y))
               in
               (name, y, sigma)))
  in
  Ctx.make_result ctx ~algorithm:"node-based" ~target outputs ~runtime
