lib/logic2/bits.mli: Format
