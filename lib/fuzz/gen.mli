(** Random netlist specimens for differential fuzzing.

    Specimens are kept in a flat {!spec} form — primary inputs
    [0 .. n_pi-1], then nodes in topological order, each a fanin array
    over earlier signals plus an SOP cover — because both the mutator
    and the shrinker need cheap structural surgery that the sealed
    {!Network.t} does not allow. {!network} lowers a spec to a real
    network (names [pi%d] / [g%d] / outputs [po%d]).

    The generator deliberately goes beyond {!Generator.generate}: it
    emits the degenerate shapes real netlists (and real parser bugs)
    contain — constant-0/constant-1 covers, single-input gates
    (buffers, inverters, constants of one variable), duplicate fanins
    (the same signal wired to two pins), tautological and empty covers,
    wide fanin (up to 8), deep chains with reconvergent fanout,
    outputs that alias primary inputs or repeat a signal. *)

type node = { fanins : int array; func : Logic2.Cover.t }
(** [fanins.(v)] is the signal cover variable [v] refers to; every
    fanin precedes the node itself in signal order. *)

type spec = { n_pi : int; nodes : node array; outputs : int array }
(** Signals are [0 .. n_pi-1] (primary inputs) followed by
    [n_pi + i] for node [i]. [outputs] lists observed signals (at
    least one; duplicates and direct PI observations allowed). *)

type params = {
  max_pi : int;  (** inclusive upper bound on primary inputs (≥ 1) *)
  max_nodes : int;  (** upper bound on node count (0 allowed: wire-only nets) *)
  max_outputs : int;  (** inclusive upper bound on observed outputs *)
}

val default_params : params
(** 8 inputs, 24 nodes, 4 outputs — small enough that every oracle can
    afford exhaustive or near-exhaustive cross-checking. *)

val generate : ?params:params -> Rng.t -> spec
(** A fresh random specimen (grammar-based). *)

val mutate : Rng.t -> spec -> spec
(** 1–3 random edits of an existing specimen: refunction a node, rewire
    a fanin (possibly duplicating another), retarget / drop / duplicate
    an output, append an observed node. Invariants are preserved. *)

val network : spec -> Network.t
(** Lower to a {!Network.t}; deterministic in the spec. *)

val num_gates : spec -> int
val pp : Format.formatter -> spec -> unit
