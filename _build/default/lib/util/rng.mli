(** Deterministic splitmix64 RNG; the single randomness source of the
    repository, so all experiments are reproducible from their seeds. *)

type t

val create : int -> t
val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). *)

val bool : t -> bool
val float : t -> float
(** Uniform in [0, 1). *)

val split : t -> t
(** An independent child generator. *)

val shuffle : t -> 'a array -> unit
val pick : t -> 'a array -> 'a
