lib/util/rng.mli:
