(* Incremental/ECO recompute: an editable cell-level design with stable
   signal ids, dirty-cone computation per edit, and a snapshot type
   from which everything outside the cone — BDD node functions, SPCF
   handles, masking covers, sensitization verdicts — is reused
   verbatim.

   Soundness of reuse rests on three facts. (1) The dirty set is the
   transitive *fanout* closure of the edit seeds, so a clean signal has
   a fully clean fanin cone: its global function, integer gate delay
   and arrival time are bit-identical to the snapshot's. (2) ROBDDs
   are canonical per manager: recomputing a clean function would
   intern to the very handle the snapshot already holds, so reusing
   the handle is not an approximation. (3) Σ_y is a function of the
   cone's node functions, their delay/arrival units and the integer
   target — all unchanged for a clean output when Δ is unchanged.
   A Δ change moves the target for *every* output, so it invalidates
   all Σ (node functions are still reused). See DESIGN.md §15. *)

type gate = { gname : string; cell : Cell.t; fanins : int array }

type design = {
  pi_names : string array;
  gates : gate option array;
  outputs : (string * int) list;
}

let num_pis d = Array.length d.pi_names
let num_signals d = num_pis d + Array.length d.gates

let gate_of d s =
  let npi = num_pis d in
  if s < npi then None else d.gates.(s - npi)

let live d s =
  s >= 0 && s < num_signals d && (s < num_pis d || gate_of d s <> None)

let signal_name d s =
  if s < num_pis d then d.pi_names.(s)
  else
    match gate_of d s with
    | Some g -> g.gname
    | None -> invalid_arg "Eco.signal_name: dead slot"

let find_signal d name =
  let npi = num_pis d in
  let found = ref None in
  Array.iteri (fun i n -> if !found = None && n = name then found := Some i) d.pi_names;
  Array.iteri
    (fun j g ->
      match g with
      | Some g when !found = None && g.gname = name -> found := Some (npi + j)
      | _ -> ())
    d.gates;
  !found

let live_gates d =
  Array.fold_left (fun acc g -> if g = None then acc else acc + 1) 0 d.gates

let design_of_mapped circuit =
  let net = Mapped.network circuit in
  let inputs = Network.inputs net in
  let npi = Array.length inputs in
  let nsig = Network.num_signals net in
  let map = Array.make nsig (-1) in
  Array.iteri (fun i s -> map.(s) <- i) inputs;
  let gates = ref [] and slot = ref 0 in
  for s = 0 to nsig - 1 do
    if not (Network.is_input net s) then begin
      let cell =
        match Mapped.cell_of circuit s with
        | Some c -> c
        | None ->
          invalid_arg
            (Printf.sprintf "Eco.design_of_mapped: node %s carries no library cell"
               (Network.name_of net s))
      in
      let fanins = Array.map (fun f -> map.(f)) (Network.fanins net s) in
      gates := Some { gname = Network.name_of net s; cell; fanins } :: !gates;
      map.(s) <- npi + !slot;
      incr slot
    end
  done;
  let outputs =
    Array.to_list (Network.outputs net) |> List.map (fun (n, s) -> (n, map.(s)))
  in
  {
    pi_names = Array.map (Network.name_of net) inputs;
    gates = Array.of_list (List.rev !gates);
    outputs;
  }

let lower d =
  let m = Mapped.create () in
  let npi = num_pis d in
  let sig_of = Array.make (num_signals d) (-1) in
  Array.iteri (fun i name -> sig_of.(i) <- Mapped.add_input m name) d.pi_names;
  Array.iteri
    (fun j g ->
      match g with
      | None -> ()
      | Some g ->
        sig_of.(npi + j) <-
          Mapped.add_gate m ~name:g.gname g.cell
            (Array.map (fun f -> sig_of.(f)) g.fanins))
    d.gates;
  List.iter (fun (name, s) -> Mapped.mark_output m ~name sig_of.(s)) d.outputs;
  (m, sig_of)

(* --- edits ------------------------------------------------------------- *)

type edit =
  | Replace of { target : int; cell : Cell.t; fanins : int array }
  | Rewire of { target : int; pin : int; fanin : int }
  | Add of { aname : string; cell : Cell.t; fanins : int array }
  | Remove of { target : int }
  | Add_output of { oname : string; target : int }
  | Drop_output of { oname : string }

type applied = { next : design; seeds : int list; load_seeds : int list }

let failf fmt = Printf.ksprintf invalid_arg fmt

let check_gate d what target =
  let npi = num_pis d in
  if target < npi || target >= num_signals d then
    failf "Eco.apply: %s target %d is not a gate slot" what target;
  match d.gates.(target - npi) with
  | Some g -> g
  | None -> failf "Eco.apply: %s target %d is a removed slot" what target

(* Fanins must be PIs or strictly earlier slots: slot order then stays a
   topological order, which [lower] relies on and which rules out
   cycles by construction. [bound] is the consuming slot's signal (or
   [num_signals] for a freshly appended slot). *)
let check_fanins d what ~bound cell fanins =
  if Array.length fanins <> cell.Cell.arity then
    failf "Eco.apply: %s needs %d fanins for %s, got %d" what cell.Cell.arity
      cell.Cell.cname (Array.length fanins);
  Array.iter
    (fun f ->
      if not (live d f) then failf "Eco.apply: %s fanin %d is not a live signal" what f;
      if f >= bound then
        failf "Eco.apply: %s fanin %d must precede slot signal %d" what f bound)
    fanins

let dedup l = List.sort_uniq compare l

let apply d edit =
  match edit with
  | Replace { target; cell; fanins } ->
    let g = check_gate d "replace" target in
    check_fanins d "replace" ~bound:target cell fanins;
    let gates = Array.copy d.gates in
    gates.(target - num_pis d) <- Some { g with cell; fanins };
    {
      next = { d with gates };
      seeds = [ target ];
      load_seeds = dedup (Array.to_list g.fanins @ Array.to_list fanins);
    }
  | Rewire { target; pin; fanin } ->
    let g = check_gate d "rewire" target in
    if pin < 0 || pin >= Array.length g.fanins then
      failf "Eco.apply: rewire pin %d out of range for %s" pin g.cell.Cell.cname;
    if not (live d fanin) then failf "Eco.apply: rewire fanin %d is not live" fanin;
    if fanin >= target then
      failf "Eco.apply: rewire fanin %d must precede slot signal %d" fanin target;
    let fanins = Array.copy g.fanins in
    let old = fanins.(pin) in
    fanins.(pin) <- fanin;
    let gates = Array.copy d.gates in
    gates.(target - num_pis d) <- Some { g with fanins };
    { next = { d with gates }; seeds = [ target ]; load_seeds = dedup [ old; fanin ] }
  | Add { aname; cell; fanins } ->
    if find_signal d aname <> None then
      failf "Eco.apply: add name %S already in use" aname;
    let ns = num_signals d in
    check_fanins d "add" ~bound:ns cell fanins;
    let gates = Array.append d.gates [| Some { gname = aname; cell; fanins } |] in
    { next = { d with gates }; seeds = [ ns ]; load_seeds = dedup (Array.to_list fanins) }
  | Remove { target } ->
    let g = check_gate d "remove" target in
    if Array.length g.fanins = 0 then
      failf "Eco.apply: cannot remove source gate %s" g.gname;
    let repl = g.fanins.(0) in
    let npi = num_pis d in
    let seeds = ref [] in
    let gates =
      Array.mapi
        (fun j go ->
          match go with
          | None -> None
          | Some gg ->
            if Array.exists (fun f -> f = target) gg.fanins then begin
              seeds := (npi + j) :: !seeds;
              let fanins = Array.map (fun f -> if f = target then repl else f) gg.fanins in
              Some { gg with fanins }
            end
            else go)
        d.gates
    in
    gates.(target - npi) <- None;
    let outputs =
      List.map (fun (n, s) -> if s = target then (n, repl) else (n, s)) d.outputs
    in
    {
      next = { d with gates; outputs };
      seeds = dedup !seeds;
      load_seeds = dedup (Array.to_list g.fanins);
    }
  | Add_output { oname; target } ->
    if List.mem_assoc oname d.outputs then
      failf "Eco.apply: output name %S already in use" oname;
    if not (live d target) then
      failf "Eco.apply: add-output target %d is not live" target;
    {
      next = { d with outputs = d.outputs @ [ (oname, target) ] };
      seeds = [];
      load_seeds = [ target ];
    }
  | Drop_output { oname } ->
    (match List.assoc_opt oname d.outputs with
    | None -> failf "Eco.apply: no output named %S" oname
    | Some target ->
      if List.length d.outputs <= 1 then
        failf "Eco.apply: cannot drop the last output %S" oname;
      let outputs = List.filter (fun (n, _) -> n <> oname) d.outputs in
      { next = { d with outputs }; seeds = []; load_seeds = [ target ] })

let apply_all d edits =
  let d', seeds, loads =
    List.fold_left
      (fun (d, seeds, loads) e ->
        let a = apply d e in
        (a.next, a.seeds @ seeds, a.load_seeds @ loads))
      (d, [], []) edits
  in
  (d', dedup (List.filter (live d') seeds), dedup (List.filter (live d') loads))

(* Consumer lists in design-signal space: outputs do not propagate. *)
let consumers d =
  let npi = num_pis d in
  let cons = Array.make (num_signals d) [] in
  Array.iteri
    (fun j g ->
      match g with
      | None -> ()
      | Some g -> Array.iter (fun f -> cons.(f) <- (npi + j) :: cons.(f)) g.fanins)
    d.gates;
  cons

let closure_of cons d seeds =
  let dirty = Array.make (num_signals d) false in
  let rec go s =
    if not dirty.(s) then begin
      dirty.(s) <- true;
      List.iter go cons.(s)
    end
  in
  List.iter (fun s -> if live d s then go s) seeds;
  dirty

let dirty_cone d ~model seeds load_seeds =
  let seeds =
    match model with
    | Sta.Library_load _ ->
      (* Only under the load-dependent model does a changed fanout load
         move a gate's delay; PI "delays" are 0 under every model, so
         PI load seeds are inert and excluded to keep cones tight. *)
      seeds @ List.filter (fun s -> s >= num_pis d) load_seeds
    | Sta.Unit | Sta.Paper_units | Sta.Library -> seeds
  in
  closure_of (consumers d) d seeds

(* --- edit-list text format --------------------------------------------- *)

let edit_to_string d = function
  | Replace { target; cell; fanins } ->
    Printf.sprintf "replace %s %s %s" (signal_name d target) cell.Cell.cname
      (String.concat " " (Array.to_list (Array.map (signal_name d) fanins)))
  | Rewire { target; pin; fanin } ->
    Printf.sprintf "rewire %s %d %s" (signal_name d target) pin (signal_name d fanin)
  | Add { aname; cell; fanins } ->
    Printf.sprintf "add %s %s %s" aname cell.Cell.cname
      (String.concat " " (Array.to_list (Array.map (signal_name d) fanins)))
  | Remove { target } -> Printf.sprintf "remove %s" (signal_name d target)
  | Add_output { oname; target } ->
    Printf.sprintf "add-output %s %s" oname (signal_name d target)
  | Drop_output { oname } -> Printf.sprintf "drop-output %s" oname

let edits_to_string d edits =
  let _, lines =
    List.fold_left
      (fun (d, lines) e -> ((apply d e).next, edit_to_string d e :: lines))
      (d, []) edits
  in
  String.concat "\n" (List.rev lines) ^ "\n"

let parse_edits d text =
  let resolve d ln what name =
    match find_signal d name with
    | Some s -> s
    | None -> failf "edits line %d: unknown %s signal %S" ln what name
  in
  let cell_named ln name =
    match Cell.find name with
    | Some c -> c
    | None -> failf "edits line %d: unknown cell %S" ln name
  in
  let int_of ln what tok =
    match int_of_string_opt tok with
    | Some i -> i
    | None -> failf "edits line %d: %s %S is not an integer" ln what tok
  in
  let lines = String.split_on_char '\n' text in
  let _, edits =
    List.fold_left
      (fun ((d, edits) as acc) (ln, line) ->
        let toks =
          String.split_on_char ' ' (String.trim line) |> List.filter (fun t -> t <> "")
        in
        match toks with
        | [] -> acc
        | hd :: _ when String.length hd > 0 && hd.[0] = '#' -> acc
        | "replace" :: target :: cname :: fanins ->
          let e =
            Replace
              {
                target = resolve d ln "target" target;
                cell = cell_named ln cname;
                fanins = Array.of_list (List.map (resolve d ln "fanin") fanins);
              }
          in
          ((apply d e).next, e :: edits)
        | [ "rewire"; target; pin; fanin ] ->
          let e =
            Rewire
              {
                target = resolve d ln "target" target;
                pin = int_of ln "pin" pin;
                fanin = resolve d ln "fanin" fanin;
              }
          in
          ((apply d e).next, e :: edits)
        | "add" :: aname :: cname :: fanins ->
          let e =
            Add
              {
                aname;
                cell = cell_named ln cname;
                fanins = Array.of_list (List.map (resolve d ln "fanin") fanins);
              }
          in
          ((apply d e).next, e :: edits)
        | [ "remove"; target ] ->
          let e = Remove { target = resolve d ln "target" target } in
          ((apply d e).next, e :: edits)
        | [ "add-output"; oname; target ] ->
          let e = Add_output { oname; target = resolve d ln "target" target } in
          ((apply d e).next, e :: edits)
        | [ "drop-output"; oname ] ->
          let e = Drop_output { oname } in
          ((apply d e).next, e :: edits)
        | verb :: _ -> failf "edits line %d: unknown or malformed edit %S" ln verb)
      (d, [])
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  List.rev edits

(* --- snapshots --------------------------------------------------------- *)

type stats = {
  total_signals : int;
  dirty_signals : int;
  funcs_reused : int;
  funcs_rebuilt : int;
  sigmas_reused : int;
  sigmas_recomputed : int;
  delta_changed : bool;
}

type t = {
  design : design;
  circuit : Mapped.t;
  sig_of : int array;
  ctx : Spcf.Ctx.t;
  theta : float;
  band : float option;
  delta : float;
  target : float;
  sigmas : (string * Network.signal * Bdd.t) list;
  covers : (string * Logic2.Cover.t) list;
  sens : Sensitization.report option;
  stats : stats;
}

let c_dirty = Obs.counter "eco.dirty_signals"
let c_funcs_reused = Obs.counter "eco.funcs.reused"
let c_funcs_rebuilt = Obs.counter "eco.funcs.rebuilt"
let c_sigmas_reused = Obs.counter "eco.sigmas.reused"
let c_sigmas_recomputed = Obs.counter "eco.sigmas.recomputed"

(* Per-output SPCFs over an explicit output set; [jobs > 1] fans
   round-robin chunks across domains on the shared manager (worker j
   owns outputs j, j+k, ...), re-interleaved into output order. *)
let compute_sigmas ctx ~jobs ~outputs ~target_units =
  let n = Array.length outputs in
  let opts = Spcf.Exact.proposed_options in
  if jobs <= 1 || n <= 1 then Spcf.Exact.sigmas ctx ~opts ~outputs ~target_units
  else begin
    let k = min jobs n in
    Spcf.Ctx.prewarm_primes ctx;
    let parent_budget = ctx.Spcf.Ctx.budget in
    let chunk j =
      Array.of_list (List.filteri (fun i _ -> i mod k = j) (Array.to_list outputs))
    in
    let worker j =
      match Spcf.Exact.sigmas ctx ~opts ~outputs:(chunk j) ~target_units with
      | sigs -> Ok sigs
      | exception Budget.Budget_exceeded r ->
        Budget.cancel parent_budget;
        Error r
    in
    Spcf.Parallel.fanout ~k ~worker ~commit:(fun per_domain ->
        let merged = Array.make n None in
        Array.iteri
          (fun j sigs -> List.iteri (fun p r -> merged.(j + (p * k)) <- Some r) sigs)
          per_domain;
        Array.to_list merged
        |> List.map (function Some r -> r | None -> assert false))
  end

let snapshot ?(theta = 0.9) ?(model = Sta.Library) ?band ?(jobs = 1)
    ?(budget = Budget.unlimited) design =
  let circuit, sig_of = lower design in
  let ctx = Spcf.Ctx.create ~model ~budget ~shared:true circuit in
  let delta = Spcf.Ctx.delta ctx in
  let target = Spcf.Ctx.target_of_theta ctx theta in
  let critical = Sta.critical_outputs ctx.Spcf.Ctx.sta ~target in
  let sigmas =
    compute_sigmas ctx ~jobs ~outputs:critical
      ~target_units:(Spcf.Ctx.units_of_target target)
  in
  let covers =
    List.map (fun (nm, _, sigma) -> (nm, Isop.of_bdd ctx.Spcf.Ctx.man sigma)) sigmas
  in
  let sens = Option.map (fun band -> Sensitization.analyze_ctx ~band ~jobs ctx) band in
  let total = Network.num_signals (Mapped.network circuit) in
  {
    design;
    circuit;
    sig_of;
    ctx;
    theta;
    band;
    delta;
    target;
    sigmas;
    covers;
    sens;
    stats =
      {
        total_signals = total;
        dirty_signals = total;
        funcs_reused = 0;
        funcs_rebuilt = total;
        sigmas_reused = 0;
        sigmas_recomputed = List.length sigmas;
        delta_changed = false;
      };
  }

let path_key net path =
  path.Paths.output ^ "|"
  ^ String.concat ">"
      (Array.to_list (Array.map (Network.name_of net) path.Paths.signals))

let recompute ?(jobs = 1) t edits =
  Obs.enter "eco.recompute";
  Fun.protect ~finally:Obs.leave @@ fun () ->
  let d0 = t.design in
  let d1, seeds, load_seeds = apply_all d0 edits in
  let model = t.ctx.Spcf.Ctx.model in
  let dirty = dirty_cone d1 ~model seeds load_seeds in
  let circuit, sig_of = lower d1 in
  let net = Mapped.network circuit in
  let man = t.ctx.Spcf.Ctx.man in
  let sta = Sta.analyze ~model circuit in
  let npi = num_pis d1 in
  let old_nsig = Array.length t.sig_of in
  (* Node functions: a clean signal that existed before keeps its BDD
     handle; only the dirty cone (and fresh slots) rebuilds, in the
     same signal order [Network.to_bdds] uses. *)
  let funcs = Array.make (Network.num_signals net) Bdd.bfalse in
  let funcs_reused = ref 0 and funcs_rebuilt = ref 0 in
  for s = 0 to num_signals d1 - 1 do
    if live d1 s then begin
      let n' = sig_of.(s) in
      if s < npi then funcs.(n') <- Bdd.var man s
      else if (not dirty.(s)) && s < old_nsig && live d0 s then begin
        funcs.(n') <- t.ctx.Spcf.Ctx.funcs.(t.sig_of.(s));
        incr funcs_reused
      end
      else begin
        let nd = Option.get (Network.node_of net n') in
        let local = Array.map (fun f -> funcs.(f)) nd.Network.fanins in
        funcs.(n') <- Bdd.cover_with man nd.Network.func local;
        incr funcs_rebuilt
      end
    end
  done;
  let delay_units = Array.map Spcf.Ctx.units_of_delay (Sta.gate_delays model circuit) in
  let arrival_units = Array.make (Network.num_signals net) 0 in
  Array.iter
    (fun s ->
      match Network.node_of net s with
      | None -> ()
      | Some nd ->
        let worst =
          Array.fold_left (fun acc f -> max acc arrival_units.(f)) 0 nd.Network.fanins
        in
        arrival_units.(s) <- worst + delay_units.(s))
    (Network.topo_order net);
  let ctx =
    {
      Spcf.Ctx.circuit;
      model;
      sta;
      man;
      funcs;
      delay_units;
      arrival_units;
      primes = t.ctx.Spcf.Ctx.primes;
      budget = t.ctx.Spcf.Ctx.budget;
    }
  in
  let delta = Spcf.Ctx.delta ctx in
  let delta_changed = not (Float.equal delta t.delta) in
  let target = Spcf.Ctx.target_of_theta ctx t.theta in
  let critical = Sta.critical_outputs sta ~target in
  (* Σ reuse: same (name, design signal) output as before, signal
     clean, Δ unchanged, and the snapshot actually holds its Σ. *)
  let reusable nm =
    (not delta_changed)
    &&
    match List.assoc_opt nm d1.outputs with
    | None -> false
    | Some sd -> (
      (not dirty.(sd))
      && List.assoc_opt nm d0.outputs = Some sd
      &&
      match List.find_opt (fun (n, _, _) -> n = nm) t.sigmas with
      | Some _ -> true
      | None -> false)
  in
  let to_recompute =
    Array.of_list
      (List.filter (fun (nm, _) -> not (reusable nm)) (Array.to_list critical))
  in
  let recomputed =
    compute_sigmas ctx ~jobs ~outputs:to_recompute
      ~target_units:(Spcf.Ctx.units_of_target target)
  in
  let fresh = Hashtbl.create 16 in
  List.iter (fun ((nm, _, _) as r) -> Hashtbl.replace fresh nm r) recomputed;
  let sigmas_reused = ref 0 and sigmas_recomputed = ref 0 in
  let sigmas =
    Array.to_list critical
    |> List.map (fun (nm, y) ->
           match Hashtbl.find_opt fresh nm with
           | Some r ->
             incr sigmas_recomputed;
             r
           | None ->
             incr sigmas_reused;
             let _, _, sigma = List.find (fun (n, _, _) -> n = nm) t.sigmas in
             (nm, y, sigma))
  in
  let covers =
    List.map
      (fun (nm, _, sigma) ->
        if Hashtbl.mem fresh nm then (nm, Isop.of_bdd man sigma)
        else (nm, List.assoc nm t.covers))
      sigmas
  in
  let sens =
    match t.band with
    | None -> None
    | Some band ->
      let enum = Paths.enumerate ~band ~max_paths:4096 sta in
      (* A verdict is a pure function of the path's fanin cone; the
         cone of a clean output is entirely clean, so any old verdict
         for the identical (by names) path is reused as-is. Witnesses
         stay valid because PI positions never move. *)
      let old_verdicts = Hashtbl.create 64 in
      (match t.sens with
      | None -> ()
      | Some r ->
        let old_net = Mapped.network t.circuit in
        List.iter
          (fun c ->
            Hashtbl.replace old_verdicts
              (path_key old_net c.Sensitization.path)
              c.Sensitization.verdict)
          r.Sensitization.paths);
      let output_clean nm =
        match List.assoc_opt nm d1.outputs with
        | Some sd -> (not dirty.(sd)) && List.assoc_opt nm d0.outputs = Some sd
        | None -> false
      in
      let slots =
        List.map
          (fun p ->
            if output_clean p.Paths.output then
              match Hashtbl.find_opt old_verdicts (path_key net p) with
              | Some v -> Either.Left { Sensitization.path = p; verdict = v }
              | None -> Either.Right p
            else Either.Right p)
          enum.Paths.paths
      in
      let stale = List.filter_map (function Either.Right p -> Some p | _ -> None) slots in
      let classified = Sensitization.classify_paths ctx stale in
      let rec merge slots classified =
        match (slots, classified) with
        | [], [] -> []
        | Either.Left c :: rest, cl -> c :: merge rest cl
        | Either.Right _ :: rest, c :: cl -> c :: merge rest cl
        | Either.Right _ :: _, [] | [], _ :: _ -> assert false
      in
      Some (Sensitization.assemble ctx ~jobs enum (merge slots classified))
  in
  let total = Network.num_signals net in
  let dirty_count = ref 0 in
  for s = 0 to num_signals d1 - 1 do
    if live d1 s && dirty.(s) then incr dirty_count
  done;
  Obs.add c_dirty !dirty_count;
  Obs.add c_funcs_reused !funcs_reused;
  Obs.add c_funcs_rebuilt !funcs_rebuilt;
  Obs.add c_sigmas_reused !sigmas_reused;
  Obs.add c_sigmas_recomputed !sigmas_recomputed;
  {
    design = d1;
    circuit;
    sig_of;
    ctx;
    theta = t.theta;
    band = t.band;
    delta;
    target;
    sigmas;
    covers;
    sens;
    stats =
      {
        total_signals = total;
        dirty_signals = !dirty_count;
        funcs_reused = !funcs_reused;
        funcs_rebuilt = !funcs_rebuilt;
        sigmas_reused = !sigmas_reused;
        sigmas_recomputed = !sigmas_recomputed;
        delta_changed;
      };
  }

(* --- canonical form ---------------------------------------------------- *)

let model_to_string = function
  | Sta.Unit -> "unit"
  | Sta.Paper_units -> "paper"
  | Sta.Library -> "library"
  | Sta.Library_load slope -> Printf.sprintf "library-load %h" slope

let model_of_string s =
  match String.split_on_char ' ' s with
  | [ "unit" ] -> Sta.Unit
  | [ "paper" ] -> Sta.Paper_units
  | [ "library" ] -> Sta.Library
  | [ "library-load"; slope ] -> Sta.Library_load (float_of_string slope)
  | _ -> failf "Eco: unknown delay model %S" s

let dag_to_buf b (vars, lows, highs, root) =
  let ints a = Array.iter (fun v -> Printf.bprintf b " %d" v) a in
  Printf.bprintf b "dag %d %d" root (Array.length vars);
  ints vars;
  ints lows;
  ints highs;
  Buffer.add_char b '\n'

let cover_to_buf b cover =
  Printf.bprintf b "cover %d %d" (Logic2.Cover.num_vars cover)
    (Logic2.Cover.num_cubes cover);
  List.iter
    (fun cube ->
      Buffer.add_string b " ;";
      List.iter
        (fun (v, pos) -> Printf.bprintf b " %d:%c" v (if pos then '1' else '0'))
        (Logic2.Cube.literals cube))
    (Logic2.Cover.cubes cover);
  Buffer.add_char b '\n'

let canonical t =
  let b = Buffer.create 4096 in
  let net = Mapped.network t.circuit in
  let sta = t.ctx.Spcf.Ctx.sta in
  Printf.bprintf b "emask-eco canonical/1\n";
  Printf.bprintf b "model %s\n" (model_to_string t.ctx.Spcf.Ctx.model);
  Printf.bprintf b "theta %h\n" t.theta;
  (match t.band with
  | None -> Printf.bprintf b "band -\n"
  | Some band -> Printf.bprintf b "band %h\n" band);
  Printf.bprintf b "delta %h\ntarget %h\n" t.delta t.target;
  let critical = List.map (fun (nm, _, _) -> nm) t.sigmas in
  List.iter
    (fun (nm, sd) ->
      let s = t.sig_of.(sd) in
      Printf.bprintf b "output %s arrival=%h critical=%b\n" nm (Sta.arrival sta s)
        (List.mem nm critical))
    t.design.outputs;
  List.iter
    (fun (nm, _, sigma) ->
      Printf.bprintf b "sigma %s " nm;
      dag_to_buf b (Spcf.Parallel.export t.ctx.Spcf.Ctx.man sigma))
    t.sigmas;
  List.iter
    (fun (nm, cover) ->
      Printf.bprintf b "mask %s " nm;
      cover_to_buf b cover)
    t.covers;
  (match t.sens with
  | None -> ()
  | Some r ->
    (* Witness patterns are deliberately excluded: DPLL decision order
       follows internal ids, which legally shift across edits. *)
    Printf.bprintf b "sens band=%h target=%h truncated=%b functional_delta=%h\n"
      r.Sensitization.band r.Sensitization.target r.Sensitization.truncated
      r.Sensitization.functional_delta;
    List.iter
      (fun c ->
        Printf.bprintf b "path %s %s len=%h\n"
          (path_key net c.Sensitization.path)
          (Sensitization.verdict_name c.Sensitization.verdict)
          c.Sensitization.path.Paths.length)
      r.Sensitization.paths;
    List.iter
      (fun s ->
        Printf.bprintf b "summary %s paths=%d t=%d f=%d u=%d topo=%h func=%h\n"
          s.Sensitization.output s.Sensitization.num_paths s.Sensitization.num_true
          s.Sensitization.num_false s.Sensitization.num_unknown
          s.Sensitization.topological s.Sensitization.functional)
      r.Sensitization.summaries);
  Buffer.contents b

let fingerprint t = Digest.to_hex (Digest.string (canonical t))

(* --- persistence ------------------------------------------------------- *)

let serialize t =
  let b = Buffer.create 4096 in
  Printf.bprintf b "emask-eco/1\n";
  Printf.bprintf b "model %s\n" (model_to_string t.ctx.Spcf.Ctx.model);
  Printf.bprintf b "theta %h\n" t.theta;
  (match t.band with
  | None -> Printf.bprintf b "band -\n"
  | Some band -> Printf.bprintf b "band %h\n" band);
  Printf.bprintf b "delta %h\n" t.delta;
  Printf.bprintf b "pis %d\n" (num_pis t.design);
  Array.iter (fun n -> Printf.bprintf b "pi %s\n" n) t.design.pi_names;
  Printf.bprintf b "slots %d\n" (Array.length t.design.gates);
  Array.iter
    (fun g ->
      match g with
      | None -> Printf.bprintf b "slot dead\n"
      | Some g ->
        Printf.bprintf b "slot %s %s" g.gname g.cell.Cell.cname;
        Array.iter (fun f -> Printf.bprintf b " %d" f) g.fanins;
        Buffer.add_char b '\n')
    t.design.gates;
  Printf.bprintf b "outputs %d\n" (List.length t.design.outputs);
  List.iter (fun (n, s) -> Printf.bprintf b "out %s %d\n" n s) t.design.outputs;
  Printf.bprintf b "sigmas %d\n" (List.length t.sigmas);
  List.iter
    (fun (nm, _, sigma) ->
      Printf.bprintf b "sigma %s " nm;
      dag_to_buf b (Spcf.Parallel.export t.ctx.Spcf.Ctx.man sigma))
    t.sigmas;
  List.iter
    (fun (nm, cover) ->
      Printf.bprintf b "mask %s " nm;
      cover_to_buf b cover)
    t.covers;
  Buffer.contents b

let parse_dag toks =
  match toks with
  | "dag" :: root :: len :: rest ->
    let root = int_of_string root and len = int_of_string len in
    let rest = Array.of_list (List.map int_of_string rest) in
    if Array.length rest <> 3 * len then failf "Eco.deserialize: truncated dag";
    ( Array.sub rest 0 len,
      Array.sub rest len len,
      Array.sub rest (2 * len) len,
      root )
  | _ -> failf "Eco.deserialize: malformed dag"

let parse_cover toks =
  match toks with
  | "cover" :: nvars :: _ncubes :: rest ->
    let nvars = int_of_string nvars in
    let cubes =
      List.fold_left
        (fun acc tok ->
          if tok = ";" then [] :: acc
          else
            match (acc, String.split_on_char ':' tok) with
            | lits :: acc', [ v; p ] ->
              ((int_of_string v, p = "1") :: lits) :: acc'
            | _ -> failf "Eco.deserialize: malformed cover literal %S" tok)
        [] rest
    in
    Logic2.Cover.of_cubes nvars
      (List.rev_map (fun lits -> Logic2.Cube.make nvars (List.rev lits)) cubes)
  | _ -> failf "Eco.deserialize: malformed cover"

let deserialize text =
  let lines = ref (String.split_on_char '\n' text) in
  let next () =
    match !lines with
    | [] -> failf "Eco.deserialize: unexpected end of input"
    | l :: rest ->
      lines := rest;
      l
  in
  let expect_toks tag =
    let l = next () in
    match String.split_on_char ' ' l with
    | t :: rest when t = tag -> rest
    | _ -> failf "Eco.deserialize: expected %S, got %S" tag l
  in
  let expect1 tag =
    match expect_toks tag with
    | [ v ] -> v
    | _ -> failf "Eco.deserialize: malformed %S line" tag
  in
  if next () <> "emask-eco/1" then failf "Eco.deserialize: not an emask-eco/1 snapshot";
  let model = model_of_string (String.concat " " (expect_toks "model")) in
  let theta = float_of_string (expect1 "theta") in
  let band =
    match expect1 "band" with "-" -> None | v -> Some (float_of_string v)
  in
  let delta_stored = float_of_string (expect1 "delta") in
  let npi = int_of_string (expect1 "pis") in
  let pi_names = Array.init npi (fun _ -> expect1 "pi") in
  let nslots = int_of_string (expect1 "slots") in
  let gates =
    Array.init nslots (fun _ ->
        match expect_toks "slot" with
        | [ "dead" ] -> None
        | gname :: cname :: fanins ->
          let cell =
            match Cell.find cname with
            | Some c -> c
            | None -> failf "Eco.deserialize: unknown cell %S" cname
          in
          Some { gname; cell; fanins = Array.of_list (List.map int_of_string fanins) }
        | _ -> failf "Eco.deserialize: malformed slot line")
  in
  let nout = int_of_string (expect1 "outputs") in
  let outputs =
    List.init nout (fun _ ->
        match expect_toks "out" with
        | [ n; s ] -> (n, int_of_string s)
        | _ -> failf "Eco.deserialize: malformed out line")
  in
  let design = { pi_names; gates; outputs } in
  let circuit, sig_of = lower design in
  let ctx = Spcf.Ctx.create ~model ~shared:true circuit in
  let delta = Spcf.Ctx.delta ctx in
  if not (Float.equal delta delta_stored) then
    failf "Eco.deserialize: stored delta %h disagrees with STA %h" delta_stored delta;
  let target = Spcf.Ctx.target_of_theta ctx theta in
  let critical = Sta.critical_outputs ctx.Spcf.Ctx.sta ~target in
  let nsig = int_of_string (expect1 "sigmas") in
  if nsig <> Array.length critical then
    failf "Eco.deserialize: %d stored sigmas for %d critical outputs" nsig
      (Array.length critical);
  let man = ctx.Spcf.Ctx.man in
  let sigmas =
    Array.to_list critical
    |> List.map (fun (nm, y) ->
           match expect_toks "sigma" with
           | n :: rest when n = nm -> (nm, y, Spcf.Parallel.import man (parse_dag rest))
           | l ->
             failf "Eco.deserialize: expected sigma %s, got %S" nm
               (String.concat " " l))
  in
  let covers =
    List.map
      (fun (nm, _, _) ->
        match expect_toks "mask" with
        | n :: rest when n = nm -> (nm, parse_cover rest)
        | l -> failf "Eco.deserialize: expected mask %s, got %S" nm (String.concat " " l))
      sigmas
  in
  let sens = Option.map (fun band -> Sensitization.analyze_ctx ~band ~jobs:1 ctx) band in
  let total = Network.num_signals (Mapped.network circuit) in
  {
    design;
    circuit;
    sig_of;
    ctx;
    theta;
    band;
    delta;
    target;
    sigmas;
    covers;
    sens;
    stats =
      {
        total_signals = total;
        dirty_signals = 0;
        funcs_reused = 0;
        funcs_rebuilt = total;
        sigmas_reused = List.length sigmas;
        sigmas_recomputed = 0;
        delta_changed = false;
      };
  }

(* --- bench/fuzz helper ------------------------------------------------- *)

(* Equal-delay, equal-load cell duals: swapping one changes the logic
   function but no delay or capacitance, so the dirty cone is exactly
   the gate's transitive fanout under every delay model. *)
let dual_of cell =
  let pairs =
    [ ("EO", "EN"); ("EN", "EO"); ("AOI21", "OAI21"); ("OAI21", "AOI21");
      ("AOI22", "OAI22"); ("OAI22", "AOI22") ]
  in
  Option.bind (List.assoc_opt cell.Cell.cname pairs) Cell.find

let smallest_cone_edit d =
  let cons = consumers d in
  let npi = num_pis d in
  let candidates = ref [] in
  Array.iteri
    (fun j g ->
      match g with
      | None -> ()
      | Some _ ->
        let s = npi + j in
        let dirty = closure_of cons d [ s ] in
        let size = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 dirty in
        candidates := (size, s) :: !candidates)
    d.gates;
  let sorted = List.sort compare (List.rev !candidates) in
  let edit_for (_, s) =
    let g = Option.get (gate_of d s) in
    match dual_of g.cell with
    | Some cell -> Some (Replace { target = s; cell; fanins = g.fanins })
    | None ->
      if Array.length g.fanins >= 2 then
        let rev = Array.of_list (List.rev (Array.to_list g.fanins)) in
        Some (Replace { target = s; cell = g.cell; fanins = rev })
      else None
  in
  List.fold_left
    (fun acc c -> match acc with Some _ -> acc | None -> edit_for c)
    None sorted
