(** Technology mapping of Boolean networks into library gates. *)

type style =
  | Balanced  (** balanced AND/OR trees: logarithmic mapped depth *)
  | Chain  (** left-associative 2-input chains (ablation baseline) *)

val map : ?style:style -> Network.t -> Mapped.t
(** Functionally equivalent gate-level realization of the network.
    Node functions that exactly match a library cell map to one gate;
    general SOPs become inverter + AND-tree + OR-tree structures. *)

val map_with_signals : ?style:style -> Network.t -> Mapped.t * int array
(** Like [map], also returning the network→mapped signal map (the mapped
    signal realizing each network signal). *)
